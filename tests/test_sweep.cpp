// Tests for the parallel experiment runner: common/parallel_for.hpp
// (coverage, inline fallback, exception propagation) and sysmodel/sweep.hpp
// (exact agreement with the serial loop and thread-count independence —
// the property golden_figures relies on when it fans the figure sweep out).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel_for.hpp"
#include "sysmodel/sweep.hpp"
#include "workload/profile.hpp"

namespace vfimr::sysmodel {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{3},
                              std::size_t{8}}) {
    constexpr std::size_t kCount = 500;
    std::vector<std::atomic<std::uint32_t>> hits(kCount);
    parallel_for(kCount, threads,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i << " with " << threads
                                    << " threads";
    }
  }
}

TEST(ParallelFor, ZeroCountIsANoOp) {
  bool called = false;
  parallel_for(0, 8, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadRunsInlineOnCaller) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(4);
  parallel_for(seen.size(), 1,
               [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, PropagatesFirstExceptionAfterJoin) {
  std::atomic<std::uint32_t> completed{0};
  auto run = [&](std::size_t threads) {
    parallel_for(64, threads, [&](std::size_t i) {
      if (i == 13) throw std::runtime_error{"sweep item failed"};
      completed.fetch_add(1);
    });
  };
  EXPECT_THROW(run(1), std::runtime_error);
  EXPECT_THROW(run(4), std::runtime_error);
}

/// Reduced-cycle platform so the full-system runs stay test-sized; the
/// comparison below is exact, so fidelity to the paper numbers is
/// irrelevant here.
PlatformParams quick_params() {
  PlatformParams p;
  p.sim_cycles = 3'000;
  p.drain_cycles = 30'000;
  return p;
}

void expect_reports_equal(const SystemReport& a, const SystemReport& b) {
  // Exact equality: the simulation is deterministic and the runner must not
  // perturb it (no shared RNG, per-run seed isolation, slot-per-index
  // results).
  EXPECT_EQ(a.exec_s, b.exec_s);
  EXPECT_EQ(a.core_energy_j, b.core_energy_j);
  EXPECT_EQ(a.net_dynamic_j, b.net_dynamic_j);
  EXPECT_EQ(a.net_static_j, b.net_static_j);
  EXPECT_EQ(a.edp_js(), b.edp_js());
  EXPECT_EQ(a.net.avg_latency_cycles, b.net.avg_latency_cycles);
  EXPECT_EQ(a.phases.map_s, b.phases.map_s);
  EXPECT_EQ(a.phases.reduce_s, b.phases.reduce_s);
}

void expect_comparisons_equal(const std::vector<SystemComparison>& a,
                              const std::vector<SystemComparison>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_reports_equal(a[i].nvfi_mesh, b[i].nvfi_mesh);
    expect_reports_equal(a[i].vfi_mesh, b[i].vfi_mesh);
    expect_reports_equal(a[i].vfi_winoc, b[i].vfi_winoc);
  }
}

TEST(Sweep, MatchesSerialCompareSystemsLoop) {
  const std::vector<workload::AppProfile> profiles = {
      workload::make_profile(workload::App::kHist),
      workload::make_profile(workload::App::kWC)};
  const FullSystemSim sim;
  const PlatformParams params = quick_params();

  std::vector<SystemComparison> serial;
  for (const auto& p : profiles) {
    serial.push_back(compare_systems(p, sim, params));
  }
  expect_comparisons_equal(sweep_comparisons(profiles, sim, params, 4),
                           serial);
}

TEST(Sweep, ResultsIndependentOfThreadCount) {
  const std::vector<workload::AppProfile> profiles = {
      workload::make_profile(workload::App::kHist),
      workload::make_profile(workload::App::kKmeans),
      workload::make_profile(workload::App::kLR)};
  const FullSystemSim sim;
  const PlatformParams params = quick_params();

  const auto one = sweep_comparisons(profiles, sim, params, 1);
  expect_comparisons_equal(sweep_comparisons(profiles, sim, params, 8), one);
}

}  // namespace
}  // namespace vfimr::sysmodel
