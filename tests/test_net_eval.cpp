// Property tests for the memoizing NetworkEvaluator and the phase-resolved
// coupling pipeline (DESIGN.md §11).  The two contracts under test:
//
//  * A cached evaluation is bit-identical to a fresh one — for clean and
//    for fault-injected specs — because the key serializes every input that
//    can change the simulation outcome, so equal keys mean the same
//    simulation.
//  * The degenerate phase-resolved profile (all four phase matrices equal
//    to the whole-run aggregate, phase_window_scale = 1) reproduces the
//    legacy single-matrix coupling: identical per-phase latencies and
//    mem_scales, and the same execution time.

#include <gtest/gtest.h>

#include <array>

#include "sysmodel/net_eval.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr::sysmodel {
namespace {

PlatformParams small_params(SystemKind kind) {
  PlatformParams p;
  p.kind = kind;
  p.sim_cycles = 3'000;
  p.drain_cycles = 20'000;
  return p;
}

void expect_identical(const NetworkEval& a, const NetworkEval& b) {
  EXPECT_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
  EXPECT_EQ(a.energy_per_flit_j, b.energy_per_flit_j);
  EXPECT_EQ(a.wireless_utilization, b.wireless_utilization);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.metrics.packets_injected, b.metrics.packets_injected);
  EXPECT_EQ(a.metrics.packets_ejected, b.metrics.packets_ejected);
  EXPECT_EQ(a.metrics.packets_local, b.metrics.packets_local);
  EXPECT_EQ(a.metrics.flits_ejected, b.metrics.flits_ejected);
  EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
  EXPECT_EQ(a.metrics.fault_events, b.metrics.fault_events);
  EXPECT_EQ(a.metrics.route_rebuilds, b.metrics.route_rebuilds);
  EXPECT_EQ(a.metrics.retry_backoffs, b.metrics.retry_backoffs);
  EXPECT_EQ(a.metrics.packets_lost, b.metrics.packets_lost);
  EXPECT_EQ(a.metrics.flits_lost, b.metrics.flits_lost);
  EXPECT_EQ(a.metrics.energy.switch_traversals,
            b.metrics.energy.switch_traversals);
  EXPECT_EQ(a.metrics.energy.wire_hops, b.metrics.energy.wire_hops);
  EXPECT_EQ(a.metrics.energy.wire_mm_flits, b.metrics.energy.wire_mm_flits);
  EXPECT_EQ(a.metrics.energy.wireless_flits, b.metrics.energy.wireless_flits);
  EXPECT_EQ(a.metrics.energy.buffer_writes, b.metrics.energy.buffer_writes);
  EXPECT_EQ(a.metrics.energy.buffer_reads, b.metrics.energy.buffer_reads);
}

TEST(NetEval, MemoizedMatchesFreshBitIdentical) {
  const auto profile = workload::make_profile(workload::App::kHist);
  const FullSystemSim sim;
  for (SystemKind kind : {SystemKind::kNvfiMesh, SystemKind::kVfiWinoc}) {
    const PlatformParams params = small_params(kind);
    const BuiltPlatform built = build_platform(profile, params,
                                               sim.vf_table());

    const NetworkEval fresh1 = evaluate_network_traffic(
        built, built.node_traffic, profile.packet_flits, params,
        sim.models().noc);
    const NetworkEval fresh2 = evaluate_network_traffic(
        built, built.node_traffic, profile.packet_flits, params,
        sim.models().noc);
    expect_identical(fresh1, fresh2);  // the evaluation itself is seeded

    NetworkEvaluator evaluator;
    const NetworkEval miss = evaluator.evaluate(
        built, built.node_traffic, profile.packet_flits, params,
        sim.models().noc);
    const NetworkEval hit = evaluator.evaluate(
        built, built.node_traffic, profile.packet_flits, params,
        sim.models().noc);
    expect_identical(miss, fresh1);
    expect_identical(hit, fresh1);
    EXPECT_EQ(evaluator.stats().misses, 1u);
    EXPECT_EQ(evaluator.stats().hits, 1u);
    EXPECT_EQ(evaluator.size(), 1u);
  }
}

TEST(NetEval, MemoizedMatchesFreshUnderFaults) {
  const auto profile = workload::make_profile(workload::App::kWC);
  const FullSystemSim sim;
  PlatformParams params = small_params(SystemKind::kVfiWinoc);
  params.faults.link_rate = 40.0;
  params.faults.router_rate = 20.0;
  params.faults.wi_rate = 40.0;
  params.faults.transient_fraction = 0.7;
  params.faults.seed = 77;
  const BuiltPlatform built = build_platform(profile, params, sim.vf_table());

  const NetworkEval fresh = evaluate_network_traffic(
      built, built.node_traffic, profile.packet_flits, params,
      sim.models().noc);
  NetworkEvaluator evaluator;
  const NetworkEval miss = evaluator.evaluate(
      built, built.node_traffic, profile.packet_flits, params,
      sim.models().noc);
  const NetworkEval hit = evaluator.evaluate(
      built, built.node_traffic, profile.packet_flits, params,
      sim.models().noc);
  expect_identical(miss, fresh);
  expect_identical(hit, fresh);
  EXPECT_EQ(evaluator.stats().misses, 1u);
  EXPECT_EQ(evaluator.stats().hits, 1u);

  // A different fault seed is a different simulation: distinct key, miss.
  PlatformParams reseeded = params;
  reseeded.faults.seed = 78;
  (void)evaluator.evaluate(built, built.node_traffic, profile.packet_flits,
                           reseeded, sim.models().noc);
  EXPECT_EQ(evaluator.stats().misses, 2u);
  EXPECT_EQ(evaluator.size(), 2u);
}

TEST(NetEval, KeyIsContentAddressedNotIdentityAddressed) {
  const auto profile = workload::make_profile(workload::App::kHist);
  const FullSystemSim sim;
  const PlatformParams params = small_params(SystemKind::kNvfiMesh);
  const BuiltPlatform built = build_platform(profile, params, sim.vf_table());

  NetworkEvaluator evaluator;
  (void)evaluator.evaluate(built, built.node_traffic, profile.packet_flits,
                           params, sim.models().noc);
  // Equal content through a different Matrix object must hit...
  const Matrix copy = built.node_traffic;
  (void)evaluator.evaluate(built, copy, profile.packet_flits, params,
                           sim.models().noc);
  EXPECT_EQ(evaluator.stats().hits, 1u);
  // ...and a one-cell perturbation must miss.
  Matrix changed = built.node_traffic;
  changed(0, 1) += 1e-6;
  (void)evaluator.evaluate(built, changed, profile.packet_flits, params,
                           sim.models().noc);
  EXPECT_EQ(evaluator.stats().misses, 2u);
  EXPECT_EQ(evaluator.size(), 2u);
}

TEST(NetEval, CatalogProfilesHitOnLibInitMergeIdentity) {
  // LibInit and Merge share a traffic matrix by construction (same affinity
  // row), so every phase-resolved run of an app with a merge stage replays
  // the LibInit evaluation — across the three systems of compare_systems
  // that is at least three guaranteed hits.
  const auto profile = workload::make_profile(workload::App::kHist);
  const FullSystemSim sim;
  NetworkEvaluator evaluator;
  PlatformParams params = small_params(SystemKind::kNvfiMesh);
  params.net_eval = &evaluator;
  const SystemComparison cmp = compare_systems(profile, sim, params);
  EXPECT_GE(evaluator.stats().hits, 3u);
  expect_identical(
      cmp.nvfi_mesh.phase_result(workload::Phase::kLibInit).net,
      cmp.nvfi_mesh.phase_result(workload::Phase::kMerge).net);
}

TEST(NetEval, DegenerateUniformPhasesReproduceLegacyCoupling) {
  const auto base = workload::make_profile(workload::App::kHist);
  ASSERT_TRUE(base.phase_resolved());

  // Legacy twin: no phase traffic -> the single whole-run evaluation path.
  workload::AppProfile legacy = base;
  legacy.phase_traffic = {};
  legacy.phase_weight = {};
  ASSERT_FALSE(legacy.phase_resolved());

  // Degenerate twin: four identical phase matrices, all equal to the
  // aggregate.  With phase_window_scale = 1 every phase evaluation is the
  // same simulation as the legacy whole-run evaluation.
  workload::AppProfile degenerate = base;
  for (std::size_t p = 0; p < workload::kPhaseCount; ++p) {
    degenerate.phase_traffic[p] = base.traffic;
    degenerate.phase_weight[p] = 0.25;
  }

  const FullSystemSim sim;
  for (SystemKind kind : {SystemKind::kNvfiMesh, SystemKind::kVfiWinoc}) {
    PlatformParams params = small_params(kind);
    params.phase_window_scale = 1.0;
    // A fixed scalar baseline exercises the mem_scale != 1 coupling path in
    // both pipelines identically.
    const double baseline = 20.0;
    const SystemReport legacy_report = sim.run(legacy, params, baseline);
    const SystemReport deg_report = sim.run(degenerate, params, baseline);
    ASSERT_FALSE(legacy_report.phase_resolved);
    ASSERT_TRUE(deg_report.phase_resolved);

    for (std::size_t p = 0; p < workload::kPhaseCount; ++p) {
      const PhaseResult& pr = deg_report.phase_results[p];
      ASSERT_TRUE(pr.evaluated);
      EXPECT_EQ(pr.net.avg_latency_cycles,
                legacy_report.net.avg_latency_cycles);
      EXPECT_EQ(pr.net.energy_per_flit_j, legacy_report.net.energy_per_flit_j);
      EXPECT_EQ(pr.mem_scale, legacy_report.mem_scale);
      EXPECT_EQ(pr.baseline_latency_cycles,
                legacy_report.baseline_latency_cycles);
    }
    // Whole-run aggregates are packet-/time-weighted means of four equal
    // values; equal up to rounding of the weighted fold.
    EXPECT_DOUBLE_EQ(deg_report.net.avg_latency_cycles,
                     legacy_report.net.avg_latency_cycles);
    EXPECT_DOUBLE_EQ(deg_report.mem_scale, legacy_report.mem_scale);
    // Equal per-phase mem_scales drive the task simulator through identical
    // draws, so the measured times agree exactly.
    EXPECT_EQ(deg_report.exec_s, legacy_report.exec_s);
    EXPECT_EQ(deg_report.core_energy_j, legacy_report.core_energy_j);
  }
}

TEST(NetEval, DegenerateProfileIsOneSimulationPlusThreeHits) {
  const auto base = workload::make_profile(workload::App::kHist);
  workload::AppProfile degenerate = base;
  for (std::size_t p = 0; p < workload::kPhaseCount; ++p) {
    degenerate.phase_traffic[p] = base.traffic;
    degenerate.phase_weight[p] = 0.25;
  }
  const FullSystemSim sim;
  NetworkEvaluator evaluator;
  PlatformParams params = small_params(SystemKind::kVfiWinoc);
  params.net_eval = &evaluator;
  (void)sim.run(degenerate, params, 20.0);
  EXPECT_EQ(evaluator.stats().misses, 1u);
  EXPECT_EQ(evaluator.stats().hits, 3u);
}

TEST(NetEval, FidelityBandIsPartOfTheCacheKey) {
  // Regression: the memo key must include the fidelity band.  Before the
  // fix, an analytical evaluation and a cycle-accurate evaluation of the
  // same (platform, traffic, params) serialized to the same key, so
  // whichever band ran first poisoned the cache for the other.
  const auto profile = workload::make_profile(workload::App::kHist);
  const FullSystemSim sim;
  PlatformParams params = small_params(SystemKind::kVfiWinoc);
  const BuiltPlatform built = build_platform(profile, params, sim.vf_table());

  NetworkEvaluator evaluator;
  params.fidelity = Fidelity::kCycleAccurate;
  const NetworkEval cycle = evaluator.evaluate(
      built, built.node_traffic, profile.packet_flits, params,
      sim.models().noc);
  params.fidelity = Fidelity::kAnalytical;
  const NetworkEval analytical = evaluator.evaluate(
      built, built.node_traffic, profile.packet_flits, params,
      sim.models().noc);

  // Both bands missed (distinct entries), nothing aliased.
  EXPECT_EQ(evaluator.size(), 2u);
  EXPECT_EQ(evaluator.stats().misses, 2u);
  EXPECT_EQ(evaluator.stats().hits, 0u);
  EXPECT_EQ(evaluator.stats().cycle_misses, 1u);
  EXPECT_EQ(evaluator.stats().analytical_misses, 1u);
  // The two results really are different simulations, not a relabeled copy.
  EXPECT_NE(cycle.avg_latency_cycles, analytical.avg_latency_cycles);

  // Replays hit their own band's entry and return it bit-identically.
  params.fidelity = Fidelity::kCycleAccurate;
  const NetworkEval cycle_hit = evaluator.evaluate(
      built, built.node_traffic, profile.packet_flits, params,
      sim.models().noc);
  params.fidelity = Fidelity::kAnalytical;
  const NetworkEval ana_hit = evaluator.evaluate(
      built, built.node_traffic, profile.packet_flits, params,
      sim.models().noc);
  expect_identical(cycle_hit, cycle);
  expect_identical(ana_hit, analytical);
  EXPECT_EQ(evaluator.stats().cycle_hits, 1u);
  EXPECT_EQ(evaluator.stats().analytical_hits, 1u);
  EXPECT_EQ(evaluator.size(), 2u);

  // kAuto explores analytically: it must land on the analytical entry.
  params.fidelity = Fidelity::kAuto;
  const NetworkEval auto_hit = evaluator.evaluate(
      built, built.node_traffic, profile.packet_flits, params,
      sim.models().noc);
  expect_identical(auto_hit, analytical);
  EXPECT_EQ(evaluator.stats().analytical_hits, 2u);
  EXPECT_EQ(evaluator.size(), 2u);
}

}  // namespace
}  // namespace vfimr::sysmodel
