// Property tests for the fault-injection layer: conservation under random
// fault schedules, fast-vs-reference bit identity with the fault machinery
// active, and graceful termination of hole-tolerant up*/down* routing on
// fault-mutilated (possibly disconnected) topologies.

#include <gtest/gtest.h>

#include "faults/faults.hpp"
#include "graph/graph.hpp"
#include "harness/generators.hpp"
#include "harness/property.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "noc/traffic.hpp"

namespace vfimr::noc {
namespace {

faults::FaultSchedule random_schedule(Rng& rng, const Topology& topo,
                                      std::uint64_t horizon) {
  faults::FaultSpec spec;
  // Heavy rates so short property windows still see several events.
  spec.link_rate = rng.uniform(0.0, 300.0);
  spec.router_rate = rng.uniform(0.0, 150.0);
  spec.transient_fraction = rng.uniform(0.0, 1.0);
  spec.mean_repair_cycles = 200 + rng.uniform_u64(800);
  std::vector<std::uint32_t> edges(topo.graph.edge_count());
  std::vector<std::uint32_t> routers(topo.graph.node_count());
  for (std::uint32_t i = 0; i < edges.size(); ++i) edges[i] = i;
  for (std::uint32_t i = 0; i < routers.size(); ++i) routers[i] = i;
  return faults::make_noc_schedule(spec, edges, routers, {}, horizon,
                                   rng.next_u64());
}

/// With losses possible, conservation means: every injected packet is either
/// ejected or lost, every offered flit ejected or lost, nothing in flight.
void expect_conserved_with_losses(const Network& net) {
  const Metrics& m = net.metrics();
  EXPECT_EQ(m.packets_ejected + m.packets_lost, m.packets_injected);
  EXPECT_EQ(m.flits_ejected + m.flits_lost, 4u * m.packets_injected);
  EXPECT_EQ(net.in_flight_flits(), 0u);
}

TEST(PropFaults, ConservationUnderRandomSchedules) {
  test::for_each_seed(8, [](Rng& rng, std::uint64_t seed) {
    const auto dims = test::random_mesh_dims(rng, 5);
    const Topology topo = make_mesh(dims.width, dims.height);
    const XyRouting routing{topo.graph, dims.width, dims.height};
    SimConfig cfg;
    cfg.faults = random_schedule(rng, topo, 1'500);
    Network net{topo, routing, cfg};

    const Matrix rates = test::random_traffic(rng, topo.node_count());
    MatrixTraffic gen{rates, /*packet_flits=*/4, seed};
    net.run(&gen, 1'500);
    ASSERT_TRUE(net.drain(200'000)) << "faulty mesh failed to drain";
    expect_conserved_with_losses(net);
    if (cfg.faults.empty()) {
      EXPECT_EQ(net.metrics().fault_events, 0u);
    }
  });
}

/// The NoC fast path (active-router worklist, candidate masks, bulk idle
/// skip) must stay bit-identical to the naive reference stepping with the
/// fault machinery active: fault events, purges, backoff waits, degraded
/// route rebuilds and all.
TEST(PropFaults, FastSteppingBitIdenticalUnderFaults) {
  test::for_each_seed(6, [](Rng& rng, std::uint64_t seed) {
    const auto dims = test::random_mesh_dims(rng, 5);
    const Topology topo = make_mesh(dims.width, dims.height);
    const XyRouting routing{topo.graph, dims.width, dims.height};
    const Matrix rates = test::random_traffic(rng, topo.node_count());
    const faults::FaultSchedule sched = random_schedule(rng, topo, 1'200);

    auto run_mode = [&](bool reference) {
      SimConfig c;
      c.faults = sched;
      c.reference_stepping = reference;
      Network net{topo, routing, c};
      MatrixTraffic gen{rates, /*packet_flits=*/4, seed};
      net.run(&gen, 1'200);
      net.drain(200'000);
      return net;
    };
    const Network fast = run_mode(false);
    const Network ref = run_mode(true);
    const Metrics& a = fast.metrics();
    const Metrics& b = ref.metrics();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.packets_injected, b.packets_injected);
    EXPECT_EQ(a.packets_ejected, b.packets_ejected);
    EXPECT_EQ(a.flits_ejected, b.flits_ejected);
    EXPECT_EQ(a.packet_latency.count(), b.packet_latency.count());
    EXPECT_EQ(a.packet_latency.sum(), b.packet_latency.sum());
    EXPECT_EQ(a.energy.switch_traversals, b.energy.switch_traversals);
    EXPECT_EQ(a.energy.wire_hops, b.energy.wire_hops);
    EXPECT_EQ(a.energy.wire_mm_flits, b.energy.wire_mm_flits);
    EXPECT_EQ(a.energy.buffer_writes, b.energy.buffer_writes);
    EXPECT_EQ(a.energy.buffer_reads, b.energy.buffer_reads);
    EXPECT_EQ(a.fault_events, b.fault_events);
    EXPECT_EQ(a.route_rebuilds, b.route_rebuilds);
    EXPECT_EQ(a.retry_backoffs, b.retry_backoffs);
    EXPECT_EQ(a.packets_lost, b.packets_lost);
    EXPECT_EQ(a.flits_lost, b.flits_lost);
    EXPECT_EQ(fast.in_flight_flits(), ref.in_flight_flits());
    EXPECT_EQ(fast.edge_flits(), ref.edge_flits());
  });
}

/// Hole-tolerant up*/down* on a fault-mutilated mesh: kill a random subset
/// of edges, build with allow_unreachable, and check that for every (s, d)
/// pair either the table walk reaches d over alive edges in a bounded number
/// of hops, or the very first hop reports an explicit hole — never a loop.
TEST(PropFaults, MutilatedUpDownTerminatesOrReportsUnreachable) {
  test::for_each_seed(10, [](Rng& rng, std::uint64_t) {
    const auto dims = test::random_mesh_dims(rng, 5);
    const Topology topo = make_mesh(dims.width, dims.height);
    const graph::Graph& g = topo.graph;
    const std::size_t n = g.node_count();

    std::vector<bool> alive(g.edge_count(), true);
    const double kill_prob = rng.uniform(0.1, 0.6);
    std::size_t alive_count = alive.size();
    for (std::size_t e = 0; e < alive.size(); ++e) {
      if (rng.bernoulli(kill_prob) && alive_count > 1) {
        alive[e] = false;
        --alive_count;
      }
    }

    UpDownOptions opts;
    opts.edge_alive = &alive;
    opts.allow_unreachable = true;
    const UpDownRouting routing{g, opts};

    for (graph::NodeId s = 0; s < n; ++s) {
      for (graph::NodeId d = 0; d < n; ++d) {
        if (s == d) continue;
        graph::NodeId at = s;
        bool down = false;
        bool reached = false;
        // A legal up*/down* route is at most one up-leg plus one down-leg,
        // each shorter than n; 2n hops is a generous loop bound.
        for (std::size_t hop = 0; hop < 2 * n; ++hop) {
          const RouteDecision dec = routing.next_hop(at, d, down);
          if (dec.edge == graph::kInvalidId) break;
          ASSERT_LT(dec.edge, alive.size());
          ASSERT_TRUE(alive[dec.edge])
              << "route uses dead edge " << dec.edge;
          at = g.other_end(dec.edge, at);
          down = dec.down_phase;
          if (at == d) {
            reached = true;
            break;
          }
        }
        EXPECT_EQ(reached, routing.reachable(s, d))
            << "pair " << s << " -> " << d << " (walk vs reachable())";
        if (!routing.reachable(s, d)) {
          EXPECT_EQ(routing.next_hop(s, d, false).edge, graph::kInvalidId);
        }
      }
    }
  });
}

/// Traffic into a network whose topology faults have disconnected must not
/// hang: unreachable packets back off and are eventually declared lost, the
/// rest drains.
TEST(PropFaults, DisconnectedNetworkDrainsWithBoundedLoss) {
  test::for_each_seed(6, [](Rng& rng, std::uint64_t seed) {
    const auto dims = test::random_mesh_dims(rng, 5);
    const Topology topo = make_mesh(dims.width, dims.height);
    const XyRouting routing{topo.graph, dims.width, dims.height};

    // Permanently cut every edge incident to a random node at cycle 0 —
    // guaranteed disconnection — plus some random extra link faults.
    faults::FaultSchedule sched;
    const auto victim =
        static_cast<graph::NodeId>(rng.uniform_u64(topo.node_count()));
    for (graph::EdgeId e = 0; e < topo.graph.edge_count(); ++e) {
      const auto& ed = topo.graph.edge(e);
      if (ed.a == victim || ed.b == victim) {
        sched.add(faults::NocFault{faults::NocFaultKind::kLink, e, 0,
                                   faults::kNeverRepaired});
      } else if (rng.bernoulli(0.1)) {
        sched.add(faults::NocFault{faults::NocFaultKind::kLink, e,
                                   rng.uniform_u64(500),
                                   faults::kNeverRepaired});
      }
    }
    SimConfig cfg;
    cfg.faults = sched;
    Network net{topo, routing, cfg};
    const Matrix rates = test::random_traffic(rng, topo.node_count(), 0.3);
    MatrixTraffic gen{rates, /*packet_flits=*/4, seed};
    net.run(&gen, 1'000);
    ASSERT_TRUE(net.drain(300'000)) << "disconnected mesh failed to drain";
    expect_conserved_with_losses(net);
  });
}

}  // namespace
}  // namespace vfimr::noc
