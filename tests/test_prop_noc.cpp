// Property tests for the cycle-accurate NoC simulator: flit conservation
// and deadlock-freedom on random meshes and random small-world WiNoC
// topologies under random traffic.  See tests/harness/property.hpp for the
// seeding/replay protocol.

#include <gtest/gtest.h>

#include <numeric>

#include "harness/generators.hpp"
#include "harness/property.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "noc/traffic.hpp"
#include "winoc/design.hpp"

namespace vfimr::noc {
namespace {

/// Conservation invariants that must hold on any fully drained network.
void expect_conserved(const Network& net, std::uint64_t expected_packets,
                      std::uint64_t expected_flits) {
  const Metrics& m = net.metrics();
  EXPECT_EQ(m.packets_injected, expected_packets);
  EXPECT_EQ(m.packets_ejected, expected_packets);
  EXPECT_EQ(m.flits_ejected, expected_flits);
  EXPECT_EQ(net.in_flight_flits(), 0u);
}

/// Edge-level accounting: per-edge flit counters must add up to the energy
/// counters' wire/wireless totals.
void expect_edge_accounting(const Network& net, const Topology& topo) {
  std::uint64_t wire = 0;
  std::uint64_t wireless = 0;
  const auto& per_edge = net.edge_flits();
  ASSERT_EQ(per_edge.size(), topo.graph.edge_count());
  for (graph::EdgeId e = 0; e < per_edge.size(); ++e) {
    if (topo.graph.edge(e).kind == graph::EdgeKind::kWire) {
      wire += per_edge[e];
    } else {
      wireless += per_edge[e];
    }
  }
  EXPECT_EQ(net.metrics().energy.wire_hops, wire);
  EXPECT_EQ(net.metrics().energy.wireless_flits, wireless);
}

TEST(PropNoc, FlitConservationOnRandomMesh) {
  test::for_each_seed(8, [](Rng& rng, std::uint64_t) {
    const auto dims = test::random_mesh_dims(rng, 6);
    const Topology topo = make_mesh(dims.width, dims.height);
    const XyRouting routing{topo.graph, dims.width, dims.height};
    Network net{topo, routing};

    const std::size_t n = topo.node_count();
    const std::size_t packets = 1 + rng.uniform_u64(80);
    std::uint64_t flits = 0;
    for (std::size_t i = 0; i < packets; ++i) {
      const auto src = static_cast<graph::NodeId>(rng.uniform_u64(n));
      auto dest = static_cast<graph::NodeId>(rng.uniform_u64(n - 1));
      if (dest >= src) ++dest;
      const auto size = static_cast<std::uint32_t>(1 + rng.uniform_u64(6));
      net.inject(src, dest, size);
      flits += size;
    }
    ASSERT_TRUE(net.drain(50'000)) << "mesh failed to drain (deadlock?)";
    expect_conserved(net, packets, flits);
    expect_edge_accounting(net, topo);
  });
}

TEST(PropNoc, RandomMatrixTrafficDrainsOnMesh) {
  test::for_each_seed(6, [](Rng& rng, std::uint64_t seed) {
    const auto dims = test::random_mesh_dims(rng, 5);
    const Topology topo = make_mesh(dims.width, dims.height);
    const XyRouting routing{topo.graph, dims.width, dims.height};
    Network net{topo, routing};

    const Matrix rates = test::random_traffic(rng, topo.node_count());
    MatrixTraffic gen{rates, /*packet_flits=*/4, /*seed=*/seed};
    net.run(&gen, 2'000);
    ASSERT_TRUE(net.drain(100'000)) << "mesh failed to drain under load";
    const Metrics& m = net.metrics();
    EXPECT_EQ(m.packets_ejected, m.packets_injected);
    EXPECT_EQ(m.flits_ejected, 4u * m.packets_injected);
    EXPECT_EQ(net.in_flight_flits(), 0u);
    expect_edge_accounting(net, topo);
  });
}

/// Random small-world WiNoC: the full design flow (thread mapping, wireline
/// construction, wireless overlay, up*/down* routing) must yield a connected,
/// deadlock-free network that conserves flits under its own mapped traffic.
TEST(PropNoc, SmallWorldWinocNoDeadlock) {
  test::for_each_seed(4, [](Rng& rng, std::uint64_t seed) {
    constexpr std::size_t kThreads = 64;
    const Matrix traffic = test::random_traffic(rng, kThreads, 0.1, 0.004);

    // Random equal-size thread->cluster partition (the Eq. 1 result shape).
    std::vector<std::size_t> ids(kThreads);
    std::iota(ids.begin(), ids.end(), std::size_t{0});
    rng.shuffle(ids);
    std::vector<std::size_t> thread_cluster(kThreads);
    for (std::size_t i = 0; i < kThreads; ++i) {
      thread_cluster[ids[i]] = i / (kThreads / 4);
    }

    winoc::SmallWorldParams params;
    params.seed = seed;
    const auto design = winoc::build_winoc(
        traffic, thread_cluster,
        winoc::PlacementStrategy::kMaxWirelessUtilization, params);

    ASSERT_TRUE(graph::is_connected(design.topology.graph));
    const UpDownRouting routing{design.topology.graph, 2.0};
    SimConfig cfg;
    cfg.node_cluster = design.node_cluster;
    Network net{design.topology, routing, cfg, design.wireless};

    MatrixTraffic gen{design.node_traffic, /*packet_flits=*/4, seed};
    net.run(&gen, 1'500);
    ASSERT_TRUE(net.drain(150'000)) << "WiNoC failed to drain (deadlock?)";
    const Metrics& m = net.metrics();
    EXPECT_EQ(m.packets_ejected, m.packets_injected);
    EXPECT_EQ(m.flits_ejected, 4u * m.packets_injected);
    EXPECT_EQ(net.in_flight_flits(), 0u);
    expect_edge_accounting(net, design.topology);
  });
}

/// Every observable of a finished simulation, compared exactly — EXPECT_EQ
/// on the doubles, not EXPECT_NEAR: the fast stepping path must preserve the
/// float accumulation order of the naive loops bit for bit.
void expect_bit_identical(const Network& fast, const Network& ref) {
  const Metrics& a = fast.metrics();
  const Metrics& b = ref.metrics();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_ejected, b.packets_ejected);
  EXPECT_EQ(a.packets_local, b.packets_local);
  EXPECT_EQ(a.flits_ejected, b.flits_ejected);
  EXPECT_EQ(a.packet_latency.count(), b.packet_latency.count());
  EXPECT_EQ(a.packet_latency.sum(), b.packet_latency.sum());
  EXPECT_EQ(a.packet_latency.mean(), b.packet_latency.mean());
  EXPECT_EQ(a.packet_latency.variance(), b.packet_latency.variance());
  EXPECT_EQ(a.packet_latency.min(), b.packet_latency.min());
  EXPECT_EQ(a.packet_latency.max(), b.packet_latency.max());
  EXPECT_EQ(a.energy.switch_traversals, b.energy.switch_traversals);
  EXPECT_EQ(a.energy.wire_hops, b.energy.wire_hops);
  EXPECT_EQ(a.energy.wire_mm_flits, b.energy.wire_mm_flits);
  EXPECT_EQ(a.energy.wireless_flits, b.energy.wireless_flits);
  EXPECT_EQ(a.energy.buffer_writes, b.energy.buffer_writes);
  EXPECT_EQ(a.energy.buffer_reads, b.energy.buffer_reads);
  EXPECT_EQ(fast.in_flight_flits(), ref.in_flight_flits());
  EXPECT_EQ(fast.edge_flits(), ref.edge_flits());
}

/// A/B proof on a VFI-partitioned mesh: the active-router worklist, the
/// candidate-mask arbitration and the bulk idle-cycle skip (exercised by the
/// random sync penalty, which makes boundary-crossing flits wait) must
/// reproduce the naive all-router stepping exactly.
TEST(PropNoc, FastSteppingBitIdenticalOnVfiMesh) {
  test::for_each_seed(5, [](Rng& rng, std::uint64_t seed) {
    const auto dims = test::random_mesh_dims(rng, 5);
    const Topology topo = make_mesh(dims.width, dims.height);
    const XyRouting routing{topo.graph, dims.width, dims.height};
    const Matrix rates = test::random_traffic(rng, topo.node_count());

    SimConfig cfg;
    cfg.node_cluster.resize(topo.node_count());
    for (std::size_t n = 0; n < topo.node_count(); ++n) {
      const std::size_t x = n % dims.width;
      const std::size_t y = n / dims.width;
      cfg.node_cluster[n] =
          2 * (y >= (dims.height + 1) / 2) + (x >= (dims.width + 1) / 2);
    }
    cfg.sync_penalty_cycles =
        static_cast<std::uint32_t>(1 + rng.uniform_u64(4));

    auto run_mode = [&](bool reference) {
      SimConfig c = cfg;
      c.reference_stepping = reference;
      Network net{topo, routing, c};
      MatrixTraffic gen{rates, /*packet_flits=*/4, seed};
      net.run(&gen, 800);
      net.drain(100'000);
      return net;
    };
    expect_bit_identical(run_mode(false), run_mode(true));
  });
}

/// A/B proof on the full WiNoC stack: token-MAC wireless channels, layered
/// VN0/VN1 routing and up*/down* wireline routing under mapped traffic.
TEST(PropNoc, FastSteppingBitIdenticalOnWinoc) {
  test::for_each_seed(3, [](Rng& rng, std::uint64_t seed) {
    constexpr std::size_t kThreads = 64;
    const Matrix traffic = test::random_traffic(rng, kThreads, 0.1, 0.004);
    std::vector<std::size_t> ids(kThreads);
    std::iota(ids.begin(), ids.end(), std::size_t{0});
    rng.shuffle(ids);
    std::vector<std::size_t> thread_cluster(kThreads);
    for (std::size_t i = 0; i < kThreads; ++i) {
      thread_cluster[ids[i]] = i / (kThreads / 4);
    }
    winoc::SmallWorldParams params;
    params.seed = seed;
    const auto design = winoc::build_winoc(
        traffic, thread_cluster,
        winoc::PlacementStrategy::kMaxWirelessUtilization, params);
    const UpDownRouting routing{design.topology.graph, 2.0};

    auto run_mode = [&](bool reference) {
      SimConfig c;
      c.node_cluster = design.node_cluster;
      c.reference_stepping = reference;
      Network net{design.topology, routing, c, design.wireless};
      MatrixTraffic gen{design.node_traffic, /*packet_flits=*/4, seed};
      net.run(&gen, 1'000);
      net.drain(150'000);
      return net;
    };
    expect_bit_identical(run_mode(false), run_mode(true));
  });
}

/// A/B proof of the drain()-only path, where the bulk idle-cycle skip does
/// the most work: a sparse burst with a large sync penalty leaves long
/// stretches where every queued flit is waiting on a synchronizer.
TEST(PropNoc, FastDrainBitIdenticalUnderSyncPenalties) {
  test::for_each_seed(5, [](Rng& rng, std::uint64_t) {
    const auto dims = test::random_mesh_dims(rng, 6);
    const Topology topo = make_mesh(dims.width, dims.height);
    const XyRouting routing{topo.graph, dims.width, dims.height};
    const std::size_t n = topo.node_count();

    SimConfig cfg;
    cfg.node_cluster.resize(n);
    for (graph::NodeId i = 0; i < n; ++i) cfg.node_cluster[i] = i % 3;
    cfg.sync_penalty_cycles =
        static_cast<std::uint32_t>(2 + rng.uniform_u64(7));

    struct Packet {
      graph::NodeId src, dest;
      std::uint32_t flits;
    };
    std::vector<Packet> burst;
    const std::size_t packets = 1 + rng.uniform_u64(12);
    for (std::size_t i = 0; i < packets; ++i) {
      const auto src = static_cast<graph::NodeId>(rng.uniform_u64(n));
      auto dest = static_cast<graph::NodeId>(rng.uniform_u64(n - 1));
      if (dest >= src) ++dest;
      burst.push_back(
          {src, dest, static_cast<std::uint32_t>(1 + rng.uniform_u64(6))});
    }

    auto run_mode = [&](bool reference) {
      SimConfig c = cfg;
      c.reference_stepping = reference;
      Network net{topo, routing, c};
      for (const auto& p : burst) net.inject(p.src, p.dest, p.flits);
      EXPECT_TRUE(net.drain(200'000));
      return net;
    };
    expect_bit_identical(run_mode(false), run_mode(true));
  });
}

/// Determinism: the same seed must reproduce the same simulation, metric
/// for metric (the property the golden-figure guard rests on).
TEST(PropNoc, SimulationIsSeedDeterministic) {
  test::for_each_seed(3, [](Rng& rng, std::uint64_t seed) {
    const auto dims = test::random_mesh_dims(rng, 5);
    const Matrix rates = test::random_traffic(rng, dims.width * dims.height);
    auto run_once = [&]() {
      const Topology topo = make_mesh(dims.width, dims.height);
      const XyRouting routing{topo.graph, dims.width, dims.height};
      Network net{topo, routing};
      MatrixTraffic gen{rates, 4, seed};
      net.run(&gen, 1'000);
      net.drain(50'000);
      return net.metrics();
    };
    const Metrics a = run_once();
    const Metrics b = run_once();
    EXPECT_EQ(a.packets_injected, b.packets_injected);
    EXPECT_EQ(a.packets_ejected, b.packets_ejected);
    EXPECT_EQ(a.flits_ejected, b.flits_ejected);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.avg_latency(), b.avg_latency());
    EXPECT_EQ(a.energy.switch_traversals, b.energy.switch_traversals);
    EXPECT_EQ(a.energy.wire_hops, b.energy.wire_hops);
  });
}

}  // namespace
}  // namespace vfimr::noc
