// Property tests for the cycle-accurate NoC simulator: flit conservation
// and deadlock-freedom on random meshes and random small-world WiNoC
// topologies under random traffic.  See tests/harness/property.hpp for the
// seeding/replay protocol.

#include <gtest/gtest.h>

#include <numeric>

#include "harness/generators.hpp"
#include "harness/property.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "noc/traffic.hpp"
#include "winoc/design.hpp"

namespace vfimr::noc {
namespace {

/// Conservation invariants that must hold on any fully drained network.
void expect_conserved(const Network& net, std::uint64_t expected_packets,
                      std::uint64_t expected_flits) {
  const Metrics& m = net.metrics();
  EXPECT_EQ(m.packets_injected, expected_packets);
  EXPECT_EQ(m.packets_ejected, expected_packets);
  EXPECT_EQ(m.flits_ejected, expected_flits);
  EXPECT_EQ(net.in_flight_flits(), 0u);
}

/// Edge-level accounting: per-edge flit counters must add up to the energy
/// counters' wire/wireless totals.
void expect_edge_accounting(const Network& net, const Topology& topo) {
  std::uint64_t wire = 0;
  std::uint64_t wireless = 0;
  const auto& per_edge = net.edge_flits();
  ASSERT_EQ(per_edge.size(), topo.graph.edge_count());
  for (graph::EdgeId e = 0; e < per_edge.size(); ++e) {
    if (topo.graph.edge(e).kind == graph::EdgeKind::kWire) {
      wire += per_edge[e];
    } else {
      wireless += per_edge[e];
    }
  }
  EXPECT_EQ(net.metrics().energy.wire_hops, wire);
  EXPECT_EQ(net.metrics().energy.wireless_flits, wireless);
}

TEST(PropNoc, FlitConservationOnRandomMesh) {
  test::for_each_seed(8, [](Rng& rng, std::uint64_t) {
    const auto dims = test::random_mesh_dims(rng, 6);
    const Topology topo = make_mesh(dims.width, dims.height);
    const XyRouting routing{topo.graph, dims.width, dims.height};
    Network net{topo, routing};

    const std::size_t n = topo.node_count();
    const std::size_t packets = 1 + rng.uniform_u64(80);
    std::uint64_t flits = 0;
    for (std::size_t i = 0; i < packets; ++i) {
      const auto src = static_cast<graph::NodeId>(rng.uniform_u64(n));
      auto dest = static_cast<graph::NodeId>(rng.uniform_u64(n - 1));
      if (dest >= src) ++dest;
      const auto size = static_cast<std::uint32_t>(1 + rng.uniform_u64(6));
      net.inject(src, dest, size);
      flits += size;
    }
    ASSERT_TRUE(net.drain(50'000)) << "mesh failed to drain (deadlock?)";
    expect_conserved(net, packets, flits);
    expect_edge_accounting(net, topo);
  });
}

TEST(PropNoc, RandomMatrixTrafficDrainsOnMesh) {
  test::for_each_seed(6, [](Rng& rng, std::uint64_t seed) {
    const auto dims = test::random_mesh_dims(rng, 5);
    const Topology topo = make_mesh(dims.width, dims.height);
    const XyRouting routing{topo.graph, dims.width, dims.height};
    Network net{topo, routing};

    const Matrix rates = test::random_traffic(rng, topo.node_count());
    MatrixTraffic gen{rates, /*packet_flits=*/4, /*seed=*/seed};
    net.run(&gen, 2'000);
    ASSERT_TRUE(net.drain(100'000)) << "mesh failed to drain under load";
    const Metrics& m = net.metrics();
    EXPECT_EQ(m.packets_ejected, m.packets_injected);
    EXPECT_EQ(m.flits_ejected, 4u * m.packets_injected);
    EXPECT_EQ(net.in_flight_flits(), 0u);
    expect_edge_accounting(net, topo);
  });
}

/// Random small-world WiNoC: the full design flow (thread mapping, wireline
/// construction, wireless overlay, up*/down* routing) must yield a connected,
/// deadlock-free network that conserves flits under its own mapped traffic.
TEST(PropNoc, SmallWorldWinocNoDeadlock) {
  test::for_each_seed(4, [](Rng& rng, std::uint64_t seed) {
    constexpr std::size_t kThreads = 64;
    const Matrix traffic = test::random_traffic(rng, kThreads, 0.1, 0.004);

    // Random equal-size thread->cluster partition (the Eq. 1 result shape).
    std::vector<std::size_t> ids(kThreads);
    std::iota(ids.begin(), ids.end(), std::size_t{0});
    rng.shuffle(ids);
    std::vector<std::size_t> thread_cluster(kThreads);
    for (std::size_t i = 0; i < kThreads; ++i) {
      thread_cluster[ids[i]] = i / (kThreads / 4);
    }

    winoc::SmallWorldParams params;
    params.seed = seed;
    const auto design = winoc::build_winoc(
        traffic, thread_cluster,
        winoc::PlacementStrategy::kMaxWirelessUtilization, params);

    ASSERT_TRUE(graph::is_connected(design.topology.graph));
    const UpDownRouting routing{design.topology.graph, 2.0};
    SimConfig cfg;
    cfg.node_cluster = design.node_cluster;
    Network net{design.topology, routing, cfg, design.wireless};

    MatrixTraffic gen{design.node_traffic, /*packet_flits=*/4, seed};
    net.run(&gen, 1'500);
    ASSERT_TRUE(net.drain(150'000)) << "WiNoC failed to drain (deadlock?)";
    const Metrics& m = net.metrics();
    EXPECT_EQ(m.packets_ejected, m.packets_injected);
    EXPECT_EQ(m.flits_ejected, 4u * m.packets_injected);
    EXPECT_EQ(net.in_flight_flits(), 0u);
    expect_edge_accounting(net, design.topology);
  });
}

/// Determinism: the same seed must reproduce the same simulation, metric
/// for metric (the property the golden-figure guard rests on).
TEST(PropNoc, SimulationIsSeedDeterministic) {
  test::for_each_seed(3, [](Rng& rng, std::uint64_t seed) {
    const auto dims = test::random_mesh_dims(rng, 5);
    const Matrix rates = test::random_traffic(rng, dims.width * dims.height);
    auto run_once = [&]() {
      const Topology topo = make_mesh(dims.width, dims.height);
      const XyRouting routing{topo.graph, dims.width, dims.height};
      Network net{topo, routing};
      MatrixTraffic gen{rates, 4, seed};
      net.run(&gen, 1'000);
      net.drain(50'000);
      return net.metrics();
    };
    const Metrics a = run_once();
    const Metrics b = run_once();
    EXPECT_EQ(a.packets_injected, b.packets_injected);
    EXPECT_EQ(a.packets_ejected, b.packets_ejected);
    EXPECT_EQ(a.flits_ejected, b.flits_ejected);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.avg_latency(), b.avg_latency());
    EXPECT_EQ(a.energy.switch_traversals, b.energy.switch_traversals);
    EXPECT_EQ(a.energy.wire_hops, b.energy.wire_hops);
  });
}

}  // namespace
}  // namespace vfimr::noc
