// Tests for the serving-tier observability layer (DESIGN.md §15): sink-off
// bit-identity, the attribution exactness contract (components sum
// bit-exactly to each job's end-to-end latency, including faulty / hedged /
// degraded runs), monitor semantics, trace lane shape, and the time-series
// rollups the observer registers.  Single app x single platform type in the
// analytical band, mirroring tests/test_cluster_faults.cpp.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "cluster/arrivals.hpp"
#include "cluster/fleet_faults.hpp"
#include "cluster/observer.hpp"
#include "cluster/service.hpp"
#include "cluster/serving.hpp"
#include "common/require.hpp"
#include "faults/faults.hpp"
#include "sysmodel/net_eval.hpp"
#include "sysmodel/system_sim.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/profile.hpp"

namespace vfimr {
namespace {

using cluster::AttemptSpan;
using cluster::AttributionComponents;
using cluster::ClusterObsReport;
using cluster::ClusterReport;
using cluster::ClusterSim;
using cluster::FleetConfig;
using cluster::FleetFaultPlan;
using cluster::JobArrival;
using cluster::JobSpan;
using cluster::PlatformTypeSpec;
using cluster::ServiceMatrix;
using faults::PlatformFault;
using faults::PlatformFaultKind;

/// One app (WC) on one platform type (VFI WiNoC), analytical band; a single
/// ServiceMatrix serves every scenario, E = at(0, 0).exec_s is exact.
class ClusterObsTest : public ::testing::Test {
 protected:
  static std::vector<PlatformTypeSpec> fleet_types(std::size_t count) {
    sysmodel::PlatformParams p;
    p.fidelity = sysmodel::Fidelity::kAnalytical;
    p.sim_cycles = 4'000;
    p.drain_cycles = 20'000;
    p.net_eval = &evaluator();
    p.platform_cache = &platforms();
    p.kind = sysmodel::SystemKind::kVfiWinoc;
    PlatformTypeSpec t;
    t.label = "vfi-winoc";
    t.params = p;
    t.count = count;
    return {t};
  }

  static sysmodel::NetworkEvaluator& evaluator() {
    static sysmodel::NetworkEvaluator e;
    return e;
  }
  static sysmodel::PlatformCache& platforms() {
    static sysmodel::PlatformCache c;
    return c;
  }

  static const ServiceMatrix& matrix() {
    static const ServiceMatrix m = ServiceMatrix::evaluate(
        {workload::make_profile(workload::App::kWC)}, fleet_types(1),
        sysmodel::FullSystemSim{});
    return m;
  }

  static double service_s() { return matrix().at(0, 0).exec_s; }

  static JobArrival job_at(double t, double deadline_s = 0.0) {
    return JobArrival{t, workload::App::kWC, deadline_s};
  }

  static std::vector<JobArrival> poisson_jobs(std::size_t count, double rho,
                                              std::size_t instances,
                                              double deadline_factor = 0.0) {
    cluster::ArrivalConfig cfg;
    cfg.rate_jobs_per_s =
        rho * static_cast<double>(instances) / service_s();
    cfg.job_count = count;
    cfg.seed = 23;
    cfg.app_mix.assign(workload::kAllApps.size(), 0.0);
    cfg.app_mix[static_cast<std::size_t>(workload::App::kWC)] = 1.0;
    if (deadline_factor > 0.0) {
      cfg.deadline_factor = deadline_factor;
      std::array<double, workload::kAllApps.size()> hints{};
      hints[static_cast<std::size_t>(workload::App::kWC)] = service_s();
      cfg.service_hint_s = hints;
    }
    return cluster::make_arrivals(cfg);
  }

  static void expect_identical(const ClusterReport& a,
                               const ClusterReport& b) {
    EXPECT_EQ(a.completion_digest, b.completion_digest);
    EXPECT_EQ(a.fleet.completed, b.fleet.completed);
    EXPECT_EQ(a.fleet.latency_s.sum(), b.fleet.latency_s.sum());
    EXPECT_EQ(a.fleet.energy_j.sum(), b.fleet.energy_j.sum());
    EXPECT_EQ(a.busy_seconds, b.busy_seconds);
    EXPECT_EQ(a.wasted_energy_j, b.wasted_energy_j);
  }

  /// Every completed job's components must sum bit-exactly to its latency;
  /// returns how many jobs carried a nonzero backoff component.
  static std::size_t expect_attribution_exact(const ClusterObsReport& o) {
    std::size_t with_backoff = 0;
    std::size_t completed = 0;
    for (const JobSpan& j : o.spans.jobs) {
      if (j.outcome != cluster::JobOutcome::kCompleted) continue;
      ++completed;
      EXPECT_GE(j.winner, 0) << "completed job without a winning attempt";
      if (j.winner < 0) continue;
      const AttemptSpan& w =
          o.spans.attempts[static_cast<std::size_t>(j.winner)];
      const AttributionComponents c = cluster::attribute_job(j, w);
      EXPECT_EQ(c.sum(), j.latency_s()) << "job " << j.id;
      if (c.backoff_s > 0.0) ++with_backoff;
    }
    EXPECT_EQ(completed, o.completed);
    for (const cluster::JobAttribution& row : o.tail) {
      EXPECT_EQ(row.comp.sum(), row.latency_s) << "tail job " << row.job;
    }
    return with_backoff;
  }
};

// ------------------------------------------------------------- identity

TEST_F(ClusterObsTest, SinkOffRunsAreBitIdentical) {
  const auto arrivals = poisson_jobs(3'000, 0.8, 3);
  FleetConfig plain;
  plain.types = fleet_types(3);

  telemetry::TelemetrySink sink;
  FleetConfig traced = plain;
  traced.telemetry = &sink;
  traced.obs.enabled = true;

  const ClusterReport a = ClusterSim::run(arrivals, plain, matrix());
  const ClusterReport b = ClusterSim::run(arrivals, traced, matrix());
  expect_identical(a, b);
  EXPECT_EQ(a.obs, nullptr);
  ASSERT_NE(b.obs, nullptr);
  EXPECT_EQ(b.obs->completed, b.fleet.completed);
  EXPECT_EQ(b.obs->jobs_tracked, b.fleet.admitted);

  // obs.enabled without a sink is inert; a sink without obs.enabled too.
  FleetConfig no_sink = plain;
  no_sink.obs.enabled = true;
  const ClusterReport c = ClusterSim::run(arrivals, no_sink, matrix());
  expect_identical(a, c);
  EXPECT_EQ(c.obs, nullptr);

  telemetry::TelemetrySink sink2;
  FleetConfig not_enabled = plain;
  not_enabled.telemetry = &sink2;
  const ClusterReport d = ClusterSim::run(arrivals, not_enabled, matrix());
  expect_identical(a, d);
  EXPECT_EQ(d.obs, nullptr);
}

TEST_F(ClusterObsTest, FaultyRunIdenticalAndAttributionExact) {
  const std::size_t instances = 4;
  const auto arrivals = poisson_jobs(4'000, 0.7, instances, 8.0);

  faults::FleetFaultSpec spec;
  const double horizon =
      1.2 * 4'000.0 * service_s() / (0.7 * static_cast<double>(instances));
  spec.crash_rate_per_ks = 4.0 / (horizon / 1000.0);
  spec.degrade_rate_per_ks = 2.0 / (horizon / 1000.0);
  spec.mean_repair_s = 0.03 * horizon;
  spec.mean_degrade_s = 0.05 * horizon;
  spec.degrade_slowdown = 3.0;
  spec.seed = 5;

  FleetConfig faulty;
  faulty.types = fleet_types(instances);
  faulty.retry.max_attempts = 4;
  faulty.retry.backoff_base_s = 0.25 * service_s();
  faulty.hedge.latency_multiplier = 3.0;
  faulty.faults =
      FleetFaultPlan::from_spec(spec, instances, horizon);

  telemetry::TelemetrySink sink;
  FleetConfig traced = faulty;
  traced.telemetry = &sink;
  traced.obs.enabled = true;

  const ClusterReport a = ClusterSim::run(arrivals, faulty, matrix());
  const ClusterReport b = ClusterSim::run(arrivals, traced, matrix());
  expect_identical(a, b);
  ASSERT_NE(b.obs, nullptr);

  // The scenario must actually exercise the faulty hooks, or this test
  // proves nothing: crashes displace work and retries re-place it.
  EXPECT_GT(b.fleet.failovers, 0u);
  EXPECT_GT(b.fleet.retries, 0u);
  const std::size_t with_backoff = expect_attribution_exact(*b.obs);
  EXPECT_GT(with_backoff, 0u);
}

// ----------------------------------------------------------- attribution

TEST_F(ClusterObsTest, AttributionComponentsCarryTheRightCauses) {
  // Plain job: queued 2 s, ran 3 s undegraded.
  JobSpan j;
  j.arrival_s = 0.0;
  j.end_s = 5.0;
  AttemptSpan w;
  w.enqueue_s = 0.0;
  w.start_s = 2.0;
  w.end_s = 5.0;
  w.base_exec_s = 3.0;
  w.actual_exec_s = 3.0;
  AttributionComponents c = cluster::attribute_job(j, w);
  EXPECT_EQ(c.service_s, 3.0);
  EXPECT_EQ(c.degraded_s, 0.0);
  EXPECT_EQ(c.queue_s, 2.0);
  EXPECT_EQ(c.sum(), j.latency_s());

  // Degraded instance: same job, slowdown stretched the run to 6 s.
  JobSpan jd = j;
  jd.end_s = 8.0;
  AttemptSpan wd = w;
  wd.end_s = 8.0;
  wd.actual_exec_s = 6.0;
  c = cluster::attribute_job(jd, wd);
  EXPECT_EQ(c.service_s, 3.0);
  EXPECT_EQ(c.degraded_s, 3.0);
  EXPECT_EQ(c.queue_s, 2.0);
  EXPECT_EQ(c.sum(), jd.latency_s());

  // Retry: 1.5 s parked in backoff before the winning re-placement.
  JobSpan jr = j;
  jr.backoff_s = 1.5;
  jr.end_s = 6.5;
  AttemptSpan wr = w;
  wr.enqueue_s = 1.5;
  wr.start_s = 3.5;
  wr.end_s = 6.5;
  c = cluster::attribute_job(jr, wr);
  EXPECT_EQ(c.service_s, 3.0);
  EXPECT_EQ(c.backoff_s, 1.5);
  EXPECT_EQ(c.queue_s, 2.0);
  EXPECT_EQ(c.sum(), jr.latency_s());

  // Winning hedge: launched 4 s after arrival, none of it backoff.
  JobSpan jh = j;
  jh.end_s = 9.0;
  jh.hedged = true;
  AttemptSpan wh = w;
  wh.slot = 1;
  wh.enqueue_s = 4.0;
  wh.start_s = 6.0;
  wh.end_s = 9.0;
  c = cluster::attribute_job(jh, wh);
  EXPECT_EQ(c.service_s, 3.0);
  EXPECT_EQ(c.hedge_wait_s, 4.0);
  EXPECT_EQ(c.queue_s, 2.0);
  EXPECT_EQ(c.sum(), jh.latency_s());
}

// -------------------------------------------------------------- monitors

TEST_F(ClusterObsTest, MonitorsEngageUnderOverloadAndTightCap) {
  // One instance, offered load 1.6x capacity, deadlines of 2 service times:
  // the queue grows without bound, so late completions violate their
  // deadlines and the burn-rate monitor must trip.  The power cap sits just
  // above one job's draw, so every busy epoch breaches 90% proximity.
  const auto arrivals = poisson_jobs(600, 1.6, 1, 2.0);
  telemetry::TelemetrySink sink;
  FleetConfig fleet;
  fleet.types = fleet_types(1);
  fleet.power_cap = cluster::PowerCapMode::kDelay;
  fleet.power_cap_w = 1.05 * matrix().at(0, 0).power_w;
  fleet.telemetry = &sink;
  fleet.obs.enabled = true;

  const ClusterReport r = ClusterSim::run(arrivals, fleet, matrix());
  ASSERT_NE(r.obs, nullptr);
  EXPECT_GT(r.fleet.deadline_misses, 0u);

  EXPECT_TRUE(r.obs->sla_burn.enabled);
  EXPECT_GT(r.obs->sla_burn.epochs, 0u);
  EXPECT_GT(r.obs->sla_burn.breach_epochs, 0u);
  EXPECT_GE(r.obs->sla_burn.first_breach_s, 0.0);
  EXPECT_LE(r.obs->sla_burn.breach_fraction(), 1.0);

  EXPECT_TRUE(r.obs->power_proximity.enabled);
  EXPECT_GT(r.obs->power_proximity.breach_epochs, 0u);
  EXPECT_GE(r.obs->power_proximity.first_breach_s, 0.0);
}

TEST_F(ClusterObsTest, MonitorsStayDisabledWithoutTargets) {
  // No deadlines, no SLA latency target, no power cap: both monitors must
  // report disabled (epochs still counted, zero breaches).
  const auto arrivals = poisson_jobs(500, 0.6, 2);
  telemetry::TelemetrySink sink;
  FleetConfig fleet;
  fleet.types = fleet_types(2);
  fleet.telemetry = &sink;
  fleet.obs.enabled = true;

  const ClusterReport r = ClusterSim::run(arrivals, fleet, matrix());
  ASSERT_NE(r.obs, nullptr);
  EXPECT_FALSE(r.obs->sla_burn.enabled);
  EXPECT_EQ(r.obs->sla_burn.breach_epochs, 0u);
  EXPECT_EQ(r.obs->sla_burn.first_breach_s, -1.0);
  EXPECT_FALSE(r.obs->power_proximity.enabled);
  EXPECT_EQ(r.obs->power_proximity.breach_epochs, 0u);
}

// ------------------------------------------------------ rollups & trace

TEST_F(ClusterObsTest, SeriesTotalsMatchTheReport) {
  const auto arrivals = poisson_jobs(2'000, 0.8, 2);
  telemetry::TelemetrySink sink;
  FleetConfig fleet;
  fleet.types = fleet_types(2);
  fleet.telemetry = &sink;
  fleet.obs.enabled = true;
  fleet.obs.label = "t13";
  fleet.obs.epoch_s = 0.5 * service_s();

  const ClusterReport r = ClusterSim::run(arrivals, fleet, matrix());
  ASSERT_NE(r.obs, nullptr);
  EXPECT_EQ(r.obs->epoch_s, 0.5 * service_s());
  ASSERT_EQ(r.obs->series.size(), 5u);

  bool saw_goodput = false;
  for (const cluster::SeriesSnapshot& s : r.obs->series) {
    EXPECT_EQ(s.name.rfind("t13.", 0), 0u) << s.name;
    EXPECT_EQ(s.epoch_s, r.obs->epoch_s);
    // Epochs strictly ascend within a series.
    for (std::size_t i = 1; i < s.epochs.size(); ++i) {
      EXPECT_GT(s.epochs[i].first, s.epochs[i - 1].first);
    }
    if (s.name == "t13.goodput") {
      saw_goodput = true;
      std::uint64_t total = 0;
      for (const auto& [epoch, stats] : s.epochs) total += stats.count;
      EXPECT_EQ(total, r.fleet.completed);
    }
    if (s.name == "t13.utilization") {
      for (const auto& [epoch, stats] : s.epochs) {
        EXPECT_GE(stats.min, 0.0);
        EXPECT_LE(stats.max, 1.0);
      }
    }
  }
  EXPECT_TRUE(saw_goodput);

  // The registry carries the same series (summary/CSV plumbing).
  const json::MetricMap snap = sink.metrics().snapshot();
  EXPECT_EQ(snap.at("t13.goodput.samples"),
            static_cast<double>(r.fleet.completed));
}

TEST_F(ClusterObsTest, TraceGrowsInstanceLanesSpansAndFlows) {
  const std::size_t instances = 2;
  const auto arrivals = poisson_jobs(800, 0.9, instances, 8.0);

  FleetConfig fleet;
  fleet.types = fleet_types(instances);
  fleet.retry.max_attempts = 3;
  fleet.retry.backoff_base_s = 0.25 * service_s();
  std::vector<PlatformFault> f;
  f.push_back({0, PlatformFaultKind::kCrash, 3.0 * service_s(),
               5.0 * service_s(), 1.0});
  fleet.faults = FleetFaultPlan{f, instances};

  telemetry::TelemetrySink sink;
  fleet.telemetry = &sink;
  fleet.obs.enabled = true;
  fleet.obs.label = "lane-test";

  const ClusterReport r = ClusterSim::run(arrivals, fleet, matrix());
  ASSERT_NE(r.obs, nullptr);
  EXPECT_GT(r.fleet.failovers, 0u);

  const std::string json = telemetry::to_chrome_json(sink.tracer());
  // One lane per instance under the obs label, plus the job/monitor lanes.
  EXPECT_NE(json.find("\"lane-test\""), std::string::npos);
  EXPECT_NE(json.find("instance 0 (vfi-winoc)"), std::string::npos);
  EXPECT_NE(json.find("instance 1 (vfi-winoc)"), std::string::npos);
  EXPECT_NE(json.find("\"jobs\""), std::string::npos);
  // Per-instance counters (satellite: busy / queue-depth lanes).
  EXPECT_NE(json.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"busy\""), std::string::npos);
  // Nestable async job spans with cat/id, and retry flow arrows.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"job\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"retry\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  // Crash window drawn on the instance lane.
  EXPECT_NE(json.find("\"down\""), std::string::npos);
}

// ------------------------------------------------------------ validation

TEST_F(ClusterObsTest, ValidateRejectsBadObsKnobsOnlyWhenEnabled) {
  FleetConfig fleet;
  fleet.types = fleet_types(1);

  FleetConfig bad = fleet;
  bad.obs.enabled = true;
  bad.obs.epoch_s = -1.0;
  EXPECT_THROW(bad.validate(), RequirementError);

  bad = fleet;
  bad.obs.enabled = true;
  bad.obs.sla_window_epochs = 0;
  EXPECT_THROW(bad.validate(), RequirementError);

  bad = fleet;
  bad.obs.enabled = true;
  bad.obs.sla_burn_budget = 0.0;
  EXPECT_THROW(bad.validate(), RequirementError);

  bad = fleet;
  bad.obs.enabled = true;
  bad.obs.power_proximity = 1.5;
  EXPECT_THROW(bad.validate(), RequirementError);

  bad = fleet;
  bad.obs.enabled = true;
  bad.obs.label.clear();
  EXPECT_THROW(bad.validate(), RequirementError);

  // The same malformed knobs are inert while obs is disabled.
  FleetConfig off = fleet;
  off.obs.epoch_s = -1.0;
  off.obs.sla_window_epochs = 0;
  off.obs.label.clear();
  EXPECT_NO_THROW(off.validate());
}

}  // namespace
}  // namespace vfimr
