// Property tests for the power models and V/F ladder: EDP monotonicity in
// frequency for fixed utilization (the physics behind Fig. 8's savings),
// power monotonicity in utilization and voltage, and V/F table lookups on
// random ladders.

#include <gtest/gtest.h>

#include "harness/generators.hpp"
#include "harness/property.hpp"
#include "power/core_power.hpp"
#include "power/vf_table.hpp"

namespace vfimr::power {
namespace {

/// For a fixed compute job (cycles) at fixed utilization, stepping the
/// standard ladder *down* always improves energy-delay product: dynamic
/// energy scales with V^2 and leakage energy with leak(V)/f, both of which
/// shrink faster than the 1/f delay grows.  This is the invariant that makes
/// VFI V/F scaling worthwhile at all.
TEST(PropPower, EdpMonotoneInFrequencyForFixedUtilization) {
  test::for_each_seed(12, [](Rng& rng, std::uint64_t) {
    const CorePowerModel model;
    const VfTable& table = VfTable::standard();
    const double u = rng.uniform(0.0, 1.0);
    const double cycles = rng.uniform(1e6, 1e12);

    double prev_edp = -1.0;
    double prev_delay = -1.0;
    double prev_energy = -1.0;
    for (std::size_t i = 0; i < table.size(); ++i) {
      const VfPoint& vf = table[i];
      const double delay = cycles / vf.freq_hz;
      const double energy = model.energy_j(u, vf, delay);
      const double edp = energy * delay;
      if (i > 0) {
        EXPECT_LT(delay, prev_delay) << "at ladder point " << vf.label();
        EXPECT_GT(energy, prev_energy) << "at ladder point " << vf.label();
        EXPECT_GT(edp, prev_edp) << "at ladder point " << vf.label();
      }
      prev_edp = edp;
      prev_delay = delay;
      prev_energy = energy;
    }
  });
}

TEST(PropPower, PowerMonotoneInUtilizationAndVoltage) {
  test::for_each_seed(12, [](Rng& rng, std::uint64_t) {
    const CorePowerModel model;
    const VfTable table = test::random_vf_table(rng);
    const double u_lo = rng.uniform(0.0, 1.0);
    const double u_hi = rng.uniform(u_lo, 1.0);

    for (std::size_t i = 0; i < table.size(); ++i) {
      EXPECT_LE(model.power_w(u_lo, table[i]), model.power_w(u_hi, table[i]));
      if (i > 0) {
        // Higher ladder point: higher V and f, so more power at equal u.
        EXPECT_GT(model.power_w(u_lo, table[i]),
                  model.power_w(u_lo, table[i - 1]));
        EXPECT_GT(model.leakage_w(table[i].voltage_v),
                  model.leakage_w(table[i - 1].voltage_v));
      }
    }
    // Idle clock-tree power keeps even u=0 strictly positive.
    EXPECT_GT(model.power_w(0.0, table.min()), 0.0);
  });
}

TEST(PropPower, VfTableLookupsOnRandomLadders) {
  test::for_each_seed(12, [](Rng& rng, std::uint64_t) {
    const VfTable table = test::random_vf_table(rng);

    // at_least: lowest point satisfying the request, clamped at the top.
    const double req = rng.uniform(0.5 * table.min().freq_hz,
                                   1.2 * table.max().freq_hz);
    const VfPoint& p = table.at_least(req);
    if (req <= table.max().freq_hz) {
      EXPECT_GE(p.freq_hz, req);
      const std::size_t i = table.index_of(p);
      if (i > 0) {
        EXPECT_LT(table[i - 1].freq_hz, req);
      }
    } else {
      EXPECT_EQ(p, table.max());
    }

    // step_up: exactly one ladder index, clamped at the top.
    for (std::size_t i = 0; i < table.size(); ++i) {
      const VfPoint& up = table.step_up(table[i]);
      const std::size_t expect = i + 1 < table.size() ? i + 1 : i;
      EXPECT_EQ(table.index_of(up), expect);
    }

    // The ladder is strictly ascending in both voltage and frequency (the
    // generator's contract, revalidated through the public accessors).
    for (std::size_t i = 1; i < table.size(); ++i) {
      EXPECT_GT(table[i].freq_hz, table[i - 1].freq_hz);
      EXPECT_GT(table[i].voltage_v, table[i - 1].voltage_v);
    }
  });
}

TEST(PropPower, EnergyScalesLinearlyWithTime) {
  test::for_each_seed(8, [](Rng& rng, std::uint64_t) {
    const CorePowerModel model;
    const VfTable table = test::random_vf_table(rng);
    const VfPoint& vf = table[rng.uniform_u64(table.size())];
    const double u = rng.uniform(0.0, 1.0);
    const double t = rng.uniform(1e-6, 1e3);
    const double e1 = model.energy_j(u, vf, t);
    const double e2 = model.energy_j(u, vf, 2.0 * t);
    EXPECT_NEAR(e2, 2.0 * e1, 1e-9 * e2);
    EXPECT_NEAR(e1, model.power_w(u, vf) * t, 1e-9 * e1);
  });
}

}  // namespace
}  // namespace vfimr::power
