// Tests for telemetry::TimeSeries (DESIGN.md §15): epoch bucketing
// semantics, registry binding, merge associativity, and the property that
// the windowed rollup of any sample stream equals an exact recompute from
// the raw samples — for random epoch widths, sample orders and thread
// splits.

#include "telemetry/timeseries.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "harness/generators.hpp"
#include "harness/property.hpp"
#include "telemetry/metrics.hpp"

namespace vfimr::telemetry {
namespace {

TEST(TimeSeries, BucketsByEpochWidth) {
  TimeSeries ts{0.5};
  EXPECT_EQ(ts.epoch_s(), 0.5);
  EXPECT_EQ(ts.epoch_of(0.0), 0);
  EXPECT_EQ(ts.epoch_of(0.49), 0);
  EXPECT_EQ(ts.epoch_of(0.5), 1);
  EXPECT_EQ(ts.epoch_of(-0.25), -1);
  EXPECT_EQ(ts.epoch_start_s(3), 1.5);

  ts.record(0.1, 2.0);
  ts.record(0.2, 4.0);
  ts.record(0.6, -1.0);
  EXPECT_EQ(ts.samples(), 3u);

  const auto snap = ts.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, 0);
  EXPECT_EQ(snap[0].second.count, 2u);
  EXPECT_EQ(snap[0].second.sum, 6.0);
  EXPECT_EQ(snap[0].second.min, 2.0);
  EXPECT_EQ(snap[0].second.max, 4.0);
  EXPECT_EQ(snap[0].second.mean(), 3.0);
  EXPECT_EQ(snap[1].first, 1);
  EXPECT_EQ(snap[1].second.count, 1u);
  EXPECT_EQ(snap[1].second.min, -1.0);
  EXPECT_EQ(snap[1].second.max, -1.0);
}

TEST(TimeSeries, RejectsNonPositiveEpoch) {
  EXPECT_THROW(TimeSeries{0.0}, std::invalid_argument);
  EXPECT_THROW(TimeSeries{-1.0}, std::invalid_argument);
}

TEST(TimeSeries, MergeRejectsEpochMismatch) {
  TimeSeries a{1.0};
  TimeSeries b{2.0};
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(TimeSeries, RegistryBindsEpochWidth) {
  MetricsRegistry reg;
  TimeSeries& ts = reg.timeseries("s", 0.25);
  EXPECT_EQ(&reg.timeseries("s", 0.25), &ts);
  EXPECT_THROW(reg.timeseries("s", 0.5), std::invalid_argument);

  ts.record(0.3, 1.0);
  ts.record(0.9, 2.0);
  const json::MetricMap m = reg.snapshot();
  EXPECT_EQ(m.at("s.samples"), 2.0);
  EXPECT_EQ(m.at("s.epochs"), 2.0);

  // One row per populated epoch, epochs ascending.
  const TextTable table = reg.timeseries_table();
  const std::string text = table.to_string();
  EXPECT_NE(text.find("epoch_start_s"), std::string::npos);
  EXPECT_NE(text.find("0.250000"), std::string::npos);
}

/// Exact recompute of the rollup from the raw stream, using the same
/// floor-based epoch index and left-to-right accumulation order as
/// TimeSeries::record over a time-sorted-stable replay of the stream.
std::map<std::int64_t, EpochStats> recompute(
    const std::vector<std::pair<double, double>>& stream, double epoch_s) {
  std::map<std::int64_t, EpochStats> out;
  for (const auto& [t, v] : stream) {
    const auto e =
        static_cast<std::int64_t>(std::floor(t / epoch_s));
    EpochStats& s = out[e];
    if (s.count == 0) {
      s.min = v;
      s.max = v;
    } else {
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
    }
    s.sum += v;
    ++s.count;
  }
  return out;
}

TEST(TimeSeriesProperty, RollupEqualsExactRecompute) {
  test::for_each_seed(40, [](Rng& rng, std::uint64_t) {
    const double epoch_s = rng.uniform(1e-3, 10.0);
    const std::size_t n = rng.uniform_u64(400);
    std::vector<std::pair<double, double>> stream;
    for (std::size_t i = 0; i < n; ++i) {
      stream.emplace_back(rng.uniform(-5.0, 100.0),
                          rng.uniform(-10.0, 10.0));
    }

    TimeSeries ts{epoch_s};
    for (const auto& [t, v] : stream) ts.record(t, v);
    EXPECT_EQ(ts.samples(), n);

    const auto expect = recompute(stream, epoch_s);
    const auto got = ts.snapshot();
    ASSERT_EQ(got.size(), expect.size());
    std::int64_t prev = 0;
    bool first = true;
    for (const auto& [epoch, stats] : got) {
      if (!first) {
        EXPECT_GT(epoch, prev);  // snapshot ascends, no dups
      }
      prev = epoch;
      first = false;
      const auto it = expect.find(epoch);
      ASSERT_NE(it, expect.end()) << "unexpected epoch " << epoch;
      EXPECT_EQ(stats.count, it->second.count);
      EXPECT_EQ(stats.sum, it->second.sum);  // same accumulation order
      EXPECT_EQ(stats.min, it->second.min);
      EXPECT_EQ(stats.max, it->second.max);
    }
  });
}

TEST(TimeSeriesProperty, MergedPerThreadSeriesIsOrderIndependent) {
  // Dyadic sample values make per-epoch sums exact, so the merged rollup
  // must be identical no matter how the stream was split across series or
  // in which order the shards merge.
  test::for_each_seed(30, [](Rng& rng, std::uint64_t) {
    const double epoch_s = rng.uniform(0.1, 2.0);
    const std::size_t n = 1 + rng.uniform_u64(300);
    std::vector<std::pair<double, double>> stream;
    for (std::size_t i = 0; i < n; ++i) {
      stream.emplace_back(
          rng.uniform(0.0, 50.0),
          0.25 * static_cast<double>(rng.uniform_u64(64)));
    }

    TimeSeries serial{epoch_s};
    for (const auto& [t, v] : stream) serial.record(t, v);

    TimeSeries shard_a{epoch_s};
    TimeSeries shard_b{epoch_s};
    TimeSeries shard_c{epoch_s};
    for (std::size_t i = 0; i < n; ++i) {
      (i % 3 == 0 ? shard_a : i % 3 == 1 ? shard_b : shard_c)
          .record(stream[i].first, stream[i].second);
    }

    TimeSeries ab{epoch_s};
    ab.merge(shard_a);
    ab.merge(shard_b);
    ab.merge(shard_c);
    TimeSeries ba{epoch_s};
    ba.merge(shard_c);
    ba.merge(shard_b);
    ba.merge(shard_a);

    const auto s = serial.snapshot();
    const auto x = ab.snapshot();
    const auto y = ba.snapshot();
    ASSERT_EQ(x.size(), s.size());
    ASSERT_EQ(y.size(), s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(x[i].first, s[i].first);
      EXPECT_EQ(y[i].first, s[i].first);
      EXPECT_EQ(x[i].second.count, s[i].second.count);
      EXPECT_EQ(y[i].second.count, s[i].second.count);
      EXPECT_EQ(x[i].second.sum, y[i].second.sum);  // order-independent
      EXPECT_EQ(x[i].second.sum, s[i].second.sum);  // dyadic => exact
      EXPECT_EQ(x[i].second.min, s[i].second.min);
      EXPECT_EQ(x[i].second.max, s[i].second.max);
    }
  });
}

}  // namespace
}  // namespace vfimr::telemetry
