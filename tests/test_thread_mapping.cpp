#include "winoc/thread_mapping.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/require.hpp"
#include "winoc/design.hpp"
#include "winoc/smallworld.hpp"
#include "workload/profile.hpp"

namespace vfimr::winoc {
namespace {

std::vector<std::size_t> block_clusters() {
  std::vector<std::size_t> c(64);
  for (std::size_t t = 0; t < 64; ++t) c[t] = t / 16;
  return c;
}

void expect_bijection(const std::vector<graph::NodeId>& mapping) {
  std::set<graph::NodeId> nodes(mapping.begin(), mapping.end());
  EXPECT_EQ(nodes.size(), 64u);
  for (graph::NodeId n : mapping) EXPECT_LT(n, 64u);
}

void expect_cluster_quadrant_constraint(
    const std::vector<graph::NodeId>& mapping,
    const std::vector<std::size_t>& clusters) {
  for (std::size_t t = 0; t < 64; ++t) {
    EXPECT_EQ(quadrant_of(mapping[t], 8), clusters[t]) << "thread " << t;
  }
}

TEST(BlockMapping, BijectiveAndConstrained) {
  const auto clusters = block_clusters();
  const auto mapping = map_threads_block(clusters);
  expect_bijection(mapping);
  expect_cluster_quadrant_constraint(mapping, clusters);
}

TEST(BlockMapping, UnevenClustersRejected) {
  std::vector<std::size_t> clusters(64, 0);  // all in one cluster
  EXPECT_THROW(map_threads_block(clusters), RequirementError);
}

TEST(MinHopMapping, ImprovesOnBlockMapping) {
  const auto profile = workload::make_profile(workload::App::kWC);
  const auto clusters = block_clusters();
  Rng rng{5};
  const auto block = map_threads_block(clusters);
  const auto optimized = map_threads_min_hop(profile.traffic, clusters, rng);
  expect_bijection(optimized);
  expect_cluster_quadrant_constraint(optimized, clusters);
  EXPECT_LE(mapping_cost(profile.traffic, optimized),
            mapping_cost(profile.traffic, block));
}

TEST(MinHopMapping, DeterministicForSeed) {
  const auto profile = workload::make_profile(workload::App::kMM);
  const auto clusters = block_clusters();
  Rng a{9};
  Rng b{9};
  EXPECT_EQ(map_threads_min_hop(profile.traffic, clusters, a, 5000),
            map_threads_min_hop(profile.traffic, clusters, b, 5000));
}

TEST(NearWiMapping, TopTalkersSitOnWiSwitches) {
  const auto profile = workload::make_profile(workload::App::kWC);
  const auto clusters = block_clusters();
  Rng rng{7};
  const auto base = map_threads_min_hop(profile.traffic, clusters, rng, 5000);
  const noc::Topology placed = noc::make_placed_grid(8, 8);
  SmallWorldParams params;
  const auto wis = place_wis_center(placed, quadrant_clusters(), params);

  const auto mapping =
      map_threads_near_wi(profile.traffic, clusters, wis, base);
  expect_bijection(mapping);
  expect_cluster_quadrant_constraint(mapping, clusters);

  // For each cluster: the top inter-cluster talker occupies a WI switch.
  for (std::size_t c = 0; c < 4; ++c) {
    std::size_t best_thread = 64;
    double best = -1.0;
    for (std::size_t t = 0; t < 64; ++t) {
      if (clusters[t] != c) continue;
      double inter = 0.0;
      for (std::size_t u = 0; u < 64; ++u) {
        if (clusters[u] != c) {
          inter += profile.traffic(t, u) + profile.traffic(u, t);
        }
      }
      if (inter > best) {
        best = inter;
        best_thread = t;
      }
    }
    ASSERT_LT(best_thread, 64u);
    bool on_wi = false;
    for (graph::NodeId w : wis[c]) {
      on_wi |= mapping[best_thread] == w;
    }
    EXPECT_TRUE(on_wi) << "cluster " << c;
  }
}

TEST(MapTraffic, ConservesVolume) {
  const auto profile = workload::make_profile(workload::App::kLR);
  const auto clusters = block_clusters();
  const auto mapping = map_threads_block(clusters);
  const auto node_traffic = map_traffic(profile.traffic, mapping, 64);
  EXPECT_NEAR(node_traffic.sum(), profile.traffic.sum(), 1e-9);
  for (std::size_t n = 0; n < 64; ++n) {
    EXPECT_DOUBLE_EQ(node_traffic(n, n), 0.0);
  }
}

TEST(MapTraffic, PermutationMovesEntries) {
  Matrix traffic{64, 64};
  traffic(3, 17) = 2.5;
  std::vector<graph::NodeId> mapping(64);
  for (std::size_t t = 0; t < 64; ++t) {
    mapping[t] = static_cast<graph::NodeId>(63 - t);
  }
  const auto node_traffic = map_traffic(traffic, mapping, 64);
  EXPECT_DOUBLE_EQ(node_traffic(60, 46), 2.5);
  EXPECT_DOUBLE_EQ(node_traffic(3, 17), 0.0);
}

TEST(MappingCost, ZeroForNoTraffic) {
  Matrix traffic{64, 64};
  const auto mapping = map_threads_block(block_clusters());
  EXPECT_DOUBLE_EQ(mapping_cost(traffic, mapping), 0.0);
}

}  // namespace
}  // namespace vfimr::winoc
