#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"

namespace vfimr::graph {
namespace {

Graph path4() {
  Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  return g;
}

TEST(GraphTest, AddEdgeBasics) {
  Graph g{3};
  const EdgeId e = g.add_edge(0, 2, EdgeKind::kWire, 5.0);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(e).length_mm, 5.0);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.other_end(e, 0), 2u);
  EXPECT_EQ(g.other_end(e, 2), 0u);
}

TEST(GraphTest, RejectsSelfLoopAndParallel) {
  Graph g{3};
  EXPECT_THROW(g.add_edge(1, 1), vfimr::RequirementError);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), vfimr::RequirementError);
  EXPECT_THROW(g.add_edge(0, 5), vfimr::RequirementError);
}

TEST(GraphTest, NeighborsAndDegree) {
  Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  const auto nb = g.neighbors(0);
  EXPECT_EQ(nb.size(), 3u);
}

TEST(GraphTest, BfsHopsOnPath) {
  const Graph g = path4();
  const auto d = bfs_hops(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[3], 3u);
}

TEST(GraphTest, BfsUnreachable) {
  Graph g{3};
  g.add_edge(0, 1);
  const auto d = bfs_hops(g, 0);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_FALSE(is_connected(g));
}

TEST(GraphTest, ConnectivityAndEmptyGraph) {
  EXPECT_TRUE(is_connected(Graph{}));
  EXPECT_TRUE(is_connected(Graph{1}));
  EXPECT_TRUE(is_connected(path4()));
}

TEST(GraphTest, AllPairsSymmetric) {
  Graph g{5};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 0);  // 5-cycle
  const auto d = all_pairs_hops(g);
  for (NodeId a = 0; a < 5; ++a) {
    for (NodeId b = 0; b < 5; ++b) {
      EXPECT_EQ(d[a][b], d[b][a]);
    }
  }
  EXPECT_EQ(d[0][2], 2u);
  EXPECT_EQ(d[0][3], 2u);  // around the other way
}

TEST(GraphTest, AverageHopCount) {
  // Path of 3: pairs (0,1)=1 (0,2)=2 (1,2)=1 -> mean 4/3.
  Graph g{3};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_NEAR(average_hop_count(g), 4.0 / 3.0, 1e-12);
}

TEST(GraphTest, WeightedHopCount) {
  Graph g{3};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::vector<std::vector<double>> traffic(3, std::vector<double>(3, 0.0));
  traffic[0][2] = 2.0;  // distance 2
  traffic[0][1] = 1.0;  // distance 1
  EXPECT_NEAR(weighted_hop_count(g, traffic), (2.0 * 2 + 1.0 * 1) / 3.0,
              1e-12);
}

TEST(GraphTest, WeightedHopCountNoTraffic) {
  const Graph g = path4();
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 0.0));
  EXPECT_EQ(weighted_hop_count(g, traffic), 0.0);
}

TEST(GraphTest, SpanningTreeParents) {
  Graph g{5};
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const auto parent = bfs_spanning_tree(g, 0);
  EXPECT_EQ(parent[0], 0u);  // root is its own parent
  // Every non-root parent must be a real neighbor and closer to the root.
  const auto depth = bfs_hops(g, 0);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_TRUE(g.has_edge(v, parent[v]));
    EXPECT_EQ(depth[parent[v]] + 1, depth[v]);
  }
}

TEST(GraphTest, MaxDegreeNodePrefersCentralOnTies) {
  // Path of 5: nodes 1,2,3 all have degree 2; node 2 is most central.
  Graph g{5};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  EXPECT_EQ(max_degree_node(g), 2u);
}

TEST(GraphTest, MaxDegreeNodePicksHub) {
  Graph g{5};
  g.add_edge(0, 1);
  g.add_edge(3, 0);
  g.add_edge(3, 1);
  g.add_edge(3, 2);
  g.add_edge(3, 4);
  EXPECT_EQ(max_degree_node(g), 3u);
}

}  // namespace
}  // namespace vfimr::graph
