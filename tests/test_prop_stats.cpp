// Property tests for the streaming statistics added for the telemetry
// layer: histogram merge across parallel_for-style shards, histogram
// quantiles against the exact sorted-percentile answer, and the P²
// streaming quantile estimator.

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/require.hpp"
#include "harness/generators.hpp"
#include "harness/property.hpp"

namespace vfimr {
namespace {

std::vector<double> random_samples(Rng& rng, std::size_t n) {
  std::vector<double> xs(n);
  // Mix of smooth and clustered data so bucket boundaries get exercised.
  const double lo = rng.uniform(-10.0, 10.0);
  const double spread = rng.uniform(0.5, 25.0);
  for (auto& x : xs) {
    x = rng.bernoulli(0.8) ? rng.uniform(lo, lo + spread)
                           : rng.normal(lo + spread / 2, spread / 10);
  }
  return xs;
}

TEST(PropStats, ShardedHistogramMergeMatchesSingleHistogram) {
  test::for_each_seed(20, [](Rng& rng, std::uint64_t) {
    const std::size_t n = 1 + rng.uniform_u64(2000);
    const auto xs = random_samples(rng, n);
    const double lo = -15.0, hi = 40.0;
    const std::size_t bins = 1 + rng.uniform_u64(64);

    Histogram whole{lo, hi, bins};
    for (double x : xs) whole.add(x);

    // Split into shards the way parallel_for splits an index range, fill a
    // per-shard histogram each, and merge — the aggregate must be exact.
    const std::size_t shards = 1 + rng.uniform_u64(8);
    Histogram merged{lo, hi, bins};
    for (std::size_t s = 0; s < shards; ++s) {
      Histogram shard{lo, hi, bins};
      const std::size_t begin = s * n / shards;
      const std::size_t end = (s + 1) * n / shards;
      for (std::size_t i = begin; i < end; ++i) shard.add(xs[i]);
      merged.merge(shard);
    }

    ASSERT_EQ(merged.count(), whole.count());
    for (std::size_t b = 0; b < bins; ++b) {
      EXPECT_EQ(merged.bucket(b), whole.bucket(b)) << "bin " << b;
    }
    // Shard partial sums round differently than one sequential sum.
    EXPECT_NEAR(merged.sum(), whole.sum(),
                1e-9 * std::max(1.0, std::abs(whole.sum())));
    for (double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
      EXPECT_EQ(merged.quantile(p), whole.quantile(p)) << "p=" << p;
    }
  });
}

TEST(PropStats, HistogramMergeRejectsMismatchedBinning) {
  Histogram a{0.0, 1.0, 10};
  Histogram bins{0.0, 1.0, 20};
  Histogram range{0.0, 2.0, 10};
  EXPECT_THROW(a.merge(bins), std::invalid_argument);
  EXPECT_THROW(a.merge(range), std::invalid_argument);
}

TEST(PropStats, HistogramQuantileWithinOneBucketOfExact) {
  test::for_each_seed(20, [](Rng& rng, std::uint64_t) {
    const std::size_t n = 50 + rng.uniform_u64(3000);
    auto xs = random_samples(rng, n);
    // Keep every sample strictly inside the histogram range so clamping
    // can't shift mass between edge buckets.
    for (auto& x : xs) x = std::clamp(x, -14.9, 39.9);

    const std::size_t bins = 32 + rng.uniform_u64(96);
    Histogram h{-15.0, 40.0, bins};
    for (double x : xs) h.add(x);
    const double bucket = (40.0 - (-15.0)) / static_cast<double>(bins);

    for (double p : {5.0, 25.0, 50.0, 75.0, 95.0}) {
      const double exact = percentile(xs, p);
      const double approx = h.quantile(p / 100.0);
      EXPECT_NEAR(approx, exact, bucket + 1e-9)
          << "p=" << p << " bins=" << bins;
    }
  });
}

TEST(PropStats, P2MatchesExactBelowFiveSamples) {
  test::for_each_seed(10, [](Rng& rng, std::uint64_t) {
    const auto xs = random_samples(rng, 1 + rng.uniform_u64(4));
    P2Quantile q{0.5};
    for (double x : xs) q.add(x);
    auto sorted = xs;
    EXPECT_DOUBLE_EQ(q.value(), percentile(sorted, 50.0));
  });
}

TEST(PropStats, P2TracksExactQuantileOnRandomStreams) {
  test::for_each_seed(20, [](Rng& rng, std::uint64_t) {
    const std::size_t n = 200 + rng.uniform_u64(5000);
    const auto xs = random_samples(rng, n);
    const double range =
        *std::max_element(xs.begin(), xs.end()) -
        *std::min_element(xs.begin(), xs.end());

    for (double p : {0.5, 0.9, 0.95}) {
      P2Quantile q{p};
      for (double x : xs) q.add(x);
      EXPECT_EQ(q.count(), xs.size());
      const double exact = percentile(xs, p * 100.0);
      // P² is an approximation; 10% of the data range is the documented
      // engineering tolerance for these stream sizes.
      EXPECT_NEAR(q.value(), exact, 0.10 * range + 1e-9) << "p=" << p;
    }
  });
}

TEST(PropStats, P2IsExactOnSortedUniformGrid) {
  // A deterministic sanity anchor: on 0..999 the true median is ~499.5 and
  // P² lands within a couple of grid steps even though the input is sorted
  // (the estimator's worst case).
  P2Quantile q{0.5};
  for (int i = 0; i < 1000; ++i) q.add(static_cast<double>(i));
  EXPECT_NEAR(q.value(), 499.5, 25.0);
}

TEST(PropStats, P2RejectsInvalidProbability) {
  EXPECT_THROW(P2Quantile{0.0}, std::invalid_argument);
  EXPECT_THROW(P2Quantile{1.0}, std::invalid_argument);
  EXPECT_THROW(P2Quantile{-0.2}, std::invalid_argument);
}

TEST(PropStats, P2EmptySamplerHasNoValue) {
  // Regression: value() used to return 0.0 before the first sample, which
  // reads as "zero latency" in SLA reports.  An empty sampler has no
  // quantile — NaN, with count() as the cheap emptiness check.
  P2Quantile q{0.999};
  EXPECT_EQ(q.count(), 0u);
  EXPECT_TRUE(std::isnan(q.value()));
  q.add(1.25);
  EXPECT_EQ(q.count(), 1u);
  EXPECT_DOUBLE_EQ(q.value(), 1.25);
}

TEST(PropStats, P2TailQuantileTracksHeavyTailedStreams) {
  // The cluster tier reports p999 latency, which lives in the tail of a
  // heavy-tailed (lognormal) distribution — exactly where the five-marker
  // P² estimator is weakest.  Hold it to a relative error band against the
  // exact sorted quantile on seeded streams.
  test::for_each_seed(10, [](Rng& rng, std::uint64_t seed) {
    const std::size_t n = 20'000 + rng.uniform_u64(20'000);
    const double sigma = rng.uniform(0.5, 1.5);
    std::vector<double> xs(n);
    for (auto& x : xs) x = std::exp(rng.normal(0.0, sigma));

    P2Quantile q{0.999};
    for (double x : xs) q.add(x);
    const double exact = percentile(xs, 99.9);
    ASSERT_GT(exact, 0.0);
    const double rel = std::abs(q.value() - exact) / exact;
    // Empirical ceiling over these seeds is ~0.12 at sigma 1.5; 0.25 keeps
    // headroom without letting the estimator drift to a different decade.
    EXPECT_LT(rel, 0.25) << "seed=" << seed << " n=" << n
                         << " sigma=" << sigma << " exact=" << exact
                         << " estimate=" << q.value();
  });
}

TEST(PropStats, HistogramRejectsZeroBuckets) {
  // Regression: a zero-bucket Histogram used to construct fine and then
  // divide by zero in bucket_lo()/to_string(); construction now fails fast.
  EXPECT_THROW(Histogram(0.0, 1.0, 0), RequirementError);
  EXPECT_THROW((Histogram{0.0, 1.0, std::vector<std::uint64_t>{}}),
               RequirementError);
}

}  // namespace
}  // namespace vfimr
