// Property tests for the deterministic work-stealing task simulator:
// work conservation, Eq. 3 steal-cap respect, makespan bounds and
// seed-determinism, across random task sets and heterogeneous core sets.

#include <gtest/gtest.h>

#include <algorithm>

#include "harness/generators.hpp"
#include "harness/property.hpp"
#include "mapreduce/scheduler.hpp"
#include "sysmodel/task_sim.hpp"

namespace vfimr::sysmodel {
namespace {

constexpr StealingPolicy kAllPolicies[] = {StealingPolicy::kPhoenixDefault,
                                           StealingPolicy::kVfiAssignment,
                                           StealingPolicy::kVfiHardCap};

TEST(PropTaskSim, WorkConservationUnderEveryPolicy) {
  test::for_each_seed(10, [](Rng& rng, std::uint64_t) {
    const auto spec = test::random_taskset(rng);
    const auto tasks = materialize_tasks(spec, rng);
    const auto cores = test::random_cores(rng, 1 + rng.uniform_u64(32));
    const double mem_scale = rng.uniform(0.5, 2.0);

    for (StealingPolicy policy : kAllPolicies) {
      const TaskSimResult r = simulate_phase(tasks, cores, mem_scale, policy);
      std::uint64_t executed = 0;
      for (std::uint64_t e : r.tasks_executed) executed += e;
      EXPECT_EQ(executed, tasks.size())
          << "policy " << static_cast<int>(policy);
      ASSERT_EQ(r.busy_seconds.size(), cores.size());
      for (std::size_t i = 0; i < cores.size(); ++i) {
        EXPECT_GE(r.busy_seconds[i], 0.0);
        EXPECT_LE(r.busy_seconds[i], r.makespan_s + 1e-12)
            << "core " << i << " busier than the makespan";
      }
      if (!tasks.empty()) {
        EXPECT_GE(r.makespan_s, 0.0);
      }
    }
  });
}

TEST(PropTaskSim, HardCapRespectsEq3) {
  test::for_each_seed(10, [](Rng& rng, std::uint64_t) {
    const auto spec = test::random_taskset(rng);
    const auto tasks = materialize_tasks(spec, rng);
    const std::size_t c = 1 + rng.uniform_u64(32);
    const auto cores = test::random_cores(rng, c);

    const TaskSimResult r =
        simulate_phase(tasks, cores, 1.0, StealingPolicy::kVfiHardCap);
    for (std::size_t i = 0; i < c; ++i) {
      if (cores[i].rel_freq >= 1.0) continue;
      const std::size_t cap =
          mr::stealing_cap(tasks.size(), c, cores[i].rel_freq);
      EXPECT_LE(r.tasks_executed[i], cap)
          << "core " << i << " (rel_freq " << cores[i].rel_freq
          << ") exceeded its Eq. 3 cap";
    }
  });
}

TEST(PropTaskSim, HomogeneousMakespanBounds) {
  test::for_each_seed(10, [](Rng& rng, std::uint64_t) {
    const auto spec = test::random_taskset(rng);
    const auto tasks = materialize_tasks(spec, rng);
    if (tasks.empty()) return;
    const std::size_t c = 1 + rng.uniform_u64(16);
    const std::vector<SimCore> cores(c, SimCore{2.5e9, 1.0});
    const double mem_scale = rng.uniform(0.5, 2.0);

    double total = 0.0;
    double longest = 0.0;
    for (const auto& t : tasks) {
      const double secs = t.cycles / 2.5e9 + t.mem_seconds * mem_scale;
      total += secs;
      longest = std::max(longest, secs);
    }

    const TaskSimResult r = simulate_phase(tasks, cores, mem_scale,
                                           StealingPolicy::kPhoenixDefault);
    const double ideal = total / static_cast<double>(c);
    // Greedy scheduling: never better than the perfect split, never worse
    // than the perfect split plus one straggler task.
    EXPECT_GE(r.makespan_s, ideal * (1.0 - 1e-12));
    EXPECT_LE(r.makespan_s, ideal + longest + 1e-12);
  });
}

TEST(PropTaskSim, MaterializeAndSimulateAreSeedDeterministic) {
  test::for_each_seed(6, [](Rng&, std::uint64_t seed) {
    auto run_once = [&]() {
      Rng rng{seed};
      const auto spec = test::random_taskset(rng);
      const auto util = test::random_utilization(rng, 16).utilization;
      const auto tasks = materialize_tasks(spec, util, rng);
      const auto cores = test::random_cores(rng, 8);
      return simulate_phase(tasks, cores, 1.3,
                            StealingPolicy::kVfiAssignment);
    };
    const TaskSimResult a = run_once();
    const TaskSimResult b = run_once();
    EXPECT_EQ(a.tasks_executed, b.tasks_executed);
    EXPECT_EQ(a.steals, b.steals);
    EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
    ASSERT_EQ(a.busy_seconds.size(), b.busy_seconds.size());
    for (std::size_t i = 0; i < a.busy_seconds.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.busy_seconds[i], b.busy_seconds[i]);
    }
  });
}

/// block_owner must be the exact inverse of the block split
/// [i*n/c, (i+1)*n/c) for every (n, c), including non-divisible pairs —
/// the owner-map regression behind the §7.3 compute/memory shift.
TEST(PropTaskSim, BlockOwnerInvertsSplitForRandomShapes) {
  test::for_each_seed(12, [](Rng& rng, std::uint64_t) {
    const std::size_t c = 1 + rng.uniform_u64(48);
    // Bias toward non-divisible n (the old formula was correct only when
    // c divides n evenly and tasks outnumber cores).
    std::size_t n = 1 + rng.uniform_u64(400);
    if (n % c == 0 && rng.bernoulli(0.8)) ++n;
    for (std::size_t i = 0; i < c; ++i) {
      const std::size_t lo = i * n / c;
      const std::size_t hi = (i + 1) * n / c;
      for (std::size_t j = lo; j < hi; ++j) {
        ASSERT_EQ(block_owner(j, n, c), i)
            << "task " << j << " of n=" << n << " c=" << c;
      }
    }
  });
}

/// Utilization-correlated materialization preserves total nominal time
/// (the time-conservation contract documented in task_sim.hpp).
TEST(PropTaskSim, CorrelatedMaterializationConservesNominalTime) {
  test::for_each_seed(8, [](Rng& rng, std::uint64_t seed) {
    const auto spec = test::random_taskset(rng);
    const auto util = test::random_utilization(rng, 64).utilization;
    Rng rng_plain{seed ^ 0xBEEF};
    Rng rng_corr{seed ^ 0xBEEF};
    const auto plain = materialize_tasks(spec, rng_plain);
    const auto corr = materialize_tasks(spec, util, rng_corr);
    ASSERT_EQ(plain.size(), corr.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
      const double t_plain =
          plain[i].cycles / kNominalFreqHz + plain[i].mem_seconds;
      const double t_corr =
          corr[i].cycles / kNominalFreqHz + corr[i].mem_seconds;
      EXPECT_NEAR(t_corr, t_plain, 1e-9 + 1e-9 * t_plain);
      EXPECT_GE(corr[i].cycles, 0.0);
      EXPECT_GE(corr[i].mem_seconds, -1e-15);
    }
  });
}

}  // namespace
}  // namespace vfimr::sysmodel
