#include "mapreduce/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/require.hpp"

namespace vfimr::mr {
namespace {

TEST(StealingCap, PaperExample) {
  // §4.3: 100 tasks, 64 cores, f2/f1 = 2.0/2.5 -> N_f = floor(1.5625*0.8) = 1.
  EXPECT_EQ(stealing_cap(100, 64, 0.8), 1u);
}

TEST(StealingCap, Formula) {
  EXPECT_EQ(stealing_cap(640, 64, 0.8), 8u);
  EXPECT_EQ(stealing_cap(128, 64, 0.9), 1u);
  EXPECT_EQ(stealing_cap(64, 64, 0.5), 0u);
  // f == f_max: never capped.
  EXPECT_EQ(stealing_cap(10, 64, 1.0), 10u);
}

TEST(StealingCap, InvalidInputs) {
  EXPECT_THROW(stealing_cap(10, 0, 0.5), RequirementError);
  EXPECT_THROW(stealing_cap(10, 4, 0.0), RequirementError);
  EXPECT_THROW(stealing_cap(10, 4, 1.5), RequirementError);
}

TEST(TaskScheduler, ExecutesEveryTaskExactlyOnce) {
  TaskScheduler sched{SchedulerConfig{4, {}, false}};
  std::mutex mu;
  std::multiset<std::size_t> seen;
  const auto stats = sched.run(100, [&](std::size_t task, std::size_t) {
    std::lock_guard lk{mu};
    seen.insert(task);
  });
  EXPECT_EQ(seen.size(), 100u);
  for (std::size_t t = 0; t < 100; ++t) {
    EXPECT_EQ(seen.count(t), 1u) << t;
  }
  std::uint64_t total = 0;
  for (auto n : stats.tasks_executed) total += n;
  EXPECT_EQ(total, 100u);
}

TEST(TaskScheduler, ZeroTasks) {
  TaskScheduler sched{SchedulerConfig{2, {}, false}};
  const auto stats = sched.run(0, [](std::size_t, std::size_t) { FAIL(); });
  EXPECT_EQ(stats.tasks_executed.size(), 2u);
  EXPECT_EQ(stats.tasks_executed[0], 0u);
}

TEST(TaskScheduler, SingleWorkerRunsAll) {
  TaskScheduler sched{SchedulerConfig{1, {}, false}};
  std::size_t count = 0;
  const auto stats =
      sched.run(37, [&](std::size_t, std::size_t worker) {
        EXPECT_EQ(worker, 0u);
        ++count;
      });
  EXPECT_EQ(count, 37u);
  EXPECT_EQ(stats.tasks_stolen[0], 0u);
}

TEST(TaskScheduler, StealingHappensWhenLoadImbalanced) {
  // Worker 0's tasks are slow; others should steal from it.
  TaskScheduler sched{SchedulerConfig{4, {}, false}};
  const auto stats = sched.run(16, [&](std::size_t task, std::size_t) {
    if (task < 4) {  // worker 0's initial block
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  std::uint64_t steals = 0;
  for (auto s : stats.tasks_stolen) steals += s;
  EXPECT_GT(steals, 0u);
}

TEST(TaskScheduler, HardCapRestrictsSlowWorkers) {
  SchedulerConfig cfg;
  cfg.workers = 4;
  cfg.rel_freq = {1.0, 1.0, 0.5, 0.5};
  cfg.vfi_stealing_cap = true;
  TaskScheduler sched{cfg};
  const auto stats = sched.run(40, [](std::size_t, std::size_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  });
  // N_f = floor(40/4 * 0.5) = 5 for the two slow workers.
  EXPECT_LE(stats.tasks_executed[2], 5u);
  EXPECT_LE(stats.tasks_executed[3], 5u);
  std::uint64_t total = 0;
  for (auto n : stats.tasks_executed) total += n;
  EXPECT_EQ(total, 40u);  // fast workers pick up the slack
}

TEST(TaskScheduler, ConfigValidation) {
  EXPECT_THROW((TaskScheduler{SchedulerConfig{0, {}, false}}),
               RequirementError);
  EXPECT_THROW((TaskScheduler{SchedulerConfig{2, {1.0}, false}}),
               RequirementError);
  EXPECT_THROW((TaskScheduler{SchedulerConfig{2, {1.0, 1.5}, false}}),
               RequirementError);
}

TEST(TaskScheduler, BusyTimeRecorded) {
  TaskScheduler sched{SchedulerConfig{2, {}, false}};
  const auto stats = sched.run(4, [](std::size_t, std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  double busy = 0.0;
  for (double b : stats.busy_seconds) busy += b;
  EXPECT_GE(busy, 0.018);  // ~4 x 5ms across workers
  EXPECT_GT(stats.wall_seconds, 0.0);
}

class WorkerCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkerCountSweep, AllTasksCompleteUnderConcurrency) {
  TaskScheduler sched{SchedulerConfig{GetParam(), {}, false}};
  std::atomic<std::size_t> count{0};
  sched.run(200, [&](std::size_t, std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 200u);
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerCountSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u));

}  // namespace
}  // namespace vfimr::mr
