// Tier-2 concurrency stress for the parallel experiment runner (ctest label:
// tier2; meant for the TSan preset, also runs in tier-1 as smoke coverage).
//
// Two layers: parallel_for itself under heavy index churn, and an 8-thread
// sweep_comparisons over reduced-cycle full-system simulations — the
// configuration that would expose any hidden shared state in
// FullSystemSim::run (the sweep's safety argument says there is none beyond
// the thread-safe VfTable singleton).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/parallel_for.hpp"
#include "sysmodel/net_eval.hpp"
#include "sysmodel/sweep.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/profile.hpp"

namespace vfimr::sysmodel {
namespace {

TEST(StressSweep, ParallelForUnderHeavyIndexChurn) {
  constexpr std::size_t kCount = 20'000;
  for (int round = 0; round < 3; ++round) {
    std::vector<std::uint32_t> slots(kCount, 0);
    std::atomic<std::uint64_t> sum{0};
    parallel_for(kCount, 8, [&](std::size_t i) {
      slots[i] += 1;  // slot-per-index: no two invocations share a slot
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i) ASSERT_EQ(slots[i], 1u);
    EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(kCount) *
                              (kCount - 1) / 2);
  }
}

TEST(StressSweep, EightThreadSweepIsRaceFreeAndRepeatable) {
  const std::vector<workload::AppProfile> profiles = {
      workload::make_profile(workload::App::kHist),
      workload::make_profile(workload::App::kLR),
      workload::make_profile(workload::App::kWC)};
  const FullSystemSim sim;
  PlatformParams params;
  params.sim_cycles = 1'500;
  params.drain_cycles = 15'000;

  const auto first = sweep_comparisons(profiles, sim, params, 8);
  const auto second = sweep_comparisons(profiles, sim, params, 8);
  ASSERT_EQ(first.size(), profiles.size());
  ASSERT_EQ(second.size(), profiles.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].nvfi_mesh.exec_s, second[i].nvfi_mesh.exec_s);
    EXPECT_EQ(first[i].vfi_mesh.edp_js(), second[i].vfi_mesh.edp_js());
    EXPECT_EQ(first[i].vfi_winoc.edp_js(), second[i].vfi_winoc.edp_js());
    EXPECT_GT(first[i].nvfi_mesh.exec_s, 0.0);
  }
}

TEST(StressSweep, SharedNetworkEvaluatorUnderEightThreadSweep) {
  // One memo cache shared by all sweep workers: concurrent misses on
  // distinct keys simulate in parallel, a key being computed blocks its
  // second requester (compute-once), and the whole construction must be
  // invisible in the results — identical to an uncached sweep and to a
  // 2-thread sweep with its own cache, with deterministic hit/miss totals.
  const std::vector<workload::AppProfile> profiles = {
      workload::make_profile(workload::App::kHist),
      workload::make_profile(workload::App::kLR),
      workload::make_profile(workload::App::kWC)};
  const FullSystemSim sim;
  PlatformParams params;
  params.sim_cycles = 1'500;
  params.drain_cycles = 15'000;

  const auto fresh = sweep_comparisons(profiles, sim, params, 8);

  NetworkEvaluator cache8;
  params.net_eval = &cache8;
  const auto cached8 = sweep_comparisons(profiles, sim, params, 8);

  NetworkEvaluator cache2;
  params.net_eval = &cache2;
  const auto cached2 = sweep_comparisons(profiles, sim, params, 2);

  ASSERT_EQ(cached8.size(), profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (auto pick : {&SystemComparison::nvfi_mesh,
                      &SystemComparison::vfi_mesh,
                      &SystemComparison::vfi_winoc}) {
      const SystemReport& a = fresh[i].*pick;
      const SystemReport& b = cached8[i].*pick;
      const SystemReport& c = cached2[i].*pick;
      EXPECT_EQ(a.exec_s, b.exec_s);
      EXPECT_EQ(a.exec_s, c.exec_s);
      EXPECT_EQ(a.edp_js(), b.edp_js());
      EXPECT_EQ(a.edp_js(), c.edp_js());
      EXPECT_EQ(a.net.avg_latency_cycles, b.net.avg_latency_cycles);
      EXPECT_EQ(a.net.avg_latency_cycles, c.net.avg_latency_cycles);
    }
  }
  // Hit/miss totals are scheduling-independent: the registry admits exactly
  // one inserter per distinct key regardless of thread interleaving.
  EXPECT_GT(cache8.stats().hits, 0u);
  EXPECT_EQ(cache8.stats().hits, cache2.stats().hits);
  EXPECT_EQ(cache8.stats().misses, cache2.stats().misses);
  EXPECT_EQ(cache8.size(), cache2.size());
}

TEST(StressSweep, SharedPlatformCacheUnderEightThreadSweep) {
  // One PlatformCache shared by all sweep workers: the platform key covers
  // workload content + design knobs only, so three profiles x three system
  // kinds populate exactly nine entries, a second sweep over the same space
  // is pure hits, and every cached run must be bit-identical to building
  // platforms fresh.  Compute-once is the TSan target: concurrent requests
  // for one key must block on the first builder, not duplicate the VFI
  // design flow.
  const std::vector<workload::AppProfile> profiles = {
      workload::make_profile(workload::App::kHist),
      workload::make_profile(workload::App::kLR),
      workload::make_profile(workload::App::kWC)};
  const FullSystemSim sim;
  PlatformParams params;
  params.sim_cycles = 1'500;
  params.drain_cycles = 15'000;

  const auto fresh = sweep_comparisons(profiles, sim, params, 8);

  PlatformCache cache;
  params.platform_cache = &cache;
  const auto cached = sweep_comparisons(profiles, sim, params, 8);
  const std::uint64_t first_pass_misses = cache.misses();
  const auto warm = sweep_comparisons(profiles, sim, params, 8);

  ASSERT_EQ(cached.size(), profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (auto pick : {&SystemComparison::nvfi_mesh,
                      &SystemComparison::vfi_mesh,
                      &SystemComparison::vfi_winoc}) {
      const SystemReport& a = fresh[i].*pick;
      const SystemReport& b = cached[i].*pick;
      const SystemReport& c = warm[i].*pick;
      EXPECT_EQ(a.exec_s, b.exec_s);
      EXPECT_EQ(a.exec_s, c.exec_s);
      EXPECT_EQ(a.edp_js(), b.edp_js());
      EXPECT_EQ(a.edp_js(), c.edp_js());
      EXPECT_EQ(a.net.avg_latency_cycles, b.net.avg_latency_cycles);
      EXPECT_EQ(a.net.avg_latency_cycles, c.net.avg_latency_cycles);
    }
  }
  // 3 profiles x 3 kinds = 9 distinct platforms; the first sweep misses
  // each exactly once (compute-once under contention), the second sweep is
  // pure hits.  Counters are scheduling-independent.
  EXPECT_EQ(cache.size(), 9u);
  EXPECT_EQ(first_pass_misses, 9u);
  EXPECT_EQ(cache.misses(), 9u);
  EXPECT_EQ(cache.hits(), 9u);  // warm pass: every run hits its platform
}

TEST(StressSweep, AutoFidelitySweepPromotionIsRaceFree) {
  // The multi-fidelity design-space driver under contention: 8 workers
  // explore kAuto points through ONE shared evaluator, then the driver
  // promotes the frontier to cycle-accurate confirmation.  Promotion
  // bookkeeping (note_promotion) and the band-tagged memo cache are the
  // shared state under test (TSan target); the observable contract is that
  // results, argmins and every per-band counter are independent of the
  // thread count, and that the band counters are internally consistent.
  const auto profile = workload::make_profile(workload::App::kHist);
  const FullSystemSim sim;
  std::vector<SweepPoint> points;
  for (SystemKind kind : {SystemKind::kNvfiMesh, SystemKind::kVfiMesh,
                          SystemKind::kVfiWinoc}) {
    for (noc::Cycle cycles : {1'000, 1'500}) {
      SweepPoint pt;
      pt.label = system_name(kind) + "/" + std::to_string(cycles);
      pt.params.kind = kind;
      pt.params.sim_cycles = cycles;
      pt.params.drain_cycles = 15'000;
      pt.params.fidelity = Fidelity::kAuto;
      points.push_back(pt);
    }
  }

  NetworkEvaluator cache8;
  for (auto& pt : points) pt.params.net_eval = &cache8;
  const auto run8 = sweep_design_space(profile, sim, points, 2, 8);
  const auto stats8 = cache8.stats();

  NetworkEvaluator cache2;
  for (auto& pt : points) pt.params.net_eval = &cache2;
  const auto run2 = sweep_design_space(profile, sim, points, 2, 2);
  const auto stats2 = cache2.stats();

  ASSERT_EQ(run8.points.size(), points.size());
  EXPECT_EQ(run8.argmin_explored, run2.argmin_explored);
  EXPECT_EQ(run8.argmin_confirmed, run2.argmin_confirmed);
  EXPECT_EQ(run8.promotions, 2u);
  EXPECT_EQ(run2.promotions, 2u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(run8.points[i].explored.edp_js(), run2.points[i].explored.edp_js());
    EXPECT_EQ(run8.points[i].promoted, run2.points[i].promoted);
    if (run8.points[i].promoted) {
      EXPECT_EQ(run8.points[i].confirmed.edp_js(),
                run2.points[i].confirmed.edp_js());
    }
  }
  // Per-band counters sum to the totals (no evaluation escapes its band's
  // tally) and are scheduling-independent.
  EXPECT_EQ(stats8.analytical_hits + stats8.cycle_hits, stats8.hits);
  EXPECT_EQ(stats8.analytical_misses + stats8.cycle_misses, stats8.misses);
  EXPECT_EQ(stats8.analytical_misses, stats2.analytical_misses);
  EXPECT_EQ(stats8.analytical_hits, stats2.analytical_hits);
  EXPECT_EQ(stats8.cycle_misses, stats2.cycle_misses);
  EXPECT_EQ(stats8.cycle_hits, stats2.cycle_hits);
  EXPECT_EQ(stats8.promotions, stats2.promotions);
  EXPECT_EQ(stats8.promotions, 2u);
  // Both bands saw traffic: exploration analytically, confirmation
  // cycle-accurately.
  EXPECT_GT(stats8.analytical_misses, 0u);
  EXPECT_GT(stats8.cycle_misses, 0u);
}

TEST(StressSweep, SharedTelemetrySinkUnderEightThreadSweep) {
  // One TelemetrySink shared by every concurrent run: counters, histogram
  // buckets and per-thread trace buffers all take concurrent traffic here.
  // This is the TSan target for the telemetry layer, and results must stay
  // bit-identical run to run despite the shared sink.
  const std::vector<workload::AppProfile> profiles = {
      workload::make_profile(workload::App::kHist),
      workload::make_profile(workload::App::kLR),
      workload::make_profile(workload::App::kWC)};
  const FullSystemSim sim;
  PlatformParams params;
  params.sim_cycles = 1'500;
  params.drain_cycles = 15'000;
  params.faults.link_rate = 30.0;
  params.faults.core_fail_prob = 0.05;

  telemetry::TelemetrySink sink_a;
  params.telemetry = &sink_a;
  const auto first = sweep_comparisons(profiles, sim, params, 8);

  telemetry::TelemetrySink sink_b;
  params.telemetry = &sink_b;
  const auto second = sweep_comparisons(profiles, sim, params, 8);

  ASSERT_EQ(first.size(), profiles.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].nvfi_mesh.exec_s, second[i].nvfi_mesh.exec_s);
    EXPECT_EQ(first[i].vfi_winoc.edp_js(), second[i].vfi_winoc.edp_js());
  }
  // Event *counts* are deterministic; only buffer order varies with
  // scheduling (integer adds commute, see telemetry/metrics.hpp).
  EXPECT_EQ(sink_a.tracer().events(), sink_b.tracer().events());
  EXPECT_GT(sink_a.tracer().events(), 0u);
  auto count_like = [](telemetry::TelemetrySink& s, const char* suffix) {
    std::uint64_t total = 0;
    for (const auto& [name, value] : s.metrics().snapshot()) {
      if (name.size() > std::string(suffix).size() &&
          name.rfind(suffix) == name.size() - std::string(suffix).size()) {
        total += static_cast<std::uint64_t>(value);
      }
    }
    return total;
  };
  EXPECT_EQ(count_like(sink_a, ".sys.steals"),
            count_like(sink_b, ".sys.steals"));
}

}  // namespace
}  // namespace vfimr::sysmodel
