// Input-validation hardening: invalid platform / simulation / power
// configurations must fail fast with a descriptive RequirementError instead
// of corrupting a run (satellite of the fault-injection PR).

#include <gtest/gtest.h>

#include <string>

#include "cluster/fleet_faults.hpp"
#include "cluster/serving.hpp"
#include "common/require.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"
#include "power/vf_table.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr {
namespace {

/// EXPECT_THROW plus a check that the message mentions `needle` — the error
/// must tell the user *what* was wrong, not just that something was.
template <typename Fn>
void expect_requirement(const Fn& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected RequirementError mentioning \"" << needle << "\"";
  } catch (const RequirementError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(ConfigValidation, VfTableRejectsEmptyAndNonPositivePoints) {
  expect_requirement([] { power::VfTable t{{}}; (void)t; },
                     "at least one V/F point");
  expect_requirement(
      [] {
        power::VfTable t{{power::VfPoint{0.0, 2.5e9}}};
        (void)t;
      },
      "positive voltage");
  expect_requirement(
      [] {
        power::VfTable t{{power::VfPoint{1.0, -1.0}}};
        (void)t;
      },
      "positive voltage and frequency");
}

TEST(ConfigValidation, MeshRejectsZeroDimensions) {
  expect_requirement([] { noc::make_mesh(0, 4); }, "must be positive");
  expect_requirement([] { noc::make_mesh(4, 0); }, "must be positive");
}

TEST(ConfigValidation, NetworkRejectsZeroBufferDepths) {
  const noc::Topology topo = noc::make_mesh(2, 2);
  const noc::XyRouting routing{topo.graph, 2, 2};
  expect_requirement(
      [&] {
        noc::SimConfig cfg;
        cfg.wire_buffer_depth = 0;
        noc::Network net{topo, routing, cfg};
      },
      "wire_buffer_depth");
  expect_requirement(
      [&] {
        noc::SimConfig cfg;
        cfg.wi_buffer_depth = 0;
        noc::Network net{topo, routing, cfg};
      },
      "wi_buffer_depth");
}

TEST(ConfigValidation, SystemSimRejectsBadNetworkParams) {
  const auto profile = workload::make_profile(workload::App::kWC);
  const sysmodel::FullSystemSim sim;

  sysmodel::PlatformParams params;
  params.network_clock_hz = 0.0;
  expect_requirement([&] { sim.run(profile, params); }, "network_clock_hz");

  params = sysmodel::PlatformParams{};
  params.network_clock_hz = -1.0e9;
  expect_requirement([&] { sim.run(profile, params); }, "network_clock_hz");

  params = sysmodel::PlatformParams{};
  params.router_pipeline_cycles = 0;
  expect_requirement([&] { sim.run(profile, params); },
                     "router_pipeline_cycles");

  params = sysmodel::PlatformParams{};
  params.sim_cycles = 0;
  expect_requirement([&] { sim.run(profile, params); }, "sim_cycles");
}

TEST(ConfigValidation, FleetConfigRejectsStructurallyInvalidFleets) {
  auto valid = [] {
    cluster::FleetConfig f;
    cluster::PlatformTypeSpec t;
    t.label = "winoc";
    t.count = 2;
    f.types.push_back(t);
    return f;
  };
  valid().validate();  // the baseline passes

  expect_requirement([] { cluster::FleetConfig{}.validate(); },
                     ">= 1 platform type");

  expect_requirement(
      [&] {
        cluster::FleetConfig f = valid();
        f.types[0].count = 0;
        f.validate();
      },
      "count 0");

  expect_requirement(
      [&] {
        cluster::FleetConfig f = valid();
        f.power_cap = cluster::PowerCapMode::kShed;  // budget left at 0
        f.validate();
      },
      "power_cap_w > 0");
  expect_requirement(
      [&] {
        cluster::FleetConfig f = valid();
        f.power_cap = cluster::PowerCapMode::kDelay;
        f.power_cap_w = -5.0;
        f.validate();
      },
      "power_cap_w > 0");

  expect_requirement(
      [&] {
        cluster::FleetConfig f = valid();
        f.retry.max_attempts = 0;  // a retry limit of zero
        f.validate();
      },
      "max_attempts");
  expect_requirement(
      [&] {
        cluster::FleetConfig f = valid();
        f.retry.backoff_base_s = -0.1;
        f.validate();
      },
      "backoff_base_s");
  expect_requirement(
      [&] {
        cluster::FleetConfig f = valid();
        f.retry.backoff_mult = 0.0;
        f.validate();
      },
      "backoff_mult");
  expect_requirement(
      [&] {
        cluster::FleetConfig f = valid();
        f.hedge.latency_multiplier = -1.0;
        f.validate();
      },
      "latency_multiplier");

  // A fault plan sized for a different fleet cannot be applied.
  expect_requirement(
      [&] {
        cluster::FleetConfig f = valid();  // 2 instances
        std::vector<faults::PlatformFault> w;
        w.push_back({0, faults::PlatformFaultKind::kCrash, 1.0, 2.0, 1.0});
        f.faults = cluster::FleetFaultPlan{w, 3};
        f.validate();
      },
      "fault plan covers 3 instances");
}

TEST(ConfigValidation, PlatformRejectsNonDieSizedProfiles) {
  auto profile = workload::make_profile(workload::App::kWC);
  profile.threads = 16;
  profile.utilization.resize(16);
  const sysmodel::FullSystemSim sim;
  expect_requirement([&] { sim.run(profile, sysmodel::PlatformParams{}); },
                     "8x8 die");
}

}  // namespace
}  // namespace vfimr
