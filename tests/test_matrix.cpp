#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace vfimr {
namespace {

TEST(MatrixTest, ConstructAndFill) {
  Matrix m{2, 3, 1.5};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  EXPECT_DOUBLE_EQ(m.sum(), 9.0);
}

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, OutOfBoundsThrows) {
  Matrix m{2, 2};
  EXPECT_THROW(m(2, 0), RequirementError);
  EXPECT_THROW(m(0, 2), RequirementError);
}

TEST(MatrixTest, Identity) {
  const Matrix id = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(id.sum(), 3.0);
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a{2, 2};
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix b{2, 2};
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyByIdentity) {
  Rng rng{31};
  Matrix a{4, 4};
  for (auto& v : a.data()) v = rng.uniform(-1.0, 1.0);
  EXPECT_EQ(a * Matrix::identity(4), a);
  EXPECT_EQ(Matrix::identity(4) * a, a);
}

TEST(MatrixTest, MultiplyDimensionMismatchThrows) {
  Matrix a{2, 3};
  Matrix b{2, 3};
  EXPECT_THROW(a * b, RequirementError);
}

TEST(MatrixTest, Transpose) {
  Matrix a{2, 3};
  a(0, 2) = 7.0;
  a(1, 0) = -2.0;
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
  EXPECT_DOUBLE_EQ(t(0, 1), -2.0);
  EXPECT_EQ(t.transposed(), a);
}

TEST(MatrixTest, NormalizeByMax) {
  Matrix m{2, 2};
  m(0, 0) = 2.0;
  m(1, 1) = 8.0;
  m.normalize_by_max();
  EXPECT_DOUBLE_EQ(m.max(), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.25);
}

TEST(MatrixTest, NormalizeAllZeroNoop) {
  Matrix m{2, 2};
  m.normalize_by_max();
  EXPECT_DOUBLE_EQ(m.sum(), 0.0);
}

TEST(MatrixTest, AssociativityProperty) {
  Rng rng{32};
  Matrix a{3, 3};
  Matrix b{3, 3};
  Matrix c{3, 3};
  for (auto* m : {&a, &b, &c}) {
    for (auto& v : m->data()) v = rng.uniform(-2.0, 2.0);
  }
  const Matrix left = (a * b) * c;
  const Matrix right = a * (b * c);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(left(i, j), right(i, j), 1e-12);
    }
  }
}

}  // namespace
}  // namespace vfimr
