// Property tests for the real MapReduce runtime: output equivalence between
// 1 worker and N workers — on a synthetic integer job (exact equality) and
// on all six paper applications (exact for integer-keyed apps, tight
// tolerances where floating-point summation order legitimately differs).

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "harness/generators.hpp"
#include "harness/property.hpp"
#include "mapreduce/apps/histogram.hpp"
#include "mapreduce/apps/kmeans.hpp"
#include "mapreduce/apps/linear_regression.hpp"
#include "mapreduce/apps/matrix_multiply.hpp"
#include "mapreduce/apps/pca.hpp"
#include "mapreduce/apps/wordcount.hpp"
#include "mapreduce/engine.hpp"

namespace vfimr::mr {
namespace {

std::size_t random_worker_count(Rng& rng) { return 2 + rng.uniform_u64(15); }

TEST(PropEngine, SyntheticJobEquivalentForOneVsManyWorkers) {
  test::for_each_seed(6, [](Rng& rng, std::uint64_t) {
    using E = Engine<std::uint64_t, std::int64_t>;
    const std::size_t tasks = rng.uniform_u64(120);
    const std::size_t key_space = 1 + rng.uniform_u64(40);
    const std::size_t emits_per_task = 1 + rng.uniform_u64(8);
    const std::uint64_t salt = rng.next_u64();

    auto map_fn = [&](std::size_t task, E::Emitter& em) {
      SplitMix64 sm{salt ^ task};
      for (std::size_t e = 0; e < emits_per_task; ++e) {
        const std::uint64_t key = sm.next() % key_space;
        em.emit(key, static_cast<std::int64_t>(sm.next() % 1000) - 500);
      }
    };

    auto run_with = [&](std::size_t workers, std::size_t partitions) {
      E::Options o;
      o.scheduler.workers = workers;
      o.reduce_partitions = partitions;
      return E{o}.run(tasks, map_fn);
    };

    const std::size_t n = random_worker_count(rng);
    const std::size_t parts = 1 + rng.uniform_u64(2 * n);
    const auto ref = run_with(1, 1);
    const auto par = run_with(n, parts);

    ASSERT_EQ(par.pairs.size(), ref.pairs.size());
    for (std::size_t i = 0; i < ref.pairs.size(); ++i) {
      EXPECT_EQ(par.pairs[i].key, ref.pairs[i].key);
      EXPECT_EQ(par.pairs[i].value, ref.pairs[i].value);
    }
    EXPECT_EQ(par.profile.unique_keys, ref.profile.unique_keys);
    EXPECT_EQ(par.profile.emitted_pairs, ref.profile.emitted_pairs);
    // Shuffle accounting: one unit per worker-local distinct key, so the
    // total can only grow when keys are spread over more workers, and the
    // single-worker total is exactly the number of unique keys.
    EXPECT_DOUBLE_EQ(ref.profile.shuffle_pairs.sum(),
                     static_cast<double>(ref.profile.unique_keys));
    EXPECT_GE(par.profile.shuffle_pairs.sum(),
              ref.profile.shuffle_pairs.sum() - 1e-9);
  });
}

TEST(PropEngine, WordCountEquivalentForOneVsManyWorkers) {
  test::for_each_seed(3, [](Rng& rng, std::uint64_t) {
    mr::apps::WordCountConfig cfg;
    cfg.word_count = 5'000;
    cfg.vocabulary = 200;
    cfg.map_tasks = 16;
    cfg.seed = rng.next_u64();
    const std::string text = mr::apps::generate_text(cfg);

    cfg.scheduler.workers = 1;
    const auto ref = mr::apps::word_count(text, cfg);
    cfg.scheduler.workers = random_worker_count(rng);
    const auto par = mr::apps::word_count(text, cfg);

    EXPECT_EQ(par.total_words, ref.total_words);
    ASSERT_EQ(par.counts.size(), ref.counts.size());
    for (std::size_t i = 0; i < ref.counts.size(); ++i) {
      EXPECT_EQ(par.counts[i], ref.counts[i]);
    }
  });
}

TEST(PropEngine, HistogramEquivalentForOneVsManyWorkers) {
  test::for_each_seed(3, [](Rng& rng, std::uint64_t) {
    mr::apps::HistogramConfig cfg;
    cfg.pixel_count = 20'000;
    cfg.map_tasks = 12;
    cfg.seed = rng.next_u64();
    const auto image = mr::apps::generate_image(cfg);

    cfg.scheduler.workers = 1;
    const auto ref = mr::apps::histogram(image, cfg);
    cfg.scheduler.workers = random_worker_count(rng);
    const auto par = mr::apps::histogram(image, cfg);
    EXPECT_EQ(par.bins, ref.bins);
  });
}

TEST(PropEngine, LinearRegressionEquivalentForOneVsManyWorkers) {
  test::for_each_seed(3, [](Rng& rng, std::uint64_t) {
    mr::apps::LinearRegressionConfig cfg;
    cfg.sample_count = 20'000;
    cfg.map_tasks = 16;
    cfg.seed = rng.next_u64();
    const auto samples = mr::apps::generate_samples(cfg);

    cfg.scheduler.workers = 1;
    const auto ref = mr::apps::linear_regression(samples, cfg);
    cfg.scheduler.workers = random_worker_count(rng);
    const auto par = mr::apps::linear_regression(samples, cfg);

    EXPECT_EQ(par.samples, ref.samples);
    // Partial sums fold in a worker-dependent order; only ulp-level
    // floating-point drift is acceptable.
    EXPECT_NEAR(par.slope, ref.slope, 1e-9 * std::abs(ref.slope) + 1e-12);
    EXPECT_NEAR(par.intercept, ref.intercept,
                1e-9 * std::abs(ref.intercept) + 1e-12);
  });
}

TEST(PropEngine, MatrixMultiplyEquivalentForOneVsManyWorkers) {
  test::for_each_seed(3, [](Rng& rng, std::uint64_t) {
    mr::apps::MatrixMultiplyConfig cfg;
    cfg.dimension = 48;
    cfg.map_tasks = 16;
    cfg.seed = rng.next_u64();
    const Matrix a = mr::apps::generate_matrix(cfg.dimension, cfg.seed);
    const Matrix b = mr::apps::generate_matrix(cfg.dimension, cfg.seed + 1);

    cfg.scheduler.workers = 1;
    const auto ref = mr::apps::matrix_multiply(a, b, cfg);
    cfg.scheduler.workers = random_worker_count(rng);
    const auto par = mr::apps::matrix_multiply(a, b, cfg);

    // Every output row is computed wholly inside one map task, so the
    // product must be bit-identical regardless of worker count.
    ASSERT_EQ(par.product.rows(), ref.product.rows());
    for (std::size_t r = 0; r < ref.product.rows(); ++r) {
      for (std::size_t c = 0; c < ref.product.cols(); ++c) {
        EXPECT_EQ(par.product(r, c), ref.product(r, c))
            << "element (" << r << ", " << c << ")";
      }
    }
  });
}

TEST(PropEngine, KmeansEquivalentForOneVsManyWorkers) {
  test::for_each_seed(3, [](Rng& rng, std::uint64_t) {
    mr::apps::KmeansConfig cfg;
    cfg.point_count = 1'500;
    cfg.dimensions = 8;
    cfg.clusters = 4;
    cfg.max_iterations = 6;
    cfg.map_tasks = 16;
    cfg.seed = rng.next_u64();
    const auto points = mr::apps::generate_points(cfg);

    cfg.scheduler.workers = 1;
    const auto ref = mr::apps::kmeans(points, cfg);
    cfg.scheduler.workers = random_worker_count(rng);
    const auto par = mr::apps::kmeans(points, cfg);

    EXPECT_EQ(par.iterations, ref.iterations);
    EXPECT_EQ(par.assignment, ref.assignment);
    ASSERT_EQ(par.centroids.size(), ref.centroids.size());
    for (std::size_t k = 0; k < ref.centroids.size(); ++k) {
      for (std::size_t d = 0; d < ref.centroids[k].size(); ++d) {
        EXPECT_NEAR(par.centroids[k][d], ref.centroids[k][d],
                    1e-6 * std::abs(ref.centroids[k][d]) + 1e-9);
      }
    }
  });
}

TEST(PropEngine, PcaEquivalentForOneVsManyWorkers) {
  test::for_each_seed(3, [](Rng& rng, std::uint64_t) {
    mr::apps::PcaConfig cfg;
    cfg.rows = 300;
    cfg.dimensions = 12;
    cfg.map_tasks = 16;
    cfg.seed = rng.next_u64();
    const Matrix data = mr::apps::generate_data(cfg);

    cfg.scheduler.workers = 1;
    const auto ref = mr::apps::pca(data, cfg);
    cfg.scheduler.workers = random_worker_count(rng);
    const auto par = mr::apps::pca(data, cfg);

    ASSERT_EQ(par.mean.size(), ref.mean.size());
    for (std::size_t d = 0; d < ref.mean.size(); ++d) {
      EXPECT_NEAR(par.mean[d], ref.mean[d],
                  1e-9 * std::abs(ref.mean[d]) + 1e-12);
    }
    for (std::size_t r = 0; r < ref.covariance.rows(); ++r) {
      for (std::size_t c = 0; c < ref.covariance.cols(); ++c) {
        EXPECT_NEAR(par.covariance(r, c), ref.covariance(r, c),
                    1e-9 * std::abs(ref.covariance(r, c)) + 1e-12);
      }
    }
  });
}

}  // namespace
}  // namespace vfimr::mr
