#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace vfimr {
namespace {

TEST(Accumulator, Empty) {
  Accumulator a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(a.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, AddN) {
  Accumulator a;
  a.add_n(3.0, 5);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesCombined) {
  Rng rng{21};
  Accumulator left;
  Accumulator right;
  Accumulator all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 3 == 0 ? left : right).add(x);
    all.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a;
  a.add(1.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(BatchStats, MeanStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(sum(xs), 10.0);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 4.0);
}

TEST(BatchStats, EmptyInputs) {
  const std::vector<double> xs;
  EXPECT_EQ(mean(xs), 0.0);
  EXPECT_EQ(stddev(xs), 0.0);
  EXPECT_EQ(median({}), 0.0);
  EXPECT_EQ(min_of(xs), 0.0);
}

TEST(BatchStats, MedianAndPercentile) {
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 75.0), 1.75);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(BatchStats, Geomean) {
  EXPECT_DOUBLE_EQ(geomean(std::vector<double>{2.0, 8.0}), 4.0);
  EXPECT_THROW(geomean(std::vector<double>{1.0, 0.0}), std::invalid_argument);
}

TEST(BatchStats, CoeffVariation) {
  EXPECT_DOUBLE_EQ(coeff_variation(std::vector<double>{5.0, 5.0, 5.0}), 0.0);
  const std::vector<double> xs = {1.0, 3.0};
  EXPECT_NEAR(coeff_variation(xs), 1.0 / 2.0, 1e-12);
}

TEST(HistogramTest, Buckets) {
  Histogram h{0.0, 1.0, 4};
  h.add(0.1);
  h.add(0.3);
  h.add(0.3);
  h.add(0.9);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 0.25);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 0.5);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h{0.0, 1.0, 2};
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
}

TEST(HistogramTest, InvalidConstruction) {
  // Zero buckets / empty ranges are config errors (RequirementError) since
  // the cluster tier: a zero-bucket Histogram used to construct fine and
  // then crash in bucket_lo()/to_string().
  EXPECT_THROW(Histogram(0.0, 1.0, 0), RequirementError);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), RequirementError);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), RequirementError);
}

TEST(HistogramTest, ToStringContainsCounts) {
  Histogram h{0.0, 2.0, 2};
  h.add(0.5);
  const std::string s = h.to_string();
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find("[0,1): "), std::string::npos);
}

class AccumulatorSizes : public ::testing::TestWithParam<int> {};

TEST_P(AccumulatorSizes, StreamingMatchesBatch) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) + 100};
  std::vector<double> xs;
  Accumulator acc;
  for (int i = 0; i < GetParam(); ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    xs.push_back(x);
    acc.add(x);
  }
  EXPECT_NEAR(acc.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(acc.stddev(), stddev(xs), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AccumulatorSizes,
                         ::testing::Values(1, 2, 10, 1000, 10000));

}  // namespace
}  // namespace vfimr
