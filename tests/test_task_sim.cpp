#include "sysmodel/task_sim.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/require.hpp"

namespace vfimr::sysmodel {
namespace {

std::vector<SimCore> uniform_cores(std::size_t n, double freq = 2.5e9) {
  return std::vector<SimCore>(n, SimCore{freq, freq / 2.5e9});
}

std::vector<SimTask> fixed_tasks(std::size_t n, double cycles,
                                 double mem = 0.0) {
  return std::vector<SimTask>(n, SimTask{cycles, mem});
}

TEST(Materialize, MatchesSpecStatistics) {
  workload::TaskSet spec;
  spec.count = 5000;
  spec.cycles_mean = 1e9;
  spec.cycles_cv = 0.1;
  spec.mem_seconds_mean = 0.05;
  spec.mem_cv = 0.2;
  Rng rng{81};
  const auto tasks = materialize_tasks(spec, rng);
  ASSERT_EQ(tasks.size(), 5000u);
  double cyc = 0.0;
  double mem = 0.0;
  for (const auto& t : tasks) {
    EXPECT_GE(t.cycles, 0.0);
    EXPECT_GE(t.mem_seconds, 0.0);
    cyc += t.cycles;
    mem += t.mem_seconds;
  }
  EXPECT_NEAR(cyc / 5000.0, 1e9, 1e9 * 0.01);
  EXPECT_NEAR(mem / 5000.0, 0.05, 0.05 * 0.02);
}

TEST(Materialize, OwnerMapInvertsBlockSplit) {
  // n = 10 tasks on c = 4 cores: the block split is [0,2) [2,5) [5,7)
  // [7,10).  The old owner formula j*c/n mapped task 2 to core 0 although it
  // sits in core 1's block.
  EXPECT_EQ(block_owner(2, 10, 4), 1u);
  EXPECT_EQ(block_owner(1, 10, 4), 0u);
  EXPECT_EQ(block_owner(4, 10, 4), 1u);
  EXPECT_EQ(block_owner(5, 10, 4), 2u);
  EXPECT_EQ(block_owner(9, 10, 4), 3u);
}

TEST(Materialize, CorrelationUsesActualBlockOwner) {
  // Deterministic task draws (cv = 0) so every task starts identical, and
  // strictly increasing per-core utilization, so each task's compute/memory
  // shift factor identifies exactly which core's utilization drove it.
  workload::TaskSet spec;
  spec.count = 10;
  spec.cycles_mean = 2.5e9;  // 1 s of compute at f_max
  spec.cycles_cv = 0.0;
  spec.mem_seconds_mean = 1.0;
  spec.mem_cv = 0.0;
  const std::vector<double> util{0.2, 0.4, 0.6, 0.8};  // mean 0.5
  Rng rng{7};
  const auto tasks = materialize_tasks(spec, util, rng);
  ASSERT_EQ(tasks.size(), 10u);
  // m = clamp(u_owner / mean_u, 0.5, 1.6) per owner: {0.5, 0.8, 1.2, 1.6}.
  const double m_by_core[] = {0.5, 0.8, 1.2, 1.6};
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    const std::size_t owner = block_owner(j, 10, 4);
    EXPECT_NEAR(tasks[j].cycles, 2.5e9 * m_by_core[owner], 1.0)
        << "task " << j << " scaled by the wrong core's utilization";
  }
}

TEST(Materialize, UtilizationCorrelationPreservesNominalTime) {
  workload::TaskSet spec;
  spec.count = 640;
  spec.cycles_mean = 1e9;
  spec.cycles_cv = 0.0;
  spec.mem_seconds_mean = 0.1;
  spec.mem_cv = 0.0;
  std::vector<double> utilization(64);
  for (std::size_t i = 0; i < 64; ++i) {
    utilization[i] = i < 32 ? 0.9 : 0.3;
  }
  Rng rng{82};
  const auto tasks = materialize_tasks(spec, utilization, rng);
  const double nominal = 1e9 / kNominalFreqHz + 0.1;
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    EXPECT_NEAR(tasks[j].cycles / kNominalFreqHz + tasks[j].mem_seconds,
                nominal, 1e-9)
        << j;
  }
  // Tasks owned by high-utilization cores are compute-heavier.
  EXPECT_GT(tasks[0].cycles, tasks[639].cycles);
  EXPECT_LT(tasks[0].mem_seconds, tasks[639].mem_seconds);
}

TEST(SimulatePhase, SingleCoreSumsAllTasks) {
  const auto tasks = fixed_tasks(10, 2.5e9, 0.5);  // 1s compute + 0.5s mem
  const auto cores = uniform_cores(1);
  const auto r = simulate_phase(tasks, cores, 1.0,
                                StealingPolicy::kPhoenixDefault);
  EXPECT_NEAR(r.makespan_s, 15.0, 1e-9);
  EXPECT_EQ(r.tasks_executed[0], 10u);
  EXPECT_EQ(r.steals, 0u);
}

TEST(SimulatePhase, PerfectBalanceOnEqualCores) {
  const auto tasks = fixed_tasks(64, 2.5e9);
  const auto cores = uniform_cores(16);
  const auto r = simulate_phase(tasks, cores, 1.0,
                                StealingPolicy::kPhoenixDefault);
  EXPECT_NEAR(r.makespan_s, 4.0, 1e-9);  // 4 tasks x 1s each
  for (auto n : r.tasks_executed) EXPECT_EQ(n, 4u);
}

TEST(SimulatePhase, MemScaleStretchesMemoryOnly) {
  const auto tasks = fixed_tasks(8, 2.5e9, 1.0);
  const auto cores = uniform_cores(8);
  const auto base = simulate_phase(tasks, cores, 1.0,
                                   StealingPolicy::kPhoenixDefault);
  const auto slow = simulate_phase(tasks, cores, 1.5,
                                   StealingPolicy::kPhoenixDefault);
  EXPECT_NEAR(base.makespan_s, 2.0, 1e-9);
  EXPECT_NEAR(slow.makespan_s, 2.5, 1e-9);
}

TEST(SimulatePhase, StealingRebalancesHeterogeneousWork) {
  // Core 0's block has huge tasks; others must steal them.
  std::vector<SimTask> tasks;
  for (std::size_t i = 0; i < 4; ++i) tasks.push_back({10.0e9, 0.0});
  for (std::size_t i = 0; i < 12; ++i) tasks.push_back({1.0e9, 0.0});
  const auto cores = uniform_cores(4);
  const auto r = simulate_phase(tasks, cores, 1.0,
                                StealingPolicy::kPhoenixDefault);
  EXPECT_GT(r.steals, 0u);
  // Perfect balance would be 13.6s; stealing should be close (< 1.5x).
  EXPECT_LT(r.makespan_s, 1.5 * 13.6);
}

TEST(SimulatePhase, AllTasksAlwaysExecute) {
  const auto tasks = fixed_tasks(37, 1e9, 0.01);
  for (auto policy :
       {StealingPolicy::kPhoenixDefault, StealingPolicy::kVfiAssignment,
        StealingPolicy::kVfiHardCap}) {
    std::vector<SimCore> cores = uniform_cores(8);
    cores[3] = {2.0e9, 0.8};
    cores[7] = {1.5e9, 0.6};
    const auto r = simulate_phase(tasks, cores, 1.0, policy);
    const std::uint64_t total = std::accumulate(
        r.tasks_executed.begin(), r.tasks_executed.end(), std::uint64_t{0});
    EXPECT_EQ(total, 37u);
    EXPECT_GT(r.makespan_s, 0.0);
  }
}

TEST(SimulatePhase, HardCapLimitsSlowCores) {
  const auto tasks = fixed_tasks(40, 1e9);
  std::vector<SimCore> cores = uniform_cores(4);
  cores[2] = {1.25e9, 0.5};
  cores[3] = {1.25e9, 0.5};
  const auto r =
      simulate_phase(tasks, cores, 1.0, StealingPolicy::kVfiHardCap);
  // N_f = floor(40/4 * 0.5) = 5.
  EXPECT_LE(r.tasks_executed[2], 5u);
  EXPECT_LE(r.tasks_executed[3], 5u);
}

TEST(SimulatePhase, AssignmentPolicyGivesSlowCoresRoundedShare) {
  const auto tasks = fixed_tasks(40, 1e9);
  std::vector<SimCore> cores = uniform_cores(4);
  cores[3] = {2.0e9, 0.8};
  const auto r =
      simulate_phase(tasks, cores, 1.0, StealingPolicy::kVfiAssignment);
  // Slow core starts with round(10 * 0.8) = 8 of its own block; it may steal
  // more later but must execute at least its assignment-era share minus
  // steals... at minimum the policy ran and all tasks completed.
  const std::uint64_t total = std::accumulate(
      r.tasks_executed.begin(), r.tasks_executed.end(), std::uint64_t{0});
  EXPECT_EQ(total, 40u);
  // Fast cores pick up the surplus: together they execute > 3/4 of tasks.
  EXPECT_GT(r.tasks_executed[0] + r.tasks_executed[1] + r.tasks_executed[2],
            30u);
}

TEST(SimulatePhase, RelativeFrequencyUsesPresentMaximum) {
  // No core at the ladder maximum: Eq. 3's f_max is the config's own max,
  // so the 2.0 GHz cores count as "fast" and are never capped.
  const auto tasks = fixed_tasks(16, 1e9);
  std::vector<SimCore> cores(4);
  cores[0] = cores[1] = {2.0e9, 0.8};
  cores[2] = cores[3] = {1.5e9, 0.6};
  const auto r =
      simulate_phase(tasks, cores, 1.0, StealingPolicy::kVfiHardCap);
  // 2.0 GHz cores are uncapped (rel=1 vs present max).
  EXPECT_GE(r.tasks_executed[0] + r.tasks_executed[1], 8u);
}

TEST(SimulatePhase, EmptyTaskListIsNoop) {
  const auto r = simulate_phase({}, uniform_cores(4), 1.0,
                                StealingPolicy::kPhoenixDefault);
  EXPECT_EQ(r.makespan_s, 0.0);
}

TEST(SimulatePhase, PaperScenarioCapBeatsDefaultOnTail) {
  // §4.3's actual pathology: N slightly above C with overlapping duration
  // ranges; the Eq. 3 hard cap prevents a slow core from stealing the last
  // task.  68 tasks on 8 cores (4 fast f1, 4 slow f2), surplus on fast cores.
  std::vector<SimTask> tasks(10, SimTask{0.5e9, 0.070});
  std::vector<SimCore> cores(8);
  for (std::size_t i = 0; i < 4; ++i) cores[i] = {2.5e9, 1.0};
  for (std::size_t i = 4; i < 8; ++i) cores[i] = {2.0e9, 0.8};
  const auto def = simulate_phase(tasks, cores, 1.0,
                                  StealingPolicy::kPhoenixDefault);
  const auto cap =
      simulate_phase(tasks, cores, 1.0, StealingPolicy::kVfiHardCap);
  // With the cap, slow cores execute at most N_f = floor(10/8*0.8) = 1 task.
  for (std::size_t i = 4; i < 8; ++i) {
    EXPECT_LE(cap.tasks_executed[i], 1u);
  }
  EXPECT_LE(cap.makespan_s, def.makespan_s + 1e-9);
}

TEST(SimulatePhase, BusyNeverExceedsMakespan) {
  Rng rng{83};
  workload::TaskSet spec;
  spec.count = 200;
  spec.cycles_mean = 5e8;
  spec.mem_seconds_mean = 0.02;
  const auto tasks = materialize_tasks(spec, rng);
  std::vector<SimCore> cores = uniform_cores(64);
  for (std::size_t i = 32; i < 64; ++i) cores[i] = {2.0e9, 0.8};
  const auto r =
      simulate_phase(tasks, cores, 1.1, StealingPolicy::kVfiAssignment);
  for (double b : r.busy_seconds) {
    EXPECT_LE(b, r.makespan_s + 1e-9);
  }
}

class PolicySweep : public ::testing::TestWithParam<StealingPolicy> {};

TEST_P(PolicySweep, DeterministicAndComplete) {
  Rng rng{84};
  workload::TaskSet spec;
  spec.count = 300;
  spec.cycles_mean = 4e8;
  spec.mem_seconds_mean = 0.03;
  const auto tasks = materialize_tasks(spec, rng);
  std::vector<SimCore> cores(64);
  for (std::size_t i = 0; i < 64; ++i) {
    cores[i] = i % 2 ? SimCore{2.5e9, 1.0} : SimCore{2.0e9, 0.8};
  }
  const auto a = simulate_phase(tasks, cores, 1.0, GetParam());
  const auto b = simulate_phase(tasks, cores, 1.0, GetParam());
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.tasks_executed, b.tasks_executed);
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicySweep,
                         ::testing::Values(StealingPolicy::kPhoenixDefault,
                                           StealingPolicy::kVfiAssignment,
                                           StealingPolicy::kVfiHardCap));

}  // namespace
}  // namespace vfimr::sysmodel
