// json_lite corrupt-input coverage: every malformed or truncated input must
// raise a descriptive parse error carrying the byte offset, so a damaged
// golden/metric file is diagnosable from the message alone.

#include "common/json_lite.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>

namespace vfimr::json {
namespace {

/// Parse must fail, the message must carry the byte offset and mention the
/// expected defect.
void expect_parse_error(const std::string& text, const std::string& needle) {
  try {
    parse(text);
    FAIL() << "parse accepted malformed input: " << text;
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("at offset"), std::string::npos)
        << "no byte offset in: " << msg;
    EXPECT_NE(msg.find(needle), std::string::npos)
        << "expected \"" << needle << "\" in: " << msg;
  }
}

TEST(JsonCorrupt, EmptyAndWhitespaceOnlyInput) {
  expect_parse_error("", "empty input");
  expect_parse_error("   \n\t  ", "empty input");
}

TEST(JsonCorrupt, TruncatedObjects) {
  expect_parse_error("{", "expected '\"'");
  expect_parse_error("{\"a\"", "expected ':'");
  expect_parse_error("{\"a\":", "expected number");
  expect_parse_error("{\"a\": 1.0", "expected ',' or '}'");
  expect_parse_error("{\"a\": 1.0,", "expected '\"'");
}

TEST(JsonCorrupt, NotAnObject) {
  expect_parse_error("42", "expected '{'");
  expect_parse_error("[1, 2]", "expected '{'");
  expect_parse_error("null", "expected '{'");
}

TEST(JsonCorrupt, MalformedStringsAndNumbers) {
  expect_parse_error("{\"unterminated: 1}", "unterminated string");
  expect_parse_error("{\"bad\\nescape\": 1}", "unsupported escape");
  expect_parse_error("{\"a\": abc}", "expected number");
  expect_parse_error("{\"a\": 1.2.3}", "malformed number");
  expect_parse_error("{\"a\": --5}", "malformed number");
  // Non-numeric values outside the supported subset.
  expect_parse_error("{\"a\": \"string\"}", "expected number");
  expect_parse_error("{\"a\": true}", "expected number");
  expect_parse_error("{\"a\": {}}", "expected number");
}

TEST(JsonCorrupt, StructuralDefects) {
  expect_parse_error("{\"a\": 1, \"a\": 2}", "duplicate key");
  expect_parse_error("{\"a\": 1} garbage", "trailing content");
  expect_parse_error("{\"a\": 1}}", "trailing content");
  expect_parse_error("{\"a\" 1}", "expected ':'");
}

TEST(JsonCorrupt, OffsetPointsAtTheDefect) {
  // The offending '[' is at byte offset 6; the error must say so.
  try {
    parse("{\"k\": [x]}");
    FAIL() << "parse accepted an array value";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("at offset 6"), std::string::npos)
        << e.what();
  }
}

TEST(JsonCorrupt, ValidInputsStillParse) {
  EXPECT_TRUE(parse("{}").empty());
  const auto m = parse("{\"a\": 1.5, \"b\": -2e3}");
  EXPECT_DOUBLE_EQ(m.at("a"), 1.5);
  EXPECT_DOUBLE_EQ(m.at("b"), -2000.0);
  // Round-trip through dump.
  EXPECT_EQ(parse(dump(m)), m);
}

TEST(JsonCorrupt, LoadFileReportsPathAndOffset) {
  EXPECT_THROW(load_file("/nonexistent/golden.json"), std::runtime_error);

  const std::string path = ::testing::TempDir() + "corrupt_golden.json";
  {
    std::ofstream out{path};
    out << "{\"fig8.metric\": 0.31";  // truncated mid-object
  }
  try {
    load_file(path);
    FAIL() << "load_file accepted a truncated file";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("at offset"), std::string::npos) << msg;
    EXPECT_NE(msg.find(path), std::string::npos)
        << "path missing from: " << msg;
  }
}

}  // namespace
}  // namespace vfimr::json
