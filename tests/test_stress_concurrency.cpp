// Tier-2 concurrency stress tests (ctest label: tier2).
//
// These drive the *real* threaded MapReduce runtime — TaskScheduler and
// Engine — with high worker counts and adversarial task-size skew, and are
// meant to run under ThreadSanitizer (cmake --preset tsan && ctest --preset
// tsan-tier2).  They also run in the plain tier-1 suite as cheap smoke
// coverage of the same invariants.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "mapreduce/engine.hpp"
#include "mapreduce/scheduler.hpp"

namespace vfimr::mr {
namespace {

/// Burn a task-dependent amount of CPU so workers genuinely interleave and
/// steal; returns a value consumed by the caller to defeat DCE.
std::uint64_t spin(std::uint64_t iterations) {
  volatile std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < iterations; ++i) acc = acc + i;
  return acc;
}

/// Adversarial skew: most tasks are tiny, but every 31st task is two orders
/// of magnitude heavier, and the heaviest work sits at the *end* of the task
/// range — the worst case for block distribution, forcing late steals.
std::uint64_t skewed_cost(std::size_t task, std::size_t num_tasks) {
  std::uint64_t cost = 20 + (task % 7) * 15;
  if (task % 31 == 0) cost += 4'000;
  if (task + 8 >= num_tasks) cost += 20'000;
  return cost;
}

TEST(StressScheduler, ManyWorkersExecuteEveryTaskExactlyOnce) {
  constexpr std::size_t kWorkers = 24;
  constexpr std::size_t kTasks = 3'000;
  for (int round = 0; round < 3; ++round) {
    SchedulerConfig cfg;
    cfg.workers = kWorkers;
    TaskScheduler sched{cfg};

    std::vector<std::atomic<std::uint32_t>> hits(kTasks);
    std::atomic<std::uint64_t> sink{0};
    const SchedulerStats stats =
        sched.run(kTasks, [&](std::size_t task, std::size_t worker) {
          ASSERT_LT(worker, kWorkers);
          sink.fetch_add(spin(skewed_cost(task, kTasks)),
                         std::memory_order_relaxed);
          hits[task].fetch_add(1, std::memory_order_relaxed);
        });

    for (std::size_t t = 0; t < kTasks; ++t) {
      ASSERT_EQ(hits[t].load(), 1u) << "task " << t << " round " << round;
    }
    std::uint64_t executed = 0;
    for (std::uint64_t e : stats.tasks_executed) executed += e;
    EXPECT_EQ(executed, kTasks);
    EXPECT_GE(stats.wall_seconds, 0.0);
  }
}

TEST(StressScheduler, VfiCapWithSkewedTasksAndSlowWorkers) {
  constexpr std::size_t kWorkers = 16;
  constexpr std::size_t kTasks = 2'000;
  SchedulerConfig cfg;
  cfg.workers = kWorkers;
  cfg.vfi_stealing_cap = true;
  // Worker 0 stays at f_max so the master-side cleanup worker is uncapped;
  // every third other worker runs slow.
  cfg.rel_freq.assign(kWorkers, 1.0);
  for (std::size_t w = 1; w < kWorkers; w += 3) cfg.rel_freq[w] = 0.6;
  TaskScheduler sched{cfg};

  std::vector<std::atomic<std::uint32_t>> hits(kTasks);
  std::atomic<std::uint64_t> sink{0};
  const SchedulerStats stats =
      sched.run(kTasks, [&](std::size_t task, std::size_t) {
        sink.fetch_add(spin(skewed_cost(task, kTasks)),
                       std::memory_order_relaxed);
        hits[task].fetch_add(1, std::memory_order_relaxed);
      });

  for (std::size_t t = 0; t < kTasks; ++t) {
    ASSERT_EQ(hits[t].load(), 1u) << "task " << t;
  }
  const std::size_t cap = stealing_cap(kTasks, kWorkers, 0.6);
  for (std::size_t w = 1; w < kWorkers; ++w) {
    if (cfg.rel_freq[w] < 1.0) {
      EXPECT_LE(stats.tasks_executed[w], cap) << "worker " << w;
    }
  }
}

TEST(StressEngine, ManyWorkersMatchSingleWorkerReference) {
  using E = Engine<std::uint64_t, std::int64_t>;
  constexpr std::size_t kTasks = 400;
  constexpr std::size_t kKeySpace = 257;

  auto map_fn = [](std::size_t task, E::Emitter& em) {
    volatile std::uint64_t acc = 0;  // interleaving pressure inside map
    for (std::uint64_t i = 0; i < skewed_cost(task, kTasks); ++i) {
      acc = acc + i;
    }
    SplitMix64 sm{0xC0FFEEULL ^ task};
    const std::size_t emits = 1 + task % 11;
    for (std::size_t e = 0; e < emits; ++e) {
      em.emit(sm.next() % kKeySpace,
              static_cast<std::int64_t>(sm.next() % 2'000) - 1'000);
    }
  };

  auto run_with = [&](std::size_t workers) {
    E::Options o;
    o.scheduler.workers = workers;
    o.reduce_partitions = workers;
    std::map<std::uint64_t, std::int64_t> out;
    const auto result = E{o}.run(kTasks, map_fn);
    for (const auto& kv : result.pairs) out[kv.key] = kv.value;
    return out;
  };

  const auto ref = run_with(1);
  for (std::size_t workers : {16u, 24u, 32u}) {
    EXPECT_EQ(run_with(workers), ref) << workers << " workers";
  }
}

TEST(StressEngine, RepeatedRunsAreStableUnderContention) {
  // Exercises the map->shuffle->reduce->merge pipeline repeatedly with 16
  // workers; any lost update in the worker-local containers or the profile
  // accounting shows up as a drifting emitted_pairs / unique_keys count.
  using E = Engine<std::uint32_t, std::uint64_t>;
  E::Options o;
  o.scheduler.workers = 16;
  std::uint64_t expected_pairs = 0;
  std::size_t expected_keys = 0;
  for (int round = 0; round < 4; ++round) {
    const auto result =
        E{o}.run(600, [](std::size_t task, E::Emitter& em) {
          em.emit(static_cast<std::uint32_t>(task % 97), 1);
          em.emit(static_cast<std::uint32_t>(task % 13), 1);
        });
    if (round == 0) {
      expected_pairs = result.profile.emitted_pairs;
      expected_keys = result.profile.unique_keys;
    }
    EXPECT_EQ(result.profile.emitted_pairs, expected_pairs);
    EXPECT_EQ(result.profile.unique_keys, expected_keys);
    EXPECT_EQ(result.profile.emitted_pairs, 600u * 2u);
    std::uint64_t total = 0;
    for (const auto& kv : result.pairs) total += kv.value;
    EXPECT_EQ(total, 600u * 2u);
  }
}

}  // namespace
}  // namespace vfimr::mr
