// Telemetry layer tests: metrics registry semantics, tracer buffering and
// caps, Chrome-trace export determinism, and — the load-bearing guarantees
// of DESIGN.md §10 — that attaching a TelemetrySink perturbs no simulation
// result, that the reference and fast NoC stepping paths emit identical
// traces, and that a traced faulty run replays to an identical trace under
// the same seed.

#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "sysmodel/sweep.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr::telemetry {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterGaugeHistogramBasics) {
  MetricsRegistry reg;
  reg.counter("a.events").add();
  reg.counter("a.events").add(4);
  EXPECT_EQ(reg.counter("a.events").value(), 5u);

  reg.gauge("a.level").set(2.5);
  reg.gauge("a.level").add(-0.5);
  EXPECT_DOUBLE_EQ(reg.gauge("a.level").value(), 2.0);

  auto& h = reg.histogram("a.lat", 0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_EQ(h.count(), 10u);
  const Histogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), 10u);
  EXPECT_DOUBLE_EQ(snap.mean(), 5.0);
}

TEST(Metrics, HistogramRebindingMismatchThrows) {
  MetricsRegistry reg;
  reg.histogram("h", 0.0, 1.0, 8);
  EXPECT_NO_THROW(reg.histogram("h", 0.0, 1.0, 8));
  EXPECT_THROW(reg.histogram("h", 0.0, 1.0, 16), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", 0.0, 2.0, 8), std::invalid_argument);
}

TEST(Metrics, SnapshotExpandsHistograms) {
  MetricsRegistry reg;
  reg.counter("c").add(3);
  reg.histogram("h", 0.0, 4.0, 4).add(1.0);
  const json::MetricMap m = reg.snapshot();
  EXPECT_EQ(m.at("c"), 3.0);
  EXPECT_EQ(m.at("h.count"), 1.0);
  EXPECT_TRUE(m.count("h.mean"));
  EXPECT_TRUE(m.count("h.p50"));
  EXPECT_TRUE(m.count("h.p95"));
  EXPECT_TRUE(m.count("h.p99"));
}

TEST(Metrics, EmptyInstrumentsPrintNaInSummary) {
  // Regression: a histogram or quantile that received no samples used to
  // print NaN/0 for its derived stats.  The summary must say "n/a" and the
  // flat snapshot must omit the derived keys entirely.
  MetricsRegistry reg;
  reg.histogram("empty.hist", 0.0, 1.0, 4);
  reg.quantile("empty.q", 0.99);
  reg.histogram("full.hist", 0.0, 4.0, 4).add(2.0);
  reg.quantile("full.q", 0.5).add(3.0);

  const std::string text = reg.summary_table().to_string();
  EXPECT_NE(text.find("n/a"), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_EQ(text.find("-nan"), std::string::npos);
  EXPECT_NE(text.find("empty.hist.count"), std::string::npos);
  EXPECT_NE(text.find("full.q"), std::string::npos);

  const json::MetricMap m = reg.snapshot();
  EXPECT_EQ(m.at("empty.hist.count"), 0.0);
  EXPECT_FALSE(m.count("empty.hist.mean"));
  EXPECT_FALSE(m.count("empty.hist.p50"));
  EXPECT_FALSE(m.count("empty.q"));
  EXPECT_TRUE(m.count("full.hist.mean"));
  EXPECT_EQ(m.at("full.q"), 3.0);
}

TEST(Metrics, CountersAreThreadSafe) {
  MetricsRegistry reg;
  Counter& c = reg.counter("n");
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&c] {
      for (int i = 0; i < 10'000; ++i) c.add();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), 40'000u);
}

// ----------------------------------------------------------------- tracer

TEST(Tracer, TrackRegistrationDedups) {
  Tracer tr;
  const TrackId a = tr.track("proc", "thread A");
  const TrackId b = tr.track("proc", "thread B");
  EXPECT_NE(a, b);
  EXPECT_EQ(tr.track("proc", "thread A"), a);
  EXPECT_EQ(tr.tracks().size(), 2u);
}

TEST(Tracer, EventCapDegradesToTruncation) {
  Tracer tr{4};
  const TrackId t = tr.track("p", "t");
  for (int i = 0; i < 10; ++i) tr.instant(t, "e", static_cast<double>(i));
  EXPECT_EQ(tr.events(), 4u);
  EXPECT_EQ(tr.dropped(), 6u);
  std::uint64_t seen = 0;
  tr.for_each_event([&](const TraceEvent&) { ++seen; });
  EXPECT_EQ(seen, 4u);
}

TEST(Tracer, ThreadLocalBufferRebindsAcrossTracers) {
  // One OS thread writing to two tracers alternately must not cross the
  // streams (the thread_local cache is keyed by tracer instance id).
  Tracer a, b;
  const TrackId ta = a.track("p", "t");
  const TrackId tb = b.track("p", "t");
  a.instant(ta, "in A", 1.0);
  b.instant(tb, "in B", 2.0);
  a.instant(ta, "in A again", 3.0);
  EXPECT_EQ(a.events(), 2u);
  EXPECT_EQ(b.events(), 1u);
}

TEST(ChromeTrace, ExportShapeAndEscaping) {
  Tracer tr;
  const TrackId t = tr.track("proc \"x\"", "row\n1");
  tr.complete(t, "span", 1.0, 2.0, {{"k", 3.0}});
  tr.instant(t, "mark", 4.0);
  tr.counter(t, "series", 5.0, 6.0);
  const std::string json = to_chrome_json(tr);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.find_last_not_of('\n'), json.size() - 2);
  EXPECT_EQ(json[json.size() - 2], '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"proc \\\"x\\\"\""), std::string::npos);
  EXPECT_NE(json.find("row\\n1"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(ChromeTrace, AsyncAndFlowEventsCarryCatIdAndBindingPoint) {
  Tracer tr;
  const TrackId a = tr.track("proc", "lane A");
  const TrackId b = tr.track("proc", "lane B");
  tr.async_begin(a, "job 7", "job", 7, 1.0, {{"deadline", 9.0}});
  tr.async_end(a, "job 7", "job", 7, 5.0);
  tr.flow_start(a, "retry", "retry", 42, 2.0);
  tr.flow_finish(b, "retry", "retry", 42, 3.0);

  const std::string json = to_chrome_json(tr);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"job\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"retry\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
  // Perfetto binds a flow arrow to its enclosing slice only with "bp":"e"
  // on the finish edge.
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"deadline\""), std::string::npos);
}

// ----------------------------------------------- simulation determinism

sysmodel::PlatformParams small_params() {
  sysmodel::PlatformParams p;
  p.sim_cycles = 6'000;
  p.drain_cycles = 30'000;
  return p;
}

void expect_reports_equal(const sysmodel::SystemReport& a,
                          const sysmodel::SystemReport& b) {
  EXPECT_EQ(a.exec_s, b.exec_s);
  EXPECT_EQ(a.core_energy_j, b.core_energy_j);
  EXPECT_EQ(a.net_dynamic_j, b.net_dynamic_j);
  EXPECT_EQ(a.net_static_j, b.net_static_j);
  EXPECT_EQ(a.net.avg_latency_cycles, b.net.avg_latency_cycles);
  EXPECT_EQ(a.phases.map_s, b.phases.map_s);
  EXPECT_EQ(a.phases.reduce_s, b.phases.reduce_s);
  EXPECT_EQ(a.resilience.core_failures, b.resilience.core_failures);
  EXPECT_EQ(a.resilience.packets_lost, b.resilience.packets_lost);
}

TEST(TelemetryDeterminism, SinkDoesNotPerturbResults) {
  const auto profile = workload::make_profile(workload::App::kHist);
  const sysmodel::FullSystemSim sim;

  const auto off = sysmodel::compare_systems(profile, sim, small_params());

  TelemetrySink sink;
  sysmodel::PlatformParams traced = small_params();
  traced.telemetry = &sink;
  const auto on = sysmodel::compare_systems(profile, sim, traced);

  expect_reports_equal(off.nvfi_mesh, on.nvfi_mesh);
  expect_reports_equal(off.vfi_mesh, on.vfi_mesh);
  expect_reports_equal(off.vfi_winoc, on.vfi_winoc);
  EXPECT_GT(sink.tracer().events(), 0u);
}

TEST(TelemetryDeterminism, SinkDoesNotPerturbFaultyRuns) {
  const auto profile = workload::make_profile(workload::App::kWC);
  const sysmodel::FullSystemSim sim;
  sysmodel::PlatformParams params = small_params();
  params.kind = sysmodel::SystemKind::kVfiWinoc;
  params.faults.link_rate = 20.0;
  params.faults.router_rate = 5.0;
  params.faults.core_fail_prob = 0.05;
  params.faults.seed = 1234;

  const auto off = sim.run(profile, params);

  TelemetrySink sink;
  params.telemetry = &sink;
  const auto on = sim.run(profile, params);

  expect_reports_equal(off, on);
}

TEST(TelemetryDeterminism, ReferenceAndFastSteppingTracesIdentical) {
  // The instrumentation sites sit on code shared by both stepping paths, so
  // a traced run must produce the same events (and file bytes) either way.
  const auto profile = workload::make_profile(workload::App::kKmeans);
  const sysmodel::FullSystemSim sim;

  auto traced_run = [&](bool reference) {
    TelemetrySink sink;
    sysmodel::PlatformParams params = small_params();
    params.kind = sysmodel::SystemKind::kVfiWinoc;
    params.noc_sim.reference_stepping = reference;
    params.telemetry = &sink;
    (void)sim.run(profile, params);
    return to_chrome_json(sink.tracer());
  };

  const std::string fast = traced_run(false);
  const std::string reference = traced_run(true);
  EXPECT_GT(fast.size(), 2u);
  EXPECT_EQ(fast, reference);
}

TEST(TelemetryDeterminism, FaultyRunReplaysToIdenticalTrace) {
  const auto profile = workload::make_profile(workload::App::kHist);
  const sysmodel::FullSystemSim sim;

  auto traced_run = [&] {
    TelemetrySink sink;
    sysmodel::PlatformParams params = small_params();
    params.kind = sysmodel::SystemKind::kVfiWinoc;
    params.faults.link_rate = 30.0;
    params.faults.router_rate = 10.0;
    params.faults.wi_rate = 5.0;
    params.faults.core_fail_prob = 0.08;
    params.faults.seed = 77;
    params.telemetry = &sink;
    (void)sim.run(profile, params);
    return std::pair{to_chrome_json(sink.tracer()), sink.metrics().snapshot()};
  };

  const auto first = traced_run();
  const auto second = traced_run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  // A fault schedule this dense must actually have produced fault events.
  bool saw_fault_metric = false;
  for (const auto& [name, value] : first.second) {
    if (name.find(".noc.fault_events") != std::string::npos && value > 0) {
      saw_fault_metric = true;
    }
  }
  EXPECT_TRUE(saw_fault_metric);
}

TEST(TelemetryDeterminism, ParallelSweepMatchesSerialReports) {
  // One shared sink behind the parallel sweep runner: reports must still be
  // bit-identical to the serial, untraced sweep (metrics from concurrent
  // runs interleave, but never feed back into the simulation).
  std::vector<workload::AppProfile> profiles{
      workload::make_profile(workload::App::kHist),
      workload::make_profile(workload::App::kWC)};
  const sysmodel::FullSystemSim sim;

  const auto serial =
      sysmodel::sweep_comparisons(profiles, sim, small_params(), 1);

  TelemetrySink sink;
  sysmodel::PlatformParams traced = small_params();
  traced.telemetry = &sink;
  const auto parallel = sysmodel::sweep_comparisons(profiles, sim, traced, 4);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_reports_equal(serial[i].nvfi_mesh, parallel[i].nvfi_mesh);
    expect_reports_equal(serial[i].vfi_mesh, parallel[i].vfi_mesh);
    expect_reports_equal(serial[i].vfi_winoc, parallel[i].vfi_winoc);
  }
}

}  // namespace
}  // namespace vfimr::telemetry
