// Tests for the persistent evaluation store (DESIGN.md §16): byte codec
// round-trips, segment framing robustness (truncation, bit rot, foreign
// versions — every failure degrades to a recompute, never to wrong data),
// the tiered NetworkEvaluator / PlatformCache lookup, and the incremental
// sweep driver.  The load-bearing property throughout: a disk hit is
// bit-identical to a fresh computation, clean and faulty, in both fidelity
// bands.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/bytes.hpp"
#include "store/codec.hpp"
#include "store/eval_store.hpp"
#include "sysmodel/net_eval.hpp"
#include "sysmodel/sweep.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr::store {
namespace {

namespace fs = std::filesystem;

/// Scoped scratch directory for one test, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path{(fs::temp_directory_path() / ("vfimr_store_test_" + name))
                 .string()} {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

/// The one committed segment file of a freshly-flushed store.
std::string only_segment(const std::string& dir) {
  std::string found;
  for (const auto& e : fs::directory_iterator{dir}) {
    const std::string name = e.path().filename().string();
    if (name.rfind("seg-", 0) == 0) {
      EXPECT_TRUE(found.empty()) << "expected a single segment";
      found = e.path().string();
    }
  }
  EXPECT_FALSE(found.empty());
  return found;
}

TEST(Bytes, ScalarsStringsVectorsRoundTrip) {
  ByteWriter w;
  w.put(std::uint32_t{0xDEADBEEF});
  w.put(std::uint64_t{42});
  w.put(3.25);
  w.put_string("hello");
  w.put_vector(std::vector<std::uint32_t>{1, 2, 3});

  ByteReader r{w.bytes()};
  std::uint32_t a = 0;
  std::uint64_t b = 0;
  double c = 0.0;
  std::string s;
  std::vector<std::uint32_t> v;
  r.get(a);
  r.get(b);
  r.get(c);
  r.get_string(s);
  r.get_vector(v);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.done());
  EXPECT_EQ(a, 0xDEADBEEFu);
  EXPECT_EQ(b, 42u);
  EXPECT_EQ(c, 3.25);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(v, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(Bytes, TruncatedInputLatchesNotOk) {
  ByteWriter w;
  w.put(std::uint64_t{7});
  std::string bytes{w.bytes()};
  bytes.resize(bytes.size() - 1);
  ByteReader r{bytes};
  std::uint64_t x = 99;
  r.get(x);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(x, 0u);  // a failed read zeroes the output, never leaves junk
  // Once not-ok, later reads stay not-ok and keep returning zeroed values.
  std::uint32_t y = 55;
  r.get(y);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(y, 0u);
}

TEST(Bytes, HugeDeclaredLengthIsRejectedNotAllocated) {
  ByteWriter w;
  w.put(std::uint64_t{1} << 60);  // claimed element count, no payload
  ByteReader r{w.bytes()};
  std::vector<double> v;
  r.get_vector(v);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(v.empty());
}

TEST(Bytes, Crc32AndFnvKnownValues) {
  // IEEE 802.3 CRC-32 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  // FNV-1a 64-bit offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(EvalStore, PutGetFlushReopen) {
  TempDir tmp{"basic"};
  {
    EvalStore st{tmp.path};
    std::string v;
    EXPECT_FALSE(st.get("missing", v));
    st.put("k1", "v1");
    st.put("k2", std::string(100'000, 'x'));  // spans the record path
    EXPECT_TRUE(st.get("k1", v));  // visible before flush
    EXPECT_EQ(v, "v1");
    st.flush();
  }
  EvalStore st{tmp.path};
  std::string v;
  EXPECT_TRUE(st.get("k1", v));
  EXPECT_EQ(v, "v1");
  EXPECT_TRUE(st.get("k2", v));
  EXPECT_EQ(v.size(), 100'000u);
  EXPECT_EQ(v[0], 'x');
  EXPECT_FALSE(st.get("k3", v));
  const StoreStats s = st.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.corrupt_records, 0u);
  EXPECT_EQ(st.keys(), 2u);
}

TEST(EvalStore, DomainKeysNeverCollide) {
  const std::string key = "same payload";
  EXPECT_NE(domain_key(KeyDomain::kNetworkEval, key),
            domain_key(KeyDomain::kPlatformDesign, key));
  TempDir tmp{"domains"};
  EvalStore st{tmp.path};
  st.put(domain_key(KeyDomain::kNetworkEval, key), "eval");
  st.put(domain_key(KeyDomain::kPlatformDesign, key), "design");
  std::string v;
  ASSERT_TRUE(st.get(domain_key(KeyDomain::kNetworkEval, key), v));
  EXPECT_EQ(v, "eval");
  ASSERT_TRUE(st.get(domain_key(KeyDomain::kPlatformDesign, key), v));
  EXPECT_EQ(v, "design");
}

TEST(EvalStore, TruncatedTailKeepsCommittedPrefix) {
  TempDir tmp{"truncate"};
  {
    EvalStore st{tmp.path, /*shards=*/1};  // one segment, ordered records
    st.put("first", "AAAA");
    st.put("second", "BBBB");
    st.flush();
  }
  const std::string seg = only_segment(tmp.path + "/v1");
  const auto full_size = fs::file_size(seg);
  fs::resize_file(seg, full_size - 2);  // tear the tail record

  EvalStore st{tmp.path};
  std::string v;
  const bool got_first = st.get("first", v);
  const bool got_second = st.get("second", v);
  // Record order inside the segment is insertion order, so the torn record
  // is the second one: the committed prefix must survive, the torn tail
  // must miss — and nothing may ever return wrong bytes.
  EXPECT_TRUE(got_first);
  EXPECT_FALSE(got_second);
  EXPECT_GE(st.stats().corrupt_records, 1u);
}

TEST(EvalStore, BitFlipIsAMissNeverWrongData) {
  TempDir tmp{"bitflip"};
  {
    EvalStore st{tmp.path, 1};
    st.put("key", std::string(256, 'Z'));
    st.flush();
  }
  const std::string seg = only_segment(tmp.path + "/v1");
  {
    std::fstream f{seg, std::ios::in | std::ios::out | std::ios::binary};
    f.seekp(static_cast<std::streamoff>(fs::file_size(seg)) - 10);
    f.put('!');  // flip bytes inside the value region
  }
  EvalStore st{tmp.path};
  std::string v;
  EXPECT_FALSE(st.get("key", v));  // CRC catches it: miss, not wrong data
  EXPECT_GE(st.stats().corrupt_records, 1u);
}

TEST(EvalStore, ForeignFormatVersionRecordIsSkipped) {
  TempDir tmp{"version"};
  EvalStore{tmp.path}.flush();  // create the v<N> directory
  const std::string key = "future key";
  const std::string val = "future value";
  // Hand-craft a record whose format field is from the future.  The store
  // must count it stale and treat the key as absent — stale data is
  // recomputed, never trusted.
  ByteWriter w;
  w.put(std::uint32_t{0x56465354});            // magic
  w.put(kStoreFormatVersion + 1);              // foreign format
  w.put(static_cast<std::uint64_t>(key.size()));
  w.put(static_cast<std::uint64_t>(val.size()));
  w.put(fnv1a64(key));
  std::string joined = key + val;
  w.put(crc32(joined));
  std::string bytes{w.bytes()};
  bytes += joined;
  std::ofstream{tmp.path + "/v1/seg-s0-999-0.seg", std::ios::binary}.write(
      bytes.data(), static_cast<std::streamsize>(bytes.size()));

  EvalStore st{tmp.path};
  std::string v;
  EXPECT_FALSE(st.get(key, v));
  EXPECT_EQ(st.stats().stale_records, 1u);
  EXPECT_EQ(st.stats().records_scanned, 0u);
}

TEST(EvalStore, MetaRecordsOverwriteLatestWins) {
  TempDir tmp{"meta"};
  EvalStore st{tmp.path};
  std::string v;
  EXPECT_FALSE(st.get_meta("manifest", v));
  ASSERT_TRUE(st.put_meta("manifest", "generation 1"));
  ASSERT_TRUE(st.get_meta("manifest", v));
  EXPECT_EQ(v, "generation 1");
  ASSERT_TRUE(st.put_meta("manifest", "generation 2"));  // unlike put():
  ASSERT_TRUE(st.get_meta("manifest", v));               // replaces
  EXPECT_EQ(v, "generation 2");

  // Corrupt the meta file: must read as absent, never as wrong bytes.
  for (const auto& e : fs::directory_iterator{tmp.path + "/v1"}) {
    const std::string name = e.path().filename().string();
    if (name.rfind("meta-", 0) == 0) {
      std::fstream f{e.path().string(),
                     std::ios::in | std::ios::out | std::ios::binary};
      f.seekp(-1, std::ios::end);
      f.put('?');
    }
  }
  EXPECT_FALSE(st.get_meta("manifest", v));
}

}  // namespace
}  // namespace vfimr::store

namespace vfimr::sysmodel {
namespace {

using store::EvalStore;
using TempDir = ::vfimr::store::TempDir;

PlatformParams small_params(SystemKind kind) {
  PlatformParams p;
  p.kind = kind;
  p.sim_cycles = 3'000;
  p.drain_cycles = 20'000;
  return p;
}

/// Field-by-field bit-identity (mirrors tests/test_net_eval.cpp).
void expect_identical(const NetworkEval& a, const NetworkEval& b) {
  EXPECT_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
  EXPECT_EQ(a.energy_per_flit_j, b.energy_per_flit_j);
  EXPECT_EQ(a.wireless_utilization, b.wireless_utilization);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.metrics.packets_injected, b.metrics.packets_injected);
  EXPECT_EQ(a.metrics.packets_ejected, b.metrics.packets_ejected);
  EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
  EXPECT_EQ(a.metrics.fault_events, b.metrics.fault_events);
  EXPECT_EQ(a.metrics.packets_lost, b.metrics.packets_lost);
  EXPECT_EQ(a.metrics.energy.switch_traversals,
            b.metrics.energy.switch_traversals);
  EXPECT_EQ(a.metrics.energy.buffer_writes, b.metrics.energy.buffer_writes);
}

TEST(StoreCodec, NetworkEvalRoundTripIsBitExact) {
  const auto profile = workload::make_profile(workload::App::kHist);
  const FullSystemSim sim;
  const PlatformParams params = small_params(SystemKind::kVfiWinoc);
  const BuiltPlatform built = build_platform(profile, params, sim.vf_table());
  const NetworkEval fresh = evaluate_network_traffic(
      built, built.node_traffic, profile.packet_flits, params,
      sim.models().noc);

  const std::string bytes = store::encode_network_eval(fresh);
  NetworkEval decoded;
  ASSERT_TRUE(store::decode_network_eval(bytes, decoded));
  expect_identical(decoded, fresh);
  // Re-encoding the decoded value must reproduce the exact byte string:
  // the canonical encoding is injective over every field, including the
  // latency Accumulator's internal Welford state.
  EXPECT_EQ(store::encode_network_eval(decoded), bytes);
}

TEST(StoreCodec, RejectsForeignVersionKindAndTrailingGarbage) {
  const auto profile = workload::make_profile(workload::App::kHist);
  const FullSystemSim sim;
  const PlatformParams params = small_params(SystemKind::kNvfiMesh);
  const BuiltPlatform built = build_platform(profile, params, sim.vf_table());
  const NetworkEval fresh = evaluate_network_traffic(
      built, built.node_traffic, profile.packet_flits, params,
      sim.models().noc);
  const std::string bytes = store::encode_network_eval(fresh);
  NetworkEval out;

  std::string wrong_version = bytes;
  wrong_version[0] = static_cast<char>(wrong_version[0] + 1);
  EXPECT_FALSE(store::decode_network_eval(wrong_version, out));

  // A VfiDesign payload is not a NetworkEval: kind tag mismatch.
  vfi::VfiDesign design = built.vfi;
  EXPECT_FALSE(
      store::decode_network_eval(store::encode_vfi_design(design), out));

  std::string trailing = bytes + "x";
  EXPECT_FALSE(store::decode_network_eval(trailing, out));

  EXPECT_FALSE(store::decode_network_eval(bytes.substr(0, bytes.size() - 1),
                                          out));
}

TEST(TieredNetEval, DiskHitBitIdenticalCleanBothBands) {
  const auto profile = workload::make_profile(workload::App::kHist);
  const FullSystemSim sim;
  TempDir tmp{"tier_clean"};
  for (Fidelity band : {Fidelity::kCycleAccurate, Fidelity::kAnalytical}) {
    PlatformParams params = small_params(SystemKind::kVfiWinoc);
    params.fidelity = band;
    const BuiltPlatform built =
        build_platform(profile, params, sim.vf_table());
    const NetworkEval fresh = evaluate_network_banded(
        built, built.node_traffic, profile.packet_flits, params,
        sim.models().noc);

    // Writer process: memory miss + disk miss -> simulate, persist.
    {
      EvalStore st{tmp.path};
      NetworkEvaluator writer;
      writer.attach_store(&st);
      const NetworkEval computed = writer.evaluate(
          built, built.node_traffic, profile.packet_flits, params,
          sim.models().noc);
      expect_identical(computed, fresh);
      EXPECT_EQ(writer.stats().misses, 1u);
      EXPECT_EQ(writer.stats().disk_misses, 1u);
      st.flush();
    }
    // Reader process: cold memory, warm disk — no simulation runs, and the
    // served value is bit-identical to the fresh one.
    EvalStore st{tmp.path};
    NetworkEvaluator reader;
    reader.attach_store(&st);
    const NetworkEval served = reader.evaluate(
        built, built.node_traffic, profile.packet_flits, params,
        sim.models().noc);
    expect_identical(served, fresh);
    EXPECT_EQ(reader.stats().disk_hits, 1u);
    EXPECT_EQ(reader.stats().misses, 0u);
    EXPECT_EQ(reader.stats().hits, 0u);
    // A replay in the same process resolves in memory, not on disk.
    (void)reader.evaluate(built, built.node_traffic, profile.packet_flits,
                          params, sim.models().noc);
    EXPECT_EQ(reader.stats().hits, 1u);
    EXPECT_EQ(reader.stats().disk_hits, 1u);
  }
}

TEST(TieredNetEval, DiskHitBitIdenticalUnderFaults) {
  const auto profile = workload::make_profile(workload::App::kWC);
  const FullSystemSim sim;
  PlatformParams params = small_params(SystemKind::kVfiWinoc);
  params.faults.link_rate = 40.0;
  params.faults.router_rate = 20.0;
  params.faults.wi_rate = 40.0;
  params.faults.transient_fraction = 0.7;
  params.faults.seed = 77;
  const BuiltPlatform built = build_platform(profile, params, sim.vf_table());
  const NetworkEval fresh = evaluate_network_traffic(
      built, built.node_traffic, profile.packet_flits, params,
      sim.models().noc);

  TempDir tmp{"tier_faulty"};
  {
    EvalStore st{tmp.path};
    NetworkEvaluator writer;
    writer.attach_store(&st);
    (void)writer.evaluate(built, built.node_traffic, profile.packet_flits,
                          params, sim.models().noc);
    st.flush();
  }
  EvalStore st{tmp.path};
  NetworkEvaluator reader;
  reader.attach_store(&st);
  const NetworkEval served = reader.evaluate(
      built, built.node_traffic, profile.packet_flits, params,
      sim.models().noc);
  expect_identical(served, fresh);
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  EXPECT_EQ(reader.stats().misses, 0u);

  // A reseeded fault schedule is a different simulation: disk miss, fresh
  // compute — the store never aliases across fault specs.
  PlatformParams reseeded = params;
  reseeded.faults.seed = 78;
  (void)reader.evaluate(built, built.node_traffic, profile.packet_flits,
                        reseeded, sim.models().noc);
  EXPECT_EQ(reader.stats().disk_misses, 1u);
  EXPECT_EQ(reader.stats().misses, 1u);
}

TEST(TieredNetEval, CorruptStoreFallsBackToComputeNeverWrongData) {
  namespace fs = std::filesystem;
  const auto profile = workload::make_profile(workload::App::kHist);
  const FullSystemSim sim;
  const PlatformParams params = small_params(SystemKind::kVfiWinoc);
  const BuiltPlatform built = build_platform(profile, params, sim.vf_table());
  const NetworkEval fresh = evaluate_network_traffic(
      built, built.node_traffic, profile.packet_flits, params,
      sim.models().noc);

  TempDir tmp{"tier_corrupt"};
  {
    EvalStore st{tmp.path, 1};
    NetworkEvaluator writer;
    writer.attach_store(&st);
    (void)writer.evaluate(built, built.node_traffic, profile.packet_flits,
                          params, sim.models().noc);
    st.flush();
  }
  // Rot every segment byte past the header region: the CRC must reject the
  // record, and the tiered lookup must recompute the correct answer.
  for (const auto& e : fs::directory_iterator{tmp.path + "/v1"}) {
    const std::string name = e.path().filename().string();
    if (name.rfind("seg-", 0) == 0) {
      std::fstream f{e.path().string(),
                     std::ios::in | std::ios::out | std::ios::binary};
      f.seekp(-4, std::ios::end);
      f.write("ROT!", 4);
    }
  }
  EvalStore st{tmp.path};
  NetworkEvaluator reader;
  reader.attach_store(&st);
  const NetworkEval served = reader.evaluate(
      built, built.node_traffic, profile.packet_flits, params,
      sim.models().noc);
  expect_identical(served, fresh);  // recomputed, not served rotten bytes
  EXPECT_EQ(reader.stats().disk_hits, 0u);
  EXPECT_EQ(reader.stats().misses, 1u);
}

TEST(PlatformCacheStore, StoredDesignRebuildsBitIdenticalPlatform) {
  const auto profile = workload::make_profile(workload::App::kHist);
  const FullSystemSim sim;
  const PlatformParams params = small_params(SystemKind::kVfiWinoc);

  TempDir tmp{"platform"};
  std::string cold_design_bytes;
  NetworkEval cold_eval;
  {
    EvalStore st{tmp.path};
    PlatformCache cold;
    cold.attach_store(&st);
    const auto built = cold.get(profile, params, sim.vf_table());
    EXPECT_EQ(cold.misses(), 1u);
    EXPECT_EQ(cold.disk_misses(), 1u);
    cold_design_bytes = store::encode_vfi_design(built->vfi);
    cold_eval = evaluate_network_traffic(*built, built->node_traffic,
                                         profile.packet_flits, params,
                                         sim.models().noc);
    st.flush();
  }
  EvalStore st{tmp.path};
  PlatformCache warm;
  warm.attach_store(&st);
  const auto rebuilt = warm.get(profile, params, sim.vf_table());
  EXPECT_EQ(warm.disk_hits(), 1u);
  EXPECT_EQ(warm.misses(), 0u);
  // The design is byte-identical, and everything rebuilt around it —
  // mapping, interconnect, traffic — drives an identical evaluation.
  EXPECT_EQ(store::encode_vfi_design(rebuilt->vfi), cold_design_bytes);
  const NetworkEval warm_eval = evaluate_network_traffic(
      *rebuilt, rebuilt->node_traffic, profile.packet_flits, params,
      sim.models().noc);
  expect_identical(warm_eval, cold_eval);
}

TEST(PlatformCacheStore, NvfiPlatformsNeverTouchTheStore) {
  const auto profile = workload::make_profile(workload::App::kHist);
  const FullSystemSim sim;
  const PlatformParams params = small_params(SystemKind::kNvfiMesh);
  TempDir tmp{"nvfi"};
  EvalStore st{tmp.path};
  PlatformCache cache;
  cache.attach_store(&st);
  (void)cache.get(profile, params, sim.vf_table());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.disk_hits(), 0u);
  EXPECT_EQ(cache.disk_misses(), 0u);
  EXPECT_EQ(st.keys(), 0u);
}

std::vector<workload::AppProfile> sweep_profiles() {
  return {workload::make_profile(workload::App::kHist),
          workload::make_profile(workload::App::kWC)};
}

TEST(IncrementalSweep, WarmRunReusesEverythingBitIdentically) {
  const auto profiles = sweep_profiles();
  const FullSystemSim sim;
  const PlatformParams params = small_params(SystemKind::kVfiWinoc);
  TempDir tmp{"sweep"};

  IncrementalSweepResult cold;
  {
    EvalStore st{tmp.path};
    IncrementalOptions opts;
    opts.store = &st;
    opts.sweep_name = "test-sweep";
    cold = incremental_sweep_comparisons(profiles, sim, params, opts);
    EXPECT_EQ(cold.evaluated_points, profiles.size());
    EXPECT_EQ(cold.reused_points, 0u);
    EXPECT_FALSE(cold.had_prior_manifest);
  }
  // The cold run matches the classic (non-incremental) sweep bit-for-bit.
  const auto reference = sweep_comparisons(profiles, sim, params);
  ASSERT_EQ(cold.comparisons.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_TRUE(cold.valid[i]);
    EXPECT_EQ(store::encode_system_comparison(cold.comparisons[i]),
              store::encode_system_comparison(reference[i]));
  }

  // Warm run in a fresh process: everything reused, nothing evaluated, and
  // the prior manifest accounts for every point.
  EvalStore st{tmp.path};
  IncrementalOptions opts;
  opts.store = &st;
  opts.sweep_name = "test-sweep";
  const auto warm = incremental_sweep_comparisons(profiles, sim, params, opts);
  EXPECT_EQ(warm.reused_points, profiles.size());
  EXPECT_EQ(warm.evaluated_points, 0u);
  EXPECT_TRUE(warm.had_prior_manifest);
  EXPECT_EQ(warm.manifest_prior_matches, profiles.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_TRUE(warm.valid[i]);
    EXPECT_EQ(store::encode_system_comparison(warm.comparisons[i]),
              store::encode_system_comparison(reference[i]));
  }

  // Changing any simulation input changes the point keys: the store has
  // nothing for them and every point re-evaluates.
  PlatformParams changed = params;
  changed.sim_cycles += 1'000;
  const auto moved =
      incremental_sweep_comparisons(profiles, sim, changed, opts);
  EXPECT_EQ(moved.evaluated_points, profiles.size());
  EXPECT_EQ(moved.reused_points, 0u);
  EXPECT_TRUE(moved.had_prior_manifest);
  EXPECT_EQ(moved.manifest_prior_matches, 0u);
}

TEST(IncrementalSweep, ShardsPartitionThenMergeToAFullSweep) {
  const auto profiles = sweep_profiles();
  const FullSystemSim sim;
  const PlatformParams params = small_params(SystemKind::kVfiMesh);
  TempDir tmp{"shards"};

  {  // Shard 0 of 2 evaluates only its own point; the other stays invalid.
    EvalStore st{tmp.path};
    IncrementalOptions opts;
    opts.store = &st;
    opts.shard_index = 0;
    opts.shard_count = 2;
    const auto r = incremental_sweep_comparisons(profiles, sim, params, opts);
    EXPECT_EQ(r.evaluated_points, 1u);
    EXPECT_EQ(r.skipped_points, 1u);
    EXPECT_TRUE(r.valid[0]);
    EXPECT_FALSE(r.valid[1]);
  }
  {  // Shard 1 of 2, opened after shard 0 committed: merges point 0 from
     // the store and evaluates point 1.
    EvalStore st{tmp.path};
    IncrementalOptions opts;
    opts.store = &st;
    opts.shard_index = 1;
    opts.shard_count = 2;
    const auto r = incremental_sweep_comparisons(profiles, sim, params, opts);
    EXPECT_EQ(r.evaluated_points, 1u);
    EXPECT_EQ(r.reused_points, 1u);
    EXPECT_EQ(r.skipped_points, 0u);
    EXPECT_TRUE(r.valid[0]);
    EXPECT_TRUE(r.valid[1]);
  }
  // A single-shard merge run reuses both points and matches the classic
  // sweep bit-for-bit.
  EvalStore st{tmp.path};
  IncrementalOptions opts;
  opts.store = &st;
  const auto merged = incremental_sweep_comparisons(profiles, sim, params,
                                                    opts);
  EXPECT_EQ(merged.reused_points, profiles.size());
  EXPECT_EQ(merged.evaluated_points, 0u);
  const auto reference = sweep_comparisons(profiles, sim, params);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_TRUE(merged.valid[i]);
    EXPECT_EQ(store::encode_system_comparison(merged.comparisons[i]),
              store::encode_system_comparison(reference[i]));
  }
}

}  // namespace
}  // namespace vfimr::sysmodel
