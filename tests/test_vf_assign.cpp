#include "vfi/vf_assign.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/require.hpp"
#include "workload/profile.hpp"

namespace vfimr::vfi {
namespace {

using power::VfPoint;
using power::VfTable;

TEST(SelectVf, ThresholdsFromMeanUtilization) {
  const auto& table = VfTable::standard();
  // One cluster per utilization level; mean == the single member.
  const std::vector<double> u = {0.90, 0.76, 0.66, 0.40};
  const std::vector<std::size_t> assign = {0, 1, 2, 3};
  const auto vf = select_vf(u, assign, 4, table);
  EXPECT_DOUBLE_EQ(vf[0].freq_hz, 2.5e9);   // 0.90/0.9*2.5 = 2.5
  EXPECT_DOUBLE_EQ(vf[1].freq_hz, 2.25e9);  // 2.11
  EXPECT_DOUBLE_EQ(vf[2].freq_hz, 2.0e9);   // 1.83
  EXPECT_DOUBLE_EQ(vf[3].freq_hz, 1.5e9);   // 1.11
}

TEST(SelectVf, MeanDilutesOutliers) {
  const auto& table = VfTable::standard();
  // 3 cores at 0.74 + one 0.97 bottleneck: mean 0.7975 -> still 2.25 GHz.
  const std::vector<double> u = {0.74, 0.74, 0.74, 0.97};
  const std::vector<std::size_t> assign = {0, 0, 0, 0};
  const auto vf = select_vf(u, assign, 1, table);
  EXPECT_DOUBLE_EQ(vf[0].freq_hz, 2.25e9);
}

TEST(SelectVf, EmptyClusterRejected) {
  const auto& table = VfTable::standard();
  const std::vector<double> u = {0.5, 0.5};
  const std::vector<std::size_t> assign = {0, 0};
  EXPECT_THROW(select_vf(u, assign, 2, table), RequirementError);
}

TEST(SelectVf, UtilTargetValidation) {
  const auto& table = VfTable::standard();
  VfSelectParams params;
  params.util_target = 0.0;
  EXPECT_THROW(select_vf({0.5}, {0}, 1, table, params), RequirementError);
}

TEST(DesignVfi, ReassignsBottleneckClusterOnly) {
  // Build an artificial profile: homogeneous 0.74 with a 0.97 master whose
  // traffic anchors it in its own block -> VFI1 2.25 everywhere, VFI2 raises
  // exactly the master's cluster to 2.5.
  const auto profile = workload::make_profile(workload::App::kPCA);
  const auto design =
      design_vfi(profile.utilization, profile.traffic, profile.master_threads,
                 VfTable::standard());
  ASSERT_EQ(design.vfi1.size(), 4u);
  for (const auto& vf : design.vfi1) {
    EXPECT_DOUBLE_EQ(vf.freq_hz, 2.25e9);
  }
  ASSERT_EQ(design.raised_clusters.size(), 1u);
  const std::size_t raised = design.raised_clusters[0];
  EXPECT_DOUBLE_EQ(design.vfi2[raised].freq_hz, 2.5e9);
  // The raised cluster is the one holding the masters.
  for (std::size_t m : profile.master_threads) {
    EXPECT_EQ(design.assignment[m], raised);
  }
  // VFI2 never lowers any cluster.
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_GE(design.vfi2[c].freq_hz, design.vfi1[c].freq_hz);
  }
}

TEST(DesignVfi, NoReassignmentWhenMastersAlreadyFast) {
  // WC's masters live in a 2.5 GHz cluster: nothing to raise (§4.2).
  const auto profile = workload::make_profile(workload::App::kWC);
  const auto design =
      design_vfi(profile.utilization, profile.traffic, profile.master_threads,
                 VfTable::standard());
  EXPECT_TRUE(design.raised_clusters.empty());
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(design.vfi1[c], design.vfi2[c]);
  }
}

TEST(DesignVfi, VfOfThreadConsistent) {
  const auto profile = workload::make_profile(workload::App::kMM);
  const auto design =
      design_vfi(profile.utilization, profile.traffic, profile.master_threads,
                 VfTable::standard());
  for (std::size_t t = 0; t < 64; ++t) {
    EXPECT_EQ(design.vf_of_thread(t, false),
              design.vfi1[design.assignment[t]]);
    EXPECT_EQ(design.vf_of_thread(t, true), design.vfi2[design.assignment[t]]);
  }
}

struct Table2Case {
  workload::App app;
  std::vector<double> vfi1_ghz;  // sorted
  std::vector<double> vfi2_ghz;  // sorted
};

class Table2Regression : public ::testing::TestWithParam<Table2Case> {};

TEST_P(Table2Regression, MatchesPaper) {
  const auto& c = GetParam();
  const auto profile = workload::make_profile(c.app);
  const auto design =
      design_vfi(profile.utilization, profile.traffic, profile.master_threads,
                 VfTable::standard());
  auto ghz = [](const std::vector<VfPoint>& vf) {
    std::vector<double> out;
    for (const auto& p : vf) out.push_back(p.freq_hz / 1e9);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(ghz(design.vfi1), c.vfi1_ghz);
  EXPECT_EQ(ghz(design.vfi2), c.vfi2_ghz);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, Table2Regression,
    ::testing::Values(
        Table2Case{workload::App::kMM,
                   {2.25, 2.25, 2.5, 2.5},
                   {2.25, 2.5, 2.5, 2.5}},
        Table2Case{workload::App::kHist,
                   {2.25, 2.25, 2.5, 2.5},
                   {2.25, 2.5, 2.5, 2.5}},
        Table2Case{workload::App::kKmeans,
                   {1.5, 1.5, 2.0, 2.0},
                   {1.5, 1.5, 2.0, 2.0}},
        Table2Case{workload::App::kWC,
                   {2.0, 2.0, 2.5, 2.5},
                   {2.0, 2.0, 2.5, 2.5}},
        Table2Case{workload::App::kPCA,
                   {2.25, 2.25, 2.25, 2.25},
                   {2.25, 2.25, 2.25, 2.5}},
        Table2Case{workload::App::kLR,
                   {2.25, 2.25, 2.5, 2.5},
                   {2.25, 2.25, 2.5, 2.5}}),
    [](const auto& info) { return workload::app_name(info.param.app); });

}  // namespace
}  // namespace vfimr::vfi
