#include "noc/topology.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"

namespace vfimr::noc {
namespace {

TEST(Topology, MeshStructure) {
  const Topology t = make_mesh(4, 3, 2.0);
  EXPECT_EQ(t.node_count(), 12u);
  // Edges: horizontal 3*3 + vertical 4*2 = 17.
  EXPECT_EQ(t.graph.edge_count(), 17u);
  EXPECT_TRUE(graph::is_connected(t.graph));
  // Corner degree 2, edge 3, interior 4.
  EXPECT_EQ(t.graph.degree(mesh_node(0, 0, 4)), 2u);
  EXPECT_EQ(t.graph.degree(mesh_node(1, 0, 4)), 3u);
  EXPECT_EQ(t.graph.degree(mesh_node(1, 1, 4)), 4u);
}

TEST(Topology, MeshPositionsAndLinkLengths) {
  const Topology t = make_mesh(3, 3, 2.5);
  EXPECT_DOUBLE_EQ(t.positions[mesh_node(2, 1, 3)].x_mm, 5.0);
  EXPECT_DOUBLE_EQ(t.positions[mesh_node(2, 1, 3)].y_mm, 2.5);
  for (const auto& e : t.graph.edges()) {
    EXPECT_DOUBLE_EQ(e.length_mm, 2.5);  // all neighbor links = pitch
    EXPECT_EQ(e.kind, graph::EdgeKind::kWire);
  }
}

TEST(Topology, MeshCoordinateHelpers) {
  EXPECT_EQ(mesh_x(10, 8), 2u);
  EXPECT_EQ(mesh_y(10, 8), 1u);
  EXPECT_EQ(mesh_node(2, 1, 8), 10u);
}

TEST(Topology, PlacedGridHasNoEdges) {
  const Topology t = make_placed_grid(8, 8);
  EXPECT_EQ(t.node_count(), 64u);
  EXPECT_EQ(t.graph.edge_count(), 0u);
}

TEST(Topology, AddWireUsesEuclideanLength) {
  Topology t = make_placed_grid(3, 3, 1.0);
  const auto e = t.add_wire(0, 8);  // (0,0) to (2,2)
  EXPECT_NEAR(t.graph.edge(e).length_mm, std::sqrt(8.0), 1e-12);
}

TEST(Topology, AddWirelessHasZeroLength) {
  Topology t = make_placed_grid(2, 2, 1.0);
  const auto e = t.add_wireless(0, 3);
  EXPECT_EQ(t.graph.edge(e).kind, graph::EdgeKind::kWireless);
  EXPECT_DOUBLE_EQ(t.graph.edge(e).length_mm, 0.0);
}

TEST(Topology, DistanceHelper) {
  EXPECT_DOUBLE_EQ(distance_mm(Point{0, 0}, Point{3, 4}), 5.0);
  Topology t = make_placed_grid(2, 2, 2.0);
  EXPECT_DOUBLE_EQ(t.node_distance_mm(0, 3), std::sqrt(8.0));
}

TEST(Topology, InvalidGridThrows) {
  EXPECT_THROW(make_placed_grid(0, 4), RequirementError);
}

class MeshSizes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(MeshSizes, EdgeCountFormula) {
  const auto [w, h] = GetParam();
  const Topology t = make_mesh(w, h);
  EXPECT_EQ(t.graph.edge_count(), (w - 1) * h + w * (h - 1));
  EXPECT_TRUE(graph::is_connected(t.graph));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshSizes,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{2, 2},
                                           std::pair<std::size_t, std::size_t>{8, 8},
                                           std::pair<std::size_t, std::size_t>{1, 5},
                                           std::pair<std::size_t, std::size_t>{5, 1},
                                           std::pair<std::size_t, std::size_t>{16, 4}));

}  // namespace
}  // namespace vfimr::noc
