#include "noc/traffic.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"

namespace vfimr::noc {
namespace {

TEST(Poisson, MeanMatches) {
  Rng rng{51};
  for (const double mean : {0.1, 1.0, 5.0, 40.0, 100.0}) {
    double total = 0.0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) {
      total += static_cast<double>(sample_poisson(rng, mean));
    }
    EXPECT_NEAR(total / n, mean, mean * 0.05 + 0.02) << "mean=" << mean;
  }
}

TEST(Poisson, ZeroMean) {
  Rng rng{52};
  EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
}

TEST(MatrixTrafficTest, EmpiricalRateMatchesMatrix) {
  Matrix rates{4, 4};
  rates(0, 1) = 0.05;
  rates(2, 3) = 0.15;
  MatrixTraffic gen{rates, 2, 7};
  EXPECT_NEAR(gen.total_rate(), 0.20, 1e-12);

  std::vector<Injection> staged;
  std::size_t count01 = 0;
  std::size_t count23 = 0;
  const Cycle cycles = 50'000;
  for (Cycle c = 0; c < cycles; ++c) {
    staged.clear();
    gen.tick(c, staged);
    for (const auto& inj : staged) {
      EXPECT_EQ(inj.flits, 2u);
      if (inj.src == 0 && inj.dest == 1) {
        ++count01;
      } else if (inj.src == 2 && inj.dest == 3) {
        ++count23;
      } else {
        FAIL() << "unexpected pair " << inj.src << "->" << inj.dest;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(count01) / cycles, 0.05, 0.005);
  EXPECT_NEAR(static_cast<double>(count23) / cycles, 0.15, 0.01);
}

TEST(MatrixTrafficTest, DiagonalIgnored) {
  Matrix rates{2, 2};
  rates(0, 0) = 5.0;  // self traffic must be dropped
  rates(0, 1) = 0.01;
  MatrixTraffic gen{rates, 1, 7};
  EXPECT_NEAR(gen.total_rate(), 0.01, 1e-12);
}

TEST(MatrixTrafficTest, NegativeRateRejected) {
  Matrix rates{2, 2};
  rates(0, 1) = -0.1;
  EXPECT_THROW((MatrixTraffic{rates, 1, 7}), RequirementError);
}

TEST(MatrixTrafficTest, EmptyMatrixProducesNothing) {
  Matrix rates{3, 3};
  MatrixTraffic gen{rates, 1, 7};
  std::vector<Injection> staged;
  for (Cycle c = 0; c < 100; ++c) gen.tick(c, staged);
  EXPECT_TRUE(staged.empty());
}

TEST(UniformTrafficTest, RateAndNoSelfTraffic) {
  UniformRandomTraffic gen{8, 0.25, 3, 9};
  std::vector<Injection> staged;
  std::size_t total = 0;
  const Cycle cycles = 20'000;
  for (Cycle c = 0; c < cycles; ++c) {
    staged.clear();
    gen.tick(c, staged);
    for (const auto& inj : staged) {
      EXPECT_NE(inj.src, inj.dest);
      EXPECT_LT(inj.src, 8u);
      EXPECT_LT(inj.dest, 8u);
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(total) / (8.0 * cycles), 0.25, 0.01);
}

TEST(UniformTrafficTest, InvalidParamsRejected) {
  EXPECT_THROW((UniformRandomTraffic{1, 0.1, 1, 1}), RequirementError);
  EXPECT_THROW((UniformRandomTraffic{4, 1.5, 1, 1}), RequirementError);
  EXPECT_THROW((UniformRandomTraffic{4, 0.1, 0, 1}), RequirementError);
}

TEST(TraceTrafficTest, ReplaysInOrder) {
  std::vector<TraceTraffic::Event> events = {
      {5, {0, 1, 2}}, {5, {1, 2, 2}}, {10, {2, 3, 1}}};
  TraceTraffic gen{events};
  std::vector<Injection> staged;
  gen.tick(4, staged);
  EXPECT_TRUE(staged.empty());
  gen.tick(5, staged);
  EXPECT_EQ(staged.size(), 2u);
  staged.clear();
  gen.tick(10, staged);
  EXPECT_EQ(staged.size(), 1u);
  EXPECT_TRUE(gen.exhausted());
}

TEST(TraceTrafficTest, UnsortedRejected) {
  std::vector<TraceTraffic::Event> events = {{10, {0, 1, 1}}, {5, {1, 2, 1}}};
  EXPECT_THROW(TraceTraffic{events}, RequirementError);
}

TEST(TraceTrafficTest, LateTickCatchesUp) {
  std::vector<TraceTraffic::Event> events = {{1, {0, 1, 1}}, {2, {1, 0, 1}}};
  TraceTraffic gen{events};
  std::vector<Injection> staged;
  gen.tick(100, staged);  // both events are in the past
  EXPECT_EQ(staged.size(), 2u);
}

}  // namespace
}  // namespace vfimr::noc
