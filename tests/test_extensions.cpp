// Tests for the extension modules: synthetic traffic patterns, per-link
// statistics, layered (single-wireless-hop) routing invariants and the
// runtime-to-profile bridge.

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "mapreduce/apps/wordcount.hpp"
#include "noc/traffic.hpp"
#include "sysmodel/platform.hpp"
#include "vfi/vf_assign.hpp"
#include "winoc/design.hpp"
#include "workload/from_runtime.hpp"
#include "workload/profile.hpp"

namespace vfimr {
namespace {

// ---- Synthetic patterns.

TEST(Patterns, TransposePartner) {
  noc::PermutationTraffic gen{64, noc::Pattern::kTranspose, 0.1, 1, 1};
  // 64 nodes = 8x8: node (x,y) -> (y,x); id = y*8+x.
  EXPECT_EQ(gen.partner(0), 0u);
  EXPECT_EQ(gen.partner(1), 8u);   // (1,0) -> (0,1)
  EXPECT_EQ(gen.partner(10), 17u); // (2,1) -> (1,2)
  EXPECT_EQ(gen.partner(63), 63u);
}

TEST(Patterns, BitComplementPartner) {
  noc::PermutationTraffic gen{16, noc::Pattern::kBitComplement, 0.1, 1, 1};
  EXPECT_EQ(gen.partner(0), 15u);
  EXPECT_EQ(gen.partner(5), 10u);
  EXPECT_EQ(gen.partner(15), 0u);
}

TEST(Patterns, BitReversePartner) {
  noc::PermutationTraffic gen{8, noc::Pattern::kBitReverse, 0.1, 1, 1};
  EXPECT_EQ(gen.partner(1), 4u);  // 001 -> 100
  EXPECT_EQ(gen.partner(3), 6u);  // 011 -> 110
  EXPECT_EQ(gen.partner(7), 7u);
}

TEST(Patterns, PartnersAreInvolutions) {
  for (auto pattern : {noc::Pattern::kTranspose, noc::Pattern::kBitComplement,
                       noc::Pattern::kBitReverse}) {
    noc::PermutationTraffic gen{64, pattern, 0.1, 1, 1};
    for (graph::NodeId n = 0; n < 64; ++n) {
      EXPECT_EQ(gen.partner(gen.partner(n)), n);
    }
  }
}

TEST(Patterns, SelfPartnersStaySilent) {
  noc::PermutationTraffic gen{64, noc::Pattern::kTranspose, 1.0, 1, 1};
  std::vector<noc::Injection> staged;
  gen.tick(0, staged);
  for (const auto& inj : staged) {
    EXPECT_NE(inj.src, inj.dest);
    EXPECT_NE(noc::mesh_x(inj.src, 8), noc::mesh_y(inj.src, 8));
  }
}

TEST(Patterns, NonPowerOfTwoRejected) {
  EXPECT_THROW((noc::PermutationTraffic{60, noc::Pattern::kBitComplement, 0.1,
                                        1, 1}),
               RequirementError);
  // Transpose on a non-square (odd-bit) count.
  EXPECT_THROW((noc::PermutationTraffic{32, noc::Pattern::kTranspose, 0.1, 1,
                                        1}),
               RequirementError);
}

TEST(Patterns, HotspotConcentratesTraffic) {
  noc::HotspotTraffic gen{16, 5, 0.5, 0.5, 1, 3};
  std::vector<noc::Injection> staged;
  for (noc::Cycle c = 0; c < 5000; ++c) gen.tick(c, staged);
  std::size_t to_hotspot = 0;
  for (const auto& inj : staged) {
    EXPECT_NE(inj.src, inj.dest);
    if (inj.dest == 5) ++to_hotspot;
  }
  // ~50% directed + ~1/15 of the uniform remainder.
  const double frac =
      static_cast<double>(to_hotspot) / static_cast<double>(staged.size());
  EXPECT_GT(frac, 0.4);
  EXPECT_LT(frac, 0.65);
}

TEST(Patterns, HotspotValidation) {
  EXPECT_THROW((noc::HotspotTraffic{16, 16, 0.5, 0.5, 1, 3}),
               RequirementError);
  EXPECT_THROW((noc::HotspotTraffic{16, 5, 1.5, 0.5, 1, 3}),
               RequirementError);
}

// ---- Per-link statistics.

TEST(LinkStats, EdgeFlitsMatchWireHops) {
  const auto topo = noc::make_mesh(4, 4);
  const noc::XyRouting routing{topo.graph, 4, 4};
  noc::Network net{topo, routing};
  net.inject(0, 3, 2);
  net.inject(12, 15, 2);
  ASSERT_TRUE(net.drain(200));
  std::uint64_t total = 0;
  for (std::uint64_t f : net.edge_flits()) total += f;
  EXPECT_EQ(total, net.metrics().energy.wire_hops);
  EXPECT_GT(net.max_link_utilization(), 0.0);
}

TEST(LinkStats, HotspotShowsOnLinks) {
  const auto topo = noc::make_mesh(4, 4);
  const noc::XyRouting routing{topo.graph, 4, 4};
  noc::Network uniform_net{topo, routing};
  noc::UniformRandomTraffic ugen{16, 0.03, 2, 9};
  uniform_net.run(&ugen, 5000);
  uniform_net.drain(20'000);

  noc::Network hot_net{topo, routing};
  noc::HotspotTraffic hgen{16, 5, 0.8, 0.03, 2, 9};
  hot_net.run(&hgen, 5000);
  hot_net.drain(20'000);

  EXPECT_GT(hot_net.max_link_utilization(),
            uniform_net.max_link_utilization());
}

// ---- Layered routing invariants on the real WiNoC.

TEST(LayeredRouting, AtMostOneWirelessHopPerRoute) {
  const auto profile = workload::make_profile(workload::App::kWC);
  const auto design =
      winoc::build_winoc(profile.traffic, winoc::quadrant_clusters(),
                         winoc::PlacementStrategy::kMaxWirelessUtilization);
  const noc::UpDownRouting routing{design.topology.graph, 2.0};
  std::size_t wireless_routes = 0;
  for (graph::NodeId s = 0; s < 64; ++s) {
    for (graph::NodeId d = 0; d < 64; ++d) {
      if (s == d) continue;
      const auto w = routing.route_wireless_hops(s, d);
      EXPECT_LE(w, 1u) << s << "->" << d;
      wireless_routes += w;
    }
  }
  EXPECT_GT(wireless_routes, 0u);  // wireless is actually used
}

TEST(LayeredRouting, WirelessOnlyCutRejected) {
  // Islands joined only by wireless: the wire-only routing layer cannot be
  // complete, and construction must refuse.
  noc::Topology t = noc::make_placed_grid(4, 1, 1.0);
  t.add_wire(0, 1);
  t.add_wire(2, 3);
  t.add_wireless(1, 2);
  EXPECT_THROW((noc::UpDownRouting{t.graph, 1.0}), RequirementError);
}

TEST(LayeredRouting, BudgetZeroRoutesAreWireOnly) {
  const auto profile = workload::make_profile(workload::App::kKmeans);
  const auto design =
      winoc::build_winoc(profile.traffic, winoc::quadrant_clusters(),
                         winoc::PlacementStrategy::kMaxWirelessUtilization);
  const noc::UpDownRouting routing{design.topology.graph, 2.0};
  // Walk a sample of budget-0 routes by querying with wireless_used = true.
  for (graph::NodeId s = 0; s < 64; s += 5) {
    for (graph::NodeId d = 0; d < 64; d += 7) {
      if (s == d) continue;
      graph::NodeId cur = s;
      bool phase = false;
      std::uint32_t hops = 0;
      while (cur != d && hops < 256) {
        const auto dec = routing.next_hop(cur, d, phase, /*wireless_used=*/true);
        EXPECT_EQ(design.topology.graph.edge(dec.edge).kind,
                  graph::EdgeKind::kWire);
        phase = dec.down_phase;
        cur = design.topology.graph.other_end(dec.edge, cur);
        ++hops;
      }
      EXPECT_EQ(cur, d);
    }
  }
}

// ---- Runtime-to-profile bridge.

TEST(FromRuntime, UtilizationReflectsBusyTime) {
  mr::JobProfile profile;
  profile.map_stats.wall_seconds = 1.0;
  profile.reduce_stats.wall_seconds = 1.0;
  profile.map_stats.busy_seconds = {1.0, 0.5, 0.0, 0.2};
  profile.reduce_stats.busy_seconds = {1.0, 0.5, 0.0, 0.0};
  const auto u = workload::utilization_from_profile(profile, 4);
  ASSERT_EQ(u.size(), 4u);
  EXPECT_DOUBLE_EQ(u[0], 1.0);
  EXPECT_DOUBLE_EQ(u[1], 0.5);
  EXPECT_DOUBLE_EQ(u[2], 0.01);  // clamped floor
  EXPECT_DOUBLE_EQ(u[3], 0.1);
}

TEST(FromRuntime, ZeroWallTimeFallsBackToFloor) {
  mr::JobProfile profile;
  const auto u = workload::utilization_from_profile(profile, 3);
  for (double v : u) EXPECT_DOUBLE_EQ(v, 0.01);
}

TEST(FromRuntime, TrafficScalesToBudgetWithUniformFloor) {
  mr::JobProfile profile;
  profile.shuffle_pairs = Matrix{4, 4};
  profile.shuffle_pairs(0, 1) = 30.0;
  profile.shuffle_pairs(2, 3) = 10.0;
  workload::RuntimeExtractOptions opts;
  opts.total_rate = 1.0;
  opts.uniform_floor = 0.2;
  const auto t = workload::traffic_from_profile(profile, 4, opts);
  EXPECT_NEAR(t.sum(), 1.0, 1e-9);
  // Shuffle budget 0.8 split 3:1.
  EXPECT_NEAR(t(0, 1), 0.6 + 0.2 / 12.0, 1e-9);
  EXPECT_NEAR(t(2, 3), 0.2 + 0.2 / 12.0, 1e-9);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(t(i, i), 0.0);
}

TEST(FromRuntime, NoShuffleMeansUniform) {
  mr::JobProfile profile;  // empty shuffle matrix
  const auto t = workload::traffic_from_profile(profile, 4);
  EXPECT_NEAR(t.sum(), 0.5, 1e-9);
  EXPECT_NEAR(t(0, 1), 0.5 / 12.0, 1e-9);
}

TEST(FromRuntime, EndToEndDesignFromRealRun) {
  mr::apps::WordCountConfig cfg;
  cfg.word_count = 30'000;
  cfg.vocabulary = 1'000;
  cfg.map_tasks = 32;
  cfg.scheduler.workers = 8;
  const auto result = mr::apps::run_word_count(cfg);

  const auto u = workload::utilization_from_profile(result.profile, 8);
  const auto t = workload::traffic_from_profile(result.profile, 8);
  vfi::VfiDesignParams params;
  params.clusters = 2;
  const auto design =
      vfi::design_vfi(u, t, {0}, power::VfTable::standard(), params);
  EXPECT_EQ(design.assignment.size(), 8u);
  EXPECT_EQ(design.vfi1.size(), 2u);
  for (const auto& vf : design.vfi1) {
    EXPECT_GE(vf.freq_hz, 1.5e9);
    EXPECT_LE(vf.freq_hz, 2.5e9);
  }
}

}  // namespace
}  // namespace vfimr
