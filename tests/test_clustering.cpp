#include "vfi/clustering.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace vfimr::vfi {
namespace {

ClusteringProblem random_problem(std::size_t cores, std::size_t clusters,
                                 std::uint64_t seed) {
  Rng rng{seed};
  ClusteringProblem p;
  p.clusters = clusters;
  p.utilization.resize(cores);
  for (auto& u : p.utilization) u = rng.uniform(0.1, 1.0);
  p.traffic = Matrix{cores, cores};
  for (std::size_t i = 0; i < cores; ++i) {
    for (std::size_t j = 0; j < cores; ++j) {
      if (i != j && rng.bernoulli(0.4)) p.traffic(i, j) = rng.uniform(0.0, 1.0);
    }
  }
  return p;
}

void check_equal_sizes(const ClusteringProblem& p,
                       const std::vector<std::size_t>& assign) {
  std::vector<std::size_t> fill(p.clusters, 0);
  for (std::size_t c : assign) {
    ASSERT_LT(c, p.clusters);
    ++fill[c];
  }
  for (std::size_t f : fill) EXPECT_EQ(f, p.cluster_size());
}

TEST(ClusteringCostTest, HandComputedTinyCase) {
  // 4 cores, 2 clusters. u = {1, 1, 0, 0} (already normalized), traffic only
  // between 0<->1 with weight 1 (the max, so normalized weight 1 each way).
  ClusteringProblem p;
  p.clusters = 2;
  p.utilization = {1.0, 1.0, 0.0, 0.0};
  p.traffic = Matrix{4, 4};
  p.traffic(0, 1) = 1.0;
  p.traffic(1, 0) = 1.0;
  const ClusteringCost cost{p};

  // ubar: sorted desc {1,1,0,0} -> quantile means {1, 0}.
  EXPECT_DOUBLE_EQ(cost.quantile_means()[0], 1.0);
  EXPECT_DOUBLE_EQ(cost.quantile_means()[1], 0.0);
  EXPECT_DOUBLE_EQ(cost.phi_intra(), 1.0 / std::sqrt(2.0));

  // Grouping {0,1} vs {2,3}: comm = sym(0,1)=2 times phi_intra; util = 0.
  const std::vector<std::size_t> good = {0, 0, 1, 1};
  EXPECT_NEAR(cost.cost(good), 2.0 / std::sqrt(2.0), 1e-12);

  // Splitting the communicating pair: comm = 2*1; util = 0 (cores match
  // targets: {0,2} in cluster 0? no — {0,1,0,1}: core 1 (u=1) sits in
  // cluster 1 whose target is 0 -> util cost 1; core 2 (u=0) in cluster 0
  // target 1 -> cost 1.
  const std::vector<std::size_t> bad = {0, 1, 0, 1};
  EXPECT_NEAR(cost.cost(bad), 2.0 + 2.0, 1e-12);
  EXPECT_LT(cost.cost(good), cost.cost(bad));
}

TEST(ClusteringCostTest, CommAndUtilSplit) {
  const auto p = random_problem(8, 2, 71);
  const ClusteringCost cost{p};
  const std::vector<std::size_t> assign = {0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_NEAR(cost.cost(assign),
              cost.comm_cost(assign) + cost.util_cost(assign), 1e-12);
}

TEST(ClusteringCostTest, WeightsScaleTerms) {
  const auto p = random_problem(8, 2, 72);
  auto heavy = p;  // ClusteringCost keeps a reference; scale a copy
  heavy.weight_comm = 2.0;
  heavy.weight_util = 0.5;
  const std::vector<std::size_t> assign = {0, 1, 0, 1, 0, 1, 0, 1};
  const ClusteringCost base{p};
  const ClusteringCost scaled{heavy};
  EXPECT_NEAR(scaled.comm_cost(assign), 2.0 * base.comm_cost(assign), 1e-12);
  EXPECT_NEAR(scaled.util_cost(assign), 0.5 * base.util_cost(assign), 1e-12);
}

TEST(Solvers, BruteForceMatchesExact) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto p = random_problem(8, 2, seed);
    const auto bf = solve_brute_force(p);
    const auto exact = solve_exact(p);
    EXPECT_NEAR(bf.cost, exact.cost, 1e-9) << "seed " << seed;
    EXPECT_TRUE(exact.optimal);
    check_equal_sizes(p, exact.assignment);
  }
}

TEST(Solvers, ExactHandlesThreeClusters) {
  const auto p = random_problem(9, 3, 42);
  const auto bf = solve_brute_force(p);
  const auto exact = solve_exact(p);
  EXPECT_NEAR(bf.cost, exact.cost, 1e-9);
}

TEST(Solvers, AnnealNearOptimalOnSmallInstances) {
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const auto p = random_problem(12, 3, seed);
    const auto exact = solve_exact(p);
    AnnealParams params;
    params.iterations = 30'000;
    params.restarts = 3;
    const auto sa = solve_anneal(p, params);
    check_equal_sizes(p, sa.assignment);
    EXPECT_LE(sa.cost, exact.cost * 1.05 + 1e-9) << "seed " << seed;
    EXPECT_GE(sa.cost, exact.cost - 1e-9);  // never better than optimal
  }
}

TEST(Solvers, AnnealDeterministicForSeed) {
  const auto p = random_problem(32, 4, 5);
  AnnealParams params;
  params.iterations = 20'000;
  params.restarts = 2;
  const auto a = solve_anneal(p, params);
  const auto b = solve_anneal(p, params);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(Solvers, ReportedCostMatchesAssignment) {
  const auto p = random_problem(24, 4, 8);
  const ClusteringCost cost{p};
  const auto sa = solve_anneal(p);
  EXPECT_NEAR(sa.cost, cost.cost(sa.assignment), 1e-9);
}

TEST(Solvers, SixtyFourCoreInstanceRespectsConstraints) {
  const auto p = random_problem(64, 4, 9);
  AnnealParams params;
  params.iterations = 50'000;
  params.restarts = 2;
  const auto sa = solve_anneal(p, params);
  check_equal_sizes(p, sa.assignment);
}

TEST(Solvers, InvalidProblemRejected) {
  ClusteringProblem p;
  p.clusters = 3;
  p.utilization.assign(8, 0.5);  // 8 % 3 != 0
  p.traffic = Matrix{8, 8};
  EXPECT_THROW(ClusteringCost{p}, RequirementError);
}

TEST(Solvers, UtilizationOnlyGroupsByLevel) {
  // No traffic at all: clustering must group by utilization quantiles.
  ClusteringProblem p;
  p.clusters = 2;
  p.utilization = {0.9, 0.1, 0.9, 0.1, 0.9, 0.1, 0.9, 0.1};
  p.traffic = Matrix{8, 8};
  const auto result = solve_exact(p);
  const std::size_t high_cluster = result.assignment[0];
  for (std::size_t i = 0; i < 8; ++i) {
    if (p.utilization[i] > 0.5) {
      EXPECT_EQ(result.assignment[i], high_cluster);
    } else {
      EXPECT_NE(result.assignment[i], high_cluster);
    }
  }
}

TEST(Solvers, TrafficOnlyGroupsCommunicators) {
  // Uniform utilization; two 4-cliques of heavy traffic.
  ClusteringProblem p;
  p.clusters = 2;
  p.utilization.assign(8, 0.5);
  p.traffic = Matrix{8, 8};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) {
        p.traffic(i, j) = 1.0;
        p.traffic(i + 4, j + 4) = 1.0;
      }
    }
  }
  const auto result = solve_exact(p);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(result.assignment[i], result.assignment[0]);
    EXPECT_EQ(result.assignment[i + 4], result.assignment[4]);
  }
  EXPECT_NE(result.assignment[0], result.assignment[4]);
}

class SwapDeltaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwapDeltaProperty, AnnealCostIsConsistent) {
  // solve_anneal relies on incremental swap deltas internally; its reported
  // cost must equal a from-scratch evaluation (guards delta-accumulation
  // bugs).
  const auto p = random_problem(16, 4, GetParam());
  const ClusteringCost cost{p};
  AnnealParams params;
  params.iterations = 5'000;
  params.restarts = 1;
  params.seed = GetParam() * 31 + 1;
  const auto result = solve_anneal(p, params);
  EXPECT_NEAR(result.cost, cost.cost(result.assignment), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwapDeltaProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace vfimr::vfi
