// Tier-2 stress tests for the persistent evaluation store: concurrent
// writer *processes* (the `--shard i/N` population mode) and concurrent
// writer threads must leave a store whose every committed record reads
// back verbatim — the advisory directory lock serializes segment commits,
// and CRC framing guarantees a torn write degrades to a miss, never to
// wrong data.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "store/eval_store.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define VFIMR_HAVE_FORK 1
#endif

namespace vfimr::store {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path{(fs::temp_directory_path() / ("vfimr_store_stress_" + name))
                 .string()} {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

std::string key_of(int writer, int i) {
  return "writer" + std::to_string(writer) + "/key" + std::to_string(i);
}

std::string value_of(int writer, int i) {
  // Distinctive, length-varied payloads so any cross-record confusion or
  // truncation shows up as a content mismatch.
  return std::string(static_cast<std::size_t>(64 + (i * 7) % 256),
                     static_cast<char>('A' + (writer * 11 + i) % 26)) +
         "#" + std::to_string(writer) + ":" + std::to_string(i);
}

constexpr int kKeysPerWriter = 200;

#if VFIMR_HAVE_FORK
TEST(StoreStress, TwoWriterProcessesLeaveAConsistentIndex) {
  TempDir tmp{"fork"};
  // Both children also write a shared overlap range — content-addressed
  // puts of identical bytes — to exercise commit-time dedup under the
  // directory lock.
  const auto child = [&](int writer) {
    EvalStore st{tmp.path};
    for (int i = 0; i < kKeysPerWriter; ++i) {
      st.put(key_of(writer, i), value_of(writer, i));
      st.put("shared/key" + std::to_string(i % 32), "shared value");
      if (i % 16 == 0) st.flush();  // interleave many small commits
    }
    st.flush();
  };

  std::vector<pid_t> pids;
  for (int writer = 0; writer < 2; ++writer) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      child(writer);
      _exit(::testing::Test::HasFailure() ? 1 : 0);
    }
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  // A fresh reader sees every record from both processes, verbatim, with
  // nothing corrupt in the scan.
  EvalStore st{tmp.path};
  std::string v;
  for (int writer = 0; writer < 2; ++writer) {
    for (int i = 0; i < kKeysPerWriter; ++i) {
      ASSERT_TRUE(st.get(key_of(writer, i), v))
          << "missing writer " << writer << " key " << i;
      EXPECT_EQ(v, value_of(writer, i));
    }
  }
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(st.get("shared/key" + std::to_string(i), v));
    EXPECT_EQ(v, "shared value");
  }
  EXPECT_EQ(st.stats().corrupt_records, 0u);
  // Cross-process content dedup is best-effort (each process only knows the
  // segments it indexed at open), so the shared keys may be stored twice —
  // the index may hold more locations than distinct keys, never fewer.
  EXPECT_GE(st.keys(), 2u * kKeysPerWriter + 32u);
}
#endif  // VFIMR_HAVE_FORK

TEST(StoreStress, TwoStoreInstancesInterleaveCommitsSafely) {
  // Same shape as the fork test but in-process: two EvalStore instances on
  // one directory, driven from two threads.  Each instance's commits go
  // through the same advisory lock path as a foreign process's would.
  TempDir tmp{"instances"};
  {
    EvalStore a{tmp.path};
    EvalStore b{tmp.path};
    std::thread ta{[&] {
      for (int i = 0; i < kKeysPerWriter; ++i) {
        a.put(key_of(0, i), value_of(0, i));
        if (i % 8 == 0) a.flush();
      }
      a.flush();
    }};
    std::thread tb{[&] {
      for (int i = 0; i < kKeysPerWriter; ++i) {
        b.put(key_of(1, i), value_of(1, i));
        if (i % 8 == 0) b.flush();
      }
      b.flush();
    }};
    ta.join();
    tb.join();
  }
  EvalStore st{tmp.path};
  std::string v;
  for (int writer = 0; writer < 2; ++writer) {
    for (int i = 0; i < kKeysPerWriter; ++i) {
      ASSERT_TRUE(st.get(key_of(writer, i), v));
      EXPECT_EQ(v, value_of(writer, i));
    }
  }
  EXPECT_EQ(st.stats().corrupt_records, 0u);
  EXPECT_EQ(st.keys(), 2u * kKeysPerWriter);
}

TEST(StoreStress, ManyThreadsHammerOneStore) {
  // All public methods share one mutex; this is the usage pattern of
  // parallel_for evaluator workers resolving through an attached store.
  TempDir tmp{"threads"};
  EvalStore st{tmp.path};
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::string v;
      for (int i = 0; i < kKeysPerWriter; ++i) {
        st.put(key_of(t, i), value_of(t, i));
        ASSERT_TRUE(st.get(key_of(t, i), v));
        ASSERT_EQ(v, value_of(t, i));
        (void)st.get(key_of((t + 1) % kThreads, i), v);  // races are fine
      }
    });
  }
  for (auto& w : workers) w.join();
  st.flush();
  EXPECT_EQ(st.keys(),
            static_cast<std::size_t>(kThreads) * kKeysPerWriter);

  EvalStore reopened{tmp.path};
  std::string v;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kKeysPerWriter; ++i) {
      ASSERT_TRUE(reopened.get(key_of(t, i), v));
      EXPECT_EQ(v, value_of(t, i));
    }
  }
  EXPECT_EQ(reopened.stats().corrupt_records, 0u);
}

}  // namespace
}  // namespace vfimr::store
