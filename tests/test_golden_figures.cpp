// Golden-figure regression guard.
//
// Recomputes the Fig. 2 / Fig. 7 / Fig. 8 / Table 2 metrics from scratch and
// compares them against the committed goldens in results/golden/ within
// tolerance; then proves the guard has teeth by applying a deliberate +5%
// map-time perturbation and asserting it is detected.
//
// The expensive step (six apps x three full-system simulations) runs ONCE in
// a shared fixture; every TEST_F reuses the cached FigureData.
//
// To intentionally move the goldens: rebuild, re-run
// `./build/bench/golden_figures results/golden`, and commit the reviewed
// diff.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/json_lite.hpp"
#include "sysmodel/figures.hpp"

#ifndef VFIMR_SOURCE_DIR
#error "tests/CMakeLists.txt must define VFIMR_SOURCE_DIR"
#endif

namespace vfimr {
namespace {

// Simulations are deterministic (fixed seeds throughout), so tolerance only
// absorbs floating-point differences across compilers/flags, not model noise.
constexpr double kRelTol = 5e-3;
constexpr double kAbsTol = 1e-9;

bool within_tolerance(double golden, double actual) {
  const double diff = std::abs(golden - actual);
  return diff <= kAbsTol + kRelTol * std::abs(golden);
}

class GoldenFigures : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { data_ = new sysmodel::FigureData(sysmodel::compute_figure_data()); }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static const sysmodel::FigureData& data() { return *data_; }

  static json::MetricMap golden(const std::string& name) {
    return json::load_file(std::string{VFIMR_SOURCE_DIR} +
                           "/results/golden/" + name + ".json");
  }

  /// Asserts `actual` matches the committed golden file key-for-key.
  static void expect_matches(const std::string& name,
                             const json::MetricMap& actual) {
    const json::MetricMap gold = golden(name);
    ASSERT_FALSE(gold.empty()) << name << ".json is empty";
    for (const auto& [key, value] : gold) {
      const auto it = actual.find(key);
      ASSERT_NE(it, actual.end()) << "missing recomputed metric " << key;
      EXPECT_TRUE(within_tolerance(value, it->second))
          << key << ": golden=" << value << " actual=" << it->second
          << " (rel tol " << kRelTol << ")";
    }
    for (const auto& [key, value] : actual) {
      EXPECT_TRUE(gold.count(key))
          << "new metric " << key << "=" << value
          << " absent from " << name
          << ".json — regenerate goldens with bench/golden_figures";
    }
  }

 private:
  static sysmodel::FigureData* data_;
};

sysmodel::FigureData* GoldenFigures::data_ = nullptr;

TEST_F(GoldenFigures, Fig2UtilizationMatchesGolden) {
  expect_matches("fig2", sysmodel::extract_metrics(data()).fig2);
}

TEST_F(GoldenFigures, Fig7PhaseBreakdownMatchesGolden) {
  expect_matches("fig7", sysmodel::extract_metrics(data()).fig7);
}

TEST_F(GoldenFigures, Fig8EdpMatchesGolden) {
  expect_matches("fig8", sysmodel::extract_metrics(data()).fig8);
}

TEST_F(GoldenFigures, Table2VfAssignmentMatchesGolden) {
  expect_matches("table2", sysmodel::extract_metrics(data()).table2);
}

TEST_F(GoldenFigures, HeadlineSavingIsInPaperBallpark) {
  // Loose sanity independent of the goldens: the reproduced average WiNoC
  // EDP saving should sit in the neighbourhood of the paper's 33.7%.
  const auto m = sysmodel::extract_metrics(data()).fig8;
  const double avg = m.at("fig8.summary.avg_saving");
  EXPECT_GT(avg, 0.15);
  EXPECT_LT(avg, 0.60);
}

TEST_F(GoldenFigures, GuardDetectsMapTimePerturbation) {
  // A +5% map-time drift must push at least one fig7 metric out of
  // tolerance — otherwise the guard is too loose to be worth anything.
  sysmodel::FigurePerturbation p;
  p.map_time_scale = 1.05;
  const auto perturbed = sysmodel::extract_metrics(data(), p);

  const json::MetricMap gold = golden("fig7");
  std::size_t violations = 0;
  for (const auto& [key, value] : gold) {
    const auto it = perturbed.fig7.find(key);
    ASSERT_NE(it, perturbed.fig7.end()) << key;
    if (!within_tolerance(value, it->second)) ++violations;
  }
  EXPECT_GT(violations, 0u)
      << "+5% map time stayed within tolerance everywhere — guard is blind";
}

TEST_F(GoldenFigures, GuardDetectsCoreEnergyPerturbation) {
  sysmodel::FigurePerturbation p;
  p.core_energy_scale = 1.05;
  const auto perturbed = sysmodel::extract_metrics(data(), p);

  const json::MetricMap gold = golden("fig8");
  std::size_t violations = 0;
  for (const auto& [key, value] : gold) {
    const auto it = perturbed.fig8.find(key);
    ASSERT_NE(it, perturbed.fig8.end()) << key;
    if (!within_tolerance(value, it->second)) ++violations;
  }
  EXPECT_GT(violations, 0u)
      << "+5% core energy stayed within tolerance everywhere — guard is blind";
}

}  // namespace
}  // namespace vfimr
