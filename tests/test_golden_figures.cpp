// Golden-figure regression guard.
//
// Recomputes the Fig. 2 / Fig. 7 / Fig. 8 / Table 2 metrics from scratch and
// compares them against the committed goldens in results/golden/ within
// tolerance; then proves the guard has teeth by applying a deliberate +5%
// map-time perturbation and asserting it is detected.
//
// The expensive step (six apps x three full-system simulations) runs ONCE in
// a shared fixture; every TEST_F reuses the cached FigureData.
//
// To intentionally move the goldens: rebuild, re-run
// `./build/bench/golden_figures results/golden`, and commit the reviewed
// diff.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/json_lite.hpp"
#include "faults/faults.hpp"
#include "sysmodel/figures.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

#ifndef VFIMR_SOURCE_DIR
#error "tests/CMakeLists.txt must define VFIMR_SOURCE_DIR"
#endif

namespace vfimr {
namespace {

// Simulations are deterministic (fixed seeds throughout), so tolerance only
// absorbs floating-point differences across compilers/flags, not model noise.
constexpr double kRelTol = 5e-3;
constexpr double kAbsTol = 1e-9;

bool within_tolerance(double golden, double actual) {
  const double diff = std::abs(golden - actual);
  return diff <= kAbsTol + kRelTol * std::abs(golden);
}

class GoldenFigures : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { data_ = new sysmodel::FigureData(sysmodel::compute_figure_data()); }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static const sysmodel::FigureData& data() { return *data_; }

  static json::MetricMap golden(const std::string& name) {
    return json::load_file(std::string{VFIMR_SOURCE_DIR} +
                           "/results/golden/" + name + ".json");
  }

  /// Asserts `actual` matches the committed golden file key-for-key.
  static void expect_matches(const std::string& name,
                             const json::MetricMap& actual) {
    const json::MetricMap gold = golden(name);
    ASSERT_FALSE(gold.empty()) << name << ".json is empty";
    for (const auto& [key, value] : gold) {
      const auto it = actual.find(key);
      ASSERT_NE(it, actual.end()) << "missing recomputed metric " << key;
      EXPECT_TRUE(within_tolerance(value, it->second))
          << key << ": golden=" << value << " actual=" << it->second
          << " (rel tol " << kRelTol << ")";
    }
    for (const auto& [key, value] : actual) {
      EXPECT_TRUE(gold.count(key))
          << "new metric " << key << "=" << value
          << " absent from " << name
          << ".json — regenerate goldens with bench/golden_figures";
    }
  }

 private:
  static sysmodel::FigureData* data_;
};

sysmodel::FigureData* GoldenFigures::data_ = nullptr;

TEST_F(GoldenFigures, Fig2UtilizationMatchesGolden) {
  expect_matches("fig2", sysmodel::extract_metrics(data()).fig2);
}

TEST_F(GoldenFigures, Fig7PhaseBreakdownMatchesGolden) {
  expect_matches("fig7", sysmodel::extract_metrics(data()).fig7);
}

TEST_F(GoldenFigures, Fig8EdpMatchesGolden) {
  expect_matches("fig8", sysmodel::extract_metrics(data()).fig8);
}

TEST_F(GoldenFigures, Table2VfAssignmentMatchesGolden) {
  expect_matches("table2", sysmodel::extract_metrics(data()).table2);
}

TEST_F(GoldenFigures, HeadlineSavingIsInPaperBallpark) {
  // Loose sanity independent of the goldens: the reproduced average WiNoC
  // EDP saving should sit in the neighbourhood of the paper's 33.7%.
  const auto m = sysmodel::extract_metrics(data()).fig8;
  const double avg = m.at("fig8.summary.avg_saving");
  EXPECT_GT(avg, 0.15);
  EXPECT_LT(avg, 0.60);
}

TEST_F(GoldenFigures, GuardDetectsMapTimePerturbation) {
  // A +5% map-time drift must push at least one fig7 metric out of
  // tolerance — otherwise the guard is too loose to be worth anything.
  sysmodel::FigurePerturbation p;
  p.map_time_scale = 1.05;
  const auto perturbed = sysmodel::extract_metrics(data(), p);

  const json::MetricMap gold = golden("fig7");
  std::size_t violations = 0;
  for (const auto& [key, value] : gold) {
    const auto it = perturbed.fig7.find(key);
    ASSERT_NE(it, perturbed.fig7.end()) << key;
    if (!within_tolerance(value, it->second)) ++violations;
  }
  EXPECT_GT(violations, 0u)
      << "+5% map time stayed within tolerance everywhere — guard is blind";
}

TEST(ZeroFaultIdentity, SeededZeroRateSpecIsBitIdentical) {
  // The goldens are produced with the default (fault-free) PlatformParams.
  // A FaultSpec with every rate at zero — regardless of its seed — must
  // leave every simulated quantity bit-identical: the fault machinery is
  // provably dormant in the runs the goldens guard, so the fault-injection
  // subsystem cannot move a golden without a nonzero rate.
  const auto profile = workload::make_profile(workload::App::kWC);
  const sysmodel::FullSystemSim sim;
  const auto clean = sysmodel::compare_systems(profile, sim);

  sysmodel::PlatformParams params;
  params.faults = faults::FaultSpec{};
  params.faults.seed = 0xBADD1Eull;  // the seed alone must not matter
  const auto seeded = sysmodel::compare_systems(profile, sim, params);

  auto expect_same = [](const sysmodel::SystemReport& a,
                        const sysmodel::SystemReport& b) {
    EXPECT_EQ(a.exec_s, b.exec_s);
    EXPECT_EQ(a.core_energy_j, b.core_energy_j);
    EXPECT_EQ(a.net_dynamic_j, b.net_dynamic_j);
    EXPECT_EQ(a.net_static_j, b.net_static_j);
    EXPECT_EQ(a.net.avg_latency_cycles, b.net.avg_latency_cycles);
    EXPECT_EQ(a.mem_scale, b.mem_scale);
    EXPECT_FALSE(b.resilience.any());
    EXPECT_EQ(b.resilience.net_stall_seconds, 0.0);
  };
  expect_same(clean.nvfi_mesh, seeded.nvfi_mesh);
  expect_same(clean.vfi_mesh, seeded.vfi_mesh);
  expect_same(clean.vfi_winoc, seeded.vfi_winoc);
}

TEST_F(GoldenFigures, GuardDetectsCoreEnergyPerturbation) {
  sysmodel::FigurePerturbation p;
  p.core_energy_scale = 1.05;
  const auto perturbed = sysmodel::extract_metrics(data(), p);

  const json::MetricMap gold = golden("fig8");
  std::size_t violations = 0;
  for (const auto& [key, value] : gold) {
    const auto it = perturbed.fig8.find(key);
    ASSERT_NE(it, perturbed.fig8.end()) << key;
    if (!within_tolerance(value, it->second)) ++violations;
  }
  EXPECT_GT(violations, 0u)
      << "+5% core energy stayed within tolerance everywhere — guard is blind";
}

}  // namespace
}  // namespace vfimr
