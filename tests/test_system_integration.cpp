// Integration tests: the full paper pipeline — profile -> VFI design ->
// platform construction -> cycle-accurate network -> full-system report —
// and the headline paper-shape regressions.

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr::sysmodel {
namespace {

PlatformParams fast_params(SystemKind kind) {
  PlatformParams p;
  p.kind = kind;
  p.sim_cycles = 20'000;
  p.drain_cycles = 60'000;
  return p;
}

TEST(VfiNetworkV2Factor, WeightsTrafficByIslandVoltages) {
  // Two nodes in different islands at 0.8 V and 1.0 V, v_nom = 1.0 V.  One
  // unit of traffic each way -> every packet averages the two islands' V^2.
  Matrix traffic{2, 2};
  traffic(0, 1) = 1.0;
  traffic(1, 0) = 1.0;
  const std::vector<std::size_t> clusters{0, 1};
  const std::vector<power::VfPoint> vf{{0.8, 2.0e9}, {1.0, 2.5e9}};
  const double factor = vfi_network_v2_factor(traffic, clusters, vf, 1.0);
  EXPECT_NEAR(factor, 0.5 * (0.8 * 0.8 + 1.0 * 1.0), 1e-12);
}

TEST(VfiNetworkV2Factor, CoversEveryNodeOfNon64Platforms) {
  // Regression: the factor used to loop over a hardcoded 64x64 window, so a
  // platform with any other node count either read out of range or silently
  // dropped traffic.  A 3-node matrix must be fully accounted.
  Matrix traffic{3, 3};
  traffic(0, 2) = 2.0;
  traffic(2, 1) = 2.0;
  const std::vector<std::size_t> clusters{0, 0, 1};
  const std::vector<power::VfPoint> vf{{1.0, 2.5e9}, {0.6, 1.5e9}};
  // (0 -> 2): (1 + 0.36)/2;  (2 -> 1): (0.36 + 1)/2; equal weights.
  const double factor = vfi_network_v2_factor(traffic, clusters, vf, 1.0);
  EXPECT_NEAR(factor, 0.5 * (1.0 + 0.36), 1e-12);
}

TEST(VfiNetworkV2Factor, ZeroTrafficIsNeutral) {
  const std::vector<power::VfPoint> vf{{1.0, 2.5e9}};
  EXPECT_DOUBLE_EQ(
      vfi_network_v2_factor(Matrix{4, 4}, {0, 0, 0, 0}, vf, 1.0), 1.0);
}

TEST(VfiNetworkV2Factor, RejectsInconsistentClusterMap) {
  Matrix traffic{2, 2};
  traffic(0, 1) = 1.0;
  const std::vector<power::VfPoint> vf{{1.0, 2.5e9}};
  // Cluster map shorter than the traffic matrix.
  EXPECT_THROW(vfi_network_v2_factor(traffic, {0}, vf, 1.0),
               RequirementError);
  // Cluster id with no V/F point.
  EXPECT_THROW(vfi_network_v2_factor(traffic, {0, 7}, vf, 1.0),
               RequirementError);
}

TEST(BuildPlatform, NvfiMeshShape) {
  const auto profile = workload::make_profile(workload::App::kWC);
  const auto built = build_platform(profile, fast_params(SystemKind::kNvfiMesh),
                                    power::VfTable::standard());
  EXPECT_FALSE(built.has_vfi);
  EXPECT_EQ(built.topology.node_count(), 64u);
  EXPECT_EQ(built.topology.graph.edge_count(), 112u);  // 8x8 mesh
  EXPECT_EQ(built.wi_count, 0u);
  EXPECT_NEAR(built.node_traffic.sum(), profile.traffic.sum(), 1e-9);
}

TEST(BuildPlatform, VfiMeshHasDesign) {
  const auto profile = workload::make_profile(workload::App::kWC);
  const auto built = build_platform(profile, fast_params(SystemKind::kVfiMesh),
                                    power::VfTable::standard());
  EXPECT_TRUE(built.has_vfi);
  EXPECT_EQ(built.vfi.assignment.size(), 64u);
  EXPECT_EQ(built.vfi.vfi1.size(), 4u);
}

TEST(BuildPlatform, VfiWinocHasWirelessOverlay) {
  const auto profile = workload::make_profile(workload::App::kWC);
  const auto built = build_platform(profile, fast_params(SystemKind::kVfiWinoc),
                                    power::VfTable::standard());
  EXPECT_TRUE(built.has_vfi);
  EXPECT_EQ(built.wi_count, 12u);
  EXPECT_GT(built.topology.graph.edge_count(), 112u);  // wires + wireless
}

class NetworkDrainsForApp : public ::testing::TestWithParam<workload::App> {};

TEST_P(NetworkDrainsForApp, AllThreeSystems) {
  // Regression for the saturation/deadlock bugs found during bring-up: every
  // application's traffic must drain on every platform.
  const auto profile = workload::make_profile(GetParam());
  const power::NocPowerModel noc_power;
  for (auto kind : {SystemKind::kNvfiMesh, SystemKind::kVfiMesh,
                    SystemKind::kVfiWinoc}) {
    const auto params = fast_params(kind);
    const auto built =
        build_platform(profile, params, power::VfTable::standard());
    const auto eval = evaluate_network(built, profile, params, noc_power);
    EXPECT_TRUE(eval.drained) << system_name(kind);
    EXPECT_GT(eval.flits_delivered, 0u);
    EXPECT_GT(eval.avg_latency_cycles, 0.0);
    EXPECT_GT(eval.energy_per_flit_j, 0.0);
    if (kind == SystemKind::kVfiWinoc) {
      EXPECT_GT(eval.wireless_utilization, 0.0) << "wireless unused";
    } else {
      EXPECT_EQ(eval.wireless_utilization, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, NetworkDrainsForApp,
                         ::testing::ValuesIn(workload::kAllApps),
                         [](const auto& info) {
                           return workload::app_name(info.param);
                         });

TEST(FullSystem, ReportIsInternallyConsistent) {
  const auto profile = workload::make_profile(workload::App::kHist);
  const FullSystemSim sim;
  const auto report = sim.run(profile, fast_params(SystemKind::kVfiWinoc));
  EXPECT_GT(report.exec_s, 0.0);
  EXPECT_NEAR(report.exec_s, report.phases.total_s(), 1e-12);
  EXPECT_GT(report.phases.map_s, report.phases.lib_init_s);
  EXPECT_GT(report.core_energy_j, 0.0);
  EXPECT_GT(report.net_dynamic_j, 0.0);
  EXPECT_GT(report.net_static_j, 0.0);
  EXPECT_NEAR(report.total_energy_j(),
              report.core_energy_j + report.net_dynamic_j + report.net_static_j,
              1e-12);
  EXPECT_NEAR(report.edp_js(), report.total_energy_j() * report.exec_s, 1e-12);
  EXPECT_TRUE(report.has_vfi);
}

TEST(FullSystem, IterativeAppsRunTwice) {
  const FullSystemSim sim;
  // Kmeans has 2 MapReduce iterations; halving iterations should roughly
  // halve the runtime.  Compare against PCA=2 vs a synthetic 1-iteration
  // variant of the same profile.
  auto profile = workload::make_profile(workload::App::kKmeans);
  const auto two = sim.run(profile, fast_params(SystemKind::kNvfiMesh));
  profile.iterations = 1;
  const auto one = sim.run(profile, fast_params(SystemKind::kNvfiMesh));
  EXPECT_NEAR(two.exec_s / one.exec_s, 2.0, 0.1);
}

TEST(FullSystem, DeterministicReports) {
  const auto profile = workload::make_profile(workload::App::kLR);
  const FullSystemSim sim;
  const auto a = sim.run(profile, fast_params(SystemKind::kVfiMesh));
  const auto b = sim.run(profile, fast_params(SystemKind::kVfiMesh));
  EXPECT_DOUBLE_EQ(a.exec_s, b.exec_s);
  EXPECT_DOUBLE_EQ(a.total_energy_j(), b.total_energy_j());
}

TEST(FullSystem, MemScaleFollowsLatencyRatio) {
  const auto profile = workload::make_profile(workload::App::kWC);
  const FullSystemSim sim;
  // Pretend the baseline latency was much higher than measured: mem_scale
  // must drop below 1 (faster memory than baseline).
  const auto report =
      sim.run(profile, fast_params(SystemKind::kVfiWinoc), 1000.0);
  EXPECT_LT(report.mem_scale, 1.0);
}

// ---- Paper-shape regressions (the headline claims of §7.3).

struct PaperShape {
  SystemComparison cmp[6];
  const workload::App apps[6] = {workload::App::kHist, workload::App::kKmeans,
                                 workload::App::kLR, workload::App::kMM,
                                 workload::App::kPCA, workload::App::kWC};

  PaperShape() {
    const FullSystemSim sim;
    PlatformParams params;
    params.sim_cycles = 30'000;
    for (int i = 0; i < 6; ++i) {
      cmp[i] = compare_systems(workload::make_profile(apps[i]), sim, params);
    }
  }
};

TEST(PaperShapes, HeadlineClaims) {
  const PaperShape s;
  double total_saving = 0.0;
  double best_saving = 0.0;
  workload::App best_app = workload::App::kWC;
  for (int i = 0; i < 6; ++i) {
    const auto& c = s.cmp[i];
    const double base_edp = c.nvfi_mesh.edp_js();
    const double winoc_edp = c.vfi_winoc.edp_js() / base_edp;
    const double saving = 1.0 - winoc_edp;
    total_saving += saving;
    if (saving > best_saving) {
      best_saving = saving;
      best_app = s.apps[i];
    }

    // Every app saves EDP with the VFI WiNoC (Fig. 8).
    EXPECT_GT(saving, 0.0) << workload::app_name(s.apps[i]);
    // WiNoC never slower than VFI mesh (its whole point).
    EXPECT_LE(c.vfi_winoc.exec_s, c.vfi_mesh.exec_s * 1.005)
        << workload::app_name(s.apps[i]);
    // WiNoC execution penalty vs the baseline stays small (paper: <= 3.22%;
    // allow a modest band for the reproduction).
    EXPECT_LT(c.vfi_winoc.exec_s / c.nvfi_mesh.exec_s, 1.05)
        << workload::app_name(s.apps[i]);
    // The WiNoC's network latency beats the mesh under VFI (§7.3).
    EXPECT_LT(c.vfi_winoc.net.avg_latency_cycles,
              c.vfi_mesh.net.avg_latency_cycles)
        << workload::app_name(s.apps[i]);
  }
  // Kmeans is the biggest winner (paper: 66.2%), and by a wide margin.
  EXPECT_EQ(best_app, workload::App::kKmeans);
  EXPECT_GT(best_saving, 0.5);
  // Average saving is substantial (paper: 33.7%; reproduction band >= 15%).
  EXPECT_GT(total_saving / 6.0, 0.15);
}

TEST(PaperShapes, Vfi1Vfi2ExecOrdering) {
  // Fig. 4a: V/F reassignment speeds up PCA the most, then MM, then HIST.
  const FullSystemSim sim;
  PlatformParams params;
  params.sim_cycles = 30'000;
  auto gain = [&](workload::App app) {
    const auto profile = workload::make_profile(app);
    params.kind = SystemKind::kNvfiMesh;
    const auto nvfi = sim.run(profile, params);
    params.kind = SystemKind::kVfiMesh;
    params.use_vfi2 = false;
    const auto vfi1 = sim.run(profile, params, nvfi.net.avg_latency_cycles);
    params.use_vfi2 = true;
    const auto vfi2 = sim.run(profile, params, nvfi.net.avg_latency_cycles);
    return vfi1.exec_s / vfi2.exec_s;  // > 1 means VFI2 faster
  };
  const double pca = gain(workload::App::kPCA);
  const double mm = gain(workload::App::kMM);
  const double hist = gain(workload::App::kHist);
  EXPECT_GT(pca, 1.0);
  EXPECT_GT(mm, 1.0);
  EXPECT_GE(hist, 1.0 - 1e-9);
  EXPECT_GT(pca, hist);
}

}  // namespace
}  // namespace vfimr::sysmodel
