#include "noc/routing.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "noc/topology.hpp"

namespace vfimr::noc {
namespace {

/// Walk the routing decisions from s to d over graph `g`; returns hop count.
/// Asserts legality for up*/down*: the phase bit never flips back to "up".
std::uint32_t walk(const graph::Graph& g, const RoutingAlgorithm& algo,
                   graph::NodeId s, graph::NodeId d) {
  graph::NodeId cur = s;
  bool phase = false;
  std::uint32_t hops = 0;
  while (cur != d) {
    const auto dec = algo.next_hop(cur, d, phase);
    EXPECT_NE(dec.edge, graph::kInvalidId);
    // Legality: once in the down phase, a route must stay there.
    if (phase) {
      EXPECT_TRUE(dec.down_phase);
    }
    phase = dec.down_phase;
    cur = g.other_end(dec.edge, cur);
    ++hops;
    EXPECT_LE(hops, 4 * g.node_count()) << "routing loop";
    if (hops > 4 * g.node_count()) break;
  }
  return hops;
}

TEST(XyRoutingTest, HopsEqualManhattan) {
  const Topology t = make_mesh(8, 8);
  const XyRouting xy{t.graph, 8, 8};
  for (graph::NodeId s : {0u, 7u, 20u, 63u}) {
    for (graph::NodeId d = 0; d < 64; ++d) {
      if (s == d) continue;
      const auto manhattan = static_cast<std::uint32_t>(
          std::abs(static_cast<int>(mesh_x(s, 8)) -
                   static_cast<int>(mesh_x(d, 8))) +
          std::abs(static_cast<int>(mesh_y(s, 8)) -
                   static_cast<int>(mesh_y(d, 8))));
      EXPECT_EQ(walk(t.graph, xy, s, d), manhattan);
    }
  }
}

TEST(XyRoutingTest, XFirstOrder) {
  const Topology t = make_mesh(4, 4);
  const XyRouting xy{t.graph, 4, 4};
  // From (0,0) to (2,2): the first hop must move in X.
  const auto dec = xy.next_hop(mesh_node(0, 0, 4), mesh_node(2, 2, 4), false);
  const auto next = t.graph.other_end(dec.edge, mesh_node(0, 0, 4));
  EXPECT_EQ(mesh_y(next, 4), 0u);
  EXPECT_EQ(mesh_x(next, 4), 1u);
}

TEST(XyRoutingTest, SelfRouteThrows) {
  const Topology t = make_mesh(2, 2);
  const XyRouting xy{t.graph, 2, 2};
  EXPECT_THROW(xy.next_hop(0, 0, false), RequirementError);
}

TEST(XyRoutingTest, NonMeshGraphRejected) {
  Topology t = make_mesh(2, 2);
  t.add_wire(0, 3);  // diagonal breaks mesh invariants
  EXPECT_THROW((XyRouting{t.graph, 2, 2}), RequirementError);
}

TEST(UpDownRoutingTest, ReachesAllPairsOnMesh) {
  const Topology t = make_mesh(6, 6);
  const UpDownRouting ud{t.graph};
  for (graph::NodeId s = 0; s < 36; ++s) {
    for (graph::NodeId d = 0; d < 36; ++d) {
      if (s != d) walk(t.graph, ud, s, d);
    }
  }
}

TEST(UpDownRoutingTest, RouteHopsMatchesWalk) {
  const Topology t = make_mesh(5, 5);
  const UpDownRouting ud{t.graph};
  for (graph::NodeId s = 0; s < 25; ++s) {
    for (graph::NodeId d = 0; d < 25; ++d) {
      if (s == d) {
        EXPECT_EQ(ud.route_hops(s, d), 0u);
      } else {
        EXPECT_EQ(ud.route_hops(s, d), walk(t.graph, ud, s, d));
      }
    }
  }
}

TEST(UpDownRoutingTest, IrregularGraphAllPairs) {
  // Random connected sparse graph.
  Rng rng{77};
  graph::Graph g{20};
  for (graph::NodeId v = 1; v < 20; ++v) {
    g.add_edge(v, static_cast<graph::NodeId>(rng.uniform_u64(v)));
  }
  for (int extra = 0; extra < 12; ++extra) {
    const auto a = static_cast<graph::NodeId>(rng.uniform_u64(20));
    const auto b = static_cast<graph::NodeId>(rng.uniform_u64(20));
    if (a != b && !g.has_edge(a, b)) g.add_edge(a, b);
  }
  const UpDownRouting ud{g};
  Topology t;
  t.graph = g;
  for (graph::NodeId s = 0; s < 20; ++s) {
    for (graph::NodeId d = 0; d < 20; ++d) {
      if (s != d) walk(g, ud, s, d);
    }
  }
}

TEST(UpDownRoutingTest, DisconnectedGraphRejected) {
  graph::Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_THROW(UpDownRouting{g}, RequirementError);
}

TEST(UpDownRoutingTest, HopsWithinTreeBound) {
  // Up*/down* routes are at most (depth up) + (depth down) via the root.
  const Topology t = make_mesh(8, 8);
  const UpDownRouting ud{t.graph};
  const auto levels = graph::bfs_hops(t.graph, ud.root());
  for (graph::NodeId s = 0; s < 64; s += 7) {
    for (graph::NodeId d = 0; d < 64; d += 5) {
      if (s == d) continue;
      EXPECT_LE(ud.route_hops(s, d), levels[s] + levels[d]);
    }
  }
}

TEST(UpDownRoutingTest, WirelessCostSteersLongRoutesOnly) {
  // A line 0-1-2-3-4-5 with a wireless shortcut 0-5.
  Topology t = make_placed_grid(6, 1, 1.0);
  for (graph::NodeId v = 0; v + 1 < 6; ++v) t.add_wire(v, v + 1);
  t.add_wireless(0, 5);

  // Root pinned mid-line so both the wired and the wireless route are
  // up*/down*-legal and the cost decides.
  // Cheap wireless (cost 1): shortcut taken for 0 -> 5.
  const UpDownRouting cheap{t.graph, 1.0, 2};
  EXPECT_EQ(cheap.route_hops(0, 5), 1u);

  // Expensive wireless (cost 10 > 5 wire hops): shortcut avoided.
  const UpDownRouting costly{t.graph, 10.0, 2};
  EXPECT_EQ(costly.route_hops(0, 5), 5u);
}

TEST(UpDownRoutingTest, WirelessCostBelowOneRejected) {
  const Topology t = make_mesh(2, 2);
  EXPECT_THROW((UpDownRouting{t.graph, 0.5}), RequirementError);
}

class UpDownSeededGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UpDownSeededGraphs, AllPairsLegalAndLoopFree) {
  Rng rng{GetParam()};
  graph::Graph g{16};
  for (graph::NodeId v = 1; v < 16; ++v) {
    g.add_edge(v, static_cast<graph::NodeId>(rng.uniform_u64(v)));
  }
  for (int extra = 0; extra < 10; ++extra) {
    const auto a = static_cast<graph::NodeId>(rng.uniform_u64(16));
    const auto b = static_cast<graph::NodeId>(rng.uniform_u64(16));
    if (a != b && !g.has_edge(a, b)) g.add_edge(a, b);
  }
  const UpDownRouting ud{g};
  for (graph::NodeId s = 0; s < 16; ++s) {
    for (graph::NodeId d = 0; d < 16; ++d) {
      if (s != d) walk(g, ud, s, d);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpDownSeededGraphs,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull,
                                           7ull, 8ull));

}  // namespace
}  // namespace vfimr::noc
