// Fault-injection subsystem: generator determinism, NoC degradation
// semantics (link reroute, router isolation, WI fallback, transient repair),
// loss accounting, and the zero-fault / replay identity guarantees that the
// resilience bench and the golden guard rest on.  See DESIGN.md §9.

#include "faults/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/require.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"
#include "noc/traffic.hpp"

namespace vfimr::faults {
namespace {

std::vector<std::uint32_t> iota_ids(std::uint32_t n) {
  std::vector<std::uint32_t> ids(n);
  for (std::uint32_t i = 0; i < n; ++i) ids[i] = i;
  return ids;
}

TEST(FaultGenerators, NocScheduleDeterministicInSeed) {
  FaultSpec spec;
  spec.link_rate = 30.0;
  spec.router_rate = 10.0;
  spec.wi_rate = 20.0;
  const auto edges = iota_ids(48);
  const auto routers = iota_ids(16);
  const auto wis = std::vector<std::uint32_t>{0, 5, 10, 15};

  const auto a = make_noc_schedule(spec, edges, routers, wis, 50'000, 7);
  const auto b = make_noc_schedule(spec, edges, routers, wis, 50'000, 7);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].id, b.events()[i].id);
    EXPECT_EQ(a.events()[i].at_cycle, b.events()[i].at_cycle);
    EXPECT_EQ(a.events()[i].until_cycle, b.events()[i].until_cycle);
  }
  // A different seed must be able to produce a different draw.
  const auto c = make_noc_schedule(spec, edges, routers, wis, 50'000, 8);
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.events()[i].id != c.events()[i].id ||
              a.events()[i].at_cycle != c.events()[i].at_cycle;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultGenerators, NocScheduleRespectsRatesAndHorizon) {
  const auto edges = iota_ids(24);
  FaultSpec zero;
  EXPECT_TRUE(make_noc_schedule(zero, edges, edges, edges, 100'000, 1).empty());

  FaultSpec linky;
  linky.link_rate = 50.0;  // expect ~5 over 10k cycles
  const auto sched = make_noc_schedule(linky, edges, {}, {}, 10'000, 3);
  EXPECT_GT(sched.size(), 0u);
  for (const auto& f : sched.events()) {
    EXPECT_EQ(f.kind, NocFaultKind::kLink);
    EXPECT_LT(f.id, 24u);
    EXPECT_LT(f.at_cycle, 10'000u);
    if (f.transient()) EXPECT_GT(f.until_cycle, f.at_cycle);
  }
  // Empty candidate list: that kind is silently skipped.
  FaultSpec wiy;
  wiy.wi_rate = 100.0;
  EXPECT_TRUE(make_noc_schedule(wiy, edges, edges, {}, 100'000, 3).empty());
}

TEST(FaultGenerators, CoreFaultsGuaranteeSurvivorAndReplay) {
  const auto a = make_core_faults(8, 1.0, 42);
  EXPECT_EQ(a.size(), 7u);  // probability 1: everyone but the survivor
  for (const auto& f : a) {
    EXPECT_LT(f.core, 8u);
    EXPECT_GT(f.at_fraction, 0.0);
    EXPECT_LT(f.at_fraction, 1.0);
  }
  const auto b = make_core_faults(8, 1.0, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].core, b[i].core);
    EXPECT_DOUBLE_EQ(a[i].at_fraction, b[i].at_fraction);
  }
  EXPECT_TRUE(make_core_faults(8, 0.0, 42).empty());
  EXPECT_TRUE(make_core_faults(0, 1.0, 42).empty());
}

TEST(FaultGenerators, WorkerPlanGuaranteesSurvivor) {
  const auto plan = make_worker_fault_plan(6, 1.0, 4, 9);
  EXPECT_EQ(plan.deaths.size(), 5u);
  std::vector<bool> dies(6, false);
  for (const auto& d : plan.deaths) {
    ASSERT_LT(d.worker, 6u);
    EXPECT_LE(d.after_tasks, 4u);
    dies[d.worker] = true;
  }
  EXPECT_EQ(std::count(dies.begin(), dies.end(), false), 1);
  EXPECT_FALSE(make_worker_fault_plan(1, 1.0, 4, 9).has_deaths());
}

// ---------------------------------------------------------------------------
// NoC behavior under faults.

struct MeshFixture {
  noc::Topology topo = noc::make_mesh(4, 4);
  noc::XyRouting routing{topo.graph, 4, 4};
};

noc::SimConfig with_schedule(FaultSchedule sched) {
  noc::SimConfig cfg;
  cfg.faults = std::move(sched);
  return cfg;
}

TEST(NocFaults, DeadLinkIsReroutedWithoutLoss) {
  MeshFixture f;
  // Kill the 0-1 link before any traffic moves: everything reroutes over the
  // remaining mesh, nothing is lost.
  const auto e01 = f.topo.graph.find_edge(0, 1);
  ASSERT_TRUE(e01.has_value());
  FaultSchedule sched;
  sched.add(NocFault{NocFaultKind::kLink, *e01, 0, kNeverRepaired});
  noc::Network net{f.topo, f.routing, with_schedule(sched)};
  net.inject(0, 1, 4);
  net.inject(0, 3, 4);
  net.inject(1, 0, 2);
  ASSERT_TRUE(net.drain(10'000));
  const auto& m = net.metrics();
  EXPECT_EQ(m.packets_ejected, 3u);
  EXPECT_EQ(m.packets_lost, 0u);
  EXPECT_EQ(m.flits_ejected, 10u);
  EXPECT_GE(m.fault_events, 1u);
  EXPECT_GE(m.route_rebuilds, 1u);
  EXPECT_EQ(net.in_flight_flits(), 0u);
}

TEST(NocFaults, DeadRouterLosesItsTrafficOnly) {
  MeshFixture f;
  FaultSchedule sched;
  sched.add(NocFault{NocFaultKind::kRouter, 5, 0, kNeverRepaired});
  noc::Network net{f.topo, f.routing, with_schedule(sched)};
  noc::TraceTraffic gen{{
      {2, {0, 5, 4}},   // destined to the dead router: lost
      {2, {0, 15, 4}},  // unrelated: delivered (rerouted if needed)
      {2, {5, 0, 4}},   // sourced at the dead router: lost
      {3, {12, 3, 2}},  // unrelated: delivered
  }};
  net.run(&gen, 10);
  ASSERT_TRUE(net.drain(50'000));
  const auto& m = net.metrics();
  EXPECT_EQ(m.packets_injected, 4u);
  EXPECT_EQ(m.packets_ejected, 2u);
  EXPECT_EQ(m.packets_lost, 2u);
  EXPECT_EQ(m.flits_lost, 8u);
  // Conservation with losses: every offered flit is ejected or lost.
  EXPECT_EQ(m.flits_ejected + m.flits_lost, 14u);
  EXPECT_EQ(net.in_flight_flits(), 0u);
}

TEST(NocFaults, TransientRouterFaultHealsAndBackoffBridgesTheOutage) {
  MeshFixture f;
  FaultSchedule sched;
  // 100-cycle outage — well inside the exponential-backoff budget
  // (8 + 16 + ... + 1024 cycles), so a packet aimed at the dead router
  // must wait it out and deliver after the repair, not be lost.
  sched.add(NocFault{NocFaultKind::kRouter, 5, 0, 100});
  noc::Network net{f.topo, f.routing, with_schedule(sched)};
  noc::TraceTraffic gen{{
      {10, {0, 5, 4}},   // during the outage: delayed, then delivered
      {200, {0, 5, 4}},  // after repair: delivered promptly
  }};
  net.run(&gen, 300);
  ASSERT_TRUE(net.drain(10'000));
  const auto& m = net.metrics();
  EXPECT_EQ(m.packets_ejected, 2u);
  EXPECT_EQ(m.packets_lost, 0u);
  EXPECT_EQ(m.fault_events, 2u);  // down + repair
  EXPECT_GE(m.route_rebuilds, 2u);
  EXPECT_GE(m.retry_backoffs, 1u);  // the outage packet had to wait
  // The delayed packet dominates the latency spread.
  EXPECT_GT(m.packet_latency.max(), 90.0);
}

/// A 4x4 mesh with one wireless shortcut 0 <-> 15: when the WI at node 0
/// dies, the shortcut becomes unusable but its router keeps wire routing, so
/// traffic falls back to the wireline mesh without loss.
TEST(NocFaults, DeadWiFallsBackToWireline) {
  noc::Topology topo = noc::make_mesh(4, 4);
  topo.graph.add_edge(0, 15, graph::EdgeKind::kWireless);
  noc::WirelessConfig wireless;
  wireless.interfaces = {{0, 0}, {15, 0}};
  const noc::UpDownRouting routing{topo.graph, 2.5};

  auto run_with = [&](FaultSchedule sched) {
    noc::Network net{topo, routing, with_schedule(std::move(sched)), wireless};
    net.inject(0, 15, 4);
    net.inject(15, 0, 4);
    EXPECT_TRUE(net.drain(20'000));
    return net.metrics();
  };

  const auto healthy = run_with(FaultSchedule{});
  EXPECT_EQ(healthy.packets_ejected, 2u);
  EXPECT_GT(healthy.energy.wireless_flits, 0u);  // shortcut actually used

  FaultSchedule sched;
  sched.add(NocFault{NocFaultKind::kWi, 0, 0, kNeverRepaired});
  const auto degraded = run_with(std::move(sched));
  EXPECT_EQ(degraded.packets_ejected, 2u);
  EXPECT_EQ(degraded.packets_lost, 0u);
  EXPECT_EQ(degraded.energy.wireless_flits, 0u);  // wire-only fallback
  EXPECT_GT(degraded.energy.wire_hops, healthy.energy.wire_hops);
}

void expect_metrics_identical(const noc::Metrics& a, const noc::Metrics& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_ejected, b.packets_ejected);
  EXPECT_EQ(a.flits_ejected, b.flits_ejected);
  EXPECT_EQ(a.packet_latency.sum(), b.packet_latency.sum());
  EXPECT_EQ(a.packet_latency.count(), b.packet_latency.count());
  EXPECT_EQ(a.energy.wire_hops, b.energy.wire_hops);
  EXPECT_EQ(a.energy.switch_traversals, b.energy.switch_traversals);
  EXPECT_EQ(a.energy.buffer_writes, b.energy.buffer_writes);
  EXPECT_EQ(a.energy.buffer_reads, b.energy.buffer_reads);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.flits_lost, b.flits_lost);
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_EQ(a.route_rebuilds, b.route_rebuilds);
}

TEST(NocFaults, NeverFiringScheduleIsBitIdenticalToNoSchedule) {
  MeshFixture f;
  auto run_with = [&](noc::SimConfig cfg) {
    noc::Network net{f.topo, f.routing, std::move(cfg)};
    noc::UniformRandomTraffic gen{16, 0.06, 4, 11};
    net.run(&gen, 2'000);
    EXPECT_TRUE(net.drain(20'000));
    return net.metrics();
  };
  FaultSchedule far_future;
  far_future.add(
      NocFault{NocFaultKind::kLink, 0, 1'000'000'000, kNeverRepaired});
  expect_metrics_identical(run_with(with_schedule(std::move(far_future))),
                           run_with(noc::SimConfig{}));
}

TEST(NocFaults, FaultyRunReplaysBitIdentically) {
  MeshFixture f;
  auto run_once = [&] {
    FaultSchedule sched;
    sched.add(NocFault{NocFaultKind::kRouter, 6, 300, 900});
    sched.add(NocFault{NocFaultKind::kLink, 3, 100, kNeverRepaired});
    sched.add(NocFault{NocFaultKind::kLink, 17, 500, 1'200});
    noc::Network net{f.topo, f.routing, with_schedule(std::move(sched))};
    noc::UniformRandomTraffic gen{16, 0.08, 4, 23};
    net.run(&gen, 2'000);
    EXPECT_TRUE(net.drain(50'000));
    return net.metrics();
  };
  expect_metrics_identical(run_once(), run_once());
}

TEST(NocFaults, ScheduleValidatesIds) {
  MeshFixture f;
  FaultSchedule bad_edge;
  bad_edge.add(NocFault{NocFaultKind::kLink, 999, 0, kNeverRepaired});
  EXPECT_THROW((noc::Network{f.topo, f.routing, with_schedule(bad_edge)}),
               RequirementError);
  FaultSchedule bad_router;
  bad_router.add(NocFault{NocFaultKind::kRouter, 16, 0, kNeverRepaired});
  EXPECT_THROW((noc::Network{f.topo, f.routing, with_schedule(bad_router)}),
               RequirementError);
  // kWi on a node without a wireless interface is rejected too.
  FaultSchedule bad_wi;
  bad_wi.add(NocFault{NocFaultKind::kWi, 3, 0, kNeverRepaired});
  EXPECT_THROW((noc::Network{f.topo, f.routing, with_schedule(bad_wi)}),
               RequirementError);
}

}  // namespace
}  // namespace vfimr::faults
