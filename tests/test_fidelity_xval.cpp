// Cross-fidelity validation suite (DESIGN.md §12): the analytical band is
// only usable for design-space exploration if it tracks the cycle-accurate
// truth on the configurations the figures are built from.  Two contracts:
//
//  * Tolerance bands — on every golden configuration (all six apps, the
//    three systems: mesh baseline, VFI mesh, VFI WiNoC; fault-free and
//    fault-injected) the analytical latency/energy stays within the
//    committed bands: per-config latency error <= 25%, mean abs latency
//    error <= 15%, mean abs energy-per-flit error <= 15%.
//  * Frontier reproduction — Auto mode (analytical exploration +
//    cycle-accurate confirmation) picks the same Fig. 8 EDP argmin system
//    as a pure cycle-accurate comparison, and its confirmed report IS the
//    cycle-accurate report (bit-identical EDP), for every app.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <iterator>

#include "sysmodel/net_eval.hpp"
#include "sysmodel/sweep.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr::sysmodel {
namespace {

// Committed tolerance bands (also documented in DESIGN.md §12 — keep in
// sync).  The mean band is the fidelity contract a sweep integrates over;
// the per-config bands are diagnostic backstops.  Clean configs are tight:
// the M/D/1 model tracks the simulator within a few percent.  Faulty
// configs are wide by necessity: the dominant latency mass is a rare event
// (a packet in flight toward a router at its death instant freezes a whole
// backpressure cone for the 2040-cycle retry ladder, trapping a large slice
// of the offered load), and whether it fires in a given realization is
// luck.  Measured on the committed seeds: the same fault schedule leaves
// one app within 7% while another — with twice the dest-rate exposure —
// realizes the jam and lands at ~2x the analytical expectation.  No
// deterministic expected-value model can fit both; the mean is what the
// model promises.
constexpr double kMaxCleanLatencyErr = 0.10;   ///< per fault-free config
constexpr double kMaxFaultyLatencyErr = 0.60;  ///< per fault-injected config
constexpr double kMaxMeanLatencyErr = 0.15;    ///< over all configs
constexpr double kMaxMeanEnergyErr = 0.15;     ///< over all configs
// Both bands are evaluated at several traffic seeds and compared by their
// per-config means: the analytical band is an expected-value model, so the
// reference is averaged toward its expectation.  Each seed also reseeds
// the fault expansion, so the mean covers schedule variation too.
constexpr std::uint64_t kTrafficSeeds[] = {99, 7, 23};  ///< 99 = default

PlatformParams xval_params(SystemKind kind) {
  PlatformParams p;
  p.kind = kind;
  p.sim_cycles = 6'000;
  p.drain_cycles = 30'000;
  return p;
}

faults::FaultSpec xval_faults() {
  faults::FaultSpec spec;
  spec.link_rate = 40.0;
  spec.router_rate = 20.0;
  spec.wi_rate = 40.0;
  spec.transient_fraction = 0.7;
  spec.seed = 77;
  return spec;
}

double rel_err(double estimate, double truth) {
  if (truth == 0.0) return estimate == 0.0 ? 0.0 : 1.0;
  return std::abs(estimate - truth) / std::abs(truth);
}

TEST(FidelityXval, LatencyAndEnergyWithinToleranceBands) {
  const FullSystemSim sim;
  double latency_err_sum = 0.0;
  double energy_err_sum = 0.0;
  std::size_t configs = 0;

  for (workload::App app : workload::kAllApps) {
    const auto profile = workload::make_profile(app);
    for (SystemKind kind :
         {SystemKind::kNvfiMesh, SystemKind::kVfiMesh,
          SystemKind::kVfiWinoc}) {
      for (bool faulty : {false, true}) {
        double cycle_latency = 0.0, ana_latency = 0.0;
        double cycle_energy = 0.0, ana_energy = 0.0;
        for (const std::uint64_t seed : kTrafficSeeds) {
          PlatformParams params = xval_params(kind);
          params.traffic_seed = seed;
          if (faulty) params.faults = xval_faults();
          const BuiltPlatform built =
              build_platform(profile, params, sim.vf_table());

          const NetworkEval cycle = evaluate_network_traffic(
              built, built.node_traffic, profile.packet_flits, params,
              sim.models().noc);
          const NetworkEval analytical = evaluate_network_analytical(
              built, built.node_traffic, profile.packet_flits, params,
              sim.models().noc);
          // Both bands must deliver at every seed: a zero-traffic or
          // non-drained run would silently void the comparison.
          EXPECT_GT(cycle.flits_delivered, 0u);
          EXPECT_GT(analytical.flits_delivered, 0u);
          cycle_latency += cycle.avg_latency_cycles;
          ana_latency += analytical.avg_latency_cycles;
          cycle_energy += cycle.energy_per_flit_j;
          ana_energy += analytical.energy_per_flit_j;
        }
        const double seeds = static_cast<double>(std::size(kTrafficSeeds));
        cycle_latency /= seeds;
        ana_latency /= seeds;
        cycle_energy /= seeds;
        ana_energy /= seeds;

        const double lat_err = rel_err(ana_latency, cycle_latency);
        const double en_err = rel_err(ana_energy, cycle_energy);
        latency_err_sum += lat_err;
        energy_err_sum += en_err;
        ++configs;

        SCOPED_TRACE(profile.name() + " / " + system_name(kind) +
                     (faulty ? " / faulty" : " / clean"));
        std::printf(
            "xval %-8s %-10s %-6s  latency %8.2f vs %8.2f (%5.1f%%)  "
            "energy/flit %.3e vs %.3e (%5.1f%%)\n",
            profile.name().c_str(), system_name(kind).c_str(),
            faulty ? "faulty" : "clean", ana_latency, cycle_latency,
            lat_err * 100.0, ana_energy, cycle_energy, en_err * 100.0);
        EXPECT_LE(lat_err,
                  faulty ? kMaxFaultyLatencyErr : kMaxCleanLatencyErr);
      }
    }
  }
  const double mean_latency_err = latency_err_sum / configs;
  const double mean_energy_err = energy_err_sum / configs;
  std::printf("xval mean abs error over %zu configs: latency %.1f%%, "
              "energy %.1f%%\n",
              configs, mean_latency_err * 100.0, mean_energy_err * 100.0);
  EXPECT_LE(mean_latency_err, kMaxMeanLatencyErr);
  EXPECT_LE(mean_energy_err, kMaxMeanEnergyErr);
}

TEST(FidelityXval, AutoReproducesCycleAccurateEdpFrontier) {
  const FullSystemSim sim;
  for (workload::App app : workload::kAllApps) {
    const auto profile = workload::make_profile(app);
    SCOPED_TRACE(profile.name());
    PlatformParams params = xval_params(SystemKind::kNvfiMesh);

    // Ground truth: cycle-accurate three-system comparison.
    const SystemComparison cycle = compare_systems(profile, sim, params);
    const SystemReport* reports[] = {&cycle.nvfi_mesh, &cycle.vfi_mesh,
                                     &cycle.vfi_winoc};
    const SystemKind kinds[] = {SystemKind::kNvfiMesh, SystemKind::kVfiMesh,
                                SystemKind::kVfiWinoc};
    std::size_t best = 0;
    for (std::size_t i = 1; i < 3; ++i) {
      if (reports[i]->edp_js() < reports[best]->edp_js()) best = i;
    }

    const AutoComparison autoc = compare_systems_auto(profile, sim, params);
    std::printf("frontier %-8s cycle=%s auto=%s\n", profile.name().c_str(),
                system_name(kinds[best]).c_str(),
                system_name(autoc.frontier).c_str());
    EXPECT_EQ(autoc.frontier, kinds[best]);
    // The confirmation is a cycle-accurate run of the frontier system, so
    // it must agree exactly with the ground-truth report.
    EXPECT_EQ(autoc.confirmed.edp_js(), reports[best]->edp_js());
    EXPECT_EQ(autoc.confirmed_baseline.edp_js(), cycle.nvfi_mesh.edp_js());
  }
}

TEST(FidelityXval, PromotionsAreCountedOnTheSharedEvaluator) {
  const auto profile = workload::make_profile(workload::App::kHist);
  const FullSystemSim sim;
  NetworkEvaluator evaluator;
  PlatformParams params = xval_params(SystemKind::kNvfiMesh);
  params.net_eval = &evaluator;
  const AutoComparison autoc = compare_systems_auto(profile, sim, params);
  const auto stats = evaluator.stats();
  // Exploration ran analytically, confirmation cycle-accurately — both
  // bands must show activity, and every promotion was recorded.
  EXPECT_GT(stats.analytical_misses, 0u);
  EXPECT_GT(stats.cycle_misses, 0u);
  const std::uint64_t expected_promotions =
      autoc.frontier == SystemKind::kNvfiMesh ? 1u : 2u;
  EXPECT_EQ(stats.promotions, expected_promotions);
}

}  // namespace
}  // namespace vfimr::sysmodel
