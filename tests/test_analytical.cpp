// Seeded property tests for the analytical hop-by-hop NoC band
// (noc/analytical.hpp, DESIGN.md §12).  The properties pin the model's
// structural invariants — the cross-fidelity *accuracy* contract lives in
// test_fidelity_xval.cpp:
//
//  * zero traffic        => zero queueing latency (and empty metrics);
//  * heavier load        => per-link waits, and thus mean latency, never
//                           decrease (M/D/1 waits are monotone in lambda);
//  * per-pair latency    >= the deterministic hop count plus the wormhole
//                           serialization floor (no teleporting);
//  * fault-pruned links  => never carry analytical traffic, and routes
//                           re-form around them;
//  * equal inputs        => bit-identical Metrics (deterministic replay
//                           under VFIMR_PROPERTY_SEED).

#include <gtest/gtest.h>

#include <cmath>

#include "harness/property.hpp"
#include "noc/analytical.hpp"
#include "noc/topology.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr::noc {
namespace {

constexpr std::uint32_t kFlits = 4;

/// 8x8 mesh + XY routing, the baseline platform of every figure.
struct MeshFixture {
  Topology topo = make_mesh(8, 8);
  XyRouting routing{topo.graph, 8, 8};
  std::size_t n = topo.node_count();
};

Matrix random_traffic(Rng& rng, std::size_t n, std::size_t pairs,
                      double max_rate) {
  Matrix m{n, n};
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto s = static_cast<std::size_t>(rng.uniform_u64(n));
    const auto d = static_cast<std::size_t>(rng.uniform_u64(n));
    if (s == d) continue;
    m(s, d) += rng.uniform(0.1, 1.0) * max_rate;
  }
  return m;
}

TEST(Analytical, ZeroTrafficMeansZeroQueueingLatency) {
  MeshFixture f;
  const AnalyticalNocModel model{f.topo, f.routing, {}, {}};

  // All-zero matrix: nothing moves, nothing is counted.
  AnalyticalDetail detail;
  const Metrics empty = model.evaluate(Matrix{f.n, f.n}, kFlits, &detail);
  EXPECT_EQ(empty.packets_injected, 0u);
  EXPECT_EQ(empty.flits_ejected, 0u);
  EXPECT_EQ(empty.energy.switch_traversals, 0u);
  EXPECT_EQ(empty.packet_latency.count(), 0u);
  EXPECT_EQ(detail.max_link_utilization, 0.0);

  // A single vanishing flow: at lambda -> 0 the M/D/1 waits vanish, so the
  // latency is exactly the deterministic path delay (zero queueing).
  test::for_each_seed(8, [&](Rng& rng, std::uint64_t) {
    const auto s = static_cast<graph::NodeId>(rng.uniform_u64(f.n));
    auto d = static_cast<graph::NodeId>(rng.uniform_u64(f.n));
    if (s == d) d = (d + 1) % f.n;
    Matrix m{f.n, f.n};
    m(s, d) = 1e-9;
    AnalyticalDetail dt;
    (void)model.evaluate(m, kFlits, &dt);
    EXPECT_NEAR(dt.pair_queueing_cycles(s, d), 0.0, 1e-6);
  });
}

TEST(Analytical, LatencyMonotoneInInjectedLoad) {
  MeshFixture f;
  const AnalyticalNocModel model{f.topo, f.routing, {}, {}};
  test::for_each_seed(8, [&](Rng& rng, std::uint64_t) {
    const Matrix base = random_traffic(rng, f.n, 40, 0.02);
    double prev = 0.0;
    for (const double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      Matrix m = base;
      for (double& v : m.data()) v *= scale;
      const Metrics metrics = model.evaluate(m, kFlits);
      const double latency = metrics.avg_latency();
      EXPECT_GE(latency + 1e-9, prev)
          << "mean latency decreased when load grew (scale " << scale << ")";
      prev = latency;
    }
  });
}

TEST(Analytical, HopCountLowerBoundRespected) {
  MeshFixture f;
  const AnalyticalNocModel model{f.topo, f.routing, {}, {}};
  const auto bfs = graph::all_pairs_hops(f.topo.graph);
  test::for_each_seed(8, [&](Rng& rng, std::uint64_t) {
    const Matrix m = random_traffic(rng, f.n, 60, 0.01);
    AnalyticalDetail detail;
    (void)model.evaluate(m, kFlits, &detail);
    for (graph::NodeId s = 0; s < f.n; ++s) {
      for (graph::NodeId d = 0; d < f.n; ++d) {
        if (s == d || m(s, d) <= 0.0) continue;
        // The deterministic route can never beat the BFS shortest path...
        const std::uint32_t hops = model.route_hops(s, d);
        ASSERT_GE(hops, bfs[s][d]);
        // ...and the latency estimate can never beat the pure pipeline
        // floor: one cycle per hop plus the F-1 tail serialization.
        EXPECT_GE(detail.pair_latency_cycles(s, d),
                  static_cast<double>(hops) + (kFlits - 1));
      }
    }
  });
}

TEST(Analytical, FaultPrunedLinksNeverCarryTraffic) {
  MeshFixture f;
  test::for_each_seed(8, [&](Rng& rng, std::uint64_t) {
    // Knock out a few random permanent edges (whole window downtime).
    AnalyticalConfig cfg;
    std::vector<graph::EdgeId> dead;
    for (int i = 0; i < 4; ++i) {
      const auto e = static_cast<graph::EdgeId>(
          rng.uniform_u64(f.topo.graph.edge_count()));
      faults::NocFault fault;
      fault.kind = faults::NocFaultKind::kLink;
      fault.id = e;
      fault.at_cycle = 0;
      cfg.faults.add(fault);
      dead.push_back(e);
    }
    const AnalyticalNocModel model{f.topo, f.routing, {}, cfg};
    ASSERT_TRUE(model.degraded());
    for (graph::EdgeId e : dead) EXPECT_FALSE(model.edge_usable()[e]);

    // Uniform all-pairs traffic: the strongest probe that no flow sneaks
    // over a pruned link.
    Matrix m{f.n, f.n};
    for (std::size_t s = 0; s < f.n; ++s)
      for (std::size_t d = 0; d < f.n; ++d)
        if (s != d) m(s, d) = 1e-4;
    AnalyticalDetail detail;
    const Metrics metrics = model.evaluate(m, kFlits, &detail);
    for (graph::EdgeId e : dead) {
      EXPECT_EQ(detail.dir_link_packets_per_cycle[e * 2 + 0], 0.0);
      EXPECT_EQ(detail.dir_link_packets_per_cycle[e * 2 + 1], 0.0);
    }
    // A mesh minus four edges stays overwhelmingly connected: the rebuilt
    // routes must still deliver nearly everything.
    EXPECT_GT(metrics.packets_ejected, 0u);
  });
}

TEST(Analytical, DeterministicReplay) {
  // Same inputs, two independently constructed models (one of them on the
  // irregular WiNoC platform): bit-identical Metrics.
  const auto profile = workload::make_profile(workload::App::kWC);
  const sysmodel::FullSystemSim sim;
  sysmodel::PlatformParams params;
  params.kind = sysmodel::SystemKind::kVfiWinoc;
  const sysmodel::BuiltPlatform built =
      sysmodel::build_platform(profile, params, sim.vf_table());

  test::for_each_seed(4, [&](Rng& rng, std::uint64_t) {
    AnalyticalConfig cfg;
    cfg.node_cluster = winoc::quadrant_clusters();
    const Matrix m =
        random_traffic(rng, built.topology.node_count(), 50, 0.01);
    const AnalyticalNocModel a{built.topology, *built.routing, built.wireless,
                               cfg};
    const AnalyticalNocModel b{built.topology, *built.routing, built.wireless,
                               cfg};
    const Metrics ma = a.evaluate(m, kFlits);
    const Metrics mb = b.evaluate(m, kFlits);
    EXPECT_EQ(ma.packets_ejected, mb.packets_ejected);
    EXPECT_EQ(ma.packets_injected, mb.packets_injected);
    EXPECT_EQ(ma.flits_ejected, mb.flits_ejected);
    EXPECT_EQ(ma.packet_latency.mean(), mb.packet_latency.mean());
    EXPECT_EQ(ma.energy.switch_traversals, mb.energy.switch_traversals);
    EXPECT_EQ(ma.energy.wire_hops, mb.energy.wire_hops);
    EXPECT_EQ(ma.energy.wire_mm_flits, mb.energy.wire_mm_flits);
    EXPECT_EQ(ma.energy.wireless_flits, mb.energy.wireless_flits);
    EXPECT_EQ(ma.energy.buffer_reads, mb.energy.buffer_reads);
    EXPECT_EQ(ma.energy.buffer_writes, mb.energy.buffer_writes);
  });
}

}  // namespace
}  // namespace vfimr::noc
