#include "mapreduce/engine.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace vfimr::mr {
namespace {

using CountEngine = Engine<std::string, std::uint64_t>;

CountEngine::Options opts(std::size_t workers) {
  CountEngine::Options o;
  o.scheduler.workers = workers;
  return o;
}

TEST(Engine, SumCombinerCountsKeys) {
  CountEngine engine{opts(2)};
  const auto result =
      engine.run(4, [](std::size_t task, CountEngine::Emitter& em) {
        em.emit("common", 1);
        if (task % 2 == 0) em.emit("even", 1);
      });
  std::map<std::string, std::uint64_t> got;
  for (const auto& kv : result.pairs) got[kv.key] = kv.value;
  EXPECT_EQ(got.at("common"), 4u);
  EXPECT_EQ(got.at("even"), 2u);
  EXPECT_EQ(result.profile.unique_keys, 2u);
  EXPECT_EQ(result.profile.emitted_pairs, 6u);
}

TEST(Engine, OutputIsSortedByKey) {
  CountEngine engine{opts(4)};
  const auto result =
      engine.run(26, [](std::size_t task, CountEngine::Emitter& em) {
        em.emit(std::string(1, static_cast<char>('z' - task)), 1);
      });
  ASSERT_EQ(result.pairs.size(), 26u);
  for (std::size_t i = 1; i < result.pairs.size(); ++i) {
    EXPECT_LT(result.pairs[i - 1].key, result.pairs[i].key);
  }
}

TEST(Engine, WorkerCountDoesNotChangeResult) {
  auto run_with = [](std::size_t workers) {
    CountEngine engine{opts(workers)};
    auto result =
        engine.run(50, [](std::size_t task, CountEngine::Emitter& em) {
          em.emit("k" + std::to_string(task % 7), task);
        });
    std::map<std::string, std::uint64_t> got;
    for (const auto& kv : result.pairs) got[kv.key] = kv.value;
    return got;
  };
  const auto ref = run_with(1);
  for (std::size_t w : {2u, 3u, 8u}) {
    EXPECT_EQ(run_with(w), ref) << w << " workers";
  }
}

TEST(Engine, ReplaceCombinerKeepsLastValue) {
  using RepEngine =
      Engine<std::uint32_t, std::uint64_t, ReplaceCombiner<std::uint64_t>>;
  RepEngine::Options o;
  o.scheduler.workers = 1;  // deterministic emission order per worker
  RepEngine engine{o};
  const auto result =
      engine.run(3, [](std::size_t task, RepEngine::Emitter& em) {
        em.emit(7, task);  // same worker emits 0, 1, 2 in task order
      });
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].value, 2u);
}

TEST(Engine, MinMaxCombiners) {
  using MinEngine = Engine<int, int, MinCombiner<int>>;
  MinEngine::Options o;
  o.scheduler.workers = 1;
  MinEngine engine{o};
  const auto result = engine.run(5, [](std::size_t task, MinEngine::Emitter& em) {
    em.emit(0, static_cast<int>(10 - task));
  });
  EXPECT_EQ(result.pairs.at(0).value, 6);
}

TEST(Engine, ShuffleMatrixAccountsLocalKeys) {
  CountEngine::Options o;
  o.scheduler.workers = 2;
  o.reduce_partitions = 4;
  CountEngine engine{o};
  const auto result =
      engine.run(8, [](std::size_t task, CountEngine::Emitter& em) {
        em.emit("key" + std::to_string(task), 1);
      });
  const auto& shuffle = result.profile.shuffle_pairs;
  EXPECT_EQ(shuffle.rows(), 2u);
  EXPECT_EQ(shuffle.cols(), 4u);
  // Every distinct worker-local key contributes one shuffle unit.
  EXPECT_DOUBLE_EQ(shuffle.sum(), 8.0);
}

TEST(Engine, BucketedReduceMatchesSingleWorkerReference) {
  // Regression for the quadratic reduce: the per-(worker, partition) bucket
  // pass must visit each worker's pairs exactly once and reproduce the exact
  // combiner sequence of the reference path — colliding keys across many
  // partitions (parts >> unique keys) stress the re-bucketing.
  auto run_with = [](std::size_t workers, std::size_t parts) {
    CountEngine::Options o;
    o.scheduler.workers = workers;
    o.reduce_partitions = parts;
    CountEngine engine{o};
    return engine.run(60, [](std::size_t task, CountEngine::Emitter& em) {
      em.emit("k" + std::to_string(task % 5), task);
      em.emit("shared", 1);
    });
  };
  const auto ref = run_with(1, 1);
  for (std::size_t workers : {2u, 4u}) {
    for (std::size_t parts : {3u, 16u, 64u}) {
      const auto got = run_with(workers, parts);
      ASSERT_EQ(got.pairs.size(), ref.pairs.size())
          << workers << " workers, " << parts << " partitions";
      for (std::size_t i = 0; i < ref.pairs.size(); ++i) {
        EXPECT_EQ(got.pairs[i].key, ref.pairs[i].key);
        EXPECT_EQ(got.pairs[i].value, ref.pairs[i].value);
      }
      // Shuffle accounting covers every distinct worker-local key exactly
      // once: at least one unit per globally unique key, at most one per
      // unique key per worker.
      EXPECT_GE(got.profile.shuffle_pairs.sum(), 6.0);
      EXPECT_LE(got.profile.shuffle_pairs.sum(),
                6.0 * static_cast<double>(workers));
    }
  }
}

TEST(Engine, NoTasksProducesEmptyResult) {
  CountEngine engine{opts(2)};
  const auto result =
      engine.run(0, [](std::size_t, CountEngine::Emitter&) { FAIL(); });
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_EQ(result.profile.emitted_pairs, 0u);
}

TEST(Engine, PhaseTimesPopulated) {
  CountEngine engine{opts(2)};
  const auto result =
      engine.run(10, [](std::size_t task, CountEngine::Emitter& em) {
        em.emit(std::to_string(task), 1);
      });
  EXPECT_GT(result.profile.phases.map_s, 0.0);
  EXPECT_GT(result.profile.phases.reduce_s, 0.0);
  EXPECT_GE(result.profile.phases.merge_s, 0.0);
  EXPECT_GT(result.profile.phases.total_s(), 0.0);
}

TEST(JobProfileTest, MergeAccumulates) {
  JobProfile a;
  a.phases.map_s = 1.0;
  a.emitted_pairs = 10;
  a.unique_keys = 4;
  a.map_stats.tasks_executed = {3, 7};
  a.map_stats.busy_seconds = {0.1, 0.2};
  a.map_stats.tasks_stolen = {0, 1};
  a.shuffle_pairs = Matrix{2, 2, 1.0};

  JobProfile b;
  b.phases.map_s = 2.0;
  b.emitted_pairs = 5;
  b.unique_keys = 9;
  b.map_stats.tasks_executed = {1, 1};
  b.map_stats.busy_seconds = {0.3, 0.4};
  b.map_stats.tasks_stolen = {2, 0};
  b.shuffle_pairs = Matrix{2, 2, 0.5};

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.phases.map_s, 3.0);
  EXPECT_EQ(a.emitted_pairs, 15u);
  EXPECT_EQ(a.unique_keys, 9u);  // max
  EXPECT_EQ(a.map_stats.tasks_executed[0], 4u);
  EXPECT_DOUBLE_EQ(a.map_stats.busy_seconds[1], 0.6);
  EXPECT_DOUBLE_EQ(a.shuffle_pairs(0, 0), 1.5);
}

class EnginePartitionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EnginePartitionSweep, PartitionCountPreservesResults) {
  CountEngine::Options o;
  o.scheduler.workers = 4;
  o.reduce_partitions = GetParam();
  CountEngine engine{o};
  const auto result =
      engine.run(40, [](std::size_t task, CountEngine::Emitter& em) {
        em.emit("k" + std::to_string(task % 11), 1);
      });
  EXPECT_EQ(result.pairs.size(), 11u);
  std::uint64_t total = 0;
  for (const auto& kv : result.pairs) total += kv.value;
  EXPECT_EQ(total, 40u);
}

INSTANTIATE_TEST_SUITE_P(Partitions, EnginePartitionSweep,
                         ::testing::Values(1u, 2u, 5u, 16u));

}  // namespace
}  // namespace vfimr::mr
