#include "common/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace vfimr {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t{{"A", "Long header"}};
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| A      |"), std::string::npos);
  EXPECT_NE(s.find("| longer |"), std::string::npos);
  EXPECT_NE(s.find("Long header"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t{{"A", "B"}};
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(TextTable, CsvEscaping) {
  TextTable t{{"name", "value"}};
  t.add_row({"has,comma", "has\"quote"});
  t.add_row({"plain", "x"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("plain,x"), std::string::npos);
}

TEST(TextTable, WriteCsvRoundTrip) {
  TextTable t{{"k", "v"}};
  t.add_row({"a", "1"});
  const std::string path = ::testing::TempDir() + "vfimr_table_test.csv";
  t.write_csv(path);
  std::ifstream f{path};
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "k,v");
  std::getline(f, line);
  EXPECT_EQ(line, "a,1");
  std::remove(path.c_str());
}

TEST(TextTable, WriteCsvBadPathThrows) {
  TextTable t{{"k"}};
  EXPECT_THROW(t.write_csv("/nonexistent_dir_zz/x.csv"), std::runtime_error);
}

TEST(ParseCsv, SimpleRows) {
  const auto rows = parse_csv("a,b\n1,2\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(ParseCsv, QuotedSpecials) {
  const auto rows = parse_csv("\"a,b\",\"say \"\"hi\"\"\",\"two\nlines\"\r\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0],
            (std::vector<std::string>{"a,b", "say \"hi\"", "two\nlines"}));
}

TEST(ParseCsv, EmptyAndEdgeCells) {
  EXPECT_TRUE(parse_csv("").empty());
  const auto rows = parse_csv("a,\n,b\n\"\"\n");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", ""}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"", "b"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{""}));
}

TEST(ParseCsv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("\"oops\n"), std::runtime_error);
}

TEST(ParseCsv, RoundTripsEveryCsvSpecial) {
  // The satellite bug this guards: cells with commas, quotes, newlines AND
  // bare carriage returns must survive to_csv -> parse_csv unchanged.
  const std::vector<std::string> header = {"plain", "com,ma", "qu\"ote"};
  const std::vector<std::vector<std::string>> bodies = {
      {"multi\nline", "tab\tok", "cr\rreturn"},
      {"", "\"", "\r\n"},
      {",", "a,b,\"c\"\nd\re", "  spaced  "},
  };
  TextTable t{header};
  for (const auto& row : bodies) t.add_row(row);

  const auto parsed = parse_csv(t.to_csv());
  ASSERT_EQ(parsed.size(), bodies.size() + 1);
  EXPECT_EQ(parsed[0], header);
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    EXPECT_EQ(parsed[i + 1], bodies[i]) << "row " << i;
  }
}

TEST(Format, Fmt) {
  EXPECT_EQ(fmt(1.23456), "1.235");
  EXPECT_EQ(fmt(1.23456, 1), "1.2");
  EXPECT_EQ(fmt(-0.5, 2), "-0.50");
}

TEST(Format, FmtPct) {
  EXPECT_EQ(fmt_pct(0.337), "33.7%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

}  // namespace
}  // namespace vfimr
