// Edge-case and error-path tests: stealing_cap() boundaries, reduce
// hash-partition boundaries, and VFIMR_REQUIRE-guarded invalid-config
// handling across the public constructors.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/require.hpp"
#include "mapreduce/engine.hpp"
#include "mapreduce/scheduler.hpp"
#include "power/core_power.hpp"
#include "power/vf_table.hpp"
#include "sysmodel/task_sim.hpp"

namespace vfimr {
namespace {

// ---------------------------------------------------------------- Eq. 3 cap

TEST(StealingCapEdge, ZeroTasksYieldsZeroCap) {
  EXPECT_EQ(mr::stealing_cap(0, 4, 0.5), 0u);
  EXPECT_EQ(mr::stealing_cap(0, 1, 0.9), 0u);
}

TEST(StealingCapEdge, SingleCoreKeepsItsShare) {
  // One core: N/C = N, so the cap is floor(N * rel_freq).
  EXPECT_EQ(mr::stealing_cap(10, 1, 0.5), 5u);
  EXPECT_EQ(mr::stealing_cap(10, 1, 0.99), 9u);  // floor, not round
  EXPECT_EQ(mr::stealing_cap(1, 1, 0.5), 0u);
}

TEST(StealingCapEdge, FmaxCoreIsNeverCapped) {
  EXPECT_EQ(mr::stealing_cap(100, 8, 1.0), 100u);
  EXPECT_EQ(mr::stealing_cap(0, 8, 1.0), 0u);
}

TEST(StealingCapEdge, CapAtLeastDequeShareBehavesAsUncapped) {
  // rel_freq high enough that the cap >= the worker's block share: the
  // scheduler must finish every task with per-worker counts summing to N.
  mr::SchedulerConfig cfg;
  cfg.workers = 4;
  cfg.vfi_stealing_cap = true;
  cfg.rel_freq = {1.0, 0.999, 1.0, 1.0};  // cap(0.999) = floor(N/C * .999)
  mr::TaskScheduler sched{cfg};
  const auto stats = sched.run(400, [](std::size_t, std::size_t) {});
  std::uint64_t total = 0;
  for (std::uint64_t e : stats.tasks_executed) total += e;
  EXPECT_EQ(total, 400u);
  // Worker 1's cap is 99 tasks (floor(100 * 0.999)) — never exceeded.
  EXPECT_LE(stats.tasks_executed[1], mr::stealing_cap(400, 4, 0.999));
}

TEST(StealingCapEdge, InvalidArgumentsThrow) {
  EXPECT_THROW(mr::stealing_cap(10, 0, 0.5), RequirementError);
  EXPECT_THROW(mr::stealing_cap(10, 4, 0.0), RequirementError);
  EXPECT_THROW(mr::stealing_cap(10, 4, -0.5), RequirementError);
  EXPECT_THROW(mr::stealing_cap(10, 4, 1.5), RequirementError);
}

// ------------------------------------------- reduce hash-partition borders

using CountEngine = mr::Engine<std::string, std::uint64_t>;

/// Hash functor colliding every key into one bucket.
struct CollidingHash {
  std::size_t operator()(const std::string&) const { return 42; }
};

TEST(ReducePartitionEdge, MorePartitionsThanKeysLeavesEmptyPartitions) {
  CountEngine::Options o;
  o.scheduler.workers = 2;
  o.reduce_partitions = 16;  // only 3 keys -> at least 13 empty partitions
  CountEngine engine{o};
  const auto result =
      engine.run(9, [](std::size_t task, CountEngine::Emitter& em) {
        em.emit("k" + std::to_string(task % 3), 1);
      });
  ASSERT_EQ(result.pairs.size(), 3u);
  for (const auto& kv : result.pairs) EXPECT_EQ(kv.value, 3u);
  EXPECT_EQ(result.profile.shuffle_pairs.cols(), 16u);
}

TEST(ReducePartitionEdge, SingleKeyAcrossManyWorkersAndPartitions) {
  CountEngine::Options o;
  o.scheduler.workers = 8;
  o.reduce_partitions = 8;
  CountEngine engine{o};
  const auto result =
      engine.run(64, [](std::size_t, CountEngine::Emitter& em) {
        em.emit("only", 1);
      });
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].key, "only");
  EXPECT_EQ(result.pairs[0].value, 64u);
  // A single key lands in exactly one partition: every nonzero shuffle
  // entry sits in the same column (workers that executed no map task have
  // empty rows, so only the column is deterministic).
  const auto& shuffle = result.profile.shuffle_pairs;
  std::size_t nonzero_columns = 0;
  for (std::size_t p = 0; p < shuffle.cols(); ++p) {
    double col = 0.0;
    for (std::size_t w = 0; w < shuffle.rows(); ++w) col += shuffle(w, p);
    if (col > 0.0) ++nonzero_columns;
  }
  EXPECT_EQ(nonzero_columns, 1u);
  EXPECT_GE(shuffle.sum(), 1.0);
  EXPECT_LE(shuffle.sum(), 8.0);
}

TEST(ReducePartitionEdge, AllKeysCollidingIntoOnePartition) {
  using CollideEngine =
      mr::Engine<std::string, std::uint64_t, mr::SumCombiner<std::uint64_t>,
                 CollidingHash>;
  CollideEngine::Options o;
  o.scheduler.workers = 4;
  o.reduce_partitions = 4;
  CollideEngine engine{o};
  const auto result =
      engine.run(20, [](std::size_t task, CollideEngine::Emitter& em) {
        em.emit("k" + std::to_string(task), 1);
      });
  // Correctness is preserved even though one reducer does all the work.
  ASSERT_EQ(result.pairs.size(), 20u);
  const std::size_t column = 42 % 4;
  for (std::size_t w = 0; w < 4; ++w) {
    for (std::size_t p = 0; p < 4; ++p) {
      if (p != column) {
        EXPECT_DOUBLE_EQ(result.profile.shuffle_pairs(w, p), 0.0)
            << "partition " << p << " should be empty";
      }
    }
  }
}

TEST(ReducePartitionEdge, OnePartitionTotalIsValid) {
  CountEngine::Options o;
  o.scheduler.workers = 4;
  o.reduce_partitions = 1;
  CountEngine engine{o};
  const auto result =
      engine.run(12, [](std::size_t task, CountEngine::Emitter& em) {
        em.emit("k" + std::to_string(task % 5), 1);
      });
  EXPECT_EQ(result.pairs.size(), 5u);
}

// ------------------------------------------------- require.hpp error paths

TEST(RequireError, ThrowsRequirementErrorWithContext) {
  try {
    VFIMR_REQUIRE(1 + 1 == 3);
    FAIL() << "VFIMR_REQUIRE(false) must throw";
  } catch (const RequirementError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("test_edge_cases.cpp"), std::string::npos) << what;
  }
}

TEST(RequireError, MessageVariantStreamsDetails) {
  try {
    const int workers = 0;
    VFIMR_REQUIRE_MSG(workers > 0, "need workers, got " << workers);
    FAIL() << "VFIMR_REQUIRE_MSG(false) must throw";
  } catch (const RequirementError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("need workers, got 0"), std::string::npos) << what;
  }
}

TEST(RequireError, PassingRequireDoesNotThrow) {
  EXPECT_NO_THROW(VFIMR_REQUIRE(true));
  EXPECT_NO_THROW(VFIMR_REQUIRE_MSG(2 > 1, "fine"));
}

// ------------------------------------------------- invalid configurations

TEST(InvalidConfig, ZeroWorkerSchedulerThrows) {
  mr::SchedulerConfig cfg;
  cfg.workers = 0;
  EXPECT_THROW(mr::TaskScheduler{cfg}, RequirementError);
}

TEST(InvalidConfig, RelFreqSizeMismatchThrows) {
  mr::SchedulerConfig cfg;
  cfg.workers = 4;
  cfg.rel_freq = {1.0, 0.5};  // 2 entries for 4 workers
  EXPECT_THROW(mr::TaskScheduler{cfg}, RequirementError);
}

TEST(InvalidConfig, RelFreqOutOfRangeThrows) {
  mr::SchedulerConfig cfg;
  cfg.workers = 2;
  cfg.rel_freq = {1.0, 0.0};
  EXPECT_THROW(mr::TaskScheduler{cfg}, RequirementError);
  cfg.rel_freq = {1.0, 1.5};
  EXPECT_THROW(mr::TaskScheduler{cfg}, RequirementError);
}

TEST(InvalidConfig, ZeroWorkerEngineThrows) {
  CountEngine::Options o;
  o.scheduler.workers = 0;
  EXPECT_THROW(CountEngine{o}, RequirementError);
}

TEST(InvalidConfig, NegativeFrequencyVfTableThrows) {
  EXPECT_THROW(power::VfTable({{0.8, -2.0e9}}), RequirementError);
  EXPECT_THROW(power::VfTable({{0.8, 0.0}}), RequirementError);
  EXPECT_THROW(power::VfTable({{-0.8, 2.0e9}}), RequirementError);
}

TEST(InvalidConfig, UnsortedOrEmptyVfTableThrows) {
  EXPECT_THROW(power::VfTable({{0.8, 2.0e9}, {0.6, 1.5e9}}),
               RequirementError);
  EXPECT_THROW(power::VfTable(std::vector<power::VfPoint>{}),
               RequirementError);
}

TEST(InvalidConfig, ForeignVfPointLookupThrows) {
  const power::VfTable& table = power::VfTable::standard();
  EXPECT_THROW(table.index_of(power::VfPoint{0.55, 1.23e9}),
               RequirementError);
}

TEST(InvalidConfig, CorePowerModelRejectsBadParams) {
  power::CorePowerParams p;
  p.ceff_f = 0.0;
  EXPECT_THROW(power::CorePowerModel{p}, RequirementError);
  p = power::CorePowerParams{};
  p.idle_activity = 1.5;
  EXPECT_THROW(power::CorePowerModel{p}, RequirementError);
  const power::CorePowerModel model;
  EXPECT_THROW(model.power_w(-0.1, power::VfTable::standard().max()),
               RequirementError);
  EXPECT_THROW(model.leakage_w(0.0), RequirementError);
}

TEST(InvalidConfig, TaskSimRejectsBadCoresAndScale) {
  const std::vector<sysmodel::SimTask> tasks{{1e6, 0.0}};
  EXPECT_THROW(sysmodel::simulate_phase(tasks, {}, 1.0,
                                        sysmodel::StealingPolicy::kPhoenixDefault),
               RequirementError);
  const std::vector<sysmodel::SimCore> cores{{2.5e9, 1.0}};
  EXPECT_THROW(sysmodel::simulate_phase(tasks, cores, 0.0,
                                        sysmodel::StealingPolicy::kPhoenixDefault),
               RequirementError);
  const std::vector<sysmodel::SimCore> bad_freq{{0.0, 1.0}};
  EXPECT_THROW(sysmodel::simulate_phase(tasks, bad_freq, 1.0,
                                        sysmodel::StealingPolicy::kPhoenixDefault),
               RequirementError);
}

}  // namespace
}  // namespace vfimr
