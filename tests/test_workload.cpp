#include "workload/profile.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "workload/generators.hpp"

namespace vfimr::workload {
namespace {

TEST(AppNames, AllDistinct) {
  std::set<std::string> names;
  for (App app : kAllApps) {
    names.insert(app_name(app));
    EXPECT_FALSE(app_dataset(app).empty());
  }
  EXPECT_EQ(names.size(), 6u);
}

TEST(Generators, UtilizationCohortLayout) {
  Rng rng{61};
  const auto u = make_utilization(
      10, {{4, 0.9, 0.001}, {6, 0.3, 0.001}}, rng);
  ASSERT_EQ(u.size(), 10u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(u[i], 0.9, 0.02);
  for (std::size_t i = 4; i < 10; ++i) EXPECT_NEAR(u[i], 0.3, 0.02);
}

TEST(Generators, UtilizationClampedToUnit) {
  Rng rng{62};
  const auto u = make_utilization(64, {{64, 0.99, 0.5}}, rng);
  for (double v : u) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Generators, CohortSizeMismatchRejected) {
  Rng rng{63};
  EXPECT_THROW(make_utilization(10, {{4, 0.5, 0.1}}, rng), RequirementError);
}

TEST(Generators, TrafficSumsToTotalRate) {
  Rng rng{64};
  TrafficSpec spec;
  spec.total_rate = 0.42;
  const auto m = make_traffic(64, spec, {0, 1}, rng);
  EXPECT_NEAR(m.sum(), 0.42, 1e-9);
}

TEST(Generators, TrafficHasNoSelfEntries) {
  Rng rng{65};
  const auto m = make_traffic(64, TrafficSpec{}, {0}, rng);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(m(i, i), 0.0);
  }
}

TEST(Generators, FractionsOverOneRejected) {
  Rng rng{66};
  TrafficSpec spec;
  spec.frac_neighbor = 0.6;
  spec.frac_shuffle = 0.6;
  EXPECT_THROW(make_traffic(64, spec, {}, rng), RequirementError);
}

TEST(Generators, MasterHotspotPresent) {
  Rng rng{67};
  TrafficSpec spec;
  spec.frac_neighbor = 0.0;
  spec.frac_shuffle = 0.0;
  spec.frac_master = 1.0;
  const auto m = make_traffic(16, spec, {3}, rng);
  double master_traffic = 0.0;
  for (std::size_t t = 0; t < 16; ++t) {
    master_traffic += m(3, t) + m(t, 3);
  }
  EXPECT_NEAR(master_traffic, m.sum(), 1e-12);
}

TEST(Generators, ClusterTrafficAggregation) {
  Matrix m{4, 4};
  m(0, 2) = 1.0;  // cluster 0 -> 1
  m(1, 0) = 2.0;  // intra cluster 0
  m(3, 2) = 4.0;  // intra cluster 1
  const std::vector<std::size_t> assign = {0, 0, 1, 1};
  const auto ct = cluster_traffic(m, assign, 2);
  EXPECT_DOUBLE_EQ(ct(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ct(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(ct(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(ct(1, 0), 0.0);
}

TEST(Profiles, OnlySixtyFourThreadsSupported) {
  ProfileParams p;
  p.threads = 32;
  EXPECT_THROW(make_profile(App::kWC, p), RequirementError);
}

TEST(Profiles, Deterministic) {
  const auto a = make_profile(App::kKmeans);
  const auto b = make_profile(App::kKmeans);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.traffic, b.traffic);
}

TEST(Profiles, IterationCounts) {
  // §7: Kmeans and PCA run two MapReduce iterations; the rest one.
  EXPECT_EQ(make_profile(App::kKmeans).iterations, 2);
  EXPECT_EQ(make_profile(App::kPCA).iterations, 2);
  for (App app : {App::kHist, App::kLR, App::kMM, App::kWC}) {
    EXPECT_EQ(make_profile(app).iterations, 1) << app_name(app);
  }
}

TEST(Profiles, UtilizationShapesMatchFig2) {
  // Kmeans and WC: widely varying; MM/HIST/PCA: nearly homogeneous.
  EXPECT_GT(coeff_variation(make_profile(App::kKmeans).utilization), 0.20);
  EXPECT_GT(coeff_variation(make_profile(App::kWC).utilization), 0.10);
  EXPECT_LT(coeff_variation(make_profile(App::kMM).utilization), 0.10);
  EXPECT_LT(coeff_variation(make_profile(App::kPCA).utilization), 0.10);
  EXPECT_LT(coeff_variation(make_profile(App::kHist).utilization), 0.10);
}

TEST(Profiles, BottleneckRatioOrderingMatchesFig5) {
  const double pca = make_profile(App::kPCA).bottleneck_utilization() /
                     make_profile(App::kPCA).mean_utilization();
  const double mm = make_profile(App::kMM).bottleneck_utilization() /
                    make_profile(App::kMM).mean_utilization();
  const double hist = make_profile(App::kHist).bottleneck_utilization() /
                      make_profile(App::kHist).mean_utilization();
  EXPECT_GT(pca, mm);
  EXPECT_GT(mm, hist);
  EXPECT_GT(hist, 1.0);
}

TEST(Profiles, LrHasHighestInjectionRate) {
  // §7.3: "LR application has the highest traffic injection rate" — measured
  // in flits (large data units).
  const double lr_flits = make_profile(App::kLR).traffic.sum() *
                          make_profile(App::kLR).packet_flits;
  for (App app : {App::kHist, App::kKmeans, App::kMM, App::kPCA, App::kWC}) {
    const auto p = make_profile(app);
    EXPECT_GT(lr_flits, p.traffic.sum() * p.packet_flits) << app_name(app);
  }
}

TEST(Profiles, MastersAreValidThreads) {
  for (App app : kAllApps) {
    const auto p = make_profile(app);
    EXPECT_FALSE(p.master_threads.empty()) << app_name(app);
    for (std::size_t m : p.master_threads) {
      EXPECT_LT(m, p.threads);
    }
    EXPECT_GT(p.net_sensitivity, 0.0);
    EXPECT_LE(p.net_sensitivity, 1.0);
  }
}

TEST(Profiles, PhaseModelsPopulated) {
  for (App app : kAllApps) {
    const auto p = make_profile(app);
    EXPECT_GT(p.phases.map.count, 0u) << app_name(app);
    EXPECT_GT(p.phases.map.cycles_mean, 0.0);
    EXPECT_GT(p.phases.reduce.count, 0u);
    EXPECT_GE(p.phases.lib_init.cycles, 0.0);
  }
  // LR has no merge phase (§4.2).
  EXPECT_EQ(make_profile(App::kLR).phases.merge.cycles, 0.0);
}

class AllAppsProfile : public ::testing::TestWithParam<App> {};

TEST_P(AllAppsProfile, WellFormed) {
  const auto p = make_profile(GetParam());
  EXPECT_EQ(p.threads, 64u);
  EXPECT_EQ(p.utilization.size(), 64u);
  EXPECT_EQ(p.traffic.rows(), 64u);
  for (double u : p.utilization) {
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  EXPECT_GT(p.traffic.sum(), 0.0);
  EXPECT_GE(p.packet_flits, 1u);
}

INSTANTIATE_TEST_SUITE_P(Apps, AllAppsProfile, ::testing::ValuesIn(kAllApps),
                         [](const auto& info) { return app_name(info.param); });

}  // namespace
}  // namespace vfimr::workload
