#include <gtest/gtest.h>

#include "common/require.hpp"
#include "noc/network.hpp"
#include "noc/traffic.hpp"

namespace vfimr::noc {
namespace {

/// A 6-switch wired line with a wireless shortcut between WIs 1 and 4.  The
/// wired path keeps the budget-0 routing layer complete (as in the real
/// WiNoC, which always places wired inter-cluster links); with wireless
/// cost 1 the shortcut is preferred for cross-island routes.
struct WirelessFixture {
  Topology topo;
  WirelessConfig wireless;

  WirelessFixture() {
    topo = make_placed_grid(6, 1, 2.0);
    topo.add_wire(0, 1);
    topo.add_wire(1, 2);
    topo.add_wire(2, 3);
    topo.add_wire(3, 4);
    topo.add_wire(4, 5);
    topo.add_wireless(1, 4);
    wireless.channel_count = 1;
    wireless.interfaces = {{1, 0}, {4, 0}};
  }
};

TEST(Wireless, PacketCrossesChannel) {
  WirelessFixture f;
  const UpDownRouting routing{f.topo.graph, 1.0};
  Network net{f.topo, routing, {}, f.wireless};
  net.inject(0, 5, 4);
  ASSERT_TRUE(net.drain(200));
  const auto& m = net.metrics();
  EXPECT_EQ(m.packets_ejected, 1u);
  EXPECT_EQ(m.energy.wireless_flits, 4u);  // whole packet over the air
  EXPECT_GT(m.energy.wire_hops, 0u);
  EXPECT_GT(m.wireless_utilization(), 0.0);
}

TEST(Wireless, IntraIslandAvoidsChannel) {
  WirelessFixture f;
  const UpDownRouting routing{f.topo.graph, 1.0};
  Network net{f.topo, routing, {}, f.wireless};
  net.inject(0, 2, 4);
  ASSERT_TRUE(net.drain(200));
  EXPECT_EQ(net.metrics().energy.wireless_flits, 0u);
}

TEST(Wireless, OversizedPacketRejectedAtWiBoundary) {
  WirelessFixture f;
  const UpDownRouting routing{f.topo.graph, 1.0};
  SimConfig cfg;
  cfg.wi_buffer_depth = 4;
  Network net{f.topo, routing, cfg, f.wireless};
  net.inject(0, 5, 6);  // 6 flits > 4-deep WI buffer
  EXPECT_THROW(net.drain(200), RequirementError);
}

TEST(Wireless, MaxSizePacketExactlyFits) {
  WirelessFixture f;
  const UpDownRouting routing{f.topo.graph, 1.0};
  SimConfig cfg;
  cfg.wi_buffer_depth = 8;
  Network net{f.topo, routing, cfg, f.wireless};
  net.inject(0, 5, 8);
  ASSERT_TRUE(net.drain(400));
  EXPECT_EQ(net.metrics().packets_ejected, 1u);
}

TEST(Wireless, BidirectionalFairnessUnderContention) {
  // Both WIs constantly want the channel; the token must alternate service
  // so both directions make progress.
  WirelessFixture f;
  const UpDownRouting routing{f.topo.graph, 1.0};
  Network net{f.topo, routing, {}, f.wireless};
  for (int i = 0; i < 25; ++i) {
    net.inject(0, 5, 4);
    net.inject(5, 0, 4);
  }
  ASSERT_TRUE(net.drain(10'000));
  EXPECT_EQ(net.metrics().packets_ejected, 50u);
  EXPECT_EQ(net.metrics().energy.wireless_flits, 200u);
}

TEST(Wireless, HeavyCrossTrafficDrains) {
  // Deadlock-freedom regression: saturating bidirectional wireless traffic
  // with full-size packets must always drain (VCT reservation at the WIs).
  WirelessFixture f;
  const UpDownRouting routing{f.topo.graph, 1.0};
  Network net{f.topo, routing, {}, f.wireless};
  Rng rng{5};
  for (int i = 0; i < 3000; ++i) {
    const auto s = static_cast<graph::NodeId>(rng.uniform_u64(6));
    auto d = static_cast<graph::NodeId>(rng.uniform_u64(5));
    if (d >= s) ++d;
    net.inject(s, d, 8);
    net.step();
  }
  ASSERT_TRUE(net.drain(200'000));
  EXPECT_EQ(net.metrics().packets_injected, net.metrics().packets_ejected);
}

TEST(Wireless, WirelessEdgeWithoutInterfaceRejected) {
  Topology t = make_placed_grid(3, 1, 1.0);
  t.add_wire(0, 1);
  t.add_wire(1, 2);
  t.add_wireless(0, 2);  // endpoints have no WirelessInterface entries
  const UpDownRouting routing{t.graph, 1.0};
  WirelessConfig none;
  EXPECT_THROW((Network{t, routing, {}, none}), RequirementError);
}

TEST(Wireless, MismatchedChannelsRejected) {
  WirelessFixture f;
  f.wireless.channel_count = 2;
  f.wireless.interfaces = {{1, 0}, {4, 1}};  // different channels, same edge
  const UpDownRouting routing{f.topo.graph, 1.0};
  EXPECT_THROW((Network{f.topo, routing, {}, f.wireless}), RequirementError);
}

TEST(Wireless, DuplicateInterfaceRejected) {
  WirelessFixture f;
  f.wireless.interfaces.push_back({1, 0});
  const UpDownRouting routing{f.topo.graph, 1.0};
  EXPECT_THROW((Network{f.topo, routing, {}, f.wireless}), RequirementError);
}

TEST(Wireless, ThreeChannelCliqueAllPairs) {
  // 4 islands of 1 switch each, 2 channels, full cliques: all pairs reachable.
  Topology t = make_placed_grid(4, 1, 3.0);
  t.add_wire(0, 1);
  t.add_wire(1, 2);
  t.add_wire(2, 3);
  WirelessConfig w;
  w.channel_count = 2;
  w.interfaces = {{0, 0}, {2, 0}, {1, 1}, {3, 1}};
  t.add_wireless(0, 2);
  t.add_wireless(1, 3);
  const UpDownRouting routing{t.graph, 1.0};
  Network net{t, routing, {}, w};
  for (graph::NodeId s = 0; s < 4; ++s) {
    for (graph::NodeId d = 0; d < 4; ++d) {
      if (s != d) net.inject(s, d, 2);
    }
  }
  ASSERT_TRUE(net.drain(1000));
  EXPECT_EQ(net.metrics().packets_ejected, 12u);
}

}  // namespace
}  // namespace vfimr::noc
