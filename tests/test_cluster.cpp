// Tests for the cluster serving tier (src/cluster): arrival-stream
// generation and validation, the batched ServiceMatrix against direct
// FullSystemSim runs, and the end-to-end ClusterSim determinism contract —
// same seed + any worker count => bit-identical completion order and SLA
// statistics.  Simulations use the analytical fidelity band with small NoC
// windows so the whole file stays tier-1 fast.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "cluster/arrivals.hpp"
#include "cluster/fleet_faults.hpp"
#include "cluster/service.hpp"
#include "cluster/serving.hpp"
#include "common/require.hpp"
#include "sysmodel/net_eval.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr {
namespace {

using cluster::ArrivalConfig;
using cluster::ArrivalModel;
using cluster::ClusterReport;
using cluster::ClusterSim;
using cluster::FleetConfig;
using cluster::JobArrival;
using cluster::PlatformTypeSpec;
using cluster::PowerCapMode;
using cluster::QueueDiscipline;
using cluster::SchedulerPolicy;
using cluster::ServiceMatrix;

// ---------------------------------------------------------------- arrivals

TEST(ClusterArrivals, PoissonIsDeterministicAndSorted) {
  ArrivalConfig cfg;
  cfg.rate_jobs_per_s = 50.0;
  cfg.job_count = 5'000;
  cfg.seed = 7;
  const auto a = cluster::make_arrivals(cfg);
  const auto b = cluster::make_arrivals(cfg);
  ASSERT_EQ(a.size(), cfg.job_count);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time_s, b[i].time_s) << i;
    EXPECT_EQ(a[i].app, b[i].app) << i;
    if (i > 0) EXPECT_GE(a[i].time_s, a[i - 1].time_s) << i;
  }
  // Mean interarrival ~ 1/rate (law of large numbers; generous tolerance).
  const double mean_gap = a.back().time_s / static_cast<double>(a.size() - 1);
  EXPECT_NEAR(mean_gap, 1.0 / cfg.rate_jobs_per_s,
              0.1 / cfg.rate_jobs_per_s);
}

TEST(ClusterArrivals, SeedChangesTheStream) {
  ArrivalConfig cfg;
  cfg.job_count = 100;
  ArrivalConfig other = cfg;
  other.seed = cfg.seed + 1;
  const auto a = cluster::make_arrivals(cfg);
  const auto b = cluster::make_arrivals(other);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || a[i].time_s != b[i].time_s || a[i].app != b[i].app;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ClusterArrivals, MixtureZeroWeightExcludesApp) {
  ArrivalConfig cfg;
  cfg.job_count = 2'000;
  cfg.app_mix.assign(workload::kAllApps.size(), 1.0);
  cfg.app_mix[0] = 0.0;  // no jobs of the first app
  for (const JobArrival& j : cluster::make_arrivals(cfg)) {
    EXPECT_NE(j.app, workload::kAllApps[0]);
  }
}

TEST(ClusterArrivals, DeadlinesScaleTheServiceHint) {
  ArrivalConfig cfg;
  cfg.job_count = 500;
  cfg.deadline_factor = 3.0;
  for (std::size_t a = 0; a < cfg.service_hint_s.size(); ++a) {
    cfg.service_hint_s[a] = 0.5 + static_cast<double>(a);
  }
  for (const JobArrival& j : cluster::make_arrivals(cfg)) {
    std::size_t idx = 0;
    while (workload::kAllApps[idx] != j.app) ++idx;
    EXPECT_DOUBLE_EQ(j.deadline_s, 3.0 * cfg.service_hint_s[idx]);
  }
}

TEST(ClusterArrivals, RejectsInvalidConfigs) {
  ArrivalConfig bad_rate;
  bad_rate.rate_jobs_per_s = 0.0;
  EXPECT_THROW(cluster::make_arrivals(bad_rate), RequirementError);

  ArrivalConfig bad_mix;
  bad_mix.app_mix = {1.0, -0.5};
  EXPECT_THROW(cluster::make_arrivals(bad_mix), RequirementError);

  ArrivalConfig no_hint;
  no_hint.deadline_factor = 2.0;  // service_hint_s left all-zero
  EXPECT_THROW(cluster::make_arrivals(no_hint), RequirementError);

  ArrivalConfig unsorted;
  unsorted.model = ArrivalModel::kTrace;
  unsorted.trace = {{1.0, workload::App::kWC, 0.0},
                    {0.5, workload::App::kWC, 0.0}};
  EXPECT_THROW(cluster::make_arrivals(unsorted), RequirementError);
}

TEST(ClusterArrivals, TraceReplaysVerbatim) {
  ArrivalConfig cfg;
  cfg.model = ArrivalModel::kTrace;
  cfg.trace = {{0.0, workload::App::kWC, 1.0},
               {0.25, workload::App::kHist, 0.0},
               {0.25, workload::App::kMM, 2.0}};
  const auto out = cluster::make_arrivals(cfg);
  ASSERT_EQ(out.size(), cfg.trace.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].time_s, cfg.trace[i].time_s);
    EXPECT_EQ(out[i].app, cfg.trace[i].app);
    EXPECT_EQ(out[i].deadline_s, cfg.trace[i].deadline_s);
  }
}

// ------------------------------------------------- shared sim fixture

/// Two apps x two platform types, analytical band, tiny NoC windows; the
/// shared NetworkEvaluator + PlatformCache keep repeated evaluations warm
/// across tests in this file.
class ClusterSimTest : public ::testing::Test {
 protected:
  static sysmodel::PlatformParams base_params() {
    sysmodel::PlatformParams p;
    p.fidelity = sysmodel::Fidelity::kAnalytical;
    p.sim_cycles = 4'000;
    p.drain_cycles = 20'000;
    p.net_eval = &evaluator();
    p.platform_cache = &platforms();
    return p;
  }

  static sysmodel::NetworkEvaluator& evaluator() {
    static sysmodel::NetworkEvaluator e;
    return e;
  }
  static sysmodel::PlatformCache& platforms() {
    static sysmodel::PlatformCache c;
    return c;
  }

  static std::vector<workload::AppProfile> profiles() {
    return {workload::make_profile(workload::App::kWC),
            workload::make_profile(workload::App::kHist)};
  }

  static std::vector<PlatformTypeSpec> fleet_types(std::size_t winoc_count,
                                                   std::size_t nvfi_count) {
    std::vector<PlatformTypeSpec> types;
    PlatformTypeSpec t;
    t.label = "vfi-winoc";
    t.params = base_params();
    t.params.kind = sysmodel::SystemKind::kVfiWinoc;
    t.count = winoc_count;
    types.push_back(t);
    t.label = "nvfi-mesh";
    t.params = base_params();
    t.params.kind = sysmodel::SystemKind::kNvfiMesh;
    t.count = nvfi_count;
    types.push_back(t);
    return types;
  }

  static const ServiceMatrix& matrix() {
    static const ServiceMatrix m = ServiceMatrix::evaluate(
        profiles(), fleet_types(2, 1), sysmodel::FullSystemSim{});
    return m;
  }

  static ArrivalConfig arrival_config(double rho, std::size_t jobs) {
    // Offered load rho relative to the 3-instance fleet's capacity under
    // the WC/HIST-only mix.
    double capacity = 0.0;
    const auto types = fleet_types(2, 1);
    for (std::size_t t = 0; t < types.size(); ++t) {
      const double mean =
          (matrix().at(0, t).exec_s + matrix().at(1, t).exec_s) / 2.0;
      capacity += static_cast<double>(types[t].count) / mean;
    }
    ArrivalConfig cfg;
    cfg.rate_jobs_per_s = rho * capacity;
    cfg.job_count = jobs;
    cfg.seed = 42;
    cfg.app_mix.assign(workload::kAllApps.size(), 0.0);
    cfg.app_mix[static_cast<std::size_t>(workload::App::kWC)] = 1.0;
    cfg.app_mix[static_cast<std::size_t>(workload::App::kHist)] = 1.0;
    return cfg;
  }
};

TEST_F(ClusterSimTest, ServiceMatrixMatchesDirectRuns) {
  const auto profs = profiles();
  const auto types = fleet_types(2, 1);
  const sysmodel::FullSystemSim sim;
  // The matrix's NVFI column must equal a direct baseline run, and the VFI
  // column a direct run against that baseline's phase profile.
  const std::size_t wc = matrix().app_row(workload::App::kWC);
  sysmodel::PlatformParams nvfi = types[1].params;
  const sysmodel::SystemReport ref = sim.run(profs[0], nvfi);
  EXPECT_DOUBLE_EQ(matrix().at(wc, 1).exec_s, ref.exec_s);
  EXPECT_DOUBLE_EQ(matrix().at(wc, 1).energy_j, ref.total_energy_j());

  const sysmodel::SystemReport vfi =
      sim.run(profs[0], types[0].params, sysmodel::phase_baselines(ref));
  EXPECT_DOUBLE_EQ(matrix().at(wc, 0).exec_s, vfi.exec_s);
  EXPECT_DOUBLE_EQ(matrix().at(wc, 0).edp_js, vfi.edp_js());
  EXPECT_GT(matrix().at(wc, 0).power_w, 0.0);
}

TEST_F(ClusterSimTest, MatrixIsThreadCountInvariant) {
  const auto profs = profiles();
  const auto types = fleet_types(2, 1);
  const sysmodel::FullSystemSim sim;
  const ServiceMatrix m1 = ServiceMatrix::evaluate(profs, types, sim, 1);
  const ServiceMatrix m4 = ServiceMatrix::evaluate(profs, types, sim, 4);
  for (std::size_t a = 0; a < m1.apps(); ++a) {
    for (std::size_t t = 0; t < m1.types(); ++t) {
      EXPECT_EQ(m1.at(a, t).exec_s, m4.at(a, t).exec_s) << a << "," << t;
      EXPECT_EQ(m1.at(a, t).energy_j, m4.at(a, t).energy_j) << a << "," << t;
      EXPECT_EQ(m1.at(a, t).edp_js, m4.at(a, t).edp_js) << a << "," << t;
    }
  }
}

TEST_F(ClusterSimTest, ServesEveryAdmittedJobExactlyOnce) {
  FleetConfig fleet;
  fleet.types = fleet_types(2, 1);
  const auto arrivals = cluster::make_arrivals(arrival_config(0.7, 2'000));
  const ClusterReport r = ClusterSim::run(arrivals, fleet, matrix());
  EXPECT_EQ(r.fleet.arrived, arrivals.size());
  EXPECT_EQ(r.fleet.admitted, arrivals.size());
  EXPECT_EQ(r.fleet.completed, arrivals.size());
  EXPECT_EQ(r.fleet.rejected_deadline, 0u);
  EXPECT_EQ(r.fleet.rejected_power, 0u);
  EXPECT_EQ(r.latency_hist.count(), arrivals.size());
  std::uint64_t per_app = 0;
  for (const auto& s : r.per_app) per_app += s.completed;
  EXPECT_EQ(per_app, r.fleet.completed);
  EXPECT_GT(r.fleet.latency_s.mean(), 0.0);
  EXPECT_GT(r.utilization(), 0.0);
  EXPECT_LE(r.utilization(), 1.0 + 1e-12);
  // Latency can never undercut the fastest service point of any app.
  double min_service = matrix().min_service_s(0);
  min_service = std::min(min_service, matrix().min_service_s(1));
  EXPECT_GE(r.fleet.latency_s.min(), min_service * (1.0 - 1e-12));
}

TEST_F(ClusterSimTest, RunIsDeterministicForAnyWorkerCount) {
  // The full contract: evaluate the matrix under 1 worker and under 8,
  // replay the same arrival stream, and require bit-identical SLA stats
  // and completion order (digest) — ISSUE.md's acceptance gate.
  const auto profs = profiles();
  const auto arrivals = cluster::make_arrivals(arrival_config(0.9, 4'000));
  ClusterReport reports[2];
  for (int i = 0; i < 2; ++i) {
    sysmodel::NetworkEvaluator fresh_eval;
    sysmodel::PlatformCache fresh_cache;
    auto types = fleet_types(2, 1);
    for (auto& t : types) {
      t.params.net_eval = &fresh_eval;
      t.params.platform_cache = &fresh_cache;
    }
    const ServiceMatrix m = ServiceMatrix::evaluate(
        profs, types, sysmodel::FullSystemSim{}, i == 0 ? 1 : 8);
    FleetConfig fleet;
    fleet.types = types;
    fleet.policy = SchedulerPolicy::kEdpGreedy;
    reports[i] = ClusterSim::run(arrivals, fleet, m);
  }
  const ClusterReport& a = reports[0];
  const ClusterReport& b = reports[1];
  EXPECT_EQ(a.completion_digest, b.completion_digest);
  EXPECT_EQ(a.fleet.completed, b.fleet.completed);
  EXPECT_EQ(a.fleet.p50.value(), b.fleet.p50.value());
  EXPECT_EQ(a.fleet.p99.value(), b.fleet.p99.value());
  EXPECT_EQ(a.fleet.p999.value(), b.fleet.p999.value());
  EXPECT_EQ(a.fleet.latency_s.sum(), b.fleet.latency_s.sum());
  EXPECT_EQ(a.fleet.energy_j.sum(), b.fleet.energy_j.sum());
  EXPECT_EQ(a.horizon_s, b.horizon_s);
  EXPECT_EQ(a.busy_seconds, b.busy_seconds);
}

TEST_F(ClusterSimTest, RunIsDeterministicUnderFaultsForAnyWorkerCount) {
  // Same contract under a nonzero fault plan with retries and hedging live:
  // crashes, backoff timers and speculative duplicates are all virtual-time
  // events, so the digest must stay bit-identical across worker counts.
  const auto profs = profiles();
  const auto arrivals = cluster::make_arrivals(arrival_config(0.9, 4'000));
  const double span = arrivals.back().time_s * 1.2;
  faults::FleetFaultSpec spec;
  spec.crash_rate_per_ks = 4.0 / (span / 1000.0);  // ~4 crashes/instance
  spec.degrade_rate_per_ks = 0.5 * spec.crash_rate_per_ks;
  spec.mean_repair_s = 0.03 * span;
  spec.mean_degrade_s = 0.03 * span;
  spec.degrade_slowdown = 2.0;
  const cluster::FleetFaultPlan plan =
      cluster::FleetFaultPlan::from_spec(spec, 3, span);
  ASSERT_FALSE(plan.empty());

  ClusterReport reports[2];
  for (int i = 0; i < 2; ++i) {
    sysmodel::NetworkEvaluator fresh_eval;
    sysmodel::PlatformCache fresh_cache;
    auto types = fleet_types(2, 1);
    for (auto& t : types) {
      t.params.net_eval = &fresh_eval;
      t.params.platform_cache = &fresh_cache;
    }
    const ServiceMatrix m = ServiceMatrix::evaluate(
        profs, types, sysmodel::FullSystemSim{}, i == 0 ? 1 : 8);
    FleetConfig fleet;
    fleet.types = types;
    fleet.policy = SchedulerPolicy::kEdpGreedy;
    fleet.faults = plan;
    fleet.retry.max_attempts = 3;
    fleet.retry.backoff_base_s = 0.01 * span;
    fleet.hedge.latency_multiplier = 3.0;
    reports[i] = ClusterSim::run(arrivals, fleet, m);
  }
  const ClusterReport& a = reports[0];
  const ClusterReport& b = reports[1];
  EXPECT_GT(a.fleet.failovers, 0u);  // the plan actually displaced work
  EXPECT_EQ(a.completion_digest, b.completion_digest);
  EXPECT_EQ(a.fleet.completed, b.fleet.completed);
  EXPECT_EQ(a.fleet.retries, b.fleet.retries);
  EXPECT_EQ(a.fleet.failovers, b.fleet.failovers);
  EXPECT_EQ(a.fleet.hedges, b.fleet.hedges);
  EXPECT_EQ(a.fleet.hedge_wins, b.fleet.hedge_wins);
  EXPECT_EQ(a.fleet.lost, b.fleet.lost);
  EXPECT_EQ(a.fleet.shed_retry, b.fleet.shed_retry);
  EXPECT_EQ(a.fleet.p50.value(), b.fleet.p50.value());
  EXPECT_EQ(a.fleet.p999.value(), b.fleet.p999.value());
  EXPECT_EQ(a.fleet.latency_s.sum(), b.fleet.latency_s.sum());
  EXPECT_EQ(a.fleet.energy_j.sum(), b.fleet.energy_j.sum());
  EXPECT_EQ(a.wasted_energy_j, b.wasted_energy_j);
  EXPECT_EQ(a.down_seconds, b.down_seconds);
}

TEST_F(ClusterSimTest, RepeatedRunsShareTheDigest) {
  FleetConfig fleet;
  fleet.types = fleet_types(2, 1);
  const auto arrivals = cluster::make_arrivals(arrival_config(0.8, 1'000));
  const ClusterReport a = ClusterSim::run(arrivals, fleet, matrix());
  const ClusterReport b = ClusterSim::run(arrivals, fleet, matrix());
  EXPECT_EQ(a.completion_digest, b.completion_digest);
  EXPECT_NE(a.completion_digest, 0u);
}

TEST_F(ClusterSimTest, DeadlineAdmissionShedsUnderOverload) {
  ArrivalConfig cfg = arrival_config(2.0, 3'000);  // well past saturation
  cfg.deadline_factor = 2.0;
  cfg.service_hint_s.fill(0.0);
  cfg.service_hint_s[static_cast<std::size_t>(workload::App::kWC)] =
      matrix().mean_service_s(matrix().app_row(workload::App::kWC));
  cfg.service_hint_s[static_cast<std::size_t>(workload::App::kHist)] =
      matrix().mean_service_s(matrix().app_row(workload::App::kHist));

  FleetConfig fleet;
  fleet.types = fleet_types(2, 1);
  fleet.policy = SchedulerPolicy::kEdpGreedy;
  fleet.admit_by_deadline = true;
  const auto arrivals = cluster::make_arrivals(cfg);
  const ClusterReport r = ClusterSim::run(arrivals, fleet, matrix());
  EXPECT_GT(r.fleet.rejected_deadline, 0u);
  EXPECT_EQ(r.fleet.admitted + r.fleet.rejected_deadline, r.fleet.arrived);
  EXPECT_EQ(r.fleet.completed, r.fleet.admitted);
  // Under FIFO queues the admission-time completion prediction is exact
  // (deterministic service, later jobs queue behind), so nothing admitted
  // ever misses.  EDF reordering would weaken this to a heuristic — the
  // bench exercises that combination.
  EXPECT_EQ(r.fleet.deadline_misses, 0u);

  // EDF + deadline admission still conserves jobs.
  FleetConfig edf = fleet;
  edf.queue = QueueDiscipline::kEarliestDeadline;
  const ClusterReport re = ClusterSim::run(arrivals, edf, matrix());
  EXPECT_EQ(re.fleet.admitted + re.fleet.rejected_deadline,
            re.fleet.arrived);
  EXPECT_EQ(re.fleet.completed, re.fleet.admitted);
}

TEST_F(ClusterSimTest, PowerCapShedRejectsAndDelayWaits) {
  // A cap that admits one running job but not two.
  double max_power = 0.0;
  double min_power = 1e300;
  for (std::size_t a = 0; a < matrix().apps(); ++a) {
    for (std::size_t t = 0; t < matrix().types(); ++t) {
      max_power = std::max(max_power, matrix().at(a, t).power_w);
      min_power = std::min(min_power, matrix().at(a, t).power_w);
    }
  }
  const double cap = max_power + 0.5 * min_power;

  FleetConfig shed;
  shed.types = fleet_types(2, 1);
  shed.power_cap = PowerCapMode::kShed;
  shed.power_cap_w = cap;
  const auto arrivals = cluster::make_arrivals(arrival_config(1.5, 2'000));
  const ClusterReport rs = ClusterSim::run(arrivals, shed, matrix());
  EXPECT_GT(rs.fleet.rejected_power, 0u);
  EXPECT_LE(rs.peak_power_w, cap * (1.0 + 1e-12));

  FleetConfig delay = shed;
  delay.power_cap = PowerCapMode::kDelay;
  const ClusterReport rd = ClusterSim::run(arrivals, delay, matrix());
  EXPECT_EQ(rd.fleet.rejected_power, 0u);
  EXPECT_EQ(rd.fleet.completed, rd.fleet.admitted);
  EXPECT_GT(rd.power_wait_seconds, 0.0);
  EXPECT_LE(rd.peak_power_w, cap * (1.0 + 1e-12));

  // kDelay refuses caps that no single job fits under (would livelock).
  FleetConfig impossible = delay;
  impossible.power_cap_w = 0.5 * min_power;
  EXPECT_THROW(ClusterSim::run(arrivals, impossible, matrix()),
               RequirementError);
}

TEST_F(ClusterSimTest, ConfigValidation) {
  const auto arrivals = cluster::make_arrivals(arrival_config(0.5, 10));
  FleetConfig no_types;
  EXPECT_THROW(ClusterSim::run(arrivals, no_types, matrix()),
               RequirementError);

  FleetConfig wrong_width;
  wrong_width.types = fleet_types(2, 1);
  wrong_width.types.pop_back();
  EXPECT_THROW(ClusterSim::run(arrivals, wrong_width, matrix()),
               RequirementError);

  FleetConfig capless;
  capless.types = fleet_types(2, 1);
  capless.power_cap = PowerCapMode::kShed;  // power_cap_w left at 0
  EXPECT_THROW(ClusterSim::run(arrivals, capless, matrix()),
               RequirementError);

  // An app outside the matrix is rejected up front.
  ArrivalConfig cfg;
  cfg.job_count = 5;
  cfg.app_mix.assign(workload::kAllApps.size(), 0.0);
  cfg.app_mix[static_cast<std::size_t>(workload::App::kMM)] = 1.0;
  FleetConfig fleet;
  fleet.types = fleet_types(2, 1);
  EXPECT_THROW(
      ClusterSim::run(cluster::make_arrivals(cfg), fleet, matrix()),
      RequirementError);
}

TEST_F(ClusterSimTest, EmptyPercentilesPrintNa) {
  P2Quantile empty{0.99};
  EXPECT_EQ(cluster::format_quantile(empty), "n/a");
  empty.add(0.125);
  EXPECT_EQ(cluster::format_quantile(empty), "0.1250");

  // A run with no arrivals reports "n/a" percentiles instead of zeros.
  FleetConfig fleet;
  fleet.types = fleet_types(2, 1);
  const ClusterReport r = ClusterSim::run({}, fleet, matrix());
  EXPECT_EQ(r.fleet.completed, 0u);
  EXPECT_TRUE(std::isnan(r.fleet.p99.value()));
  const std::string table = r.sla_table().to_string();
  EXPECT_NE(table.find("n/a"), std::string::npos);
}

}  // namespace
}  // namespace vfimr
