#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "power/core_power.hpp"
#include "power/noc_power.hpp"
#include "power/vf_table.hpp"

namespace vfimr::power {
namespace {

TEST(VfTableTest, StandardLadder) {
  const auto& t = VfTable::standard();
  EXPECT_EQ(t.size(), 5u);
  EXPECT_DOUBLE_EQ(t.min().freq_hz, 1.5e9);
  EXPECT_DOUBLE_EQ(t.max().freq_hz, 2.5e9);
  EXPECT_DOUBLE_EQ(t.max().voltage_v, 1.0);
}

TEST(VfTableTest, AtLeastSelectsLowestSufficient) {
  const auto& t = VfTable::standard();
  EXPECT_DOUBLE_EQ(t.at_least(1.0e9).freq_hz, 1.5e9);
  EXPECT_DOUBLE_EQ(t.at_least(1.5e9).freq_hz, 1.5e9);
  EXPECT_DOUBLE_EQ(t.at_least(1.6e9).freq_hz, 1.75e9);
  EXPECT_DOUBLE_EQ(t.at_least(2.26e9).freq_hz, 2.5e9);
  EXPECT_DOUBLE_EQ(t.at_least(9e9).freq_hz, 2.5e9);  // clamps to max
}

TEST(VfTableTest, StepUpClampsAtTop) {
  const auto& t = VfTable::standard();
  EXPECT_DOUBLE_EQ(t.step_up(t[0]).freq_hz, 1.75e9);
  EXPECT_DOUBLE_EQ(t.step_up(t.max()).freq_hz, 2.5e9);
}

TEST(VfTableTest, IndexOfUnknownThrows) {
  const auto& t = VfTable::standard();
  EXPECT_THROW(t.index_of(VfPoint{0.55, 1.4e9}), RequirementError);
  EXPECT_EQ(t.index_of(VfPoint{0.8, 2.0e9}), 2u);
}

TEST(VfTableTest, ConstructionValidation) {
  EXPECT_THROW(VfTable{{}}, RequirementError);
  EXPECT_THROW((VfTable{{{1.0, 2e9}, {0.9, 1e9}}}), RequirementError);
  EXPECT_THROW((VfTable{{{0.0, 1e9}}}), RequirementError);
}

TEST(VfTableTest, Label) {
  EXPECT_EQ(VfPoint({0.9, 2.25e9}).label(), "0.9/2.25");
}

TEST(CorePower, MonotoneInUtilizationVoltageFrequency) {
  const CorePowerModel m;
  const VfPoint lo{0.8, 2.0e9};
  const VfPoint hi{1.0, 2.5e9};
  EXPECT_LT(m.power_w(0.2, hi), m.power_w(0.9, hi));
  EXPECT_LT(m.power_w(0.5, lo), m.power_w(0.5, hi));
  EXPECT_GT(m.power_w(0.0, hi), 0.0);  // idle still burns clock + leakage
}

TEST(CorePower, DynamicScalesWithV2F) {
  const CorePowerModel m;
  const VfPoint a{1.0, 2.5e9};
  const VfPoint b{0.5, 2.5e9};
  EXPECT_NEAR(m.dynamic_w(1.0, b) / m.dynamic_w(1.0, a), 0.25, 1e-9);
  const VfPoint c{1.0, 1.25e9};
  EXPECT_NEAR(m.dynamic_w(1.0, c) / m.dynamic_w(1.0, a), 0.5, 1e-9);
}

TEST(CorePower, LeakageExponent) {
  const CorePowerModel m;
  const double full = m.leakage_w(1.0);
  const double low = m.leakage_w(0.6);
  EXPECT_NEAR(low / full, std::pow(0.6, m.params().leak_exponent), 1e-9);
}

TEST(CorePower, EnergyIsPowerTimesTime) {
  const CorePowerModel m;
  const VfPoint vf{0.9, 2.25e9};
  EXPECT_NEAR(m.energy_j(0.5, vf, 2.0), 2.0 * m.power_w(0.5, vf), 1e-12);
  EXPECT_EQ(m.energy_j(0.5, vf, 0.0), 0.0);
}

TEST(CorePower, InvalidInputs) {
  const CorePowerModel m;
  EXPECT_THROW(m.power_w(-0.1, VfPoint{}), RequirementError);
  EXPECT_THROW(m.power_w(1.1, VfPoint{}), RequirementError);
  EXPECT_THROW(m.leakage_w(0.0), RequirementError);
  EXPECT_THROW(m.energy_j(0.5, VfPoint{}, -1.0), RequirementError);
}

TEST(NocPower, ComponentsSumToTotal) {
  const NocPowerModel m;
  noc::EnergyCounters c;
  c.switch_traversals = 100;
  c.wire_hops = 80;
  c.wire_mm_flits = 200.0;
  c.wireless_flits = 20;
  c.buffer_reads = 120;
  c.buffer_writes = 100;
  const double total = m.energy_j(c);
  EXPECT_NEAR(total,
              m.wire_energy_j(c) + m.switch_energy_j(c) +
                  m.wireless_energy_j(c) + m.buffer_energy_j(c),
              1e-18);
  EXPECT_GT(total, 0.0);
}

TEST(NocPower, WirelessBeatsLongWiredPath) {
  // The WiNoC premise: one wireless hop is far cheaper than the multi-hop
  // wired path it replaces (and clearly more than the bare wire metal of a
  // single short link).
  const NocPowerModel m;
  EXPECT_LT(m.wireless_flit_j(), m.wired_path_flit_j(12.5, 5));
  EXPECT_LT(m.wireless_flit_j(), m.wired_path_flit_j(5.0, 2));
  EXPECT_GT(m.wireless_flit_j(), m.wired_path_flit_j(2.5, 0));
}

TEST(NocPower, ZeroCountersZeroEnergy) {
  const NocPowerModel m;
  EXPECT_EQ(m.energy_j(noc::EnergyCounters{}), 0.0);
}

TEST(NocPower, StaticEnergy) {
  const NocPowerModel m;
  const double e = m.static_energy_j(64, 12, 2.0);
  EXPECT_NEAR(e,
              (64 * m.params().switch_leakage_w + 12 * m.params().wi_leakage_w)
                  * 2.0,
              1e-15);
}

TEST(NocPower, InvalidParamsRejected) {
  NocPowerParams p;
  p.flit_bits = 0.0;
  EXPECT_THROW(NocPowerModel{p}, RequirementError);
  NocPowerParams q;
  q.switch_pj_per_bit = -1.0;
  EXPECT_THROW(NocPowerModel{q}, RequirementError);
}

}  // namespace
}  // namespace vfimr::power
