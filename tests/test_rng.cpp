#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace vfimr {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformRangeMean) {
  Rng rng{8};
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(-3.0, 5.0);
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(Rng, UniformU64Bounded) {
  Rng rng{9};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100'000; ++i) {
    const auto v = rng.uniform_u64(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10'000, 600);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng{10};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const int v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng{11};
  const int n = 300'000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng rng{12};
  const int n = 100'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng{13};
  const int n = 200'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, BernoulliRate) {
  Rng rng{14};
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

TEST(Rng, WeightedIndexProportional) {
  Rng rng{15};
  const std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 100'000; ++i) {
    ++counts[rng.weighted_index(w)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 100'000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100'000.0, 0.3, 0.015);
  EXPECT_NEAR(counts[3] / 100'000.0, 0.6, 0.015);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng{16};
  const std::vector<double> w = {0.0, 0.0, 0.0};
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.weighted_index(w));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{17};
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a{18};
  Rng child = a.split();
  // The child stream should not be identical to the parent continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng{GetParam()};
  double sum = 0.0;
  for (int i = 0; i < 50'000; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / 50'000.0, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 0xdeadbeefull,
                                           0xffffffffffffffffull));

}  // namespace
}  // namespace vfimr
