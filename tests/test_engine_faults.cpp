// Fault-tolerant MapReduce runtime: worker deaths, task re-queues and
// straggler speculation in the scheduler, and the engine's commit-once
// resilient path whose reduce output must be byte-identical under any fault
// plan or worker count — including the six paper applications.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>

#include "faults/faults.hpp"
#include "harness/property.hpp"
#include "mapreduce/apps/histogram.hpp"
#include "mapreduce/apps/kmeans.hpp"
#include "mapreduce/apps/linear_regression.hpp"
#include "mapreduce/apps/matrix_multiply.hpp"
#include "mapreduce/apps/pca.hpp"
#include "mapreduce/apps/wordcount.hpp"
#include "mapreduce/engine.hpp"
#include "mapreduce/scheduler.hpp"

namespace vfimr::mr {
namespace {

using CountEngine = Engine<std::string, std::uint64_t>;

CountEngine::Options opts(std::size_t workers,
                          const faults::WorkerFaultPlan* plan) {
  CountEngine::Options o;
  o.scheduler.workers = workers;
  o.scheduler.faults = plan;
  return o;
}

std::map<std::string, std::uint64_t> run_counts(
    std::size_t workers, const faults::WorkerFaultPlan* plan) {
  CountEngine engine{opts(workers, plan)};
  const auto result =
      engine.run(40, [](std::size_t task, CountEngine::Emitter& em) {
        em.emit("k" + std::to_string(task % 9), task + 1);
        em.emit("total", 1);
      });
  std::map<std::string, std::uint64_t> got;
  for (const auto& kv : result.pairs) got[kv.key] = kv.value;
  return got;
}

TEST(SchedulerFaults, DeadWorkersTasksAreReexecuted) {
  faults::WorkerFaultPlan plan;
  plan.deaths = {{0, 2}, {2, 0}};
  TaskScheduler sched{
      SchedulerConfig{.workers = 4, .faults = &plan}};
  std::vector<std::atomic<int>> runs(32);
  // Slow bodies keep the pool alive past thread startup so the scheduled
  // picks actually happen; a death can still miss if the pool drains first,
  // so the count is bounded, not exact.
  const auto stats = sched.run(32, [&](std::size_t task, std::size_t) {
    runs[task].fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  });
  for (std::size_t t = 0; t < runs.size(); ++t) {
    EXPECT_GE(runs[t].load(), 1) << "task " << t << " never ran";
  }
  EXPECT_GE(stats.workers_died, 1u);
  EXPECT_LE(stats.workers_died, 2u);
  // Every death abandoned its pick, which must have been re-queued.
  EXPECT_GE(stats.tasks_requeued, stats.workers_died);
  std::uint64_t executed = 0;
  for (auto n : stats.tasks_executed) executed += n;
  EXPECT_GE(executed, 32u);
}

TEST(SchedulerFaults, AllButOneWorkerMayDie) {
  faults::WorkerFaultPlan plan;
  for (std::size_t w = 1; w < 6; ++w) plan.deaths.push_back({w, 0});
  TaskScheduler sched{
      SchedulerConfig{.workers = 6, .faults = &plan}};
  std::vector<std::atomic<int>> runs(20);
  const auto stats = sched.run(20, [&](std::size_t task, std::size_t) {
    runs[task].fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  });
  // The invariant that matters: every task completes no matter how many of
  // the scheduled deaths fired (the survivor plus master cleanup cover the
  // rest).
  for (std::size_t t = 0; t < runs.size(); ++t) {
    EXPECT_GE(runs[t].load(), 1);
  }
  EXPECT_GE(stats.workers_died, 1u);
  EXPECT_LE(stats.workers_died, 5u);
}

TEST(SchedulerFaults, StragglersAreSpeculativelyReissued) {
  faults::WorkerFaultPlan plan;  // no deaths, aggressive speculation
  plan.straggler_multiple = 1.0;
  plan.straggler_min_seconds = 1e-5;
  TaskScheduler sched{
      SchedulerConfig{.workers = 4, .faults = &plan}};
  std::atomic<int> straggler_runs{0};
  const auto stats = sched.run(24, [&](std::size_t task, std::size_t) {
    if (task == 0) {
      straggler_runs.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
  });
  EXPECT_GE(stats.tasks_speculated, 1u);
  EXPECT_GE(straggler_runs.load(), 2) << "straggler was never re-issued";
  EXPECT_EQ(stats.workers_died, 0u);
}

TEST(SchedulerFaults, FaultFreePlanMatchesLegacyStats) {
  // A non-null plan with no deaths and speculation effectively off must
  // execute every task exactly once, like the legacy path.
  faults::WorkerFaultPlan plan;
  plan.straggler_multiple = 0.0;  // disables speculation
  TaskScheduler sched{
      SchedulerConfig{.workers = 3, .faults = &plan}};
  std::vector<std::atomic<int>> runs(30);
  const auto stats = sched.run(30, [&](std::size_t task, std::size_t) {
    runs[task].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t t = 0; t < runs.size(); ++t) {
    EXPECT_EQ(runs[t].load(), 1);
  }
  std::uint64_t executed = 0;
  for (auto n : stats.tasks_executed) executed += n;
  EXPECT_EQ(executed, 30u);
  EXPECT_EQ(stats.workers_died, 0u);
  EXPECT_EQ(stats.tasks_speculated, 0u);
}

TEST(EngineFaults, OutputIdenticalUnderDeathsAndWorkerCounts) {
  faults::WorkerFaultPlan clean;  // resilient path, no deaths
  const auto ref = run_counts(1, &clean);
  test::for_each_seed(6, [&](Rng& rng, std::uint64_t seed) {
    const std::size_t workers = 2 + rng.uniform_u64(6);
    const auto plan = faults::make_worker_fault_plan(
        workers, /*death_prob=*/0.7, /*max_after_tasks=*/5, seed);
    EXPECT_EQ(run_counts(workers, &plan), ref)
        << workers << " workers, " << plan.deaths.size() << " deaths";
  });
}

TEST(EngineFaults, IntegerAppsMatchLegacyPathExactly) {
  // Integer-valued apps are immune to combine-order float effects, so the
  // resilient path must match the legacy path bit for bit even under deaths.
  const auto plan = faults::make_worker_fault_plan(4, 0.8, 3, 0x77ull);

  apps::WordCountConfig wc;
  wc.word_count = 20'000;
  wc.vocabulary = 500;
  wc.map_tasks = 16;
  wc.scheduler.workers = 4;
  const auto wc_legacy = apps::run_word_count(wc);
  wc.scheduler.faults = &plan;
  const auto wc_faulty = apps::run_word_count(wc);
  EXPECT_EQ(wc_faulty.counts, wc_legacy.counts);
  EXPECT_EQ(wc_faulty.total_words, wc_legacy.total_words);

  apps::HistogramConfig hist;
  hist.pixel_count = 50'000;
  hist.map_tasks = 16;
  hist.scheduler.workers = 4;
  const auto hist_legacy = apps::run_histogram(hist);
  hist.scheduler.faults = &plan;
  const auto hist_faulty = apps::run_histogram(hist);
  EXPECT_EQ(hist_faulty.bins, hist_legacy.bins);
}

/// All six paper apps: the resilient path under a hostile fault plan must be
/// byte-identical to the resilient path with no deaths (same combine order,
/// so even float apps compare exactly).
TEST(EngineFaults, SixAppsByteIdenticalUnderFaults) {
  faults::WorkerFaultPlan clean;
  const auto plan = faults::make_worker_fault_plan(4, 0.8, 4, 0xAB1Eull);

  {
    apps::WordCountConfig cfg;
    cfg.word_count = 20'000;
    cfg.vocabulary = 400;
    cfg.map_tasks = 12;
    cfg.scheduler.workers = 4;
    cfg.scheduler.faults = &clean;
    const auto a = apps::run_word_count(cfg);
    cfg.scheduler.faults = &plan;
    const auto b = apps::run_word_count(cfg);
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(a.total_words, b.total_words);
  }
  {
    apps::HistogramConfig cfg;
    cfg.pixel_count = 40'000;
    cfg.map_tasks = 12;
    cfg.scheduler.workers = 4;
    cfg.scheduler.faults = &clean;
    const auto a = apps::run_histogram(cfg);
    cfg.scheduler.faults = &plan;
    const auto b = apps::run_histogram(cfg);
    EXPECT_EQ(a.bins, b.bins);
  }
  {
    apps::KmeansConfig cfg;
    cfg.point_count = 2'000;
    cfg.dimensions = 8;
    cfg.clusters = 4;
    cfg.max_iterations = 4;
    cfg.map_tasks = 12;
    cfg.scheduler.workers = 4;
    cfg.scheduler.faults = &clean;
    const auto a = apps::run_kmeans(cfg);
    cfg.scheduler.faults = &plan;
    const auto b = apps::run_kmeans(cfg);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.assignment, b.assignment);
    ASSERT_EQ(a.centroids.size(), b.centroids.size());
    for (std::size_t c = 0; c < a.centroids.size(); ++c) {
      EXPECT_EQ(a.centroids[c], b.centroids[c]) << "centroid " << c;
    }
  }
  {
    apps::LinearRegressionConfig cfg;
    cfg.sample_count = 20'000;
    cfg.map_tasks = 12;
    cfg.scheduler.workers = 4;
    cfg.scheduler.faults = &clean;
    const auto a = apps::run_linear_regression(cfg);
    cfg.scheduler.faults = &plan;
    const auto b = apps::run_linear_regression(cfg);
    EXPECT_EQ(a.slope, b.slope);
    EXPECT_EQ(a.intercept, b.intercept);
    EXPECT_EQ(a.samples, b.samples);
  }
  {
    apps::MatrixMultiplyConfig cfg;
    cfg.dimension = 48;
    cfg.map_tasks = 12;
    cfg.scheduler.workers = 4;
    cfg.scheduler.faults = &clean;
    const auto a = apps::run_matrix_multiply(cfg);
    cfg.scheduler.faults = &plan;
    const auto b = apps::run_matrix_multiply(cfg);
    ASSERT_EQ(a.product.rows(), b.product.rows());
    for (std::size_t r = 0; r < a.product.rows(); ++r) {
      for (std::size_t c = 0; c < a.product.cols(); ++c) {
        ASSERT_EQ(a.product(r, c), b.product(r, c))
            << "product(" << r << "," << c << ")";
      }
    }
  }
  {
    apps::PcaConfig cfg;
    cfg.rows = 400;
    cfg.dimensions = 12;
    cfg.map_tasks = 12;
    cfg.scheduler.workers = 4;
    cfg.scheduler.faults = &clean;
    const auto a = apps::run_pca(cfg);
    cfg.scheduler.faults = &plan;
    const auto b = apps::run_pca(cfg);
    EXPECT_EQ(a.mean, b.mean);
    for (std::size_t r = 0; r < a.covariance.rows(); ++r) {
      for (std::size_t c = 0; c < a.covariance.cols(); ++c) {
        ASSERT_EQ(a.covariance(r, c), b.covariance(r, c))
            << "cov(" << r << "," << c << ")";
      }
    }
  }
}

}  // namespace
}  // namespace vfimr::mr
