// Concurrency stress for the fault-tolerant cluster serving tier, meant for
// the sanitizer pass (tier2).  The serving event loop is single-threaded by
// design; the two concurrency surfaces are (a) the batched multi-worker
// ServiceMatrix evaluation and (b) many independent ClusterSim::run calls
// sharing one const matrix / fault plan / arrival stream — the pattern the
// availability bench uses when it sweeps cells with parallel_for.  Under
// TSan this catches any hidden mutable state behind those const refs.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "cluster/arrivals.hpp"
#include "cluster/fleet_faults.hpp"
#include "cluster/service.hpp"
#include "cluster/serving.hpp"
#include "faults/faults.hpp"
#include "sysmodel/net_eval.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr {
namespace {

using cluster::ClusterReport;
using cluster::ClusterSim;
using cluster::FleetConfig;
using cluster::PlatformTypeSpec;
using cluster::SchedulerPolicy;
using cluster::ServiceMatrix;

TEST(StressCluster, ConcurrentFaultyRunsShareOneMatrixAndPlan) {
  sysmodel::NetworkEvaluator evaluator;
  sysmodel::PlatformCache cache;
  sysmodel::PlatformParams params;
  params.fidelity = sysmodel::Fidelity::kAnalytical;
  params.sim_cycles = 4'000;
  params.drain_cycles = 20'000;
  params.net_eval = &evaluator;
  params.platform_cache = &cache;

  std::vector<PlatformTypeSpec> types;
  PlatformTypeSpec t;
  t.label = "vfi-winoc";
  t.params = params;
  t.params.kind = sysmodel::SystemKind::kVfiWinoc;
  t.count = 2;
  types.push_back(t);
  t.label = "nvfi-mesh";
  t.params = params;
  t.params.kind = sysmodel::SystemKind::kNvfiMesh;
  t.count = 1;
  types.push_back(t);

  const std::vector<workload::AppProfile> profs = {
      workload::make_profile(workload::App::kWC),
      workload::make_profile(workload::App::kHist)};

  // Surface (a): the 8-worker batched evaluation races cache fills against
  // each other if the platform cache's locking is wrong.
  const ServiceMatrix matrix =
      ServiceMatrix::evaluate(profs, types, sysmodel::FullSystemSim{}, 8);

  const double capacity = cluster::fleet_capacity_jobs_per_s(matrix, types);
  cluster::ArrivalConfig acfg;
  acfg.rate_jobs_per_s = 0.8 * capacity;
  acfg.job_count = 2'000;
  acfg.app_mix.assign(workload::kAllApps.size(), 0.0);
  acfg.app_mix[static_cast<std::size_t>(workload::App::kWC)] = 1.0;
  acfg.app_mix[static_cast<std::size_t>(workload::App::kHist)] = 1.0;
  acfg.seed = 11;
  const auto arrivals = cluster::make_arrivals(acfg);
  const double span = arrivals.back().time_s * 1.2;

  faults::FleetFaultSpec spec;
  spec.crash_rate_per_ks = 3.0 / (span / 1000.0);
  spec.degrade_rate_per_ks = 0.5 * spec.crash_rate_per_ks;
  spec.mean_repair_s = 0.04 * span;
  spec.mean_degrade_s = 0.04 * span;
  spec.degrade_slowdown = 2.0;
  const cluster::FleetFaultPlan plan =
      cluster::FleetFaultPlan::from_spec(spec, 3, span);
  ASSERT_FALSE(plan.empty());

  FleetConfig fleet;
  fleet.types = types;
  fleet.policy = SchedulerPolicy::kEdpGreedy;
  fleet.faults = plan;
  fleet.retry.max_attempts = 3;
  fleet.retry.backoff_base_s = 0.01 * span;
  fleet.hedge.latency_multiplier = 3.0;

  // Surface (b): independent serving loops over the same const inputs.
  constexpr std::size_t kThreads = 8;
  std::vector<ClusterReport> reports(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i) {
    pool.emplace_back([&, i] {
      reports[i] = ClusterSim::run(arrivals, fleet, matrix);
    });
  }
  for (auto& th : pool) th.join();

  ASSERT_GT(reports[0].fleet.failovers, 0u);
  ASSERT_NE(reports[0].completion_digest, 0u);
  for (std::size_t i = 1; i < kThreads; ++i) {
    EXPECT_EQ(reports[i].completion_digest, reports[0].completion_digest)
        << "thread " << i;
    EXPECT_EQ(reports[i].fleet.completed, reports[0].fleet.completed);
    EXPECT_EQ(reports[i].fleet.retries, reports[0].fleet.retries);
    EXPECT_EQ(reports[i].fleet.hedges, reports[0].fleet.hedges);
    EXPECT_EQ(reports[i].fleet.lost, reports[0].fleet.lost);
    EXPECT_EQ(reports[i].wasted_energy_j, reports[0].wasted_energy_j);
  }
}

}  // namespace
}  // namespace vfimr
