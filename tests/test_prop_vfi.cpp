// Property tests for the VFI design flow: cluster-validity invariants
// (every core assigned, equal-size islands, contiguous quadrants on the
// die), solver agreement on small instances, and V/F selection respecting
// the ladder and the bottleneck-reassignment contract of §4.2.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "harness/generators.hpp"
#include "harness/property.hpp"
#include "noc/topology.hpp"
#include "vfi/clustering.hpp"
#include "vfi/vf_assign.hpp"
#include "winoc/design.hpp"

namespace vfimr::vfi {
namespace {

/// Asserts `assignment` is an equal-size partition of `cores` cores into
/// `clusters` clusters.
void expect_valid_partition(const std::vector<std::size_t>& assignment,
                            std::size_t cores, std::size_t clusters) {
  ASSERT_EQ(assignment.size(), cores);
  std::vector<std::size_t> count(clusters, 0);
  for (std::size_t c : assignment) {
    ASSERT_LT(c, clusters);
    ++count[c];
  }
  for (std::size_t j = 0; j < clusters; ++j) {
    EXPECT_EQ(count[j], cores / clusters) << "cluster " << j;
  }
}

TEST(PropVfi, AnnealProducesValidPartitionWithConsistentCost) {
  test::for_each_seed(6, [](Rng& rng, std::uint64_t seed) {
    const std::size_t clusters = 2 + rng.uniform_u64(3);       // 2..4
    const std::size_t per_cluster = 2 + rng.uniform_u64(3);    // 2..4
    const std::size_t cores = clusters * per_cluster;
    const auto problem = test::random_clustering_problem(rng, cores, clusters);

    AnnealParams params;
    params.iterations = 3'000;
    params.restarts = 1;
    params.seed = seed;
    const ClusteringResult result = solve_anneal(problem, params);

    expect_valid_partition(result.assignment, cores, clusters);
    const ClusteringCost cost{problem};
    EXPECT_NEAR(result.cost, cost.cost(result.assignment),
                1e-9 * (1.0 + std::abs(result.cost)));

    // Determinism: the same seed reproduces the same assignment.
    const ClusteringResult again = solve_anneal(problem, params);
    EXPECT_EQ(again.assignment, result.assignment);
    EXPECT_DOUBLE_EQ(again.cost, result.cost);
  });
}

TEST(PropVfi, ExactMatchesBruteForceOnTinyInstances) {
  test::for_each_seed(5, [](Rng& rng, std::uint64_t) {
    const std::size_t clusters = 2 + rng.uniform_u64(2);  // 2..3
    const std::size_t cores = clusters * (2 + rng.uniform_u64(2));
    const auto problem = test::random_clustering_problem(rng, cores, clusters);

    const ClusteringResult exact = solve_exact(problem);
    const ClusteringResult brute = solve_brute_force(problem);
    EXPECT_TRUE(exact.optimal);
    EXPECT_NEAR(exact.cost, brute.cost, 1e-9 * (1.0 + std::abs(brute.cost)));
    expect_valid_partition(exact.assignment, cores, clusters);

    // The anneal heuristic may only ever be as good as or worse than exact.
    AnnealParams params;
    params.iterations = 2'000;
    params.restarts = 1;
    const ClusteringResult anneal = solve_anneal(problem, params);
    EXPECT_GE(anneal.cost, exact.cost - 1e-9 * (1.0 + std::abs(exact.cost)));
  });
}

TEST(PropVfi, DesignVfiCoversAllCoresAndRespectsLadder) {
  test::for_each_seed(4, [](Rng& rng, std::uint64_t seed) {
    constexpr std::size_t kCores = 64;
    const auto sample = test::random_utilization(rng, kCores);
    const Matrix traffic = test::random_traffic(rng, kCores, 0.1, 0.01);
    const power::VfTable& table = power::VfTable::standard();

    VfiDesignParams params;
    params.anneal.iterations = 3'000;
    params.anneal.restarts = 1;
    params.anneal.seed = seed;
    const VfiDesign design =
        design_vfi(sample.utilization, traffic, sample.masters, table, params);

    expect_valid_partition(design.assignment, kCores, params.clusters);
    ASSERT_EQ(design.vfi1.size(), params.clusters);
    ASSERT_EQ(design.vfi2.size(), params.clusters);
    for (std::size_t j = 0; j < params.clusters; ++j) {
      // Both operating points must exist in the ladder (index_of throws on
      // foreign points) and VFI 2 may only ever raise a cluster.
      (void)table.index_of(design.vfi1[j]);
      (void)table.index_of(design.vfi2[j]);
      EXPECT_GE(design.vfi2[j].freq_hz, design.vfi1[j].freq_hz);
      const bool raised =
          std::find(design.raised_clusters.begin(),
                    design.raised_clusters.end(),
                    j) != design.raised_clusters.end();
      EXPECT_EQ(raised, design.vfi2[j].freq_hz > design.vfi1[j].freq_hz)
          << "cluster " << j;
    }

    // Every bottleneck core's cluster satisfies its VFI 2 requirement.
    for (std::size_t b : sample.masters) {
      const power::VfPoint required = table.at_least(
          table.max().freq_hz * sample.utilization[b] /
          params.select.util_target);
      EXPECT_GE(design.vfi2[design.assignment[b]].freq_hz, required.freq_hz);
    }
  });
}

TEST(PropVfi, SelectVfPicksLowestSufficientLadderPoint) {
  test::for_each_seed(8, [](Rng& rng, std::uint64_t) {
    const std::size_t clusters = 2 + rng.uniform_u64(3);
    const std::size_t cores = clusters * (2 + rng.uniform_u64(6));
    const auto problem = test::random_clustering_problem(rng, cores, clusters);
    std::vector<std::size_t> assignment(cores);
    for (std::size_t i = 0; i < cores; ++i) {
      assignment[i] = i % clusters;  // valid, equal sizes
    }
    const power::VfTable table = test::random_vf_table(rng);
    VfSelectParams params;
    params.util_target = rng.uniform(0.5, 1.0);

    const auto vf =
        select_vf(problem.utilization, assignment, clusters, table, params);
    ASSERT_EQ(vf.size(), clusters);
    for (std::size_t j = 0; j < clusters; ++j) {
      double sum = 0.0;
      std::size_t count = 0;
      for (std::size_t i = 0; i < cores; ++i) {
        if (assignment[i] == j) {
          sum += problem.utilization[i];
          ++count;
        }
      }
      const double required =
          table.max().freq_hz * (sum / count) / params.util_target;
      const std::size_t idx = table.index_of(vf[j]);
      if (required <= table.max().freq_hz) {
        EXPECT_GE(vf[j].freq_hz, required);
        if (idx > 0) {
          EXPECT_LT(table[idx - 1].freq_hz, required)
              << "not the lowest sufficient point for cluster " << j;
        }
      } else {
        EXPECT_EQ(idx, table.size() - 1);
      }
    }
  });
}

/// The die's VFI islands: the quadrant map must cover all 64 switches with
/// four equal, physically contiguous islands (a VFI shares one voltage rail
/// and clock domain, so scattered islands are physically meaningless).
TEST(QuadrantClusters, CoversDieWithContiguousEqualIslands) {
  const auto clusters = winoc::quadrant_clusters();
  ASSERT_EQ(clusters.size(), 64u);
  expect_valid_partition(clusters, 64, 4);

  const noc::Topology mesh = noc::make_mesh(8, 8);
  for (std::size_t island = 0; island < 4; ++island) {
    std::set<graph::NodeId> members;
    for (graph::NodeId n = 0; n < 64; ++n) {
      if (clusters[n] == island) members.insert(n);
    }
    ASSERT_EQ(members.size(), 16u);
    // BFS within the island over mesh adjacency must reach every member.
    std::set<graph::NodeId> seen;
    std::vector<graph::NodeId> frontier{*members.begin()};
    seen.insert(*members.begin());
    while (!frontier.empty()) {
      const graph::NodeId n = frontier.back();
      frontier.pop_back();
      for (graph::NodeId nb : mesh.graph.neighbors(n)) {
        if (members.count(nb) && !seen.count(nb)) {
          seen.insert(nb);
          frontier.push_back(nb);
        }
      }
    }
    EXPECT_EQ(seen.size(), members.size())
        << "island " << island << " is not contiguous";
  }
}

}  // namespace
}  // namespace vfimr::vfi
