// End-to-end correctness of the six Phoenix++-style applications against
// straightforward reference implementations.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <sstream>

#include "mapreduce/apps/histogram.hpp"
#include "mapreduce/apps/kmeans.hpp"
#include "mapreduce/apps/linear_regression.hpp"
#include "mapreduce/apps/matrix_multiply.hpp"
#include "mapreduce/apps/pca.hpp"
#include "mapreduce/apps/wordcount.hpp"

namespace vfimr::mr::apps {
namespace {

TEST(WordCount, MatchesReferenceCounts) {
  WordCountConfig cfg;
  cfg.word_count = 20'000;
  cfg.vocabulary = 500;
  cfg.map_tasks = 17;
  cfg.scheduler.workers = 4;
  const std::string text = generate_text(cfg);

  // Reference: std::map tokenizer.
  std::map<std::string, std::uint64_t> ref;
  std::istringstream in{text};
  std::string w;
  std::uint64_t total = 0;
  while (in >> w) {
    ++ref[w];
    ++total;
  }

  const auto result = word_count(text, cfg);
  EXPECT_EQ(result.total_words, total);
  ASSERT_EQ(result.counts.size(), ref.size());
  for (const auto& [key, count] : result.counts) {
    EXPECT_EQ(count, ref.at(key)) << key;
  }
}

TEST(WordCount, HandlesExplicitText) {
  WordCountConfig cfg;
  cfg.map_tasks = 3;
  cfg.scheduler.workers = 2;
  const auto result = word_count("the cat and the hat and the bat", cfg);
  std::map<std::string, std::uint64_t> got(result.counts.begin(),
                                           result.counts.end());
  EXPECT_EQ(got.at("the"), 3u);
  EXPECT_EQ(got.at("and"), 2u);
  EXPECT_EQ(got.at("cat"), 1u);
  EXPECT_EQ(result.total_words, 8u);
}

TEST(WordCount, EmptyText) {
  WordCountConfig cfg;
  cfg.map_tasks = 4;
  cfg.scheduler.workers = 2;
  const auto result = word_count("", cfg);
  EXPECT_TRUE(result.counts.empty());
  EXPECT_EQ(result.total_words, 0u);
}

TEST(WordCount, ChunkBoundariesNeverSplitWords) {
  // Many tasks over a short text stresses the chunk-snapping logic.
  WordCountConfig cfg;
  cfg.map_tasks = 64;
  cfg.scheduler.workers = 4;
  const auto result = word_count("alpha beta gamma delta", cfg);
  EXPECT_EQ(result.total_words, 4u);
  EXPECT_EQ(result.counts.size(), 4u);
}

TEST(Histogram, MatchesDirectCount) {
  HistogramConfig cfg;
  cfg.pixel_count = 30'000;
  cfg.map_tasks = 13;
  cfg.scheduler.workers = 4;
  const auto rgb = generate_image(cfg);

  std::array<std::array<std::uint64_t, 256>, 3> ref{};
  for (std::size_t p = 0; p < cfg.pixel_count; ++p) {
    for (std::size_t c = 0; c < 3; ++c) ++ref[c][rgb[p * 3 + c]];
  }
  const auto result = histogram(rgb, cfg);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t v = 0; v < 256; ++v) {
      ASSERT_EQ(result.bins[c][v], ref[c][v]) << c << "/" << v;
    }
  }
}

TEST(Histogram, TotalsEqualPixelCount) {
  HistogramConfig cfg;
  cfg.pixel_count = 5'000;
  cfg.scheduler.workers = 2;
  const auto result = run_histogram(cfg);
  for (std::size_t c = 0; c < 3; ++c) {
    std::uint64_t total = 0;
    for (std::size_t v = 0; v < 256; ++v) total += result.bins[c][v];
    EXPECT_EQ(total, cfg.pixel_count);
  }
}

TEST(LinearRegression, RecoversTrueLine) {
  LinearRegressionConfig cfg;
  cfg.sample_count = 50'000;
  cfg.true_slope = -1.75;
  cfg.true_intercept = 12.0;
  cfg.noise_stddev = 1.0;
  cfg.scheduler.workers = 4;
  const auto result = run_linear_regression(cfg);
  EXPECT_EQ(result.samples, cfg.sample_count);
  EXPECT_NEAR(result.slope, cfg.true_slope, 0.01);
  EXPECT_NEAR(result.intercept, cfg.true_intercept, 0.1);
}

TEST(LinearRegression, NoiselessExact) {
  LinearRegressionConfig cfg;
  cfg.sample_count = 1'000;
  cfg.noise_stddev = 0.0;
  cfg.true_slope = 3.0;
  cfg.true_intercept = -4.0;
  cfg.scheduler.workers = 2;
  const auto result = run_linear_regression(cfg);
  EXPECT_NEAR(result.slope, 3.0, 1e-9);
  EXPECT_NEAR(result.intercept, -4.0, 1e-7);
}

TEST(MatrixMultiply, MatchesDirectProduct) {
  MatrixMultiplyConfig cfg;
  cfg.dimension = 48;
  cfg.map_tasks = 9;
  cfg.scheduler.workers = 4;
  const Matrix a = generate_matrix(cfg.dimension, 1);
  const Matrix b = generate_matrix(cfg.dimension, 2);
  const auto result = matrix_multiply(a, b, cfg);
  const Matrix ref = a * b;
  for (std::size_t i = 0; i < cfg.dimension; ++i) {
    for (std::size_t j = 0; j < cfg.dimension; ++j) {
      ASSERT_NEAR(result.product(i, j), ref(i, j), 1e-9);
    }
  }
}

TEST(MatrixMultiply, IdentityTimesIdentity) {
  MatrixMultiplyConfig cfg;
  cfg.dimension = 8;
  cfg.map_tasks = 8;
  cfg.scheduler.workers = 2;
  const Matrix id = Matrix::identity(8);
  const auto result = matrix_multiply(id, id, cfg);
  EXPECT_EQ(result.product, id);
}

TEST(Kmeans, RecoversWellSeparatedClusters) {
  KmeansConfig cfg;
  cfg.point_count = 4'000;
  cfg.dimensions = 8;
  cfg.clusters = 4;
  cfg.map_tasks = 16;
  cfg.scheduler.workers = 4;
  const auto points = generate_points(cfg);
  const auto result = kmeans(points, cfg);
  EXPECT_GE(result.iterations, 1u);
  EXPECT_EQ(result.centroids.size(), 4u);
  EXPECT_EQ(result.assignment.size(), points.size());

  // Every point must be closest to its assigned centroid (local optimum).
  auto dist2 = [](const std::vector<double>& a, const std::vector<double>& b) {
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      d += (a[i] - b[i]) * (a[i] - b[i]);
    }
    return d;
  };
  for (std::size_t i = 0; i < points.size(); i += 97) {
    const double assigned = dist2(points[i], result.centroids[result.assignment[i]]);
    for (const auto& c : result.centroids) {
      EXPECT_LE(assigned, dist2(points[i], c) + 1e-6);
    }
  }
}

TEST(Kmeans, SingleClusterIsMean) {
  KmeansConfig cfg;
  cfg.point_count = 500;
  cfg.dimensions = 3;
  cfg.clusters = 1;
  cfg.map_tasks = 4;
  cfg.scheduler.workers = 2;
  const auto points = generate_points(cfg);
  const auto result = kmeans(points, cfg);
  std::vector<double> mean(3, 0.0);
  for (const auto& p : points) {
    for (std::size_t d = 0; d < 3; ++d) mean[d] += p[d];
  }
  for (auto& v : mean) v /= static_cast<double>(points.size());
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_NEAR(result.centroids[0][d], mean[d], 1e-6);
  }
}

TEST(Pca, MatchesDirectMeanAndCovariance) {
  PcaConfig cfg;
  cfg.rows = 500;
  cfg.dimensions = 12;
  cfg.map_tasks = 8;
  cfg.scheduler.workers = 4;
  const Matrix data = generate_data(cfg);
  const auto result = pca(data, cfg);

  for (std::size_t d = 0; d < cfg.dimensions; ++d) {
    double m = 0.0;
    for (std::size_t r = 0; r < cfg.rows; ++r) m += data(r, d);
    m /= static_cast<double>(cfg.rows);
    ASSERT_NEAR(result.mean[d], m, 1e-9);
  }
  for (std::size_t i = 0; i < cfg.dimensions; ++i) {
    for (std::size_t j = 0; j < cfg.dimensions; ++j) {
      double cov = 0.0;
      for (std::size_t r = 0; r < cfg.rows; ++r) {
        cov += (data(r, i) - result.mean[i]) * (data(r, j) - result.mean[j]);
      }
      cov /= static_cast<double>(cfg.rows - 1);
      ASSERT_NEAR(result.covariance(i, j), cov, 1e-9) << i << "," << j;
    }
  }
}

TEST(Pca, CovarianceIsSymmetric) {
  PcaConfig cfg;
  cfg.rows = 200;
  cfg.dimensions = 10;
  cfg.scheduler.workers = 2;
  cfg.map_tasks = 4;
  const auto result = run_pca(cfg);
  for (std::size_t i = 0; i < cfg.dimensions; ++i) {
    EXPECT_GE(result.covariance(i, i), 0.0);  // variances non-negative
    for (std::size_t j = 0; j < cfg.dimensions; ++j) {
      EXPECT_DOUBLE_EQ(result.covariance(i, j), result.covariance(j, i));
    }
  }
}

class AppWorkerSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AppWorkerSweep, WordCountInvariantUnderWorkers) {
  WordCountConfig cfg;
  cfg.word_count = 5'000;
  cfg.vocabulary = 120;
  cfg.map_tasks = 10;
  cfg.scheduler.workers = GetParam();
  const auto result = run_word_count(cfg);
  EXPECT_EQ(result.total_words, cfg.word_count);
}

INSTANTIATE_TEST_SUITE_P(Workers, AppWorkerSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace vfimr::mr::apps
