#include "winoc/wi_placement.hpp"

#include <gtest/gtest.h>

#include <set>

#include "winoc/design.hpp"
#include "winoc/smallworld.hpp"
#include "winoc/thread_mapping.hpp"
#include "workload/profile.hpp"

namespace vfimr::winoc {
namespace {

struct Fixture {
  std::vector<std::size_t> clusters = quadrant_clusters();
  Matrix node_traffic;
  noc::Topology wireline;
  SmallWorldParams params;

  Fixture() {
    const auto profile = workload::make_profile(workload::App::kWC);
    std::vector<std::size_t> thread_clusters(64);
    for (std::size_t t = 0; t < 64; ++t) thread_clusters[t] = t / 16;
    const auto mapping = map_threads_block(thread_clusters);
    node_traffic = map_traffic(profile.traffic, mapping, 64);
    Rng rng{3};
    wireline = build_wireline(node_traffic, clusters, params, rng);
  }
};

void expect_legal(const WiPlacement& placement,
                  const std::vector<std::size_t>& clusters,
                  std::size_t per_cluster) {
  ASSERT_EQ(placement.size(), 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    ASSERT_EQ(placement[c].size(), per_cluster);
    std::set<graph::NodeId> distinct(placement[c].begin(), placement[c].end());
    EXPECT_EQ(distinct.size(), per_cluster);  // no duplicate WIs
    for (graph::NodeId v : placement[c]) {
      EXPECT_EQ(clusters[v], c);  // WIs live in their own cluster
    }
  }
}

TEST(CenterPlacement, LegalAndCentral) {
  Fixture f;
  const auto placement =
      place_wis_center(f.wireline, f.clusters, f.params);
  expect_legal(placement, f.clusters, f.params.wis_per_cluster);
  // Quadrant 0 centroid is (1.5, 1.5) x 2.5mm; the nearest switches are
  // 9, 10, 17, 18 (the inner 2x2) — all chosen WIs must come from there.
  const std::set<graph::NodeId> inner = {9, 10, 17, 18};
  for (graph::NodeId v : placement[0]) {
    EXPECT_TRUE(inner.count(v)) << v;
  }
}

TEST(MinHopPlacement, LegalAndNoWorseThanCenter) {
  Fixture f;
  Rng rng{11};
  const auto center = place_wis_center(f.wireline, f.clusters, f.params);
  const auto optimized = place_wis_min_hop(f.wireline, f.node_traffic,
                                           f.clusters, f.params, rng);
  expect_legal(optimized, f.clusters, f.params.wis_per_cluster);
  EXPECT_LE(
      placement_hop_cost(f.wireline, f.node_traffic, optimized, f.params),
      placement_hop_cost(f.wireline, f.node_traffic, center, f.params) + 1e-9);
}

TEST(PlacementCost, WirelessOverlayReducesHops) {
  Fixture f;
  const auto placement = place_wis_center(f.wireline, f.clusters, f.params);
  const double with_wireless =
      placement_hop_cost(f.wireline, f.node_traffic, placement, f.params);
  // Cost without the overlay: weighted hops on the bare wireline.
  std::vector<std::vector<double>> rows(64, std::vector<double>(64));
  for (std::size_t s = 0; s < 64; ++s) {
    for (std::size_t d = 0; d < 64; ++d) rows[s][d] = f.node_traffic(s, d);
  }
  const double bare = graph::weighted_hop_count(f.wireline.graph, rows);
  EXPECT_LT(with_wireless, bare);
}

TEST(MinHopPlacement, DeterministicForSeed) {
  Fixture f;
  Rng a{21};
  Rng b{21};
  const auto pa =
      place_wis_min_hop(f.wireline, f.node_traffic, f.clusters, f.params, a);
  const auto pb =
      place_wis_min_hop(f.wireline, f.node_traffic, f.clusters, f.params, b);
  EXPECT_EQ(pa, pb);
}

TEST(DesignFlow, BothStrategiesProduceValidDesigns) {
  const auto profile = workload::make_profile(workload::App::kKmeans);
  std::vector<std::size_t> thread_clusters(64);
  for (std::size_t t = 0; t < 64; ++t) thread_clusters[t] = t / 16;

  for (auto strategy : {PlacementStrategy::kMinHopCount,
                        PlacementStrategy::kMaxWirelessUtilization}) {
    const auto design =
        build_winoc(profile.traffic, thread_clusters, strategy);
    EXPECT_TRUE(graph::is_connected(design.topology.graph));
    EXPECT_EQ(design.wireless.interfaces.size(), 12u);
    EXPECT_EQ(design.thread_to_node.size(), 64u);
    expect_legal(design.wi_nodes, design.node_cluster, 3);
    EXPECT_NEAR(design.node_traffic.sum(), profile.traffic.sum(), 1e-9);
    // Wireless edges: 3 channels x C(4,2) cliques (pairs already joined by
    // an inter-cluster wire keep the wire; parallel edges are not modeled).
    std::size_t wireless = 0;
    for (const auto& e : design.topology.graph.edges()) {
      if (e.kind == graph::EdgeKind::kWireless) ++wireless;
    }
    EXPECT_GE(wireless, 15u);
    EXPECT_LE(wireless, 18u);
  }
}

}  // namespace
}  // namespace vfimr::winoc
