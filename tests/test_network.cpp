#include "noc/network.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "noc/traffic.hpp"

namespace vfimr::noc {
namespace {

struct MeshFixture {
  Topology topo = make_mesh(4, 4);
  XyRouting routing{topo.graph, 4, 4};
};

TEST(Network, SinglePacketLatency) {
  MeshFixture f;
  Network net{f.topo, f.routing};
  // (0,0) -> (3,0): 3 hops, 4 flits.
  net.inject(0, 3, 4);
  EXPECT_TRUE(net.drain(100));
  const auto& m = net.metrics();
  EXPECT_EQ(m.packets_injected, 1u);
  EXPECT_EQ(m.packets_ejected, 1u);
  EXPECT_EQ(m.flits_ejected, 4u);
  // Zero-load wormhole: head needs ~hops cycles, tail 3 more, +1 eject slot.
  EXPECT_GE(m.avg_latency(), 6.0);
  EXPECT_LE(m.avg_latency(), 9.0);
}

TEST(Network, LatencyScalesWithDistance) {
  MeshFixture f;
  Network near_net{f.topo, f.routing};
  near_net.inject(0, 1, 1);
  near_net.drain(100);
  Network far_net{f.topo, f.routing};
  far_net.inject(0, 15, 1);
  far_net.drain(100);
  EXPECT_LT(near_net.metrics().avg_latency(),
            far_net.metrics().avg_latency());
}

TEST(Network, SelfInjectionRejected) {
  MeshFixture f;
  Network net{f.topo, f.routing};
  EXPECT_THROW(net.inject(3, 3, 1), RequirementError);
  EXPECT_THROW(net.inject(0, 1, 0), RequirementError);
  EXPECT_THROW(net.inject(0, 99, 1), RequirementError);
}

TEST(Network, SelfTrafficCountedAsLocalPackets) {
  // Regression: Network::run used to drop src==dest injections silently,
  // breaking conservation against a generator's offered load.  Local packets
  // never enter the network but must be counted in metrics_.packets_local.
  MeshFixture f;
  Network net{f.topo, f.routing};
  TraceTraffic gen{{
      {0, {0, 0, 4}},   // self
      {0, {0, 5, 4}},   // real
      {1, {7, 7, 2}},   // self
      {2, {7, 7, 2}},   // self
      {3, {15, 0, 4}},  // real
  }};
  net.run(&gen, 10);
  EXPECT_TRUE(net.drain(200));
  const auto& m = net.metrics();
  EXPECT_EQ(m.packets_local, 3u);
  EXPECT_EQ(m.packets_injected, 2u);
  EXPECT_EQ(m.packets_ejected, 2u);
  // Conservation over the generator's offered load.
  EXPECT_EQ(m.packets_injected + m.packets_local, 5u);
  // Local packets contribute no flits, hops, or latency samples.
  EXPECT_EQ(m.flits_ejected, 8u);
  EXPECT_EQ(m.packet_latency.count(), 2u);
}

TEST(Network, FlitConservationUnderLoad) {
  MeshFixture f;
  Network net{f.topo, f.routing};
  UniformRandomTraffic gen{16, 0.05, 4, 99};
  net.run(&gen, 5000);
  EXPECT_TRUE(net.drain(20'000));
  const auto& m = net.metrics();
  EXPECT_EQ(m.packets_injected, m.packets_ejected);
  EXPECT_EQ(m.flits_ejected, m.packets_ejected * 4);
  EXPECT_EQ(net.in_flight_flits(), 0u);
  EXPECT_GT(m.packets_injected, 1000u);
}

TEST(Network, WormholeKeepsPacketsContiguousPerPair) {
  // Heavy single-pair traffic: every packet must still arrive complete.
  MeshFixture f;
  Network net{f.topo, f.routing};
  for (int i = 0; i < 50; ++i) net.inject(0, 15, 7);
  EXPECT_TRUE(net.drain(5000));
  EXPECT_EQ(net.metrics().packets_ejected, 50u);
  EXPECT_EQ(net.metrics().flits_ejected, 350u);
}

TEST(Network, EnergyCountersConsistent) {
  MeshFixture f;
  Network net{f.topo, f.routing};
  net.inject(0, 3, 2);  // 3 hops x 2 flits
  net.drain(100);
  const auto& e = net.metrics().energy;
  EXPECT_EQ(e.wire_hops, 6u);
  EXPECT_EQ(e.switch_traversals, 6u);  // all-wire mesh
  EXPECT_EQ(e.wireless_flits, 0u);
  EXPECT_DOUBLE_EQ(e.wire_mm_flits, 6 * 2.5);
  // Every wire hop writes one buffer; reads cover hops + final ejections.
  EXPECT_EQ(e.buffer_writes, 6u);
  EXPECT_EQ(e.buffer_reads, 6u + 2u);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run_once = [] {
    MeshFixture f;
    Network net{f.topo, f.routing};
    UniformRandomTraffic gen{16, 0.08, 4, 7};
    net.run(&gen, 3000);
    net.drain(20'000);
    return net.metrics().packet_latency.mean();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Network, SyncPenaltySlowsBoundaryCrossings) {
  MeshFixture f;
  SimConfig plain;
  Network a{f.topo, f.routing, plain};
  a.inject(0, 15, 4);
  a.drain(200);

  SimConfig vfi;
  vfi.node_cluster = {0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3};
  vfi.sync_penalty_cycles = 3;
  Network b{f.topo, f.routing, vfi};
  b.inject(0, 15, 4);
  b.drain(200);

  EXPECT_GT(b.metrics().avg_latency(), a.metrics().avg_latency());
}

TEST(Network, SaturationBacklogTracksInFlight) {
  // Absurd injection rate: network cannot drain within the horizon and
  // in-flight flits remain — the simulator must report that honestly.
  MeshFixture f;
  Network net{f.topo, f.routing};
  UniformRandomTraffic gen{16, 1.0, 8, 5};
  net.run(&gen, 2000);
  EXPECT_GT(net.in_flight_flits(), 0u);
  const bool drained = net.drain(10);
  EXPECT_FALSE(drained);
}

TEST(Network, ThroughputMetric) {
  MeshFixture f;
  Network net{f.topo, f.routing};
  UniformRandomTraffic gen{16, 0.05, 4, 99};
  net.run(&gen, 5000);
  net.drain(20'000);
  const double tput = net.metrics().throughput(16);
  EXPECT_GT(tput, 0.0);
  EXPECT_LT(tput, 1.0);
}

class InjectionSweep : public ::testing::TestWithParam<double> {};

TEST_P(InjectionSweep, ConservationAndMonotoneLatency) {
  MeshFixture f;
  Network net{f.topo, f.routing};
  UniformRandomTraffic gen{16, GetParam(), 4, 123};
  net.run(&gen, 4000);
  ASSERT_TRUE(net.drain(100'000));
  const auto& m = net.metrics();
  EXPECT_EQ(m.packets_injected, m.packets_ejected);
  EXPECT_GE(m.avg_latency(), 4.0);  // at least serialization
}

INSTANTIATE_TEST_SUITE_P(Rates, InjectionSweep,
                         ::testing::Values(0.005, 0.02, 0.05, 0.10));

}  // namespace
}  // namespace vfimr::noc
