// Concurrency stress for the fault-tolerant MapReduce runtime, meant for the
// sanitizer pass (tier2): many workers, dense death plans and aggressive
// straggler speculation hammer the scheduler's task lifecycle and the
// engine's commit-once staging under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>

#include "faults/faults.hpp"
#include "harness/property.hpp"
#include "mapreduce/apps/wordcount.hpp"
#include "mapreduce/engine.hpp"
#include "mapreduce/scheduler.hpp"

namespace vfimr::mr {
namespace {

TEST(StressFaults, SchedulerSurvivesDenseDeathsAndSpeculation) {
  test::for_each_seed(4, [](Rng& rng, std::uint64_t seed) {
    const std::size_t workers = 4 + rng.uniform_u64(8);
    auto plan = faults::make_worker_fault_plan(
        workers, /*death_prob=*/0.6, /*max_after_tasks=*/6, seed);
    plan.straggler_multiple = 1.5;
    plan.straggler_min_seconds = 1e-4;

    SchedulerConfig cfg;
    cfg.workers = workers;
    cfg.faults = &plan;
    TaskScheduler sched{cfg};

    constexpr std::size_t kTasks = 160;
    std::vector<std::atomic<std::uint32_t>> runs(kTasks);
    std::atomic<std::uint64_t> total{0};
    const auto stats = sched.run(kTasks, [&](std::size_t task, std::size_t) {
      runs[task].fetch_add(1, std::memory_order_relaxed);
      total.fetch_add(task, std::memory_order_relaxed);
      // Keep the pool alive past (sanitizer-slowed) thread startup so the
      // scheduled deaths actually get a chance to fire.
      std::this_thread::sleep_for(
          std::chrono::microseconds(task % 37 == 0 ? 400 : 100));
    });
    for (std::size_t t = 0; t < kTasks; ++t) {
      ASSERT_GE(runs[t].load(), 1u) << "task " << t << " lost";
    }
    // A death only fires if its worker claims enough tasks before the pool
    // drains; under sanitizers thread startup is slow enough that late
    // workers can miss all their picks, so bound the count instead of
    // demanding every scheduled death.
    EXPECT_GE(stats.workers_died, 1u);
    EXPECT_LE(stats.workers_died, plan.deaths.size());
  });
}

TEST(StressFaults, EngineOutputStableAcrossHostileInterleavings) {
  using CountEngine = Engine<std::string, std::uint64_t>;
  auto run_with = [](std::size_t workers,
                     const faults::WorkerFaultPlan* plan) {
    CountEngine::Options o;
    o.scheduler.workers = workers;
    o.scheduler.faults = plan;
    CountEngine engine{o};
    const auto result =
        engine.run(120, [](std::size_t task, CountEngine::Emitter& em) {
          em.emit("mod" + std::to_string(task % 13), task * task + 1);
          em.emit("all", 1);
          if (task % 29 == 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(300));
          }
        });
    std::map<std::string, std::uint64_t> got;
    for (const auto& kv : result.pairs) got[kv.key] = kv.value;
    return got;
  };

  faults::WorkerFaultPlan clean;
  const auto ref = run_with(1, &clean);
  test::for_each_seed(4, [&](Rng& rng, std::uint64_t seed) {
    const std::size_t workers = 3 + rng.uniform_u64(9);
    auto plan = faults::make_worker_fault_plan(workers, 0.7, 8, seed);
    plan.straggler_multiple = 1.0;
    plan.straggler_min_seconds = 5e-5;
    EXPECT_EQ(run_with(workers, &plan), ref)
        << workers << " workers, " << plan.deaths.size() << " deaths";
  });
}

TEST(StressFaults, WordCountUnderRepeatedFaultPlans) {
  apps::WordCountConfig cfg;
  cfg.word_count = 60'000;
  cfg.vocabulary = 1'500;
  cfg.map_tasks = 48;
  cfg.scheduler.workers = 8;

  faults::WorkerFaultPlan clean;
  cfg.scheduler.faults = &clean;
  const auto ref = apps::run_word_count(cfg);

  test::for_each_seed(3, [&](Rng&, std::uint64_t seed) {
    auto plan = faults::make_worker_fault_plan(8, 0.8, 10, seed);
    plan.straggler_multiple = 2.0;
    plan.straggler_min_seconds = 1e-4;
    apps::WordCountConfig faulty = cfg;
    faulty.scheduler.faults = &plan;
    const auto got = apps::run_word_count(faulty);
    EXPECT_EQ(got.counts, ref.counts);
    EXPECT_EQ(got.total_words, ref.total_words);
  });
}

}  // namespace
}  // namespace vfimr::mr
