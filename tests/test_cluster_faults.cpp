// Tests for the cluster fault-tolerance layer (DESIGN.md §14): fleet fault
// plan normalization and superset thinning, the zero-fault bit-identity
// contract, retry/backoff edge cases (retry exactly at the deadline, every
// instance down, repair mid-backoff), hedged-request first-wins semantics
// and deterministic tie-breaking, and job conservation under heavy fault
// plans.  Single app x single platform type in the analytical band keeps
// every scenario exact and tier-1 fast.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/arrivals.hpp"
#include "cluster/fleet_faults.hpp"
#include "cluster/service.hpp"
#include "cluster/serving.hpp"
#include "common/require.hpp"
#include "faults/faults.hpp"
#include "sysmodel/net_eval.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr {
namespace {

using cluster::ClusterReport;
using cluster::ClusterSim;
using cluster::FleetConfig;
using cluster::FleetFaultPlan;
using cluster::InstanceState;
using cluster::InstanceStateChange;
using cluster::JobArrival;
using cluster::PlatformTypeSpec;
using cluster::ServiceMatrix;
using faults::PlatformFault;
using faults::PlatformFaultKind;

// ----------------------------------------------------- plan normalization

TEST(FleetFaultPlan, EmptyPlanIsImmortal) {
  const FleetFaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.changes().size(), 0u);
  EXPECT_EQ(plan.down_seconds(1e9), 0.0);
}

TEST(FleetFaultPlan, NormalizesOverlappingWindows) {
  // Crash [2, 5) overlapping degrade [1, 8) x2 and degrade [6, 7) x3 on one
  // instance: degraded(2x) -> down -> degraded(2x) -> degraded(3x at 6 is
  // inside [6,7)) -> back to 2x -> up.
  std::vector<PlatformFault> f;
  f.push_back({0, PlatformFaultKind::kDegrade, 1.0, 8.0, 2.0});
  f.push_back({0, PlatformFaultKind::kCrash, 2.0, 5.0, 1.0});
  f.push_back({0, PlatformFaultKind::kDegrade, 6.0, 7.0, 3.0});
  const FleetFaultPlan plan{f, 1};
  const auto& ch = plan.changes();
  ASSERT_EQ(ch.size(), 6u);
  auto expect = [&](std::size_t i, double t, InstanceState s, double slow) {
    EXPECT_EQ(ch[i].time_s, t) << i;
    EXPECT_EQ(ch[i].state, s) << i;
    EXPECT_EQ(ch[i].slowdown, slow) << i;
  };
  expect(0, 1.0, InstanceState::kDegraded, 2.0);
  expect(1, 2.0, InstanceState::kDown, 1.0);
  expect(2, 5.0, InstanceState::kDegraded, 2.0);
  expect(3, 6.0, InstanceState::kDegraded, 3.0);  // worst slowdown wins
  expect(4, 7.0, InstanceState::kDegraded, 2.0);
  expect(5, 8.0, InstanceState::kUp, 1.0);
  EXPECT_EQ(plan.down_seconds(100.0), 3.0);
  EXPECT_EQ(plan.down_seconds(4.0), 2.0);  // truncated at the horizon
}

TEST(FleetFaultPlan, RejectsMalformedWindows) {
  std::vector<PlatformFault> bad_instance;
  bad_instance.push_back({3, PlatformFaultKind::kCrash, 0.0, 1.0, 1.0});
  EXPECT_THROW((FleetFaultPlan{bad_instance, 2}), RequirementError);

  std::vector<PlatformFault> inverted;
  inverted.push_back({0, PlatformFaultKind::kCrash, 2.0, 2.0, 1.0});
  EXPECT_THROW((FleetFaultPlan{inverted, 1}), RequirementError);

  std::vector<PlatformFault> negative;
  negative.push_back({0, PlatformFaultKind::kCrash, -1.0, 1.0, 1.0});
  EXPECT_THROW((FleetFaultPlan{negative, 1}), RequirementError);

  std::vector<PlatformFault> weak;
  weak.push_back({0, PlatformFaultKind::kDegrade, 0.0, 1.0, 0.5});
  EXPECT_THROW((FleetFaultPlan{weak, 1}), RequirementError);
}

TEST(FleetFaults, GeneratorIsDeterministicAndSuperset) {
  faults::FleetFaultSpec lo;
  lo.crash_rate_per_ks = 50.0;
  lo.degrade_rate_per_ks = 20.0;
  lo.mean_repair_s = 5.0;
  lo.mean_degrade_s = 8.0;
  faults::FleetFaultSpec hi = lo;
  hi.crash_rate_per_ks = 200.0;
  hi.degrade_rate_per_ks = 80.0;

  const auto a = faults::make_fleet_faults(lo, 4, 500.0);
  const auto b = faults::make_fleet_faults(lo, 4, 500.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_s, b[i].at_s);
    EXPECT_EQ(a[i].instance, b[i].instance);
  }

  // Thinning: every event accepted at the low rate is accepted at the high
  // rate too (same candidate stream, wider acceptance band).
  const auto big = faults::make_fleet_faults(hi, 4, 500.0);
  EXPECT_GT(big.size(), a.size());
  for (const PlatformFault& e : a) {
    bool found = false;
    for (const PlatformFault& f : big) {
      found = found || (f.instance == e.instance && f.kind == e.kind &&
                        f.at_s == e.at_s && f.until_s == e.until_s);
    }
    EXPECT_TRUE(found) << "event at " << e.at_s << " lost at higher rate";
  }

  faults::FleetFaultSpec bad;
  bad.crash_rate_per_ks = faults::kMaxFleetFaultRatePerKs + 1.0;
  EXPECT_THROW(faults::make_fleet_faults(bad, 1, 10.0), RequirementError);
}

// ----------------------------------------------------- serving scenarios

/// One app (WC) on one platform type (VFI WiNoC), analytical band; fleets
/// vary only the instance count, so a single ServiceMatrix serves every
/// scenario and the service time E = at(0, 0).exec_s is exact.
class ClusterFaultsTest : public ::testing::Test {
 protected:
  static std::vector<PlatformTypeSpec> fleet_types(std::size_t count) {
    sysmodel::PlatformParams p;
    p.fidelity = sysmodel::Fidelity::kAnalytical;
    p.sim_cycles = 4'000;
    p.drain_cycles = 20'000;
    p.net_eval = &evaluator();
    p.platform_cache = &platforms();
    p.kind = sysmodel::SystemKind::kVfiWinoc;
    PlatformTypeSpec t;
    t.label = "vfi-winoc";
    t.params = p;
    t.count = count;
    return {t};
  }

  static sysmodel::NetworkEvaluator& evaluator() {
    static sysmodel::NetworkEvaluator e;
    return e;
  }
  static sysmodel::PlatformCache& platforms() {
    static sysmodel::PlatformCache c;
    return c;
  }

  static const ServiceMatrix& matrix() {
    static const ServiceMatrix m = ServiceMatrix::evaluate(
        {workload::make_profile(workload::App::kWC)}, fleet_types(1),
        sysmodel::FullSystemSim{});
    return m;
  }

  static double service_s() { return matrix().at(0, 0).exec_s; }

  static JobArrival job_at(double t, double deadline_s = 0.0) {
    return JobArrival{t, workload::App::kWC, deadline_s};
  }
};

TEST_F(ClusterFaultsTest, ZeroFaultPlanIsBitIdenticalToFaultFreeLoop) {
  cluster::ArrivalConfig cfg;
  cfg.rate_jobs_per_s = 2.0 / service_s();
  cfg.job_count = 3'000;
  cfg.seed = 11;
  cfg.app_mix.assign(workload::kAllApps.size(), 0.0);
  cfg.app_mix[static_cast<std::size_t>(workload::App::kWC)] = 1.0;
  const auto arrivals = cluster::make_arrivals(cfg);

  FleetConfig plain;
  plain.types = fleet_types(3);
  FleetConfig armed = plain;  // retry armed, but nothing to retry
  armed.retry.max_attempts = 5;
  armed.retry.backoff_base_s = 0.25 * service_s();

  const ClusterReport a = ClusterSim::run(arrivals, plain, matrix());
  const ClusterReport b = ClusterSim::run(arrivals, armed, matrix());
  EXPECT_EQ(a.completion_digest, b.completion_digest);
  EXPECT_EQ(a.fleet.completed, b.fleet.completed);
  EXPECT_EQ(a.fleet.latency_s.sum(), b.fleet.latency_s.sum());
  EXPECT_EQ(a.fleet.energy_j.sum(), b.fleet.energy_j.sum());
  EXPECT_EQ(a.busy_seconds, b.busy_seconds);
  EXPECT_EQ(b.fleet.retries, 0u);
  EXPECT_EQ(b.fleet.failovers, 0u);
  EXPECT_EQ(b.fleet.lost, 0u);
  EXPECT_EQ(b.wasted_energy_j, 0.0);
  EXPECT_EQ(b.down_seconds, 0.0);
  EXPECT_EQ(b.availability(), 1.0);
}

TEST_F(ClusterFaultsTest, RetryExactlyAtTheDeadlineIsShed) {
  const double e = service_s();
  const double crash_at = 0.5 * e;
  const double backoff = 0.25 * e;
  // fire = crash_at + backoff lands bit-exactly on the absolute deadline
  // (same sum both sides): at-the-deadline counts as past it -> shed.
  const std::vector<JobArrival> arrivals = {job_at(0.0, crash_at + backoff)};

  FleetConfig fleet;
  fleet.types = fleet_types(1);
  fleet.retry.max_attempts = 3;
  fleet.retry.backoff_base_s = backoff;
  std::vector<PlatformFault> f;
  f.push_back({0, PlatformFaultKind::kCrash, crash_at, 0.6 * e, 1.0});
  fleet.faults = FleetFaultPlan{f, 1};

  const ClusterReport r = ClusterSim::run(arrivals, fleet, matrix());
  EXPECT_EQ(r.fleet.admitted, 1u);
  EXPECT_EQ(r.fleet.failovers, 1u);
  EXPECT_EQ(r.fleet.shed_retry, 1u);
  EXPECT_EQ(r.fleet.retries, 0u);
  EXPECT_EQ(r.fleet.lost, 0u);
  EXPECT_EQ(r.fleet.completed, 0u);
  // The half-served attempt is billed as waste.
  EXPECT_NEAR(r.wasted_energy_j, matrix().at(0, 0).power_w * crash_at,
              1e-9 * r.wasted_energy_j);
}

TEST_F(ClusterFaultsTest, AllInstancesDownShedsAndTerminates) {
  const std::vector<JobArrival> arrivals = {job_at(0.0), job_at(1.0),
                                            job_at(2.0)};
  FleetConfig fleet;
  fleet.types = fleet_types(1);
  fleet.retry.max_attempts = 3;
  fleet.retry.backoff_base_s = 0.5;
  std::vector<PlatformFault> f;
  f.push_back({0, PlatformFaultKind::kCrash, 0.0, 1e6, 1.0});
  fleet.faults = FleetFaultPlan{f, 1};

  // Bounded retry budget: the loop terminates with every job lost instead
  // of spinning on an all-down fleet.
  const ClusterReport r = ClusterSim::run(arrivals, fleet, matrix());
  EXPECT_EQ(r.fleet.arrived, 3u);
  EXPECT_EQ(r.fleet.admitted, 3u);
  EXPECT_EQ(r.fleet.completed, 0u);
  EXPECT_EQ(r.fleet.lost, 3u);
  EXPECT_EQ(r.fleet.retries, 0u);  // no placement ever succeeded
  EXPECT_EQ(r.wasted_energy_j, 0.0);
}

TEST_F(ClusterFaultsTest, RepairMidBackoffLandsTheRetry) {
  const double e = service_s();
  // Crash at 0.5E for 0.1E; the displaced job's first retry fires at 0.7E,
  // after the repair, and completes with exactly one retry.
  const std::vector<JobArrival> arrivals = {job_at(0.0)};
  FleetConfig fleet;
  fleet.types = fleet_types(1);
  fleet.retry.max_attempts = 3;
  fleet.retry.backoff_base_s = 0.2 * e;
  std::vector<PlatformFault> f;
  f.push_back({0, PlatformFaultKind::kCrash, 0.5 * e, 0.6 * e, 1.0});
  fleet.faults = FleetFaultPlan{f, 1};

  const ClusterReport r = ClusterSim::run(arrivals, fleet, matrix());
  EXPECT_EQ(r.fleet.completed, 1u);
  EXPECT_EQ(r.fleet.failovers, 1u);
  EXPECT_EQ(r.fleet.retries, 1u);
  EXPECT_EQ(r.fleet.lost, 0u);
  // Sojourn: 0.7E of displacement + backoff, then one clean service.
  EXPECT_NEAR(r.fleet.latency_s.mean(), 1.7 * e, 1e-12 * e);
  EXPECT_GT(r.wasted_energy_j, 0.0);
}

TEST_F(ClusterFaultsTest, HedgeTimerTiesWithCompletionAndLosesIt) {
  // With one type, the hedge budget 1.0 x mean service lands the timer
  // bit-exactly on the completion instant; completions outrank timers at
  // equal times, so the hedge never launches — the deterministic tie rule.
  const std::vector<JobArrival> arrivals = {job_at(0.0)};
  FleetConfig fleet;
  fleet.types = fleet_types(2);
  fleet.hedge.latency_multiplier = 1.0;
  const ClusterReport r = ClusterSim::run(arrivals, fleet, matrix());
  EXPECT_EQ(r.fleet.completed, 1u);
  EXPECT_EQ(r.fleet.hedges, 0u);
  EXPECT_EQ(r.wasted_energy_j, 0.0);

  // A hair under the service time, the timer fires first: the duplicate
  // launches, loses to the original, and its partial run becomes waste.
  FleetConfig eager = fleet;
  eager.hedge.latency_multiplier = 0.75;
  const ClusterReport re = ClusterSim::run(arrivals, eager, matrix());
  EXPECT_EQ(re.fleet.completed, 1u);
  EXPECT_EQ(re.fleet.hedges, 1u);
  EXPECT_EQ(re.fleet.hedge_wins, 0u);  // original (earlier seq) wins
  EXPECT_NEAR(re.wasted_energy_j,
              matrix().at(0, 0).power_w * 0.25 * service_s(),
              1e-9 * re.wasted_energy_j);
}

TEST_F(ClusterFaultsTest, HedgeWinsWhenThePrimaryDegradesInQueue) {
  const double e = service_s();
  // Jobs A, B fill both instances; C queues on instance 0, which degrades
  // 10x before C starts.  C's hedge fires at 1.5E, lands on the freed
  // instance 1 and finishes at ~2.5E while the primary would run to ~11E:
  // the duplicate wins and the primary is killed mid-run.
  const std::vector<JobArrival> arrivals = {job_at(0.0), job_at(0.01 * e),
                                            job_at(0.02 * e)};
  FleetConfig fleet;
  fleet.types = fleet_types(2);
  fleet.hedge.latency_multiplier = 1.5;
  std::vector<PlatformFault> f;
  f.push_back({0, PlatformFaultKind::kDegrade, 0.5 * e, 100.0 * e, 10.0});
  fleet.faults = FleetFaultPlan{f, 2};

  const ClusterReport r = ClusterSim::run(arrivals, fleet, matrix());
  EXPECT_EQ(r.fleet.completed, 3u);
  EXPECT_EQ(r.fleet.hedges, 1u);
  EXPECT_EQ(r.fleet.hedge_wins, 1u);
  EXPECT_EQ(r.fleet.failovers, 0u);
  EXPECT_GT(r.wasted_energy_j, 0.0);
  // C's sojourn is the hedge path (launch at ~1.52E + one clean service),
  // nowhere near the degraded 11E run.
  EXPECT_LT(r.fleet.latency_s.max(), 3.0 * e);
}

TEST_F(ClusterFaultsTest, ConservationAndMonotoneCompletionsUnderFaults) {
  cluster::ArrivalConfig cfg;
  cfg.rate_jobs_per_s = 1.4 / service_s();  // rho ~ 0.7 on 2 instances
  cfg.job_count = 4'000;
  cfg.seed = 23;
  cfg.app_mix.assign(workload::kAllApps.size(), 0.0);
  cfg.app_mix[static_cast<std::size_t>(workload::App::kWC)] = 1.0;
  const auto arrivals = cluster::make_arrivals(cfg);
  const double span = arrivals.back().time_s * 1.2;

  auto run_at = [&](double crashes_per_instance, std::size_t max_attempts) {
    FleetConfig fleet;
    fleet.types = fleet_types(2);
    fleet.retry.max_attempts = max_attempts;
    fleet.retry.backoff_base_s = 0.2 * service_s();
    fleet.hedge.latency_multiplier = 4.0;
    if (crashes_per_instance > 0.0) {
      faults::FleetFaultSpec spec;
      spec.crash_rate_per_ks = crashes_per_instance / (span / 1000.0);
      spec.mean_repair_s = 0.02 * span;
      spec.seed = 5;
      fleet.faults = FleetFaultPlan::from_spec(spec, 2, span);
    }
    return ClusterSim::run(arrivals, fleet, matrix());
  };

  const ClusterReport clean = run_at(0.0, 3);
  const ClusterReport faulty = run_at(6.0, 3);
  const ClusterReport frail = run_at(6.0, 1);

  // Every admitted job is accounted exactly once.
  for (const ClusterReport* r : {&clean, &faulty, &frail}) {
    EXPECT_EQ(r->fleet.admitted,
              r->fleet.completed + r->fleet.lost + r->fleet.shed_retry);
  }
  EXPECT_GT(faulty.fleet.failovers, 0u);
  EXPECT_GT(faulty.fleet.retries, 0u);
  // Faults can only cost completions, and retries win some of them back.
  EXPECT_LE(faulty.fleet.completed, clean.fleet.completed);
  EXPECT_GE(faulty.fleet.completed, frail.fleet.completed);
  EXPECT_GT(faulty.down_seconds, 0.0);
  EXPECT_LT(faulty.availability(), 1.0);
  EXPECT_GT(faulty.total_energy_j(), faulty.fleet.energy_j.sum());
  EXPECT_GT(faulty.fleet_edp_js(), 0.0);
}

}  // namespace
}  // namespace vfimr
