#pragma once
// Seeded property-test runner for the correctness harness.
//
// Every property test iterates a fixed number of generated cases.  Case i
// derives its seed as `base_seed + i`; the base seed defaults to a repo-wide
// constant so runs are bit-for-bit reproducible, and can be overridden with
// the VFIMR_PROPERTY_SEED environment variable.  Each case is wrapped in a
// SCOPED_TRACE carrying its seed, so any failing expectation prints the
// exact replay command:
//
//   VFIMR_PROPERTY_SEED=<seed> VFIMR_PROPERTY_CASES=1 ./test_prop_foo
//
// VFIMR_PROPERTY_CASES overrides the case count (e.g. crank it up for a
// soak run, or pin it to 1 for replay).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/rng.hpp"

namespace vfimr::test {

/// Repo-wide default base seed (the paper's venue + year).
inline constexpr std::uint64_t kDefaultBaseSeed = 0xDAC2015ULL;

inline std::uint64_t property_base_seed() {
  if (const char* env = std::getenv("VFIMR_PROPERTY_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return kDefaultBaseSeed;
}

inline int property_case_count(int default_cases) {
  if (const char* env = std::getenv("VFIMR_PROPERTY_CASES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return default_cases;
}

/// Runs `property(rng, case_seed)` for `default_cases` derived cases.
/// The Rng handed to the property is freshly seeded per case, so properties
/// are independent and a single case replays in isolation.  Stops early on
/// the first fatal failure to keep failure output focused on one seed.
template <typename Property>
void for_each_seed(int default_cases, Property&& property) {
  const std::uint64_t base = property_base_seed();
  const int cases = property_case_count(default_cases);
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t case_seed = base + static_cast<std::uint64_t>(i);
    SCOPED_TRACE("property case seed=" + std::to_string(case_seed) +
                 "  (replay: VFIMR_PROPERTY_SEED=" +
                 std::to_string(case_seed) + " VFIMR_PROPERTY_CASES=1)");
    Rng rng{case_seed};
    property(rng, case_seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace vfimr::test
