#pragma once
// Seeded random-input generators for the property/invariant tests.
//
// Every generator draws exclusively from the Rng it is handed, so a case is
// fully determined by its seed (see harness/property.hpp).  Generators
// produce *valid* inputs by construction — validity violations are the
// subject of the death/error-path tests, not of the property tests.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "mapreduce/scheduler.hpp"
#include "noc/topology.hpp"
#include "power/vf_table.hpp"
#include "sysmodel/task_sim.hpp"
#include "vfi/clustering.hpp"
#include "workload/profile.hpp"

namespace vfimr::test {

struct MeshDims {
  std::size_t width = 4;
  std::size_t height = 4;
};

/// Random mesh dimensions in [2, hi] x [2, hi].
inline MeshDims random_mesh_dims(Rng& rng, std::size_t hi = 6) {
  return MeshDims{2 + rng.uniform_u64(hi - 1), 2 + rng.uniform_u64(hi - 1)};
}

/// Random traffic-rate matrix: `density` of the off-diagonal pairs get a
/// uniform rate in (0, max_rate]; the diagonal stays zero.
inline Matrix random_traffic(Rng& rng, std::size_t nodes,
                             double density = 0.15,
                             double max_rate = 0.005) {
  Matrix m{nodes, nodes};
  for (std::size_t s = 0; s < nodes; ++s) {
    for (std::size_t d = 0; d < nodes; ++d) {
      if (s == d) continue;
      if (rng.bernoulli(density)) m(s, d) = rng.uniform(1e-5, max_rate);
    }
  }
  return m;
}

/// Random task-set description (possibly empty, possibly compute- or
/// memory-only) for the deterministic task simulator.
inline workload::TaskSet random_taskset(Rng& rng,
                                        std::size_t max_tasks = 160) {
  workload::TaskSet spec;
  spec.count = rng.uniform_u64(max_tasks + 1);
  spec.cycles_mean = rng.bernoulli(0.9) ? rng.uniform(1e5, 5e7) : 0.0;
  spec.cycles_cv = rng.uniform(0.0, 0.6);
  spec.mem_seconds_mean = rng.bernoulli(0.9) ? rng.uniform(1e-6, 5e-3) : 0.0;
  spec.mem_cv = rng.uniform(0.0, 0.6);
  return spec;
}

/// Random heterogeneous core set: every core gets a ladder point from
/// `table`; at least one core always runs at the ladder maximum so Eq. 3's
/// f_max reference exists in the configuration.
inline std::vector<sysmodel::SimCore> random_cores(
    Rng& rng, std::size_t count,
    const power::VfTable& table = power::VfTable::standard()) {
  std::vector<sysmodel::SimCore> cores(count);
  const double fmax = table.max().freq_hz;
  for (auto& c : cores) {
    const auto& p = table[rng.uniform_u64(table.size())];
    c.freq_hz = p.freq_hz;
    c.rel_freq = p.freq_hz / fmax;
  }
  cores[rng.uniform_u64(count)] = sysmodel::SimCore{fmax, 1.0};
  return cores;
}

/// Random ascending V/F ladder with voltage growing with frequency.
inline power::VfTable random_vf_table(Rng& rng, std::size_t max_points = 6) {
  const std::size_t n = 2 + rng.uniform_u64(max_points - 1);
  std::vector<power::VfPoint> pts(n);
  double v = rng.uniform(0.5, 0.7);
  double f = rng.uniform(0.8e9, 1.6e9);
  for (auto& p : pts) {
    p.voltage_v = v;
    p.freq_hz = f;
    v += rng.uniform(0.05, 0.15);
    f += rng.uniform(0.2e9, 0.5e9);
  }
  return power::VfTable{std::move(pts)};
}

/// Random VFI clustering instance with `clusters` equal-size clusters.
inline vfi::ClusteringProblem random_clustering_problem(
    Rng& rng, std::size_t cores, std::size_t clusters) {
  vfi::ClusteringProblem p;
  p.clusters = clusters;
  p.utilization.resize(cores);
  for (auto& u : p.utilization) u = rng.uniform(0.05, 1.0);
  p.traffic = random_traffic(rng, cores, 0.3, 1.0);
  return p;
}

/// Random per-thread utilization vector with a few high-utilization master
/// (bottleneck) threads, shaped like the Fig. 2 measurements.
struct UtilizationSample {
  std::vector<double> utilization;
  std::vector<std::size_t> masters;
};

inline UtilizationSample random_utilization(Rng& rng, std::size_t threads) {
  UtilizationSample s;
  s.utilization.resize(threads);
  for (auto& u : s.utilization) u = rng.uniform(0.1, 0.8);
  const std::size_t masters = 1 + rng.uniform_u64(3);
  for (std::size_t i = 0; i < masters; ++i) {
    const std::size_t t = rng.uniform_u64(threads);
    s.utilization[t] = rng.uniform(0.85, 1.0);
    if (std::find(s.masters.begin(), s.masters.end(), t) == s.masters.end()) {
      s.masters.push_back(t);
    }
  }
  return s;
}

}  // namespace vfimr::test
