#include "winoc/smallworld.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "workload/profile.hpp"

namespace vfimr::winoc {
namespace {

struct Built {
  noc::Topology topo;
  std::vector<std::size_t> clusters;
  Matrix traffic;
};

Built build(double k_intra = 3.0, double k_inter = 1.0,
            std::uint64_t seed = 13) {
  Built b;
  b.clusters.resize(64);
  for (graph::NodeId v = 0; v < 64; ++v) b.clusters[v] = quadrant_of(v, 8);
  b.traffic = workload::make_profile(workload::App::kWC).traffic;
  SmallWorldParams params;
  params.k_intra = k_intra;
  params.k_inter = k_inter;
  Rng rng{seed};
  b.topo = build_wireline(b.traffic, b.clusters, params, rng);
  return b;
}

TEST(QuadrantOf, MapsDieQuadrants) {
  EXPECT_EQ(quadrant_of(0, 8), 0u);        // (0,0)
  EXPECT_EQ(quadrant_of(7, 8), 1u);        // (7,0)
  EXPECT_EQ(quadrant_of(32, 8), 2u);       // (0,4)
  EXPECT_EQ(quadrant_of(63, 8), 3u);       // (7,7)
  EXPECT_EQ(quadrant_of(27, 8), 0u);       // (3,3)
  EXPECT_EQ(quadrant_of(28, 8), 1u);       // (4,3)
}

TEST(SmallWorld, ConnectedWithAverageDegreeFour) {
  const Built b = build();
  EXPECT_TRUE(graph::is_connected(b.topo.graph));
  // <k_intra>=3 -> 4 clusters x 24 edges; <k_inter>=1 -> 32 edges.
  EXPECT_EQ(b.topo.graph.edge_count(), 4u * 24u + 32u);
}

TEST(SmallWorld, RespectsKmax) {
  const Built b = build();
  for (graph::NodeId v = 0; v < 64; ++v) {
    EXPECT_LE(b.topo.graph.degree(v), 7u);
  }
}

TEST(SmallWorld, IntraEdgeCountsPerCluster) {
  const Built b = build();
  std::array<std::size_t, 4> intra{};
  std::size_t inter = 0;
  for (const auto& e : b.topo.graph.edges()) {
    if (b.clusters[e.a] == b.clusters[e.b]) {
      ++intra[b.clusters[e.a]];
    } else {
      ++inter;
    }
  }
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(intra[c], 24u) << "cluster " << c;
  }
  EXPECT_EQ(inter, 32u);
}

TEST(SmallWorld, EveryClusterPairLinked) {
  const Built b = build();
  std::array<std::array<bool, 4>, 4> linked{};
  for (const auto& e : b.topo.graph.edges()) {
    const auto ca = b.clusters[e.a];
    const auto cb = b.clusters[e.b];
    if (ca != cb) linked[ca][cb] = linked[cb][ca] = true;
  }
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::size_t q = p + 1; q < 4; ++q) {
      EXPECT_TRUE(linked[p][q]) << p << "-" << q;
    }
  }
}

TEST(SmallWorld, TwoTwoConfiguration) {
  const Built b = build(2.0, 2.0);
  EXPECT_TRUE(graph::is_connected(b.topo.graph));
  std::size_t inter = 0;
  for (const auto& e : b.topo.graph.edges()) {
    if (b.clusters[e.a] != b.clusters[e.b]) ++inter;
  }
  EXPECT_EQ(inter, 64u);  // <k_inter>=2 -> 64*2/2
  EXPECT_EQ(b.topo.graph.edge_count(), 4u * 16u + 64u);
}

TEST(SmallWorld, DeterministicForSeed) {
  const Built a = build(3.0, 1.0, 99);
  const Built b2 = build(3.0, 1.0, 99);
  ASSERT_EQ(a.topo.graph.edge_count(), b2.topo.graph.edge_count());
  for (std::size_t e = 0; e < a.topo.graph.edge_count(); ++e) {
    EXPECT_EQ(a.topo.graph.edge(static_cast<graph::EdgeId>(e)).a,
              b2.topo.graph.edge(static_cast<graph::EdgeId>(e)).a);
    EXPECT_EQ(a.topo.graph.edge(static_cast<graph::EdgeId>(e)).b,
              b2.topo.graph.edge(static_cast<graph::EdgeId>(e)).b);
  }
}

TEST(SmallWorld, BelowConnectivityThresholdRejected) {
  Built b;
  b.clusters.resize(64);
  for (graph::NodeId v = 0; v < 64; ++v) b.clusters[v] = quadrant_of(v, 8);
  b.traffic = Matrix{64, 64, 0.001};
  SmallWorldParams params;
  params.k_intra = 1.5;  // < 1.875 needed for a 16-node connected cluster
  params.k_inter = 2.5;
  Rng rng{1};
  EXPECT_THROW(build_wireline(b.traffic, b.clusters, params, rng),
               RequirementError);
}

TEST(SmallWorld, PowerLawPrefersShortLinks) {
  const Built b = build();
  double intra_len = 0.0;
  std::size_t intra_n = 0;
  for (const auto& e : b.topo.graph.edges()) {
    if (b.clusters[e.a] == b.clusters[e.b]) {
      intra_len += e.length_mm;
      ++intra_n;
    }
  }
  // Average intra-cluster link length well below both the quadrant diameter
  // (~10.6 mm) and the uniform-random expectation (~5.5 mm): the power-law
  // wiring model is biased toward short links.
  EXPECT_LT(intra_len / static_cast<double>(intra_n), 4.8);
}

TEST(AttachWireless, BuildsChannelCliques) {
  Built b = build();
  SmallWorldParams params;
  const std::vector<std::vector<graph::NodeId>> wi_nodes = {
      {9, 10, 17}, {13, 14, 21}, {41, 42, 49}, {45, 46, 53}};
  const auto cfg = attach_wireless(b.topo, wi_nodes, params);
  EXPECT_EQ(cfg.interfaces.size(), 12u);
  EXPECT_EQ(cfg.channel_count, 3);
  // Each channel: clique over 4 WIs -> 6 wireless edges, 18 total, except
  // where an inter-cluster wire already joins a WI pair (parallel edges are
  // not modeled; the wire then carries that pair).
  std::size_t wireless = 0;
  for (const auto& e : b.topo.graph.edges()) {
    if (e.kind == graph::EdgeKind::kWireless) ++wireless;
  }
  EXPECT_GE(wireless, 15u);
  EXPECT_LE(wireless, 18u);
  // Channel assignment: wi_nodes[c][ch] is on channel ch.
  for (const auto& wi : cfg.interfaces) {
    bool found = false;
    for (std::size_t c = 0; c < 4 && !found; ++c) {
      for (std::size_t ch = 0; ch < 3 && !found; ++ch) {
        if (wi_nodes[c][ch] == wi.node) {
          EXPECT_EQ(wi.channel, static_cast<int>(ch));
          found = true;
        }
      }
    }
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace vfimr::winoc
