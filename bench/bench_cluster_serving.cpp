// Cluster serving-tier bench (DESIGN.md §13): open Poisson arrivals of
// MapReduce jobs from the six-app catalog served by a heterogeneous fleet
// of simulated VFI platforms, swept over arrival rate x fleet size x
// scheduler policy.  Emits the SLA surface (p50/p99/p999 latency, energy
// per job, admission counts) to results/cluster_serving.csv and the
// CI-gated headline metrics (serving throughput, 1-vs-N-worker SLA
// bit-identity, quantile monotonicity, analytical-vs-cycle spot check) to
// a flat metric JSON.
//
//   ./build/bench/bench_cluster_serving [--small]
//       [--fidelity=cycle|analytical|auto] [OUT.json]
//
// --small shrinks the NoC windows and job counts for a CI runner; OUT.json
// defaults to BENCH_cluster.json in the current directory.  The service
// matrix is evaluated in the Auto (analytical) band by default — the
// steady-state path — with one cycle-accurate spot check of the busiest
// pair; see tools/check_cluster.py for the gates.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "cluster/arrivals.hpp"
#include "cluster/fleet_faults.hpp"
#include "cluster/service.hpp"
#include "cluster/serving.hpp"
#include "common/json_lite.hpp"
#include "common/parallel_for.hpp"
#include "sysmodel/net_eval.hpp"
#include "workload/profile.hpp"

using namespace vfimr;

namespace {

struct Cell {
  std::string policy;
  std::size_t fleet_size = 0;
  double rho = 0.0;  ///< offered load relative to fleet capacity
  cluster::FleetConfig fleet;
  cluster::ArrivalConfig arrivals;
};

using cluster::fleet_capacity_jobs_per_s;

/// Heterogeneous fleet of `n` instances: half VFI WiNoC, a quarter VFI
/// mesh, the rest NVFI mesh baselines.
std::vector<cluster::PlatformTypeSpec> make_fleet_types(
    std::size_t n, const sysmodel::PlatformParams& base) {
  const std::size_t winoc = (n + 1) / 2;
  const std::size_t vfi_mesh = std::max<std::size_t>(1, n / 4);
  const std::size_t nvfi = n > winoc + vfi_mesh ? n - winoc - vfi_mesh : 0;

  std::vector<cluster::PlatformTypeSpec> types;
  cluster::PlatformTypeSpec t;
  t.label = "vfi-winoc";
  t.params = base;
  t.params.kind = sysmodel::SystemKind::kVfiWinoc;
  t.count = winoc;
  types.push_back(t);
  t.label = "vfi-mesh";
  t.params = base;
  t.params.kind = sysmodel::SystemKind::kVfiMesh;
  t.count = vfi_mesh;
  types.push_back(t);
  if (nvfi > 0) {
    t.label = "nvfi-mesh";
    t.params = base;
    t.params.kind = sysmodel::SystemKind::kNvfiMesh;
    t.count = nvfi;
    types.push_back(t);
  }
  return types;
}

bool sla_identical(const cluster::ClusterReport& a,
                   const cluster::ClusterReport& b) {
  auto stats_equal = [](const cluster::SlaStats& x,
                        const cluster::SlaStats& y) {
    const bool quantiles =
        x.completed == 0
            ? y.completed == 0
            : x.p50.value() == y.p50.value() &&
                  x.p99.value() == y.p99.value() &&
                  x.p999.value() == y.p999.value();
    return x.arrived == y.arrived && x.admitted == y.admitted &&
           x.completed == y.completed &&
           x.rejected_deadline == y.rejected_deadline &&
           x.rejected_power == y.rejected_power &&
           x.retries == y.retries && x.failovers == y.failovers &&
           x.hedges == y.hedges && x.hedge_wins == y.hedge_wins &&
           x.lost == y.lost && x.shed_retry == y.shed_retry &&
           x.latency_s.sum() == y.latency_s.sum() &&
           x.energy_j.sum() == y.energy_j.sum() && quantiles;
  };
  if (!stats_equal(a.fleet, b.fleet)) return false;
  if (a.per_app.size() != b.per_app.size()) return false;
  for (std::size_t i = 0; i < a.per_app.size(); ++i) {
    if (!stats_equal(a.per_app[i], b.per_app[i])) return false;
  }
  return a.completion_digest == b.completion_digest;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};
  bench::CacheDirScope cache{argc, argv};
  bool small = false;
  sysmodel::Fidelity fidelity = sysmodel::Fidelity::kAuto;
  std::string out_path = "BENCH_cluster.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--small") {
      small = true;
    } else if (arg.rfind("--fidelity=", 0) == 0) {
      if (!sysmodel::parse_fidelity(arg.substr(11), fidelity)) {
        std::cerr << "unknown fidelity '" << arg.substr(11) << "'\n";
        return 2;
      }
    } else {
      out_path = arg;
    }
  }

  const std::size_t jobs_per_cell = small ? 20'000 : 200'000;
  const std::size_t headline_jobs = small ? 200'000 : 2'000'000;
  const std::vector<std::size_t> fleet_sizes = {4, 16};
  const std::vector<double> rhos = {0.4, 0.8, 1.2};

  std::vector<workload::AppProfile> profiles;
  for (workload::App a : workload::kAllApps) {
    profiles.push_back(workload::make_profile(a));
  }

  sysmodel::PlatformParams base;
  base.fidelity = fidelity;
  base.telemetry = telemetry.sink();
  if (small) {
    base.sim_cycles = 6'000;
    base.drain_cycles = 30'000;
  }
  sysmodel::NetworkEvaluator evaluator;
  sysmodel::PlatformCache platforms;
  // With --cache-dir / VFIMR_CACHE_DIR set, the ServiceMatrix warmup's
  // evaluations resolve through the persistent store: a warm cache serves
  // the whole service matrix from disk instead of re-simulating it.
  evaluator.attach_store(cache.store());
  platforms.attach_store(cache.store());
  base.net_eval = &evaluator;
  base.platform_cache = &platforms;
  const sysmodel::FullSystemSim sim;

  json::MetricMap m;
  m["bench_cluster.config.small"] = small ? 1.0 : 0.0;
  m["bench_cluster.config.apps"] = static_cast<double>(profiles.size());
  m["bench_cluster.config.jobs_per_cell"] =
      static_cast<double>(jobs_per_cell);
  m["bench_cluster.config.headline_jobs"] =
      static_cast<double>(headline_jobs);

  // ---- Service matrix: one batched evaluation per fleet composition
  // (types are shared across fleet sizes — counts differ, service points
  // do not), through the shared NetworkEvaluator + PlatformCache.
  const std::vector<cluster::PlatformTypeSpec> types =
      make_fleet_types(16, base);
  const auto m0 = std::chrono::steady_clock::now();
  const cluster::ServiceMatrix matrix =
      cluster::ServiceMatrix::evaluate(profiles, types, sim);
  const auto m1 = std::chrono::steady_clock::now();
  const double matrix_s = std::chrono::duration<double>(m1 - m0).count();
  m["bench_cluster.matrix.eval_seconds"] = matrix_s;
  m["bench_cluster.matrix.pairs"] =
      static_cast<double>(matrix.apps() * matrix.types());
  m["bench_cluster.matrix.cache_hits"] =
      static_cast<double>(evaluator.stats().hits);
  m["bench_cluster.matrix.cache_misses"] =
      static_cast<double>(evaluator.stats().misses);
  std::cout << "service matrix: " << matrix.apps() << " apps x "
            << matrix.types() << " platform types in " << matrix_s << " s ("
            << evaluator.stats().hits << " cache hits)\n";

  // Deadline hints: mean service time of each app across the fleet.
  std::array<double, workload::kAllApps.size()> hints{};
  for (std::size_t a = 0; a < matrix.apps(); ++a) {
    hints[a] = matrix.mean_service_s(a);
  }

  // ---- The policy x fleet x arrival-rate sweep.
  std::vector<Cell> cells;
  for (const std::size_t n : fleet_sizes) {
    std::vector<cluster::PlatformTypeSpec> fleet_types =
        make_fleet_types(n, base);
    const double capacity = fleet_capacity_jobs_per_s(matrix, fleet_types);
    for (const double rho : rhos) {
      for (int policy = 0; policy < 4; ++policy) {
        Cell c;
        c.fleet_size = n;
        c.rho = rho;
        c.fleet.types = fleet_types;
        c.arrivals.rate_jobs_per_s = rho * capacity;
        c.arrivals.job_count = jobs_per_cell;
        c.arrivals.seed = 2015 + static_cast<std::uint64_t>(policy);
        switch (policy) {
          case 0:
            c.policy = "least-loaded";
            c.fleet.policy = cluster::SchedulerPolicy::kLeastLoaded;
            break;
          case 1:
            c.policy = "edp";
            c.fleet.policy = cluster::SchedulerPolicy::kEdpGreedy;
            break;
          case 2:
            c.policy = "edp+deadline";
            c.fleet.policy = cluster::SchedulerPolicy::kEdpGreedy;
            c.fleet.queue = cluster::QueueDiscipline::kEarliestDeadline;
            c.fleet.admit_by_deadline = true;
            c.arrivals.deadline_factor = 4.0;
            c.arrivals.service_hint_s = hints;
            break;
          case 3: {
            c.policy = "powercap";
            c.fleet.policy = cluster::SchedulerPolicy::kLeastLoaded;
            c.fleet.power_cap = cluster::PowerCapMode::kDelay;
            // 60% of the fleet's nominal all-busy draw: tight enough to
            // bind at high load, always above any single job's draw.
            double nominal = 0.0;
            for (std::size_t t = 0; t < fleet_types.size(); ++t) {
              double mean = 0.0;
              for (std::size_t a = 0; a < matrix.apps(); ++a) {
                mean += matrix.at(a, t).power_w;
              }
              nominal += static_cast<double>(fleet_types[t].count) * mean /
                         static_cast<double>(matrix.apps());
            }
            c.fleet.power_cap_w = 0.6 * nominal;
            break;
          }
        }
        cells.push_back(std::move(c));
      }
    }
  }

  std::vector<cluster::ClusterReport> reports(cells.size());
  const auto c0 = std::chrono::steady_clock::now();
  parallel_for(cells.size(), default_parallelism(), [&](std::size_t i) {
    const std::vector<cluster::JobArrival> arrivals =
        cluster::make_arrivals(cells[i].arrivals);
    reports[i] = cluster::ClusterSim::run(arrivals, cells[i].fleet, matrix);
  });
  const auto c1 = std::chrono::steady_clock::now();
  const double cells_s = std::chrono::duration<double>(c1 - c0).count();

  TextTable table{{"policy", "fleet", "rho", "rate_jobs_s", "arrived",
                   "admitted", "completed", "rej_deadline", "rej_power",
                   "miss", "util", "mean_s", "p50_s", "p99_s", "p999_s",
                   "energy_j", "peak_power_w"}};
  bool monotone = true;
  std::uint64_t admitted_total = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const cluster::ClusterReport& r = reports[i];
    const cluster::SlaStats& s = r.fleet;
    admitted_total += s.admitted;
    if (s.completed > 0) {
      monotone = monotone && s.p50.value() <= s.p99.value() &&
                 s.p99.value() <= s.p999.value();
    }
    table.add_row({c.policy, std::to_string(c.fleet_size), fmt(c.rho, 2),
                   fmt(c.arrivals.rate_jobs_per_s, 1),
                   std::to_string(s.arrived), std::to_string(s.admitted),
                   std::to_string(s.completed),
                   std::to_string(s.rejected_deadline),
                   std::to_string(s.rejected_power),
                   std::to_string(s.deadline_misses), fmt(r.utilization(), 3),
                   fmt(s.latency_s.mean(), 4), cluster::format_quantile(s.p50),
                   cluster::format_quantile(s.p99),
                   cluster::format_quantile(s.p999), fmt(s.energy_j.mean(), 3),
                   fmt(r.peak_power_w, 2)});
  }
  bench::emit(table, "cluster_serving",
              "cluster serving SLA sweep (policy x fleet x load)");
  m["bench_cluster.config.cells"] = static_cast<double>(cells.size());
  m["bench_cluster.cells.seconds"] = cells_s;
  m["bench_cluster.check.quantiles_monotone"] = monotone ? 1.0 : 0.0;
  m["bench_cluster.check.admitted_jobs"] =
      static_cast<double>(admitted_total);

  // ---- Headline serving throughput: one saturated-but-stable cell at
  // fleet 16, measured over the serving loop alone (the matrix is warm by
  // construction — evaluated once above).
  cluster::FleetConfig headline;
  headline.types = make_fleet_types(16, base);
  headline.policy = cluster::SchedulerPolicy::kLeastLoaded;
  headline.telemetry = telemetry.sink();
  cluster::ArrivalConfig head_arr;
  head_arr.rate_jobs_per_s = 0.9 * fleet_capacity_jobs_per_s(matrix, headline.types);
  head_arr.job_count = headline_jobs;
  head_arr.seed = 2015;
  const std::vector<cluster::JobArrival> head_jobs =
      cluster::make_arrivals(head_arr);
  const auto h0 = std::chrono::steady_clock::now();
  const cluster::ClusterReport head =
      cluster::ClusterSim::run(head_jobs, headline, matrix);
  const auto h1 = std::chrono::steady_clock::now();
  const double head_s = std::chrono::duration<double>(h1 - h0).count();
  const double jobs_per_sec =
      static_cast<double>(head.fleet.completed) / head_s;
  m["bench_cluster.throughput.jobs"] =
      static_cast<double>(head.fleet.completed);
  m["bench_cluster.throughput.seconds"] = head_s;
  m["bench_cluster.throughput.jobs_per_sec"] = jobs_per_sec;
  std::cout << "\nheadline: " << head.fleet.completed << " completions in "
            << head_s << " s = " << jobs_per_sec
            << " jobs/s of serving throughput\n"
            << head.sla_table().to_string();

  // ---- Determinism: re-evaluate the matrix with 1 worker and with 8
  // workers (fresh evaluator + platform cache each, nothing shared with
  // the warm run above) and replay the headline cell; SLA percentiles,
  // counters and the completion-order digest must be bit-identical.
  bool identical = true;
  {
    cluster::ClusterReport replays[2];
    for (int w = 0; w < 2; ++w) {
      sysmodel::NetworkEvaluator fresh_eval;
      sysmodel::PlatformCache fresh_platforms;
      sysmodel::PlatformParams fresh_base = base;
      fresh_base.net_eval = &fresh_eval;
      fresh_base.platform_cache = &fresh_platforms;
      fresh_base.telemetry = nullptr;
      cluster::FleetConfig fleet;
      fleet.types = make_fleet_types(16, fresh_base);
      fleet.policy = cluster::SchedulerPolicy::kLeastLoaded;
      const cluster::ServiceMatrix fresh = cluster::ServiceMatrix::evaluate(
          profiles, fleet.types, sim, w == 0 ? 1 : 8);
      replays[w] = cluster::ClusterSim::run(head_jobs, fleet, fresh);
    }
    identical = sla_identical(replays[0], replays[1]) &&
                sla_identical(replays[0], head);
  }
  m["bench_cluster.check.determinism_identical"] = identical ? 1.0 : 0.0;
  std::cout << "1-vs-8-worker SLA bit-identical: "
            << (identical ? "yes" : "NO — BUG") << "\n";

  // ---- Cycle-accurate spot check of the busiest pair (the Auto ladder's
  // "confirm the frontier" move, applied to the serving tier): analytical
  // steady-state service time vs one cycle-accurate run.
  {
    const std::size_t row = matrix.app_row(profiles.front().app);
    sysmodel::PlatformParams spot = types.front().params;
    spot.fidelity = sysmodel::Fidelity::kCycleAccurate;
    sysmodel::PlatformParams spot_base = spot;
    spot_base.kind = sysmodel::SystemKind::kNvfiMesh;
    const sysmodel::SystemReport nvfi = sim.run(profiles.front(), spot_base);
    const sysmodel::SystemReport confirmed =
        sim.run(profiles.front(), spot, sysmodel::phase_baselines(nvfi));
    evaluator.note_promotion(telemetry.sink());
    const double analytical_exec = matrix.at(row, 0).exec_s;
    const double rel_err =
        std::abs(analytical_exec - confirmed.exec_s) / confirmed.exec_s;
    m["bench_cluster.spotcheck.exec_rel_err"] = rel_err;
    std::cout << "cycle spot check (" << profiles.front().name() << " on "
              << types.front().label << "): analytical " << analytical_exec
              << " s vs cycle " << confirmed.exec_s << " s ("
              << rel_err * 100.0 << "% off)\n";
  }

  // ---- Observability cell (DESIGN.md §15): one deadline+powercap cell at
  // fleet 16, rho 0.8, replayed over identical arrivals sink-off (timed)
  // and sink-on with spans, rollups and monitors (timed).  Gates
  // (tools/check_cluster_obs.py): the sink-off report stays bit-identical,
  // the instrumented loop costs a bounded multiple of the bare loop, and
  // every attribution row sums back to its job's latency exactly.  A
  // second pair under a fault plan guards the faulty loop's identity too,
  // and the clean traced run refreshes results/cluster_attribution.csv and
  // results/cluster_timeseries.csv in place.  With --trace-out the runs
  // share the scope sink, so the Chrome trace grows one lane per fleet
  // instance (attempt spans, busy/queue-depth counters) plus the job,
  // monitor and fleet-signal tracks.
  bool obs_identity = true;
  bool obs_identity_faulty = true;
  bool obs_attrib_exact = true;
  {
    telemetry::TelemetrySink local_sink;
    telemetry::TelemetrySink* obs_sink =
        telemetry.sink() != nullptr ? telemetry.sink() : &local_sink;

    cluster::ArrivalConfig arr;
    arr.rate_jobs_per_s = 0.8 * fleet_capacity_jobs_per_s(matrix, types);
    arr.job_count = jobs_per_cell;
    arr.seed = 2015;
    arr.deadline_factor = 4.0;
    arr.service_hint_s = hints;
    const std::vector<cluster::JobArrival> obs_jobs =
        cluster::make_arrivals(arr);

    cluster::FleetConfig off;
    off.types = types;
    off.policy = cluster::SchedulerPolicy::kEdpGreedy;
    off.queue = cluster::QueueDiscipline::kEarliestDeadline;
    off.admit_by_deadline = true;
    off.power_cap = cluster::PowerCapMode::kDelay;
    {
      // Same 60%-of-nominal budget as the sweep's powercap cell, so the
      // power-proximity monitor has a binding cap to watch.
      double nominal = 0.0;
      for (std::size_t t = 0; t < types.size(); ++t) {
        double mean = 0.0;
        for (std::size_t a = 0; a < matrix.apps(); ++a) {
          mean += matrix.at(a, t).power_w;
        }
        nominal += static_cast<double>(types[t].count) * mean /
                   static_cast<double>(matrix.apps());
      }
      off.power_cap_w = 0.6 * nominal;
    }

    const auto run_timed = [&](const cluster::FleetConfig& fleet,
                               double& seconds) {
      const auto t0 = std::chrono::steady_clock::now();
      cluster::ClusterReport r =
          cluster::ClusterSim::run(obs_jobs, fleet, matrix);
      const auto t1 = std::chrono::steady_clock::now();
      seconds = std::chrono::duration<double>(t1 - t0).count();
      return r;
    };

    double off_s = 0.0;
    double on_s = 0.0;
    const cluster::ClusterReport plain = run_timed(off, off_s);
    cluster::FleetConfig on = off;
    on.telemetry = obs_sink;
    on.obs.enabled = true;
    on.obs.label = "serving-obs";
    const cluster::ClusterReport traced = run_timed(on, on_s);

    obs_identity = sla_identical(plain, traced) && traced.obs != nullptr;
    const double traced_ratio = on_s / std::max(off_s, 1e-9);
    m["bench_cluster.obs.sink_off_seconds"] = off_s;
    m["bench_cluster.obs.traced_seconds"] = on_s;
    m["bench_cluster.obs.traced_ratio"] = traced_ratio;
    m["bench_cluster.obs.sink_identity"] = obs_identity ? 1.0 : 0.0;
    // Machine-portable overhead key: serving throughput and matrix cost
    // move with the host in opposite directions, so committed-vs-fresh
    // drift in the product flags a serving-loop regression rather than a
    // slower runner (tools/check_sweep_overhead.py gates it loosely).
    m["bench_cluster.obs.loop_vs_matrix"] = jobs_per_sec * matrix_s;

    if (traced.obs != nullptr) {
      const cluster::ClusterObsReport& o = *traced.obs;
      std::cout << "\n== serving-tier observability (fleet 16, rho 0.8, "
                   "deadline+powercap)\n"
                << o.attribution_table().to_string()
                << o.monitors_table().to_string();
      for (const cluster::JobAttribution& row : o.tail) {
        obs_attrib_exact = obs_attrib_exact && row.comp.sum() == row.latency_s;
      }
      m["bench_cluster.obs.jobs_tracked"] =
          static_cast<double>(o.jobs_tracked);
      m["bench_cluster.obs.completed"] = static_cast<double>(o.completed);
      m["bench_cluster.obs.epoch_s"] = o.epoch_s;
      m["bench_cluster.obs.series"] = static_cast<double>(o.series.size());
      m["bench_cluster.obs.attribution_rows"] =
          static_cast<double>(o.tail.size());
      m["bench_cluster.obs.p99_threshold_s"] = o.p99_threshold_s;
      m["bench_cluster.obs.p999_threshold_s"] = o.p999_threshold_s;
      m["bench_cluster.obs.sla_burn_breach_fraction"] =
          o.sla_burn.breach_fraction();
      m["bench_cluster.obs.sla_burn_first_breach_s"] =
          o.sla_burn.first_breach_s;
      m["bench_cluster.obs.power_breach_fraction"] =
          o.power_proximity.breach_fraction();
      try {
        const std::string attr_path =
            bench::results_path("cluster_attribution.csv");
        o.attribution_csv().write_csv(attr_path);
        const std::string ts_path =
            bench::results_path("cluster_timeseries.csv");
        o.timeseries_csv().write_csv(ts_path);
        std::cout << "(csv: " << attr_path << ", " << ts_path << ")\n";
      } catch (const std::exception& e) {
        std::cout << "(obs csv not written: " << e.what() << ")\n";
      }
    }

    // Faulty pair: retry + hedging under a seeded crash/degrade plan, so
    // the identity gate also covers the failover/backoff/hedge hook sites.
    double mean_service = 0.0;
    for (std::size_t a = 0; a < matrix.apps(); ++a) {
      mean_service += matrix.mean_service_s(a);
    }
    mean_service /= static_cast<double>(matrix.apps());

    cluster::FleetConfig foff = off;
    foff.retry.max_attempts = 3;
    foff.retry.backoff_base_s = 0.5 * mean_service;
    foff.retry.backoff_cap_s = 8.0 * foff.retry.backoff_base_s;
    foff.hedge.latency_multiplier = 3.0;
    const double plan_horizon =
        1.2 * static_cast<double>(arr.job_count) / arr.rate_jobs_per_s;
    faults::FleetFaultSpec spec;
    spec.crash_rate_per_ks = 1.0 / (plan_horizon / 1000.0);
    spec.degrade_rate_per_ks = 0.5 * spec.crash_rate_per_ks;
    spec.mean_repair_s = 0.05 * plan_horizon;
    spec.mean_degrade_s = 0.05 * plan_horizon;
    spec.degrade_slowdown = 2.0;
    spec.seed = 7;
    foff.faults = cluster::FleetFaultPlan::from_spec(
        spec, foff.instance_count(), plan_horizon);

    double foff_s = 0.0;
    double fon_s = 0.0;
    const cluster::ClusterReport fplain = run_timed(foff, foff_s);
    cluster::FleetConfig fon = foff;
    fon.telemetry = obs_sink;
    fon.obs.enabled = true;
    fon.obs.label = "serving-obs-faulty";
    const cluster::ClusterReport ftraced = run_timed(fon, fon_s);
    obs_identity_faulty =
        sla_identical(fplain, ftraced) && ftraced.obs != nullptr;
    if (ftraced.obs != nullptr) {
      for (const cluster::JobAttribution& row : ftraced.obs->tail) {
        obs_attrib_exact = obs_attrib_exact && row.comp.sum() == row.latency_s;
      }
    }
    m["bench_cluster.obs.sink_identity_faulty"] =
        obs_identity_faulty ? 1.0 : 0.0;
    m["bench_cluster.obs.attribution_exact"] = obs_attrib_exact ? 1.0 : 0.0;

    std::cout << "obs sink-off bit-identical: "
              << (obs_identity ? "yes" : "NO — BUG") << " (clean), "
              << (obs_identity_faulty ? "yes" : "NO — BUG")
              << " (faulty); attribution sums exact: "
              << (obs_attrib_exact ? "yes" : "NO — BUG") << "; traced ratio "
              << fmt(traced_ratio, 2) << "x\n";
  }

  json::save_file(out_path, m);
  std::cout << "wrote " << out_path << " (" << m.size() << " metrics)\n";

  const bool ok = identical && monotone && admitted_total > 0 &&
                  obs_identity && obs_identity_faulty && obs_attrib_exact;
  return ok ? 0 : 1;
}
