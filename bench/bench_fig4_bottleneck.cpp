// Fig. 4 — impact of bottleneck cores: execution time and EDP of the VFI 1
// (initial V/F) vs VFI 2 (bottleneck-reassigned) systems for PCA, HIST and
// MM, normalized to the NVFI mesh.  Also Fig. 5 — average vs bottleneck-core
// utilization for the same applications.
//
// Expected shapes (paper §7.1): PCA benefits most from the reassignment,
// then MM; HIST pays no EDP penalty; bottleneck/average utilization ratio is
// highest for PCA and lowest for HIST.

#include "bench/bench_util.hpp"

using namespace vfimr;

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};
  const workload::App apps[] = {workload::App::kPCA, workload::App::kHist,
                                workload::App::kMM};
  const sysmodel::FullSystemSim sim;

  TextTable fig4{{"App", "VFI1 norm. time", "VFI2 norm. time", "VFI1 norm. EDP",
                  "VFI2 norm. EDP"}};
  TextTable fig5{{"App", "Average utilization", "Bottleneck utilization",
                  "Ratio"}};

  for (workload::App app : apps) {
    const auto profile = workload::make_profile(app);

    sysmodel::PlatformParams params;
    params.telemetry = telemetry.sink();
    params.kind = sysmodel::SystemKind::kNvfiMesh;
    const auto nvfi = sim.run(profile, params);
    const auto base_lat = sysmodel::phase_baselines(nvfi);

    // VFI 1 and VFI 2 are both kVfiMesh; disambiguate the trace labels.
    params.kind = sysmodel::SystemKind::kVfiMesh;
    params.use_vfi2 = false;
    params.telemetry_label = profile.name() + " / VFI1 Mesh";
    const auto vfi1 = sim.run(profile, params, base_lat);
    params.use_vfi2 = true;
    params.telemetry_label = profile.name() + " / VFI2 Mesh";
    const auto vfi2 = sim.run(profile, params, base_lat);

    fig4.add_row({profile.name(), fmt(vfi1.exec_s / nvfi.exec_s),
                  fmt(vfi2.exec_s / nvfi.exec_s),
                  fmt(vfi1.edp_js() / nvfi.edp_js()),
                  fmt(vfi2.edp_js() / nvfi.edp_js())});

    const double avg = profile.mean_utilization();
    const double bneck = profile.bottleneck_utilization();
    fig5.add_row({profile.name(), fmt(avg), fmt(bneck), fmt(bneck / avg)});
  }

  bench::emit(fig4, "fig4_bottleneck", "Fig. 4: VFI 1 vs VFI 2 (vs NVFI mesh)");
  bench::emit(fig5, "fig5_bottleneck_util", "Fig. 5: core utilization values");
  return 0;
}
