// Resilience sweep: full-system EDP of the VFI WiNoC under injected faults,
// as a function of fault rate and fault type, for the paper's applications.
//
//   ./build/bench/bench_resilience [--small | --preset small]
//                                  [--fidelity=cycle|analytical|auto]
//                                  [OUT.json]
//
// For each application the NVFI-mesh baseline runs fault-free (the reference
// EDP and packet latency); the VFI-WiNoC system then re-runs under a seeded
// fault schedule for every (type, rate) grid point:
//
//   link    — wire/wireless edges go down (mostly transient)
//   router  — whole switches go down
//   wi      — wireless interfaces die; their routers keep wire routing
//   core    — worker cores die mid-phase; survivors re-execute their tasks
//   mixed   — all of the above at once
//
// "Rate" is events per 100k NoC cycles for the network kinds and
// (rate x 2%) per-core death probability per phase for cores.  The headline
// figure is `EDP saving vs fault rate`: how much of Fig. 8's ~34% average
// saving survives as the platform degrades.  The summary reports the median
// saving plus a graceful-run fraction — a permanent fault can cut the
// irregular WiNoC into components, and those (correctly catastrophic)
// partition runs would swamp a plain mean.  Two determinism checks gate the
// exit code and land in the metric JSON for CI:
//   resilience.check.replay_identical     — same (spec, seed) twice is
//                                           bit-identical end to end;
//   resilience.check.zero_fault_identical — an all-zero-rate spec is
//                                           bit-identical to no spec at all.
//
// --small / --preset small shrinks the app set, the cycle window and the
// rate grid for CI; OUT.json defaults to BENCH_resilience.json.
// --fidelity selects the network-evaluation band (DESIGN.md §12; default
// cycle).  The analytical band's faulty-config error is validated to the
// wider xval tolerance (tests/test_fidelity_xval.cpp) — use it for quick
// trend scans, not for the committed resilience numbers.

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/json_lite.hpp"
#include "common/stats.hpp"

using namespace vfimr;

namespace {

struct FaultKind {
  const char* name;
  bool link, router, wi, core;
};

constexpr FaultKind kKinds[] = {
    {"link", true, false, false, false},
    {"router", false, true, false, false},
    {"wi", false, false, true, false},
    {"core", false, false, false, true},
    {"mixed", true, true, true, true},
};

/// Per-core death probability per phase at sweep intensity `rate`.
constexpr double kCoreProbPerRate = 0.02;

/// Independent fault draws averaged per grid point.
constexpr int kReplicates = 3;

/// `noc_scale` compensates for a shorter injection window (the NoC rates are
/// events per 100k cycles, so the small preset's 6k-cycle window would see
/// almost no events at the nominal rates); core failures are per phase and
/// need no such scaling.
faults::FaultSpec make_spec(const FaultKind& kind, double rate,
                            double noc_scale) {
  faults::FaultSpec spec;
  if (kind.link) spec.link_rate = rate * noc_scale;
  if (kind.router) spec.router_rate = rate * noc_scale;
  if (kind.wi) spec.wi_rate = rate * noc_scale;
  if (kind.core) spec.core_fail_prob = rate * kCoreProbPerRate;
  return spec;
}

bool reports_identical(const sysmodel::SystemReport& a,
                       const sysmodel::SystemReport& b) {
  return a.exec_s == b.exec_s && a.core_energy_j == b.core_energy_j &&
         a.net_dynamic_j == b.net_dynamic_j &&
         a.net_static_j == b.net_static_j &&
         a.net.avg_latency_cycles == b.net.avg_latency_cycles &&
         a.resilience.packets_lost == b.resilience.packets_lost &&
         a.resilience.core_failures == b.resilience.core_failures &&
         a.resilience.tasks_reexecuted == b.resilience.tasks_reexecuted;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};
  bool small = false;
  sysmodel::Fidelity fidelity = sysmodel::Fidelity::kCycleAccurate;
  std::string out_path = "BENCH_resilience.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--small") {
      small = true;
    } else if (arg.rfind("--fidelity=", 0) == 0) {
      if (!sysmodel::parse_fidelity(arg.substr(11), fidelity)) {
        std::cerr << "unknown fidelity '" << arg.substr(11)
                  << "' (expected cycle|analytical|auto)\n";
        return 2;
      }
    } else if (arg == "--preset") {
      if (i + 1 < argc && std::string(argv[i + 1]) == "small") small = true;
      ++i;
    } else {
      out_path = arg;
    }
  }

  std::vector<workload::AppProfile> profiles;
  sysmodel::PlatformParams params;
  params.telemetry = telemetry.sink();
  params.fidelity = fidelity;
  if (fidelity != sysmodel::Fidelity::kCycleAccurate) {
    std::cout << "[network evaluations in the '"
              << sysmodel::fidelity_name(fidelity)
              << "' band — committed numbers need the default cycle band]\n";
  }
  std::vector<double> rates;
  double noc_scale = 1.0;
  if (small) {
    for (workload::App a : {workload::App::kHist, workload::App::kWC}) {
      profiles.push_back(workload::make_profile(a));
    }
    params.sim_cycles = 6'000;
    params.drain_cycles = 30'000;
    noc_scale = 10.0;  // 6k-cycle window: keep events-per-window comparable
    rates = {0.0, 1.0, 4.0};
  } else {
    for (workload::App a : workload::kAllApps) {
      profiles.push_back(workload::make_profile(a));
    }
    rates = {0.0, 0.5, 1.0, 2.0, 4.0};
  }
  const sysmodel::FullSystemSim sim;

  json::MetricMap m;
  m["resilience.config.small"] = small ? 1.0 : 0.0;
  m["resilience.config.apps"] = static_cast<double>(profiles.size());
  m["resilience.config.sim_cycles"] = static_cast<double>(params.sim_cycles);
  m["resilience.config.core_prob_per_rate"] = kCoreProbPerRate;

  std::cout << "Resilience sweep (" << profiles.size() << " apps, "
            << params.sim_cycles << " injection cycles per network)\n\n";

  TextTable t{{"App", "Fault type", "Rate", "EDP vs NVFI", "EDP saving",
               "Exec vs fault-free", "Pkts lost", "Cores died", "Re-exec"}};

  bool replay_identical = true;
  bool zero_fault_identical = true;
  // Per-rate savings across apps and fault kinds, for the headline "EDP
  // saving vs fault rate" curve.  The median is the headline statistic: a
  // permanent fault that cuts the irregular WiNoC topology into components
  // makes every cross-partition access time out, so a handful of partition
  // events put the *mean* off by orders of magnitude while most grid points
  // still degrade gracefully.  The mean and a graceful-run fraction (exec
  // within 2x the fault-free run) are reported alongside.
  std::vector<std::vector<double>> savings_at_rate(rates.size());
  std::vector<std::vector<double>> execs_at_rate(rates.size());

  for (const auto& profile : profiles) {
    // Fault-free reference: NVFI baseline EDP + latency, and the WiNoC's own
    // fault-free report (execution-time degradation is measured against it).
    sysmodel::PlatformParams base = params;
    base.kind = sysmodel::SystemKind::kNvfiMesh;
    const auto nvfi = sim.run(profile, base);
    const double base_edp = nvfi.edp_js();
    const auto base_latency = sysmodel::phase_baselines(nvfi);

    sysmodel::PlatformParams winoc = params;
    winoc.kind = sysmodel::SystemKind::kVfiWinoc;
    const auto clean = sim.run(profile, winoc, base_latency);

    // Zero-fault identity: a spec with every rate at zero must produce a
    // bit-identical report (the fault machinery must stay fully dormant).
    {
      sysmodel::PlatformParams zero = winoc;
      zero.faults = faults::FaultSpec{};
      zero.faults.seed = 0xBADD1Eull;  // seed alone must not matter
      const auto z = sim.run(profile, zero, base_latency);
      zero_fault_identical = zero_fault_identical && reports_identical(z, clean);
    }

    for (const auto& kind : kKinds) {
      for (std::size_t r = 0; r < rates.size(); ++r) {
        const double rate = rates[r];
        // Average over a few independent fault draws: a single draw at these
        // event counts (a handful per window) is dominated by *which* link or
        // router happens to die, and the saving-vs-rate curve comes out
        // non-monotonic.  Each replicate only reseeds the fault generators.
        double edp_rel = 0.0, exec_rel = 0.0;
        std::uint64_t lost = 0, died = 0, reexec = 0, events = 0, rebuilds = 0;
        for (int rep = 0; rep < kReplicates; ++rep) {
          sysmodel::PlatformParams faulty = winoc;
          faulty.faults = make_spec(kind, rate, noc_scale);
          faulty.faults.seed += static_cast<std::uint64_t>(rep) * 1000;
          const auto run = sim.run(profile, faulty, base_latency);
          edp_rel += run.edp_js() / base_edp / kReplicates;
          exec_rel += run.exec_s / clean.exec_s / kReplicates;
          lost += run.resilience.packets_lost;
          died += run.resilience.core_failures;
          reexec += run.resilience.tasks_reexecuted;
          events += run.resilience.noc_fault_events;
          rebuilds += run.resilience.noc_route_rebuilds;

          // Replay determinism, spot-checked on the most eventful grid point.
          if (&kind == &kKinds[4] && r == rates.size() - 1 && rep == 0) {
            const auto again = sim.run(profile, faulty, base_latency);
            replay_identical =
                replay_identical && reports_identical(run, again);
          }
        }
        const double saving = 1.0 - edp_rel;
        savings_at_rate[r].push_back(saving);
        execs_at_rate[r].push_back(exec_rel);

        const std::string key = "resilience." + profile.name() + "." +
                                kind.name + ".rate_" + fmt(rate, 1);
        m[key + ".edp_saving"] = saving;
        m[key + ".exec_rel"] = exec_rel;
        m[key + ".packets_lost"] = static_cast<double>(lost);
        m[key + ".core_failures"] = static_cast<double>(died);
        m[key + ".noc_fault_events"] = static_cast<double>(events);
        m[key + ".noc_route_rebuilds"] = static_cast<double>(rebuilds);

        t.add_row({profile.name(), kind.name, fmt(rate, 1), fmt(edp_rel),
                   fmt_pct(saving), fmt(exec_rel), std::to_string(lost),
                   std::to_string(died), std::to_string(reexec)});
      }
    }
  }

  bench::emit(t, "resilience_edp_vs_fault_rate",
              "Resilience: full-system EDP under injected faults");

  auto graceful_fraction = [&](std::size_t r) {
    std::size_t ok = 0;
    for (double e : execs_at_rate[r]) ok += e < 2.0 ? 1 : 0;
    return execs_at_rate[r].empty()
               ? 1.0
               : static_cast<double>(ok) /
                     static_cast<double>(execs_at_rate[r].size());
  };
  for (std::size_t r = 0; r < rates.size(); ++r) {
    const std::string key = "resilience.summary.rate_" + fmt(rates[r], 1);
    m[key + ".median_edp_saving"] = median(savings_at_rate[r]);
    m[key + ".mean_edp_saving"] = mean(savings_at_rate[r]);
    m[key + ".graceful_fraction"] = graceful_fraction(r);
  }
  m["resilience.check.replay_identical"] = replay_identical ? 1.0 : 0.0;
  m["resilience.check.zero_fault_identical"] = zero_fault_identical ? 1.0 : 0.0;
  json::save_file(out_path, m);

  std::cout << "EDP saving vs fault rate (median over apps and fault types;\n"
            << "graceful = execution within 2x the fault-free run):\n";
  for (std::size_t r = 0; r < rates.size(); ++r) {
    std::cout << "  rate " << fmt(rates[r], 1) << ": median saving "
              << fmt_pct(median(savings_at_rate[r])) << ", graceful "
              << fmt_pct(graceful_fraction(r)) << " of runs\n";
  }
  std::cout << "replay bit-identical:     "
            << (replay_identical ? "yes" : "NO — BUG") << "\n"
            << "zero-fault bit-identical: "
            << (zero_fault_identical ? "yes" : "NO — BUG") << "\n"
            << "wrote " << out_path << " (" << m.size() << " metrics)\n";
  return (replay_identical && zero_fault_identical) ? 0 : 1;
}
