// §4.3 case study — modified task stealing on Word Count.
//
// Reproduces the paper's scenario: 100 map tasks on 64 cores, half running
// at f1 = 2.5 GHz (task duration 0.268-0.284 s) and half at f2 = 2.0 GHz
// (0.280-0.342 s).  Without modification, low-frequency cores that finish
// early steal tasks that a high-frequency core would have completed sooner.
// Compares the default Phoenix stealing with both Eq. 3 readings (hard
// execution cap; assignment shaping), and also reports the paper's exact
// duration ranges as a calibration check.

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "sysmodel/task_sim.hpp"

using namespace vfimr;
using sysmodel::StealingPolicy;

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};
  const auto profile = workload::make_profile(workload::App::kWC);

  // The paper's exact setup: 100 tasks; WC map-task calibration W = 0.5
  // G-cycles + 70 ms memory time (solving the paper's duration ranges).
  workload::TaskSet spec;
  spec.count = 100;
  spec.cycles_mean = 0.5e9;
  spec.cycles_cv = 0.015;
  spec.mem_seconds_mean = 0.070;
  spec.mem_cv = 0.05;

  Rng rng{42};
  const auto tasks = sysmodel::materialize_tasks(spec, rng);

  // Duration ranges per frequency (calibration check vs §4.3).
  for (const double f : {2.5e9, 2.0e9}) {
    std::vector<double> durations;
    for (const auto& t : tasks) {
      durations.push_back(t.cycles / f + t.mem_seconds);
    }
    std::cout << "f = " << f / 1e9 << " GHz: task duration " << fmt(min_of(durations))
              << " - " << fmt(max_of(durations)) << " s (average "
              << fmt(mean(durations)) << ")   [paper: "
              << (f > 2.2e9 ? "0.268-0.284, avg 0.270" : "0.280-0.342, avg 0.320")
              << "]\n";
  }

  // 32 fast cores (f1) + 32 slow cores (f2), as in the paper's WC VFI system.
  std::vector<sysmodel::SimCore> cores(64);
  for (std::size_t i = 0; i < 64; ++i) {
    const double f = i < 32 ? 2.5e9 : 2.0e9;
    cores[i] = sysmodel::SimCore{f, f / 2.5e9};
  }
  std::vector<sysmodel::SimCore> nvfi(64, sysmodel::SimCore{2.5e9, 1.0});

  const auto base = simulate_phase(tasks, nvfi, 1.0,
                                   StealingPolicy::kPhoenixDefault);

  TextTable t{{"Scheduler", "Makespan (s)", "vs NVFI", "Steals",
               "Slow-core tasks (max)"}};
  auto add = [&](const char* name, StealingPolicy policy) {
    sysmodel::PhaseTelemetry pt{telemetry.sink(), name, name, "map", 0.0};
    const auto r = simulate_phase(tasks, cores, 1.0, policy, nullptr,
                                  telemetry.sink() != nullptr ? &pt : nullptr);
    std::uint64_t slow_max = 0;
    for (std::size_t i = 32; i < 64; ++i) {
      slow_max = std::max(slow_max, r.tasks_executed[i]);
    }
    t.add_row({name, fmt(r.makespan_s), fmt(r.makespan_s / base.makespan_s),
               std::to_string(r.steals), std::to_string(slow_max)});
  };
  add("Phoenix default", StealingPolicy::kPhoenixDefault);
  add("Eq. 3 hard cap", StealingPolicy::kVfiHardCap);
  add("Eq. 3 assignment", StealingPolicy::kVfiAssignment);

  std::cout << "NVFI (all cores 2.5 GHz) makespan: " << fmt(base.makespan_s)
            << " s\n";
  bench::emit(t, "stealing_casestudy",
              "Sec. 4.3: Word Count task-stealing case study (100 tasks)");
  return 0;
}
