// Load-latency saturation sweep — the standard NoC characterization behind
// the paper's §7.2 network analysis.  Drives the baseline 8x8 mesh and the
// (3,1) WiNoC with uniform-random and transpose traffic at increasing
// injection rates and prints average latency, throughput and the hottest
// link's utilization.  Not a paper figure; it documents where each fabric
// saturates and why LR-class loads are capped in the calibration.

#include <memory>

#include "bench/bench_util.hpp"
#include "noc/traffic.hpp"
#include "winoc/design.hpp"

using namespace vfimr;

namespace {

struct Fabric {
  std::string name;
  noc::Topology topo;
  std::unique_ptr<noc::RoutingAlgorithm> routing;
  noc::WirelessConfig wireless;
};

Fabric make_mesh_fabric() {
  Fabric f;
  f.name = "Mesh";
  f.topo = noc::make_mesh(8, 8);
  f.routing = std::make_unique<noc::XyRouting>(f.topo.graph, 8, 8);
  return f;
}

Fabric make_winoc_fabric() {
  Fabric f;
  f.name = "WiNoC";
  const auto profile = workload::make_profile(workload::App::kWC);
  auto design =
      winoc::build_winoc(profile.traffic, winoc::quadrant_clusters(),
                         winoc::PlacementStrategy::kMaxWirelessUtilization);
  f.topo = std::move(design.topology);
  f.wireless = std::move(design.wireless);
  f.routing = std::make_unique<noc::UpDownRouting>(f.topo.graph, 2.0);
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};
  TextTable t{{"Pattern", "Fabric", "Inj (flits/node/cyc)", "Avg latency",
               "Throughput", "Hottest link", "Drained"}};

  Fabric fabrics[2] = {make_mesh_fabric(), make_winoc_fabric()};
  const double rates[] = {0.005, 0.01, 0.02, 0.04, 0.06, 0.08};
  constexpr std::uint32_t kFlits = 4;

  for (const char* pattern : {"uniform", "transpose"}) {
    for (auto& fabric : fabrics) {
      for (double rate : rates) {
        noc::SimConfig cfg;
        cfg.telemetry = telemetry.sink();
        cfg.telemetry_label = std::string{pattern} + " / " + fabric.name +
                              " @ " + fmt(rate * kFlits, 3);
        noc::Network net{fabric.topo, *fabric.routing, cfg, fabric.wireless};
        std::unique_ptr<noc::TrafficGenerator> gen;
        if (std::string(pattern) == "uniform") {
          gen = std::make_unique<noc::UniformRandomTraffic>(64, rate, kFlits,
                                                            17);
        } else {
          gen = std::make_unique<noc::PermutationTraffic>(
              64, noc::Pattern::kTranspose, rate, kFlits, 17);
        }
        net.run(gen.get(), 30'000);
        const bool drained = net.drain(60'000);
        const auto& m = net.metrics();
        t.add_row({pattern, fabric.name, fmt(rate * kFlits, 3),
                   fmt(m.avg_latency(), 1), fmt(m.throughput(64), 4),
                   fmt_pct(net.max_link_utilization()),
                   drained ? "yes" : "NO"});
      }
    }
  }
  bench::emit(t, "saturation_sweep",
              "Load-latency saturation sweep (mesh vs WiNoC)");
  return 0;
}
