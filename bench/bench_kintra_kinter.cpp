// §7.2 — network parameter exploration: with <k> = 4, the split
// (<k_intra>, <k_inter>) can be (3,1) or (2,2).  The paper finds (3,1)
// consistently better; this bench reproduces the comparison on network EDP
// (energy per flit x latency) for all six applications.

#include "bench/bench_util.hpp"

using namespace vfimr;

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};
  const power::VfTable& table = power::VfTable::standard();
  const power::NocPowerModel noc_power;

  TextTable t{{"App", "(3,1) latency", "(2,2) latency", "(3,1) net EDP",
               "(2,2) net EDP", "(2,2)/(3,1)"}};
  double worst = 0.0;
  for (workload::App app : workload::kAllApps) {
    const auto profile = workload::make_profile(app);
    double edp[2] = {};
    double lat[2] = {};
    int i = 0;
    for (const double k_intra : {3.0, 2.0}) {
      sysmodel::PlatformParams params;
      params.telemetry = telemetry.sink();
      params.telemetry_label = profile.name() + " / WiNoC (" +
                               std::to_string(static_cast<int>(k_intra)) +
                               "," +
                               std::to_string(4 - static_cast<int>(k_intra)) +
                               ")";
      params.kind = sysmodel::SystemKind::kVfiWinoc;
      params.smallworld.k_intra = k_intra;
      params.smallworld.k_inter = 4.0 - k_intra;
      const auto built = sysmodel::build_platform(profile, params, table);
      const auto eval =
          sysmodel::evaluate_network(built, profile, params, noc_power);
      edp[i] = eval.network_edp();
      lat[i] = eval.avg_latency_cycles;
      ++i;
    }
    const double ratio = edp[1] / edp[0];
    worst = std::max(worst, ratio);
    t.add_row({profile.name(), fmt(lat[0], 1), fmt(lat[1], 1),
               fmt(edp[0] * 1e12, 1), fmt(edp[1] * 1e12, 1), fmt(ratio, 2)});
  }
  bench::emit(t, "kintra_kinter",
              "Sec. 7.2: (k_intra,k_inter) = (3,1) vs (2,2), network EDP "
              "(pJ*cycles/flit)");
  std::cout << ((worst >= 1.0)
                    ? "(3,1) is never worse than (2,2), as in the paper.\n"
                    : "WARNING: (2,2) beat (3,1) for some application.\n");
  return 0;
}
