// Golden-figure generator: runs the full three-system comparison for all six
// applications and writes the Fig. 2 / Fig. 7 / Fig. 8 / Table 2 metric maps
// to <out_dir>/{fig2,fig7,fig8,table2}.json (default: results/golden).
//
// The committed goldens are the reference that tests/test_golden_figures.cpp
// recomputes and compares against.  Regenerate (and review the diff!) only
// when a change *intentionally* moves the reproduced paper numbers:
//
//   ./build/bench/golden_figures results/golden

#include <filesystem>
#include <iostream>

#include "common/json_lite.hpp"
#include "common/parallel_for.hpp"
#include "sysmodel/figures.hpp"

int main(int argc, char** argv) {
  const std::filesystem::path out_dir =
      argc > 1 ? argv[1] : "results/golden";
  std::filesystem::create_directories(out_dir);

  // The sweep is bit-identical for any worker count (VFIMR_THREADS to pin).
  std::cout << "Computing figure data (six apps x three systems, "
            << vfimr::default_parallelism() << " threads)...\n";
  const auto data = vfimr::sysmodel::compute_figure_data();
  const auto metrics = vfimr::sysmodel::extract_metrics(data);

  const std::pair<const char*, const vfimr::json::MetricMap&> files[] = {
      {"fig2.json", metrics.fig2},
      {"fig7.json", metrics.fig7},
      {"fig8.json", metrics.fig8},
      {"table2.json", metrics.table2},
  };
  for (const auto& [name, map] : files) {
    const auto path = out_dir / name;
    vfimr::json::save_file(path.string(), map);
    std::cout << "wrote " << path.string() << " (" << map.size()
              << " metrics)\n";
  }
  std::cout << "avg WiNoC EDP saving: "
            << metrics.fig8.at("fig8.summary.avg_saving") * 100.0
            << "%  (paper: 33.7%)\n";
  return 0;
}
