// Table 1 — "Applications analyzed and Datasets used", plus the calibrated
// workload-model summary this reproduction derives from it.

#include "bench/bench_util.hpp"

using namespace vfimr;

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};  // accepts the uniform flags
  TextTable t{{"Application", "Input dataset size", "MR iters", "Map tasks",
               "Reduce tasks", "Packet flits", "Traffic (pkts/cyc)",
               "Net sensitivity"}};
  for (workload::App app : workload::kAllApps) {
    const auto p = workload::make_profile(app);
    t.add_row({p.name(), workload::app_dataset(app),
               std::to_string(p.iterations),
               std::to_string(p.phases.map.count),
               std::to_string(p.phases.reduce.count),
               std::to_string(p.packet_flits), fmt(p.traffic.sum(), 2),
               fmt(p.net_sensitivity, 2)});
  }
  bench::emit(t, "table1_workloads", "Table 1: applications and datasets");
  return 0;
}
