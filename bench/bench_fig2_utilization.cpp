// Fig. 2 — per-core utilization of Kmeans, PCA, MM and HIST on the 64-core
// NVFI platform, sorted from highest to lowest, with the average marked.
// The paper's observations to reproduce: Kmeans varies widely across cores;
// PCA/MM/HIST are nearly homogeneous except a few bottleneck (master) cores.

#include <algorithm>

#include "bench/bench_util.hpp"
#include "common/stats.hpp"

using namespace vfimr;

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};  // accepts the uniform flags
  const workload::App apps[] = {workload::App::kKmeans, workload::App::kPCA,
                                workload::App::kMM, workload::App::kHist};

  TextTable csv{{"app", "rank", "utilization"}};
  for (workload::App app : apps) {
    const auto p = workload::make_profile(app);
    std::vector<double> u = p.utilization;
    std::sort(u.begin(), u.end(), std::greater<>{});
    const double avg = mean(u);

    std::cout << "== Fig. 2 (" << p.name() << "): sorted core utilization, "
              << "avg = " << fmt(avg) << ", bottleneck(master) = "
              << fmt(p.bottleneck_utilization()) << "\n";
    // ASCII bars, 4 cores per row marker for compactness.
    for (std::size_t i = 0; i < u.size(); ++i) {
      csv.add_row({p.name(), std::to_string(i + 1), fmt(u[i])});
      if (i % 8 == 0) {
        const auto bar = static_cast<std::size_t>(u[i] * 50);
        std::cout << "  core#" << (i + 1 < 10 ? " " : "") << i + 1 << " "
                  << std::string(bar, '#') << " " << fmt(u[i], 2) << "\n";
      }
    }
    const double cv = coeff_variation(p.utilization);
    std::cout << "  coefficient of variation: " << fmt(cv) << "  ("
              << (cv > 0.15 ? "non-homogeneous" : "nearly homogeneous")
              << ")\n\n";
  }
  bench::emit(csv, "fig2_utilization", "Fig. 2 raw series");
  return 0;
}
