// Fig. 6 — EDP of the maximized-wireless-utilization placement methodology
// relative to the minimized-hop-count methodology, per application.  The
// paper reports max-wireless-utilization at or below 1.0x for every
// benchmark (y-axis 0.90-1.00).

#include "bench/bench_util.hpp"

using namespace vfimr;

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};
  const sysmodel::FullSystemSim sim;
  TextTable t{{"App", "min-hop EDP (norm)", "max-wireless EDP (norm)",
               "relative", "min-hop wless%", "max-wless wless%"}};

  for (workload::App app : workload::kAllApps) {
    const auto profile = workload::make_profile(app);
    sysmodel::PlatformParams params;
    params.telemetry = telemetry.sink();
    params.kind = sysmodel::SystemKind::kNvfiMesh;
    const auto nvfi = sim.run(profile, params);
    const auto base_lat = sysmodel::phase_baselines(nvfi);
    const double base_edp = nvfi.edp_js();

    // The two placements would share one label; disambiguate the traces.
    params.kind = sysmodel::SystemKind::kVfiWinoc;
    params.placement = winoc::PlacementStrategy::kMinHopCount;
    params.telemetry_label = profile.name() + " / WiNoC min-hop";
    const auto minhop = sim.run(profile, params, base_lat);
    params.placement = winoc::PlacementStrategy::kMaxWirelessUtilization;
    params.telemetry_label = profile.name() + " / WiNoC max-wireless";
    const auto maxwl = sim.run(profile, params, base_lat);

    t.add_row({profile.name(), fmt(minhop.edp_js() / base_edp),
               fmt(maxwl.edp_js() / base_edp),
               fmt(maxwl.edp_js() / minhop.edp_js()),
               fmt_pct(minhop.net.wireless_utilization),
               fmt_pct(maxwl.net.wireless_utilization)});
  }
  bench::emit(t, "fig6_placement",
              "Fig. 6: max-wireless-utilization vs min-hop-count placement");
  return 0;
}
