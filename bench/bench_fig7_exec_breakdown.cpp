// Fig. 7 — normalized execution time of each Phoenix++ execution operation
// (Map, Reduce, Merge, Library Init) for VFI Mesh and VFI WiNoC, relative to
// the NVFI mesh total.
//
// Expected shapes (paper §7.3): VFI-mesh degradation up to ~10%; the WiNoC
// recovers it, with MM, WC, LR and Kmeans executing quicker than the NVFI
// mesh; WC and Kmeans gain the most from the improved interconnect, LR the
// least.

#include "bench/bench_util.hpp"
#include "sysmodel/sweep.hpp"

using namespace vfimr;

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};
  const sysmodel::FullSystemSim sim;
  TextTable t{{"App", "System", "Map", "Reduce", "Merge", "LibInit", "Total"}};

  std::vector<workload::AppProfile> profiles;
  for (workload::App app : workload::kAllApps) {
    profiles.push_back(workload::make_profile(app));
  }
  sysmodel::PlatformParams params;
  params.telemetry = telemetry.sink();
  const auto comparisons = sysmodel::sweep_comparisons(profiles, sim, params);

  double max_winoc_gain_vs_mesh = 0.0;
  std::string max_gain_app;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& profile = profiles[i];
    const auto& cmp = comparisons[i];
    const double base = cmp.nvfi_mesh.exec_s;

    auto add = [&](const sysmodel::SystemReport& r) {
      t.add_row({profile.name(), sysmodel::system_name(r.kind),
                 fmt(r.phases.map_s / base), fmt(r.phases.reduce_s / base),
                 fmt(r.phases.merge_s / base),
                 fmt(r.phases.lib_init_s / base), fmt(r.exec_s / base)});
    };
    add(cmp.nvfi_mesh);
    add(cmp.vfi_mesh);
    add(cmp.vfi_winoc);

    const double gain = 1.0 - cmp.vfi_winoc.exec_s / cmp.vfi_mesh.exec_s;
    if (gain > max_winoc_gain_vs_mesh) {
      max_winoc_gain_vs_mesh = gain;
      max_gain_app = profile.name();
    }
  }
  bench::emit(t, "fig7_exec_breakdown",
              "Fig. 7: normalized execution time by phase (vs NVFI mesh)");
  std::cout << "Largest WiNoC-over-mesh execution gain: " << max_gain_app
            << " (" << fmt_pct(max_winoc_gain_vs_mesh) << ")\n";
  return 0;
}
