// Fig. 7 — normalized execution time of each Phoenix++ execution operation
// (Map, Reduce, Merge, Library Init) for VFI Mesh and VFI WiNoC, relative to
// the NVFI mesh total.
//
// Expected shapes (paper §7.3): VFI-mesh degradation up to ~10%; the WiNoC
// recovers it, with MM, WC, LR and Kmeans executing quicker than the NVFI
// mesh; WC and Kmeans gain the most from the improved interconnect, LR the
// least.
//
// The phase-resolved pipeline (DESIGN.md §11) measures one NoC latency and
// mem_scale per phase; the second table exposes them per app and system
// (results/fig7_phase_latency.csv).  All evaluations share one memoizing
// NetworkEvaluator, so e.g. the LibInit == Merge traffic identity is
// simulated once per system.

#include "bench/bench_util.hpp"
#include "sysmodel/net_eval.hpp"
#include "sysmodel/sweep.hpp"

using namespace vfimr;

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};
  const sysmodel::FullSystemSim sim;
  TextTable t{{"App", "System", "Map", "Reduce", "Merge", "LibInit", "Total"}};
  TextTable lat{{"App", "System", "Lat LibInit", "Lat Map", "Lat Reduce",
                 "Lat Merge", "MemScale Map", "MemScale Reduce"}};

  std::vector<workload::AppProfile> profiles;
  for (workload::App app : workload::kAllApps) {
    profiles.push_back(workload::make_profile(app));
  }
  sysmodel::NetworkEvaluator net_eval;
  sysmodel::PlatformParams params;
  params.telemetry = telemetry.sink();
  params.net_eval = &net_eval;
  const auto comparisons = sysmodel::sweep_comparisons(profiles, sim, params);

  double max_winoc_gain_vs_mesh = 0.0;
  std::string max_gain_app;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& profile = profiles[i];
    const auto& cmp = comparisons[i];
    const double base = cmp.nvfi_mesh.exec_s;

    auto add = [&](const sysmodel::SystemReport& r) {
      t.add_row({profile.name(), sysmodel::system_name(r.kind),
                 fmt(r.phases.map_s / base), fmt(r.phases.reduce_s / base),
                 fmt(r.phases.merge_s / base),
                 fmt(r.phases.lib_init_s / base), fmt(r.exec_s / base)});
      auto phase_lat = [&](workload::Phase p) {
        return fmt(r.phase_result(p).net.avg_latency_cycles);
      };
      lat.add_row({profile.name(), sysmodel::system_name(r.kind),
                   phase_lat(workload::Phase::kLibInit),
                   phase_lat(workload::Phase::kMap),
                   phase_lat(workload::Phase::kReduce),
                   phase_lat(workload::Phase::kMerge),
                   fmt(r.phase_result(workload::Phase::kMap).mem_scale),
                   fmt(r.phase_result(workload::Phase::kReduce).mem_scale)});
    };
    add(cmp.nvfi_mesh);
    add(cmp.vfi_mesh);
    add(cmp.vfi_winoc);

    const double gain = 1.0 - cmp.vfi_winoc.exec_s / cmp.vfi_mesh.exec_s;
    if (gain > max_winoc_gain_vs_mesh) {
      max_winoc_gain_vs_mesh = gain;
      max_gain_app = profile.name();
    }
  }
  bench::emit(t, "fig7_exec_breakdown",
              "Fig. 7: normalized execution time by phase (vs NVFI mesh)");
  bench::emit(lat, "fig7_phase_latency",
              "Fig. 7 companion: per-phase NoC latency (cycles) and mem_scale");
  std::cout << "Largest WiNoC-over-mesh execution gain: " << max_gain_app
            << " (" << fmt_pct(max_winoc_gain_vs_mesh) << ")\n";
  const auto stats = net_eval.stats();
  std::cout << "NetworkEvaluator: " << stats.misses << " simulated, "
            << stats.hits << " cache hits (hit rate "
            << fmt_pct(stats.hit_rate()) << ")\n";
  return 0;
}
