// Wireless-interface count ablation.
//
// §6 of the paper adopts 12 WIs (3 per cluster, one per mm-wave channel)
// citing Wettin et al. [20] for the optimum at 64 cores.  This extension
// sweeps the per-cluster WI count (with one channel per WI rank, so total
// WIs = 4w and channels = w) and measures network latency and EDP under
// each application's traffic — checking that 3 per cluster (12 total) sits
// at the knee: fewer WIs starve long-range traffic, more add token-sharing
// and static power without latency benefit.

#include "bench/bench_util.hpp"

using namespace vfimr;

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};
  const power::VfTable& table = power::VfTable::standard();
  const power::NocPowerModel noc_power;

  TextTable t{{"App", "WIs/cluster", "Total WIs", "Avg latency", "Net EDP",
               "Wireless %", "Drained"}};
  for (workload::App app :
       {workload::App::kWC, workload::App::kKmeans, workload::App::kLR}) {
    const auto profile = workload::make_profile(app);
    for (std::size_t w : {1u, 2u, 3u, 4u}) {
      sysmodel::PlatformParams params;
      params.telemetry = telemetry.sink();
      params.telemetry_label =
          profile.name() + " / WiNoC " + std::to_string(4 * w) + "WI";
      params.kind = sysmodel::SystemKind::kVfiWinoc;
      params.smallworld.wis_per_cluster = w;
      params.smallworld.channels = static_cast<int>(w);
      const auto built = sysmodel::build_platform(profile, params, table);
      const auto eval =
          sysmodel::evaluate_network(built, profile, params, noc_power);
      t.add_row({profile.name(), std::to_string(w), std::to_string(4 * w),
                 fmt(eval.avg_latency_cycles, 1),
                 fmt(eval.network_edp() * 1e12, 1),
                 fmt_pct(eval.wireless_utilization),
                 eval.drained ? "yes" : "NO"});
    }
  }
  bench::emit(t, "wi_count_ablation",
              "WI count ablation (network latency + EDP, pJ*cycles/flit)");
  return 0;
}
