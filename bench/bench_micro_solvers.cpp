// Microbenchmarks (google-benchmark): VFI clustering solvers and the
// threaded MapReduce runtime.  Engineering numbers, not paper figures.

#include <benchmark/benchmark.h>

#include "mapreduce/apps/histogram.hpp"
#include "mapreduce/apps/wordcount.hpp"
#include "vfi/clustering.hpp"
#include "workload/profile.hpp"

using namespace vfimr;

namespace {

vfi::ClusteringProblem make_problem(workload::App app) {
  const auto profile = workload::make_profile(app);
  vfi::ClusteringProblem p;
  p.utilization = profile.utilization;
  p.traffic = profile.traffic;
  p.clusters = 4;
  return p;
}

void BM_ClusteringAnneal64(benchmark::State& state) {
  const auto problem = make_problem(workload::App::kWC);
  vfi::AnnealParams params;
  params.iterations = static_cast<std::size_t>(state.range(0));
  params.restarts = 1;
  for (auto _ : state) {
    auto result = vfi::solve_anneal(problem, params);
    benchmark::DoNotOptimize(result.cost);
  }
}
BENCHMARK(BM_ClusteringAnneal64)->Arg(20000)->Arg(200000)
    ->Unit(benchmark::kMillisecond);

void BM_ClusteringExact12(benchmark::State& state) {
  // 12 cores, 3 clusters: exact branch-and-bound scale.
  vfi::ClusteringProblem p;
  Rng rng{3};
  p.clusters = 3;
  p.utilization.resize(12);
  for (auto& u : p.utilization) u = rng.uniform(0.2, 1.0);
  p.traffic = Matrix{12, 12};
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      if (i != j) p.traffic(i, j) = rng.uniform(0.0, 1.0);
    }
  }
  for (auto _ : state) {
    auto result = vfi::solve_exact(p);
    benchmark::DoNotOptimize(result.cost);
  }
}
BENCHMARK(BM_ClusteringExact12)->Unit(benchmark::kMillisecond);

void BM_WordCountRuntime(benchmark::State& state) {
  mr::apps::WordCountConfig cfg;
  cfg.word_count = 100'000;
  cfg.map_tasks = 64;
  cfg.scheduler.workers = static_cast<std::size_t>(state.range(0));
  const std::string text = mr::apps::generate_text(cfg);
  for (auto _ : state) {
    auto result = mr::apps::word_count(text, cfg);
    benchmark::DoNotOptimize(result.total_words);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.word_count));
}
BENCHMARK(BM_WordCountRuntime)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_HistogramRuntime(benchmark::State& state) {
  mr::apps::HistogramConfig cfg;
  cfg.pixel_count = 300'000;
  cfg.scheduler.workers = 4;
  const auto image = mr::apps::generate_image(cfg);
  for (auto _ : state) {
    auto result = mr::apps::histogram(image, cfg);
    benchmark::DoNotOptimize(result.bins[0][0]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.pixel_count));
}
BENCHMARK(BM_HistogramRuntime)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
