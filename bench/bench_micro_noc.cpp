// Microbenchmarks (google-benchmark): simulator and design-flow throughput.
// Not a paper figure — engineering numbers for the simulator itself.

#include <benchmark/benchmark.h>

#include "noc/network.hpp"
#include "noc/traffic.hpp"
#include "sysmodel/platform.hpp"
#include "winoc/design.hpp"
#include "workload/profile.hpp"

using namespace vfimr;

namespace {

void BM_MeshSimCycles(benchmark::State& state) {
  const auto topo = noc::make_mesh(8, 8);
  const noc::XyRouting routing{topo.graph, 8, 8};
  noc::Network net{topo, routing};
  noc::UniformRandomTraffic gen{64, 0.02, 4, 7};
  for (auto _ : state) {
    net.run(&gen, 1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MeshSimCycles)->Unit(benchmark::kMillisecond);

void BM_WinocSimCycles(benchmark::State& state) {
  const auto profile = workload::make_profile(workload::App::kWC);
  const auto design =
      winoc::build_winoc(profile.traffic, winoc::quadrant_clusters(),
                         winoc::PlacementStrategy::kMaxWirelessUtilization);
  const noc::UpDownRouting routing{design.topology.graph, 2.0};
  noc::Network net{design.topology, routing, {}, design.wireless};
  noc::UniformRandomTraffic gen{64, 0.02, 4, 7};
  for (auto _ : state) {
    net.run(&gen, 1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_WinocSimCycles)->Unit(benchmark::kMillisecond);

void BM_UpDownTableConstruction(benchmark::State& state) {
  const auto profile = workload::make_profile(workload::App::kWC);
  const auto design =
      winoc::build_winoc(profile.traffic, winoc::quadrant_clusters(),
                         winoc::PlacementStrategy::kMaxWirelessUtilization);
  for (auto _ : state) {
    noc::UpDownRouting routing{design.topology.graph, 2.0};
    benchmark::DoNotOptimize(routing.root());
  }
}
BENCHMARK(BM_UpDownTableConstruction)->Unit(benchmark::kMillisecond);

void BM_WinocDesignFlow(benchmark::State& state) {
  const auto profile = workload::make_profile(workload::App::kWC);
  const auto clusters = winoc::quadrant_clusters();
  for (auto _ : state) {
    auto design = winoc::build_winoc(
        profile.traffic, clusters,
        winoc::PlacementStrategy::kMaxWirelessUtilization);
    benchmark::DoNotOptimize(design.topology.graph.edge_count());
  }
}
BENCHMARK(BM_WinocDesignFlow)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
