// Table 2 — V/F assignments per cluster for all six applications, VFI 1 and
// VFI 2.  Cluster numbering is arbitrary in the paper; clusters are reported
// here in descending mean-utilization order, and the multiset of V/F values
// is compared against the paper's row.

#include <algorithm>
#include <numeric>
#include <sstream>

#include "bench/bench_util.hpp"
#include "common/parallel_for.hpp"
#include "vfi/vf_assign.hpp"

using namespace vfimr;

namespace {

/// Paper Table 2, as multisets of GHz values per configuration.
struct PaperRow {
  workload::App app;
  std::vector<double> vfi1_ghz;
  std::vector<double> vfi2_ghz;
};

const PaperRow kPaper[] = {
    {workload::App::kMM, {2.5, 2.25, 2.5, 2.25}, {2.5, 2.5, 2.5, 2.25}},
    {workload::App::kHist, {2.5, 2.25, 2.5, 2.25}, {2.5, 2.5, 2.5, 2.25}},
    {workload::App::kKmeans, {1.5, 1.5, 2.0, 2.0}, {1.5, 1.5, 2.0, 2.0}},
    {workload::App::kWC, {2.0, 2.0, 2.5, 2.5}, {2.0, 2.0, 2.5, 2.5}},
    {workload::App::kPCA, {2.25, 2.25, 2.25, 2.25}, {2.25, 2.25, 2.25, 2.5}},
    {workload::App::kLR, {2.5, 2.5, 2.25, 2.25}, {2.5, 2.5, 2.25, 2.25}},
};

std::vector<double> sorted_ghz(const std::vector<power::VfPoint>& vf) {
  std::vector<double> out;
  for (const auto& p : vf) out.push_back(p.freq_hz / 1e9);
  std::sort(out.begin(), out.end());
  return out;
}

std::string join(const std::vector<power::VfPoint>& vf) {
  std::ostringstream os;
  for (std::size_t i = 0; i < vf.size(); ++i) {
    if (i) os << ", ";
    os << vf[i].label();
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};  // accepts the uniform flags
  const auto& table = power::VfTable::standard();
  TextTable t{{"App", "VFI 1 (V/GHz per cluster)", "VFI 2 (V/GHz per cluster)",
               "Raised clusters", "Matches paper"}};
  // The per-app design runs are independent; fan them out and assemble the
  // table serially in row order so the output stays deterministic.
  constexpr std::size_t kRows = std::size(kPaper);
  std::vector<workload::AppProfile> profiles(kRows);
  std::vector<vfi::VfiDesign> designs(kRows);
  parallel_for(kRows, vfimr::default_parallelism(), [&](std::size_t i) {
    profiles[i] = workload::make_profile(kPaper[i].app);
    designs[i] = vfi::design_vfi(profiles[i].utilization, profiles[i].traffic,
                                 profiles[i].master_threads, table);
  });

  int mismatches = 0;
  for (std::size_t i = 0; i < kRows; ++i) {
    const auto& row = kPaper[i];
    const auto& profile = profiles[i];
    const auto& design = designs[i];

    auto got1 = sorted_ghz(design.vfi1);
    auto got2 = sorted_ghz(design.vfi2);
    auto want1 = row.vfi1_ghz;
    auto want2 = row.vfi2_ghz;
    std::sort(want1.begin(), want1.end());
    std::sort(want2.begin(), want2.end());
    const bool match = got1 == want1 && got2 == want2;
    if (!match) ++mismatches;

    std::string raised;
    for (std::size_t c : design.raised_clusters) {
      raised += (raised.empty() ? "" : ",") + std::to_string(c + 1);
    }
    t.add_row({profile.name(), join(design.vfi1), join(design.vfi2),
               raised.empty() ? "-" : raised, match ? "yes" : "NO"});
  }
  bench::emit(t, "table2_vf_assignment", "Table 2: V/F assignments");
  std::cout << (mismatches == 0
                    ? "All six applications match the paper's Table 2.\n"
                    : std::to_string(mismatches) + " mismatches vs paper.\n");
  return mismatches == 0 ? 0 : 1;
}
