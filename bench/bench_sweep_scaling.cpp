// Scaling micro-bench for the parallel experiment runner + NoC fast path:
// times the Fig. 8 three-system sweep (a) with the naive reference stepping
// at one thread, then (b) with the fast stepping path at 1/2/4/8 threads,
// checks the two paths agree bit-for-bit, and writes the timings to a flat
// metric JSON (json_lite subset) for the CI artifact.
//
//   ./build/bench/bench_sweep_scaling [--small] [OUT.json]
//
// --small shrinks the app set and the simulated cycle window so the bench
// finishes in seconds on a CI runner (the speedup ratios are noisier but the
// bit-identity check is just as strict); OUT.json defaults to
// BENCH_sweep.json in the current directory.
//
// Reading the output: `speedup.fast_vs_reference_1t` isolates the simulator
// fast path (same single thread, worklist + candidate masks + idle skip vs
// the naive loops); `speedup.total_best` additionally includes thread
// scaling, which on a single-core host is ~the same number.

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/json_lite.hpp"
#include "common/parallel_for.hpp"
#include "sysmodel/sweep.hpp"
#include "workload/profile.hpp"

using namespace vfimr;

namespace {

double time_sweep(const std::vector<workload::AppProfile>& profiles,
                  const sysmodel::FullSystemSim& sim,
                  const sysmodel::PlatformParams& params, std::size_t threads,
                  std::vector<sysmodel::SystemComparison>& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = sysmodel::sweep_comparisons(profiles, sim, params, threads);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

bool reports_identical(const sysmodel::SystemReport& a,
                       const sysmodel::SystemReport& b) {
  return a.exec_s == b.exec_s && a.core_energy_j == b.core_energy_j &&
         a.net_dynamic_j == b.net_dynamic_j &&
         a.net_static_j == b.net_static_j &&
         a.net.avg_latency_cycles == b.net.avg_latency_cycles;
}

}  // namespace

int main(int argc, char** argv) {
  // Telemetry attaches only when --trace-out/--metrics-out are passed; the
  // timed sweeps below are the disabled-path overhead guard in CI, so an
  // unflagged run must stay the pre-telemetry hot path.
  bench::TelemetryScope telemetry{argc, argv};
  bool small = false;
  std::string out_path = "BENCH_sweep.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--small") {
      small = true;
    } else {
      out_path = arg;
    }
  }

  std::vector<workload::AppProfile> profiles;
  sysmodel::PlatformParams params;
  params.telemetry = telemetry.sink();
  if (small) {
    for (workload::App a : {workload::App::kHist, workload::App::kWC}) {
      profiles.push_back(workload::make_profile(a));
    }
    params.sim_cycles = 6'000;
    params.drain_cycles = 30'000;
  } else {
    for (workload::App a : workload::kAllApps) {
      profiles.push_back(workload::make_profile(a));
    }
  }
  const sysmodel::FullSystemSim sim;

  json::MetricMap m;
  m["bench_sweep.config.small"] = small ? 1.0 : 0.0;
  m["bench_sweep.config.apps"] = static_cast<double>(profiles.size());
  m["bench_sweep.config.sim_cycles"] =
      static_cast<double>(params.sim_cycles);
  m["bench_sweep.config.hardware_threads"] =
      static_cast<double>(default_parallelism());

  std::cout << "Fig. 8 sweep scaling (" << profiles.size() << " apps, "
            << params.sim_cycles << " injection cycles per network)\n\n";

  // Baseline: naive reference stepping, sequential.
  sysmodel::PlatformParams ref_params = params;
  ref_params.noc_sim.reference_stepping = true;
  std::vector<sysmodel::SystemComparison> ref_results;
  const double ref_s = time_sweep(profiles, sim, ref_params, 1, ref_results);
  m["bench_sweep.reference_1t.seconds"] = ref_s;
  std::cout << "reference stepping, 1 thread:  " << ref_s << " s\n";

  double fast_1t = 0.0;
  double best = 0.0;
  bool identical = true;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<sysmodel::SystemComparison> results;
    const double s = time_sweep(profiles, sim, params, threads, results);
    m["bench_sweep.fast_" + std::to_string(threads) + "t.seconds"] = s;
    std::cout << "fast stepping, " << threads << " thread(s):    " << s
              << " s  (" << ref_s / s << "x vs reference)\n";
    if (threads == 1) fast_1t = s;
    if (best == 0.0 || s < best) best = s;
    for (std::size_t i = 0; i < results.size(); ++i) {
      identical = identical &&
                  reports_identical(results[i].nvfi_mesh,
                                    ref_results[i].nvfi_mesh) &&
                  reports_identical(results[i].vfi_mesh,
                                    ref_results[i].vfi_mesh) &&
                  reports_identical(results[i].vfi_winoc,
                                    ref_results[i].vfi_winoc);
    }
  }

  m["bench_sweep.check.bit_identical"] = identical ? 1.0 : 0.0;
  m["bench_sweep.speedup.fast_vs_reference_1t"] = ref_s / fast_1t;
  m["bench_sweep.speedup.total_best"] = ref_s / best;
  json::save_file(out_path, m);

  std::cout << "\nfast path vs reference (both 1 thread): "
            << ref_s / fast_1t << "x\n"
            << "best total (fast + threads):            " << ref_s / best
            << "x\n"
            << "fast/reference results bit-identical:   "
            << (identical ? "yes" : "NO — BUG") << "\n"
            << "wrote " << out_path << " (" << m.size() << " metrics)\n";
  return identical ? 0 : 1;
}
