// Scaling micro-bench for the parallel experiment runner + NoC fast path:
// times the Fig. 8 three-system sweep (a) with the naive reference stepping
// at one thread, then (b) with the fast stepping path at 1/2/4/8 threads,
// checks the two paths agree bit-for-bit, and writes the timings to a flat
// metric JSON (json_lite subset) for the CI artifact.
//
//   ./build/bench/bench_sweep_scaling [--small] [OUT.json]
//
// --small shrinks the app set and the simulated cycle window so the bench
// finishes in seconds on a CI runner (the speedup ratios are noisier but the
// bit-identity check is just as strict); OUT.json defaults to
// BENCH_sweep.json in the current directory.
//
// Reading the output: `speedup.fast_vs_reference_1t` isolates the simulator
// fast path (same single thread, worklist + candidate masks + idle skip vs
// the naive loops); `speedup.total_best` additionally includes thread
// scaling, which on a single-core host is ~the same number.

#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/json_lite.hpp"
#include "common/parallel_for.hpp"
#include "sysmodel/net_eval.hpp"
#include "sysmodel/sweep.hpp"
#include "workload/profile.hpp"

using namespace vfimr;

namespace {

double time_sweep(const std::vector<workload::AppProfile>& profiles,
                  const sysmodel::FullSystemSim& sim,
                  const sysmodel::PlatformParams& params, std::size_t threads,
                  std::vector<sysmodel::SystemComparison>& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = sysmodel::sweep_comparisons(profiles, sim, params, threads);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

bool reports_identical(const sysmodel::SystemReport& a,
                       const sysmodel::SystemReport& b) {
  return a.exec_s == b.exec_s && a.core_energy_j == b.core_energy_j &&
         a.net_dynamic_j == b.net_dynamic_j &&
         a.net_static_j == b.net_static_j &&
         a.net.avg_latency_cycles == b.net.avg_latency_cycles;
}

}  // namespace

int main(int argc, char** argv) {
  // Telemetry attaches only when --trace-out/--metrics-out are passed; the
  // timed sweeps below are the disabled-path overhead guard in CI, so an
  // unflagged run must stay the pre-telemetry hot path.
  bench::TelemetryScope telemetry{argc, argv};
  bool small = false;
  std::string out_path = "BENCH_sweep.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--small") {
      small = true;
    } else {
      out_path = arg;
    }
  }

  std::vector<workload::AppProfile> profiles;
  sysmodel::PlatformParams params;
  params.telemetry = telemetry.sink();
  if (small) {
    for (workload::App a : {workload::App::kHist, workload::App::kWC}) {
      profiles.push_back(workload::make_profile(a));
    }
    params.sim_cycles = 6'000;
    params.drain_cycles = 30'000;
  } else {
    for (workload::App a : workload::kAllApps) {
      profiles.push_back(workload::make_profile(a));
    }
  }
  const sysmodel::FullSystemSim sim;

  json::MetricMap m;
  m["bench_sweep.config.small"] = small ? 1.0 : 0.0;
  m["bench_sweep.config.apps"] = static_cast<double>(profiles.size());
  m["bench_sweep.config.sim_cycles"] =
      static_cast<double>(params.sim_cycles);
  m["bench_sweep.config.hardware_threads"] =
      static_cast<double>(default_parallelism());

  std::cout << "Fig. 8 sweep scaling (" << profiles.size() << " apps, "
            << params.sim_cycles << " injection cycles per network)\n\n";

  // Baseline: naive reference stepping, sequential.
  sysmodel::PlatformParams ref_params = params;
  ref_params.noc_sim.reference_stepping = true;
  std::vector<sysmodel::SystemComparison> ref_results;
  const double ref_s = time_sweep(profiles, sim, ref_params, 1, ref_results);
  m["bench_sweep.reference_1t.seconds"] = ref_s;
  std::cout << "reference stepping, 1 thread:  " << ref_s << " s\n";

  double fast_1t = 0.0;
  double best = 0.0;
  bool identical = true;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<sysmodel::SystemComparison> results;
    const double s = time_sweep(profiles, sim, params, threads, results);
    m["bench_sweep.fast_" + std::to_string(threads) + "t.seconds"] = s;
    std::cout << "fast stepping, " << threads << " thread(s):    " << s
              << " s  (" << ref_s / s << "x vs reference)\n";
    if (threads == 1) fast_1t = s;
    if (best == 0.0 || s < best) best = s;
    for (std::size_t i = 0; i < results.size(); ++i) {
      identical = identical &&
                  reports_identical(results[i].nvfi_mesh,
                                    ref_results[i].nvfi_mesh) &&
                  reports_identical(results[i].vfi_mesh,
                                    ref_results[i].vfi_mesh) &&
                  reports_identical(results[i].vfi_winoc,
                                    ref_results[i].vfi_winoc);
    }
  }

  m["bench_sweep.check.bit_identical"] = identical ? 1.0 : 0.0;
  m["bench_sweep.speedup.fast_vs_reference_1t"] = ref_s / fast_1t;
  m["bench_sweep.speedup.total_best"] = ref_s / best;

  // ---- Fidelity ladder: cycle-accurate design-space sweep vs Auto mode
  // (analytical exploration + cycle-accurate frontier confirmation) over a
  // Fig. 8-style fault-free design space: the three systems crossed with
  // the VFI-border synchronizer depth, a knob both bands model explicitly.
  // Platform construction (the VFI design flow, ~25x one network
  // evaluation) is fidelity-invariant, so both sweeps share one warm
  // PlatformCache and the timed difference is what the ladder actually
  // changes: the network evaluations.  Faulty-config accuracy is covered by
  // the xval suite's committed tolerance bands
  // (tests/test_fidelity_xval.cpp), not re-measured here.  The speedup is
  // what unlocks the ROADMAP's larger design spaces; the MAPE columns and
  // the frontier check are the fidelity half of the bargain, gated by
  // tools/check_fidelity.py.
  std::cout << "\nFidelity ladder (design space, "
            << "cycle-accurate vs Auto exploration)\n";
  std::vector<sysmodel::SweepPoint> space;
  for (sysmodel::SystemKind kind :
       {sysmodel::SystemKind::kNvfiMesh, sysmodel::SystemKind::kVfiMesh,
        sysmodel::SystemKind::kVfiWinoc}) {
    for (std::uint32_t sync = 1; sync <= 8; ++sync) {
      sysmodel::SweepPoint pt;
      pt.label =
          sysmodel::system_name(kind) + "/sync" + std::to_string(sync);
      pt.params = params;
      pt.params.kind = kind;
      pt.params.noc_sim.sync_penalty_cycles = sync;
      space.push_back(pt);
    }
  }
  const workload::AppProfile& space_profile = profiles.front();

  // Warm the shared platform cache (untimed): one VFI design flow per
  // system kind, reused by every point of both sweeps.
  sysmodel::PlatformCache platforms;
  for (const auto& pt : space) {
    platforms.get(space_profile, pt.params, sim.vf_table());
  }

  sysmodel::NetworkEvaluator cycle_evaluator;
  std::vector<sysmodel::SweepPoint> cycle_space = space;
  for (auto& pt : cycle_space) {
    pt.params.fidelity = sysmodel::Fidelity::kCycleAccurate;
    pt.params.net_eval = &cycle_evaluator;
    pt.params.platform_cache = &platforms;
  }
  const auto c0 = std::chrono::steady_clock::now();
  const auto cycle_run = sysmodel::sweep_design_space(
      space_profile, sim, cycle_space, 0, default_parallelism());
  const auto c1 = std::chrono::steady_clock::now();
  const double cycle_s = std::chrono::duration<double>(c1 - c0).count();

  sysmodel::NetworkEvaluator evaluator;
  std::vector<sysmodel::SweepPoint> auto_space = space;
  for (auto& pt : auto_space) {
    pt.params.fidelity = sysmodel::Fidelity::kAuto;
    pt.params.net_eval = &evaluator;
    pt.params.platform_cache = &platforms;
  }
  const auto a0 = std::chrono::steady_clock::now();
  const auto auto_run = sysmodel::sweep_design_space(
      space_profile, sim, auto_space, 1, default_parallelism());
  const auto a1 = std::chrono::steady_clock::now();
  const double auto_s = std::chrono::duration<double>(a1 - a0).count();

  double lat_mape = 0.0;
  double edp_mape = 0.0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto& truth = cycle_run.points[i].explored;
    const auto& est = auto_run.points[i].explored;
    lat_mape += std::abs(est.net.avg_latency_cycles -
                         truth.net.avg_latency_cycles) /
                truth.net.avg_latency_cycles;
    edp_mape += std::abs(est.edp_js() - truth.edp_js()) / truth.edp_js();
  }
  lat_mape /= static_cast<double>(space.size());
  edp_mape /= static_cast<double>(space.size());

  // The Auto frontier must be the cycle-accurate argmin, and its confirmed
  // report must BE a cycle-accurate evaluation of that point.
  const bool frontier_match =
      auto_run.argmin_confirmed == cycle_run.argmin_explored &&
      auto_run.points[auto_run.argmin_confirmed].promoted &&
      auto_run.points[auto_run.argmin_confirmed].confirmed.edp_js() ==
          cycle_run.points[cycle_run.argmin_explored].explored.edp_js();
  const auto stats = evaluator.stats();
  const bool counters_consistent =
      stats.analytical_hits + stats.cycle_hits == stats.hits &&
      stats.analytical_misses + stats.cycle_misses == stats.misses &&
      stats.promotions == auto_run.promotions && stats.cycle_misses > 0 &&
      stats.analytical_misses > 0;

  m["bench_sweep.fidelity.points"] = static_cast<double>(space.size());
  m["bench_sweep.fidelity.cycle_seconds"] = cycle_s;
  m["bench_sweep.fidelity.auto_seconds"] = auto_s;
  m["bench_sweep.fidelity.speedup_auto"] = cycle_s / auto_s;
  m["bench_sweep.fidelity.latency_mape"] = lat_mape;
  m["bench_sweep.fidelity.edp_mape"] = edp_mape;
  m["bench_sweep.fidelity.frontier_match"] = frontier_match ? 1.0 : 0.0;
  m["bench_sweep.fidelity.promotions"] =
      static_cast<double>(auto_run.promotions);
  m["bench_sweep.fidelity.counters_consistent"] =
      counters_consistent ? 1.0 : 0.0;
  std::cout << "cycle-accurate, " << space.size() << " points:  " << cycle_s
            << " s\n"
            << "Auto (analytical + confirm):  " << auto_s << " s  ("
            << cycle_s / auto_s << "x)\n"
            << "latency MAPE vs cycle band:   " << lat_mape * 100.0 << "%\n"
            << "EDP MAPE vs cycle band:       " << edp_mape * 100.0 << "%\n"
            << "frontier match:               "
            << (frontier_match ? "yes" : "NO — BUG") << "\n";

  // ---- Evaluation store: cold vs warm incremental sweep over a scratch
  // disk store (DESIGN.md §16).  The cold pass simulates every point and
  // commits the results (flush included in the timing — durability is part
  // of the cost); the warm pass opens the same directory with all-fresh
  // in-memory state, so everything it serves comes off disk.  Gates folded
  // into the exit code: warm evaluates nothing, its evaluator simulates
  // nothing, and both passes' reports are bit-identical to the reference
  // sweep — the disk tier's "a hit is indistinguishable from a fresh run"
  // contract, timed at bench scale.
  std::cout << "\nEvaluation store (cold vs warm incremental sweep)\n";
  namespace fs = std::filesystem;
  std::error_code store_ec;
  const fs::path store_root =
      fs::temp_directory_path() / "vfimr_bench_sweep_store";
  fs::remove_all(store_root, store_ec);

  sysmodel::IncrementalSweepResult cold_run;
  sysmodel::IncrementalSweepResult warm_run;
  double cold_s = 0.0;
  double warm_s = 0.0;
  double disk_hit_rate = 0.0;
  std::uint64_t warm_sim_misses = 0;
  {
    store::EvalStore st{store_root.string()};
    sysmodel::NetworkEvaluator cold_eval;
    cold_eval.attach_store(&st);
    sysmodel::PlatformCache cold_platforms;
    cold_platforms.attach_store(&st);
    sysmodel::PlatformParams sp = params;
    sp.net_eval = &cold_eval;
    sp.platform_cache = &cold_platforms;
    sysmodel::IncrementalOptions opts;
    opts.store = &st;
    opts.sweep_name = "bench-sweep";
    const auto s0 = std::chrono::steady_clock::now();
    cold_run = sysmodel::incremental_sweep_comparisons(profiles, sim, sp,
                                                       opts);
    cold_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           s0)
                 .count();
  }
  {
    store::EvalStore st{store_root.string()};
    sysmodel::NetworkEvaluator warm_eval;
    warm_eval.attach_store(&st);
    sysmodel::PlatformCache warm_platforms;
    warm_platforms.attach_store(&st);
    sysmodel::PlatformParams sp = params;
    sp.net_eval = &warm_eval;
    sp.platform_cache = &warm_platforms;
    sysmodel::IncrementalOptions opts;
    opts.store = &st;
    opts.sweep_name = "bench-sweep";
    const auto s0 = std::chrono::steady_clock::now();
    warm_run = sysmodel::incremental_sweep_comparisons(profiles, sim, sp,
                                                       opts);
    warm_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           s0)
                 .count();
    disk_hit_rate = st.stats().hit_rate();
    warm_sim_misses = warm_eval.stats().misses;
  }
  fs::remove_all(store_root, store_ec);

  bool store_identical = cold_run.comparisons.size() == ref_results.size() &&
                         warm_run.comparisons.size() == ref_results.size();
  for (std::size_t i = 0; store_identical && i < ref_results.size(); ++i) {
    for (const auto* run : {&cold_run, &warm_run}) {
      store_identical =
          store_identical && run->valid[i] != 0 &&
          reports_identical(run->comparisons[i].nvfi_mesh,
                            ref_results[i].nvfi_mesh) &&
          reports_identical(run->comparisons[i].vfi_mesh,
                            ref_results[i].vfi_mesh) &&
          reports_identical(run->comparisons[i].vfi_winoc,
                            ref_results[i].vfi_winoc);
    }
  }
  const bool store_ok = store_identical && warm_run.evaluated_points == 0 &&
                        warm_run.reused_points == profiles.size() &&
                        warm_sim_misses == 0;

  m["bench_sweep.store.cold_s"] = cold_s;
  m["bench_sweep.store.warm_s"] = warm_s;
  m["bench_sweep.store.warm_speedup"] = warm_s > 0.0 ? cold_s / warm_s : 0.0;
  m["bench_sweep.store.disk_hit_rate"] = disk_hit_rate;
  m["bench_sweep.store.cold_evaluated"] =
      static_cast<double>(cold_run.evaluated_points);
  m["bench_sweep.store.warm_reused"] =
      static_cast<double>(warm_run.reused_points);
  m["bench_sweep.store.warm_sim_misses"] =
      static_cast<double>(warm_sim_misses);
  m["bench_sweep.store.identical"] = store_ok ? 1.0 : 0.0;
  std::cout << "cold (simulate + commit):     " << cold_s << " s\n"
            << "warm (all from disk):         " << warm_s << " s  ("
            << (warm_s > 0.0 ? cold_s / warm_s : 0.0) << "x)\n"
            << "warm disk hit rate:           " << disk_hit_rate * 100.0
            << "%\n"
            << "disk results bit-identical:   "
            << (store_ok ? "yes" : "NO — BUG") << "\n";

  json::save_file(out_path, m);

  std::cout << "\nfast path vs reference (both 1 thread): "
            << ref_s / fast_1t << "x\n"
            << "best total (fast + threads):            " << ref_s / best
            << "x\n"
            << "fast/reference results bit-identical:   "
            << (identical ? "yes" : "NO — BUG") << "\n"
            << "wrote " << out_path << " (" << m.size() << " metrics)\n";
  return (identical && frontier_match && counters_consistent && store_ok)
             ? 0
             : 1;
}
