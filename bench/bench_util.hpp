#pragma once
// Shared helpers for the per-figure benchmark binaries.  Every bench prints
// the paper's rows as an ASCII table and mirrors them to results/<name>.csv
// (the directory is created on demand), so a repo-root run refreshes the
// committed results/ set in place instead of littering the working
// directory.

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>

#include "common/json_lite.hpp"
#include "common/table.hpp"
#include "store/eval_store.hpp"
#include "sysmodel/system_sim.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/profile.hpp"

namespace vfimr::bench {

/// Uniform telemetry hookup for the paper benches: strips
/// `--trace-out[=]FILE` and `--metrics-out[=]FILE` from argv, owns a
/// TelemetrySink while either flag is present, and writes the Chrome trace
/// JSON (load in Perfetto / chrome://tracing) and the metrics file
/// (flat-JSON when FILE ends in .json, CSV otherwise) on destruction.
///
/// Benches pass `scope.sink()` into PlatformParams::telemetry /
/// SimConfig::telemetry; it is nullptr when neither flag was given, so an
/// unflagged run is the untraced fast path.
class TelemetryScope {
 public:
  TelemetryScope(int& argc, char** argv) {
    int keep = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value_of = [&](const std::string& flag) -> const char* {
        if (arg.rfind(flag + "=", 0) == 0) return argv[i] + flag.size() + 1;
        if (arg == flag && i + 1 < argc) return argv[++i];
        return nullptr;
      };
      if (const char* v = value_of("--trace-out")) {
        trace_path_ = v;
      } else if (const char* v = value_of("--metrics-out")) {
        metrics_path_ = v;
      } else {
        argv[keep++] = argv[i];
      }
    }
    argc = keep;
    if (!trace_path_.empty() || !metrics_path_.empty()) {
      sink_ = std::make_unique<telemetry::TelemetrySink>();
    }
  }

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

  /// Null when telemetry was not requested on the command line.
  telemetry::TelemetrySink* sink() { return sink_.get(); }

  ~TelemetryScope() {
    if (sink_ == nullptr) return;
    std::cout << "== telemetry summary\n"
              << sink_->metrics().summary_table().to_string();
    if (sink_->tracer().dropped() > 0) {
      std::cout << "(trace truncated: " << sink_->tracer().dropped()
                << " events dropped past the cap)\n";
    }
    try {
      if (!trace_path_.empty()) {
        telemetry::write_chrome_trace(trace_path_, sink_->tracer());
        std::cout << "(trace: " << trace_path_ << ", "
                  << sink_->tracer().events() << " events)\n";
      }
      if (!metrics_path_.empty()) {
        const bool as_json = metrics_path_.size() >= 5 &&
                             metrics_path_.compare(metrics_path_.size() - 5,
                                                   5, ".json") == 0;
        if (as_json) {
          json::save_file(metrics_path_, sink_->metrics().snapshot());
        } else {
          sink_->metrics().summary_table().write_csv(metrics_path_);
        }
        std::cout << "(metrics: " << metrics_path_ << ")\n";
      }
    } catch (const std::exception& e) {
      std::cout << "(telemetry not written: " << e.what() << ")\n";
    }
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::unique_ptr<telemetry::TelemetrySink> sink_;
};

/// Evaluation-store directory: the VFIMR_CACHE_DIR environment variable
/// when set and non-empty, else empty — the disk tier defaults to OFF, so
/// an unconfigured run touches no store files and is bit-identical to the
/// pre-store benches.  Mirrors results_dir()'s "one tree regardless of
/// CWD" contract for the cache.
inline std::string cache_dir() {
  if (const char* env = std::getenv("VFIMR_CACHE_DIR")) {
    if (*env != '\0') return env;
  }
  return {};
}

/// Uniform disk-tier hookup for the paper benches, the store twin of
/// TelemetryScope: strips `--cache-dir[=]DIR` from argv and owns an
/// EvalStore while the flag or VFIMR_CACHE_DIR selects a directory (the
/// flag wins).  store() is nullptr when neither is set — benches attach it
/// to NetworkEvaluator / PlatformCache unconditionally, and a null store
/// keeps them purely in-memory.
class CacheDirScope {
 public:
  CacheDirScope(int& argc, char** argv) {
    std::string dir = cache_dir();
    int keep = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--cache-dir=", 0) == 0) {
        dir = arg.substr(sizeof("--cache-dir=") - 1);
      } else if (arg == "--cache-dir" && i + 1 < argc) {
        dir = argv[++i];
      } else {
        argv[keep++] = argv[i];
      }
    }
    argc = keep;
    if (!dir.empty()) {
      store_ = std::make_unique<store::EvalStore>(dir);
      std::cout << "(cache: " << store_->dir() << ", " << store_->keys()
                << " keys in " << store_->segments() << " segments)\n";
    }
  }

  CacheDirScope(const CacheDirScope&) = delete;
  CacheDirScope& operator=(const CacheDirScope&) = delete;

  /// Null when no cache directory was requested (flag or env).
  store::EvalStore* store() { return store_.get(); }

  ~CacheDirScope() {
    if (store_ == nullptr) return;
    try {
      store_->flush();
      const store::StoreStats s = store_->stats();
      std::cout << "(cache: " << s.hits << " hits / " << s.misses
                << " misses, " << s.bytes_read << " B read, "
                << s.bytes_written << " B written)\n";
    } catch (const std::exception& e) {
      std::cout << "(cache not flushed: " << e.what() << ")\n";
    }
  }

 private:
  std::unique_ptr<store::EvalStore> store_;
};

/// Bench output directory: the VFIMR_RESULTS_DIR environment variable when
/// set and non-empty, else `results` relative to the CWD.  The override
/// keeps every bench writing into ONE results tree no matter which
/// directory it is launched from (CI steps, `ctest`-driven smoke runs and
/// repo-root refreshes used to each grow their own `results/`).
inline std::string results_dir() {
  if (const char* env = std::getenv("VFIMR_RESULTS_DIR")) {
    if (*env != '\0') return env;
  }
  return "results";
}

/// Bench output path: `<results_dir()>/<name>`, creating the directory on
/// demand.  Falls back to `<name>` in the working directory when the
/// directory cannot be created (read-only checkouts) so the caller's own
/// error handling sees the write failure, not a bogus path.
inline std::string results_path(const std::string& name) {
  const std::string dir = results_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return name;
  return dir + "/" + name;
}

/// Print the table and write `results/<csv_name>.csv`; CSV failures are
/// reported but non-fatal (benches may run in read-only directories).
inline void emit(const TextTable& table, const std::string& csv_name,
                 const std::string& title) {
  std::cout << "== " << title << "\n" << table.to_string();
  const std::string path = results_path(csv_name + ".csv");
  try {
    table.write_csv(path);
    std::cout << "(csv: " << path << ")\n\n";
  } catch (const std::exception& e) {
    std::cout << "(csv not written: " << e.what() << ")\n\n";
  }
}

}  // namespace vfimr::bench
