#pragma once
// Shared helpers for the per-figure benchmark binaries.  Every bench prints
// the paper's rows as an ASCII table and mirrors them to <name>.csv in the
// working directory.

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr::bench {

/// Print the table and write `<csv_name>.csv`; CSV failures are reported but
/// non-fatal (benches may run in read-only directories).
inline void emit(const TextTable& table, const std::string& csv_name,
                 const std::string& title) {
  std::cout << "== " << title << "\n" << table.to_string();
  try {
    table.write_csv(csv_name + ".csv");
    std::cout << "(csv: " << csv_name << ".csv)\n\n";
  } catch (const std::exception& e) {
    std::cout << "(csv not written: " << e.what() << ")\n\n";
  }
}

}  // namespace vfimr::bench
