// Cluster availability bench (DESIGN.md §14): the serving tier under a
// seeded per-platform failure/repair timeline, swept over fault rate x
// retry/hedging policy x fleet size.  Emits goodput, availability, tail
// latency and retry/hedge-waste columns to results/cluster_availability.csv
// and the CI-gated metrics (zero-fault bit-identity with the fault-free
// serving loop, goodput/availability monotonicity in the fault rate) into
// the shared BENCH_cluster.json.
//
//   ./build/bench/bench_cluster_availability [--small]
//       [--fidelity=cycle|analytical|auto] [OUT.json]
//
// OUT.json defaults to BENCH_cluster.json in the current directory and is
// merged (not truncated) when it already exists, so this bench and
// bench_cluster_serving can share one metrics file.  Fault plans use the
// superset-thinning generator (faults::make_fleet_faults): a higher rate
// accepts a strict superset of the same candidate stream, which makes the
// monotonicity gates structural rather than statistical.

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "cluster/arrivals.hpp"
#include "cluster/fleet_faults.hpp"
#include "cluster/service.hpp"
#include "cluster/serving.hpp"
#include "common/json_lite.hpp"
#include "common/parallel_for.hpp"
#include "sysmodel/net_eval.hpp"
#include "workload/profile.hpp"

using namespace vfimr;

namespace {

/// Heterogeneous fleet of `n` instances: half VFI WiNoC, a quarter VFI
/// mesh, the rest NVFI mesh baselines (mirrors bench_cluster_serving).
std::vector<cluster::PlatformTypeSpec> make_fleet_types(
    std::size_t n, const sysmodel::PlatformParams& base) {
  const std::size_t winoc = (n + 1) / 2;
  const std::size_t vfi_mesh = std::max<std::size_t>(1, n / 4);
  const std::size_t nvfi = n > winoc + vfi_mesh ? n - winoc - vfi_mesh : 0;

  std::vector<cluster::PlatformTypeSpec> types;
  cluster::PlatformTypeSpec t;
  t.label = "vfi-winoc";
  t.params = base;
  t.params.kind = sysmodel::SystemKind::kVfiWinoc;
  t.count = winoc;
  types.push_back(t);
  t.label = "vfi-mesh";
  t.params = base;
  t.params.kind = sysmodel::SystemKind::kVfiMesh;
  t.count = vfi_mesh;
  types.push_back(t);
  if (nvfi > 0) {
    t.label = "nvfi-mesh";
    t.params = base;
    t.params.kind = sysmodel::SystemKind::kNvfiMesh;
    t.count = nvfi;
    types.push_back(t);
  }
  return types;
}

struct Cell {
  std::string policy;
  std::size_t fleet_size = 0;
  double fault_level = 0.0;  ///< expected crashes per instance over the run
  double plan_horizon_s = 0.0;
  cluster::FleetConfig fleet;
  cluster::ArrivalConfig arrivals;
};

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};
  bench::CacheDirScope cache{argc, argv};
  bool small = false;
  sysmodel::Fidelity fidelity = sysmodel::Fidelity::kAuto;
  std::string out_path = "BENCH_cluster.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--small") {
      small = true;
    } else if (arg.rfind("--fidelity=", 0) == 0) {
      if (!sysmodel::parse_fidelity(arg.substr(11), fidelity)) {
        std::cerr << "unknown fidelity '" << arg.substr(11) << "'\n";
        return 2;
      }
    } else {
      out_path = arg;
    }
  }

  const std::size_t jobs_per_cell = small ? 20'000 : 100'000;
  const std::vector<std::size_t> fleet_sizes = {8, 16};
  // Expected crashes per instance over the run; 0 is the identity anchor.
  const std::vector<double> fault_levels = {0.0, 0.5, 1.0, 2.0};
  const double rho = 0.7;

  std::vector<workload::AppProfile> profiles;
  for (workload::App a : workload::kAllApps) {
    profiles.push_back(workload::make_profile(a));
  }

  sysmodel::PlatformParams base;
  base.fidelity = fidelity;
  base.telemetry = telemetry.sink();
  if (small) {
    base.sim_cycles = 6'000;
    base.drain_cycles = 30'000;
  }
  sysmodel::NetworkEvaluator evaluator;
  sysmodel::PlatformCache platforms;
  // With --cache-dir / VFIMR_CACHE_DIR set, the ServiceMatrix warmup's
  // evaluations resolve through the persistent store: a warm cache serves
  // the whole service matrix from disk instead of re-simulating it.
  evaluator.attach_store(cache.store());
  platforms.attach_store(cache.store());
  base.net_eval = &evaluator;
  base.platform_cache = &platforms;
  const sysmodel::FullSystemSim sim;

  const std::vector<cluster::PlatformTypeSpec> types =
      make_fleet_types(16, base);
  const cluster::ServiceMatrix matrix =
      cluster::ServiceMatrix::evaluate(profiles, types, sim);

  // Retry/hedge knobs scale with the fleet's mean service time so the
  // sweep is meaningful at any fidelity band.
  double mean_service = 0.0;
  for (std::size_t a = 0; a < matrix.apps(); ++a) {
    mean_service += matrix.mean_service_s(a);
  }
  mean_service /= static_cast<double>(matrix.apps());

  cluster::RetryPolicy retry3;
  retry3.max_attempts = 3;
  retry3.backoff_base_s = 0.5 * mean_service;
  retry3.backoff_mult = 2.0;
  retry3.backoff_cap_s = 8.0 * retry3.backoff_base_s;

  // ---- The policy x fleet x fault-level sweep.  Arrivals and the fault
  // candidate stream are fixed per (policy, fleet); only the acceptance
  // rate moves with the level, so each level's crash set is a superset of
  // the previous one.
  struct PolicyDef {
    std::string name;
    cluster::RetryPolicy retry;
    cluster::HedgePolicy hedge;
  };
  std::vector<PolicyDef> policies(3);
  policies[0].name = "no-retry";
  policies[1].name = "retry";
  policies[1].retry = retry3;
  policies[2].name = "retry+hedge";
  policies[2].retry = retry3;
  policies[2].hedge.latency_multiplier = 3.0;

  std::vector<Cell> cells;
  for (const std::size_t n : fleet_sizes) {
    const std::vector<cluster::PlatformTypeSpec> fleet_types =
        make_fleet_types(n, base);
    const double capacity =
        cluster::fleet_capacity_jobs_per_s(matrix, fleet_types);
    const double rate = rho * capacity;
    // Fixed across fault levels: the superset property needs one candidate
    // horizon per (policy, fleet) column.
    const double plan_horizon =
        1.2 * static_cast<double>(jobs_per_cell) / rate;
    for (const PolicyDef& p : policies) {
      for (const double level : fault_levels) {
        Cell c;
        c.policy = p.name;
        c.fleet_size = n;
        c.fault_level = level;
        c.plan_horizon_s = plan_horizon;
        c.fleet.types = fleet_types;
        c.fleet.policy = cluster::SchedulerPolicy::kLeastLoaded;
        c.fleet.retry = p.retry;
        c.fleet.hedge = p.hedge;
        c.arrivals.rate_jobs_per_s = rate;
        c.arrivals.job_count = jobs_per_cell;
        c.arrivals.seed = 2015;
        if (level > 0.0) {
          faults::FleetFaultSpec spec;
          spec.crash_rate_per_ks = level / (plan_horizon / 1000.0);
          spec.degrade_rate_per_ks = 0.5 * spec.crash_rate_per_ks;
          spec.mean_repair_s = 0.05 * plan_horizon;
          spec.mean_degrade_s = 0.05 * plan_horizon;
          spec.degrade_slowdown = 2.0;
          spec.seed = 7;
          c.fleet.faults = cluster::FleetFaultPlan::from_spec(
              spec, c.fleet.instance_count(), plan_horizon);
        }
        cells.push_back(std::move(c));
      }
    }
  }

  std::vector<cluster::ClusterReport> reports(cells.size());
  const auto c0 = std::chrono::steady_clock::now();
  parallel_for(cells.size(), default_parallelism(), [&](std::size_t i) {
    const std::vector<cluster::JobArrival> arrivals =
        cluster::make_arrivals(cells[i].arrivals);
    reports[i] = cluster::ClusterSim::run(arrivals, cells[i].fleet, matrix);
  });
  const auto c1 = std::chrono::steady_clock::now();
  const double cells_s = std::chrono::duration<double>(c1 - c0).count();

  TextTable table{{"policy", "fleet", "level", "arrived", "completed",
                   "lost", "shed", "retry", "failover", "hedge", "hwin",
                   "avail", "goodput", "p50_s", "p999_s", "wasted_j",
                   "edp_js"}};
  bool goodput_monotone = true;
  bool availability_monotone = true;
  double prev_goodput = 0.0;
  double prev_down = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const cluster::ClusterReport& r = reports[i];
    const cluster::SlaStats& s = r.fleet;
    table.add_row(
        {c.policy, std::to_string(c.fleet_size), fmt(c.fault_level, 2),
         std::to_string(s.arrived), std::to_string(s.completed),
         std::to_string(s.lost), std::to_string(s.shed_retry),
         std::to_string(s.retries), std::to_string(s.failovers),
         std::to_string(s.hedges), std::to_string(s.hedge_wins),
         fmt(r.availability(), 4), fmt(r.goodput_jobs_per_s(), 2),
         cluster::format_quantile(s.p50), cluster::format_quantile(s.p999),
         fmt(r.wasted_energy_j, 1), fmt(r.fleet_edp_js(), 1)});
    // Within one (policy, fleet) column the fault levels ascend: goodput
    // must not rise with the fault rate (1% slack for scheduling noise)
    // and down-time at the shared plan horizon grows exactly (superset).
    const double down = c.fleet.faults.empty()
                            ? 0.0
                            : c.fleet.faults.down_seconds(c.plan_horizon_s);
    if (i % fault_levels.size() != 0) {
      goodput_monotone = goodput_monotone &&
                         r.goodput_jobs_per_s() <= prev_goodput * 1.01;
      availability_monotone = availability_monotone && down >= prev_down;
    }
    prev_goodput = r.goodput_jobs_per_s();
    prev_down = down;
  }
  bench::emit(table, "cluster_availability",
              "cluster availability sweep (policy x fleet x fault rate)");

  // ---- Zero-fault identity: a retry-enabled config with an empty fault
  // plan must replay today's fault-free serving loop bit-for-bit.
  bool identity = true;
  {
    cluster::ArrivalConfig arr = cells.front().arrivals;
    const std::vector<cluster::JobArrival> arrivals =
        cluster::make_arrivals(arr);
    cluster::FleetConfig plain;
    plain.types = make_fleet_types(fleet_sizes.front(), base);
    plain.policy = cluster::SchedulerPolicy::kLeastLoaded;
    cluster::FleetConfig faulty = plain;
    faulty.retry = retry3;
    const cluster::ClusterReport a =
        cluster::ClusterSim::run(arrivals, plain, matrix);
    const cluster::ClusterReport b =
        cluster::ClusterSim::run(arrivals, faulty, matrix);
    identity = a.completion_digest == b.completion_digest &&
               a.fleet.completed == b.fleet.completed &&
               a.fleet.latency_s.sum() == b.fleet.latency_s.sum() &&
               a.fleet.energy_j.sum() == b.fleet.energy_j.sum() &&
               b.fleet.retries == 0 && b.fleet.lost == 0 &&
               b.wasted_energy_j == 0.0;
  }

  // ---- Faulty-tier attribution (DESIGN.md §15): replay one degraded cell
  // (retry+hedge, largest fleet, one expected crash per instance) with the
  // serving-tier observer on.  The sink-on run must replay the sweep's
  // sink-off report bit-for-bit, and its p99-cohort decomposition — where
  // retry backoff and degraded service show up as first-class columns —
  // lands in results/cluster_attribution_faulty.csv for the EXPERIMENTS.md
  // walkthrough and tools/check_cluster_obs.py.
  bool obs_identity = true;
  bool obs_attrib_exact = true;
  {
    std::size_t pick = cells.size();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].policy == "retry+hedge" &&
          cells[i].fleet_size == fleet_sizes.back() &&
          cells[i].fault_level == 1.0) {
        pick = i;
      }
    }
    if (pick < cells.size()) {
      telemetry::TelemetrySink local_sink;
      telemetry::TelemetrySink* obs_sink =
          telemetry.sink() != nullptr ? telemetry.sink() : &local_sink;
      const std::vector<cluster::JobArrival> arrivals =
          cluster::make_arrivals(cells[pick].arrivals);
      cluster::FleetConfig fleet = cells[pick].fleet;
      fleet.telemetry = obs_sink;
      fleet.obs.enabled = true;
      fleet.obs.label = "avail-obs";
      const cluster::ClusterReport traced =
          cluster::ClusterSim::run(arrivals, fleet, matrix);
      const cluster::ClusterReport& bare = reports[pick];
      obs_identity = traced.completion_digest == bare.completion_digest &&
                     traced.fleet.completed == bare.fleet.completed &&
                     traced.fleet.latency_s.sum() ==
                         bare.fleet.latency_s.sum() &&
                     traced.fleet.energy_j.sum() == bare.fleet.energy_j.sum();
      if (traced.obs != nullptr) {
        const cluster::ClusterObsReport& o = *traced.obs;
        std::cout << "== faulty-cell tail attribution (retry+hedge, fleet "
                  << cells[pick].fleet_size << ", level 1.0)\n"
                  << o.attribution_table().to_string()
                  << o.monitors_table().to_string();
        for (const cluster::JobAttribution& row : o.tail) {
          obs_attrib_exact =
              obs_attrib_exact && row.comp.sum() == row.latency_s;
        }
        try {
          const std::string path =
              bench::results_path("cluster_attribution_faulty.csv");
          o.attribution_csv().write_csv(path);
          std::cout << "(csv: " << path << ")\n\n";
        } catch (const std::exception& e) {
          std::cout << "(obs csv not written: " << e.what() << ")\n\n";
        }
      } else {
        obs_identity = false;
      }
    }
  }

  json::MetricMap m;
  {
    // Merge with bench_cluster_serving's metrics when the file exists.
    std::ifstream probe(out_path);
    if (probe.good()) {
      probe.close();
      m = json::load_file(out_path);
    }
  }
  m["bench_cluster.availability.obs_identity"] = obs_identity ? 1.0 : 0.0;
  m["bench_cluster.availability.obs_attribution_exact"] =
      obs_attrib_exact ? 1.0 : 0.0;
  m["bench_cluster.availability.cells"] = static_cast<double>(cells.size());
  m["bench_cluster.availability.seconds"] = cells_s;
  m["bench_cluster.availability.zero_fault_identity"] = identity ? 1.0 : 0.0;
  m["bench_cluster.availability.goodput_monotone"] =
      goodput_monotone ? 1.0 : 0.0;
  m["bench_cluster.availability.availability_monotone"] =
      availability_monotone ? 1.0 : 0.0;
  json::save_file(out_path, m);

  std::cout << "zero-fault identity: " << (identity ? "yes" : "NO — BUG")
            << "\ngoodput monotone in fault rate: "
            << (goodput_monotone ? "yes" : "NO — BUG")
            << "\navailability monotone in fault rate: "
            << (availability_monotone ? "yes" : "NO — BUG")
            << "\nobserver sink-on replay bit-identical: "
            << (obs_identity ? "yes" : "NO — BUG") << "\nwrote " << out_path
            << " (" << m.size() << " metrics)\n";

  const bool ok = identity && goodput_monotone && availability_monotone &&
                  obs_identity && obs_attrib_exact;
  return ok ? 0 : 1;
}
