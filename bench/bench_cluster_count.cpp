// VFI granularity ablation: how many islands should the 64-core chip have?
//
// The paper fixes m = 4 (four 4x4 VFIs); this extension sweeps m in
// {1, 2, 4, 8, 16} through the same Eq. 1 clustering + V/F selection and a
// core-side execution/energy model (map phase under Eq. 3 assignment
// stealing).  More islands track the utilization profile more closely
// (lower energy) but fragment the stealing pool; m = 1 degenerates to the
// NVFI system.  Network effects are held out (islands are a core-side
// concept here), so this isolates the V/F-granularity trade-off of
// Ogras et al. [12].

#include "bench/bench_util.hpp"
#include "power/core_power.hpp"
#include "sysmodel/task_sim.hpp"
#include "vfi/clustering.hpp"
#include "vfi/vf_assign.hpp"

using namespace vfimr;

namespace {

struct Outcome {
  double time_ratio;    // vs all-cores-at-fmax
  double energy_ratio;  // map-phase core energy vs baseline
  double edp_ratio;
};

Outcome evaluate(const workload::AppProfile& profile, std::size_t clusters) {
  const auto& table = power::VfTable::standard();
  const power::CorePowerModel power_model;
  const double fmax = table.max().freq_hz;

  // Cluster + select V/F (m == 1: plain mean-utilization selection).
  std::vector<std::size_t> assignment(64, 0);
  if (clusters > 1) {
    vfi::ClusteringProblem problem;
    problem.utilization = profile.utilization;
    problem.traffic = profile.traffic;
    problem.clusters = clusters;
    vfi::AnnealParams anneal;
    anneal.iterations = 100'000;
    anneal.restarts = 2;
    assignment = vfi::solve_anneal(problem, anneal).assignment;
  }
  const auto vf =
      vfi::select_vf(profile.utilization, assignment, clusters, table);

  std::vector<sysmodel::SimCore> cores(64);
  std::vector<sysmodel::SimCore> nominal(64, {fmax, 1.0});
  for (std::size_t t = 0; t < 64; ++t) {
    cores[t] = {vf[assignment[t]].freq_hz, vf[assignment[t]].freq_hz / fmax};
  }

  Rng rng{0xAB1E};
  const auto tasks =
      sysmodel::materialize_tasks(profile.phases.map, profile.utilization, rng);
  const auto actual = sysmodel::simulate_phase(
      tasks, cores, 1.0, sysmodel::StealingPolicy::kVfiAssignment);
  const auto base = sysmodel::simulate_phase(
      tasks, nominal, 1.0, sysmodel::StealingPolicy::kPhoenixDefault);

  auto energy = [&](const sysmodel::TaskSimResult& r,
                    const std::vector<sysmodel::SimCore>& cs,
                    const std::vector<power::VfPoint>& points,
                    const std::vector<std::size_t>& assign) {
    double e = 0.0;
    for (std::size_t t = 0; t < 64; ++t) {
      const double u =
          r.makespan_s > 0.0
              ? std::min(1.0, r.busy_seconds[t] / r.makespan_s *
                                  profile.utilization[t] /
                                  std::max(0.05, profile.mean_utilization()))
              : 0.0;
      e += power_model.energy_j(u, points[assign[t]], r.makespan_s);
    }
    (void)cs;
    return e;
  };
  const std::vector<power::VfPoint> base_vf(1, table.max());
  const std::vector<std::size_t> base_assign(64, 0);

  Outcome out;
  out.time_ratio = actual.makespan_s / base.makespan_s;
  out.energy_ratio = energy(actual, cores, vf, assignment) /
                     energy(base, nominal, base_vf, base_assign);
  out.edp_ratio = out.time_ratio * out.time_ratio * out.energy_ratio;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};  // accepts the uniform flags
  TextTable t{{"App", "m=1 EDP", "m=2 EDP", "m=4 EDP", "m=8 EDP", "m=16 EDP",
               "best m"}};
  for (workload::App app :
       {workload::App::kKmeans, workload::App::kWC, workload::App::kMM}) {
    const auto profile = workload::make_profile(app);
    std::vector<std::string> cells = {profile.name()};
    double best = 1e300;
    std::size_t best_m = 1;
    for (std::size_t m : {1u, 2u, 4u, 8u, 16u}) {
      const auto r = evaluate(profile, m);
      cells.push_back(fmt(r.edp_ratio));
      if (r.edp_ratio < best) {
        best = r.edp_ratio;
        best_m = m;
      }
    }
    cells.push_back(std::to_string(best_m));
    t.add_row(cells);
  }
  bench::emit(t, "cluster_count_ablation",
              "VFI granularity ablation: core-side map-phase EDP vs island "
              "count m (normalized to NVFI)");
  return 0;
}
