// Fig. 8 — full-system energy-delay product of VFI Mesh and VFI WiNoC
// relative to the NVFI mesh, for all six applications.
//
// Headline numbers to compare against the paper: average WiNoC EDP saving
// 33.7%, maximum 66.2% (Kmeans); execution-time penalty of the WiNoC system
// at most 3.22% (checked in the exec column).
//
// The WiNoC per-phase NoC latencies measured by the phase-resolved pipeline
// (DESIGN.md §11) are appended to each row; the whole sweep shares one
// memoizing NetworkEvaluator.

#include <chrono>

#include "bench/bench_util.hpp"
#include "common/json_lite.hpp"
#include "common/stats.hpp"
#include "sysmodel/net_eval.hpp"
#include "sysmodel/sweep.hpp"

using namespace vfimr;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

// Usage: bench_fig8_full_system_edp [--small] [--fidelity=cycle|analytical|auto]
//                                   [--trace-out FILE] [--metrics-out FILE]
//                                   [--bench-out FILE] [--cache-dir DIR]
//                                   [--store-out FILE] [--shard I/N]
// --small shrinks the app set and simulated cycle window for CI smoke runs
// (numbers drift from the paper's; the telemetry plumbing is identical).
// --fidelity selects the network-evaluation band (DESIGN.md §12; default
// cycle, the paper-faithful ground truth).  analytical/auto run the whole
// figure through the M/D/1 band — orders of magnitude faster, EDP ratios
// within the validated tolerance — handy for quick what-if passes over the
// figure before a cycle-accurate rerun.
// --bench-out additionally re-runs the sweep with phase traffic stripped
// (the pre-phase-resolution single-evaluation path) and writes a JSON
// comparing the two wall times plus the NetworkEvaluator cache counters —
// consumed by tools/check_fig8_phase.py in CI.
// --cache-dir (or VFIMR_CACHE_DIR) attaches the persistent evaluation
// store and switches the sweep to the incremental driver: points already in
// the store are merged in instead of re-run, new points are written back.
// --shard I/N (with a shared cache dir) makes this process evaluate only
// its round-robin share of the points — rows owned by absent shards print
// once those shards have run.  --store-out writes the cold/warm JSON
// consumed by tools/check_store.py in CI.
int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};
  bench::CacheDirScope cache{argc, argv};
  bool small = false;
  sysmodel::Fidelity fidelity = sysmodel::Fidelity::kCycleAccurate;
  std::string bench_out;
  std::string store_out;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  auto parse_shard = [&](const std::string& spec) {
    const std::size_t slash = spec.find('/');
    if (slash == std::string::npos) return false;
    try {
      shard_index = std::stoul(spec.substr(0, slash));
      shard_count = std::stoul(spec.substr(slash + 1));
    } catch (const std::exception&) {
      return false;
    }
    return shard_count >= 1 && shard_index < shard_count;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--small") {
      small = true;
    } else if (arg.rfind("--fidelity=", 0) == 0) {
      if (!sysmodel::parse_fidelity(arg.substr(11), fidelity)) {
        std::cerr << "unknown fidelity '" << arg.substr(11)
                  << "' (expected cycle|analytical|auto)\n";
        return 2;
      }
    } else if (arg.rfind("--bench-out=", 0) == 0) {
      bench_out = arg.substr(12);
    } else if (arg == "--bench-out" && i + 1 < argc) {
      bench_out = argv[++i];
    } else if (arg.rfind("--store-out=", 0) == 0) {
      store_out = arg.substr(12);
    } else if (arg == "--store-out" && i + 1 < argc) {
      store_out = argv[++i];
    } else if ((arg.rfind("--shard=", 0) == 0 && !parse_shard(arg.substr(8))) ||
               (arg == "--shard" &&
                (++i >= argc || !parse_shard(argv[i])))) {
      std::cerr << "bad --shard (expected I/N with I < N)\n";
      return 2;
    }
  }
  if (shard_count > 1 && cache.store() == nullptr) {
    std::cerr << "--shard needs a shared store (--cache-dir or "
                 "VFIMR_CACHE_DIR)\n";
    return 2;
  }

  const sysmodel::FullSystemSim sim;
  TextTable t{{"App", "VFI Mesh EDP", "VFI WiNoC EDP", "WiNoC exec time",
               "Core E (norm)", "Net E (norm)", "WiNoC lat LibInit",
               "WiNoC lat Map", "WiNoC lat Reduce", "WiNoC lat Merge"}};

  std::vector<workload::AppProfile> profiles;
  sysmodel::NetworkEvaluator net_eval;
  sysmodel::PlatformParams params;
  params.telemetry = telemetry.sink();
  params.net_eval = &net_eval;
  params.fidelity = fidelity;
  if (fidelity != sysmodel::Fidelity::kCycleAccurate) {
    std::cout << "[network evaluations in the '"
              << sysmodel::fidelity_name(fidelity)
              << "' band — paper comparisons need the default cycle band]\n";
  }
  if (small) {
    for (workload::App app : {workload::App::kHist, workload::App::kKmeans}) {
      profiles.push_back(workload::make_profile(app));
    }
    params.sim_cycles = 6'000;
    params.drain_cycles = 30'000;
  } else {
    for (workload::App app : workload::kAllApps) {
      profiles.push_back(workload::make_profile(app));
    }
  }
  // With a store attached the sweep goes through the incremental driver:
  // stored points (from a prior run or another shard) are merged in, only
  // changed/new points are evaluated, and both the point results and the
  // underlying evaluator records are persisted for the next run.
  sysmodel::PlatformCache platforms;
  sysmodel::IncrementalSweepResult inc;
  std::vector<sysmodel::SystemComparison> comparisons;
  std::vector<std::uint8_t> valid(profiles.size(), 1);
  const auto t0 = std::chrono::steady_clock::now();
  if (cache.store() != nullptr) {
    net_eval.attach_store(cache.store());
    platforms.attach_store(cache.store());
    params.platform_cache = &platforms;
    sysmodel::IncrementalOptions opts;
    opts.store = cache.store();
    opts.sweep_name = std::string{"fig8"} + (small ? "-small" : "") + "-" +
                      sysmodel::fidelity_name(fidelity);
    opts.shard_index = shard_index;
    opts.shard_count = shard_count;
    inc = sysmodel::incremental_sweep_comparisons(profiles, sim, params,
                                                  opts);
    comparisons = std::move(inc.comparisons);
    valid = inc.valid;
    std::cout << "incremental sweep '" << opts.sweep_name << "': "
              << inc.reused_points << " reused, " << inc.evaluated_points
              << " evaluated, " << inc.skipped_points
              << " owned by other shards\n";
  } else {
    comparisons = sysmodel::sweep_comparisons(profiles, sim, params);
  }
  const double phase_ms = ms_since(t0);

  std::vector<double> savings;
  double max_saving = 0.0;
  double max_penalty = 0.0;
  std::string max_app;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    if (valid[i] == 0) continue;  // owned by a shard that has not run yet
    const auto& profile = profiles[i];
    const auto& cmp = comparisons[i];
    const double base_edp = cmp.nvfi_mesh.edp_js();

    const double winoc_edp = cmp.vfi_winoc.edp_js() / base_edp;
    const double saving = 1.0 - winoc_edp;
    savings.push_back(saving);
    if (saving > max_saving) {
      max_saving = saving;
      max_app = profile.name();
    }
    max_penalty = std::max(
        max_penalty, cmp.vfi_winoc.exec_s / cmp.nvfi_mesh.exec_s - 1.0);

    auto winoc_lat = [&](workload::Phase p) {
      return fmt(cmp.vfi_winoc.phase_result(p).net.avg_latency_cycles);
    };
    t.add_row({profile.name(), fmt(cmp.vfi_mesh.edp_js() / base_edp),
               fmt(winoc_edp), fmt(cmp.vfi_winoc.exec_s / cmp.nvfi_mesh.exec_s),
               fmt(cmp.vfi_winoc.core_energy_j / cmp.nvfi_mesh.core_energy_j),
               fmt((cmp.vfi_winoc.net_dynamic_j + cmp.vfi_winoc.net_static_j) /
                   (cmp.nvfi_mesh.net_dynamic_j + cmp.nvfi_mesh.net_static_j)),
               winoc_lat(workload::Phase::kLibInit),
               winoc_lat(workload::Phase::kMap),
               winoc_lat(workload::Phase::kReduce),
               winoc_lat(workload::Phase::kMerge)});
  }
  bench::emit(t, "fig8_full_system_edp",
              "Fig. 8: full-system EDP vs NVFI mesh");
  if (!savings.empty()) {
    std::cout << "Average VFI-WiNoC EDP saving: " << fmt_pct(mean(savings))
              << "  (paper: 33.7%)\n"
              << "Maximum saving: " << fmt_pct(max_saving) << " for "
              << max_app << "  (paper: 66.2% for KMEANS)\n"
              << "Maximum execution-time penalty: " << fmt_pct(max_penalty)
              << "  (paper: 3.22%)\n";
  }
  const auto stats = net_eval.stats();
  std::cout << "NetworkEvaluator: " << stats.misses << " simulated, "
            << stats.hits << " cache hits (hit rate "
            << fmt_pct(stats.hit_rate()) << ")";
  if (cache.store() != nullptr) {
    std::cout << ", " << stats.disk_hits << " disk hits / "
              << stats.disk_misses << " disk misses";
  }
  std::cout << "\n";

  if (!store_out.empty()) {
    json::MetricMap m;
    m["fig8.wall_s"] = phase_ms / 1000.0;
    m["fig8.config.small"] = small ? 1.0 : 0.0;
    m["fig8.config.apps"] = static_cast<double>(profiles.size());
    m["fig8.config.shard_index"] = static_cast<double>(shard_index);
    m["fig8.config.shard_count"] = static_cast<double>(shard_count);
    m["fig8.valid_points"] = static_cast<double>(savings.size());
    m["fig8.incremental.reused"] = static_cast<double>(inc.reused_points);
    m["fig8.incremental.evaluated"] =
        static_cast<double>(inc.evaluated_points);
    m["fig8.incremental.skipped"] = static_cast<double>(inc.skipped_points);
    m["fig8.incremental.manifest_prior_matches"] =
        static_cast<double>(inc.manifest_prior_matches);
    m["fig8.net_eval.hits"] = static_cast<double>(stats.hits);
    m["fig8.net_eval.misses"] = static_cast<double>(stats.misses);
    m["fig8.net_eval.disk_hits"] = static_cast<double>(stats.disk_hits);
    m["fig8.net_eval.disk_misses"] = static_cast<double>(stats.disk_misses);
    if (cache.store() != nullptr) {
      const store::StoreStats ss = cache.store()->stats();
      m["fig8.store.hits"] = static_cast<double>(ss.hits);
      m["fig8.store.misses"] = static_cast<double>(ss.misses);
      m["fig8.store.bytes_read"] = static_cast<double>(ss.bytes_read);
      m["fig8.store.bytes_written"] = static_cast<double>(ss.bytes_written);
      m["fig8.store.records_scanned"] =
          static_cast<double>(ss.records_scanned);
      m["fig8.store.corrupt_records"] =
          static_cast<double>(ss.corrupt_records);
      m["fig8.store.stale_records"] = static_cast<double>(ss.stale_records);
      m["fig8.platform_cache.disk_hits"] =
          static_cast<double>(platforms.disk_hits());
      m["fig8.platform_cache.disk_misses"] =
          static_cast<double>(platforms.disk_misses());
    }
    json::save_file(store_out, m);
    std::cout << "wrote store stats to " << store_out << "\n";
  }

  if (!bench_out.empty()) {
    // Reference sweep: the same applications with the per-phase matrices
    // stripped, evaluated fresh — this is the single whole-run-evaluation
    // pipeline the repo ran before phase resolution, so phase_ms/legacy_ms
    // is the real cost multiplier of the feature (budgeted at 2x in CI).
    std::vector<workload::AppProfile> legacy = profiles;
    for (auto& p : legacy) {
      p.phase_traffic = {};
      p.phase_weight = {};
    }
    sysmodel::PlatformParams legacy_params = params;
    legacy_params.net_eval = nullptr;
    legacy_params.platform_cache = nullptr;
    legacy_params.telemetry = nullptr;  // time the untraced fast path
    const auto t1 = std::chrono::steady_clock::now();
    const auto legacy_cmp =
        sysmodel::sweep_comparisons(legacy, sim, legacy_params);
    const double legacy_ms = ms_since(t1);

    std::vector<double> legacy_savings;
    for (const auto& cmp : legacy_cmp) {
      legacy_savings.push_back(1.0 -
                               cmp.vfi_winoc.edp_js() / cmp.nvfi_mesh.edp_js());
    }

    json::MetricMap m;
    m["fig8.config.small"] = small ? 1.0 : 0.0;
    m["fig8.config.apps"] = static_cast<double>(profiles.size());
    m["fig8.phase_resolved_ms"] = phase_ms;
    m["fig8.legacy_ms"] = legacy_ms;
    m["fig8.runtime_ratio"] = legacy_ms > 0.0 ? phase_ms / legacy_ms : 0.0;
    m["fig8.avg_saving"] = mean(savings);
    m["fig8.legacy_avg_saving"] = mean(legacy_savings);
    m["net_eval.cache_hits"] = static_cast<double>(stats.hits);
    m["net_eval.cache_misses"] = static_cast<double>(stats.misses);
    m["net_eval.hit_rate"] = stats.hit_rate();
    json::save_file(bench_out, m);
    std::cout << "phase-resolved sweep " << fmt(phase_ms) << " ms vs legacy "
              << fmt(legacy_ms) << " ms (ratio "
              << fmt(legacy_ms > 0.0 ? phase_ms / legacy_ms : 0.0)
              << "); wrote " << bench_out << "\n";
  }
  return 0;
}
