// Fig. 8 — full-system energy-delay product of VFI Mesh and VFI WiNoC
// relative to the NVFI mesh, for all six applications.
//
// Headline numbers to compare against the paper: average WiNoC EDP saving
// 33.7%, maximum 66.2% (Kmeans); execution-time penalty of the WiNoC system
// at most 3.22% (checked in the exec column).

#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "sysmodel/sweep.hpp"

using namespace vfimr;

// Usage: bench_fig8_full_system_edp [--small] [--trace-out FILE]
//                                   [--metrics-out FILE]
// --small shrinks the app set and simulated cycle window for CI smoke runs
// (numbers drift from the paper's; the telemetry plumbing is identical).
int main(int argc, char** argv) {
  bench::TelemetryScope telemetry{argc, argv};
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string{argv[i]} == "--small") small = true;
  }

  const sysmodel::FullSystemSim sim;
  TextTable t{{"App", "VFI Mesh EDP", "VFI WiNoC EDP", "WiNoC exec time",
               "Core E (norm)", "Net E (norm)"}};

  std::vector<workload::AppProfile> profiles;
  sysmodel::PlatformParams params;
  params.telemetry = telemetry.sink();
  if (small) {
    for (workload::App app : {workload::App::kHist, workload::App::kKmeans}) {
      profiles.push_back(workload::make_profile(app));
    }
    params.sim_cycles = 6'000;
    params.drain_cycles = 30'000;
  } else {
    for (workload::App app : workload::kAllApps) {
      profiles.push_back(workload::make_profile(app));
    }
  }
  const auto comparisons = sysmodel::sweep_comparisons(profiles, sim, params);

  std::vector<double> savings;
  double max_saving = 0.0;
  double max_penalty = 0.0;
  std::string max_app;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& profile = profiles[i];
    const auto& cmp = comparisons[i];
    const double base_edp = cmp.nvfi_mesh.edp_js();

    const double winoc_edp = cmp.vfi_winoc.edp_js() / base_edp;
    const double saving = 1.0 - winoc_edp;
    savings.push_back(saving);
    if (saving > max_saving) {
      max_saving = saving;
      max_app = profile.name();
    }
    max_penalty = std::max(
        max_penalty, cmp.vfi_winoc.exec_s / cmp.nvfi_mesh.exec_s - 1.0);

    t.add_row({profile.name(), fmt(cmp.vfi_mesh.edp_js() / base_edp),
               fmt(winoc_edp), fmt(cmp.vfi_winoc.exec_s / cmp.nvfi_mesh.exec_s),
               fmt(cmp.vfi_winoc.core_energy_j / cmp.nvfi_mesh.core_energy_j),
               fmt((cmp.vfi_winoc.net_dynamic_j + cmp.vfi_winoc.net_static_j) /
                   (cmp.nvfi_mesh.net_dynamic_j + cmp.nvfi_mesh.net_static_j))});
  }
  bench::emit(t, "fig8_full_system_edp",
              "Fig. 8: full-system EDP vs NVFI mesh");
  std::cout << "Average VFI-WiNoC EDP saving: " << fmt_pct(mean(savings))
            << "  (paper: 33.7%)\n"
            << "Maximum saving: " << fmt_pct(max_saving) << " for " << max_app
            << "  (paper: 66.2% for KMEANS)\n"
            << "Maximum execution-time penalty: " << fmt_pct(max_penalty)
            << "  (paper: 3.22%)\n";
  return 0;
}
