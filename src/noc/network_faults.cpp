#include "noc/network.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "telemetry/telemetry.hpp"

// Fault injection & graceful degradation (DESIGN.md §9): timeline expansion,
// down/up transition application, casualty collection and packet purge,
// degraded-route rebuilds and the unroutable-head backoff pre-pass.  Split
// out of network.cpp so the wormhole core stays navigable; behavior is
// bit-identical to the pre-split monolith.

namespace vfimr::noc {

void Network::build_fault_timeline() {
  const auto& g = topo_->graph;
  for (const auto& ev : cfg_.faults.events()) {
    switch (ev.kind) {
      case faults::NocFaultKind::kLink:
        VFIMR_REQUIRE_MSG(ev.id < g.edge_count(),
                          "link fault id out of range");
        break;
      case faults::NocFaultKind::kRouter:
        VFIMR_REQUIRE_MSG(ev.id < g.node_count(),
                          "router fault id out of range");
        break;
      case faults::NocFaultKind::kWi:
        VFIMR_REQUIRE_MSG(
            ev.id < g.node_count() && routers_[ev.id].wireless_tx >= 0,
            "WI fault on a node without a wireless interface");
        break;
    }
    fault_timeline_.push_back(FaultEvent{ev.at_cycle, ev.kind, ev.id, true});
    if (ev.transient()) {
      VFIMR_REQUIRE_MSG(ev.until_cycle > ev.at_cycle,
                        "transient fault repairs before it strikes");
      fault_timeline_.push_back(
          FaultEvent{ev.until_cycle, ev.kind, ev.id, false});
    }
  }
  // Stable sort: same-cycle transitions apply in schedule order.
  std::stable_sort(
      fault_timeline_.begin(), fault_timeline_.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.cycle < b.cycle; });
}

void Network::apply_fault_events() {
  bool changed = false;
  while (next_fault_event_ < fault_timeline_.size() &&
         fault_timeline_[next_fault_event_].cycle <= metrics_.cycles) {
    const FaultEvent& ev = fault_timeline_[next_fault_event_++];
    std::uint32_t& down =
        ev.kind == faults::NocFaultKind::kLink     ? edge_down_[ev.id]
        : ev.kind == faults::NocFaultKind::kRouter ? router_down_[ev.id]
                                                   : wi_down_[ev.id];
    if (ev.down) {
      ++down;
    } else {
      VFIMR_REQUIRE(down > 0);
      --down;
    }
    ++metrics_.fault_events;
    changed = true;
    if (tele_ != nullptr) {
      tele_fault_events_->add();
      tele_->tracer().instant(
          tele_faults_track_,
          std::string{faults::kind_name(ev.kind)} + (ev.down ? " down" : " up"),
          static_cast<double>(metrics_.cycles),
          {{"id", static_cast<double>(ev.id)}});
    }
  }
  if (changed) recompute_fault_state();
}

void Network::recompute_fault_state() {
  const auto& g = topo_->graph;
  std::vector<PacketId> poisoned;
  bool any_down = false;
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& ed = g.edge(e);
    bool usable = edge_down_[e] == 0 && router_down_[ed.a] == 0 &&
                  router_down_[ed.b] == 0;
    if (usable && ed.kind == graph::EdgeKind::kWireless) {
      usable = wi_down_[ed.a] == 0 && wi_down_[ed.b] == 0;
    }
    if (!usable) {
      any_down = true;
      if (edge_usable_[e]) collect_edge_casualties(e, poisoned);
    }
    edge_usable_[e] = usable;
  }
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    if (router_down_[n] > 0) {
      any_down = true;
      collect_router_casualties(n, poisoned);
    } else if (wi_down_[n] > 0) {
      any_down = true;
      collect_wi_casualties(n, poisoned);
    }
  }
  purge_packets(poisoned);
  reset_route_state();
  if (any_down || degraded_routing_active_) {
    // Rebuild hole-tolerant tables over the surviving edges.  Once any
    // fault has fired these stay active even after every element repairs:
    // in-flight heads may carry down-phase bits from an older tree that the
    // original (hole-intolerant) tables would refuse to route.
    UpDownOptions opts;
    opts.wireless_cost = cfg_.fault_reroute_wireless_cost;
    opts.edge_alive = &edge_usable_;
    opts.allow_unreachable = true;
    degraded_routing_ = std::make_unique<UpDownRouting>(g, opts);
    active_routing_ = degraded_routing_.get();
    degraded_routing_active_ = true;
    ++metrics_.route_rebuilds;
  }
}

bool Network::owner_streamed(RouterState& r, const OwnerState& owner,
                             std::size_t vn) {
  if (owner.owner_input == -1) return false;
  auto* q = input_queue(r, owner.owner_input, vn);
  // If the granted packet's head is still at the front, nothing moved yet.
  return q == nullptr || q->empty() ||
         q->front().packet != owner.owner_packet || !q->front().is_head();
}

void Network::collect_edge_casualties(graph::EdgeId e,
                                      std::vector<PacketId>& out) {
  const auto& ed = topo_->graph.edge(e);
  if (ed.kind == graph::EdgeKind::kWire) {
    // A packet mid-stream over a dead wire link is cut in two and lost.
    // Grants that have not streamed a flit yet are spared: reset_route_state
    // releases them and the packet re-arbitrates around the dead link.
    for (const graph::NodeId n : {ed.a, ed.b}) {
      auto& r = routers_[n];
      for (auto& op : r.out) {
        if (op.kind != OutKind::kWire || op.edge != e) continue;
        for (std::size_t vn = 0; vn < kVns; ++vn) {
          if (owner_streamed(r, op.vn[vn], vn)) {
            out.push_back(op.vn[vn].owner_packet);
          }
        }
      }
    }
    return;
  }
  // Wireless edge: flits committed to the dead hop (queued at either TX with
  // the far end as wi_dest) and packets mid-transmission are lost.
  const graph::NodeId ends[2] = {ed.a, ed.b};
  for (int i = 0; i < 2; ++i) {
    auto& r = routers_[ends[i]];
    const graph::NodeId far = ends[1 - i];
    for (const Flit& f : r.tx_queue) {
      if (f.wi_dest == far) out.push_back(f.packet);
    }
    if (r.wireless_tx >= 0) {
      auto& op = r.out[static_cast<std::size_t>(r.wireless_tx)];
      for (std::size_t vn = 0; vn < kVns; ++vn) {
        if (op.vn[vn].wi_dest == far && owner_streamed(r, op.vn[vn], vn)) {
          out.push_back(op.vn[vn].owner_packet);
        }
      }
    }
  }
}

void Network::collect_router_casualties(graph::NodeId n,
                                        std::vector<PacketId>& out) {
  // A dead router loses everything it holds.  Re-collection while it stays
  // down is a no-op: routes avoid it, injection at it is refused, and its
  // queues were emptied when it first went down.
  auto& r = routers_[n];
  for (const Flit& f : r.source_queue) out.push_back(f.packet);
  for (const Flit& f : r.tx_queue) out.push_back(f.packet);
  for (auto& in : r.in) {
    for (std::size_t vn = 0; vn < kVns; ++vn) {
      for (const Flit& f : in.buf[vn]) out.push_back(f.packet);
    }
  }
  for (auto& op : r.out) {
    for (std::size_t vn = 0; vn < kVns; ++vn) {
      if (op.vn[vn].owner_input != -1) out.push_back(op.vn[vn].owner_packet);
    }
  }
}

void Network::collect_wi_casualties(graph::NodeId n,
                                    std::vector<PacketId>& out) {
  // Only the wireless interface died; the router keeps switching wire
  // traffic.  Flits already queued for (or mid-way through) a wireless
  // transmission are lost; everything else reroutes over the wire mesh.
  auto& r = routers_[n];
  for (const Flit& f : r.tx_queue) out.push_back(f.packet);
  if (r.wireless_tx >= 0) {
    auto& op = r.out[static_cast<std::size_t>(r.wireless_tx)];
    for (std::size_t vn = 0; vn < kVns; ++vn) {
      if (owner_streamed(r, op.vn[vn], vn)) {
        out.push_back(op.vn[vn].owner_packet);
      }
    }
  }
}

void Network::purge_packets(std::vector<PacketId>& ids) {
  if (ids.empty()) return;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  const auto hit = [&](PacketId p) {
    return std::binary_search(ids.begin(), ids.end(), p);
  };
  std::uint64_t removed_total = 0;
  for (graph::NodeId n = 0; n < routers_.size(); ++n) {
    auto& r = routers_[n];
    std::uint64_t removed = 0;
    std::uint32_t ejectable_removed = 0;
    const auto sweep = [&](std::deque<Flit>& q, bool counts_ejectable) {
      for (auto it = q.begin(); it != q.end();) {
        if (hit(it->packet)) {
          ++removed;
          if (counts_ejectable && it->dest == n) ++ejectable_removed;
          it = q.erase(it);
        } else {
          ++it;
        }
      }
    };
    sweep(r.source_queue, false);
    sweep(r.tx_queue, false);
    for (auto& in : r.in) {
      for (std::size_t vn = 0; vn < kVns; ++vn) sweep(in.buf[vn], true);
    }
    for (auto& op : r.out) {
      for (std::size_t vn = 0; vn < kVns; ++vn) {
        auto& owner = op.vn[vn];
        if (owner.owner_input != -1 && hit(owner.owner_packet)) {
          owner.owner_input = -1;
          owner.remaining = 0;
          owner.wi_dest = graph::kInvalidId;
        }
      }
    }
    if (removed > 0) {
      VFIMR_REQUIRE(resident_flits_[n] >= removed);
      resident_flits_[n] -= removed;
      removed_total += removed;
    }
    if (ejectable_removed > 0) {
      VFIMR_REQUIRE(ejectable_flits_[n] >= ejectable_removed);
      ejectable_flits_[n] -= ejectable_removed;
    }
  }
  for (auto& ch : channels_) {
    if (ch.mid_packet && hit(ch.mid_packet_id)) ch.mid_packet = false;
  }
  VFIMR_REQUIRE(in_flight_flits_ >= removed_total);
  in_flight_flits_ -= removed_total;
  metrics_.flits_lost += removed_total;
  metrics_.packets_lost += ids.size();
  if (tele_ != nullptr) {
    tele_lost_->add(ids.size());
    tele_->tracer().instant(tele_faults_track_, "purge",
                            static_cast<double>(metrics_.cycles),
                            {{"packets", static_cast<double>(ids.size())},
                             {"flits", static_cast<double>(removed_total)}});
  }
}

void Network::reset_route_state() {
  ++route_epoch_;  // invalidates every fast-path route memo at once
  for (auto& r : routers_) {
    // Queued heads restart their up*/down* phase: under the new tree the
    // old phase bit is meaningless, and a fresh up-phase route always
    // exists when the destination is reachable at all.
    const auto restart = [](std::deque<Flit>& q) {
      for (auto& f : q) {
        if (f.is_head()) f.down_phase = false;
      }
    };
    restart(r.source_queue);
    restart(r.tx_queue);
    for (auto& in : r.in) {
      for (std::size_t vn = 0; vn < kVns; ++vn) restart(in.buf[vn]);
    }
    for (auto& op : r.out) {
      for (std::size_t vn = 0; vn < kVns; ++vn) {
        auto& owner = op.vn[vn];
        if (owner.owner_input != -1 && !owner_streamed(r, owner, vn)) {
          // Granted but nothing moved: release so the head re-arbitrates
          // under the new tables instead of following a stale decision.
          owner.owner_input = -1;
          owner.remaining = 0;
          owner.wi_dest = graph::kInvalidId;
        }
      }
    }
  }
}

void Network::handle_unreachable(Flit& f) {
  const Cycle now = metrics_.cycles;
  ++metrics_.retry_backoffs;
  if (tele_ != nullptr) tele_backoffs_->add();
  if (f.retries >= cfg_.fault_max_retries) {
    // Retry budget exhausted: declare the packet lost.  ready_cycle = now+1
    // keeps the drain loop stepping so next step()'s purge collects it.
    pending_lost_.push_back(f.packet);
    f.ready_cycle = now + 1;
    return;
  }
  const std::uint32_t shift = std::min<std::uint32_t>(f.retries, 10);
  f.ready_cycle =
      now + (static_cast<Cycle>(cfg_.fault_backoff_base_cycles) << shift);
  ++f.retries;
}

void Network::backoff_unroutable_heads() {
  // Visits every router in id order regardless of stepping mode, so the
  // reference and fast paths observe identical backoff decisions.
  const Cycle now = metrics_.cycles;
  for (graph::NodeId n = 0; n < routers_.size(); ++n) {
    if (resident_flits_[n] == 0) continue;
    auto& r = routers_[n];
    const auto probe = [&](std::deque<Flit>& q) {
      if (q.empty()) return;
      Flit& f = q.front();
      if (!f.is_head() || f.ready_cycle > now || f.dest == n) return;
      const RouteDecision dec =
          active_routing_->next_hop(n, f.dest, f.down_phase, f.vn == 1);
      if (dec.edge == graph::kInvalidId) handle_unreachable(f);
    };
    // Wireless TX queues are excluded: their hop is already reserved and a
    // dead channel purges them outright.
    probe(r.source_queue);
    for (auto& in : r.in) {
      for (std::size_t vn = 0; vn < kVns; ++vn) probe(in.buf[vn]);
    }
  }
}

}  // namespace vfimr::noc
