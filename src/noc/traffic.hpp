#pragma once
// Traffic generators for the NoC simulator.
//
// The full-system model drives the network with per-application traffic
// matrices (packets/cycle for every source-destination pair) extracted from
// the MapReduce workload models; synthetic uniform traffic is used by unit
// tests and microbenchmarks.

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "noc/network.hpp"

namespace vfimr::noc {

/// Injects packets according to a rate matrix: rates(s, d) is the expected
/// number of packets per cycle from s to d.  Arrivals are Poisson; the
/// aggregate process is sampled once per cycle and attributed to pairs
/// proportionally to their rates, which is exact for independent Poisson
/// streams.
class MatrixTraffic final : public TrafficGenerator {
 public:
  MatrixTraffic(const Matrix& rates, std::uint32_t packet_flits,
                std::uint64_t seed);

  void tick(Cycle now, std::vector<Injection>& out) override;

  double total_rate() const { return total_rate_; }

 private:
  struct Entry {
    graph::NodeId src;
    graph::NodeId dest;
    double cumulative;  ///< running sum of rates, for binary search
  };
  std::vector<Entry> entries_;
  double total_rate_ = 0.0;
  std::uint32_t packet_flits_;
  Rng rng_;
};

/// Every node injects with probability `rate` per cycle to a uniformly random
/// other node.
class UniformRandomTraffic final : public TrafficGenerator {
 public:
  UniformRandomTraffic(std::size_t nodes, double rate,
                       std::uint32_t packet_flits, std::uint64_t seed);

  void tick(Cycle now, std::vector<Injection>& out) override;

 private:
  std::size_t nodes_;
  double rate_;
  std::uint32_t packet_flits_;
  Rng rng_;
};

/// Classic synthetic permutation patterns for saturation studies.
enum class Pattern {
  kTranspose,      ///< (x,y) -> (y,x) on a square mesh
  kBitComplement,  ///< node i -> ~i (within the node-count mask)
  kBitReverse,     ///< node i -> bit-reversed i
};

/// Every node injects with probability `rate` per cycle to its pattern
/// partner (nodes whose partner is themselves stay silent).
class PermutationTraffic final : public TrafficGenerator {
 public:
  /// `nodes` must be a power of two; transpose also needs a square layout.
  PermutationTraffic(std::size_t nodes, Pattern pattern, double rate,
                     std::uint32_t packet_flits, std::uint64_t seed);

  void tick(Cycle now, std::vector<Injection>& out) override;

  graph::NodeId partner(graph::NodeId src) const;

 private:
  std::size_t nodes_;
  Pattern pattern_;
  double rate_;
  std::uint32_t packet_flits_;
  Rng rng_;
  unsigned bits_ = 0;
};

/// A fraction of every node's traffic targets one hotspot node; the rest is
/// uniform random.
class HotspotTraffic final : public TrafficGenerator {
 public:
  HotspotTraffic(std::size_t nodes, graph::NodeId hotspot,
                 double hotspot_fraction, double rate,
                 std::uint32_t packet_flits, std::uint64_t seed);

  void tick(Cycle now, std::vector<Injection>& out) override;

 private:
  std::size_t nodes_;
  graph::NodeId hotspot_;
  double hotspot_fraction_;
  double rate_;
  std::uint32_t packet_flits_;
  Rng rng_;
};

/// Replays an explicit schedule of injections (must be sorted by cycle).
class TraceTraffic final : public TrafficGenerator {
 public:
  struct Event {
    Cycle cycle;
    Injection injection;
  };

  explicit TraceTraffic(std::vector<Event> events);

  void tick(Cycle now, std::vector<Injection>& out) override;

  bool exhausted() const { return next_ >= events_.size(); }

 private:
  std::vector<Event> events_;
  std::size_t next_ = 0;
};

/// Sample from Poisson(mean) — Knuth's method for small means, normal
/// approximation above 64.  Exposed for tests.
std::uint64_t sample_poisson(Rng& rng, double mean);

}  // namespace vfimr::noc
