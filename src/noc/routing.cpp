#include "noc/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/require.hpp"
#include "noc/topology.hpp"

namespace vfimr::noc {

XyRouting::XyRouting(const graph::Graph& mesh, std::size_t width,
                     std::size_t height)
    : width_{width}, height_{height}, edge_to_(mesh.node_count()) {
  VFIMR_REQUIRE(mesh.node_count() == width * height);
  for (graph::NodeId n = 0; n < mesh.node_count(); ++n) {
    edge_to_[n] = {graph::kInvalidId, graph::kInvalidId, graph::kInvalidId,
                   graph::kInvalidId};
    const auto x = mesh_x(n, width_);
    const auto y = mesh_y(n, width_);
    for (graph::EdgeId e : mesh.incident(n)) {
      const graph::NodeId m = mesh.other_end(e, n);
      const auto mx = mesh_x(m, width_);
      const auto my = mesh_y(m, width_);
      if (my == y && mx == x + 1) {
        edge_to_[n][0] = e;
      } else if (my == y && mx + 1 == x) {
        edge_to_[n][1] = e;
      } else if (mx == x && my == y + 1) {
        edge_to_[n][2] = e;
      } else if (mx == x && my + 1 == y) {
        edge_to_[n][3] = e;
      } else {
        VFIMR_REQUIRE_MSG(false, "XyRouting requires a pure mesh graph");
      }
    }
  }
}

RouteDecision XyRouting::next_hop(graph::NodeId node, graph::NodeId dest,
                                  bool /*down_phase*/,
                                  bool /*wireless_used*/) const {
  VFIMR_REQUIRE(node < edge_to_.size() && dest < edge_to_.size());
  VFIMR_REQUIRE(node != dest);
  const auto x = mesh_x(node, width_);
  const auto y = mesh_y(node, width_);
  const auto dx = mesh_x(dest, width_);
  const auto dy = mesh_y(dest, width_);
  graph::EdgeId e = graph::kInvalidId;
  if (dx > x) {
    e = edge_to_[node][0];
  } else if (dx < x) {
    e = edge_to_[node][1];
  } else if (dy > y) {
    e = edge_to_[node][2];
  } else {
    e = edge_to_[node][3];
  }
  VFIMR_REQUIRE(e != graph::kInvalidId);
  return RouteDecision{e, false};
}

namespace {

/// Lexicographic (level, id) order used to orient edges.
struct UpDownOrder {
  const std::vector<std::uint32_t>& level;
  bool less(graph::NodeId a, graph::NodeId b) const {
    if (level[a] != level[b]) return level[a] < level[b];
    return a < b;
  }
};

constexpr double kInfW = std::numeric_limits<double>::max();
constexpr double kEps = 1e-9;

}  // namespace

UpDownRouting::UpDownRouting(const graph::Graph& g, double wireless_cost,
                             graph::NodeId root)
    : UpDownRouting{g, UpDownOptions{wireless_cost, root, nullptr, false}} {}

UpDownRouting::UpDownRouting(const graph::Graph& g, const UpDownOptions& opts)
    : n_{g.node_count()},
      allow_unreachable_{opts.allow_unreachable},
      graph_{&g} {
  const double wireless_cost = opts.wireless_cost;
  VFIMR_REQUIRE(n_ > 0);
  VFIMR_REQUIRE(wireless_cost >= 1.0);
  if (opts.edge_alive != nullptr) {
    VFIMR_REQUIRE_MSG(opts.edge_alive->size() == g.edge_count(),
                      "edge liveness mask must cover every edge");
  }
  auto alive = [&](graph::EdgeId e) {
    return opts.edge_alive == nullptr || (*opts.edge_alive)[e];
  };

  // The up*/down* order comes from the *wired* subgraph: wire-only routes
  // (the budget-0 layer) must reach every destination, which the classic
  // up/down construction guarantees when the order's BFS tree lives in the
  // same graph those routes use.  Wireless edges inherit the orientation.
  // Dead edges (fault masks) are excluded everywhere.
  graph::Graph wired{n_};
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& ed = g.edge(e);
    if (ed.kind == graph::EdgeKind::kWire && alive(e)) {
      wired.add_edge(ed.a, ed.b, ed.kind, ed.length_mm);
    }
  }
  if (!allow_unreachable_) {
    VFIMR_REQUIRE_MSG(graph::is_connected(wired),
                      "up*/down* routing needs a connected wired topology");
  }
  root_ = opts.root == graph::kInvalidId ? graph::max_degree_node(wired)
                                         : opts.root;
  VFIMR_REQUIRE(root_ < n_);

  const auto level = graph::bfs_hops(wired, root_);
  const UpDownOrder order{level};

  auto edge_cost = [&](graph::EdgeId e) {
    return g.edge(e).kind == graph::EdgeKind::kWireless ? wireless_cost : 1.0;
  };

  // Flat adjacency snapshot of the *live* subgraph: the table build below
  // touches every incident edge of every node once per destination, and the
  // graph's bounds-checked accessors dominate that cost.  Dead edges are
  // filtered here so the passes never re-test liveness.  `down` records
  // order.less(self, nbr), i.e. whether the move self -> nbr is a down move.
  struct Adj {
    graph::NodeId nbr;
    graph::EdgeId edge;
    double cost;
    bool wireless;
    bool down;
  };
  std::vector<std::size_t> adj_start(n_ + 1, 0);
  std::vector<Adj> adj;
  adj.reserve(2 * g.edge_count());
  for (graph::NodeId v = 0; v < n_; ++v) {
    for (graph::EdgeId e : g.incident(v)) {
      if (!alive(e)) continue;
      const auto& ed = g.edge(e);
      const graph::NodeId w = ed.a == v ? ed.b : ed.a;
      adj.push_back(Adj{w, e, edge_cost(e),
                        ed.kind == graph::EdgeKind::kWireless,
                        order.less(v, w)});
    }
    adj_start[v + 1] = adj.size();
  }

  for (auto& per_budget : layers_) {
    for (auto& layer : per_budget) {
      layer.table.assign(n_ * n_, RouteDecision{});
      layer.next.assign(n_ * n_, graph::kInvalidId);
    }
  }

  // Nodes in ascending (level, id) order: the up-move DAG points from larger
  // to smaller keys, so processing ascending gives a valid DP order.
  std::vector<graph::NodeId> asc(n_);
  for (graph::NodeId v = 0; v < n_; ++v) asc[v] = v;
  std::sort(asc.begin(), asc.end(),
            [&](graph::NodeId a, graph::NodeId b) { return order.less(a, b); });

  // Per-destination cost arrays; index 0 = wire-only, 1 = one wireless hop
  // still available.
  std::vector<double> du[2] = {std::vector<double>(n_),
                               std::vector<double>(n_)};
  std::vector<double> dup[2] = {std::vector<double>(n_),
                                std::vector<double>(n_)};

  using Item = std::pair<double, graph::NodeId>;
  // Scratch buffers hoisted out of the destination loop: the ctor runs once
  // per fault slice on the hot degraded-rebuild path, and per-destination
  // reallocation of the queue and the candidate lists dominates its cost.
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  std::vector<std::pair<RouteDecision, graph::NodeId>> down_opts;
  std::vector<std::pair<RouteDecision, graph::NodeId>> up_opts;

  for (graph::NodeId dest = 0; dest < n_; ++dest) {
    // ---- Pass 1a: wire-only all-down costs (reverse Dijkstra).  A move
    // v->u is "down" iff u is the lower-priority end (order.less(v, u)).
    std::fill(du[0].begin(), du[0].end(), kInfW);
    du[0][dest] = 0.0;
    {
      pq.emplace(0.0, dest);
      while (!pq.empty()) {
        const auto [dcur, u] = pq.top();
        pq.pop();
        if (dcur > du[0][u] + kEps) continue;
        for (std::size_t k = adj_start[u]; k < adj_start[u + 1]; ++k) {
          const Adj& a = adj[k];
          if (a.wireless) continue;
          // Need v -> u to be a down move, i.e. order.less(v, u).
          if (a.down) continue;
          const double nd = du[0][u] + a.cost;
          if (nd + kEps < du[0][a.nbr]) {
            du[0][a.nbr] = nd;
            pq.emplace(nd, a.nbr);
          }
        }
      }
    }

    // ---- Pass 1b: budget-1 all-down costs.  Wireless down-edges bridge to
    // the budget-0 costs; wire edges relax within budget 1.
    std::fill(du[1].begin(), du[1].end(), kInfW);
    {
      du[1][dest] = 0.0;
      pq.emplace(0.0, dest);
      for (graph::EdgeId we = 0; we < g.edge_count(); ++we) {
        const auto& ed = g.edge(we);
        if (ed.kind != graph::EdgeKind::kWireless || !alive(we)) continue;
        // Taking the wireless edge v -> u (down) consumes the budget, so the
        // remainder is wire-only: candidate du1[v] = cw + du0[u].
        for (const auto& [v, u] :
             {std::pair{ed.a, ed.b}, std::pair{ed.b, ed.a}}) {
          if (!order.less(v, u)) continue;
          if (du[0][u] == kInfW) continue;
          const double nd = du[0][u] + wireless_cost;
          if (nd + kEps < du[1][v]) {
            du[1][v] = nd;
            pq.emplace(nd, v);
          }
        }
      }
      while (!pq.empty()) {
        const auto [dcur, u] = pq.top();
        pq.pop();
        if (dcur > du[1][u] + kEps) continue;
        for (std::size_t k = adj_start[u]; k < adj_start[u + 1]; ++k) {
          const Adj& a = adj[k];
          if (a.wireless || a.down) continue;
          const double nd = du[1][u] + a.cost;
          if (nd + kEps < du[1][a.nbr]) {
            du[1][a.nbr] = nd;
            pq.emplace(nd, a.nbr);
          }
        }
      }
    }

    // ---- Pass 2: legal costs, DP over the (acyclic) up-move DAG.
    for (int b = 0; b < 2; ++b) {
      for (graph::NodeId v : asc) {
        dup[b][v] = du[b][v];
        for (std::size_t k = adj_start[v]; k < adj_start[v + 1]; ++k) {
          const Adj& a = adj[k];
          // Need v -> w to be an up move, i.e. order.less(w, v).
          if (a.down) continue;
          const graph::NodeId w = a.nbr;
          if (a.wireless) {
            if (b == 1 && dup[0][w] != kInfW) {
              dup[1][v] = std::min(dup[1][v], dup[0][w] + wireless_cost);
            }
          } else if (dup[b][w] != kInfW) {
            dup[b][v] = std::min(dup[b][v], dup[b][w] + a.cost);
          }
        }
      }
    }

    // ---- Pass 3: next-hop tables per budget.  When several next hops are
    // cost-optimal the choice is spread pseudo-randomly by (node, dest) —
    // oblivious load balancing with deterministic per-pair routes.
    for (int b = 0; b < 2; ++b) {
      for (graph::NodeId v = 0; v < n_; ++v) {
        if (v == dest) continue;
        if (dup[b][v] == kInfW) {
          // Faults cut v off from dest: leave the table hole and let
          // next_hop report it (graceful degradation) instead of aborting.
          VFIMR_REQUIRE_MSG(allow_unreachable_,
                            "up*/down* must reach all nodes");
          continue;
        }
        down_opts.clear();
        up_opts.clear();
        for (std::size_t k = adj_start[v]; k < adj_start[v + 1]; ++k) {
          const Adj& a = adj[k];
          if (a.wireless && b == 0) continue;  // budget exhausted
          const int nb = a.wireless ? 0 : b;   // budget after taking e
          const graph::NodeId w = a.nbr;
          // is_down = order.less(v, w), precomputed as a.down.
          if (a.down && du[nb][w] != kInfW &&
              du[nb][w] + a.cost <= du[b][v] + kEps) {
            down_opts.emplace_back(RouteDecision{a.edge, true}, w);
          }
          if (!a.down && dup[nb][w] != kInfW &&
              dup[nb][w] + a.cost <= dup[b][v] + kEps) {
            up_opts.emplace_back(RouteDecision{a.edge, false}, w);
          }
        }
        const std::size_t mix =
            (static_cast<std::size_t>(v) * 0x9e3779b9u) ^
            (static_cast<std::size_t>(dest) * 0x85ebca6bu) ^
            (static_cast<std::size_t>(b) * 0xc2b2ae35u);
        auto& down_layer = layers_[b][1];
        auto& up_layer = layers_[b][0];
        // Down-phase flits must have an all-down continuation.
        if (!down_opts.empty()) {
          const auto& pick = down_opts[mix % down_opts.size()];
          down_layer.table[v * n_ + dest] = pick.first;
          down_layer.next[v * n_ + dest] = pick.second;
        }
        // Up-phase flits prefer transitioning down when already optimal;
        // this ends the up phase as early as possible.
        if (du[b][v] <= dup[b][v] + kEps && !down_opts.empty()) {
          up_layer.table[v * n_ + dest] = down_layer.table[v * n_ + dest];
          up_layer.next[v * n_ + dest] = down_layer.next[v * n_ + dest];
        } else {
          VFIMR_REQUIRE(!up_opts.empty());
          const auto& pick = up_opts[mix % up_opts.size()];
          up_layer.table[v * n_ + dest] = pick.first;
          up_layer.next[v * n_ + dest] = pick.second;
        }
      }
    }
  }
}

RouteDecision UpDownRouting::next_hop(graph::NodeId node, graph::NodeId dest,
                                      bool down_phase,
                                      bool wireless_used) const {
  VFIMR_REQUIRE(node < n_ && dest < n_);
  VFIMR_REQUIRE(node != dest);
  const auto& layer = layers_[wireless_used ? 0 : 1][down_phase ? 1 : 0];
  const auto& d = layer.table[node * n_ + dest];
  // On a fault-degraded instance a hole means "dest unreachable from here":
  // the caller (network backoff/loss logic) must handle it.  On a healthy
  // instance a hole is a construction bug.
  VFIMR_REQUIRE_MSG(allow_unreachable_ || d.edge != graph::kInvalidId,
                    "routing hole");
  return d;
}

bool UpDownRouting::reachable(graph::NodeId s, graph::NodeId d) const {
  VFIMR_REQUIRE(s < n_ && d < n_);
  if (s == d) return true;
  // A fresh packet starts in the up phase with its wireless budget intact.
  return layers_[1][0].table[s * n_ + d].edge != graph::kInvalidId;
}

std::uint32_t UpDownRouting::walk(graph::NodeId s, graph::NodeId d,
                                  bool count_wireless) const {
  VFIMR_REQUIRE(s < n_ && d < n_);
  std::uint32_t hops = 0;
  std::uint32_t wireless = 0;
  bool phase = false;
  int budget = 1;
  graph::NodeId cur = s;
  while (cur != d) {
    const auto& layer = layers_[budget][phase ? 1 : 0];
    const auto dec = layer.table[cur * n_ + d];
    const auto next = layer.next[cur * n_ + d];
    VFIMR_REQUIRE(dec.edge != graph::kInvalidId &&
                  next != graph::kInvalidId);
    if (graph_->edge(dec.edge).kind == graph::EdgeKind::kWireless) {
      VFIMR_REQUIRE_MSG(budget == 1, "second wireless hop on a route");
      budget = 0;
      ++wireless;
    }
    phase = dec.down_phase;
    cur = next;
    ++hops;
    VFIMR_REQUIRE_MSG(hops <= 4 * n_, "routing loop detected");
  }
  return count_wireless ? wireless : hops;
}

std::uint32_t UpDownRouting::route_hops(graph::NodeId s,
                                        graph::NodeId d) const {
  if (s == d) return 0;
  return walk(s, d, false);
}

std::uint32_t UpDownRouting::route_wireless_hops(graph::NodeId s,
                                                 graph::NodeId d) const {
  if (s == d) return 0;
  return walk(s, d, true);
}

}  // namespace vfimr::noc
