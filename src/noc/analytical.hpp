#pragma once
// Analytical hop-by-hop NoC model — the third fidelity band of the
// multi-fidelity ladder (DESIGN.md §12).
//
// Instead of stepping the wormhole simulator cycle by cycle, the model
// walks the *same deterministic routing tables* the simulator uses (XY on
// the mesh, up*/down* on irregular WiNoC topologies) once per
// source-destination pair, precomputing the link-by-link route, and then
// treats every directional link as an M/D/1 queue (Graphite-style
// hop-by-hop contention): a packet's latency is its deterministic path
// delay plus the sum of the per-link queueing waits implied by the offered
// load.  Energy counters are the expected per-flit event counts of the
// same routes, so the cycle-accurate power model applies unchanged.
//
// Fault handling is time-sliced, mirroring the simulator's degradation
// semantics: the expanded fault timeline (src/faults) partitions the
// injection window into slices between transitions; within a slice the
// down-set is constant, so each slice is a steady state with its own route
// tables — the healthy platform tables before the first fault fires,
// hole-tolerant up*/down* tables over the surviving edges from then on
// (the simulator, too, never returns to the original tables after a
// repair).  Slice results are length-weighted into the window aggregate.
// Down links never carry analytical traffic in their slices; pairs with no
// surviving route are accounted as lost, like the simulator's purged
// packets.
//
// The model is deterministic (no RNG at all): equal inputs produce
// bit-identical Metrics, which is what lets the memoizing NetworkEvaluator
// cache analytical results alongside cycle-accurate ones under band-tagged
// keys.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/matrix.hpp"
#include "faults/faults.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"

namespace vfimr::noc {

struct AnalyticalConfig {
  /// Injection window the expected event counts are scaled to (the same
  /// role as the simulator's measured window).
  Cycle sim_cycles = 60'000;
  /// VFI domain of each node (empty = single clock domain); wire hops that
  /// cross domains pay `sync_penalty_cycles`, as in the simulator.
  std::vector<std::size_t> node_cluster;
  std::uint32_t sync_penalty_cycles = 1;
  /// Expanded fault timeline (same schedule the simulator would apply).
  faults::FaultSchedule faults;
  /// Wireless-hop cost for the degraded up*/down* rebuilds (matches
  /// SimConfig::fault_reroute_wireless_cost).
  double fault_reroute_wireless_cost = 2.5;
  /// M/D/1 utilization clamp: per-link rho is capped here so saturated
  /// links report a large-but-finite queueing wait instead of a pole.
  double max_utilization = 0.95;
  /// Fixed per-packet pipeline entry/exit cost (injection alignment plus
  /// the ejection pass), calibrated against the cycle-accurate simulator.
  double base_overhead_cycles = 1.0;
  /// Per-packet disruption cost charged once per fault transition a
  /// delivered packet statistically overlaps: the simulator purges
  /// in-flight packets, restarts routing phases and backs off unroutable
  /// heads around every transition.  Calibrated; the expected count of
  /// overlapped transitions is (transitions / window) x path delay.
  double transition_disruption_cycles = 16.0;
  /// Unroutable-head retry policy, mirroring SimConfig: a stranded head
  /// waits (base << retries) cycles between attempts and is lost after
  /// `fault_max_retries` backoffs.  Packets injected during an outage whose
  /// destination repairs within the cumulative budget are *delivered late*,
  /// not lost — the model charges them the expected repair wait.
  std::uint32_t fault_backoff_base_cycles = 8;
  std::uint32_t fault_max_retries = 8;
  /// Exponential backoff re-probes at cumulative base*(2^k - 1) instants,
  /// so the realized wait overshoots the repair time; calibrated mean
  /// multiplier on the expected wait.
  double backoff_overshoot = 1.4;
  /// Head-of-line blocking weight.  A stranded head backs off at the FRONT
  /// of the source's FIFO injection queue, stalling every later injection
  /// from that source for up to the retry budget.  The induced latency
  /// mass of the model's estimate is scaled by this calibrated factor.
  double hol_blocking_factor = 1.0;
  /// Transition-freeze weight.  A packet in flight toward a dying router
  /// parks its head in a transit input buffer for the whole retry ladder;
  /// wormhole backpressure freezes that port's upstream cone and traps
  /// unrelated traffic until the purge.  This factor is the calibrated
  /// fraction of the network's offered load a single frozen port's cone
  /// catches; the charge itself is an expected value over the (usually
  /// rare) event that a head is in flight at the death instant.
  double transition_freeze_factor = 0.3;
};

/// Optional per-evaluation diagnostics (cross-validation suite, property
/// tests, saturation analysis).  Per-link and per-pair figures are
/// aggregated over the fault slices: loads are window-weighted means,
/// utilizations are maxima (the binding constraint for saturation).
struct AnalyticalDetail {
  /// Offered packets/cycle per directional link, indexed 2*EdgeId + dir
  /// (dir 0 = edge.a -> edge.b).  Links down for the whole window are
  /// always zero.
  std::vector<double> dir_link_packets_per_cycle;
  /// Peak M/D/1 utilization (rho, unclamped) per directional link.
  std::vector<double> dir_link_utilization;
  /// Peak utilization per wireless channel.
  std::vector<double> channel_utilization;
  /// Per-pair packet latency estimate (cycles); 0 where no traffic flows.
  Matrix pair_latency_cycles;
  /// Queueing-only component of the same estimate (zero traffic => zero).
  Matrix pair_queueing_cycles;
  double max_link_utilization = 0.0;
  double max_channel_utilization = 0.0;
  double offered_packets_per_cycle = 0.0;
  double lost_packets_per_cycle = 0.0;  ///< unreachable under the outages
};

class AnalyticalNocModel {
 public:
  /// `topology` and `routing` must outlive the model.  `routing` is the
  /// platform's healthy routing algorithm; from the first fault transition
  /// on, slices use the model's own degraded up*/down* tables instead,
  /// mirroring noc::Network's rebuild.
  AnalyticalNocModel(const Topology& topology,
                     const RoutingAlgorithm& routing,
                     const WirelessConfig& wireless, AnalyticalConfig config);
  ~AnalyticalNocModel();

  /// Estimate the Metrics of driving the network with `rates` (packets per
  /// cycle for every source-destination pair) for the configured injection
  /// window.  Deterministic; `detail` (nullable) receives per-link loads
  /// and per-pair latencies.
  Metrics evaluate(const Matrix& rates, std::uint32_t packet_flits,
                   AnalyticalDetail* detail = nullptr) const;

  /// True when a packet from s to d has a route in the healthy (first)
  /// slice.
  bool reachable(graph::NodeId s, graph::NodeId d) const;
  /// Hops on the healthy-slice deterministic route (wire + wireless); 0
  /// when s == d or unreachable.
  std::uint32_t route_hops(graph::NodeId s, graph::NodeId d) const;
  /// Per-edge liveness across the whole window: false when any slice had
  /// the edge (or an endpoint) down.  An edge that is false for the entire
  /// window never carries analytical traffic.
  const std::vector<bool>& edge_usable() const { return edge_usable_all_; }
  /// True when the fault timeline forced degraded route rebuilds.
  bool degraded() const { return degraded_; }
  /// Number of steady-state slices the window was cut into (1 = fault-free).
  std::size_t slice_count() const { return slices_.size(); }

 private:
  struct Hop {
    graph::EdgeId edge = graph::kInvalidId;
    graph::NodeId from = graph::kInvalidId;
    graph::NodeId to = graph::kInvalidId;
    bool wireless = false;
    bool sync_crossing = false;
  };
  struct Route {
    std::vector<Hop> hops;
    std::uint32_t wire_hops = 0;
    std::uint32_t wireless_hops = 0;
    std::uint32_t sync_crossings = 0;
    double wire_mm = 0.0;
    bool reachable = false;
  };
  /// One steady state: the network between two fault transitions.  The
  /// expensive members (`degraded`, `routes`) are shared between slices
  /// with identical liveness masks — transient faults repair back into
  /// states the timeline already visited, so a schedule of k events
  /// usually needs far fewer than k table builds.
  struct Slice {
    double cycles = 0.0;  ///< slice length
    double start = 0.0;   ///< slice begin, cycles from window start
    /// Routers that went DOWN at this slice's opening transition and the
    /// longest of their outages; drive the transition-freeze charge.
    std::vector<graph::NodeId> routers_died;
    double router_outage = 0.0;
    std::vector<bool> edge_usable;
    std::vector<bool> router_usable;
    /// Hole-tolerant rebuild; null = the platform's healthy routing.
    std::shared_ptr<const UpDownRouting> degraded;
    std::shared_ptr<const std::vector<Route>> routes;  ///< [s * n + d]
    std::vector<std::size_t> channel_members;  ///< live WIs per channel

    const Route& route(graph::NodeId s, graph::NodeId d,
                       std::size_t n) const {
      return (*routes)[static_cast<std::size_t>(s) * n + d];
    }
  };

  void build_slices();
  Route walk_route(const Slice& slice, graph::NodeId s,
                   graph::NodeId d) const;

 public:
  /// Thread-safe memo of constructed models, keyed on a serialized
  /// evaluation config (window, clustering, fault schedule, knobs).  The
  /// owning platform embeds one so the phase evaluations of a run — and,
  /// through a shared PlatformCache, every sweep point on the same platform
  /// — pay each model construction once instead of once per evaluation.
  /// Models hold pointers into the owning platform; the cache must not
  /// outlive it.  Concurrent insert races are benign: construction is
  /// deterministic and the first inserted model wins.
  class Cache {
   public:
    std::shared_ptr<const AnalyticalNocModel> find(
        const std::string& key) const {
      std::lock_guard<std::mutex> lock{mutex_};
      const auto it = models_.find(key);
      return it == models_.end() ? nullptr : it->second;
    }
    std::shared_ptr<const AnalyticalNocModel> insert(
        std::string key, std::shared_ptr<const AnalyticalNocModel> model) {
      std::lock_guard<std::mutex> lock{mutex_};
      return models_.try_emplace(std::move(key), std::move(model))
          .first->second;
    }
    std::size_t size() const {
      std::lock_guard<std::mutex> lock{mutex_};
      return models_.size();
    }

   private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string,
                       std::shared_ptr<const AnalyticalNocModel>>
        models_;
  };

 private:

  const Topology* topo_;
  const RoutingAlgorithm* routing_;
  WirelessConfig wireless_;
  AnalyticalConfig cfg_;
  std::size_t n_ = 0;

  std::vector<int> node_channel_;  ///< -1 = no WI (healthy layout)
  std::vector<Slice> slices_;
  std::vector<bool> edge_usable_all_;  ///< AND over slices
  bool degraded_ = false;
  double transitions_ = 0.0;  ///< fault transitions inside the window
};

}  // namespace vfimr::noc
