#include "noc/network.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "telemetry/telemetry.hpp"

// Wireless layer of the NoC: per-node wireless interfaces (WIs), the
// rotating-token MAC over the three mm-wave channels, and the idle-cycle
// token rotation used by the drain fast path.  Split out of network.cpp;
// behavior is bit-identical to the pre-split monolith.

namespace vfimr::noc {

void Network::setup_wireless(const WirelessConfig& wireless) {
  const auto& g = topo_->graph;
  // Wireless interfaces.
  std::vector<std::int32_t> wi_channel(g.node_count(), -1);
  for (const auto& wi : wireless.interfaces) {
    VFIMR_REQUIRE(wi.node < g.node_count());
    VFIMR_REQUIRE_MSG(wi.channel >= 0 && wi.channel < wireless.channel_count,
                      "WI channel out of range");
    VFIMR_REQUIRE_MSG(wi_channel[wi.node] < 0, "duplicate WI on node");
    wi_channel[wi.node] = wi.channel;
    auto& r = routers_[wi.node];
    InPort rx;
    rx.capacity = cfg_.wi_buffer_depth;
    rx.is_wireless_rx = true;
    r.wireless_rx = static_cast<std::int32_t>(r.in.size());
    r.in.push_back(std::move(rx));
    OutPort tx;
    tx.kind = OutKind::kWirelessTx;
    r.wireless_tx = static_cast<std::int32_t>(r.out.size());
    r.out.push_back(tx);
    r.wi_channel = wi.channel;
    channels_[static_cast<std::size_t>(wi.channel)].members.push_back(wi.node);
  }
  for (auto& ch : channels_) std::sort(ch.members.begin(), ch.members.end());

  // Validate wireless edges connect same-channel WIs.
  for (const auto& ed : g.edges()) {
    if (ed.kind != graph::EdgeKind::kWireless) continue;
    VFIMR_REQUIRE_MSG(wi_channel[ed.a] >= 0 && wi_channel[ed.b] >= 0,
                      "wireless edge endpoint lacks a WI");
    VFIMR_REQUIRE_MSG(wi_channel[ed.a] == wi_channel[ed.b],
                      "wireless edge endpoints on different channels");
  }
}

void Network::service_wireless_channels() {
  const Cycle now = metrics_.cycles;
  for (auto& ch : channels_) {
    if (ch.members.empty()) continue;
    auto& holder = routers_[ch.members[ch.token]];
    bool sent = false;
    if (!holder.tx_queue.empty()) {
      Flit& f = holder.tx_queue.front();
      if (f.ready_cycle <= now) {
        VFIMR_REQUIRE(f.wi_dest != graph::kInvalidId);
        auto& dest_router = routers_[f.wi_dest];
        VFIMR_REQUIRE(dest_router.wireless_rx >= 0);
        // Post-wireless flits live on VN1.
        auto& rx =
            dest_router.in[static_cast<std::size_t>(dest_router.wireless_rx)]
                .buf[1];
        const std::uint32_t rx_cap = cfg_.wi_buffer_depth;
        // Whole-packet reservation: a head flit starts transmitting only if
        // the destination RX can absorb the entire packet.  The RX has a
        // single writer (this channel), so the reservation cannot be stolen
        // and a started packet always completes — the token is never held
        // behind a blocked receiver.
        const bool can_go = f.is_head() ? rx.size() + f.size <= rx_cap
                                        : rx.size() < rx_cap;
        if (can_go) {
          // No synchronizer penalty on the wireless path: the deep (8-flit)
          // WI buffers exist precisely to absorb resynchronization at the
          // island boundary (§7, [8]) — one of the WiNoC's advantages for
          // inter-VFI exchanges.
          Flit moved = f;
          if (tele_ != nullptr) ++moved.hops;
          const graph::NodeId hop_dest = f.wi_dest;
          holder.tx_queue.pop_front();
          note_departure(ch.members[ch.token]);
          note_arrival(hop_dest, 1);
          moved.ready_cycle = now + 1;
          moved.wi_dest = graph::kInvalidId;
          moved.vn = 1;
          rx.push_back(moved);
          if (moved.dest == hop_dest) ++ejectable_flits_[hop_dest];
          if (const auto e =
                  topo_->graph.find_edge(ch.members[ch.token], hop_dest)) {
            ++edge_flits_[*e];
          }
          ++metrics_.energy.wireless_flits;
          ++metrics_.energy.buffer_reads;
          ++metrics_.energy.buffer_writes;
          sent = true;
          if (moved.is_tail()) {
            ch.mid_packet = false;
            ch.token = (ch.token + 1) % ch.members.size();
          } else {
            ch.mid_packet = true;
            ch.mid_packet_id = moved.packet;
          }
        }
      }
    }
    if (!sent && !ch.mid_packet) {
      // Idle or head-blocked holder without a packet in flight: pass token.
      ch.token = (ch.token + 1) % ch.members.size();
    }
  }
}

void Network::advance_idle_cycles(Cycle delta) {
  // A naive idle step only rotates the token of every channel that is not
  // mid-packet (service_wireless_channels with nothing ready) and bumps the
  // cycle counter; replay `delta` of them in O(channels).
  metrics_.cycles += delta;
  for (auto& ch : channels_) {
    if (ch.members.empty() || ch.mid_packet) continue;
    ch.token = (ch.token + delta) % ch.members.size();
  }
}

}  // namespace vfimr::noc
