#pragma once
// Flit-level datatypes for the wormhole NoC simulator.  The paper uses
// 32-bit flits; a packet is a head flit, zero or more body flits and a tail
// flit (single-flit packets are both head and tail).

#include <cstdint>

#include "graph/graph.hpp"

namespace vfimr::noc {

using Cycle = std::uint64_t;
using PacketId = std::uint64_t;

struct Flit {
  PacketId packet = 0;
  graph::NodeId src = graph::kInvalidId;
  graph::NodeId dest = graph::kInvalidId;
  std::uint32_t seq = 0;       ///< position within the packet (0 == head)
  std::uint32_t size = 1;      ///< total flits in the packet
  Cycle inject_cycle = 0;      ///< cycle the packet entered the source queue
  Cycle ready_cycle = 0;       ///< earliest cycle this flit may move again
  bool down_phase = false;     ///< up*/down* routing phase (head flit only)
  /// Virtual network: 0 before the packet's wireless hop, 1 after.  The two
  /// VNs have separate buffers and wormhole states on every wired port, so
  /// post-wireless traffic can never block behind pre-wireless traffic —
  /// this breaks the TX -> RX -> wire -> TX dependency cycle of the
  /// token-arbitrated wireless layer (layered routing).
  std::uint8_t vn = 0;
  /// While queued at a wireless TX port: the WI node this flit is sent to.
  graph::NodeId wi_dest = graph::kInvalidId;
  /// Per-packet fault-retry budget: number of exponential-backoff waits this
  /// head has taken on unroutable (fault-degraded) routes.  Always 0 on
  /// fault-free runs.
  std::uint8_t retries = 0;
  /// Links traversed so far (wire + wireless).  Maintained only when the
  /// network has a telemetry sink — purely observational, never read by the
  /// simulator itself.
  std::uint16_t hops = 0;

  /// Route memo (head flits only).  next_hop is a pure function of
  /// (router, dest, down_phase, vn), so its result for this flit at router
  /// `route_node` never changes — arbitration caches it here the first time
  /// the head is probed and every later probe at the same router is an
  /// integer compare.  Moving to another router invalidates the memo by
  /// construction (route_node mismatch); a fault-driven route-table rebuild
  /// invalidates every memo at once by bumping the network's route epoch
  /// (route_epoch mismatch).  Purely an optimization: decisions are
  /// bit-identical with or without the memo.
  graph::NodeId route_node = graph::kInvalidId;
  std::int32_t route_out = -1;             ///< output index at route_node
  graph::NodeId route_wi_dest = graph::kInvalidId;
  bool route_down_phase = false;
  std::uint32_t route_epoch = 0;           ///< network route epoch of the memo

  bool is_head() const { return seq == 0; }
  bool is_tail() const { return seq + 1 == size; }
};

}  // namespace vfimr::noc
