#include "noc/topology.hpp"

#include <cmath>

#include "common/require.hpp"

namespace vfimr::noc {

double distance_mm(const Point& a, const Point& b) {
  const double dx = a.x_mm - b.x_mm;
  const double dy = a.y_mm - b.y_mm;
  return std::sqrt(dx * dx + dy * dy);
}

double Topology::node_distance_mm(graph::NodeId a, graph::NodeId b) const {
  VFIMR_REQUIRE(a < positions.size() && b < positions.size());
  return distance_mm(positions[a], positions[b]);
}

graph::EdgeId Topology::add_wire(graph::NodeId a, graph::NodeId b) {
  return graph.add_edge(a, b, graph::EdgeKind::kWire, node_distance_mm(a, b));
}

graph::EdgeId Topology::add_wireless(graph::NodeId a, graph::NodeId b) {
  return graph.add_edge(a, b, graph::EdgeKind::kWireless, 0.0);
}

Topology make_placed_grid(std::size_t width, std::size_t height,
                          double pitch_mm) {
  VFIMR_REQUIRE_MSG(width > 0 && height > 0,
                    "mesh dimensions must be positive, got "
                        << width << "x" << height);
  Topology t;
  t.graph = graph::Graph{width * height};
  t.positions.resize(width * height);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      t.positions[y * width + x] =
          Point{static_cast<double>(x) * pitch_mm,
                static_cast<double>(y) * pitch_mm};
    }
  }
  return t;
}

Topology make_mesh(std::size_t width, std::size_t height, double pitch_mm) {
  Topology t = make_placed_grid(width, height, pitch_mm);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const auto n = mesh_node(x, y, width);
      if (x + 1 < width) t.add_wire(n, mesh_node(x + 1, y, width));
      if (y + 1 < height) t.add_wire(n, mesh_node(x, y + 1, width));
    }
  }
  return t;
}

}  // namespace vfimr::noc
