#include "noc/network.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "telemetry/telemetry.hpp"

namespace vfimr::noc {

Network::Network(const Topology& topology, const RoutingAlgorithm& routing,
                 SimConfig config, WirelessConfig wireless)
    : topo_{&topology}, routing_{&routing}, cfg_{config} {
  const auto& g = topo_->graph;
  VFIMR_REQUIRE_MSG(cfg_.wire_buffer_depth >= 1,
                    "wire_buffer_depth must be at least 1 flit");
  VFIMR_REQUIRE_MSG(cfg_.wi_buffer_depth >= 1,
                    "wi_buffer_depth must be at least 1 flit");
  routers_.resize(g.node_count());
  edge_flits_.assign(g.edge_count(), 0);
  resident_flits_.assign(g.node_count(), 0);
  ejectable_flits_.assign(g.node_count(), 0);
  active_flags_.assign(g.node_count(), false);
  channels_.resize(static_cast<std::size_t>(
      std::max(wireless.channel_count, 0)));
  if (!cfg_.node_cluster.empty()) {
    VFIMR_REQUIRE(cfg_.node_cluster.size() == g.node_count());
  }

  // Wire ports, one input + one output per incident wire edge.
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    auto& r = routers_[n];
    for (graph::EdgeId e : g.incident(n)) {
      const auto& ed = g.edge(e);
      if (ed.kind != graph::EdgeKind::kWire) continue;
      InPort in;
      in.capacity = cfg_.wire_buffer_depth;
      in.via_edge = e;
      r.in.push_back(std::move(in));
      OutPort out;
      out.kind = OutKind::kWire;
      out.edge = e;
      out.neighbor = g.other_end(e, n);
      out.length_mm = ed.length_mm;
      r.out.push_back(out);
    }
  }

  // Wireless interfaces.
  std::vector<std::int32_t> wi_channel(g.node_count(), -1);
  for (const auto& wi : wireless.interfaces) {
    VFIMR_REQUIRE(wi.node < g.node_count());
    VFIMR_REQUIRE_MSG(wi.channel >= 0 && wi.channel < wireless.channel_count,
                      "WI channel out of range");
    VFIMR_REQUIRE_MSG(wi_channel[wi.node] < 0, "duplicate WI on node");
    wi_channel[wi.node] = wi.channel;
    auto& r = routers_[wi.node];
    InPort rx;
    rx.capacity = cfg_.wi_buffer_depth;
    rx.is_wireless_rx = true;
    r.wireless_rx = static_cast<std::int32_t>(r.in.size());
    r.in.push_back(std::move(rx));
    OutPort tx;
    tx.kind = OutKind::kWirelessTx;
    r.wireless_tx = static_cast<std::int32_t>(r.out.size());
    r.out.push_back(tx);
    r.wi_channel = wi.channel;
    channels_[static_cast<std::size_t>(wi.channel)].members.push_back(wi.node);
  }
  for (auto& ch : channels_) std::sort(ch.members.begin(), ch.members.end());

  // Validate wireless edges connect same-channel WIs.
  for (const auto& ed : g.edges()) {
    if (ed.kind != graph::EdgeKind::kWireless) continue;
    VFIMR_REQUIRE_MSG(wi_channel[ed.a] >= 0 && wi_channel[ed.b] >= 0,
                      "wireless edge endpoint lacks a WI");
    VFIMR_REQUIRE_MSG(wi_channel[ed.a] == wi_channel[ed.b],
                      "wireless edge endpoints on different channels");
  }

  // The fast-path candidate masks hold one bit per input slot + source.
  for (const auto& r : routers_) {
    VFIMR_REQUIRE_MSG(r.in.size() + 1 <= 16,
                      "router has too many input ports for the candidate "
                      "bitmask fast path");
  }

  // Resolve downstream input-port indices for wire outputs.
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    for (auto& out : routers_[n].out) {
      if (out.kind != OutKind::kWire) continue;
      const auto& nb = routers_[out.neighbor];
      bool found = false;
      for (std::size_t i = 0; i < nb.in.size(); ++i) {
        if (nb.in[i].via_edge == out.edge) {
          out.downstream_in = static_cast<std::uint32_t>(i);
          found = true;
          break;
        }
      }
      VFIMR_REQUIRE(found);
    }
  }

  setup_telemetry();

  active_routing_ = routing_;
  if (!cfg_.faults.empty()) {
    faults_enabled_ = true;
    VFIMR_REQUIRE(cfg_.fault_backoff_base_cycles >= 1);
    edge_down_.assign(g.edge_count(), 0);
    router_down_.assign(g.node_count(), 0);
    wi_down_.assign(g.node_count(), 0);
    edge_usable_.assign(g.edge_count(), true);
    build_fault_timeline();
  }
}

void Network::setup_telemetry() {
  tele_ = cfg_.telemetry;
  if (tele_ == nullptr) return;
  const std::string& label = cfg_.telemetry_label;
  auto& m = tele_->metrics();
  tele_latency_ = &m.histogram(label + ".noc.latency_cycles", 0.0, 512.0, 64);
  tele_hops_ = &m.histogram(label + ".noc.hops", 0.0, 32.0, 32);
  tele_queue_depth_ =
      &m.histogram(label + ".noc.source_queue_depth", 0.0, 64.0, 32);
  tele_backoffs_ = &m.counter(label + ".noc.retry_backoffs");
  tele_lost_ = &m.counter(label + ".noc.packets_lost");
  tele_fault_events_ = &m.counter(label + ".noc.fault_events");
  tele_packets_track_ = tele_->tracer().track(label, "NoC packets (sampled)");
  tele_faults_track_ = tele_->tracer().track(label, "NoC faults");
  tele_sample_every_ = std::max<std::uint64_t>(
      1, tele_->config().noc_packet_sample_every);
}

void Network::build_fault_timeline() {
  const auto& g = topo_->graph;
  for (const auto& ev : cfg_.faults.events()) {
    switch (ev.kind) {
      case faults::NocFaultKind::kLink:
        VFIMR_REQUIRE_MSG(ev.id < g.edge_count(),
                          "link fault id out of range");
        break;
      case faults::NocFaultKind::kRouter:
        VFIMR_REQUIRE_MSG(ev.id < g.node_count(),
                          "router fault id out of range");
        break;
      case faults::NocFaultKind::kWi:
        VFIMR_REQUIRE_MSG(
            ev.id < g.node_count() && routers_[ev.id].wireless_tx >= 0,
            "WI fault on a node without a wireless interface");
        break;
    }
    fault_timeline_.push_back(FaultEvent{ev.at_cycle, ev.kind, ev.id, true});
    if (ev.transient()) {
      VFIMR_REQUIRE_MSG(ev.until_cycle > ev.at_cycle,
                        "transient fault repairs before it strikes");
      fault_timeline_.push_back(
          FaultEvent{ev.until_cycle, ev.kind, ev.id, false});
    }
  }
  // Stable sort: same-cycle transitions apply in schedule order.
  std::stable_sort(
      fault_timeline_.begin(), fault_timeline_.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.cycle < b.cycle; });
}

void Network::inject(graph::NodeId src, graph::NodeId dest,
                     std::uint32_t flits) {
  VFIMR_REQUIRE(src < routers_.size() && dest < routers_.size());
  VFIMR_REQUIRE_MSG(src != dest, "self-traffic never enters the network");
  VFIMR_REQUIRE(flits >= 1);
  if (faults_enabled_ && router_down_[src] > 0) {
    // The source's router is down: the packet is offered and immediately
    // lost.  Conservation: injected flits == ejected + lost + in flight.
    ++metrics_.packets_injected;
    ++metrics_.packets_lost;
    metrics_.flits_lost += flits;
    return;
  }
  const PacketId id = next_packet_++;
  auto& q = routers_[src].source_queue;
  for (std::uint32_t s = 0; s < flits; ++s) {
    Flit f;
    f.packet = id;
    f.src = src;
    f.dest = dest;
    f.seq = s;
    f.size = flits;
    f.inject_cycle = metrics_.cycles;
    f.ready_cycle = metrics_.cycles;
    q.push_back(f);
  }
  ++metrics_.packets_injected;
  in_flight_flits_ += flits;
  note_arrival(src, flits);
  if (tele_ != nullptr) {
    tele_queue_depth_->add(static_cast<double>(q.size()));
  }
}

void Network::note_arrival(graph::NodeId n, std::uint64_t flits) {
  resident_flits_[n] += flits;
  if (!active_flags_[n]) {
    active_flags_[n] = true;
    newly_active_.push_back(n);
  }
}

void Network::note_departure(graph::NodeId n) {
  VFIMR_REQUIRE(resident_flits_[n] > 0);
  --resident_flits_[n];
}

void Network::refresh_active_list() {
  // Merge the staged activations (sorted) into the sorted list, then drop
  // routers that emptied out.  Both lists are duplicate-free thanks to
  // active_flags_.
  if (!newly_active_.empty()) {
    std::sort(newly_active_.begin(), newly_active_.end());
    const auto mid = active_list_.insert(
        active_list_.end(), newly_active_.begin(), newly_active_.end());
    std::inplace_merge(active_list_.begin(), mid, active_list_.end());
    newly_active_.clear();
  }
  std::erase_if(active_list_, [&](graph::NodeId n) {
    if (resident_flits_[n] > 0) return false;
    active_flags_[n] = false;
    return true;
  });
}

std::deque<Flit>* Network::input_queue(RouterState& r, std::int32_t idx,
                                       std::size_t vn) {
  if (idx == kSourceInput) {
    // Injection queue carries only VN0 packets.
    return vn == 0 ? &r.source_queue : nullptr;
  }
  VFIMR_REQUIRE(idx >= 0 && static_cast<std::size_t>(idx) < r.in.size());
  return &r.in[static_cast<std::size_t>(idx)].buf[vn];
}

std::uint32_t Network::output_for_edge(const RouterState& r,
                                       graph::EdgeId e) const {
  for (std::size_t i = 0; i < r.out.size(); ++i) {
    if (r.out[i].kind == OutKind::kWire && r.out[i].edge == e) {
      return static_cast<std::uint32_t>(i);
    }
  }
  VFIMR_REQUIRE_MSG(false, "no output port for edge");
  return 0;
}

bool Network::downstream_has_space(const OutPort& out, std::size_t vn) const {
  VFIMR_REQUIRE(out.kind == OutKind::kWire);
  const auto& nb = routers_[out.neighbor];
  const auto& in = nb.in[out.downstream_in];
  return in.buf[vn].size() < in.capacity;
}

void Network::eject_router(graph::NodeId n, Cycle now) {
  auto& r = routers_[n];
  auto try_eject = [&](std::deque<Flit>& q) {
    if (q.empty()) return;
    Flit& f = q.front();
    if (f.dest != n || f.ready_cycle > now) return;
    ++metrics_.energy.buffer_reads;
    ++metrics_.flits_ejected;
    --in_flight_flits_;
    if (f.is_tail()) {
      ++metrics_.packets_ejected;
      metrics_.packet_latency.add(static_cast<double>(now - f.inject_cycle));
      if (tele_ != nullptr) {
        const double latency = static_cast<double>(now - f.inject_cycle);
        tele_latency_->add(latency);
        tele_hops_->add(static_cast<double>(f.hops));
        if (f.packet % tele_sample_every_ == 0) {
          tele_->tracer().complete(
              tele_packets_track_,
              "pkt " + std::to_string(f.src) + "->" + std::to_string(f.dest),
              static_cast<double>(f.inject_cycle), latency,
              {{"hops", static_cast<double>(f.hops)},
               {"flits", static_cast<double>(f.size)}});
        }
      }
    }
    q.pop_front();
    VFIMR_REQUIRE(ejectable_flits_[n] > 0);
    --ejectable_flits_[n];
    note_departure(n);
  };
  for (auto& in : r.in) {
    for (std::size_t vn = 0; vn < kVns; ++vn) try_eject(in.buf[vn]);
  }
}

void Network::eject_ready_flits() {
  const Cycle now = metrics_.cycles;
  if (cfg_.reference_stepping) {
    for (graph::NodeId n = 0; n < routers_.size(); ++n) eject_router(n, now);
    return;
  }
  for (graph::NodeId n : active_list_) {
    // Through-traffic-only routers have nothing the eject stage could take;
    // the naive probe of every input buffer would find no dest == n front.
    if (ejectable_flits_[n] == 0) continue;
    eject_router(n, now);
  }
}

void Network::service_wireless_channels() {
  const Cycle now = metrics_.cycles;
  for (auto& ch : channels_) {
    if (ch.members.empty()) continue;
    auto& holder = routers_[ch.members[ch.token]];
    bool sent = false;
    if (!holder.tx_queue.empty()) {
      Flit& f = holder.tx_queue.front();
      if (f.ready_cycle <= now) {
        VFIMR_REQUIRE(f.wi_dest != graph::kInvalidId);
        auto& dest_router = routers_[f.wi_dest];
        VFIMR_REQUIRE(dest_router.wireless_rx >= 0);
        // Post-wireless flits live on VN1.
        auto& rx =
            dest_router.in[static_cast<std::size_t>(dest_router.wireless_rx)]
                .buf[1];
        const std::uint32_t rx_cap = cfg_.wi_buffer_depth;
        // Whole-packet reservation: a head flit starts transmitting only if
        // the destination RX can absorb the entire packet.  The RX has a
        // single writer (this channel), so the reservation cannot be stolen
        // and a started packet always completes — the token is never held
        // behind a blocked receiver.
        const bool can_go = f.is_head() ? rx.size() + f.size <= rx_cap
                                        : rx.size() < rx_cap;
        if (can_go) {
          // No synchronizer penalty on the wireless path: the deep (8-flit)
          // WI buffers exist precisely to absorb resynchronization at the
          // island boundary (§7, [8]) — one of the WiNoC's advantages for
          // inter-VFI exchanges.
          Flit moved = f;
          if (tele_ != nullptr) ++moved.hops;
          const graph::NodeId hop_dest = f.wi_dest;
          holder.tx_queue.pop_front();
          note_departure(ch.members[ch.token]);
          note_arrival(hop_dest, 1);
          moved.ready_cycle = now + 1;
          moved.wi_dest = graph::kInvalidId;
          moved.vn = 1;
          rx.push_back(moved);
          if (moved.dest == hop_dest) ++ejectable_flits_[hop_dest];
          if (const auto e =
                  topo_->graph.find_edge(ch.members[ch.token], hop_dest)) {
            ++edge_flits_[*e];
          }
          ++metrics_.energy.wireless_flits;
          ++metrics_.energy.buffer_reads;
          ++metrics_.energy.buffer_writes;
          sent = true;
          if (moved.is_tail()) {
            ch.mid_packet = false;
            ch.token = (ch.token + 1) % ch.members.size();
          } else {
            ch.mid_packet = true;
            ch.mid_packet_id = moved.packet;
          }
        }
      }
    }
    if (!sent && !ch.mid_packet) {
      // Idle or head-blocked holder without a packet in flight: pass token.
      ch.token = (ch.token + 1) % ch.members.size();
    }
  }
}

std::int32_t Network::arbitrate(graph::NodeId node, std::uint32_t out_idx,
                                std::size_t vn) {
  auto& r = routers_[node];
  auto& out = r.out[out_idx];
  auto& owner = out.vn[vn];
  const Cycle now = metrics_.cycles;
  const auto candidates = static_cast<std::uint32_t>(r.in.size()) + 1;
  for (std::uint32_t k = 0; k < candidates; ++k) {
    const std::uint32_t slot = (owner.rr_next + k) % candidates;
    const std::int32_t idx = slot == static_cast<std::uint32_t>(r.in.size())
                                 ? kSourceInput
                                 : static_cast<std::int32_t>(slot);
    auto* q = input_queue(r, idx, vn);
    if (q == nullptr || q->empty()) continue;
    const Flit& f = q->front();
    if (!f.is_head() || f.ready_cycle > now || f.dest == node) continue;
    VFIMR_REQUIRE(f.vn == vn);
    const RouteDecision dec =
        active_routing_->next_hop(node, f.dest, f.down_phase, f.vn == 1);
    // Fault hole: the destination is unreachable right now.  Not a
    // candidate; the backoff pre-pass owns the retry/loss bookkeeping.
    if (dec.edge == graph::kInvalidId) continue;
    const auto& ed = topo_->graph.edge(dec.edge);
    std::uint32_t target = 0;
    graph::NodeId wi_dest = graph::kInvalidId;
    if (ed.kind == graph::EdgeKind::kWireless) {
      VFIMR_REQUIRE_MSG(r.wireless_tx >= 0,
                        "route uses wireless at a non-WI node");
      VFIMR_REQUIRE_MSG(f.size <= cfg_.wi_buffer_depth,
                        "packet larger than the WI buffer cannot cross a "
                        "wireless link");
      VFIMR_REQUIRE_MSG(f.vn == 0,
                        "route takes a second wireless hop (layered routing "
                        "supports one wireless segment per packet)");
      // Virtual cut-through at the wireless boundary: admit a packet into
      // the TX queue only when the whole packet fits.  Together with
      // whole-packet channel reservation (service_wireless_channels) this
      // decouples the wireless layer and keeps the token MAC deadlock-free.
      if (r.tx_queue.size() + f.size > cfg_.wi_buffer_depth) continue;
      target = static_cast<std::uint32_t>(r.wireless_tx);
      wi_dest = topo_->graph.other_end(dec.edge, node);
    } else {
      target = output_for_edge(r, dec.edge);
    }
    if (target != out_idx) continue;
    // Grant: this input streams the whole packet through `out` on `vn`.
    owner.owner_input = idx;
    owner.owner_packet = f.packet;
    owner.remaining = f.size;
    owner.wi_dest = wi_dest;
    owner.owner_down_phase = dec.down_phase;
    owner.rr_next = (slot + 1) % candidates;
    return idx;
  }
  return -1;
}

std::int32_t Network::candidate_target(graph::NodeId node, std::int32_t idx,
                                       std::size_t vn) {
  auto& r = routers_[node];
  auto* q = input_queue(r, idx, vn);
  if (q == nullptr || q->empty()) return -1;
  Flit& f = q->front();
  if (!f.is_head() || f.ready_cycle > metrics_.cycles || f.dest == node) {
    return -1;
  }
  VFIMR_REQUIRE(f.vn == vn);
  if (f.route_node != node || f.route_epoch != route_epoch_) {
    // First probe of this head at this router (or the tables were rebuilt
    // after a fault): resolve the route once and memoize it on the flit
    // (next_hop is pure in (node, dest, phase, vn) within a route epoch).
    const RouteDecision dec =
        active_routing_->next_hop(node, f.dest, f.down_phase, f.vn == 1);
    // Fault hole — same non-candidate treatment as the reference
    // arbitrate(); nothing is memoized so the next probe re-resolves.
    if (dec.edge == graph::kInvalidId) return -1;
    const auto& ed = topo_->graph.edge(dec.edge);
    if (ed.kind == graph::EdgeKind::kWireless) {
      VFIMR_REQUIRE_MSG(r.wireless_tx >= 0,
                        "route uses wireless at a non-WI node");
      VFIMR_REQUIRE_MSG(f.size <= cfg_.wi_buffer_depth,
                        "packet larger than the WI buffer cannot cross a "
                        "wireless link");
      VFIMR_REQUIRE_MSG(f.vn == 0,
                        "route takes a second wireless hop (layered routing "
                        "supports one wireless segment per packet)");
      f.route_out = r.wireless_tx;
      f.route_wi_dest = topo_->graph.other_end(dec.edge, node);
    } else {
      f.route_out = static_cast<std::int32_t>(output_for_edge(r, dec.edge));
      f.route_wi_dest = graph::kInvalidId;
    }
    f.route_down_phase = dec.down_phase;
    f.route_node = node;
    f.route_epoch = route_epoch_;
  }
  // Same wireless admission rule as the reference arbitrate(): a candidate
  // whose packet does not fit the TX queue right now is no candidate.
  if (f.route_wi_dest != graph::kInvalidId &&
      r.tx_queue.size() + f.size > cfg_.wi_buffer_depth) {
    return -1;
  }
  return f.route_out;
}

void Network::refresh_candidate(graph::NodeId node, std::int32_t idx,
                                std::size_t vn) {
  auto& r = routers_[node];
  const std::uint32_t slot = idx == kSourceInput
                                 ? static_cast<std::uint32_t>(r.in.size())
                                 : static_cast<std::uint32_t>(idx);
  const std::uint16_t bit = static_cast<std::uint16_t>(1u << slot);
  const std::int32_t target = candidate_target(node, idx, vn);
  for (std::size_t o = 0; o < r.out.size(); ++o) {
    if (static_cast<std::int32_t>(o) == target) {
      r.out[o].cand[vn] |= bit;
    } else {
      r.out[o].cand[vn] &= static_cast<std::uint16_t>(~bit);
    }
  }
}

void Network::build_candidate_masks(graph::NodeId node) {
  auto& r = routers_[node];
  for (auto& out : r.out) {
    out.cand[0] = 0;
    out.cand[1] = 0;
  }
  const std::uint32_t inputs = static_cast<std::uint32_t>(r.in.size());
  for (std::size_t vn = 0; vn < kVns; ++vn) {
    for (std::uint32_t i = 0; i < inputs; ++i) {
      if (r.in[i].buf[vn].empty()) continue;  // cheap guard, no call
      const std::int32_t target =
          candidate_target(node, static_cast<std::int32_t>(i), vn);
      if (target >= 0) {
        r.out[static_cast<std::size_t>(target)].cand[vn] |=
            static_cast<std::uint16_t>(1u << i);
      }
    }
    if (vn == 0 && !r.source_queue.empty()) {
      const std::int32_t target = candidate_target(node, kSourceInput, vn);
      if (target >= 0) {
        r.out[static_cast<std::size_t>(target)].cand[vn] |=
            static_cast<std::uint16_t>(1u << inputs);
      }
    }
  }
}

std::int32_t Network::arbitrate_fast(graph::NodeId node, std::uint32_t out_idx,
                                     std::size_t vn) {
  auto& r = routers_[node];
  auto& out = r.out[out_idx];
  auto& owner = out.vn[vn];
  const std::uint16_t mask = out.cand[vn];
  if (mask == 0) return -1;
  const auto candidates = static_cast<std::uint32_t>(r.in.size()) + 1;
  for (std::uint32_t k = 0; k < candidates; ++k) {
    const std::uint32_t slot = (owner.rr_next + k) % candidates;
    if ((mask & (1u << slot)) == 0) continue;
    const std::int32_t idx = slot == static_cast<std::uint32_t>(r.in.size())
                                 ? kSourceInput
                                 : static_cast<std::int32_t>(slot);
    // The mask bit guarantees a grantable, route-memoized front head.
    const Flit& f = input_queue(r, idx, vn)->front();
    owner.owner_input = idx;
    owner.owner_packet = f.packet;
    owner.remaining = f.size;
    owner.wi_dest = f.route_wi_dest;
    owner.owner_down_phase = f.route_down_phase;
    owner.rr_next = (slot + 1) % candidates;
    return idx;
  }
  return -1;
}

bool Network::try_move_vn(graph::NodeId node, OutPort& out, std::size_t vn) {
  auto& r = routers_[node];
  auto& owner = out.vn[vn];
  const Cycle now = metrics_.cycles;
  if (owner.owner_input == -1) {
    const auto out_idx = static_cast<std::uint32_t>(&out - r.out.data());
    const std::int32_t granted = cfg_.reference_stepping
                                     ? arbitrate(node, out_idx, vn)
                                     : arbitrate_fast(node, out_idx, vn);
    if (granted < 0) return false;
  }
  auto* q = input_queue(r, owner.owner_input, vn);
  if (q == nullptr || q->empty()) return false;
  Flit& f = q->front();
  if (f.packet != owner.owner_packet || f.ready_cycle > now) return false;

  // Flow control: check downstream capacity.
  if (out.kind == OutKind::kWire) {
    if (!downstream_has_space(out, vn)) return false;
  } else {
    if (r.tx_queue.size() >= cfg_.wi_buffer_depth) return false;
  }

  Flit moved = f;
  q->pop_front();
  ++metrics_.energy.buffer_reads;
  if (tele_ != nullptr && out.kind == OutKind::kWire) ++moved.hops;
  moved.ready_cycle = now + 1;
  if (out.kind == OutKind::kWire && !cfg_.node_cluster.empty() &&
      cfg_.node_cluster[node] != cfg_.node_cluster[out.neighbor]) {
    moved.ready_cycle += cfg_.sync_penalty_cycles;  // VFI boundary crossing
  }
  if (moved.is_head()) moved.down_phase = owner.owner_down_phase;
  ++metrics_.energy.switch_traversals;
  if (out.kind == OutKind::kWire) {
    ++metrics_.energy.wire_hops;
    metrics_.energy.wire_mm_flits += out.length_mm;
    ++edge_flits_[out.edge];
    auto& nb = routers_[out.neighbor];
    nb.in[out.downstream_in].buf[vn].push_back(moved);
    if (moved.dest == out.neighbor) ++ejectable_flits_[out.neighbor];
    ++metrics_.energy.buffer_writes;
    note_departure(node);
    note_arrival(out.neighbor, 1);
  } else {
    // Input queue -> same router's TX queue: resident count is unchanged.
    moved.wi_dest = owner.wi_dest;
    r.tx_queue.push_back(moved);
    ++metrics_.energy.buffer_writes;
  }
  VFIMR_REQUIRE(owner.remaining > 0);
  const std::int32_t moved_input = owner.owner_input;
  if (--owner.remaining == 0) {
    owner.owner_input = -1;
    owner.wi_dest = graph::kInvalidId;
  }
  if (!cfg_.reference_stepping) {
    // The popped queue has a new front (possibly the next packet's head,
    // grantable by another output later this same cycle): update its
    // candidate bit exactly as the naive re-scan would observe it.
    refresh_candidate(node, moved_input, vn);
  }
  return true;
}

void Network::move_through_output(graph::NodeId node, OutPort& out) {
  // One flit per output per cycle; round-robin the virtual networks so
  // neither can starve the other on the shared physical link.
  for (std::size_t k = 0; k < kVns; ++k) {
    const std::size_t vn = (out.vn_rr + k) % kVns;
    if (!cfg_.reference_stepping && out.vn[vn].owner_input == -1 &&
        out.cand[vn] == 0) {
      // Free output with no candidate head: arbitration cannot grant and
      // there is no in-flight packet to continue — the naive probe returns
      // false without touching any state.
      continue;
    }
    if (try_move_vn(node, out, vn)) {
      out.vn_rr = (vn + 1) % kVns;
      return;
    }
  }
}

void Network::service_router(graph::NodeId n) {
  if (!cfg_.reference_stepping) build_candidate_masks(n);
  for (auto& out : routers_[n].out) {
    move_through_output(n, out);
  }
}

void Network::service_router_outputs() {
  if (cfg_.reference_stepping) {
    for (graph::NodeId n = 0; n < routers_.size(); ++n) service_router(n);
    return;
  }
  // A router with no resident flits cannot grant or move anything (every
  // action needs a front flit at this router), and mid-step arrivals carry
  // ready_cycle == now + 1, so skipping routers activated after the refresh
  // matches the naive visit outcome exactly.
  for (graph::NodeId n : active_list_) service_router(n);
}

void Network::step() {
  if (faults_enabled_) {
    // Flush last cycle's lost packets before applying new fault events so a
    // packet can never be counted lost twice (once by the retry-exhaustion
    // purge, once as a casualty of a newly dead element).
    if (!pending_lost_.empty()) {
      purge_packets(pending_lost_);
      pending_lost_.clear();
    }
    apply_fault_events();
    if (degraded_routing_active_) backoff_unroutable_heads();
  }
  if (!cfg_.reference_stepping) refresh_active_list();
  eject_ready_flits();
  service_wireless_channels();
  service_router_outputs();
  ++metrics_.cycles;
}

void Network::run(TrafficGenerator* gen, Cycle cycles) {
  std::vector<Injection> staged;
  for (Cycle c = 0; c < cycles; ++c) {
    if (gen != nullptr) {
      staged.clear();
      gen->tick(metrics_.cycles, staged);
      for (const auto& inj : staged) {
        if (inj.src != inj.dest) {
          inject(inj.src, inj.dest, inj.flits);
        } else {
          // Self-traffic is serviced locally (never enters the network) but
          // still counts toward the generator's offered load.
          ++metrics_.packets_local;
        }
      }
    }
    step();
  }
}

Cycle Network::next_front_ready_cycle() const {
  Cycle earliest = ~Cycle{0};
  auto consider = [&](const std::deque<Flit>& q) {
    if (!q.empty()) earliest = std::min(earliest, q.front().ready_cycle);
  };
  for (graph::NodeId n : active_list_) {
    const auto& r = routers_[n];
    consider(r.source_queue);
    consider(r.tx_queue);
    for (const auto& in : r.in) {
      for (std::size_t vn = 0; vn < kVns; ++vn) consider(in.buf[vn]);
    }
  }
  return earliest;
}

void Network::advance_idle_cycles(Cycle delta) {
  // A naive idle step only rotates the token of every channel that is not
  // mid-packet (service_wireless_channels with nothing ready) and bumps the
  // cycle counter; replay `delta` of them in O(channels).
  metrics_.cycles += delta;
  for (auto& ch : channels_) {
    if (ch.members.empty() || ch.mid_packet) continue;
    ch.token = (ch.token + delta) % ch.members.size();
  }
}

bool Network::drain(Cycle max_cycles) {
  if (cfg_.reference_stepping) {
    for (Cycle c = 0; c < max_cycles && in_flight_flits_ > 0; ++c) step();
    return in_flight_flits_ == 0;
  }
  Cycle budget = max_cycles;
  while (budget > 0 && in_flight_flits_ > 0) {
    refresh_active_list();
    Cycle ready = next_front_ready_cycle();
    if (faults_enabled_ && next_fault_event_ < fault_timeline_.size()) {
      // Never skip past a scheduled fault transition: the idle-skip model
      // (only token rotation advances) stops holding once topology changes.
      ready = std::min(ready, fault_timeline_[next_fault_event_].cycle);
    }
    if (ready > metrics_.cycles) {
      // Every queued flit is waiting on a synchronizer/propagation delay:
      // skip straight to the cycle where the earliest one becomes ready.
      const Cycle delta = std::min<Cycle>(ready - metrics_.cycles, budget);
      advance_idle_cycles(delta);
      budget -= delta;
      continue;
    }
    step();
    --budget;
  }
  return in_flight_flits_ == 0;
}

void Network::apply_fault_events() {
  bool changed = false;
  while (next_fault_event_ < fault_timeline_.size() &&
         fault_timeline_[next_fault_event_].cycle <= metrics_.cycles) {
    const FaultEvent& ev = fault_timeline_[next_fault_event_++];
    std::uint32_t& down =
        ev.kind == faults::NocFaultKind::kLink     ? edge_down_[ev.id]
        : ev.kind == faults::NocFaultKind::kRouter ? router_down_[ev.id]
                                                   : wi_down_[ev.id];
    if (ev.down) {
      ++down;
    } else {
      VFIMR_REQUIRE(down > 0);
      --down;
    }
    ++metrics_.fault_events;
    changed = true;
    if (tele_ != nullptr) {
      tele_fault_events_->add();
      tele_->tracer().instant(
          tele_faults_track_,
          std::string{faults::kind_name(ev.kind)} + (ev.down ? " down" : " up"),
          static_cast<double>(metrics_.cycles),
          {{"id", static_cast<double>(ev.id)}});
    }
  }
  if (changed) recompute_fault_state();
}

void Network::recompute_fault_state() {
  const auto& g = topo_->graph;
  std::vector<PacketId> poisoned;
  bool any_down = false;
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& ed = g.edge(e);
    bool usable = edge_down_[e] == 0 && router_down_[ed.a] == 0 &&
                  router_down_[ed.b] == 0;
    if (usable && ed.kind == graph::EdgeKind::kWireless) {
      usable = wi_down_[ed.a] == 0 && wi_down_[ed.b] == 0;
    }
    if (!usable) {
      any_down = true;
      if (edge_usable_[e]) collect_edge_casualties(e, poisoned);
    }
    edge_usable_[e] = usable;
  }
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    if (router_down_[n] > 0) {
      any_down = true;
      collect_router_casualties(n, poisoned);
    } else if (wi_down_[n] > 0) {
      any_down = true;
      collect_wi_casualties(n, poisoned);
    }
  }
  purge_packets(poisoned);
  reset_route_state();
  if (any_down || degraded_routing_active_) {
    // Rebuild hole-tolerant tables over the surviving edges.  Once any
    // fault has fired these stay active even after every element repairs:
    // in-flight heads may carry down-phase bits from an older tree that the
    // original (hole-intolerant) tables would refuse to route.
    UpDownOptions opts;
    opts.wireless_cost = cfg_.fault_reroute_wireless_cost;
    opts.edge_alive = &edge_usable_;
    opts.allow_unreachable = true;
    degraded_routing_ = std::make_unique<UpDownRouting>(g, opts);
    active_routing_ = degraded_routing_.get();
    degraded_routing_active_ = true;
    ++metrics_.route_rebuilds;
  }
}

bool Network::owner_streamed(RouterState& r, const OwnerState& owner,
                             std::size_t vn) {
  if (owner.owner_input == -1) return false;
  auto* q = input_queue(r, owner.owner_input, vn);
  // If the granted packet's head is still at the front, nothing moved yet.
  return q == nullptr || q->empty() ||
         q->front().packet != owner.owner_packet || !q->front().is_head();
}

void Network::collect_edge_casualties(graph::EdgeId e,
                                      std::vector<PacketId>& out) {
  const auto& ed = topo_->graph.edge(e);
  if (ed.kind == graph::EdgeKind::kWire) {
    // A packet mid-stream over a dead wire link is cut in two and lost.
    // Grants that have not streamed a flit yet are spared: reset_route_state
    // releases them and the packet re-arbitrates around the dead link.
    for (const graph::NodeId n : {ed.a, ed.b}) {
      auto& r = routers_[n];
      for (auto& op : r.out) {
        if (op.kind != OutKind::kWire || op.edge != e) continue;
        for (std::size_t vn = 0; vn < kVns; ++vn) {
          if (owner_streamed(r, op.vn[vn], vn)) {
            out.push_back(op.vn[vn].owner_packet);
          }
        }
      }
    }
    return;
  }
  // Wireless edge: flits committed to the dead hop (queued at either TX with
  // the far end as wi_dest) and packets mid-transmission are lost.
  const graph::NodeId ends[2] = {ed.a, ed.b};
  for (int i = 0; i < 2; ++i) {
    auto& r = routers_[ends[i]];
    const graph::NodeId far = ends[1 - i];
    for (const Flit& f : r.tx_queue) {
      if (f.wi_dest == far) out.push_back(f.packet);
    }
    if (r.wireless_tx >= 0) {
      auto& op = r.out[static_cast<std::size_t>(r.wireless_tx)];
      for (std::size_t vn = 0; vn < kVns; ++vn) {
        if (op.vn[vn].wi_dest == far && owner_streamed(r, op.vn[vn], vn)) {
          out.push_back(op.vn[vn].owner_packet);
        }
      }
    }
  }
}

void Network::collect_router_casualties(graph::NodeId n,
                                        std::vector<PacketId>& out) {
  // A dead router loses everything it holds.  Re-collection while it stays
  // down is a no-op: routes avoid it, injection at it is refused, and its
  // queues were emptied when it first went down.
  auto& r = routers_[n];
  for (const Flit& f : r.source_queue) out.push_back(f.packet);
  for (const Flit& f : r.tx_queue) out.push_back(f.packet);
  for (auto& in : r.in) {
    for (std::size_t vn = 0; vn < kVns; ++vn) {
      for (const Flit& f : in.buf[vn]) out.push_back(f.packet);
    }
  }
  for (auto& op : r.out) {
    for (std::size_t vn = 0; vn < kVns; ++vn) {
      if (op.vn[vn].owner_input != -1) out.push_back(op.vn[vn].owner_packet);
    }
  }
}

void Network::collect_wi_casualties(graph::NodeId n,
                                    std::vector<PacketId>& out) {
  // Only the wireless interface died; the router keeps switching wire
  // traffic.  Flits already queued for (or mid-way through) a wireless
  // transmission are lost; everything else reroutes over the wire mesh.
  auto& r = routers_[n];
  for (const Flit& f : r.tx_queue) out.push_back(f.packet);
  if (r.wireless_tx >= 0) {
    auto& op = r.out[static_cast<std::size_t>(r.wireless_tx)];
    for (std::size_t vn = 0; vn < kVns; ++vn) {
      if (owner_streamed(r, op.vn[vn], vn)) {
        out.push_back(op.vn[vn].owner_packet);
      }
    }
  }
}

void Network::purge_packets(std::vector<PacketId>& ids) {
  if (ids.empty()) return;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  const auto hit = [&](PacketId p) {
    return std::binary_search(ids.begin(), ids.end(), p);
  };
  std::uint64_t removed_total = 0;
  for (graph::NodeId n = 0; n < routers_.size(); ++n) {
    auto& r = routers_[n];
    std::uint64_t removed = 0;
    std::uint32_t ejectable_removed = 0;
    const auto sweep = [&](std::deque<Flit>& q, bool counts_ejectable) {
      for (auto it = q.begin(); it != q.end();) {
        if (hit(it->packet)) {
          ++removed;
          if (counts_ejectable && it->dest == n) ++ejectable_removed;
          it = q.erase(it);
        } else {
          ++it;
        }
      }
    };
    sweep(r.source_queue, false);
    sweep(r.tx_queue, false);
    for (auto& in : r.in) {
      for (std::size_t vn = 0; vn < kVns; ++vn) sweep(in.buf[vn], true);
    }
    for (auto& op : r.out) {
      for (std::size_t vn = 0; vn < kVns; ++vn) {
        auto& owner = op.vn[vn];
        if (owner.owner_input != -1 && hit(owner.owner_packet)) {
          owner.owner_input = -1;
          owner.remaining = 0;
          owner.wi_dest = graph::kInvalidId;
        }
      }
    }
    if (removed > 0) {
      VFIMR_REQUIRE(resident_flits_[n] >= removed);
      resident_flits_[n] -= removed;
      removed_total += removed;
    }
    if (ejectable_removed > 0) {
      VFIMR_REQUIRE(ejectable_flits_[n] >= ejectable_removed);
      ejectable_flits_[n] -= ejectable_removed;
    }
  }
  for (auto& ch : channels_) {
    if (ch.mid_packet && hit(ch.mid_packet_id)) ch.mid_packet = false;
  }
  VFIMR_REQUIRE(in_flight_flits_ >= removed_total);
  in_flight_flits_ -= removed_total;
  metrics_.flits_lost += removed_total;
  metrics_.packets_lost += ids.size();
  if (tele_ != nullptr) {
    tele_lost_->add(ids.size());
    tele_->tracer().instant(tele_faults_track_, "purge",
                            static_cast<double>(metrics_.cycles),
                            {{"packets", static_cast<double>(ids.size())},
                             {"flits", static_cast<double>(removed_total)}});
  }
}

void Network::reset_route_state() {
  ++route_epoch_;  // invalidates every fast-path route memo at once
  for (auto& r : routers_) {
    // Queued heads restart their up*/down* phase: under the new tree the
    // old phase bit is meaningless, and a fresh up-phase route always
    // exists when the destination is reachable at all.
    const auto restart = [](std::deque<Flit>& q) {
      for (auto& f : q) {
        if (f.is_head()) f.down_phase = false;
      }
    };
    restart(r.source_queue);
    restart(r.tx_queue);
    for (auto& in : r.in) {
      for (std::size_t vn = 0; vn < kVns; ++vn) restart(in.buf[vn]);
    }
    for (auto& op : r.out) {
      for (std::size_t vn = 0; vn < kVns; ++vn) {
        auto& owner = op.vn[vn];
        if (owner.owner_input != -1 && !owner_streamed(r, owner, vn)) {
          // Granted but nothing moved: release so the head re-arbitrates
          // under the new tables instead of following a stale decision.
          owner.owner_input = -1;
          owner.remaining = 0;
          owner.wi_dest = graph::kInvalidId;
        }
      }
    }
  }
}

void Network::handle_unreachable(Flit& f) {
  const Cycle now = metrics_.cycles;
  ++metrics_.retry_backoffs;
  if (tele_ != nullptr) tele_backoffs_->add();
  if (f.retries >= cfg_.fault_max_retries) {
    // Retry budget exhausted: declare the packet lost.  ready_cycle = now+1
    // keeps the drain loop stepping so next step()'s purge collects it.
    pending_lost_.push_back(f.packet);
    f.ready_cycle = now + 1;
    return;
  }
  const std::uint32_t shift = std::min<std::uint32_t>(f.retries, 10);
  f.ready_cycle =
      now + (static_cast<Cycle>(cfg_.fault_backoff_base_cycles) << shift);
  ++f.retries;
}

void Network::backoff_unroutable_heads() {
  // Visits every router in id order regardless of stepping mode, so the
  // reference and fast paths observe identical backoff decisions.
  const Cycle now = metrics_.cycles;
  for (graph::NodeId n = 0; n < routers_.size(); ++n) {
    if (resident_flits_[n] == 0) continue;
    auto& r = routers_[n];
    const auto probe = [&](std::deque<Flit>& q) {
      if (q.empty()) return;
      Flit& f = q.front();
      if (!f.is_head() || f.ready_cycle > now || f.dest == n) return;
      const RouteDecision dec =
          active_routing_->next_hop(n, f.dest, f.down_phase, f.vn == 1);
      if (dec.edge == graph::kInvalidId) handle_unreachable(f);
    };
    // Wireless TX queues are excluded: their hop is already reserved and a
    // dead channel purges them outright.
    probe(r.source_queue);
    for (auto& in : r.in) {
      for (std::size_t vn = 0; vn < kVns; ++vn) probe(in.buf[vn]);
    }
  }
}

double Network::max_link_utilization() const {
  if (metrics_.cycles == 0) return 0.0;
  std::uint64_t peak = 0;
  for (std::uint64_t f : edge_flits_) peak = std::max(peak, f);
  return static_cast<double>(peak) / static_cast<double>(metrics_.cycles);
}

}  // namespace vfimr::noc
