#include "noc/network.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "telemetry/telemetry.hpp"

namespace vfimr::noc {

Network::Network(const Topology& topology, const RoutingAlgorithm& routing,
                 SimConfig config, WirelessConfig wireless)
    : topo_{&topology}, routing_{&routing}, cfg_{config} {
  const auto& g = topo_->graph;
  VFIMR_REQUIRE_MSG(cfg_.wire_buffer_depth >= 1,
                    "wire_buffer_depth must be at least 1 flit");
  VFIMR_REQUIRE_MSG(cfg_.wi_buffer_depth >= 1,
                    "wi_buffer_depth must be at least 1 flit");
  routers_.resize(g.node_count());
  edge_flits_.assign(g.edge_count(), 0);
  resident_flits_.assign(g.node_count(), 0);
  ejectable_flits_.assign(g.node_count(), 0);
  active_flags_.assign(g.node_count(), false);
  channels_.resize(static_cast<std::size_t>(
      std::max(wireless.channel_count, 0)));
  if (!cfg_.node_cluster.empty()) {
    VFIMR_REQUIRE(cfg_.node_cluster.size() == g.node_count());
  }

  // Wire ports, one input + one output per incident wire edge.
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    auto& r = routers_[n];
    for (graph::EdgeId e : g.incident(n)) {
      const auto& ed = g.edge(e);
      if (ed.kind != graph::EdgeKind::kWire) continue;
      InPort in;
      in.capacity = cfg_.wire_buffer_depth;
      in.via_edge = e;
      r.in.push_back(std::move(in));
      OutPort out;
      out.kind = OutKind::kWire;
      out.edge = e;
      out.neighbor = g.other_end(e, n);
      out.length_mm = ed.length_mm;
      r.out.push_back(out);
    }
  }

  setup_wireless(wireless);

  // The fast-path candidate masks hold one bit per input slot + source.
  for (const auto& r : routers_) {
    VFIMR_REQUIRE_MSG(r.in.size() + 1 <= 16,
                      "router has too many input ports for the candidate "
                      "bitmask fast path");
  }

  // Resolve downstream input-port indices for wire outputs.
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    for (auto& out : routers_[n].out) {
      if (out.kind != OutKind::kWire) continue;
      const auto& nb = routers_[out.neighbor];
      bool found = false;
      for (std::size_t i = 0; i < nb.in.size(); ++i) {
        if (nb.in[i].via_edge == out.edge) {
          out.downstream_in = static_cast<std::uint32_t>(i);
          found = true;
          break;
        }
      }
      VFIMR_REQUIRE(found);
    }
  }

  setup_telemetry();

  active_routing_ = routing_;
  if (!cfg_.faults.empty()) {
    faults_enabled_ = true;
    VFIMR_REQUIRE(cfg_.fault_backoff_base_cycles >= 1);
    edge_down_.assign(g.edge_count(), 0);
    router_down_.assign(g.node_count(), 0);
    wi_down_.assign(g.node_count(), 0);
    edge_usable_.assign(g.edge_count(), true);
    build_fault_timeline();
  }
}

void Network::setup_telemetry() {
  tele_ = cfg_.telemetry;
  if (tele_ == nullptr) return;
  const std::string& label = cfg_.telemetry_label;
  auto& m = tele_->metrics();
  tele_latency_ = &m.histogram(label + ".noc.latency_cycles", 0.0, 512.0, 64);
  tele_hops_ = &m.histogram(label + ".noc.hops", 0.0, 32.0, 32);
  tele_queue_depth_ =
      &m.histogram(label + ".noc.source_queue_depth", 0.0, 64.0, 32);
  tele_backoffs_ = &m.counter(label + ".noc.retry_backoffs");
  tele_lost_ = &m.counter(label + ".noc.packets_lost");
  tele_fault_events_ = &m.counter(label + ".noc.fault_events");
  tele_packets_track_ = tele_->tracer().track(label, "NoC packets (sampled)");
  tele_faults_track_ = tele_->tracer().track(label, "NoC faults");
  tele_sample_every_ = std::max<std::uint64_t>(
      1, tele_->config().noc_packet_sample_every);
}

void Network::inject(graph::NodeId src, graph::NodeId dest,
                     std::uint32_t flits) {
  VFIMR_REQUIRE(src < routers_.size() && dest < routers_.size());
  VFIMR_REQUIRE_MSG(src != dest, "self-traffic never enters the network");
  VFIMR_REQUIRE(flits >= 1);
  if (faults_enabled_ && router_down_[src] > 0) {
    // The source's router is down: the packet is offered and immediately
    // lost.  Conservation: injected flits == ejected + lost + in flight.
    ++metrics_.packets_injected;
    ++metrics_.packets_lost;
    metrics_.flits_lost += flits;
    return;
  }
  const PacketId id = next_packet_++;
  auto& q = routers_[src].source_queue;
  for (std::uint32_t s = 0; s < flits; ++s) {
    Flit f;
    f.packet = id;
    f.src = src;
    f.dest = dest;
    f.seq = s;
    f.size = flits;
    f.inject_cycle = metrics_.cycles;
    f.ready_cycle = metrics_.cycles;
    q.push_back(f);
  }
  ++metrics_.packets_injected;
  in_flight_flits_ += flits;
  note_arrival(src, flits);
  if (tele_ != nullptr) {
    tele_queue_depth_->add(static_cast<double>(q.size()));
  }
}

void Network::note_arrival(graph::NodeId n, std::uint64_t flits) {
  resident_flits_[n] += flits;
  if (!active_flags_[n]) {
    active_flags_[n] = true;
    newly_active_.push_back(n);
  }
}

void Network::note_departure(graph::NodeId n) {
  VFIMR_REQUIRE(resident_flits_[n] > 0);
  --resident_flits_[n];
}

void Network::refresh_active_list() {
  // Merge the staged activations (sorted) into the sorted list, then drop
  // routers that emptied out.  Both lists are duplicate-free thanks to
  // active_flags_.
  if (!newly_active_.empty()) {
    std::sort(newly_active_.begin(), newly_active_.end());
    const auto mid = active_list_.insert(
        active_list_.end(), newly_active_.begin(), newly_active_.end());
    std::inplace_merge(active_list_.begin(), mid, active_list_.end());
    newly_active_.clear();
  }
  std::erase_if(active_list_, [&](graph::NodeId n) {
    if (resident_flits_[n] > 0) return false;
    active_flags_[n] = false;
    return true;
  });
}

std::deque<Flit>* Network::input_queue(RouterState& r, std::int32_t idx,
                                       std::size_t vn) {
  if (idx == kSourceInput) {
    // Injection queue carries only VN0 packets.
    return vn == 0 ? &r.source_queue : nullptr;
  }
  VFIMR_REQUIRE(idx >= 0 && static_cast<std::size_t>(idx) < r.in.size());
  return &r.in[static_cast<std::size_t>(idx)].buf[vn];
}

std::uint32_t Network::output_for_edge(const RouterState& r,
                                       graph::EdgeId e) const {
  for (std::size_t i = 0; i < r.out.size(); ++i) {
    if (r.out[i].kind == OutKind::kWire && r.out[i].edge == e) {
      return static_cast<std::uint32_t>(i);
    }
  }
  VFIMR_REQUIRE_MSG(false, "no output port for edge");
  return 0;
}

bool Network::downstream_has_space(const OutPort& out, std::size_t vn) const {
  VFIMR_REQUIRE(out.kind == OutKind::kWire);
  const auto& nb = routers_[out.neighbor];
  const auto& in = nb.in[out.downstream_in];
  return in.buf[vn].size() < in.capacity;
}

void Network::eject_router(graph::NodeId n, Cycle now) {
  auto& r = routers_[n];
  auto try_eject = [&](std::deque<Flit>& q) {
    if (q.empty()) return;
    Flit& f = q.front();
    if (f.dest != n || f.ready_cycle > now) return;
    ++metrics_.energy.buffer_reads;
    ++metrics_.flits_ejected;
    --in_flight_flits_;
    if (f.is_tail()) {
      ++metrics_.packets_ejected;
      metrics_.packet_latency.add(static_cast<double>(now - f.inject_cycle));
      if (tele_ != nullptr) {
        const double latency = static_cast<double>(now - f.inject_cycle);
        tele_latency_->add(latency);
        tele_hops_->add(static_cast<double>(f.hops));
        if (f.packet % tele_sample_every_ == 0) {
          tele_->tracer().complete(
              tele_packets_track_,
              "pkt " + std::to_string(f.src) + "->" + std::to_string(f.dest),
              static_cast<double>(f.inject_cycle), latency,
              {{"hops", static_cast<double>(f.hops)},
               {"flits", static_cast<double>(f.size)}});
        }
      }
    }
    q.pop_front();
    VFIMR_REQUIRE(ejectable_flits_[n] > 0);
    --ejectable_flits_[n];
    note_departure(n);
  };
  for (auto& in : r.in) {
    for (std::size_t vn = 0; vn < kVns; ++vn) try_eject(in.buf[vn]);
  }
}

void Network::eject_ready_flits() {
  const Cycle now = metrics_.cycles;
  if (cfg_.reference_stepping) {
    for (graph::NodeId n = 0; n < routers_.size(); ++n) eject_router(n, now);
    return;
  }
  for (graph::NodeId n : active_list_) {
    // Through-traffic-only routers have nothing the eject stage could take;
    // the naive probe of every input buffer would find no dest == n front.
    if (ejectable_flits_[n] == 0) continue;
    eject_router(n, now);
  }
}

std::int32_t Network::arbitrate(graph::NodeId node, std::uint32_t out_idx,
                                std::size_t vn) {
  auto& r = routers_[node];
  auto& out = r.out[out_idx];
  auto& owner = out.vn[vn];
  const Cycle now = metrics_.cycles;
  const auto candidates = static_cast<std::uint32_t>(r.in.size()) + 1;
  for (std::uint32_t k = 0; k < candidates; ++k) {
    const std::uint32_t slot = (owner.rr_next + k) % candidates;
    const std::int32_t idx = slot == static_cast<std::uint32_t>(r.in.size())
                                 ? kSourceInput
                                 : static_cast<std::int32_t>(slot);
    auto* q = input_queue(r, idx, vn);
    if (q == nullptr || q->empty()) continue;
    const Flit& f = q->front();
    if (!f.is_head() || f.ready_cycle > now || f.dest == node) continue;
    VFIMR_REQUIRE(f.vn == vn);
    const RouteDecision dec =
        active_routing_->next_hop(node, f.dest, f.down_phase, f.vn == 1);
    // Fault hole: the destination is unreachable right now.  Not a
    // candidate; the backoff pre-pass owns the retry/loss bookkeeping.
    if (dec.edge == graph::kInvalidId) continue;
    const auto& ed = topo_->graph.edge(dec.edge);
    std::uint32_t target = 0;
    graph::NodeId wi_dest = graph::kInvalidId;
    if (ed.kind == graph::EdgeKind::kWireless) {
      VFIMR_REQUIRE_MSG(r.wireless_tx >= 0,
                        "route uses wireless at a non-WI node");
      VFIMR_REQUIRE_MSG(f.size <= cfg_.wi_buffer_depth,
                        "packet larger than the WI buffer cannot cross a "
                        "wireless link");
      VFIMR_REQUIRE_MSG(f.vn == 0,
                        "route takes a second wireless hop (layered routing "
                        "supports one wireless segment per packet)");
      // Virtual cut-through at the wireless boundary: admit a packet into
      // the TX queue only when the whole packet fits.  Together with
      // whole-packet channel reservation (service_wireless_channels) this
      // decouples the wireless layer and keeps the token MAC deadlock-free.
      if (r.tx_queue.size() + f.size > cfg_.wi_buffer_depth) continue;
      target = static_cast<std::uint32_t>(r.wireless_tx);
      wi_dest = topo_->graph.other_end(dec.edge, node);
    } else {
      target = output_for_edge(r, dec.edge);
    }
    if (target != out_idx) continue;
    // Grant: this input streams the whole packet through `out` on `vn`.
    owner.owner_input = idx;
    owner.owner_packet = f.packet;
    owner.remaining = f.size;
    owner.wi_dest = wi_dest;
    owner.owner_down_phase = dec.down_phase;
    owner.rr_next = (slot + 1) % candidates;
    return idx;
  }
  return -1;
}

std::int32_t Network::candidate_target(graph::NodeId node, std::int32_t idx,
                                       std::size_t vn) {
  auto& r = routers_[node];
  auto* q = input_queue(r, idx, vn);
  if (q == nullptr || q->empty()) return -1;
  Flit& f = q->front();
  if (!f.is_head() || f.ready_cycle > metrics_.cycles || f.dest == node) {
    return -1;
  }
  VFIMR_REQUIRE(f.vn == vn);
  if (f.route_node != node || f.route_epoch != route_epoch_) {
    // First probe of this head at this router (or the tables were rebuilt
    // after a fault): resolve the route once and memoize it on the flit
    // (next_hop is pure in (node, dest, phase, vn) within a route epoch).
    const RouteDecision dec =
        active_routing_->next_hop(node, f.dest, f.down_phase, f.vn == 1);
    // Fault hole — same non-candidate treatment as the reference
    // arbitrate(); nothing is memoized so the next probe re-resolves.
    if (dec.edge == graph::kInvalidId) return -1;
    const auto& ed = topo_->graph.edge(dec.edge);
    if (ed.kind == graph::EdgeKind::kWireless) {
      VFIMR_REQUIRE_MSG(r.wireless_tx >= 0,
                        "route uses wireless at a non-WI node");
      VFIMR_REQUIRE_MSG(f.size <= cfg_.wi_buffer_depth,
                        "packet larger than the WI buffer cannot cross a "
                        "wireless link");
      VFIMR_REQUIRE_MSG(f.vn == 0,
                        "route takes a second wireless hop (layered routing "
                        "supports one wireless segment per packet)");
      f.route_out = r.wireless_tx;
      f.route_wi_dest = topo_->graph.other_end(dec.edge, node);
    } else {
      f.route_out = static_cast<std::int32_t>(output_for_edge(r, dec.edge));
      f.route_wi_dest = graph::kInvalidId;
    }
    f.route_down_phase = dec.down_phase;
    f.route_node = node;
    f.route_epoch = route_epoch_;
  }
  // Same wireless admission rule as the reference arbitrate(): a candidate
  // whose packet does not fit the TX queue right now is no candidate.
  if (f.route_wi_dest != graph::kInvalidId &&
      r.tx_queue.size() + f.size > cfg_.wi_buffer_depth) {
    return -1;
  }
  return f.route_out;
}

void Network::refresh_candidate(graph::NodeId node, std::int32_t idx,
                                std::size_t vn) {
  auto& r = routers_[node];
  const std::uint32_t slot = idx == kSourceInput
                                 ? static_cast<std::uint32_t>(r.in.size())
                                 : static_cast<std::uint32_t>(idx);
  const std::uint16_t bit = static_cast<std::uint16_t>(1u << slot);
  const std::int32_t target = candidate_target(node, idx, vn);
  for (std::size_t o = 0; o < r.out.size(); ++o) {
    if (static_cast<std::int32_t>(o) == target) {
      r.out[o].cand[vn] |= bit;
    } else {
      r.out[o].cand[vn] &= static_cast<std::uint16_t>(~bit);
    }
  }
}

void Network::build_candidate_masks(graph::NodeId node) {
  auto& r = routers_[node];
  for (auto& out : r.out) {
    out.cand[0] = 0;
    out.cand[1] = 0;
  }
  const std::uint32_t inputs = static_cast<std::uint32_t>(r.in.size());
  for (std::size_t vn = 0; vn < kVns; ++vn) {
    for (std::uint32_t i = 0; i < inputs; ++i) {
      if (r.in[i].buf[vn].empty()) continue;  // cheap guard, no call
      const std::int32_t target =
          candidate_target(node, static_cast<std::int32_t>(i), vn);
      if (target >= 0) {
        r.out[static_cast<std::size_t>(target)].cand[vn] |=
            static_cast<std::uint16_t>(1u << i);
      }
    }
    if (vn == 0 && !r.source_queue.empty()) {
      const std::int32_t target = candidate_target(node, kSourceInput, vn);
      if (target >= 0) {
        r.out[static_cast<std::size_t>(target)].cand[vn] |=
            static_cast<std::uint16_t>(1u << inputs);
      }
    }
  }
}

std::int32_t Network::arbitrate_fast(graph::NodeId node, std::uint32_t out_idx,
                                     std::size_t vn) {
  auto& r = routers_[node];
  auto& out = r.out[out_idx];
  auto& owner = out.vn[vn];
  const std::uint16_t mask = out.cand[vn];
  if (mask == 0) return -1;
  const auto candidates = static_cast<std::uint32_t>(r.in.size()) + 1;
  for (std::uint32_t k = 0; k < candidates; ++k) {
    const std::uint32_t slot = (owner.rr_next + k) % candidates;
    if ((mask & (1u << slot)) == 0) continue;
    const std::int32_t idx = slot == static_cast<std::uint32_t>(r.in.size())
                                 ? kSourceInput
                                 : static_cast<std::int32_t>(slot);
    // The mask bit guarantees a grantable, route-memoized front head.
    const Flit& f = input_queue(r, idx, vn)->front();
    owner.owner_input = idx;
    owner.owner_packet = f.packet;
    owner.remaining = f.size;
    owner.wi_dest = f.route_wi_dest;
    owner.owner_down_phase = f.route_down_phase;
    owner.rr_next = (slot + 1) % candidates;
    return idx;
  }
  return -1;
}

bool Network::try_move_vn(graph::NodeId node, OutPort& out, std::size_t vn) {
  auto& r = routers_[node];
  auto& owner = out.vn[vn];
  const Cycle now = metrics_.cycles;
  if (owner.owner_input == -1) {
    const auto out_idx = static_cast<std::uint32_t>(&out - r.out.data());
    const std::int32_t granted = cfg_.reference_stepping
                                     ? arbitrate(node, out_idx, vn)
                                     : arbitrate_fast(node, out_idx, vn);
    if (granted < 0) return false;
  }
  auto* q = input_queue(r, owner.owner_input, vn);
  if (q == nullptr || q->empty()) return false;
  Flit& f = q->front();
  if (f.packet != owner.owner_packet || f.ready_cycle > now) return false;

  // Flow control: check downstream capacity.
  if (out.kind == OutKind::kWire) {
    if (!downstream_has_space(out, vn)) return false;
  } else {
    if (r.tx_queue.size() >= cfg_.wi_buffer_depth) return false;
  }

  Flit moved = f;
  q->pop_front();
  ++metrics_.energy.buffer_reads;
  if (tele_ != nullptr && out.kind == OutKind::kWire) ++moved.hops;
  moved.ready_cycle = now + 1;
  if (out.kind == OutKind::kWire && !cfg_.node_cluster.empty() &&
      cfg_.node_cluster[node] != cfg_.node_cluster[out.neighbor]) {
    moved.ready_cycle += cfg_.sync_penalty_cycles;  // VFI boundary crossing
  }
  if (moved.is_head()) moved.down_phase = owner.owner_down_phase;
  ++metrics_.energy.switch_traversals;
  if (out.kind == OutKind::kWire) {
    ++metrics_.energy.wire_hops;
    metrics_.energy.wire_mm_flits += out.length_mm;
    ++edge_flits_[out.edge];
    auto& nb = routers_[out.neighbor];
    nb.in[out.downstream_in].buf[vn].push_back(moved);
    if (moved.dest == out.neighbor) ++ejectable_flits_[out.neighbor];
    ++metrics_.energy.buffer_writes;
    note_departure(node);
    note_arrival(out.neighbor, 1);
  } else {
    // Input queue -> same router's TX queue: resident count is unchanged.
    moved.wi_dest = owner.wi_dest;
    r.tx_queue.push_back(moved);
    ++metrics_.energy.buffer_writes;
  }
  VFIMR_REQUIRE(owner.remaining > 0);
  const std::int32_t moved_input = owner.owner_input;
  if (--owner.remaining == 0) {
    owner.owner_input = -1;
    owner.wi_dest = graph::kInvalidId;
  }
  if (!cfg_.reference_stepping) {
    // The popped queue has a new front (possibly the next packet's head,
    // grantable by another output later this same cycle): update its
    // candidate bit exactly as the naive re-scan would observe it.
    refresh_candidate(node, moved_input, vn);
  }
  return true;
}

void Network::move_through_output(graph::NodeId node, OutPort& out) {
  // One flit per output per cycle; round-robin the virtual networks so
  // neither can starve the other on the shared physical link.
  for (std::size_t k = 0; k < kVns; ++k) {
    const std::size_t vn = (out.vn_rr + k) % kVns;
    if (!cfg_.reference_stepping && out.vn[vn].owner_input == -1 &&
        out.cand[vn] == 0) {
      // Free output with no candidate head: arbitration cannot grant and
      // there is no in-flight packet to continue — the naive probe returns
      // false without touching any state.
      continue;
    }
    if (try_move_vn(node, out, vn)) {
      out.vn_rr = (vn + 1) % kVns;
      return;
    }
  }
}

void Network::service_router(graph::NodeId n) {
  if (!cfg_.reference_stepping) build_candidate_masks(n);
  for (auto& out : routers_[n].out) {
    move_through_output(n, out);
  }
}

void Network::service_router_outputs() {
  if (cfg_.reference_stepping) {
    for (graph::NodeId n = 0; n < routers_.size(); ++n) service_router(n);
    return;
  }
  // A router with no resident flits cannot grant or move anything (every
  // action needs a front flit at this router), and mid-step arrivals carry
  // ready_cycle == now + 1, so skipping routers activated after the refresh
  // matches the naive visit outcome exactly.
  for (graph::NodeId n : active_list_) service_router(n);
}

void Network::step() {
  if (faults_enabled_) {
    // Flush last cycle's lost packets before applying new fault events so a
    // packet can never be counted lost twice (once by the retry-exhaustion
    // purge, once as a casualty of a newly dead element).
    if (!pending_lost_.empty()) {
      purge_packets(pending_lost_);
      pending_lost_.clear();
    }
    apply_fault_events();
    if (degraded_routing_active_) backoff_unroutable_heads();
  }
  if (!cfg_.reference_stepping) refresh_active_list();
  eject_ready_flits();
  service_wireless_channels();
  service_router_outputs();
  ++metrics_.cycles;
}

void Network::run(TrafficGenerator* gen, Cycle cycles) {
  std::vector<Injection> staged;
  for (Cycle c = 0; c < cycles; ++c) {
    if (gen != nullptr) {
      staged.clear();
      gen->tick(metrics_.cycles, staged);
      for (const auto& inj : staged) {
        if (inj.src != inj.dest) {
          inject(inj.src, inj.dest, inj.flits);
        } else {
          // Self-traffic is serviced locally (never enters the network) but
          // still counts toward the generator's offered load.
          ++metrics_.packets_local;
        }
      }
    }
    step();
  }
}

Cycle Network::next_front_ready_cycle() const {
  Cycle earliest = ~Cycle{0};
  auto consider = [&](const std::deque<Flit>& q) {
    if (!q.empty()) earliest = std::min(earliest, q.front().ready_cycle);
  };
  for (graph::NodeId n : active_list_) {
    const auto& r = routers_[n];
    consider(r.source_queue);
    consider(r.tx_queue);
    for (const auto& in : r.in) {
      for (std::size_t vn = 0; vn < kVns; ++vn) consider(in.buf[vn]);
    }
  }
  return earliest;
}

bool Network::drain(Cycle max_cycles) {
  if (cfg_.reference_stepping) {
    for (Cycle c = 0; c < max_cycles && in_flight_flits_ > 0; ++c) step();
    return in_flight_flits_ == 0;
  }
  Cycle budget = max_cycles;
  while (budget > 0 && in_flight_flits_ > 0) {
    refresh_active_list();
    Cycle ready = next_front_ready_cycle();
    if (faults_enabled_ && next_fault_event_ < fault_timeline_.size()) {
      // Never skip past a scheduled fault transition: the idle-skip model
      // (only token rotation advances) stops holding once topology changes.
      ready = std::min(ready, fault_timeline_[next_fault_event_].cycle);
    }
    if (ready > metrics_.cycles) {
      // Every queued flit is waiting on a synchronizer/propagation delay:
      // skip straight to the cycle where the earliest one becomes ready.
      const Cycle delta = std::min<Cycle>(ready - metrics_.cycles, budget);
      advance_idle_cycles(delta);
      budget -= delta;
      continue;
    }
    step();
    --budget;
  }
  return in_flight_flits_ == 0;
}

double Network::max_link_utilization() const {
  if (metrics_.cycles == 0) return 0.0;
  std::uint64_t peak = 0;
  for (std::uint64_t f : edge_flits_) peak = std::max(peak, f);
  return static_cast<double>(peak) / static_cast<double>(metrics_.cycles);
}

}  // namespace vfimr::noc
