#pragma once
// Physical NoC topology: connectivity graph plus planar switch placement.
// Positions matter because wireline energy scales with physical link length,
// and because the small-world wiring model ([19] in the paper) inserts links
// with probability decaying with distance.

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace vfimr::noc {

struct Point {
  double x_mm = 0.0;
  double y_mm = 0.0;
};

double distance_mm(const Point& a, const Point& b);

struct Topology {
  graph::Graph graph;
  std::vector<Point> positions;  ///< one per node, switch center

  std::size_t node_count() const { return graph.node_count(); }

  /// Euclidean distance between two switches.
  double node_distance_mm(graph::NodeId a, graph::NodeId b) const;

  /// Adds a wire edge whose length is the Euclidean switch distance.
  graph::EdgeId add_wire(graph::NodeId a, graph::NodeId b);

  /// Adds a wireless (mm-wave) edge; length is irrelevant for energy.
  graph::EdgeId add_wireless(graph::NodeId a, graph::NodeId b);
};

/// Regular W x H mesh, row-major node ids, neighbors at `pitch_mm` spacing.
/// This is the paper's baseline NVFI/VFI mesh interconnect.
Topology make_mesh(std::size_t width, std::size_t height,
                   double pitch_mm = 2.5);

/// Node id <-> mesh coordinate helpers (row-major).
inline std::size_t mesh_x(graph::NodeId n, std::size_t width) {
  return n % width;
}
inline std::size_t mesh_y(graph::NodeId n, std::size_t width) {
  return n / width;
}
inline graph::NodeId mesh_node(std::size_t x, std::size_t y,
                               std::size_t width) {
  return static_cast<graph::NodeId>(y * width + x);
}

/// Switch placement only (no edges): W x H grid of positions, for building
/// custom (small-world) wireline networks over the same floorplan.
Topology make_placed_grid(std::size_t width, std::size_t height,
                          double pitch_mm = 2.5);

}  // namespace vfimr::noc
