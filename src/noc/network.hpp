#pragma once
// Cycle-level wormhole NoC simulator.
//
// Models, per the paper's experimental setup (§7):
//  * wormhole switching with per-input-port FIFO buffers, depth 2 flits on
//    wire ports and depth 8 on wireless-interface (WI) ports;
//  * one flit per wire link per cycle;
//  * three non-overlapping mm-wave wireless channels arbitrated by a
//    rotating token; the token holder transmits one flit per cycle and keeps
//    the token until its current packet's tail has been sent;
//  * deterministic table routing (XY on the mesh, up*/down* on irregular
//    WiNoC topologies) — both deadlock-free;
//  * event counters for the power models: switch traversals, wire
//    millimeters traversed, wireless flits, buffer accesses.
//
// The simulator is single-threaded and deterministic given the injected
// traffic.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "faults/faults.hpp"
#include "noc/flit.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"

namespace vfimr::telemetry {
class Counter;
class HistogramMetric;
class TelemetrySink;
}  // namespace vfimr::telemetry

namespace vfimr::noc {

/// A wireless interface: one per equipped switch, tuned to one channel.
struct WirelessInterface {
  graph::NodeId node = graph::kInvalidId;
  int channel = 0;
};

struct WirelessConfig {
  int channel_count = 3;
  std::vector<WirelessInterface> interfaces;
};

struct SimConfig {
  std::uint32_t wire_buffer_depth = 2;  ///< paper: "buffer depth of two flits"
  std::uint32_t wi_buffer_depth = 8;    ///< paper: WI ports have depth eight
  /// VFI domain of each node (empty = single clock domain).  A flit crossing
  /// a domain boundary pays `sync_penalty_cycles` extra (mixed-clock FIFO
  /// synchronizers) — the "unnecessary latency overhead" of inter-VFI
  /// exchanges over conventional meshes that motivates the WiNoC (§1).
  std::vector<std::size_t> node_cluster;
  std::uint32_t sync_penalty_cycles = 1;
  /// Disable the active-router worklist and the bulk idle-cycle skip and
  /// visit every router every cycle (the naive reference loops).  The fast
  /// path is bit-identical to the reference — this flag exists so the A/B
  /// property tests can prove it, and as an escape hatch while debugging.
  bool reference_stepping = false;
  /// Fault injection: link/router/WI failures (and repairs, for transient
  /// faults) that the stepping loop applies at their scheduled cycles.  An
  /// empty schedule bypasses the fault machinery entirely — the simulation
  /// is then bit-identical to one without it.  See DESIGN.md §9.
  faults::FaultSchedule faults;
  /// A head flit whose route is a fault hole waits (base << retries) cycles
  /// between attempts; after `fault_max_retries` backoffs the packet is
  /// declared lost and purged from the network.
  std::uint32_t fault_max_retries = 8;
  std::uint32_t fault_backoff_base_cycles = 8;
  /// Wireless-hop cost used when rebuilding degraded up*/down* tables.
  double fault_reroute_wireless_cost = 2.5;
  /// Telemetry sink (nullable, caller-owned; see src/telemetry/telemetry.hpp).
  /// When null, every instrumentation site is a single pointer test and the
  /// simulation is bit-identical to the pre-telemetry code.
  telemetry::TelemetrySink* telemetry = nullptr;
  /// Prefix for this network's metric names and trace tracks, e.g.
  /// "Kmeans/VFI WiNoC".
  std::string telemetry_label = "noc";
};

/// Raw event counts consumed by the power library.
struct EnergyCounters {
  std::uint64_t switch_traversals = 0;  ///< flit crossing a router crossbar
  std::uint64_t wire_hops = 0;          ///< flit over a wireline link
  double wire_mm_flits = 0.0;           ///< sum of link length per wire hop
  std::uint64_t wireless_flits = 0;     ///< flit over a wireless channel
  std::uint64_t buffer_writes = 0;
  std::uint64_t buffer_reads = 0;
};

struct Metrics {
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_ejected = 0;
  /// Self-traffic (src == dest) offered by a generator.  Local packets never
  /// enter the network, but conservation checks against generator offered
  /// load must include them: offered == packets_injected + packets_local.
  std::uint64_t packets_local = 0;
  std::uint64_t flits_ejected = 0;
  std::uint64_t cycles = 0;
  Accumulator packet_latency;  ///< inject -> tail-eject, in cycles
  EnergyCounters energy;
  /// Fault-injection counters — all zero on fault-free runs (DESIGN.md §9).
  std::uint64_t fault_events = 0;    ///< timeline transitions applied
  std::uint64_t route_rebuilds = 0;  ///< degraded route-table recomputations
  std::uint64_t retry_backoffs = 0;  ///< unroutable-head backoff waits
  std::uint64_t packets_lost = 0;    ///< packets declared lost and purged
  std::uint64_t flits_lost = 0;      ///< flits removed by purges

  double avg_latency() const { return packet_latency.mean(); }
  /// Fraction of hop traversals carried by wireless links.
  double wireless_utilization() const {
    const double total = static_cast<double>(energy.wire_hops) +
                         static_cast<double>(energy.wireless_flits);
    return total > 0.0 ? static_cast<double>(energy.wireless_flits) / total
                       : 0.0;
  }
  /// Ejected flits per node per cycle.
  double throughput(std::size_t nodes) const {
    if (cycles == 0 || nodes == 0) return 0.0;
    return static_cast<double>(flits_ejected) /
           (static_cast<double>(cycles) * static_cast<double>(nodes));
  }
};

struct Injection {
  graph::NodeId src = graph::kInvalidId;
  graph::NodeId dest = graph::kInvalidId;
  std::uint32_t flits = 1;
};

/// Produces injections cycle by cycle; implementations in noc/traffic.hpp.
class TrafficGenerator {
 public:
  virtual ~TrafficGenerator() = default;
  virtual void tick(Cycle now, std::vector<Injection>& out) = 0;
};

class Network {
 public:
  /// `topology` and `routing` must outlive the Network.  Wireless edges in
  /// the topology require a matching WirelessConfig entry at both endpoints
  /// sharing one channel.
  Network(const Topology& topology, const RoutingAlgorithm& routing,
          SimConfig config = {}, WirelessConfig wireless = {});

  /// Queue a packet of `flits` flits at `src`'s source queue.
  void inject(graph::NodeId src, graph::NodeId dest, std::uint32_t flits);

  /// Advance one cycle.
  void step();

  /// Run `cycles` cycles, pulling traffic from `gen` each cycle (nullable).
  void run(TrafficGenerator* gen, Cycle cycles);

  /// Step until all in-flight flits eject, at most `max_cycles` more cycles.
  /// Returns true if the network fully drained.
  bool drain(Cycle max_cycles);

  const Metrics& metrics() const { return metrics_; }
  Cycle now() const { return metrics_.cycles; }
  std::uint64_t in_flight_flits() const { return in_flight_flits_; }
  std::size_t node_count() const { return topo_->node_count(); }

  /// Flits carried per topology edge (wire and wireless), for hotspot
  /// analysis.  Indexed by graph::EdgeId.
  const std::vector<std::uint64_t>& edge_flits() const { return edge_flits_; }

  /// Peak per-link utilization: max over edges of flits / elapsed cycles.
  double max_link_utilization() const;

 private:
  /// Virtual networks on wired ports: VN0 carries packets before their
  /// wireless hop, VN1 after (layered routing; see Flit::vn).
  static constexpr std::size_t kVns = 2;

  struct InPort {
    std::deque<Flit> buf[kVns];
    std::uint32_t capacity = 2;  ///< per virtual network
    graph::EdgeId via_edge = graph::kInvalidId;  ///< feeding wire edge
    bool is_wireless_rx = false;
  };

  enum class OutKind : std::uint8_t { kWire, kWirelessTx };

  /// Wormhole ownership of one output for one virtual network.
  struct OwnerState {
    std::int32_t owner_input = -1;  ///< -1 = free; source queue = kSourceInput
    PacketId owner_packet = 0;
    std::uint32_t remaining = 0;
    graph::NodeId wi_dest = graph::kInvalidId;  ///< wireless hop target
    bool owner_down_phase = false;              ///< phase after taking edge
    std::uint32_t rr_next = 0;                  ///< round-robin pointer
  };

  struct OutPort {
    OutKind kind = OutKind::kWire;
    graph::EdgeId edge = graph::kInvalidId;  ///< wire edge (kWire only)
    graph::NodeId neighbor = graph::kInvalidId;
    std::uint32_t downstream_in = 0;  ///< input-port index at neighbor (wire)
    double length_mm = 0.0;
    OwnerState vn[kVns];
    std::size_t vn_rr = 0;  ///< flit-level link arbitration between VNs
    /// Fast-path candidate mask, rebuilt each serviced cycle: bit `slot` is
    /// set iff that input slot's front flit is a head, ready, routed to this
    /// output on this VN, and (for wireless) admissible right now.  Slot
    /// r.in.size() is the source queue.  arbitrate() then reduces to a
    /// round-robin first-set-bit scan — decisions identical to the naive
    /// all-queue probe.
    std::uint16_t cand[kVns] = {0, 0};
  };

  struct RouterState {
    std::vector<InPort> in;
    std::vector<OutPort> out;
    std::deque<Flit> source_queue;  ///< unbounded injection queue (VN0)
    std::deque<Flit> tx_queue;      ///< wireless TX buffer (depth 8)
    std::int32_t wireless_tx = -1;  ///< index into `out`, -1 if no WI
    std::int32_t wireless_rx = -1;  ///< index into `in`, -1 if no WI
    std::int32_t wi_channel = -1;
    // Map edge id -> output index, lazily scanned (few ports per router).
  };

  struct Channel {
    std::vector<graph::NodeId> members;  ///< WI nodes, in id order
    std::size_t token = 0;
    bool mid_packet = false;
    PacketId mid_packet_id = 0;  ///< packet holding the reservation
  };

  static constexpr std::int32_t kSourceInput = -2;

  /// Constructor helper (network_wireless.cpp): registers the wireless
  /// interfaces, builds the token channels and validates wireless edges.
  void setup_wireless(const WirelessConfig& wireless);

  void eject_ready_flits();
  void service_wireless_channels();
  void service_router_outputs();
  void eject_router(graph::NodeId n, Cycle now);
  void service_router(graph::NodeId n);
  // --- Active-router worklist (see DESIGN.md, "NoC fast path") ---------
  // Invariant: after refresh_active_list(), active_list_ holds exactly the
  // routers with resident_flits_ > 0, sorted ascending — the same visit
  // order as the naive all-router loops, so float accumulation order (and
  // therefore every metric) is preserved bit-for-bit.  Routers whose count
  // is zero perform no state or metric changes when visited, which is why
  // skipping them is exact.
  void note_arrival(graph::NodeId n, std::uint64_t flits);
  void note_departure(graph::NodeId n);
  void refresh_active_list();
  /// Earliest ready_cycle over the front flits of every occupied queue
  /// (in-port buffers, source queues, wireless TX queues) of every active
  /// router.  All simulator actions operate on front flits, so no state
  /// other than idle token rotation can change before this cycle.
  Cycle next_front_ready_cycle() const;
  /// Advance `delta` cycles during which every front flit waits: only the
  /// cycle counter and the idle token rotation of non-mid-packet wireless
  /// channels advance — exactly what `delta` naive steps would do.
  void advance_idle_cycles(Cycle delta);
  std::int32_t arbitrate(graph::NodeId node, std::uint32_t out_idx,
                         std::size_t vn);
  std::int32_t arbitrate_fast(graph::NodeId node, std::uint32_t out_idx,
                              std::size_t vn);
  /// Resolve (and memoize on the flit) the route of the front head of input
  /// slot `idx` on `vn`; returns the target output index or -1 if the front
  /// is absent, not a grantable head, or a wireless candidate that does not
  /// fit the TX queue right now.
  std::int32_t candidate_target(graph::NodeId node, std::int32_t idx,
                                std::size_t vn);
  /// Recompute the candidate bit of input slot `idx` on `vn` in every
  /// output's mask (called after that queue's front changed mid-cycle).
  void refresh_candidate(graph::NodeId node, std::int32_t idx,
                         std::size_t vn);
  void build_candidate_masks(graph::NodeId node);
  std::deque<Flit>* input_queue(RouterState& r, std::int32_t idx,
                                std::size_t vn);
  std::uint32_t output_for_edge(const RouterState& r, graph::EdgeId e) const;
  bool downstream_has_space(const OutPort& out, std::size_t vn) const;
  bool try_move_vn(graph::NodeId node, OutPort& out, std::size_t vn);
  void move_through_output(graph::NodeId node, OutPort& out);

  // --- Fault injection & graceful degradation (DESIGN.md §9) ------------
  /// One timeline transition: an element goes down (fault strikes) or comes
  /// back up (a transient fault repairs).
  struct FaultEvent {
    Cycle cycle = 0;
    faults::NocFaultKind kind = faults::NocFaultKind::kLink;
    std::uint32_t id = 0;
    bool down = true;
  };
  void build_fault_timeline();
  /// Apply every timeline transition with cycle <= now (called at the top of
  /// step() when a schedule is present).
  void apply_fault_events();
  /// Recompute the per-edge usability mask from the down counters, purge
  /// packets caught on newly dead elements and rebuild the routing tables.
  void recompute_fault_state();
  void collect_edge_casualties(graph::EdgeId e, std::vector<PacketId>& out);
  void collect_router_casualties(graph::NodeId n, std::vector<PacketId>& out);
  void collect_wi_casualties(graph::NodeId n, std::vector<PacketId>& out);
  /// True when the grant has already streamed at least one flit (a wormhole
  /// cannot re-route a partially forwarded packet).
  bool owner_streamed(RouterState& r, const OwnerState& owner, std::size_t vn);
  /// Remove every flit of `ids` from the network, reset their wormhole
  /// grants and wireless reservations, and account them as lost.
  void purge_packets(std::vector<PacketId>& ids);
  /// After a route change: invalidate every route memo, restart the
  /// up*/down* phase of queued heads and release grants that have not
  /// streamed yet so they re-arbitrate under the new tables.
  void reset_route_state();
  /// Pre-pass over every router (identical in reference and fast stepping):
  /// ready front heads whose route is a hole take an exponential-backoff
  /// wait, and after fault_max_retries waits the packet is declared lost.
  void backoff_unroutable_heads();
  void handle_unreachable(Flit& f);

  const Topology* topo_;
  const RoutingAlgorithm* routing_;
  SimConfig cfg_;
  std::vector<RouterState> routers_;
  std::vector<Channel> channels_;
  std::vector<std::uint64_t> edge_flits_;
  std::vector<std::uint64_t> resident_flits_;  ///< flits queued at router n
  /// Flits sitting in router n's input buffers whose dest is n (i.e. flits
  /// the eject stage could consume).  Lets eject skip the per-queue probes
  /// on the vast majority of routers that hold only through-traffic.
  std::vector<std::uint32_t> ejectable_flits_;
  std::vector<graph::NodeId> active_list_;     ///< sorted, resident > 0
  std::vector<graph::NodeId> newly_active_;    ///< staged for next refresh
  std::vector<bool> active_flags_;  ///< n in active_list_ or newly_active_
  Metrics metrics_;
  std::uint64_t in_flight_flits_ = 0;
  PacketId next_packet_ = 0;

  // Fault state.  `active_routing_` points at `routing_` until the first
  // fault fires, then at `degraded_routing_` (hole-tolerant tables over the
  // surviving edges) for the rest of the run — in-flight heads may carry
  // stale down-phase bits that the original tables would refuse to route.
  bool faults_enabled_ = false;
  bool degraded_routing_active_ = false;
  std::vector<FaultEvent> fault_timeline_;  ///< sorted by cycle
  std::size_t next_fault_event_ = 0;
  std::vector<std::uint32_t> edge_down_;    ///< overlapping-fault counts
  std::vector<std::uint32_t> router_down_;
  std::vector<std::uint32_t> wi_down_;
  std::vector<bool> edge_usable_;           ///< effective liveness mask
  std::unique_ptr<UpDownRouting> degraded_routing_;
  const RoutingAlgorithm* active_routing_ = nullptr;
  std::uint32_t route_epoch_ = 0;           ///< bumped per table rebuild
  std::vector<PacketId> pending_lost_;      ///< purged at the next step()

  // Telemetry (all null when cfg_.telemetry is null).  Instruments are
  // resolved once in the constructor so hot-path sites never take the
  // registry mutex; trace timestamps use 1 NoC cycle == 1 µs.
  void setup_telemetry();
  telemetry::TelemetrySink* tele_ = nullptr;
  telemetry::HistogramMetric* tele_latency_ = nullptr;     ///< tail-eject cycles
  telemetry::HistogramMetric* tele_hops_ = nullptr;        ///< per-packet hops
  telemetry::HistogramMetric* tele_queue_depth_ = nullptr; ///< source q at inject
  telemetry::Counter* tele_backoffs_ = nullptr;
  telemetry::Counter* tele_lost_ = nullptr;
  telemetry::Counter* tele_fault_events_ = nullptr;
  std::uint32_t tele_packets_track_ = 0;  ///< sampled packet journeys
  std::uint32_t tele_faults_track_ = 0;   ///< fault/purge instants
  std::uint64_t tele_sample_every_ = 0;   ///< packet-journey sampling stride
};

}  // namespace vfimr::noc
