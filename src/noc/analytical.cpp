#include "noc/analytical.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/require.hpp"

namespace vfimr::noc {

namespace {

/// M/D/1 mean waiting time for a queue with arrival rate `lambda` packets
/// per cycle and deterministic service time `service` cycles per packet
/// (the packet's F flits at one flit per cycle).  rho is clamped at
/// `max_rho` so saturated links report a large-but-finite wait.
double md1_wait(double lambda, double service, double max_rho) {
  const double rho = std::min(lambda * service, max_rho);
  if (rho <= 0.0) return 0.0;
  return rho * service / (2.0 * (1.0 - rho));
}

/// One fault timeline transition, expanded from the schedule.
struct Transition {
  std::uint64_t cycle = 0;
  std::uint64_t until = 0;  ///< down transitions: when the outage ends
  faults::NocFaultKind kind = faults::NocFaultKind::kLink;
  std::uint32_t id = 0;
  bool down = true;
};

}  // namespace

AnalyticalNocModel::AnalyticalNocModel(const Topology& topology,
                                       const RoutingAlgorithm& routing,
                                       const WirelessConfig& wireless,
                                       AnalyticalConfig config)
    : topo_{&topology},
      routing_{&routing},
      wireless_{wireless},
      cfg_{std::move(config)},
      n_{topology.node_count()} {
  VFIMR_REQUIRE_MSG(cfg_.sim_cycles > 0, "analytical window must be positive");
  node_channel_.assign(n_, -1);
  for (const auto& wi : wireless_.interfaces) {
    VFIMR_REQUIRE(wi.node < n_);
    node_channel_[wi.node] = wi.channel;
  }
  build_slices();
}

AnalyticalNocModel::~AnalyticalNocModel() = default;

void AnalyticalNocModel::build_slices() {
  const auto& g = topo_->graph;
  const std::uint64_t window = cfg_.sim_cycles;

  // Expand the schedule into down/up transitions clipped to the window.
  std::vector<Transition> transitions;
  for (const auto& f : cfg_.faults.events()) {
    if (f.at_cycle >= window) continue;
    transitions.push_back(
        {f.at_cycle, f.until_cycle, f.kind, f.id, /*down=*/true});
    if (f.until_cycle < window) {
      transitions.push_back(
          {f.until_cycle, f.until_cycle, f.kind, f.id, /*down=*/false});
    }
  }
  std::stable_sort(transitions.begin(), transitions.end(),
                   [](const Transition& a, const Transition& b) {
                     return a.cycle < b.cycle;
                   });
  transitions_ = static_cast<double>(transitions.size());

  // Slice boundaries: 0, every transition instant, window end.
  std::vector<std::uint64_t> cuts;
  cuts.push_back(0);
  for (const auto& t : transitions) cuts.push_back(t.cycle);
  cuts.push_back(window);
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  // Memo for the expensive per-state artifacts, keyed on the liveness
  // masks (plus the post-fault routing regime).
  struct SharedState {
    std::shared_ptr<const UpDownRouting> degraded;
    std::shared_ptr<const std::vector<Route>> routes;
  };
  std::unordered_map<std::string, SharedState> state_cache;

  // Overlapping faults on one element stack, exactly like the simulator's
  // down counters.
  std::vector<std::uint32_t> edge_down(g.edge_count(), 0);
  std::vector<std::uint32_t> router_down(n_, 0);
  std::vector<std::uint32_t> wi_down(n_, 0);
  std::size_t next_transition = 0;
  bool post_fault = false;

  edge_usable_all_.assign(g.edge_count(), true);
  const std::size_t channels =
      static_cast<std::size_t>(std::max(wireless_.channel_count, 0));

  for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
    const std::uint64_t begin = cuts[c];
    const std::uint64_t end = cuts[c + 1];
    // Apply every transition scheduled at this boundary.
    double router_outage = 0.0;
    std::vector<graph::NodeId> routers_died;
    while (next_transition < transitions.size() &&
           transitions[next_transition].cycle <= begin) {
      const Transition& t = transitions[next_transition++];
      auto& counter = t.kind == faults::NocFaultKind::kLink
                          ? edge_down[t.id]
                          : t.kind == faults::NocFaultKind::kRouter
                                ? router_down[t.id]
                                : wi_down[t.id];
      if (t.down) {
        ++counter;
        if (t.kind == faults::NocFaultKind::kRouter && t.id < n_) {
          routers_died.push_back(t.id);
          router_outage = std::max(
              router_outage, static_cast<double>(t.until - t.cycle));
        }
      } else if (counter > 0) {
        --counter;
      }
      post_fault = true;
    }
    if (end <= begin) continue;

    Slice slice;
    slice.cycles = static_cast<double>(end - begin);
    slice.start = static_cast<double>(begin);
    slice.routers_died = std::move(routers_died);
    slice.router_outage = router_outage;
    slice.router_usable.assign(n_, true);
    for (graph::NodeId r = 0; r < n_; ++r) {
      slice.router_usable[r] = router_down[r] == 0;
    }
    slice.edge_usable.assign(g.edge_count(), true);
    for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
      const auto& edge = g.edge(e);
      bool usable = edge_down[e] == 0 && slice.router_usable[edge.a] &&
                    slice.router_usable[edge.b];
      if (usable && edge.kind == graph::EdgeKind::kWireless) {
        usable = wi_down[edge.a] == 0 && wi_down[edge.b] == 0;
      }
      slice.edge_usable[e] = usable;
      if (!usable) edge_usable_all_[e] = false;
    }
    slice.channel_members.assign(channels, 0);
    for (const auto& wi : wireless_.interfaces) {
      if (wi_down[wi.node] == 0 && slice.router_usable[wi.node] &&
          wi.channel >= 0 &&
          static_cast<std::size_t>(wi.channel) < channels) {
        ++slice.channel_members[static_cast<std::size_t>(wi.channel)];
      }
    }
    // Mirror the simulator: once any fault has fired, routing runs on
    // hole-tolerant up*/down* tables over the surviving edges for the rest
    // of the run — even after every element repairs.  Both the table build
    // and the 4096 route walks are memoized on the liveness masks:
    // repairs step the timeline back into already-visited states, so the
    // shared_ptr cache turns O(transitions) table builds into
    // O(distinct states).
    std::string state_key;
    state_key.reserve(1 + slice.edge_usable.size() + n_);
    state_key.push_back(post_fault ? '1' : '0');
    for (const bool b : slice.edge_usable) state_key.push_back(b ? '1' : '0');
    for (const bool b : slice.router_usable) {
      state_key.push_back(b ? '1' : '0');
    }
    const auto cached = state_cache.find(state_key);
    if (cached != state_cache.end()) {
      slice.degraded = cached->second.degraded;
      slice.routes = cached->second.routes;
      degraded_ = degraded_ || slice.degraded != nullptr;
    } else {
      if (post_fault) {
        UpDownOptions opts;
        opts.wireless_cost = cfg_.fault_reroute_wireless_cost;
        opts.edge_alive = &slice.edge_usable;
        opts.allow_unreachable = true;
        slice.degraded = std::make_shared<const UpDownRouting>(g, opts);
        degraded_ = true;
      }
      auto routes = std::make_shared<std::vector<Route>>();
      routes->assign(n_ * n_, Route{});
      slice.routes = routes;
      for (graph::NodeId s = 0; s < n_; ++s) {
        for (graph::NodeId d = 0; d < n_; ++d) {
          if (s == d) continue;
          (*routes)[static_cast<std::size_t>(s) * n_ + d] =
              walk_route(slice, s, d);
        }
      }
      state_cache.emplace(std::move(state_key),
                          SharedState{slice.degraded, slice.routes});
    }
    slices_.push_back(std::move(slice));
  }
  VFIMR_REQUIRE(!slices_.empty());
}

AnalyticalNocModel::Route AnalyticalNocModel::walk_route(
    const Slice& slice, graph::NodeId s, graph::NodeId d) const {
  Route route;
  if (!slice.router_usable[s] || !slice.router_usable[d]) return route;
  const RoutingAlgorithm& algo =
      slice.degraded
          ? static_cast<const RoutingAlgorithm&>(*slice.degraded)
          : *routing_;
  const auto& g = topo_->graph;
  const bool clustered = cfg_.node_cluster.size() == n_;
  graph::NodeId at = s;
  bool down_phase = false;
  bool wireless_used = false;
  // Deterministic tables cannot loop, but a defensive guard keeps a buggy
  // routing implementation from hanging the model.
  std::size_t guard = 4 * n_ + 16;
  while (at != d) {
    if (guard-- == 0) return Route{};
    const RouteDecision dec = algo.next_hop(at, d, down_phase, wireless_used);
    if (dec.edge == graph::kInvalidId) return Route{};  // fault hole
    if (!slice.edge_usable[dec.edge]) return Route{};
    const auto& edge = g.edge(dec.edge);
    Hop hop;
    hop.edge = dec.edge;
    hop.from = at;
    hop.to = g.other_end(dec.edge, at);
    hop.wireless = edge.kind == graph::EdgeKind::kWireless;
    hop.sync_crossing =
        !hop.wireless && clustered &&
        cfg_.node_cluster[hop.from] != cfg_.node_cluster[hop.to];
    if (hop.wireless) {
      ++route.wireless_hops;
      wireless_used = true;
    } else {
      ++route.wire_hops;
      route.wire_mm += edge.length_mm;
    }
    if (hop.sync_crossing) ++route.sync_crossings;
    route.hops.push_back(hop);
    down_phase = dec.down_phase;
    at = hop.to;
  }
  route.reachable = true;
  return route;
}

bool AnalyticalNocModel::reachable(graph::NodeId s, graph::NodeId d) const {
  if (s == d) return true;
  return slices_.front().route(s, d, n_).reachable;
}

std::uint32_t AnalyticalNocModel::route_hops(graph::NodeId s,
                                             graph::NodeId d) const {
  if (s == d) return 0;
  const Route& r = slices_.front().route(s, d, n_);
  return r.reachable ? r.wire_hops + r.wireless_hops : 0;
}

Metrics AnalyticalNocModel::evaluate(const Matrix& rates,
                                     std::uint32_t packet_flits,
                                     AnalyticalDetail* detail) const {
  VFIMR_REQUIRE_MSG(rates.rows() == n_ && rates.cols() == n_,
                    "traffic matrix must be node_count x node_count");
  VFIMR_REQUIRE_MSG(packet_flits >= 1, "packets need at least one flit");
  const double flits = static_cast<double>(packet_flits);
  const double window = static_cast<double>(cfg_.sim_cycles);
  const std::size_t dir_links = topo_->graph.edge_count() * 2;

  Metrics m;
  m.cycles = cfg_.sim_cycles;

  double local_rate = 0.0;
  for (graph::NodeId v = 0; v < n_; ++v) {
    const double r = rates(v, v);
    if (r > 0.0) local_rate += r;
  }

  // Cross-slice accumulation (counters in expected-events space, rounded
  // once at the end).
  double lost_expected = 0.0;
  double switch_events = 0.0;
  double wire_hop_events = 0.0;
  double wire_mm_events = 0.0;
  double wireless_events = 0.0;
  double buffer_read_events = 0.0;
  double buffer_write_events = 0.0;
  double max_link_rho = 0.0;
  double max_channel_rho = 0.0;
  // Per-pair aggregation for the detail view.
  Matrix pair_latency_sum;
  Matrix pair_queueing_sum;
  Matrix pair_weight;
  if (detail != nullptr) {
    pair_latency_sum = Matrix{n_, n_};
    pair_queueing_sum = Matrix{n_, n_};
    pair_weight = Matrix{n_, n_};
    detail->dir_link_packets_per_cycle.assign(dir_links, 0.0);
    detail->dir_link_utilization.assign(dir_links, 0.0);
    detail->channel_utilization.assign(
        static_cast<std::size_t>(std::max(wireless_.channel_count, 0)), 0.0);
  }

  // Cumulative unroutable-head retry budget: base * (2^retries - 1) cycles
  // of backoff before the simulator declares a stranded packet lost.
  const double backoff_budget =
      static_cast<double>(cfg_.fault_backoff_base_cycles) *
      (static_cast<double>(1ull << std::min(cfg_.fault_max_retries, 30u)) -
       1.0);

  std::vector<double> dir_load(dir_links);
  std::vector<double> channel_load;
  for (std::size_t si = 0; si < slices_.size(); ++si) {
    const Slice& slice = slices_[si];
    const double cycles = slice.cycles;
    // Pass 1: offered load per directional link and wireless channel under
    // this slice's routes.
    std::fill(dir_load.begin(), dir_load.end(), 0.0);
    channel_load.assign(slice.channel_members.size(), 0.0);
    double ejected_rate = 0.0;
    double lost_rate = 0.0;
    double reach_rate = 0.0;  ///< total reachable packets/cycle
    double hop_rate = 0.0;    ///< total (packets/cycle) x hops
    for (graph::NodeId s = 0; s < n_; ++s) {
      for (graph::NodeId d = 0; d < n_; ++d) {
        const double rate = rates(s, d);
        if (rate <= 0.0 || s == d) continue;
        const Route& rt =
            slice.route(s, d, n_);
        if (!rt.reachable) continue;
        reach_rate += rate;
        hop_rate +=
            rate * static_cast<double>(rt.wire_hops + rt.wireless_hops);
        for (const Hop& hop : rt.hops) {
          if (hop.wireless) {
            const int ch = node_channel_[hop.from];
            if (ch >= 0 &&
                static_cast<std::size_t>(ch) < channel_load.size()) {
              channel_load[static_cast<std::size_t>(ch)] += rate;
            }
          } else {
            const auto& edge = topo_->graph.edge(hop.edge);
            const std::size_t dir = hop.from == edge.a ? 0 : 1;
            dir_load[static_cast<std::size_t>(hop.edge) * 2 + dir] += rate;
          }
        }
      }
    }
    for (std::size_t l = 0; l < dir_links; ++l) {
      max_link_rho = std::max(max_link_rho, dir_load[l] * flits);
      if (detail != nullptr) {
        detail->dir_link_packets_per_cycle[l] +=
            dir_load[l] * cycles / window;
        detail->dir_link_utilization[l] =
            std::max(detail->dir_link_utilization[l], dir_load[l] * flits);
      }
    }
    for (std::size_t ch = 0; ch < channel_load.size(); ++ch) {
      max_channel_rho = std::max(max_channel_rho, channel_load[ch] * flits);
      if (detail != nullptr && ch < detail->channel_utilization.size()) {
        detail->channel_utilization[ch] = std::max(
            detail->channel_utilization[ch], channel_load[ch] * flits);
      }
    }

    // Pass 2: per-pair latency under this slice's loads.
    double latency_weighted = 0.0;

    // Transition-freeze charge.  A packet in flight TOWARD a router at the
    // instant that router dies is phase-stranded: its head parks in a
    // transit input buffer burning the retry ladder, and wormhole
    // backpressure freezes that port's whole upstream cone, trapping
    // unrelated traffic until repair or ladder purge (a single frozen port
    // can snare a sizable fraction of the network's offered load).  The
    // expected number of such heads is the dest-rate times the journey
    // time — usually well below one, so this is the *expected* jam mass of
    // a rare event; single realizations scatter around it (the xval suite
    // averages the cycle-accurate reference over traffic seeds for
    // exactly this reason).  Later dest-dead injections strand at their
    // source queues instead (charged below).  A death at cycle 0 strands
    // nothing (empty network).
    if (si > 0 && !slice.routers_died.empty() &&
        cfg_.transition_freeze_factor > 0.0) {
      const Slice& prev = slices_[si - 1];
      double heads_in_flight = 0.0;
      for (const graph::NodeId r : slice.routers_died) {
        for (graph::NodeId s = 0; s < n_; ++s) {
          if (s == r) continue;
          const double rate = rates(s, r);
          if (rate <= 0.0) continue;
          const Route& rp = prev.route(s, r, n_);
          if (!rp.reachable) continue;
          heads_in_flight +=
              rate * (static_cast<double>(rp.wire_hops +
                                          2 * rp.wireless_hops) +
                      flits);
        }
      }
      const double hold = std::min(backoff_budget, slice.router_outage);
      const double span = std::min(window - slice.start, hold);
      // Each frozen head's cone catches a calibrated fraction of the whole
      // offered load over the arrival span; trapped packets release at the
      // purge, so their mean wait is the residual hold.
      const double freeze_mass = cfg_.transition_freeze_factor *
                                 heads_in_flight * reach_rate * span *
                                 (hold - span / 2.0);
      latency_weighted += freeze_mass / cycles;
    }
    // Stranded flow per source, for the source-queue head-of-line charge
    // (aggregated so a dead router stranding several destinations of one
    // source blocks that source's queue once, not once per destination).
    std::vector<double> stranded_rate(n_, 0.0);
    std::vector<double> stranded_h(n_, 0.0);  ///< rate-weighted head wait
    // Expected transitions a packet in flight overlaps: journeys are short
    // relative to the window, so the per-packet disruption is the timeline
    // density times the journey length.
    const double disruption_per_cycle =
        transitions_ > 0.0
            ? (transitions_ / window) * cfg_.transition_disruption_cycles
            : 0.0;
    for (graph::NodeId s = 0; s < n_; ++s) {
      for (graph::NodeId d = 0; d < n_; ++d) {
        const double rate = rates(s, d);
        if (rate <= 0.0 || s == d) continue;
        const std::size_t idx = static_cast<std::size_t>(s) * n_ + d;
        const Route& rt = (*slice.routes)[idx];
        if (!rt.reachable) {
          // Stranded: the destination is unreachable in this slice.  The
          // simulator parks the head in exponential backoff; if a route
          // re-forms within the retry budget the packet is delivered
          // *late*, otherwise it is purged as lost.  Packets inject
          // uniformly over the slice, so the repair wait is the residual
          // slice time plus every fully-unreachable slice in between.
          double mid = 0.0;
          std::size_t j = si + 1;
          while (j < slices_.size() &&
                 !(*slices_[j].routes)[idx].reachable) {
            mid += slices_[j].cycles;
            ++j;
          }
          const bool recovers =
              j < slices_.size() && backoff_budget > mid;

          // Head-of-line blocking: heads injected during the outage park
          // at the front of the source queue, stalling the source's other
          // traffic until repair or purge (charged per source after the
          // pair loop).  Heads caught mid-flight by the transition are the
          // transition-freeze charge above.
          const double hol_h =
              recovers ? std::min(backoff_budget, mid + cycles / 2.0)
                       : backoff_budget;
          stranded_rate[s] += rate;
          stranded_h[s] += rate * hol_h;

          if (!recovers) {
            lost_rate += rate;
            continue;
          }
          double delivered_frac = 1.0;
          double expected_wait = mid + cycles / 2.0;
          if (backoff_budget < mid + cycles) {
            delivered_frac = (backoff_budget - mid) / cycles;
            expected_wait = (mid + backoff_budget) / 2.0;
          }
          lost_rate += rate * (1.0 - delivered_frac);
          const double drate = rate * delivered_frac;
          const Route& rj = (*slices_[j].routes)[idx];
          const double base_j =
              static_cast<double>(rj.wire_hops) +
              2.0 * static_cast<double>(rj.wireless_hops) +
              static_cast<double>(rj.sync_crossings) *
                  static_cast<double>(cfg_.sync_penalty_cycles) +
              (flits - 1.0) + cfg_.base_overhead_cycles;
          const double wait = std::min(
              cfg_.backoff_overshoot * expected_wait, backoff_budget);
          const double latency = base_j + wait;
          ejected_rate += drate;
          latency_weighted += drate * latency;
          if (detail != nullptr) {
            pair_latency_sum(s, d) += latency * cycles;
            pair_queueing_sum(s, d) += wait * cycles;
            pair_weight(s, d) += cycles;
          }
          const double w = static_cast<double>(rj.wire_hops);
          const double wl = static_cast<double>(rj.wireless_hops);
          const double packet_events = drate * flits * cycles;
          switch_events += packet_events * (w + wl);
          wire_hop_events += packet_events * w;
          wire_mm_events += packet_events * rj.wire_mm;
          wireless_events += packet_events * wl;
          buffer_read_events += packet_events * (w + 2.0 * wl + 1.0);
          buffer_write_events += packet_events * (w + 2.0 * wl);
          continue;
        }
        ejected_rate += rate;

        double queueing = 0.0;
        for (const Hop& hop : rt.hops) {
          if (hop.wireless) {
            const int ch = node_channel_[hop.from];
            if (ch >= 0 &&
                static_cast<std::size_t>(ch) < channel_load.size()) {
              const std::size_t c = static_cast<std::size_t>(ch);
              // Token rotation passes one member per idle cycle, so a
              // packet arriving at a random rotation phase waits
              // (members - 1) / 2 on average before channel contention
              // even starts.
              const double members =
                  static_cast<double>(slice.channel_members[c]);
              queueing += members > 1.0 ? (members - 1.0) / 2.0 : 0.0;
              queueing +=
                  md1_wait(channel_load[c], flits, cfg_.max_utilization);
            }
          } else {
            const auto& edge = topo_->graph.edge(hop.edge);
            const std::size_t dir = hop.from == edge.a ? 0 : 1;
            queueing += md1_wait(
                dir_load[static_cast<std::size_t>(hop.edge) * 2 + dir],
                flits, cfg_.max_utilization);
          }
        }
        // Deterministic path delay: one cycle per wire hop, two per
        // wireless hop (input -> TX queue, then the token-granted channel
        // transfer), synchronizer penalties at VFI borders, tail trailing
        // the head by F - 1 cycles, plus the calibrated entry/exit
        // overhead.
        const double base =
            static_cast<double>(rt.wire_hops) +
            2.0 * static_cast<double>(rt.wireless_hops) +
            static_cast<double>(rt.sync_crossings) *
                static_cast<double>(cfg_.sync_penalty_cycles) +
            (flits - 1.0) + cfg_.base_overhead_cycles;
        const double latency =
            (base + queueing) * (1.0 + disruption_per_cycle);
        latency_weighted += rate * latency;
        if (detail != nullptr) {
          pair_latency_sum(s, d) += latency * cycles;
          pair_queueing_sum(s, d) += queueing * cycles;
          pair_weight(s, d) += cycles;
        }

        // Expected event counts, mirroring the simulator's accounting:
        // every hop is a switch traversal; a wireless hop is two buffer
        // stages (input -> TX, TX -> RX); ejection reads the final buffer.
        const double w = static_cast<double>(rt.wire_hops);
        const double wl = static_cast<double>(rt.wireless_hops);
        const double packet_events = rate * flits * cycles;
        switch_events += packet_events * (w + wl);
        wire_hop_events += packet_events * w;
        wire_mm_events += packet_events * rt.wire_mm;
        wireless_events += packet_events * wl;
        buffer_read_events += packet_events * (w + 2.0 * wl + 1.0);
        buffer_write_events += packet_events * (w + 2.0 * wl);
      }
    }

    // Source-queue head-of-line charge: once a stranded head reaches the
    // front of source s's FIFO injection queue, every later injection from
    // s (to any destination) stalls behind it until repair or purge.  The
    // first stranded arrival is Poisson, so the expected blocked span of a
    // slice of length L is L - (1 - e^(-rL)) / r.
    for (graph::NodeId s = 0; s < n_; ++s) {
      const double r = stranded_rate[s];
      if (r <= 0.0) continue;
      const double h = stranded_h[s] / r;
      const double blocked =
          cycles - (1.0 - std::exp(-r * cycles)) / r;
      double other_rate = 0.0;
      for (graph::NodeId o = 0; o < n_; ++o) {
        if (o != s) other_rate += rates(s, o);
      }
      other_rate -= r;
      if (other_rate <= 0.0 || blocked <= 0.0) continue;
      // Strands are SERIAL: each stranded arrival runs its own full retry
      // ladder at the queue front (later dest-dead packets queue behind it
      // and strand in turn when they reach the head), so the expected
      // total block is h times the expected ladder count conditional on at
      // least one strand.  The block runs to completion even past the
      // injection window — the simulator keeps backing heads off during
      // the drain phase, and packets released then still count their full
      // queueing latency.
      const double arrivals = r * cycles;
      const double ladders = arrivals / (1.0 - std::exp(-arrivals));
      const double block = h * ladders;
      // Packets can only be *caught* while injection still runs; `blocked`
      // is the expected injection overlap (first strand to slice end).
      // When the block outlives the overlap, every caught packet waits
      // close to the full block; when arrivals cover it, the mean is half.
      const double wait = block - std::min(block, blocked) / 2.0;
      latency_weighted += cfg_.hol_blocking_factor * other_rate * blocked *
                          wait / cycles;
    }

    const auto slice_packets = static_cast<std::uint64_t>(
        std::llround(ejected_rate * cycles));
    if (slice_packets > 0 && ejected_rate > 0.0) {
      m.packet_latency.add_n(latency_weighted / ejected_rate, slice_packets);
    }
    m.packets_ejected += slice_packets;
    lost_expected += lost_rate * cycles;
  }

  m.flits_ejected = m.packets_ejected * packet_flits;
  m.packets_lost =
      static_cast<std::uint64_t>(std::llround(lost_expected));
  m.flits_lost = m.packets_lost * packet_flits;
  m.packets_injected = m.packets_ejected + m.packets_lost;
  m.packets_local = static_cast<std::uint64_t>(
      std::llround(local_rate * window));
  m.energy.switch_traversals =
      static_cast<std::uint64_t>(std::llround(switch_events));
  m.energy.wire_hops =
      static_cast<std::uint64_t>(std::llround(wire_hop_events));
  m.energy.wire_mm_flits = wire_mm_events;
  m.energy.wireless_flits =
      static_cast<std::uint64_t>(std::llround(wireless_events));
  m.energy.buffer_reads =
      static_cast<std::uint64_t>(std::llround(buffer_read_events));
  m.energy.buffer_writes =
      static_cast<std::uint64_t>(std::llround(buffer_write_events));

  if (detail != nullptr) {
    detail->pair_latency_cycles = Matrix{n_, n_};
    detail->pair_queueing_cycles = Matrix{n_, n_};
    for (graph::NodeId s = 0; s < n_; ++s) {
      for (graph::NodeId d = 0; d < n_; ++d) {
        const double weight = pair_weight(s, d);
        if (weight <= 0.0) continue;
        detail->pair_latency_cycles(s, d) = pair_latency_sum(s, d) / weight;
        detail->pair_queueing_cycles(s, d) =
            pair_queueing_sum(s, d) / weight;
      }
    }
    detail->max_link_utilization = max_link_rho;
    detail->max_channel_utilization = max_channel_rho;
    detail->offered_packets_per_cycle = rates.sum();
    detail->lost_packets_per_cycle = lost_expected / window;
  }
  return m;
}

}  // namespace vfimr::noc
