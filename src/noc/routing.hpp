#pragma once
// Deterministic routing algorithms for the wormhole simulator.
//
// * XyRouting — dimension-ordered routing for the baseline mesh; trivially
//   deadlock-free.
// * UpDownRouting — up*/down* routing for arbitrary (irregular, small-world,
//   wireless-augmented) topologies.  Every edge is oriented toward the root
//   of a BFS spanning tree; a legal route never takes an "up" hop after a
//   "down" hop, which breaks all cyclic channel dependencies.  Routes are
//   shortest *legal* paths and are phase-aware: the head flit carries a
//   single `down_phase` bit.
//
// Both algorithms return graph EdgeIds so the simulator can distinguish wire
// hops from wireless hops.

#include <array>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace vfimr::noc {

struct RouteDecision {
  graph::EdgeId edge = graph::kInvalidId;
  bool down_phase = false;  ///< phase the packet is in after taking `edge`
};

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;

  /// Next hop for a head flit at `node` destined to `dest`.
  /// `down_phase` is the flit's current up*/down* phase (ignored by XY).
  /// `wireless_used` is true once the packet has taken its wireless hop —
  /// the remaining route must then be wire-only (layered routing allows one
  /// wireless segment per packet).
  /// `node != dest` is required; routing to self is the caller's ejection.
  virtual RouteDecision next_hop(graph::NodeId node, graph::NodeId dest,
                                 bool down_phase,
                                 bool wireless_used = false) const = 0;
};

/// Dimension-ordered (X then Y) routing on a row-major W x H mesh.
class XyRouting final : public RoutingAlgorithm {
 public:
  XyRouting(const graph::Graph& mesh, std::size_t width, std::size_t height);

  RouteDecision next_hop(graph::NodeId node, graph::NodeId dest,
                         bool down_phase,
                         bool wireless_used = false) const override;

 private:
  std::size_t width_;
  std::size_t height_;
  // edge_to_[n][0..3]: +x, -x, +y, -y neighbor edge (kInvalidId at borders)
  std::vector<std::array<graph::EdgeId, 4>> edge_to_;
};

/// Construction options for UpDownRouting (fault-degraded instances).
struct UpDownOptions {
  double wireless_cost = 2.5;
  /// Root of the up*/down* order; kInvalidId = max-degree node heuristic.
  graph::NodeId root = graph::kInvalidId;
  /// Optional per-EdgeId liveness mask (size == g.edge_count()); nullptr
  /// means every edge is usable.  Dead edges are excluded from the order,
  /// the cost passes and the tables — the construction routes around them.
  const std::vector<bool>* edge_alive = nullptr;
  /// Tolerate a disconnected (fault-mutilated) topology: instead of
  /// REQUIRE-failing, unreachable (node, dest) pairs are left as table holes
  /// and next_hop reports them with RouteDecision{kInvalidId} so callers can
  /// degrade gracefully (retry / drop) rather than loop or crash.
  bool allow_unreachable = false;
};

/// Up*/down* shortest legal path routing with precomputed per-phase tables.
///
/// Paths are weight-optimal: a wire hop costs 1 and a wireless hop costs
/// `wireless_cost` (default 2.5).  Charging more for wireless hops models
/// the token-arbitration wait of the shared mm-wave channels and reserves
/// their limited bandwidth (one flit per channel per cycle) for routes that
/// save several wire hops — without it, every inter-cluster route piles onto
/// the three channels and they saturate.
class UpDownRouting final : public RoutingAlgorithm {
 public:
  /// Builds tables for `g`; root defaults to the max-degree node, the usual
  /// heuristic for irregular topologies.  Requires a connected graph.
  explicit UpDownRouting(const graph::Graph& g, double wireless_cost = 2.5,
                         graph::NodeId root = graph::kInvalidId);

  /// Fault-aware construction: honours `opts.edge_alive` and, with
  /// `opts.allow_unreachable`, survives topologies that faults have cut
  /// into several components.
  UpDownRouting(const graph::Graph& g, const UpDownOptions& opts);

  /// With `allow_unreachable`, a hole (no legal route) is reported as
  /// RouteDecision{graph::kInvalidId} instead of a REQUIRE failure.
  RouteDecision next_hop(graph::NodeId node, graph::NodeId dest,
                         bool down_phase,
                         bool wireless_used = false) const override;

  graph::NodeId root() const { return root_; }

  /// True when a fresh packet at `s` has a legal route to `d` (always true
  /// for s == d).  On instances built without `allow_unreachable` this is
  /// true for every pair by construction.
  bool reachable(graph::NodeId s, graph::NodeId d) const;

  /// Length (hops) of the deterministic route from s to d. 0 when s == d.
  std::uint32_t route_hops(graph::NodeId s, graph::NodeId d) const;

  /// Number of wireless hops on the deterministic route (0 or 1).
  std::uint32_t route_wireless_hops(graph::NodeId s, graph::NodeId d) const;

 private:
  /// Table entry for one (phase, wireless-budget) routing layer.
  struct Layer {
    std::vector<RouteDecision> table;   // [node * n + dest]
    std::vector<graph::NodeId> next;    // next node per entry
  };

  std::uint32_t walk(graph::NodeId s, graph::NodeId d, bool count_wireless)
      const;

  std::size_t n_ = 0;
  graph::NodeId root_ = 0;
  bool allow_unreachable_ = false;
  // Indexed [budget][phase]: budget 1 = wireless hop still available,
  // budget 0 = wire-only; phase 0 = up*, phase 1 = down*.
  Layer layers_[2][2];
  const graph::Graph* graph_ = nullptr;  // for wireless-hop classification
};

}  // namespace vfimr::noc
