#include "noc/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace vfimr::noc {

std::uint64_t sample_poisson(Rng& rng, double mean) {
  VFIMR_REQUIRE(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    const double v = rng.normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > limit);
  return k - 1;
}

MatrixTraffic::MatrixTraffic(const Matrix& rates, std::uint32_t packet_flits,
                             std::uint64_t seed)
    : packet_flits_{packet_flits}, rng_{seed} {
  VFIMR_REQUIRE(rates.rows() == rates.cols());
  VFIMR_REQUIRE(packet_flits >= 1);
  double running = 0.0;
  for (std::size_t s = 0; s < rates.rows(); ++s) {
    for (std::size_t d = 0; d < rates.cols(); ++d) {
      const double r = rates(s, d);
      VFIMR_REQUIRE_MSG(r >= 0.0, "negative traffic rate");
      if (r <= 0.0 || s == d) continue;
      running += r;
      entries_.push_back(Entry{static_cast<graph::NodeId>(s),
                               static_cast<graph::NodeId>(d), running});
    }
  }
  total_rate_ = running;
}

void MatrixTraffic::tick(Cycle /*now*/, std::vector<Injection>& out) {
  if (entries_.empty()) return;
  const std::uint64_t k = sample_poisson(rng_, total_rate_);
  for (std::uint64_t i = 0; i < k; ++i) {
    const double r = rng_.uniform() * total_rate_;
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), r,
        [](const Entry& e, double v) { return e.cumulative < v; });
    const Entry& e = it == entries_.end() ? entries_.back() : *it;
    out.push_back(Injection{e.src, e.dest, packet_flits_});
  }
}

UniformRandomTraffic::UniformRandomTraffic(std::size_t nodes, double rate,
                                           std::uint32_t packet_flits,
                                           std::uint64_t seed)
    : nodes_{nodes}, rate_{rate}, packet_flits_{packet_flits}, rng_{seed} {
  VFIMR_REQUIRE(nodes >= 2);
  VFIMR_REQUIRE(rate >= 0.0 && rate <= 1.0);
  VFIMR_REQUIRE(packet_flits >= 1);
}

void UniformRandomTraffic::tick(Cycle /*now*/, std::vector<Injection>& out) {
  for (std::size_t n = 0; n < nodes_; ++n) {
    if (!rng_.bernoulli(rate_)) continue;
    auto dest = static_cast<graph::NodeId>(rng_.uniform_u64(nodes_ - 1));
    if (dest >= n) ++dest;  // skip self
    out.push_back(
        Injection{static_cast<graph::NodeId>(n), dest, packet_flits_});
  }
}

namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

unsigned log2_exact(std::size_t n) {
  unsigned b = 0;
  while ((std::size_t{1} << b) < n) ++b;
  return b;
}

}  // namespace

PermutationTraffic::PermutationTraffic(std::size_t nodes, Pattern pattern,
                                       double rate,
                                       std::uint32_t packet_flits,
                                       std::uint64_t seed)
    : nodes_{nodes},
      pattern_{pattern},
      rate_{rate},
      packet_flits_{packet_flits},
      rng_{seed} {
  VFIMR_REQUIRE_MSG(is_power_of_two(nodes),
                    "permutation patterns need a power-of-two node count");
  VFIMR_REQUIRE(rate >= 0.0 && rate <= 1.0);
  VFIMR_REQUIRE(packet_flits >= 1);
  bits_ = log2_exact(nodes);
  if (pattern == Pattern::kTranspose) {
    VFIMR_REQUIRE_MSG(bits_ % 2 == 0,
                      "transpose needs a square (even-bit) layout");
  }
}

graph::NodeId PermutationTraffic::partner(graph::NodeId src) const {
  const auto mask = static_cast<std::uint32_t>(nodes_ - 1);
  switch (pattern_) {
    case Pattern::kTranspose: {
      const unsigned half = bits_ / 2;
      const std::uint32_t lo = src & ((1u << half) - 1);
      const std::uint32_t hi = src >> half;
      return (lo << half) | hi;
    }
    case Pattern::kBitComplement:
      return ~src & mask;
    case Pattern::kBitReverse: {
      std::uint32_t out = 0;
      for (unsigned b = 0; b < bits_; ++b) {
        out = (out << 1) | ((src >> b) & 1u);
      }
      return out;
    }
  }
  VFIMR_REQUIRE(false);
  return 0;
}

void PermutationTraffic::tick(Cycle /*now*/, std::vector<Injection>& out) {
  for (std::size_t n = 0; n < nodes_; ++n) {
    const auto src = static_cast<graph::NodeId>(n);
    const graph::NodeId dest = partner(src);
    if (dest == src) continue;
    if (rng_.bernoulli(rate_)) {
      out.push_back(Injection{src, dest, packet_flits_});
    }
  }
}

HotspotTraffic::HotspotTraffic(std::size_t nodes, graph::NodeId hotspot,
                               double hotspot_fraction, double rate,
                               std::uint32_t packet_flits, std::uint64_t seed)
    : nodes_{nodes},
      hotspot_{hotspot},
      hotspot_fraction_{hotspot_fraction},
      rate_{rate},
      packet_flits_{packet_flits},
      rng_{seed} {
  VFIMR_REQUIRE(nodes >= 2);
  VFIMR_REQUIRE(hotspot < nodes);
  VFIMR_REQUIRE(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0);
  VFIMR_REQUIRE(rate >= 0.0 && rate <= 1.0);
  VFIMR_REQUIRE(packet_flits >= 1);
}

void HotspotTraffic::tick(Cycle /*now*/, std::vector<Injection>& out) {
  for (std::size_t n = 0; n < nodes_; ++n) {
    if (!rng_.bernoulli(rate_)) continue;
    const auto src = static_cast<graph::NodeId>(n);
    graph::NodeId dest = hotspot_;
    if (src == hotspot_ || !rng_.bernoulli(hotspot_fraction_)) {
      do {
        dest = static_cast<graph::NodeId>(rng_.uniform_u64(nodes_));
      } while (dest == src);
    }
    out.push_back(Injection{src, dest, packet_flits_});
  }
}

TraceTraffic::TraceTraffic(std::vector<Event> events)
    : events_{std::move(events)} {
  VFIMR_REQUIRE(std::is_sorted(
      events_.begin(), events_.end(),
      [](const Event& a, const Event& b) { return a.cycle < b.cycle; }));
}

void TraceTraffic::tick(Cycle now, std::vector<Injection>& out) {
  while (next_ < events_.size() && events_[next_].cycle <= now) {
    out.push_back(events_[next_].injection);
    ++next_;
  }
}

}  // namespace vfimr::noc
