#pragma once
// End-to-end WiNoC design flow (§5-§6): thread mapping + small-world wiring
// + wireless overlay, parameterized by the paper's two placement
// methodologies.

#include <vector>

#include "common/matrix.hpp"
#include "noc/network.hpp"
#include "noc/topology.hpp"
#include "winoc/smallworld.hpp"
#include "winoc/thread_mapping.hpp"
#include "winoc/wi_placement.hpp"

namespace vfimr::winoc {

enum class PlacementStrategy {
  kMinHopCount,             ///< SA thread mapping + SA WI placement
  kMaxWirelessUtilization,  ///< center WIs + near-WI thread mapping
};

struct WinocDesign {
  noc::Topology topology;               ///< wireline + wireless edges
  noc::WirelessConfig wireless;         ///< WI/channel configuration
  std::vector<graph::NodeId> thread_to_node;
  std::vector<std::size_t> node_cluster;  ///< quadrant VFI of each switch
  WiPlacement wi_nodes;
  Matrix node_traffic;                  ///< mapped switch-level traffic
};

/// Build the WiNoC for a clustered application.  `thread_cluster[t]` in
/// [0, 4): the Eq. 1 clustering result; cluster c occupies quadrant c.
WinocDesign build_winoc(const Matrix& thread_traffic,
                        const std::vector<std::size_t>& thread_cluster,
                        PlacementStrategy strategy,
                        const SmallWorldParams& params = {});

/// Quadrant VFI id for every switch of the 8x8 die.
std::vector<std::size_t> quadrant_clusters();

}  // namespace vfimr::winoc
