#include "winoc/smallworld.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace vfimr::winoc {

std::size_t quadrant_of(graph::NodeId node, std::size_t width) {
  const std::size_t x = noc::mesh_x(node, width);
  const std::size_t y = noc::mesh_y(node, width);
  const std::size_t half = width / 2;
  return (y / half) * 2 + (x / half);
}

namespace {

/// Candidate undirected edge with its power-law sampling weight.
struct Candidate {
  graph::NodeId a;
  graph::NodeId b;
  double weight;
};

double length_weight(const noc::Topology& topo, graph::NodeId a,
                     graph::NodeId b, double alpha) {
  const double d = std::max(topo.node_distance_mm(a, b), 1e-6);
  return std::pow(d, -alpha);
}

/// Sample an index from `weights` of live candidates (weight 0 = dead).
std::size_t sample(Rng& rng, const std::vector<Candidate>& cands,
                   const std::vector<bool>& alive) {
  double total = 0.0;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (alive[i]) total += cands[i].weight;
  }
  VFIMR_REQUIRE_MSG(total > 0.0, "no viable small-world candidate edges");
  double r = rng.uniform() * total;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (!alive[i]) continue;
    if (r < cands[i].weight) return i;
    r -= cands[i].weight;
  }
  for (std::size_t i = cands.size(); i-- > 0;) {
    if (alive[i]) return i;
  }
  VFIMR_REQUIRE(false);
  return 0;
}

}  // namespace

noc::Topology build_wireline(const Matrix& node_traffic,
                             const std::vector<std::size_t>& node_cluster,
                             const SmallWorldParams& params, Rng& rng) {
  const std::size_t n = node_cluster.size();
  VFIMR_REQUIRE_MSG(n == 64, "wireline builder targets the 8x8 die");
  VFIMR_REQUIRE(node_traffic.rows() == n && node_traffic.cols() == n);
  VFIMR_REQUIRE(params.k_max >= 3);

  noc::Topology topo = noc::make_placed_grid(8, 8);
  const std::size_t clusters =
      1 + *std::max_element(node_cluster.begin(), node_cluster.end());

  std::vector<std::vector<graph::NodeId>> members(clusters);
  for (graph::NodeId v = 0; v < n; ++v) {
    members[node_cluster[v]].push_back(v);
  }

  std::vector<std::size_t> degree(n, 0);
  auto add_edge = [&](graph::NodeId a, graph::NodeId b) {
    topo.add_wire(a, b);
    ++degree[a];
    ++degree[b];
  };

  // ---- Intra-cluster wiring: randomized power-law spanning tree, then
  // extra power-law links up to <k_intra> average degree.
  for (std::size_t c = 0; c < clusters; ++c) {
    const auto& mem = members[c];
    VFIMR_REQUIRE(mem.size() >= 2);
    const std::size_t target_edges = static_cast<std::size_t>(
        std::llround(params.k_intra * static_cast<double>(mem.size()) / 2.0));
    VFIMR_REQUIRE_MSG(target_edges + 1 >= mem.size(),
                      "k_intra below connectivity threshold (1.875 for 16)");

    // Randomized Prim: grow the tree picking frontier edges by l^-alpha.
    std::vector<bool> in_tree(mem.size(), false);
    in_tree[0] = true;
    std::size_t tree_nodes = 1;
    while (tree_nodes < mem.size()) {
      std::vector<Candidate> frontier;
      for (std::size_t i = 0; i < mem.size(); ++i) {
        if (!in_tree[i]) continue;
        for (std::size_t j = 0; j < mem.size(); ++j) {
          if (in_tree[j]) continue;
          if (degree[mem[i]] >= params.k_max) continue;
          frontier.push_back(Candidate{
              mem[i], mem[j], length_weight(topo, mem[i], mem[j], params.alpha)});
        }
      }
      VFIMR_REQUIRE_MSG(!frontier.empty(),
                        "k_max too small to connect a cluster");
      std::vector<bool> alive(frontier.size(), true);
      const auto pick = frontier[sample(rng, frontier, alive)];
      add_edge(pick.a, pick.b);
      for (std::size_t j = 0; j < mem.size(); ++j) {
        if (mem[j] == pick.b) in_tree[j] = true;
      }
      ++tree_nodes;
    }

    // Shortcut links beyond the tree.
    std::size_t edges = mem.size() - 1;
    while (edges < target_edges) {
      std::vector<Candidate> cands;
      for (std::size_t i = 0; i < mem.size(); ++i) {
        for (std::size_t j = i + 1; j < mem.size(); ++j) {
          const graph::NodeId a = mem[i];
          const graph::NodeId b = mem[j];
          if (degree[a] >= params.k_max || degree[b] >= params.k_max) continue;
          if (topo.graph.has_edge(a, b)) continue;
          cands.push_back(Candidate{a, b, length_weight(topo, a, b, params.alpha)});
        }
      }
      if (cands.empty()) break;  // saturated by k_max; accept fewer links
      std::vector<bool> alive(cands.size(), true);
      const auto pick = cands[sample(rng, cands, alive)];
      add_edge(pick.a, pick.b);
      ++edges;
    }
  }

  // ---- Inter-cluster wiring: link budget allocated proportionally to the
  // inter-VFI traffic between each cluster pair (§5), minimum one link per
  // pair so no pair of islands depends solely on the wireless overlay.
  const std::size_t inter_budget = static_cast<std::size_t>(
      std::llround(params.k_inter * static_cast<double>(n) / 2.0));
  struct Pair {
    std::size_t p, q;
    double traffic;
    std::size_t links;
  };
  std::vector<Pair> pairs;
  double traffic_total = 0.0;
  for (std::size_t p = 0; p < clusters; ++p) {
    for (std::size_t q = p + 1; q < clusters; ++q) {
      double t = 0.0;
      for (graph::NodeId a : members[p]) {
        for (graph::NodeId b : members[q]) {
          t += node_traffic(a, b) + node_traffic(b, a);
        }
      }
      pairs.push_back(Pair{p, q, t, 1});
      traffic_total += t;
    }
  }
  VFIMR_REQUIRE(inter_budget >= pairs.size());
  std::size_t allocated = pairs.size();
  // Largest-remainder allocation of the remaining budget.
  std::vector<double> share(pairs.size(), 0.0);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    share[i] = traffic_total > 0.0
                   ? pairs[i].traffic / traffic_total *
                         static_cast<double>(inter_budget - pairs.size())
                   : static_cast<double>(inter_budget - pairs.size()) /
                         static_cast<double>(pairs.size());
    const auto whole = static_cast<std::size_t>(share[i]);
    pairs[i].links += whole;
    allocated += whole;
    share[i] -= static_cast<double>(whole);
  }
  while (allocated < inter_budget) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < pairs.size(); ++i) {
      if (share[i] > share[best]) best = i;
    }
    ++pairs[best].links;
    share[best] = -1.0;
    ++allocated;
  }

  for (const auto& pr : pairs) {
    for (std::size_t l = 0; l < pr.links; ++l) {
      std::vector<Candidate> cands;
      for (graph::NodeId a : members[pr.p]) {
        for (graph::NodeId b : members[pr.q]) {
          if (degree[a] >= params.k_max || degree[b] >= params.k_max) continue;
          if (topo.graph.has_edge(a, b)) continue;
          cands.push_back(
              Candidate{a, b, length_weight(topo, a, b, params.alpha)});
        }
      }
      if (cands.empty()) break;  // saturated; accept fewer links
      std::vector<bool> alive(cands.size(), true);
      const auto pick = cands[sample(rng, cands, alive)];
      add_edge(pick.a, pick.b);
    }
  }

  VFIMR_REQUIRE_MSG(graph::is_connected(topo.graph),
                    "small-world construction must be connected");
  return topo;
}

noc::WirelessConfig attach_wireless(
    noc::Topology& topo,
    const std::vector<std::vector<graph::NodeId>>& wi_nodes,
    const SmallWorldParams& params) {
  noc::WirelessConfig cfg;
  cfg.channel_count = params.channels;
  // Group WIs by channel: wi_nodes[c][ch] is cluster c's WI on channel ch.
  std::vector<std::vector<graph::NodeId>> by_channel(
      static_cast<std::size_t>(params.channels));
  for (const auto& cluster_wis : wi_nodes) {
    VFIMR_REQUIRE(cluster_wis.size() ==
                  static_cast<std::size_t>(params.channels));
    for (std::size_t ch = 0; ch < cluster_wis.size(); ++ch) {
      cfg.interfaces.push_back(
          noc::WirelessInterface{cluster_wis[ch], static_cast<int>(ch)});
      by_channel[ch].push_back(cluster_wis[ch]);
    }
  }
  // Broadcast groups: clique edges among same-channel WIs.
  for (const auto& group : by_channel) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        if (!topo.graph.has_edge(group[i], group[j])) {
          topo.add_wireless(group[i], group[j]);
        }
      }
    }
  }
  return cfg;
}

}  // namespace vfimr::winoc
