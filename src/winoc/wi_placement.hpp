#pragma once
// Wireless interface placement (§6): the paper's two methodologies.
//
//  * min-hop-count: simulated annealing over candidate WI switches to
//    minimize the traffic-weighted average hop count of the combined
//    (wireline + wireless) network;
//  * max-wireless-utilization: WIs pinned to the most central switches of
//    each VFI cluster so that the largest number of cores has cheap wireless
//    access (paired with the near-WI thread mapping).

#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "noc/topology.hpp"
#include "winoc/smallworld.hpp"

namespace vfimr::winoc {

/// wi[c][ch]: cluster c's WI switch on channel ch.
using WiPlacement = std::vector<std::vector<graph::NodeId>>;

/// The `wis_per_cluster` switches nearest each cluster's centroid.
WiPlacement place_wis_center(const noc::Topology& topo,
                             const std::vector<std::size_t>& node_cluster,
                             const SmallWorldParams& params);

struct WiAnnealParams {
  std::size_t iterations = 1'200;
  double t_initial = 0.3;
  double t_final = 1e-3;
};

/// SA over single-WI relocation moves minimizing the traffic-weighted hop
/// count of `wireline` + wireless cliques.  `node_traffic` is the mapped
/// switch-level traffic.
WiPlacement place_wis_min_hop(const noc::Topology& wireline,
                              const Matrix& node_traffic,
                              const std::vector<std::size_t>& node_cluster,
                              const SmallWorldParams& params, Rng& rng,
                              const WiAnnealParams& anneal = {});

/// Objective helper (exposed for tests): traffic-weighted hop count of the
/// wireline graph with wireless cliques for `placement` added.
double placement_hop_cost(const noc::Topology& wireline,
                          const Matrix& node_traffic,
                          const WiPlacement& placement,
                          const SmallWorldParams& params);

}  // namespace vfimr::winoc
