#include "winoc/design.hpp"

#include "common/require.hpp"

namespace vfimr::winoc {

std::vector<std::size_t> quadrant_clusters() {
  std::vector<std::size_t> out(64);
  for (graph::NodeId v = 0; v < 64; ++v) out[v] = quadrant_of(v, 8);
  return out;
}

WinocDesign build_winoc(const Matrix& thread_traffic,
                        const std::vector<std::size_t>& thread_cluster,
                        PlacementStrategy strategy,
                        const SmallWorldParams& params) {
  VFIMR_REQUIRE(thread_cluster.size() == 64);
  Rng rng{params.seed};

  WinocDesign design;
  design.node_cluster = quadrant_clusters();

  if (strategy == PlacementStrategy::kMinHopCount) {
    // Methodology 1: map threads to minimize communication distance, build
    // the wireline small world, then SA-place the WIs for minimum
    // traffic-weighted hop count.
    design.thread_to_node =
        map_threads_min_hop(thread_traffic, thread_cluster, rng);
    design.node_traffic = map_traffic(thread_traffic, design.thread_to_node, 64);
    design.topology =
        build_wireline(design.node_traffic, design.node_cluster, params, rng);
    design.wi_nodes = place_wis_min_hop(design.topology, design.node_traffic,
                                        design.node_cluster, params, rng);
  } else {
    // Methodology 2: pin WIs at cluster centers, then perturb a
    // locality-preserving min-hop mapping so the chattiest inter-cluster
    // threads sit on the WI switches ("logically near, physically far").
    const noc::Topology placed = noc::make_placed_grid(8, 8);
    design.wi_nodes = place_wis_center(placed, design.node_cluster, params);
    design.thread_to_node = map_threads_near_wi(
        thread_traffic, thread_cluster, design.wi_nodes,
        map_threads_min_hop(thread_traffic, thread_cluster, rng));
    design.node_traffic = map_traffic(thread_traffic, design.thread_to_node, 64);
    design.topology =
        build_wireline(design.node_traffic, design.node_cluster, params, rng);
  }

  design.wireless = attach_wireless(design.topology, design.wi_nodes, params);
  return design;
}

}  // namespace vfimr::winoc
