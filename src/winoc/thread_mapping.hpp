#pragma once
// Thread-to-switch mapping under VFI constraints (§6).
//
// VFI cluster c always occupies physical quadrant c of the 8x8 die (voltage
// islands are contiguous regions).  Within that constraint two mappings are
// provided, matching the paper's two methodologies:
//  * min-hop: simulated annealing minimizing traffic-weighted Manhattan
//    distance between communicating threads;
//  * near-WI ("logically near, physically far"): threads with the most
//    inter-cluster traffic are placed closest to their cluster's wireless
//    interfaces so that long-distance flits ride the wireless links.

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "noc/topology.hpp"

namespace vfimr::winoc {

/// Threads of cluster c, in id order, onto the nodes of quadrant c in node
/// order — the deterministic baseline mapping.
std::vector<graph::NodeId> map_threads_block(
    const std::vector<std::size_t>& thread_cluster);

/// SA refinement of the block mapping: swap same-cluster thread pairs to
/// minimize sum_{t,u} traffic(t,u) * manhattan(node_t, node_u).
std::vector<graph::NodeId> map_threads_min_hop(
    const Matrix& thread_traffic,
    const std::vector<std::size_t>& thread_cluster, Rng& rng,
    std::size_t iterations = 30'000);

/// Near-WI mapping ("logically near, physically far"): starting from
/// `base_mapping` (normally the min-hop SA result, which preserves data
/// locality), the threads with the highest inter-cluster traffic in each
/// cluster are swapped onto that cluster's WI switches (`wi_nodes[c]`) so
/// their long-distance flits enter the wireless fabric in one hop.
std::vector<graph::NodeId> map_threads_near_wi(
    const Matrix& thread_traffic,
    const std::vector<std::size_t>& thread_cluster,
    const std::vector<std::vector<graph::NodeId>>& wi_nodes,
    std::vector<graph::NodeId> base_mapping);

/// Push thread-level traffic through a mapping: node-level matrix.
Matrix map_traffic(const Matrix& thread_traffic,
                   const std::vector<graph::NodeId>& thread_to_node,
                   std::size_t nodes);

/// Traffic-weighted Manhattan distance of a mapping (the SA objective).
double mapping_cost(const Matrix& thread_traffic,
                    const std::vector<graph::NodeId>& thread_to_node);

}  // namespace vfimr::winoc
