#include "winoc/thread_mapping.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/require.hpp"
#include "winoc/smallworld.hpp"

namespace vfimr::winoc {

namespace {

constexpr std::size_t kWidth = 8;

int manhattan(graph::NodeId a, graph::NodeId b) {
  const int ax = static_cast<int>(noc::mesh_x(a, kWidth));
  const int ay = static_cast<int>(noc::mesh_y(a, kWidth));
  const int bx = static_cast<int>(noc::mesh_x(b, kWidth));
  const int by = static_cast<int>(noc::mesh_y(b, kWidth));
  return std::abs(ax - bx) + std::abs(ay - by);
}

std::vector<std::vector<graph::NodeId>> quadrant_nodes() {
  std::vector<std::vector<graph::NodeId>> out(4);
  for (graph::NodeId v = 0; v < 64; ++v) {
    out[quadrant_of(v, kWidth)].push_back(v);
  }
  return out;
}

}  // namespace

std::vector<graph::NodeId> map_threads_block(
    const std::vector<std::size_t>& thread_cluster) {
  VFIMR_REQUIRE(thread_cluster.size() == 64);
  const auto quads = quadrant_nodes();
  std::vector<std::size_t> next(4, 0);
  std::vector<graph::NodeId> mapping(64, graph::kInvalidId);
  for (std::size_t t = 0; t < 64; ++t) {
    const std::size_t c = thread_cluster[t];
    VFIMR_REQUIRE(c < 4);
    VFIMR_REQUIRE_MSG(next[c] < quads[c].size(),
                      "cluster has more than 16 threads");
    mapping[t] = quads[c][next[c]++];
  }
  for (std::size_t c = 0; c < 4; ++c) {
    VFIMR_REQUIRE_MSG(next[c] == quads[c].size(),
                      "clusters must have exactly 16 threads");
  }
  return mapping;
}

double mapping_cost(const Matrix& thread_traffic,
                    const std::vector<graph::NodeId>& thread_to_node) {
  const std::size_t n = thread_to_node.size();
  VFIMR_REQUIRE(thread_traffic.rows() == n && thread_traffic.cols() == n);
  double acc = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t u = 0; u < n; ++u) {
      const double w = thread_traffic(t, u);
      if (w > 0.0 && t != u) {
        acc += w * manhattan(thread_to_node[t], thread_to_node[u]);
      }
    }
  }
  return acc;
}

std::vector<graph::NodeId> map_threads_min_hop(
    const Matrix& thread_traffic,
    const std::vector<std::size_t>& thread_cluster, Rng& rng,
    std::size_t iterations) {
  auto mapping = map_threads_block(thread_cluster);
  const std::size_t n = mapping.size();

  // Per-thread swap delta: only terms involving the two swapped threads
  // change.
  auto thread_cost = [&](std::size_t t, const std::vector<graph::NodeId>& m) {
    double acc = 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      if (u == t) continue;
      const double w = thread_traffic(t, u) + thread_traffic(u, t);
      if (w > 0.0) acc += w * manhattan(m[t], m[u]);
    }
    return acc;
  };

  double current = mapping_cost(thread_traffic, mapping);
  const double t0 = std::max(current * 0.05, 1e-9);
  const double t1 = t0 * 1e-3;
  for (std::size_t it = 0; it < iterations; ++it) {
    const auto a = static_cast<std::size_t>(rng.uniform_u64(n));
    auto b = static_cast<std::size_t>(rng.uniform_u64(n - 1));
    if (b >= a) ++b;
    if (thread_cluster[a] != thread_cluster[b]) continue;
    const double before = thread_cost(a, mapping) + thread_cost(b, mapping);
    std::swap(mapping[a], mapping[b]);
    const double after = thread_cost(a, mapping) + thread_cost(b, mapping);
    const double delta = after - before;
    const double temp =
        t0 * std::pow(t1 / t0, static_cast<double>(it) /
                                   static_cast<double>(iterations));
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temp)) {
      current += delta;
    } else {
      std::swap(mapping[a], mapping[b]);  // reject
    }
  }
  return mapping;
}

std::vector<graph::NodeId> map_threads_near_wi(
    const Matrix& thread_traffic,
    const std::vector<std::size_t>& thread_cluster,
    const std::vector<std::vector<graph::NodeId>>& wi_nodes,
    std::vector<graph::NodeId> base_mapping) {
  VFIMR_REQUIRE(thread_cluster.size() == 64);
  VFIMR_REQUIRE(wi_nodes.size() == 4);
  VFIMR_REQUIRE(base_mapping.size() == 64);

  // node -> thread inverse of the base mapping.
  std::vector<std::size_t> occupant(64, 64);
  for (std::size_t t = 0; t < 64; ++t) {
    VFIMR_REQUIRE(base_mapping[t] < 64 && occupant[base_mapping[t]] == 64);
    occupant[base_mapping[t]] = t;
  }

  for (std::size_t c = 0; c < 4; ++c) {
    // Threads of this cluster ranked by inter-cluster traffic, descending.
    std::vector<std::size_t> threads;
    for (std::size_t t = 0; t < 64; ++t) {
      if (thread_cluster[t] == c) threads.push_back(t);
    }
    std::vector<double> inter(threads.size(), 0.0);
    for (std::size_t i = 0; i < threads.size(); ++i) {
      for (std::size_t u = 0; u < 64; ++u) {
        if (thread_cluster[u] != c) {
          inter[i] += thread_traffic(threads[i], u) +
                      thread_traffic(u, threads[i]);
        }
      }
    }
    std::vector<std::size_t> order(threads.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      if (inter[x] != inter[y]) return inter[x] > inter[y];
      return threads[x] < threads[y];
    });

    // Swap the top talkers onto the WI switches; everyone else keeps the
    // locality-preserving base placement.
    for (std::size_t k = 0; k < wi_nodes[c].size() && k < order.size(); ++k) {
      const std::size_t talker = threads[order[k]];
      const graph::NodeId target = wi_nodes[c][k];
      const graph::NodeId from = base_mapping[talker];
      if (from == target) continue;
      const std::size_t displaced = occupant[target];
      VFIMR_REQUIRE(displaced < 64);
      std::swap(base_mapping[talker], base_mapping[displaced]);
      occupant[target] = talker;
      occupant[from] = displaced;
    }
  }
  return base_mapping;
}

Matrix map_traffic(const Matrix& thread_traffic,
                   const std::vector<graph::NodeId>& thread_to_node,
                   std::size_t nodes) {
  const std::size_t n = thread_to_node.size();
  VFIMR_REQUIRE(thread_traffic.rows() == n && thread_traffic.cols() == n);
  Matrix out{nodes, nodes};
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t u = 0; u < n; ++u) {
      if (t == u) continue;
      const double w = thread_traffic(t, u);
      if (w > 0.0) out(thread_to_node[t], thread_to_node[u]) += w;
    }
  }
  return out;
}

}  // namespace vfimr::winoc
