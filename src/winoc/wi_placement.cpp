#include "winoc/wi_placement.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace vfimr::winoc {

namespace {

std::vector<std::vector<graph::NodeId>> members_by_cluster(
    const std::vector<std::size_t>& node_cluster) {
  const std::size_t clusters =
      1 + *std::max_element(node_cluster.begin(), node_cluster.end());
  std::vector<std::vector<graph::NodeId>> out(clusters);
  for (graph::NodeId v = 0; v < node_cluster.size(); ++v) {
    out[node_cluster[v]].push_back(v);
  }
  return out;
}

/// Copy the wireline graph and overlay the wireless cliques of `placement`.
graph::Graph overlay(const noc::Topology& wireline,
                     const WiPlacement& placement,
                     const SmallWorldParams& params) {
  graph::Graph g = wireline.graph;
  for (int ch = 0; ch < params.channels; ++ch) {
    std::vector<graph::NodeId> group;
    for (const auto& cluster_wis : placement) {
      group.push_back(cluster_wis.at(static_cast<std::size_t>(ch)));
    }
    for (std::size_t i = 0; i < group.size(); ++i) {
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        if (!g.has_edge(group[i], group[j])) {
          g.add_edge(group[i], group[j], graph::EdgeKind::kWireless);
        }
      }
    }
  }
  return g;
}

std::vector<std::vector<double>> to_rows(const Matrix& m) {
  std::vector<std::vector<double>> rows(m.rows(), std::vector<double>(m.cols()));
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) rows[r][c] = m(r, c);
  }
  return rows;
}

}  // namespace

double placement_hop_cost(const noc::Topology& wireline,
                          const Matrix& node_traffic,
                          const WiPlacement& placement,
                          const SmallWorldParams& params) {
  const graph::Graph g = overlay(wireline, placement, params);
  return graph::weighted_hop_count(g, to_rows(node_traffic));
}

WiPlacement place_wis_center(const noc::Topology& topo,
                             const std::vector<std::size_t>& node_cluster,
                             const SmallWorldParams& params) {
  const auto members = members_by_cluster(node_cluster);
  WiPlacement placement;
  for (const auto& mem : members) {
    VFIMR_REQUIRE(mem.size() >= params.wis_per_cluster);
    // Cluster centroid.
    double cx = 0.0;
    double cy = 0.0;
    for (graph::NodeId v : mem) {
      cx += topo.positions[v].x_mm;
      cy += topo.positions[v].y_mm;
    }
    cx /= static_cast<double>(mem.size());
    cy /= static_cast<double>(mem.size());
    std::vector<graph::NodeId> order = mem;
    std::sort(order.begin(), order.end(), [&](graph::NodeId a, graph::NodeId b) {
      const auto da = std::hypot(topo.positions[a].x_mm - cx,
                                 topo.positions[a].y_mm - cy);
      const auto db = std::hypot(topo.positions[b].x_mm - cx,
                                 topo.positions[b].y_mm - cy);
      if (da != db) return da < db;
      return a < b;
    });
    placement.emplace_back(order.begin(),
                           order.begin() + static_cast<std::ptrdiff_t>(
                                               params.wis_per_cluster));
  }
  return placement;
}

WiPlacement place_wis_min_hop(const noc::Topology& wireline,
                              const Matrix& node_traffic,
                              const std::vector<std::size_t>& node_cluster,
                              const SmallWorldParams& params, Rng& rng,
                              const WiAnnealParams& anneal) {
  const auto members = members_by_cluster(node_cluster);
  // Start from the center placement (a good, legal initial point).
  WiPlacement placement = place_wis_center(wireline, node_cluster, params);
  WiPlacement best = placement;
  double current = placement_hop_cost(wireline, node_traffic, placement, params);
  double best_cost = current;

  auto is_wi = [&](std::size_t cluster, graph::NodeId v) {
    const auto& wis = placement[cluster];
    return std::find(wis.begin(), wis.end(), v) != wis.end();
  };

  for (std::size_t it = 0; it < anneal.iterations; ++it) {
    const auto cluster =
        static_cast<std::size_t>(rng.uniform_u64(placement.size()));
    const auto slot = static_cast<std::size_t>(
        rng.uniform_u64(params.wis_per_cluster));
    const auto& mem = members[cluster];
    const graph::NodeId candidate =
        mem[static_cast<std::size_t>(rng.uniform_u64(mem.size()))];
    if (is_wi(cluster, candidate)) continue;
    const graph::NodeId old = placement[cluster][slot];
    placement[cluster][slot] = candidate;
    const double cost =
        placement_hop_cost(wireline, node_traffic, placement, params);
    const double delta = cost - current;
    const double temp =
        anneal.t_initial *
        std::pow(anneal.t_final / anneal.t_initial,
                 static_cast<double>(it) /
                     static_cast<double>(anneal.iterations));
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temp)) {
      current = cost;
      if (current < best_cost) {
        best_cost = current;
        best = placement;
      }
    } else {
      placement[cluster][slot] = old;  // reject
    }
  }
  return best;
}

}  // namespace vfimr::winoc
