#pragma once
// Small-world WiNoC construction (§5 of the paper).
//
// The wireline network follows the power-law wiring-cost model of Petermann
// & De Los Rios [19]: a candidate link of physical length l is chosen with
// probability proportional to l^-alpha.  Each switch has on average <k> = 4
// inter-switch connections (matching a mesh's switch overhead), split into
// <k_intra> links inside the switch's VFI cluster and <k_inter> links to
// other clusters, with a hard per-switch bound k_max.  Every cluster's
// subnetwork is connected; inter-cluster link counts between cluster pairs
// are allocated proportionally to the inter-VFI traffic (§5).
//
// On top of the wireline fabric, 12 wireless interfaces (3 per 16-core VFI,
// §6) are deployed on 3 non-overlapping mm-wave channels; each channel hosts
// one WI per cluster, forming a 4-WI broadcast group.

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "noc/network.hpp"
#include "noc/topology.hpp"

namespace vfimr::winoc {

struct SmallWorldParams {
  double k_intra = 3.0;  ///< <k_intra>; paper finds (3,1) beats (2,2)
  double k_inter = 1.0;  ///< <k_inter>
  std::size_t k_max = 7;  ///< max wired ports per switch (excl. core port)
  double alpha = 1.8;     ///< wiring-cost power-law exponent
  int channels = 3;       ///< non-overlapping wireless channels
  std::size_t wis_per_cluster = 3;  ///< 12 WIs total on the 64-core die
  std::uint64_t seed = 13;
};

/// VFI cluster of a physical switch on the 8x8 die: the four 4x4 quadrants
/// (the paper's "four 4x4 equally sized VFIs").
std::size_t quadrant_of(graph::NodeId node, std::size_t width = 8);

/// Build the wireline small-world fabric over an 8x8 switch placement.
/// `node_cluster[n]` is the VFI of switch n (must be the quadrants);
/// `node_traffic` is the packets/cycle matrix between switches (threads
/// already mapped), used to allocate inter-cluster links.
noc::Topology build_wireline(const Matrix& node_traffic,
                             const std::vector<std::size_t>& node_cluster,
                             const SmallWorldParams& params, Rng& rng);

/// Add wireless edges + interface config for the given WI nodes.
/// `wi_nodes[c]` lists the WI switches of cluster c, in channel order
/// (wi_nodes[c][ch] is on channel ch).  Mutates `topo`, returns the config.
noc::WirelessConfig attach_wireless(
    noc::Topology& topo, const std::vector<std::vector<graph::NodeId>>& wi_nodes,
    const SmallWorldParams& params);

}  // namespace vfimr::winoc
