#include "power/vf_table.hpp"

#include <algorithm>
#include <sstream>

#include "common/require.hpp"
#include "common/units.hpp"

namespace vfimr::power {

std::string VfPoint::label() const {
  std::ostringstream os;
  os << voltage_v << "/" << freq_hz / units::GHz;
  return os.str();
}

const VfTable& VfTable::standard() {
  static const VfTable table{{
      {0.6, 1.50e9},
      {0.7, 1.75e9},
      {0.8, 2.00e9},
      {0.9, 2.25e9},
      {1.0, 2.50e9},
  }};
  return table;
}

VfTable::VfTable(std::vector<VfPoint> points) : points_{std::move(points)} {
  VFIMR_REQUIRE_MSG(!points_.empty(),
                    "VfTable needs at least one V/F point");
  VFIMR_REQUIRE_MSG(
      std::is_sorted(points_.begin(), points_.end(),
                     [](const VfPoint& a, const VfPoint& b) {
                       return a.freq_hz < b.freq_hz;
                     }),
      "VfTable points must be in ascending frequency order");
  for (const auto& p : points_) {
    VFIMR_REQUIRE_MSG(p.voltage_v > 0.0 && p.freq_hz > 0.0,
                      "VfPoint must have positive voltage and frequency, got "
                          << p.voltage_v << " V / " << p.freq_hz << " Hz");
  }
}

const VfPoint& VfTable::at_least(double freq_hz) const {
  for (const auto& p : points_) {
    if (p.freq_hz >= freq_hz) return p;
  }
  return points_.back();
}

std::size_t VfTable::index_of(const VfPoint& p) const {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i] == p) return i;
  }
  VFIMR_REQUIRE_MSG(false, "VfPoint not in table: " + p.label());
  return 0;
}

const VfPoint& VfTable::step_up(const VfPoint& p) const {
  const std::size_t i = index_of(p);
  return points_[std::min(i + 1, points_.size() - 1)];
}

}  // namespace vfimr::power
