#include "power/core_power.hpp"

#include <cmath>

#include "common/require.hpp"

namespace vfimr::power {

CorePowerModel::CorePowerModel(CorePowerParams params) : params_{params} {
  VFIMR_REQUIRE(params_.ceff_f > 0.0);
  VFIMR_REQUIRE(params_.leak_nominal_w >= 0.0);
  VFIMR_REQUIRE(params_.v_nominal > 0.0);
  VFIMR_REQUIRE(params_.idle_activity >= 0.0 && params_.idle_activity <= 1.0);
}

double CorePowerModel::leakage_w(double voltage_v) const {
  VFIMR_REQUIRE(voltage_v > 0.0);
  return params_.leak_nominal_w *
         std::pow(voltage_v / params_.v_nominal, params_.leak_exponent);
}

double CorePowerModel::dynamic_w(double utilization, const VfPoint& vf) const {
  VFIMR_REQUIRE(utilization >= 0.0 && utilization <= 1.0);
  const double activity =
      params_.idle_activity + (1.0 - params_.idle_activity) * utilization;
  return activity * params_.ceff_f * vf.voltage_v * vf.voltage_v * vf.freq_hz;
}

double CorePowerModel::power_w(double utilization, const VfPoint& vf) const {
  return dynamic_w(utilization, vf) + leakage_w(vf.voltage_v);
}

double CorePowerModel::energy_j(double utilization, const VfPoint& vf,
                                double seconds) const {
  VFIMR_REQUIRE(seconds >= 0.0);
  return power_w(utilization, vf) * seconds;
}

}  // namespace vfimr::power
