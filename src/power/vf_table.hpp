#pragma once
// Discrete voltage/frequency operating points for the VFI platform.
//
// The paper's Table 2 uses the points {0.6 V/1.5 GHz, 0.8 V/2.0 GHz,
// 0.9 V/2.25 GHz, 1.0 V/2.5 GHz}; we include 0.7 V/1.75 GHz to complete a
// uniform ladder (0.1 V / 0.25 GHz steps), matching typical 65 nm DVFS
// tables.  (The paper's "0.9/2.2" entry for LR is read as 0.9/2.25 — an
// obvious typographical slip, since every other 0.9 V entry is 2.25 GHz.)

#include <cstddef>
#include <string>
#include <vector>

namespace vfimr::power {

struct VfPoint {
  double voltage_v = 1.0;
  double freq_hz = 2.5e9;

  bool operator==(const VfPoint&) const = default;

  std::string label() const;  ///< e.g. "0.9/2.25"
};

class VfTable {
 public:
  /// The platform ladder used throughout the paper reproduction.
  static const VfTable& standard();

  explicit VfTable(std::vector<VfPoint> points);  // ascending frequency

  std::size_t size() const { return points_.size(); }
  const VfPoint& operator[](std::size_t i) const { return points_.at(i); }
  const VfPoint& max() const { return points_.back(); }
  const VfPoint& min() const { return points_.front(); }

  /// Lowest point whose frequency is >= `freq_hz` (clamps to max()).
  const VfPoint& at_least(double freq_hz) const;

  /// Index of `p` in the ladder; throws if absent.
  std::size_t index_of(const VfPoint& p) const;

  /// One step up from `p` (clamps at the top of the ladder).
  const VfPoint& step_up(const VfPoint& p) const;

 private:
  std::vector<VfPoint> points_;
};

}  // namespace vfimr::power
