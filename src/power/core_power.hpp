#pragma once
// McPAT-substitute analytical core power model.
//
// The paper runs GEM5 statistics through McPAT to get per-core power.  The
// VFI savings it reports come from the first-order physics McPAT encodes:
// dynamic power scales as u * Ceff * V^2 * f, leakage drops steeply with
// voltage.  This model captures exactly those terms with 65 nm-class
// constants calibrated so a fully-busy core at the 1.0 V / 2.5 GHz nominal
// point dissipates ~2 W (a typical small x86 core in a 64-core research
// chip).

#include "power/vf_table.hpp"

namespace vfimr::power {

struct CorePowerParams {
  /// Effective switched capacitance: P_dyn = u * ceff_f * V^2 * f.
  /// 0.20 nF gives 1.25 W dynamic at u=1, 1.0 V, 2.5 GHz.
  double ceff_f = 0.20e-9;
  /// Leakage at the nominal voltage (W); scales superlinearly with V.
  /// 65 nm leakage is a large share of total power (~35-40% in McPAT-era
  /// studies), which is exactly what per-island voltage scaling attacks.
  double leak_nominal_w = 0.60;
  double v_nominal = 1.0;
  /// Leakage voltage exponent: P_leak(V) = leak_nominal * (V/Vnom)^exp.
  /// Superlinear compact fit (DIBL + junction) at 65 nm.
  double leak_exponent = 3.5;
  /// Fraction of dynamic power still burned when idle (clock tree etc.).
  double idle_activity = 0.08;
};

class CorePowerModel {
 public:
  explicit CorePowerModel(CorePowerParams params = {});

  /// Average power (W) of one core at utilization u in [0,1] and V/F `vf`.
  double power_w(double utilization, const VfPoint& vf) const;

  /// Energy (J) over `seconds` at a fixed utilization and V/F.
  double energy_j(double utilization, const VfPoint& vf,
                  double seconds) const;

  double leakage_w(double voltage_v) const;
  double dynamic_w(double utilization, const VfPoint& vf) const;

  const CorePowerParams& params() const { return params_; }

 private:
  CorePowerParams params_;
};

}  // namespace vfimr::power
