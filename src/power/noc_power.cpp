#include "power/noc_power.hpp"

#include "common/require.hpp"
#include "common/units.hpp"

namespace vfimr::power {

NocPowerModel::NocPowerModel(NocPowerParams params) : params_{params} {
  VFIMR_REQUIRE(params_.flit_bits > 0.0);
  VFIMR_REQUIRE(params_.wire_pj_per_bit_mm >= 0.0);
  VFIMR_REQUIRE(params_.switch_pj_per_bit >= 0.0);
  VFIMR_REQUIRE(params_.wireless_pj_per_bit >= 0.0);
  VFIMR_REQUIRE(params_.buffer_pj_per_bit >= 0.0);
}

double NocPowerModel::wire_energy_j(const noc::EnergyCounters& c) const {
  return c.wire_mm_flits * params_.wire_pj_per_bit_mm * params_.flit_bits *
         units::pJ;
}

double NocPowerModel::switch_energy_j(const noc::EnergyCounters& c) const {
  return static_cast<double>(c.switch_traversals) * params_.switch_pj_per_bit *
         params_.flit_bits * units::pJ;
}

double NocPowerModel::wireless_energy_j(const noc::EnergyCounters& c) const {
  return static_cast<double>(c.wireless_flits) * params_.wireless_pj_per_bit *
         params_.flit_bits * units::pJ;
}

double NocPowerModel::buffer_energy_j(const noc::EnergyCounters& c) const {
  return static_cast<double>(c.buffer_reads + c.buffer_writes) *
         params_.buffer_pj_per_bit * params_.flit_bits * units::pJ;
}

double NocPowerModel::energy_j(const noc::EnergyCounters& c) const {
  return wire_energy_j(c) + switch_energy_j(c) + wireless_energy_j(c) +
         buffer_energy_j(c);
}

double NocPowerModel::wireless_flit_j() const {
  return params_.wireless_pj_per_bit * params_.flit_bits * units::pJ;
}

double NocPowerModel::wired_path_flit_j(double mm, unsigned hops) const {
  return (mm * params_.wire_pj_per_bit_mm +
          static_cast<double>(hops) * params_.switch_pj_per_bit) *
         params_.flit_bits * units::pJ;
}

double NocPowerModel::static_energy_j(std::size_t switches, std::size_t wis,
                                      double seconds) const {
  return (static_cast<double>(switches) * params_.switch_leakage_w +
          static_cast<double>(wis) * params_.wi_leakage_w) *
         seconds;
}

}  // namespace vfimr::power
