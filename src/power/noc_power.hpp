#pragma once
// Interconnect energy model.
//
// Substitutes the paper's synthesized 65 nm switch netlists (Synopsys
// PrimePower) and HSPICE-extracted wire models with per-event energies of
// the same order as those reported in the WiNoC literature the paper builds
// on (Deb et al., IEEE TC 2013; Wettin et al., DATE 2013):
//   * wire:      ~0.35 pJ/bit/mm
//   * switch:    ~1.8 pJ/bit per traversal (unoptimized synthesized netlist)
//   * wireless:  ~2.3 pJ/bit end-to-end (Deb et al., IEEE TC 2013)
//   * buffering: ~0.12 pJ/bit per read or write
// The crossover makes one wireless hop cheaper than ~2 wire hops of average
// length — the mechanism behind the paper's network-energy savings.

#include "noc/network.hpp"

namespace vfimr::power {

struct NocPowerParams {
  double flit_bits = 32.0;          ///< paper: 32-bit flits
  double wire_pj_per_bit_mm = 0.35;
  double switch_pj_per_bit = 2.20;
  double wireless_pj_per_bit = 2.30;
  double buffer_pj_per_bit = 0.15;
  double switch_leakage_w = 2.0e-3;  ///< static power per switch
  double wi_leakage_w = 1.5e-3;      ///< static power per wireless interface
};

class NocPowerModel {
 public:
  explicit NocPowerModel(NocPowerParams params = {});

  /// Total interconnect energy in joules for the given event counts.
  double energy_j(const noc::EnergyCounters& counters) const;

  /// Per-component breakdown (J).
  double wire_energy_j(const noc::EnergyCounters& c) const;
  double switch_energy_j(const noc::EnergyCounters& c) const;
  double wireless_energy_j(const noc::EnergyCounters& c) const;
  double buffer_energy_j(const noc::EnergyCounters& c) const;

  /// Energy of one flit over one wireless hop vs. `mm` of wire + `hops`
  /// switch traversals — used by tests to verify the crossover.
  double wireless_flit_j() const;
  double wired_path_flit_j(double mm, unsigned hops) const;

  /// Static energy of `switches` routers (+`wis` wireless interfaces) over
  /// `seconds`.
  double static_energy_j(std::size_t switches, std::size_t wis,
                         double seconds) const;

  const NocPowerParams& params() const { return params_; }

 private:
  NocPowerParams params_;
};

}  // namespace vfimr::power
