#pragma once
// Versioned canonical encodings of the evaluation results the persistent
// store holds (DESIGN.md §16):
//
//   * sysmodel::NetworkEval — the NetworkEvaluator's unit of memoization;
//   * vfi::VfiDesign       — the PlatformCache's expensive design-flow
//                            result (the rest of a BuiltPlatform rebuilds
//                            deterministically from it);
//   * sysmodel::SystemReport / SystemComparison — whole sweep points, the
//     incremental sweep driver's unit of reuse.
//
// Every encoding starts with [codec version u32][kind tag u32]; a decoder
// rejects a foreign version or kind (and any length mismatch) by returning
// false, which the tiered lookup treats as a disk miss — stale or foreign
// records are recomputed, never trusted.  The hard contract, enforced by
// round-trip property tests (tests/test_store.cpp): decode(encode(x))
// reproduces every field of x bit-for-bit, including the Accumulator's
// internal Welford state, so a disk hit is indistinguishable from a fresh
// run.
//
// Bump kCodecVersion whenever a serialized struct gains, loses or reorders
// a field; old stores then degrade to cold caches automatically.

#include <string>
#include <string_view>

#include "sysmodel/platform.hpp"
#include "sysmodel/system_sim.hpp"
#include "vfi/vf_assign.hpp"

namespace vfimr::store {

/// Version of the *value* encodings below (independent of the store's
/// record framing version, kStoreFormatVersion).
inline constexpr std::uint32_t kCodecVersion = 1;

std::string encode_network_eval(const sysmodel::NetworkEval& eval);
bool decode_network_eval(std::string_view bytes, sysmodel::NetworkEval& out);

std::string encode_vfi_design(const vfi::VfiDesign& design);
bool decode_vfi_design(std::string_view bytes, vfi::VfiDesign& out);

std::string encode_system_report(const sysmodel::SystemReport& report);
bool decode_system_report(std::string_view bytes,
                          sysmodel::SystemReport& out);

std::string encode_system_comparison(const sysmodel::SystemComparison& cmp);
bool decode_system_comparison(std::string_view bytes,
                              sysmodel::SystemComparison& out);

}  // namespace vfimr::store
