#include "store/codec.hpp"

#include "store/bytes.hpp"

namespace vfimr::store {

namespace {

// Kind tags distinguish the value encodings sharing one store (and one
// codec version); a decoder asked to read the wrong kind fails cleanly.
enum class Kind : std::uint32_t {
  kNetworkEval = 1,
  kVfiDesign = 2,
  kSystemReport = 3,
  kSystemComparison = 4,
};

void put_preamble(ByteWriter& w, Kind kind) {
  w.put(kCodecVersion);
  w.put(static_cast<std::uint32_t>(kind));
}

bool get_preamble(ByteReader& r, Kind kind) {
  std::uint32_t version = 0;
  std::uint32_t tag = 0;
  r.get(version);
  r.get(tag);
  return r.ok() && version == kCodecVersion &&
         tag == static_cast<std::uint32_t>(kind);
}

void put_accumulator(ByteWriter& w, const Accumulator& a) {
  const Accumulator::Raw raw = a.raw();
  w.put(raw.n);
  w.put(raw.mean);
  w.put(raw.m2);
  w.put(raw.sum);
  w.put(raw.min);
  w.put(raw.max);
}

bool get_accumulator(ByteReader& r, Accumulator& out) {
  Accumulator::Raw raw;
  r.get(raw.n);
  r.get(raw.mean);
  r.get(raw.m2);
  r.get(raw.sum);
  r.get(raw.min);
  r.get(raw.max);
  out = Accumulator::from_raw(raw);
  return r.ok();
}

void put_metrics(ByteWriter& w, const noc::Metrics& m) {
  w.put(m.packets_injected);
  w.put(m.packets_ejected);
  w.put(m.packets_local);
  w.put(m.flits_ejected);
  w.put(m.cycles);
  put_accumulator(w, m.packet_latency);
  w.put(m.energy.switch_traversals);
  w.put(m.energy.wire_hops);
  w.put(m.energy.wire_mm_flits);
  w.put(m.energy.wireless_flits);
  w.put(m.energy.buffer_writes);
  w.put(m.energy.buffer_reads);
  w.put(m.fault_events);
  w.put(m.route_rebuilds);
  w.put(m.retry_backoffs);
  w.put(m.packets_lost);
  w.put(m.flits_lost);
}

bool get_metrics(ByteReader& r, noc::Metrics& m) {
  r.get(m.packets_injected);
  r.get(m.packets_ejected);
  r.get(m.packets_local);
  r.get(m.flits_ejected);
  r.get(m.cycles);
  get_accumulator(r, m.packet_latency);
  r.get(m.energy.switch_traversals);
  r.get(m.energy.wire_hops);
  r.get(m.energy.wire_mm_flits);
  r.get(m.energy.wireless_flits);
  r.get(m.energy.buffer_writes);
  r.get(m.energy.buffer_reads);
  r.get(m.fault_events);
  r.get(m.route_rebuilds);
  r.get(m.retry_backoffs);
  r.get(m.packets_lost);
  r.get(m.flits_lost);
  return r.ok();
}

void put_network_eval(ByteWriter& w, const sysmodel::NetworkEval& eval) {
  w.put(eval.avg_latency_cycles);
  w.put(eval.energy_per_flit_j);
  w.put(eval.wireless_utilization);
  w.put(eval.flits_delivered);
  w.put(static_cast<std::uint8_t>(eval.drained));
  put_metrics(w, eval.metrics);
}

bool get_network_eval(ByteReader& r, sysmodel::NetworkEval& out) {
  r.get(out.avg_latency_cycles);
  r.get(out.energy_per_flit_j);
  r.get(out.wireless_utilization);
  r.get(out.flits_delivered);
  std::uint8_t drained = 0;
  r.get(drained);
  out.drained = drained != 0;
  return get_metrics(r, out.metrics);
}

void put_vf_points(ByteWriter& w, const std::vector<power::VfPoint>& pts) {
  w.put(static_cast<std::uint64_t>(pts.size()));
  for (const power::VfPoint& p : pts) {
    w.put(p.voltage_v);
    w.put(p.freq_hz);
  }
}

bool get_vf_points(ByteReader& r, std::vector<power::VfPoint>& out) {
  std::uint64_t n = 0;
  r.get(n);
  out.clear();
  if (!r.ok() || r.remaining() / (2 * sizeof(double)) < n) return false;
  out.resize(static_cast<std::size_t>(n));
  for (power::VfPoint& p : out) {
    r.get(p.voltage_v);
    r.get(p.freq_hz);
  }
  return r.ok();
}

void put_vfi_design(ByteWriter& w, const vfi::VfiDesign& d) {
  w.put_vector(d.assignment);
  put_vf_points(w, d.vfi1);
  put_vf_points(w, d.vfi2);
  w.put_vector(d.raised_clusters);
  w.put(d.clustering_cost);
}

bool get_vfi_design(ByteReader& r, vfi::VfiDesign& out) {
  r.get_vector(out.assignment);
  get_vf_points(r, out.vfi1);
  get_vf_points(r, out.vfi2);
  r.get_vector(out.raised_clusters);
  r.get(out.clustering_cost);
  return r.ok();
}

void put_phase_result(ByteWriter& w, const sysmodel::PhaseResult& p) {
  w.put(static_cast<std::uint8_t>(p.phase));
  w.put(static_cast<std::uint8_t>(p.evaluated));
  put_network_eval(w, p.net);
  w.put(p.baseline_latency_cycles);
  w.put(p.mem_scale);
  w.put(p.time_s);
  w.put(p.net_dynamic_j);
  w.put(p.rate_packets_per_cycle);
}

bool get_phase_result(ByteReader& r, sysmodel::PhaseResult& out) {
  std::uint8_t phase = 0;
  std::uint8_t evaluated = 0;
  r.get(phase);
  r.get(evaluated);
  out.phase = static_cast<workload::Phase>(phase);
  out.evaluated = evaluated != 0;
  get_network_eval(r, out.net);
  r.get(out.baseline_latency_cycles);
  r.get(out.mem_scale);
  r.get(out.time_s);
  r.get(out.net_dynamic_j);
  r.get(out.rate_packets_per_cycle);
  return r.ok();
}

void put_system_report(ByteWriter& w, const sysmodel::SystemReport& s) {
  w.put(static_cast<std::uint32_t>(s.kind));
  w.put(s.phases.lib_init_s);
  w.put(s.phases.map_s);
  w.put(s.phases.reduce_s);
  w.put(s.phases.merge_s);
  w.put(s.exec_s);
  w.put(s.core_energy_j);
  w.put(s.net_dynamic_j);
  w.put(s.net_static_j);
  put_network_eval(w, s.net);
  for (const sysmodel::PhaseResult& p : s.phase_results) {
    put_phase_result(w, p);
  }
  w.put(static_cast<std::uint8_t>(s.phase_resolved));
  w.put(s.resilience.core_failures);
  w.put(s.resilience.tasks_reexecuted);
  w.put(s.resilience.wasted_core_seconds);
  w.put(s.resilience.noc_fault_events);
  w.put(s.resilience.noc_route_rebuilds);
  w.put(s.resilience.noc_retry_backoffs);
  w.put(s.resilience.packets_lost);
  w.put(s.resilience.flits_lost);
  w.put(s.resilience.net_stall_seconds);
  w.put(s.baseline_latency_cycles);
  w.put(s.mem_scale);
  w.put(static_cast<std::uint8_t>(s.has_vfi));
  put_vfi_design(w, s.vfi);
}

bool get_system_report(ByteReader& r, sysmodel::SystemReport& out) {
  std::uint32_t kind = 0;
  r.get(kind);
  out.kind = static_cast<sysmodel::SystemKind>(kind);
  r.get(out.phases.lib_init_s);
  r.get(out.phases.map_s);
  r.get(out.phases.reduce_s);
  r.get(out.phases.merge_s);
  r.get(out.exec_s);
  r.get(out.core_energy_j);
  r.get(out.net_dynamic_j);
  r.get(out.net_static_j);
  get_network_eval(r, out.net);
  for (sysmodel::PhaseResult& p : out.phase_results) {
    get_phase_result(r, p);
  }
  std::uint8_t phase_resolved = 0;
  r.get(phase_resolved);
  out.phase_resolved = phase_resolved != 0;
  r.get(out.resilience.core_failures);
  r.get(out.resilience.tasks_reexecuted);
  r.get(out.resilience.wasted_core_seconds);
  r.get(out.resilience.noc_fault_events);
  r.get(out.resilience.noc_route_rebuilds);
  r.get(out.resilience.noc_retry_backoffs);
  r.get(out.resilience.packets_lost);
  r.get(out.resilience.flits_lost);
  r.get(out.resilience.net_stall_seconds);
  r.get(out.baseline_latency_cycles);
  r.get(out.mem_scale);
  std::uint8_t has_vfi = 0;
  r.get(has_vfi);
  out.has_vfi = has_vfi != 0;
  return get_vfi_design(r, out.vfi);
}

}  // namespace

std::string encode_network_eval(const sysmodel::NetworkEval& eval) {
  ByteWriter w;
  put_preamble(w, Kind::kNetworkEval);
  put_network_eval(w, eval);
  return w.take();
}

bool decode_network_eval(std::string_view bytes, sysmodel::NetworkEval& out) {
  ByteReader r{bytes};
  if (!get_preamble(r, Kind::kNetworkEval)) return false;
  sysmodel::NetworkEval eval;
  if (!get_network_eval(r, eval) || !r.done()) return false;
  out = std::move(eval);
  return true;
}

std::string encode_vfi_design(const vfi::VfiDesign& design) {
  ByteWriter w;
  put_preamble(w, Kind::kVfiDesign);
  put_vfi_design(w, design);
  return w.take();
}

bool decode_vfi_design(std::string_view bytes, vfi::VfiDesign& out) {
  ByteReader r{bytes};
  if (!get_preamble(r, Kind::kVfiDesign)) return false;
  vfi::VfiDesign design;
  if (!get_vfi_design(r, design) || !r.done()) return false;
  out = std::move(design);
  return true;
}

std::string encode_system_report(const sysmodel::SystemReport& report) {
  ByteWriter w;
  put_preamble(w, Kind::kSystemReport);
  put_system_report(w, report);
  return w.take();
}

bool decode_system_report(std::string_view bytes,
                          sysmodel::SystemReport& out) {
  ByteReader r{bytes};
  if (!get_preamble(r, Kind::kSystemReport)) return false;
  sysmodel::SystemReport report;
  if (!get_system_report(r, report) || !r.done()) return false;
  out = std::move(report);
  return true;
}

std::string encode_system_comparison(const sysmodel::SystemComparison& cmp) {
  ByteWriter w;
  put_preamble(w, Kind::kSystemComparison);
  put_system_report(w, cmp.nvfi_mesh);
  put_system_report(w, cmp.vfi_mesh);
  put_system_report(w, cmp.vfi_winoc);
  return w.take();
}

bool decode_system_comparison(std::string_view bytes,
                              sysmodel::SystemComparison& out) {
  ByteReader r{bytes};
  if (!get_preamble(r, Kind::kSystemComparison)) return false;
  sysmodel::SystemComparison cmp;
  if (!get_system_report(r, cmp.nvfi_mesh) ||
      !get_system_report(r, cmp.vfi_mesh) ||
      !get_system_report(r, cmp.vfi_winoc) || !r.done()) {
    return false;
  }
  out = std::move(cmp);
  return true;
}

}  // namespace vfimr::store
