#include "store/eval_store.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/require.hpp"
#include "store/bytes.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define VFIMR_STORE_POSIX 1
#endif

namespace vfimr::store {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x56465354u;  // "VFST"

struct RecordHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t format = kStoreFormatVersion;
  std::uint64_t key_len = 0;
  std::uint64_t val_len = 0;
  std::uint64_t key_hash = 0;
  std::uint32_t crc = 0;  ///< crc32 over key bytes then value bytes
};

// Serialized header size: fields written one by one (never the struct, so
// padding cannot leak onto disk).
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8 + 4;

void append_header(std::string& out, const RecordHeader& h) {
  ByteWriter w;
  w.put(h.magic);
  w.put(h.format);
  w.put(h.key_len);
  w.put(h.val_len);
  w.put(h.key_hash);
  w.put(h.crc);
  out += w.bytes();
}

bool parse_header(const char* p, std::size_t n, RecordHeader& h) {
  ByteReader r{std::string_view{p, n}};
  r.get(h.magic);
  r.get(h.format);
  r.get(h.key_len);
  r.get(h.val_len);
  r.get(h.key_hash);
  r.get(h.crc);
  return r.ok();
}

std::uint32_t record_crc(std::string_view key, std::string_view value) {
  std::string joined;
  joined.reserve(key.size() + value.size());
  joined.append(key);
  joined.append(value);
  return crc32(joined);
}

/// Advisory exclusive lock on `<dir>/LOCK`, held for the scope.  Advisory
/// by design: commits are already safe against readers (atomic renames of
/// unique names); the lock serializes concurrent writer processes so their
/// segment commits — and any future compaction — cannot interleave.
class ScopedDirLock {
 public:
  explicit ScopedDirLock(const std::string& dir) {
#ifdef VFIMR_STORE_POSIX
    fd_ = ::open((dir + "/LOCK").c_str(), O_CREAT | O_RDWR, 0644);
    if (fd_ >= 0) ::flock(fd_, LOCK_EX);
#else
    (void)dir;
#endif
  }
  ~ScopedDirLock() {
#ifdef VFIMR_STORE_POSIX
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
#endif
  }
  ScopedDirLock(const ScopedDirLock&) = delete;
  ScopedDirLock& operator=(const ScopedDirLock&) = delete;

 private:
#ifdef VFIMR_STORE_POSIX
  int fd_ = -1;
#endif
};

/// Write `data` to `path` and force it to stable storage before returning.
bool write_file_synced(const std::string& path, const std::string& data) {
#ifdef VFIMR_STORE_POSIX
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  return synced;
#else
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
#endif
}

std::uint64_t process_tag() {
#ifdef VFIMR_STORE_POSIX
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

/// Process-wide flush sequence.  Segment names embed <pid>-<seq>; the pid
/// separates concurrent processes, this counter separates concurrent
/// EvalStore instances *within* one process (two instances with per-object
/// counters would both start at 0 and rename over each other's segments).
std::uint64_t next_flush_seq() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::string domain_key(KeyDomain domain, std::string_view key) {
  std::string out;
  out.reserve(1 + key.size());
  out.push_back(static_cast<char>(domain));
  out.append(key);
  return out;
}

EvalStore::EvalStore(std::string root, std::size_t shards)
    : shards_(shards == 0 ? 1 : shards) {
  dir_ = root + "/v" + std::to_string(kStoreFormatVersion);
  std::error_code ec;
  fs::create_directories(dir_, ec);
  VFIMR_REQUIRE_MSG(!ec, "cannot create evaluation store directory '"
                             << dir_ << "': " << ec.message());
  refresh();
}

EvalStore::~EvalStore() {
  try {
    flush();
  } catch (...) {
    // A failing flush loses the pending batch — the cache contract permits
    // losing writes, never corrupting committed data.
  }
}

void EvalStore::scan_segment_locked(const std::string& name) {
  const std::string path = dir_ + "/" + name;
  std::ifstream in{path, std::ios::binary};
  if (!in) return;
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);

  const std::uint32_t file_id = static_cast<std::uint32_t>(files_.size());
  files_.push_back(name);
  scanned_.insert(name);

  char header_buf[kHeaderBytes];
  std::uint64_t offset = 0;
  while (offset + kHeaderBytes <= file_size) {
    in.seekg(static_cast<std::streamoff>(offset));
    if (!in.read(header_buf, kHeaderBytes)) break;
    RecordHeader h;
    if (!parse_header(header_buf, kHeaderBytes, h) || h.magic != kMagic) {
      // Framing lost: drop the rest of this segment (committed records
      // before the corruption stay indexed).
      ++stats_.corrupt_records;
      break;
    }
    const std::uint64_t payload = h.key_len + h.val_len;
    if (payload > file_size - offset - kHeaderBytes) {
      // Truncated tail (e.g. a crash mid-copy of a segment): ignore it.
      ++stats_.corrupt_records;
      break;
    }
    if (h.format != kStoreFormatVersion) {
      // A record of a foreign format version is never trusted — skip it and
      // let the evaluation recompute (and re-store) it.
      ++stats_.stale_records;
    } else {
      index_[h.key_hash].push_back(
          Loc{file_id, offset, h.key_len, h.val_len});
      ++stats_.records_scanned;
    }
    offset += kHeaderBytes + payload;
  }
}

void EvalStore::refresh() {
  std::lock_guard<std::mutex> lock{mutex_};
  std::vector<std::string> names;
  std::error_code ec;
  for (fs::directory_iterator it{dir_, ec}, end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() > 4 && name.rfind("seg-", 0) == 0 &&
        name.compare(name.size() - 4, 4, ".seg") == 0 &&
        scanned_.count(name) == 0) {
      names.push_back(name);
    }
  }
  // Deterministic index order regardless of directory enumeration order.
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) scan_segment_locked(name);
}

bool EvalStore::read_record_locked(const Loc& loc, std::string_view key,
                                   std::string& value) {
  if (loc.key_len != key.size()) return false;
  std::ifstream in{dir_ + "/" + files_[loc.file], std::ios::binary};
  if (!in) return false;

  char header_buf[kHeaderBytes];
  in.seekg(static_cast<std::streamoff>(loc.offset));
  if (!in.read(header_buf, kHeaderBytes)) return false;
  RecordHeader h;
  if (!parse_header(header_buf, kHeaderBytes, h) || h.magic != kMagic ||
      h.format != kStoreFormatVersion || h.key_len != loc.key_len ||
      h.val_len != loc.val_len) {
    ++stats_.corrupt_records;
    return false;
  }

  std::string stored_key(static_cast<std::size_t>(h.key_len), '\0');
  std::string stored_val(static_cast<std::size_t>(h.val_len), '\0');
  if (!in.read(stored_key.data(),
               static_cast<std::streamsize>(stored_key.size())) ||
      !in.read(stored_val.data(),
               static_cast<std::streamsize>(stored_val.size()))) {
    ++stats_.corrupt_records;
    return false;
  }
  stats_.bytes_read += kHeaderBytes + h.key_len + h.val_len;
  if (record_crc(stored_key, stored_val) != h.crc) {
    // Bit rot or a torn write: never serve it — the caller recomputes.
    ++stats_.corrupt_records;
    return false;
  }
  if (stored_key != key) return false;  // index-hash collision
  value = std::move(stored_val);
  return true;
}

bool EvalStore::get(std::string_view key, std::string& value) {
  std::lock_guard<std::mutex> lock{mutex_};
  const auto fresh = fresh_.find(std::string{key});
  if (fresh != fresh_.end()) {
    value = fresh->second;
    ++stats_.hits;
    return true;
  }
  const auto it = index_.find(fnv1a64(key));
  if (it != index_.end()) {
    for (const Loc& loc : it->second) {
      if (read_record_locked(loc, key, value)) {
        ++stats_.hits;
        return true;
      }
    }
  }
  ++stats_.misses;
  return false;
}

void EvalStore::put(std::string_view key, std::string value) {
  std::lock_guard<std::mutex> lock{mutex_};
  std::string k{key};
  if (fresh_.count(k) > 0) return;
  // Already on disk?  Content addressing makes a rewrite pointless.
  const auto it = index_.find(fnv1a64(k));
  if (it != index_.end()) {
    std::string existing;
    for (const Loc& loc : it->second) {
      if (read_record_locked(loc, k, existing)) return;
    }
  }
  pending_.emplace_back(k, value);
  fresh_.emplace(std::move(k), std::move(value));
}

void EvalStore::flush() {
  std::vector<std::pair<std::string, std::string>> batch;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    batch.swap(pending_);
  }
  if (batch.empty()) return;

  // Bucket by key-hash shard so independent key ranges land in independent
  // segment files (smaller scan units, and a natural layout for future
  // per-shard compaction).
  std::vector<std::string> shard_bytes(shards_);
  for (const auto& [key, value] : batch) {
    RecordHeader h;
    h.key_len = key.size();
    h.val_len = value.size();
    h.key_hash = fnv1a64(key);
    h.crc = record_crc(key, value);
    std::string& out = shard_bytes[h.key_hash % shards_];
    append_header(out, h);
    out += key;
    out += value;
  }

  const ScopedDirLock dir_lock{dir_};
  const std::uint64_t seq = next_flush_seq();
  std::uint64_t written = 0;
  std::vector<std::string> committed;
  for (std::size_t s = 0; s < shards_; ++s) {
    if (shard_bytes[s].empty()) continue;
    std::string base = "s";
    base += std::to_string(s);
    base += '-';
    base += std::to_string(process_tag());
    base += '-';
    base += std::to_string(seq);
    const std::string tmp = dir_ + "/tmp-" + base + ".part";
    const std::string seg_name = "seg-" + base + ".seg";
    if (!write_file_synced(tmp, shard_bytes[s])) {
      std::error_code ec;
      fs::remove(tmp, ec);
      continue;  // lost batch, committed data untouched
    }
    std::error_code ec;
    fs::rename(tmp, dir_ + "/" + seg_name, ec);
    if (ec) {
      fs::remove(tmp, ec);
      continue;
    }
    written += shard_bytes[s].size();
    committed.push_back(seg_name);
  }

  std::lock_guard<std::mutex> lock{mutex_};
  stats_.bytes_written += written;
  // Index our own segments (the records are also in fresh_, but indexing
  // keeps keys()/segments() and future lookups consistent with a re-open).
  for (const std::string& name : committed) scan_segment_locked(name);
}

namespace {

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

bool EvalStore::put_meta(std::string_view key, std::string_view value) {
  RecordHeader h;
  h.key_len = key.size();
  h.val_len = value.size();
  h.key_hash = fnv1a64(key);
  h.crc = record_crc(key, value);
  std::string bytes;
  bytes.reserve(kHeaderBytes + key.size() + value.size());
  append_header(bytes, h);
  bytes += key;
  bytes += value;

  const std::string base = hex64(h.key_hash);
  const std::string tmp =
      dir_ + "/tmp-meta-" + base + "-" + std::to_string(process_tag()) +
      ".part";
  const ScopedDirLock dir_lock{dir_};
  if (!write_file_synced(tmp, bytes)) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return false;
  }
  std::error_code ec;
  fs::rename(tmp, dir_ + "/meta-" + base + ".mf", ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  std::lock_guard<std::mutex> lock{mutex_};
  stats_.bytes_written += bytes.size();
  return true;
}

bool EvalStore::get_meta(std::string_view key, std::string& value) {
  const std::string path = dir_ + "/meta-" + hex64(fnv1a64(key)) + ".mf";
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  char header_buf[kHeaderBytes];
  if (!in.read(header_buf, kHeaderBytes)) return false;
  RecordHeader h;
  if (!parse_header(header_buf, kHeaderBytes, h) || h.magic != kMagic ||
      h.format != kStoreFormatVersion || h.key_len != key.size()) {
    return false;
  }
  std::string stored_key(static_cast<std::size_t>(h.key_len), '\0');
  std::string stored_val(static_cast<std::size_t>(h.val_len), '\0');
  if (!in.read(stored_key.data(),
               static_cast<std::streamsize>(stored_key.size())) ||
      !in.read(stored_val.data(),
               static_cast<std::streamsize>(stored_val.size()))) {
    return false;
  }
  if (record_crc(stored_key, stored_val) != h.crc || stored_key != key) {
    return false;
  }
  {
    std::lock_guard<std::mutex> lock{mutex_};
    stats_.bytes_read += kHeaderBytes + h.key_len + h.val_len;
  }
  value = std::move(stored_val);
  return true;
}

StoreStats EvalStore::stats() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return stats_;
}

std::size_t EvalStore::keys() const {
  std::lock_guard<std::mutex> lock{mutex_};
  std::size_t indexed = 0;
  for (const auto& [hash, locs] : index_) indexed += locs.size();
  // fresh_ entries that were flushed are also indexed; the exact distinct
  // count is not worth a full key scan — report the larger of the two
  // views (equal once everything is flushed).
  return std::max(indexed, fresh_.size());
}

std::size_t EvalStore::segments() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return files_.size();
}

}  // namespace vfimr::store
