#include "store/bytes.hpp"

#include <array>

namespace vfimr::store {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace vfimr::store
