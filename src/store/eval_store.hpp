#pragma once
// EvalStore: the disk tier of the evaluation memo stack (DESIGN.md §16).
//
// A content-addressed key/value store shared by every process that points
// VFIMR_CACHE_DIR (or --cache-dir) at the same directory.  Keys are the
// existing field-by-field cache keys of the in-memory memo layer
// (NetworkEvaluator, PlatformCache, the incremental sweep driver); values
// are the versioned canonical encodings from store/codec.hpp.  Because keys
// are exact input bytes and values are exact result bytes, a disk hit is
// bit-identical to a fresh computation by construction — and anything less
// (truncation, bit rot, schema drift) must degrade to a recompute, never to
// wrong data.
//
// On-disk layout (under `<root>/v<kStoreFormatVersion>/`):
//   seg-s<shard>-<pid>-<seq>.seg   committed, immutable segment files
//   tmp-...part                    in-flight writer batches (pre-rename)
//   LOCK                           advisory flock taken around commits
//
// Each segment is a run of self-delimiting records:
//   [magic u32][format u32][key_len u64][val_len u64][key_hash u64]
//   [crc32(key+value) u32][key bytes][value bytes]
//
// Write path: put() queues records in memory (immediately visible to this
// process's get()); flush() buckets them by key-hash shard, writes one
// fsynced temp file per non-empty shard and atomically renames it into
// place while holding the advisory LOCK — so concurrent writer processes
// (sharded sweep workers, `--shard i/N`) interleave whole segments, never
// partial records, and a crash leaves only ignorable tmp files.
//
// Read path: open() scans every committed segment's record headers into an
// in-memory index (key_hash -> file locations).  A truncated tail or a
// corrupt header ends that segment's scan (the committed prefix stays
// usable); a record whose format version differs is skipped and counted.
// get() reads the candidate record back, re-verifies the CRC and compares
// the FULL key bytes — a failed checksum or a hash collision is a miss,
// never a wrong answer.
//
// Thread safety: all public methods are safe to call concurrently; the
// in-memory side is guarded by one mutex (disk reads happen under it too —
// records are small and lookups are rare next to the simulations they
// replace).

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace vfimr::store {

/// Bump when the record framing changes.  Stores of a different version
/// live in a different `v<N>` subdirectory (and any stray record of a
/// foreign version inside the directory is skipped at scan), so a stale
/// store is ignored — recomputed, never trusted.
inline constexpr std::uint32_t kStoreFormatVersion = 1;

struct StoreStats {
  std::uint64_t hits = 0;    ///< get() served (from fresh puts or segments)
  std::uint64_t misses = 0;  ///< get() found nothing usable
  std::uint64_t bytes_read = 0;     ///< record bytes read back from segments
  std::uint64_t bytes_written = 0;  ///< record bytes committed by flush()
  std::uint64_t records_scanned = 0;   ///< records indexed across segments
  std::uint64_t corrupt_records = 0;   ///< CRC / framing failures skipped
  std::uint64_t stale_records = 0;     ///< foreign-version records skipped

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

class EvalStore {
 public:
  /// Opens (creating if needed) the store under `<root>/v<format>` and
  /// indexes every committed segment.  Throws RequirementError when the
  /// directory cannot be created.
  explicit EvalStore(std::string root, std::size_t shards = 8);

  /// Flushes pending records (best-effort: a failing disk loses the batch,
  /// never corrupts committed segments).
  ~EvalStore();

  EvalStore(const EvalStore&) = delete;
  EvalStore& operator=(const EvalStore&) = delete;

  /// Exact lookup.  True + value bytes when a record with exactly `key`
  /// exists and passes its checksum; false (a miss) otherwise — including
  /// corrupt, truncated or foreign-version records.
  bool get(std::string_view key, std::string& value);

  /// Queue a record for commit.  Immediately visible to this process's
  /// get(); durable (and visible to other processes' next open/refresh)
  /// after flush().  A key already present is left as-is: records are
  /// content-addressed, so an overwrite could only rewrite the same bytes.
  void put(std::string_view key, std::string value);

  /// Commit pending records: one fsynced temp segment per non-empty shard,
  /// atomically renamed into place under the advisory directory lock.
  void flush();

  /// Named, *mutable* metadata record (e.g. a sweep manifest): unlike put(),
  /// a later put_meta for the same key replaces the value.  Each meta key
  /// lives in its own `meta-<hash>.mf` file, written with the same
  /// CRC-framed record format and committed by atomic rename under the
  /// directory lock — latest committed write wins.  Durable immediately (no
  /// flush() needed).  Returns false when the disk write fails.
  bool put_meta(std::string_view key, std::string_view value);

  /// Read back a meta record: true + value when the file exists, frames
  /// correctly, passes its CRC and stores exactly `key`; false otherwise
  /// (corrupt or foreign-version meta is ignored, never trusted).
  bool get_meta(std::string_view key, std::string& value);

  /// Index segments committed by other processes since open()/last
  /// refresh().
  void refresh();

  StoreStats stats() const;
  /// Distinct keys visible to get() (indexed + pending).
  std::size_t keys() const;
  /// Committed segment files currently indexed.
  std::size_t segments() const;
  const std::string& dir() const { return dir_; }

 private:
  struct Loc {
    std::uint32_t file = 0;  ///< index into files_
    std::uint64_t offset = 0;  ///< of the record header
    std::uint64_t key_len = 0;
    std::uint64_t val_len = 0;
  };

  void scan_segment_locked(const std::string& name);
  bool read_record_locked(const Loc& loc, std::string_view key,
                          std::string& value);

  std::string dir_;
  std::size_t shards_;
  mutable std::mutex mutex_;
  std::vector<std::string> files_;   ///< indexed segment file names
  std::set<std::string> scanned_;    ///< names already indexed
  std::unordered_map<std::uint64_t, std::vector<Loc>> index_;
  /// Records this process put() but other processes may not see yet; kept
  /// for the process lifetime so get() never re-reads what we just wrote.
  std::unordered_map<std::string, std::string> fresh_;
  std::vector<std::pair<std::string, std::string>> pending_;
  StoreStats stats_;
};

/// Compose a domain-tagged store key: one store serves several key spaces
/// (network evaluations, platform designs, sweep points, sweep manifests),
/// and the domain byte guarantees they can never collide even if two
/// domains serialized identical input bytes.
enum class KeyDomain : std::uint8_t {
  kNetworkEval = 1,
  kPlatformDesign = 2,
  kSweepPoint = 3,
  kSweepManifest = 4,
};

std::string domain_key(KeyDomain domain, std::string_view key);

}  // namespace vfimr::store
