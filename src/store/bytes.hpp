#pragma once
// Canonical byte serialization primitives for the persistent evaluation
// store (DESIGN.md §16).
//
// The store's contract is exactness: a record read back from disk must be
// byte-for-byte what was written, and a decoded value must be bit-identical
// to the encoded one.  ByteWriter/ByteReader therefore copy raw object
// bytes of trivially-copyable scalars field by field — never whole structs,
// whose padding bytes are unspecified — in host byte order (the store is a
// host-local cache, not an interchange format; a foreign-endian store would
// fail its per-record checksum and be recomputed, never misread).
//
// crc32() guards each on-disk record against truncation and bit rot;
// fnv1a64() is the index hash over full content-addressed keys (collisions
// are resolved by comparing the stored key bytes, so a hash collision can
// never alias two different computations).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace vfimr::store {

/// Append-only canonical byte writer.  put() accepts trivially-copyable
/// scalar types (integers, doubles, enums); aggregates must be serialized
/// field by field so struct padding never leaks into the stream.
class ByteWriter {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteWriter::put requires trivially copyable types");
    static_assert(!std::is_pointer_v<T>,
                  "pointers must never enter a serialized record");
    buf_.append(reinterpret_cast<const char*>(&v), sizeof(T));
  }

  void put_bytes(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }

  /// Length-prefixed string / blob.
  void put_string(std::string_view s) {
    put(static_cast<std::uint64_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  /// Length-prefixed vector of trivially-copyable elements, element by
  /// element.
  template <typename T>
  void put_vector(const std::vector<T>& v) {
    put(static_cast<std::uint64_t>(v.size()));
    for (const T& x : v) put(x);
  }

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Sequential reader over a byte span.  Every get() validates bounds; the
/// first short read latches ok() to false and later reads return zeroed
/// values, so decoders can check ok() once at the end instead of after
/// every field.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  template <typename T>
  bool get(T& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!ok_ || data_.size() - pos_ < sizeof(T)) {
      ok_ = false;
      out = T{};
      return false;
    }
    std::memcpy(&out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool get_string(std::string& out) {
    std::uint64_t n = 0;
    if (!get(n) || data_.size() - pos_ < n) {
      ok_ = false;
      out.clear();
      return false;
    }
    out.assign(data_.data() + pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return true;
  }

  template <typename T>
  bool get_vector(std::vector<T>& out) {
    std::uint64_t n = 0;
    out.clear();
    if (!get(n)) return false;
    // Reject sizes the remaining bytes cannot possibly hold, so a corrupt
    // length field fails fast instead of attempting a huge allocation.
    if ((data_.size() - pos_) / sizeof(T) < n) {
      ok_ = false;
      return false;
    }
    out.resize(static_cast<std::size_t>(n));
    for (T& x : out) {
      if (!get(x)) return false;
    }
    return true;
  }

  bool ok() const { return ok_; }
  /// True when the reader is still healthy and every byte was consumed —
  /// the decoder-side schema check against trailing garbage.
  bool done() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib one) over a byte span.
std::uint32_t crc32(const void* data, std::size_t n);
inline std::uint32_t crc32(std::string_view s) {
  return crc32(s.data(), s.size());
}

/// FNV-1a 64-bit content hash — the store's index hash over full keys.
std::uint64_t fnv1a64(std::string_view s);

}  // namespace vfimr::store
