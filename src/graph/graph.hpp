#pragma once
// Undirected graph with per-edge attributes.  This is the substrate for NoC
// topologies (mesh, small-world wireline, wireless overlay), for routing
// table construction and for the VFI clustering cost evaluation.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace vfimr::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr std::uint32_t kInvalidId = 0xffffffffu;

enum class EdgeKind : std::uint8_t {
  kWire,      ///< planar metal link, energy scales with physical length
  kWireless,  ///< mm-wave broadcast shortcut (token-arbitrated channel)
};

struct Edge {
  NodeId a = kInvalidId;
  NodeId b = kInvalidId;
  EdgeKind kind = EdgeKind::kWire;
  double length_mm = 0.0;  ///< physical wire length; 0 for wireless
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count);

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  /// Adds an undirected edge; parallel edges and self-loops are rejected.
  EdgeId add_edge(NodeId a, NodeId b, EdgeKind kind = EdgeKind::kWire,
                  double length_mm = 0.0);

  bool has_edge(NodeId a, NodeId b) const;
  std::optional<EdgeId> find_edge(NodeId a, NodeId b) const;

  const Edge& edge(EdgeId id) const;
  const std::vector<Edge>& edges() const { return edges_; }

  /// Edge ids incident on `n`.
  const std::vector<EdgeId>& incident(NodeId n) const;

  /// Neighbor node ids of `n` (one per incident edge).
  std::vector<NodeId> neighbors(NodeId n) const;

  std::size_t degree(NodeId n) const { return incident(n).size(); }

  /// The other endpoint of edge `e` as seen from `from`.
  NodeId other_end(EdgeId e, NodeId from) const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
};

/// Breadth-first hop distances from `src`; unreachable nodes get kUnreachable.
inline constexpr std::uint32_t kUnreachable = 0xffffffffu;
std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId src);

/// All-pairs hop counts via repeated BFS. result[s][d].
std::vector<std::vector<std::uint32_t>> all_pairs_hops(const Graph& g);

/// True iff every node is reachable from node 0 (or the graph is empty).
bool is_connected(const Graph& g);

/// Average shortest-path hop count over all ordered pairs (s != d).
/// Requires a connected graph.
double average_hop_count(const Graph& g);

/// Traffic-weighted average hop count: sum_{s,d} traffic[s][d] * hops(s,d) /
/// sum traffic.  `traffic` is row-major n*n; requires connectivity where
/// traffic > 0.
double weighted_hop_count(const Graph& g,
                          const std::vector<std::vector<double>>& traffic);

/// BFS spanning tree rooted at `root`: parent[i] is the parent node of i
/// (root's parent is itself).  Requires a connected graph.
std::vector<NodeId> bfs_spanning_tree(const Graph& g, NodeId root);

/// Node picked as up*/down* root: the most-connected node (ties -> lowest id),
/// the conventional heuristic for irregular-topology routing.
NodeId max_degree_node(const Graph& g);

}  // namespace vfimr::graph
