#include "graph/graph.hpp"

#include <algorithm>
#include <queue>

#include "common/require.hpp"

namespace vfimr::graph {

Graph::Graph(std::size_t node_count) : adjacency_(node_count) {}

EdgeId Graph::add_edge(NodeId a, NodeId b, EdgeKind kind, double length_mm) {
  VFIMR_REQUIRE(a < node_count() && b < node_count());
  VFIMR_REQUIRE_MSG(a != b, "self-loops are not valid NoC links");
  VFIMR_REQUIRE_MSG(!has_edge(a, b), "parallel links are not modeled");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{a, b, kind, length_mm});
  adjacency_[a].push_back(id);
  adjacency_[b].push_back(id);
  return id;
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  return find_edge(a, b).has_value();
}

std::optional<EdgeId> Graph::find_edge(NodeId a, NodeId b) const {
  VFIMR_REQUIRE(a < node_count() && b < node_count());
  const auto& inc = adjacency_[a];
  for (EdgeId e : inc) {
    if (other_end(e, a) == b) return e;
  }
  return std::nullopt;
}

const Edge& Graph::edge(EdgeId id) const {
  VFIMR_REQUIRE(id < edges_.size());
  return edges_[id];
}

const std::vector<EdgeId>& Graph::incident(NodeId n) const {
  VFIMR_REQUIRE(n < node_count());
  return adjacency_[n];
}

std::vector<NodeId> Graph::neighbors(NodeId n) const {
  std::vector<NodeId> out;
  out.reserve(incident(n).size());
  for (EdgeId e : incident(n)) out.push_back(other_end(e, n));
  return out;
}

NodeId Graph::other_end(EdgeId e, NodeId from) const {
  const Edge& ed = edge(e);
  VFIMR_REQUIRE(ed.a == from || ed.b == from);
  return ed.a == from ? ed.b : ed.a;
}

std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId src) {
  VFIMR_REQUIRE(src < g.node_count());
  std::vector<std::uint32_t> dist(g.node_count(), kUnreachable);
  std::queue<NodeId> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

std::vector<std::vector<std::uint32_t>> all_pairs_hops(const Graph& g) {
  std::vector<std::vector<std::uint32_t>> out;
  out.reserve(g.node_count());
  for (NodeId s = 0; s < g.node_count(); ++s) out.push_back(bfs_hops(g, s));
  return out;
}

bool is_connected(const Graph& g) {
  if (g.node_count() == 0) return true;
  const auto dist = bfs_hops(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

double average_hop_count(const Graph& g) {
  VFIMR_REQUIRE_MSG(is_connected(g), "average_hop_count needs connectivity");
  const std::size_t n = g.node_count();
  if (n < 2) return 0.0;
  double total = 0.0;
  for (NodeId s = 0; s < n; ++s) {
    const auto dist = bfs_hops(g, s);
    for (NodeId d = 0; d < n; ++d) {
      if (d != s) total += static_cast<double>(dist[d]);
    }
  }
  return total / static_cast<double>(n * (n - 1));
}

double weighted_hop_count(const Graph& g,
                          const std::vector<std::vector<double>>& traffic) {
  VFIMR_REQUIRE(traffic.size() == g.node_count());
  double weight_total = 0.0;
  double acc = 0.0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    VFIMR_REQUIRE(traffic[s].size() == g.node_count());
    const auto dist = bfs_hops(g, s);
    for (NodeId d = 0; d < g.node_count(); ++d) {
      const double w = traffic[s][d];
      if (w <= 0.0 || s == d) continue;
      VFIMR_REQUIRE_MSG(dist[d] != kUnreachable,
                        "traffic between disconnected nodes");
      acc += w * static_cast<double>(dist[d]);
      weight_total += w;
    }
  }
  return weight_total > 0.0 ? acc / weight_total : 0.0;
}

std::vector<NodeId> bfs_spanning_tree(const Graph& g, NodeId root) {
  VFIMR_REQUIRE(root < g.node_count());
  VFIMR_REQUIRE_MSG(is_connected(g), "spanning tree needs connectivity");
  std::vector<NodeId> parent(g.node_count(), kInvalidId);
  std::queue<NodeId> q;
  parent[root] = root;
  q.push(root);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (NodeId v : g.neighbors(u)) {
      if (parent[v] == kInvalidId) {
        parent[v] = u;
        q.push(v);
      }
    }
  }
  return parent;
}

NodeId max_degree_node(const Graph& g) {
  VFIMR_REQUIRE(g.node_count() > 0);
  // Highest degree, ties broken by closeness centrality (smallest total hop
  // distance) — as the up*/down* root this keeps "up" detours short and
  // spreads root-adjacent load.
  NodeId best = 0;
  std::uint64_t best_dist = 0;
  auto total_dist = [&](NodeId n) {
    std::uint64_t acc = 0;
    for (std::uint32_t d : bfs_hops(g, n)) {
      if (d != kUnreachable) acc += d;
    }
    return acc;
  };
  best_dist = total_dist(0);
  for (NodeId n = 1; n < g.node_count(); ++n) {
    if (g.degree(n) < g.degree(best)) continue;
    const std::uint64_t dist = total_dist(n);
    if (g.degree(n) > g.degree(best) ||
        (g.degree(n) == g.degree(best) && dist < best_dist)) {
      best = n;
      best_dist = dist;
    }
  }
  return best;
}

}  // namespace vfimr::graph
