#include "telemetry/timeseries.hpp"

#include <cmath>
#include <stdexcept>

namespace vfimr::telemetry {

TimeSeries::TimeSeries(double epoch_s) : epoch_s_{epoch_s} {
  if (!(epoch_s > 0.0)) {
    throw std::invalid_argument("TimeSeries needs epoch_s > 0");
  }
}

std::int64_t TimeSeries::epoch_of(double t_s) const {
  return static_cast<std::int64_t>(std::floor(t_s / epoch_s_));
}

void TimeSeries::record(double t_s, double value) {
  const std::int64_t epoch = epoch_of(t_s);
  std::lock_guard lock{mu_};
  EpochStats& e = epochs_[epoch];
  if (e.count == 0) {
    e.min = value;
    e.max = value;
  } else {
    if (value < e.min) e.min = value;
    if (value > e.max) e.max = value;
  }
  e.sum += value;
  ++e.count;
  ++samples_;
}

std::uint64_t TimeSeries::samples() const {
  std::lock_guard lock{mu_};
  return samples_;
}

std::vector<std::pair<std::int64_t, EpochStats>> TimeSeries::snapshot() const {
  std::lock_guard lock{mu_};
  std::vector<std::pair<std::int64_t, EpochStats>> out;
  out.reserve(epochs_.size());
  for (const auto& [epoch, stats] : epochs_) out.emplace_back(epoch, stats);
  return out;
}

void TimeSeries::merge(const TimeSeries& other) {
  if (other.epoch_s_ != epoch_s_) {
    throw std::invalid_argument("TimeSeries::merge epoch width mismatch");
  }
  // Snapshot first: taking both locks at once would need a global order.
  const auto theirs = other.snapshot();
  std::lock_guard lock{mu_};
  for (const auto& [epoch, stats] : theirs) {
    EpochStats& e = epochs_[epoch];
    if (e.count == 0) {
      e.min = stats.min;
      e.max = stats.max;
    } else {
      if (stats.min < e.min) e.min = stats.min;
      if (stats.max > e.max) e.max = stats.max;
    }
    e.sum += stats.sum;
    e.count += stats.count;
    samples_ += stats.count;
  }
}

}  // namespace vfimr::telemetry
