#pragma once
// Cycle-domain event tracer.  Tracks (process/thread name pairs) map onto
// Chrome trace-event pid/tid rows; events land on per-thread buffers so the
// hot path never takes a lock: each OS thread appends to a buffer it owns
// exclusively, created once under the registration mutex and cached in a
// thread_local keyed by the tracer's instance id (so a thread touching a
// second tracer — or a tracer recreated at the same address — never writes
// through a stale pointer).  Readers (exporters) run after the simulation
// joined its workers; the registration mutex makes the buffer list itself
// safe to walk at any time.
//
// Timestamps are doubles in microseconds of *simulated* time.  The adopted
// conventions (see DESIGN.md §10): 1 NoC cycle = 1 µs, 1 simulated second =
// 1e6 µs, real (wall-clock) scheduler events use µs since the run started.

#include <atomic>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vfimr::telemetry {

using TrackId = std::uint32_t;

/// A numeric event argument; `key` must have static storage duration (call
/// sites pass string literals), keeping events cheap to record.
struct TraceArg {
  const char* key;
  double value;
};

struct TraceEvent {
  enum class Phase : std::uint8_t {
    kComplete,    ///< Chrome "X": a span with ts + dur
    kInstant,     ///< Chrome "i": a point-in-time marker
    kCounter,     ///< Chrome "C": a sampled counter series
    kAsyncBegin,  ///< Chrome "b": nestable async span begin (cat + id)
    kAsyncEnd,    ///< Chrome "e": nestable async span end (cat + id)
    kFlowStart,   ///< Chrome "s": flow arrow tail (cat + id)
    kFlowFinish,  ///< Chrome "f": flow arrow head (cat + id)
  };
  Phase phase = Phase::kInstant;
  TrackId track = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;       ///< kComplete only
  std::uint64_t id = 0;      ///< async/flow correlation id
  const char* cat = nullptr; ///< async/flow category (static storage)
  std::string name;
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  struct TrackInfo {
    std::string process;  ///< Chrome process row, e.g. "Kmeans/VFI WiNoC"
    std::string thread;   ///< Chrome thread row, e.g. "worker 12"
  };

  /// `max_events` bounds total buffered events across all threads; once
  /// reached, further events are counted in dropped() and discarded, so a
  /// runaway trace degrades to a truncated file rather than OOM.
  explicit Tracer(std::uint64_t max_events = 4'000'000);

  /// Register (or re-register) a track; returns a stable id.  The same
  /// (process, thread) pair always maps to one track.
  TrackId track(const std::string& process, const std::string& thread);

  void complete(TrackId track, std::string name, double ts_us, double dur_us,
                std::initializer_list<TraceArg> args = {});
  void instant(TrackId track, std::string name, double ts_us,
               std::initializer_list<TraceArg> args = {});
  void counter(TrackId track, const char* series, double ts_us, double value);

  /// Nestable async span (Chrome "b"/"e"): spans with the same (cat, id)
  /// nest into one lane regardless of which track emits them — the cluster
  /// tier draws one span tree per job this way.  `cat` must have static
  /// storage duration (call sites pass string literals).
  void async_begin(TrackId track, std::string name, const char* cat,
                   std::uint64_t id, double ts_us,
                   std::initializer_list<TraceArg> args = {});
  void async_end(TrackId track, std::string name, const char* cat,
                 std::uint64_t id, double ts_us,
                 std::initializer_list<TraceArg> args = {});

  /// Flow arrow (Chrome "s" -> "f"): links a point on one track to a later
  /// point on another (retry/hedge hand-offs).  Start and finish must agree
  /// on (name, cat, id).
  void flow_start(TrackId track, std::string name, const char* cat,
                  std::uint64_t id, double ts_us);
  void flow_finish(TrackId track, std::string name, const char* cat,
                   std::uint64_t id, double ts_us);

  std::vector<TrackInfo> tracks() const;
  std::uint64_t events() const {
    return std::min(events_.load(std::memory_order_relaxed), max_events_);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Visit every buffered event, buffer by buffer in registration order,
  /// events within a buffer in append order.  Deterministic for a
  /// single-threaded writer.  Call after writer threads joined.
  template <typename Fn>
  void for_each_event(Fn&& fn) const {
    std::lock_guard lock{mu_};
    for (const auto& buf : buffers_) {
      for (const TraceEvent& ev : buf->events) fn(ev);
    }
  }

 private:
  struct Buffer {
    std::deque<TraceEvent> events;
  };

  Buffer& local_buffer();
  void emit(TraceEvent ev);

  const std::uint64_t id_;  ///< process-unique, keys the thread_local cache
  const std::uint64_t max_events_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::vector<TrackInfo> tracks_;
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace vfimr::telemetry
