#pragma once
// TelemetrySink: the single object a run threads through every layer.  All
// instrumentation sites hold a `TelemetrySink*` that is null by default, so
// the disabled path is one pointer test per site and the simulators compile
// to the pre-telemetry code when no sink is attached — the golden-figure,
// fast-path A/B and fault-replay byte-identity guarantees are regression
// tested with the sink both attached and absent.

#include <cstdint>

#include "telemetry/chrome_trace.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace vfimr::telemetry {

struct TelemetryConfig {
  /// Trace one NoC packet journey per this many packet ids (1 = every
  /// packet).  Sampling bounds trace volume: a 60k-cycle full-system run
  /// injects hundreds of thousands of packets per network.
  std::uint64_t noc_packet_sample_every = 64;
  /// Hard cap on buffered trace events across all threads (see Tracer).
  std::uint64_t max_trace_events = 4'000'000;
  /// Per-phase cap on task lifecycle events emitted by the task-level
  /// simulator; phases with more tasks keep counting in the metrics but
  /// stop adding trace spans past the cap.
  std::uint64_t max_task_events_per_phase = 4'096;
  /// Epoch width (simulated seconds) for the per-application utilization /
  /// power time series the full-system simulator records at phase
  /// boundaries.  The cluster tier picks its own epoch (ObsConfig).
  double sys_timeseries_epoch_s = 0.25;
};

class TelemetrySink {
 public:
  explicit TelemetrySink(TelemetryConfig config = {})
      : config_{config}, tracer_{config.max_trace_events} {}

  const TelemetryConfig& config() const { return config_; }
  MetricsRegistry& metrics() { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

 private:
  TelemetryConfig config_;
  MetricsRegistry metrics_;
  Tracer tracer_;
};

}  // namespace vfimr::telemetry
