#pragma once
// MetricsRegistry: named counters, gauges and fixed-bin histograms shared by
// every simulation layer.  Instruments are created once (mutex-guarded map)
// and then updated lock-free through relaxed atomics, so a single registry
// can sit behind many concurrent simulations under the parallel sweep
// runner without perturbing them or tripping TSan.
//
// Counters and histogram bucket counts are order-independent (integer adds
// commute), so snapshots are deterministic for a deterministic workload
// regardless of thread interleaving.  Gauge/histogram *double* sums are
// floating-point and therefore only bit-stable single-threaded; the
// determinism tests pin VFIMR_THREADS=1 for byte-compare runs.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json_lite.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "telemetry/timeseries.hpp"

namespace vfimr::telemetry {

namespace detail {
inline void atomic_add(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonic event count (steals, purges, backoffs, ...).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written scalar (occupancy, frequency, mem_scale, ...).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double v) { detail::atomic_add(v_, v); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bin histogram with atomic buckets; the update path mirrors
/// stats::Histogram::add (clamping out-of-range samples into the edge
/// buckets) so snapshot() reproduces what a serial Histogram would hold.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins);

  void add(double x);
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count() const { return total_.load(std::memory_order_relaxed); }

  /// Materialize into a plain vfimr::Histogram (quantiles, merge, render).
  Histogram snapshot() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// Streaming quantile (P² estimator, common/stats.hpp) behind a mutex: the
/// cluster serving tier tracks p50/p99/p999 job latency without storing
/// samples or knowing the range up front.  Unlike the lock-free instruments
/// above, adds serialize on the mutex; keep it off per-flit hot paths and
/// reserve it for per-job-scale events.
class QuantileMetric {
 public:
  explicit QuantileMetric(double p) : q_{p} {}

  void add(double x) {
    std::lock_guard lock{mu_};
    q_.add(x);
  }
  double p() const { return q_.p(); }
  std::uint64_t count() const {
    std::lock_guard lock{mu_};
    return q_.count();
  }
  /// NaN before the first sample (see P2Quantile::value) — snapshot() skips
  /// empty quantiles so NaN never leaks into the flat metric JSON.
  double value() const {
    std::lock_guard lock{mu_};
    return q_.value();
  }

 private:
  mutable std::mutex mu_;
  P2Quantile q_;
};

/// Name -> instrument map.  Lookup/creation takes a mutex; call sites cache
/// the returned reference (instruments are never destroyed or moved while
/// the registry lives).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Creates on first use; later calls must repeat the same binning
  /// (std::invalid_argument otherwise — a silent mismatch would corrupt
  /// merged data).
  HistogramMetric& histogram(const std::string& name, double lo, double hi,
                             std::size_t bins);
  /// Creates on first use; later calls must repeat the same p
  /// (std::invalid_argument otherwise).
  QuantileMetric& quantile(const std::string& name, double p);
  /// Windowed epoch rollups over simulated seconds; later calls must repeat
  /// the same epoch width (std::invalid_argument otherwise).
  TimeSeries& timeseries(const std::string& name, double epoch_s);

  /// Flat metric map: counters/gauges by name; histograms expand into
  /// name.count / name.mean / name.p50 / name.p95 / name.p99 (the derived
  /// stats are omitted while empty — an absent metric, not a fake zero);
  /// quantile instruments report their estimate under their own name
  /// (likewise omitted while empty); time series expand into name.samples /
  /// name.epochs.
  json::MetricMap snapshot() const;

  /// Human-readable per-run summary (sorted by metric name).  Unlike
  /// snapshot(), empty histogram/quantile stats appear as explicit "n/a"
  /// rows so a summary never prints a bogus 0 (or NaN) for a metric that
  /// received no samples.
  TextTable summary_table() const;

  /// One row per (series, epoch) bucket across every registered time
  /// series, epochs ascending — the results/*_timeseries.csv shape.
  TextTable timeseries_table() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
  std::map<std::string, std::unique_ptr<QuantileMetric>> quantiles_;
  std::map<std::string, std::unique_ptr<TimeSeries>> timeseries_;
};

}  // namespace vfimr::telemetry
