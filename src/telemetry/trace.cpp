#include "telemetry/trace.hpp"

#include <utility>

namespace vfimr::telemetry {

namespace {
std::atomic<std::uint64_t> next_tracer_id{1};
}  // namespace

Tracer::Tracer(std::uint64_t max_events)
    : id_{next_tracer_id.fetch_add(1, std::memory_order_relaxed)},
      max_events_{max_events} {}

TrackId Tracer::track(const std::string& process, const std::string& thread) {
  std::lock_guard lock{mu_};
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].process == process && tracks_[i].thread == thread) {
      return static_cast<TrackId>(i);
    }
  }
  tracks_.push_back(TrackInfo{process, thread});
  return static_cast<TrackId>(tracks_.size() - 1);
}

std::vector<Tracer::TrackInfo> Tracer::tracks() const {
  std::lock_guard lock{mu_};
  return tracks_;
}

Tracer::Buffer& Tracer::local_buffer() {
  // Cache keyed by tracer instance id: a fresh tracer at a recycled address
  // gets a fresh buffer, and switching tracers re-registers cleanly.
  thread_local std::uint64_t cached_id = 0;
  thread_local Buffer* cached = nullptr;
  if (cached_id != id_) {
    std::lock_guard lock{mu_};
    buffers_.push_back(std::make_unique<Buffer>());
    cached = buffers_.back().get();
    cached_id = id_;
  }
  return *cached;
}

void Tracer::emit(TraceEvent ev) {
  if (events_.fetch_add(1, std::memory_order_relaxed) >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  local_buffer().events.push_back(std::move(ev));
}

void Tracer::complete(TrackId track, std::string name, double ts_us,
                      double dur_us, std::initializer_list<TraceArg> args) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kComplete;
  ev.track = track;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.name = std::move(name);
  ev.args.assign(args.begin(), args.end());
  emit(std::move(ev));
}

void Tracer::instant(TrackId track, std::string name, double ts_us,
                     std::initializer_list<TraceArg> args) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kInstant;
  ev.track = track;
  ev.ts_us = ts_us;
  ev.name = std::move(name);
  ev.args.assign(args.begin(), args.end());
  emit(std::move(ev));
}

void Tracer::counter(TrackId track, const char* series, double ts_us,
                     double value) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kCounter;
  ev.track = track;
  ev.ts_us = ts_us;
  ev.name = series;
  ev.args.push_back(TraceArg{"value", value});
  emit(std::move(ev));
}

void Tracer::async_begin(TrackId track, std::string name, const char* cat,
                         std::uint64_t id, double ts_us,
                         std::initializer_list<TraceArg> args) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kAsyncBegin;
  ev.track = track;
  ev.ts_us = ts_us;
  ev.id = id;
  ev.cat = cat;
  ev.name = std::move(name);
  ev.args.assign(args.begin(), args.end());
  emit(std::move(ev));
}

void Tracer::async_end(TrackId track, std::string name, const char* cat,
                       std::uint64_t id, double ts_us,
                       std::initializer_list<TraceArg> args) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kAsyncEnd;
  ev.track = track;
  ev.ts_us = ts_us;
  ev.id = id;
  ev.cat = cat;
  ev.name = std::move(name);
  ev.args.assign(args.begin(), args.end());
  emit(std::move(ev));
}

void Tracer::flow_start(TrackId track, std::string name, const char* cat,
                        std::uint64_t id, double ts_us) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kFlowStart;
  ev.track = track;
  ev.ts_us = ts_us;
  ev.id = id;
  ev.cat = cat;
  ev.name = std::move(name);
  emit(std::move(ev));
}

void Tracer::flow_finish(TrackId track, std::string name, const char* cat,
                         std::uint64_t id, double ts_us) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kFlowFinish;
  ev.track = track;
  ev.ts_us = ts_us;
  ev.id = id;
  ev.cat = cat;
  ev.name = std::move(name);
  emit(std::move(ev));
}

}  // namespace vfimr::telemetry
