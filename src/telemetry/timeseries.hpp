#pragma once
// telemetry::TimeSeries: windowed rollups over *simulated* seconds.  Samples
// land in fixed-width epoch buckets (floor(t / epoch_s)) holding sum / count
// / min / max, so a million-job serving run compresses to a few hundred rows
// while still answering "what did utilization / queue depth / power look
// like at t = 3.2 s?".  The instrument is RNG-free and mergeable: two series
// with the same epoch width combine bucket-by-bucket (integer counts
// commute; double sums are order-sensitive like every other FP reduction,
// so bit-stable merges feed buckets in a fixed order — see the merge test).
//
// Updates take a mutex (like QuantileMetric): epoch records happen at
// job-scale granularity, never on per-flit hot paths.

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace vfimr::telemetry {

/// One epoch bucket's aggregate.
struct EpochStats {
  double sum = 0.0;
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;

  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

class TimeSeries {
 public:
  /// `epoch_s` is the fixed bucket width in simulated seconds (> 0).
  explicit TimeSeries(double epoch_s);

  double epoch_s() const { return epoch_s_; }

  /// Bucket index of a timestamp: floor(t / epoch_s).  Negative timestamps
  /// land in negative epochs (the convention, not a special case).
  std::int64_t epoch_of(double t_s) const;

  /// Left edge of a bucket in simulated seconds.
  double epoch_start_s(std::int64_t epoch) const {
    return static_cast<double>(epoch) * epoch_s_;
  }

  void record(double t_s, double value);

  std::uint64_t samples() const;

  /// Buckets in ascending epoch order (only epochs that received samples).
  std::vector<std::pair<std::int64_t, EpochStats>> snapshot() const;

  /// Fold another series with the same epoch width into this one
  /// (std::invalid_argument on width mismatch).  Buckets fold in ascending
  /// epoch order of `other`, so merging the same set of series in any order
  /// yields identical counts/min/max and — for sums — identical values
  /// whenever the per-bucket additions are exact (see the order-independence
  /// property test).
  void merge(const TimeSeries& other);

 private:
  double epoch_s_;
  mutable std::mutex mu_;
  std::map<std::int64_t, EpochStats> epochs_;
  std::uint64_t samples_ = 0;
};

}  // namespace vfimr::telemetry
