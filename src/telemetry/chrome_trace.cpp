#include "telemetry/chrome_trace.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <vector>

namespace vfimr::telemetry {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

// %.17g round-trips doubles exactly and is locale-independent for the "C"
// numerics the simulators emit; identical inputs give identical bytes.
void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

struct TrackPlacement {
  int pid = 0;
  int tid = 0;
};

}  // namespace

std::string to_chrome_json(const Tracer& tracer) {
  const auto tracks = tracer.tracks();

  // Processes numbered in first-registration order; tids restart per process.
  std::map<std::string, int> pid_of;
  std::vector<TrackPlacement> place(tracks.size());
  std::map<int, int> next_tid;
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    auto [it, inserted] =
        pid_of.try_emplace(tracks[i].process,
                           static_cast<int>(pid_of.size()) + 1);
    place[i].pid = it->second;
    place[i].tid = ++next_tid[it->second];
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto event_prefix = [&] {
    if (!first) out += ",";
    first = false;
    out += "\n";
  };

  // Metadata: process names once, thread names per track.
  for (const auto& [process, pid] : pid_of) {
    event_prefix();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"name\":";
    append_json_string(out, process);
    out += "}}";
  }
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    event_prefix();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
    out += std::to_string(place[i].pid);
    out += ",\"tid\":";
    out += std::to_string(place[i].tid);
    out += ",\"args\":{\"name\":";
    append_json_string(out, tracks[i].thread);
    out += "}}";
  }

  tracer.for_each_event([&](const TraceEvent& ev) {
    if (ev.track >= tracks.size()) return;  // race-registered after snapshot
    const TrackPlacement& at = place[ev.track];
    event_prefix();
    out += "{\"ph\":\"";
    switch (ev.phase) {
      case TraceEvent::Phase::kComplete:
        out += "X";
        break;
      case TraceEvent::Phase::kInstant:
        out += "i";
        break;
      case TraceEvent::Phase::kCounter:
        out += "C";
        break;
      case TraceEvent::Phase::kAsyncBegin:
        out += "b";
        break;
      case TraceEvent::Phase::kAsyncEnd:
        out += "e";
        break;
      case TraceEvent::Phase::kFlowStart:
        out += "s";
        break;
      case TraceEvent::Phase::kFlowFinish:
        out += "f";
        break;
    }
    out += "\",\"name\":";
    append_json_string(out, ev.name);
    out += ",\"pid\":";
    out += std::to_string(at.pid);
    out += ",\"tid\":";
    out += std::to_string(at.tid);
    out += ",\"ts\":";
    append_number(out, ev.ts_us);
    if (ev.phase == TraceEvent::Phase::kComplete) {
      out += ",\"dur\":";
      append_number(out, ev.dur_us);
    }
    if (ev.phase == TraceEvent::Phase::kInstant) {
      out += ",\"s\":\"t\"";  // thread-scoped marker
    }
    if (ev.phase == TraceEvent::Phase::kAsyncBegin ||
        ev.phase == TraceEvent::Phase::kAsyncEnd ||
        ev.phase == TraceEvent::Phase::kFlowStart ||
        ev.phase == TraceEvent::Phase::kFlowFinish) {
      // Async/flow events correlate through (cat, id); Chrome requires both.
      out += ",\"cat\":";
      append_json_string(out, ev.cat != nullptr ? ev.cat : "");
      out += ",\"id\":";
      out += std::to_string(ev.id);
      if (ev.phase == TraceEvent::Phase::kFlowFinish) {
        out += ",\"bp\":\"e\"";  // bind to the enclosing slice
      }
    }
    if (!ev.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t a = 0; a < ev.args.size(); ++a) {
        if (a) out += ",";
        append_json_string(out, ev.args[a].key);
        out += ":";
        append_number(out, ev.args[a].value);
      }
      out += "}";
    }
    out += "}";
  });

  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"events\":";
  append_number(out, static_cast<double>(tracer.events()));
  out += ",\"dropped\":";
  append_number(out, static_cast<double>(tracer.dropped()));
  out += "}}\n";
  return out;
}

void write_chrome_trace(const std::string& path, const Tracer& tracer) {
  std::ofstream f{path};
  if (!f) throw std::runtime_error("cannot open trace output: " + path);
  f << to_chrome_json(tracer);
  if (!f) throw std::runtime_error("failed writing trace output: " + path);
}

}  // namespace vfimr::telemetry
