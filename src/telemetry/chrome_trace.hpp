#pragma once
// Chrome trace-event JSON export (the `{"traceEvents": [...]}` object
// format), loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
// Each registered track becomes a (pid, tid) pair: processes are numbered
// in first-registration order, threads within a process likewise, and
// metadata events name both so the UI shows e.g. "Kmeans/VFI WiNoC" with a
// "worker 12" row.  Written with deterministic number formatting so
// identical event streams produce byte-identical files.

#include <string>

#include "telemetry/trace.hpp"

namespace vfimr::telemetry {

/// Serialize the tracer's buffered events.  Events appear in buffer
/// registration/append order (trace viewers sort by timestamp themselves).
std::string to_chrome_json(const Tracer& tracer);

/// Write to `path`; throws std::runtime_error on I/O failure.
void write_chrome_trace(const std::string& path, const Tracer& tracer);

}  // namespace vfimr::telemetry
