#include "telemetry/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace vfimr::telemetry {

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins) {
  if (bins == 0) throw std::invalid_argument("HistogramMetric needs >= 1 bin");
  if (!(hi > lo)) throw std::invalid_argument("HistogramMetric needs hi > lo");
}

void HistogramMetric::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::int64_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, x);
}

Histogram HistogramMetric::snapshot() const {
  std::vector<std::uint64_t> counts(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return Histogram{lo_, hi_, std::move(counts),
                   sum_.load(std::memory_order_relaxed)};
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock{mu_};
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock{mu_};
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t bins) {
  std::lock_guard lock{mu_};
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<HistogramMetric>(lo, hi, bins);
  } else if (slot->lo() != lo || slot->hi() != hi || slot->bins() != bins) {
    throw std::invalid_argument("histogram '" + name +
                                "' re-registered with different binning");
  }
  return *slot;
}

QuantileMetric& MetricsRegistry::quantile(const std::string& name, double p) {
  std::lock_guard lock{mu_};
  auto& slot = quantiles_[name];
  if (!slot) {
    slot = std::make_unique<QuantileMetric>(p);
  } else if (slot->p() != p) {
    throw std::invalid_argument("quantile '" + name +
                                "' re-registered with different p");
  }
  return *slot;
}

TimeSeries& MetricsRegistry::timeseries(const std::string& name,
                                        double epoch_s) {
  std::lock_guard lock{mu_};
  auto& slot = timeseries_[name];
  if (!slot) {
    slot = std::make_unique<TimeSeries>(epoch_s);
  } else if (slot->epoch_s() != epoch_s) {
    throw std::invalid_argument("timeseries '" + name +
                                "' re-registered with different epoch width");
  }
  return *slot;
}

json::MetricMap MetricsRegistry::snapshot() const {
  std::lock_guard lock{mu_};
  json::MetricMap out;
  for (const auto& [name, c] : counters_) {
    out[name] = static_cast<double>(c->value());
  }
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    const Histogram snap = h->snapshot();
    out[name + ".count"] = static_cast<double>(snap.count());
    // An empty histogram has no mean or quantiles (the plain Histogram
    // reports 0 there); omit the derived stats rather than emit fake zeros
    // — .count = 0 already says "registered but empty".
    if (snap.count() > 0) {
      out[name + ".mean"] = snap.mean();
      out[name + ".p50"] = snap.quantile(0.50);
      out[name + ".p95"] = snap.quantile(0.95);
      out[name + ".p99"] = snap.quantile(0.99);
    }
  }
  for (const auto& [name, q] : quantiles_) {
    // An empty quantile has no value (NaN); omit it rather than emit a
    // bogus number into the flat JSON.
    if (q->count() > 0) out[name] = q->value();
  }
  for (const auto& [name, ts] : timeseries_) {
    out[name + ".samples"] = static_cast<double>(ts->samples());
    out[name + ".epochs"] = static_cast<double>(ts->snapshot().size());
  }
  return out;
}

TextTable MetricsRegistry::summary_table() const {
  std::lock_guard lock{mu_};
  // Collect formatted rows in one name-sorted map so every instrument kind
  // interleaves alphabetically, as the flat snapshot() used to.
  std::map<std::string, std::string> rows;
  for (const auto& [name, c] : counters_) {
    rows[name] = fmt(static_cast<double>(c->value()), 6);
  }
  for (const auto& [name, g] : gauges_) rows[name] = fmt(g->value(), 6);
  for (const auto& [name, h] : histograms_) {
    const Histogram snap = h->snapshot();
    rows[name + ".count"] = fmt(static_cast<double>(snap.count()), 6);
    if (snap.count() > 0) {
      rows[name + ".mean"] = fmt(snap.mean(), 6);
      rows[name + ".p50"] = fmt(snap.quantile(0.50), 6);
      rows[name + ".p95"] = fmt(snap.quantile(0.95), 6);
      rows[name + ".p99"] = fmt(snap.quantile(0.99), 6);
    } else {
      rows[name + ".mean"] = "n/a";
      rows[name + ".p50"] = "n/a";
      rows[name + ".p95"] = "n/a";
      rows[name + ".p99"] = "n/a";
    }
  }
  for (const auto& [name, q] : quantiles_) {
    rows[name] = q->count() > 0 ? fmt(q->value(), 6) : "n/a";
  }
  for (const auto& [name, ts] : timeseries_) {
    rows[name + ".samples"] = fmt(static_cast<double>(ts->samples()), 6);
    rows[name + ".epochs"] =
        fmt(static_cast<double>(ts->snapshot().size()), 6);
  }
  TextTable table{{"metric", "value"}};
  for (const auto& [name, value] : rows) table.add_row({name, value});
  return table;
}

TextTable MetricsRegistry::timeseries_table() const {
  std::lock_guard lock{mu_};
  TextTable table{{"series", "epoch_s", "epoch", "epoch_start_s", "count",
                   "sum", "mean", "min", "max"}};
  for (const auto& [name, ts] : timeseries_) {
    for (const auto& [epoch, stats] : ts->snapshot()) {
      table.add_row({name, fmt(ts->epoch_s(), 6),
                     std::to_string(epoch), fmt(ts->epoch_start_s(epoch), 6),
                     std::to_string(stats.count), fmt(stats.sum, 6),
                     fmt(stats.mean(), 6), fmt(stats.min, 6),
                     fmt(stats.max, 6)});
    }
  }
  return table;
}

}  // namespace vfimr::telemetry
