#include "vfi/clustering.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/require.hpp"

namespace vfimr::vfi {

ClusteringCost::ClusteringCost(const ClusteringProblem& problem)
    : problem_{&problem} {
  const std::size_t n = problem.cores();
  VFIMR_REQUIRE(n > 0);
  VFIMR_REQUIRE(problem.clusters > 0 && n % problem.clusters == 0);
  VFIMR_REQUIRE(problem.traffic.rows() == n && problem.traffic.cols() == n);

  phi_intra_ = 1.0 / std::sqrt(static_cast<double>(problem.clusters));

  // Normalize u and f by their maxima (§4.1).
  double umax = 0.0;
  for (double u : problem.utilization) {
    VFIMR_REQUIRE(u >= 0.0);
    umax = std::max(umax, u);
  }
  norm_u_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    norm_u_[i] = umax > 0.0 ? problem.utilization[i] / umax : 0.0;
  }

  double fmax = problem.traffic.max();
  sym_traffic_ = Matrix{n, n};
  if (fmax > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t p = 0; p < n; ++p) {
        if (i == p) continue;
        sym_traffic_(i, p) =
            (problem.traffic(i, p) + problem.traffic(p, i)) / fmax;
      }
    }
  }

  // ubar_j: mean of the j-th quantile group of the sorted (descending)
  // normalized utilization — the paper's fixed per-cluster targets.
  std::vector<double> sorted = norm_u_;
  std::sort(sorted.begin(), sorted.end(), std::greater<>{});
  const std::size_t size = problem.cluster_size();
  ubar_.resize(problem.clusters);
  for (std::size_t j = 0; j < problem.clusters; ++j) {
    double s = 0.0;
    for (std::size_t k = 0; k < size; ++k) s += sorted[j * size + k];
    ubar_[j] = s / static_cast<double>(size);
  }
}

double ClusteringCost::util_term(std::size_t core, std::size_t cluster) const {
  const double d = norm_u_[core] - ubar_[cluster];
  return d * d;
}

double ClusteringCost::comm_cost(
    const std::vector<std::size_t>& assignment) const {
  const std::size_t n = problem_->cores();
  VFIMR_REQUIRE(assignment.size() == n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = i + 1; p < n; ++p) {
      const double w = sym_traffic_(i, p);
      if (w == 0.0) continue;
      acc += w * (assignment[i] == assignment[p] ? phi_intra_ : 1.0);
    }
  }
  return problem_->weight_comm * acc;
}

double ClusteringCost::util_cost(
    const std::vector<std::size_t>& assignment) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    acc += util_term(i, assignment[i]);
  }
  return problem_->weight_util * acc;
}

double ClusteringCost::cost(const std::vector<std::size_t>& assignment) const {
  return comm_cost(assignment) + util_cost(assignment);
}

namespace {

void check_sizes(const ClusteringProblem& p,
                 const std::vector<std::size_t>& assignment) {
  std::vector<std::size_t> fill(p.clusters, 0);
  for (std::size_t c : assignment) {
    VFIMR_REQUIRE(c < p.clusters);
    ++fill[c];
  }
  for (std::size_t f : fill) VFIMR_REQUIRE(f == p.cluster_size());
}

/// Cost change of swapping cores a and b between their (distinct) clusters.
double swap_delta(const ClusteringCost& cost,
                  const std::vector<std::size_t>& assign, std::size_t a,
                  std::size_t b) {
  const std::size_t ca = assign[a];
  const std::size_t cb = assign[b];
  VFIMR_REQUIRE(ca != cb);
  const auto& prob = cost.problem();
  const double inter_minus_intra = 1.0 - cost.phi_intra();
  double d_comm = 0.0;
  for (std::size_t x = 0; x < assign.size(); ++x) {
    if (x == a || x == b) continue;
    const std::size_t cx = assign[x];
    if (cx == ca) {
      // (a,x): intra -> inter; (b,x): inter -> intra.
      d_comm += cost.pair_weight(a, x) * inter_minus_intra;
      d_comm -= cost.pair_weight(b, x) * inter_minus_intra;
    } else if (cx == cb) {
      d_comm -= cost.pair_weight(a, x) * inter_minus_intra;
      d_comm += cost.pair_weight(b, x) * inter_minus_intra;
    }
  }
  const double d_util = cost.util_term(a, cb) + cost.util_term(b, ca) -
                        cost.util_term(a, ca) - cost.util_term(b, cb);
  return prob.weight_comm * d_comm + prob.weight_util * d_util;
}

/// Steepest-descent pairwise-swap refinement to a local optimum.
void refine(const ClusteringCost& cost, std::vector<std::size_t>& assign,
            double& current) {
  const std::size_t n = assign.size();
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (assign[a] == assign[b]) continue;
        const double d = swap_delta(cost, assign, a, b);
        if (d < -1e-12) {
          std::swap(assign[a], assign[b]);
          current += d;
          improved = true;
        }
      }
    }
  }
}

}  // namespace

ClusteringResult solve_brute_force(const ClusteringProblem& problem) {
  const ClusteringCost cost{problem};
  const std::size_t n = problem.cores();
  VFIMR_REQUIRE_MSG(n <= 12, "brute force is for tiny instances only");
  std::vector<std::size_t> assign(n, 0);
  std::vector<std::size_t> fill(problem.clusters, 0);
  ClusteringResult best;
  best.cost = std::numeric_limits<double>::max();

  auto rec = [&](auto&& self, std::size_t i) -> void {
    if (i == n) {
      const double c = cost.cost(assign);
      if (c < best.cost) {
        best.cost = c;
        best.assignment = assign;
      }
      return;
    }
    for (std::size_t j = 0; j < problem.clusters; ++j) {
      if (fill[j] == problem.cluster_size()) continue;
      assign[i] = j;
      ++fill[j];
      self(self, i + 1);
      --fill[j];
    }
  };
  rec(rec, 0);
  best.optimal = true;
  return best;
}

ClusteringResult solve_exact(const ClusteringProblem& problem) {
  const ClusteringCost cost{problem};
  const std::size_t n = problem.cores();
  VFIMR_REQUIRE_MSG(n <= 20, "exact solver is exponential; use solve_anneal");

  std::vector<std::size_t> assign(n, 0);
  std::vector<std::size_t> fill(problem.clusters, 0);
  ClusteringResult best = solve_anneal(
      problem, AnnealParams{20'000, 0.5, 1e-4, 11, 2});  // warm upper bound
  best.optimal = false;

  // Partial cost is monotone (every term is >= 0), so it is a valid bound.
  auto rec = [&](auto&& self, std::size_t i, double partial) -> void {
    if (partial >= best.cost) return;
    if (i == n) {
      best.cost = partial;
      best.assignment = assign;
      return;
    }
    for (std::size_t j = 0; j < problem.clusters; ++j) {
      if (fill[j] == problem.cluster_size()) continue;
      double add = problem.weight_util * cost.util_term(i, j);
      for (std::size_t p = 0; p < i; ++p) {
        const double w = cost.pair_weight(i, p);
        if (w == 0.0) continue;
        add += problem.weight_comm * w *
               (assign[p] == j ? cost.phi_intra() : 1.0);
      }
      assign[i] = j;
      ++fill[j];
      self(self, i + 1, partial + add);
      --fill[j];
    }
  };
  rec(rec, 0, 0.0);
  best.optimal = true;
  return best;
}

ClusteringResult solve_anneal(const ClusteringProblem& problem,
                              const AnnealParams& params) {
  const ClusteringCost cost{problem};
  const std::size_t n = problem.cores();
  VFIMR_REQUIRE(params.iterations > 0 && params.restarts > 0);
  Rng rng{params.seed};

  ClusteringResult best;
  best.cost = std::numeric_limits<double>::max();

  for (std::size_t restart = 0; restart < params.restarts; ++restart) {
    // Random equal-size start.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    std::vector<std::size_t> assign(n);
    for (std::size_t k = 0; k < n; ++k) {
      assign[order[k]] = k / problem.cluster_size();
    }
    double current = cost.cost(assign);

    const double ratio = params.t_final / params.t_initial;
    for (std::size_t it = 0; it < params.iterations; ++it) {
      const double temp =
          params.t_initial *
          std::pow(ratio, static_cast<double>(it) /
                              static_cast<double>(params.iterations));
      const auto a = static_cast<std::size_t>(rng.uniform_u64(n));
      auto b = static_cast<std::size_t>(rng.uniform_u64(n - 1));
      if (b >= a) ++b;
      if (assign[a] == assign[b]) continue;
      const double d = swap_delta(cost, assign, a, b);
      if (d <= 0.0 || rng.uniform() < std::exp(-d / temp)) {
        std::swap(assign[a], assign[b]);
        current += d;
      }
    }
    refine(cost, assign, current);
    // Guard against accumulated floating-point drift.
    current = cost.cost(assign);
    if (current < best.cost) {
      best.cost = current;
      best.assignment = std::move(assign);
    }
  }
  check_sizes(problem, best.assignment);
  best.optimal = false;
  return best;
}

}  // namespace vfimr::vfi
