#include "vfi/vf_assign.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace vfimr::vfi {

std::vector<power::VfPoint> select_vf(
    const std::vector<double>& utilization,
    const std::vector<std::size_t>& assignment, std::size_t clusters,
    const power::VfTable& table, const VfSelectParams& params) {
  VFIMR_REQUIRE(utilization.size() == assignment.size());
  VFIMR_REQUIRE(params.util_target > 0.0 && params.util_target <= 1.0);
  std::vector<double> sum(clusters, 0.0);
  std::vector<std::size_t> count(clusters, 0);
  for (std::size_t i = 0; i < utilization.size(); ++i) {
    VFIMR_REQUIRE(assignment[i] < clusters);
    sum[assignment[i]] += utilization[i];
    ++count[assignment[i]];
  }
  const double fmax = table.max().freq_hz;
  std::vector<power::VfPoint> vf(clusters);
  for (std::size_t j = 0; j < clusters; ++j) {
    VFIMR_REQUIRE_MSG(count[j] > 0, "empty VFI cluster");
    const double mean_u = sum[j] / static_cast<double>(count[j]);
    vf[j] = table.at_least(fmax * mean_u / params.util_target);
  }
  return vf;
}

VfiDesign design_vfi(const std::vector<double>& utilization,
                     const Matrix& traffic,
                     const std::vector<std::size_t>& masters,
                     const power::VfTable& table,
                     const VfiDesignParams& params) {
  ClusteringProblem problem;
  problem.utilization = utilization;
  problem.traffic = traffic;
  problem.clusters = params.clusters;
  const ClusteringResult clustering = solve_anneal(problem, params.anneal);

  VfiDesign design;
  design.assignment = clustering.assignment;
  design.clustering_cost = clustering.cost;
  design.vfi1 = select_vf(utilization, design.assignment, params.clusters,
                          table, params.select);
  design.vfi2 = design.vfi1;

  const double fmax = table.max().freq_hz;
  for (std::size_t b : masters) {
    VFIMR_REQUIRE(b < utilization.size());
    const power::VfPoint required =
        table.at_least(fmax * utilization[b] / params.select.util_target);
    const std::size_t cluster = design.assignment[b];
    if (design.vfi2[cluster].freq_hz < required.freq_hz) {
      design.vfi2[cluster] = required;
      if (std::find(design.raised_clusters.begin(),
                    design.raised_clusters.end(),
                    cluster) == design.raised_clusters.end()) {
        design.raised_clusters.push_back(cluster);
      }
    }
  }
  std::sort(design.raised_clusters.begin(), design.raised_clusters.end());
  return design;
}

}  // namespace vfimr::vfi
