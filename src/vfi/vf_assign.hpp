#pragma once
// V/F selection and bottleneck-driven reassignment (§4.2, Fig. 3).
//
// VFI 1: each cluster gets the lowest ladder point whose frequency satisfies
//   f >= f_max * mean_cluster_utilization / util_target
// i.e. the cluster, slowed to f, must still absorb its average load below
// `util_target` occupancy.  The *mean* deliberately dilutes the few
// bottleneck (master) cores — exactly the under-provisioning the paper
// observes for PCA/HIST/MM.
//
// VFI 2: every bottleneck core b individually requires
//   f_req(b) = at_least(f_max * u_b / util_target);
// if b's cluster sits below f_req(b), the whole cluster is raised to it
// (cores are never moved, so traffic patterns are preserved — §4.2).

#include <cstddef>
#include <vector>

#include "common/matrix.hpp"
#include "power/vf_table.hpp"
#include "vfi/clustering.hpp"

namespace vfimr::vfi {

struct VfSelectParams {
  double util_target = 0.90;  ///< post-scaling occupancy cap
};

/// Per-cluster VFI 1 points from mean cluster utilization.
std::vector<power::VfPoint> select_vf(
    const std::vector<double>& utilization,
    const std::vector<std::size_t>& assignment, std::size_t clusters,
    const power::VfTable& table, const VfSelectParams& params = {});

/// Complete VFI design: clustering (Eq. 1) + VFI1 V/F + VFI2 reassignment.
struct VfiDesign {
  std::vector<std::size_t> assignment;    ///< thread -> cluster
  std::vector<power::VfPoint> vfi1;       ///< per cluster
  std::vector<power::VfPoint> vfi2;       ///< per cluster, after reassignment
  std::vector<std::size_t> raised_clusters;  ///< clusters changed by VFI2
  double clustering_cost = 0.0;

  const power::VfPoint& vf_of_thread(std::size_t t, bool vfi2_system) const {
    return (vfi2_system ? vfi2 : vfi1)[assignment[t]];
  }
};

struct VfiDesignParams {
  std::size_t clusters = 4;
  VfSelectParams select{};
  AnnealParams anneal{};
};

/// Runs the full design flow of Fig. 3 for one application profile:
/// `utilization`/`traffic` measured on the non-VFI system, `masters` the
/// bottleneck threads (library-init / merge owners).
VfiDesign design_vfi(const std::vector<double>& utilization,
                     const Matrix& traffic,
                     const std::vector<std::size_t>& masters,
                     const power::VfTable& table,
                     const VfiDesignParams& params = {});

}  // namespace vfimr::vfi
