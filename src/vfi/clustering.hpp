#pragma once
// VFI clustering — the 0-1 quadratic program of Eq. (1)-(2).
//
// Minimize over assignments X (core i -> cluster j, equal cluster sizes):
//
//   w_c * sum_{i,p} f_ip * phi(cl(i), cl(p))  +  w_u * sum_i (u_i - ubar_j)^2
//
// with phi(j,q) = 1 for inter-cluster pairs and 1/sqrt(m) for intra-cluster
// pairs, and ubar_j the mean of the j-th m-quantile group of the sorted
// utilization values (the paper's "mean in each m-quartile").  Both f and u
// are normalized by their maxima and w_c = w_u = 1, as in §4.1.
//
// The paper solves this with Gurobi; here an exact branch-and-bound handles
// small instances (tested against brute force) and simulated annealing with
// pairwise-swap descent handles the 64-core platform.

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace vfimr::vfi {

struct ClusteringProblem {
  std::vector<double> utilization;  ///< raw per-core utilization
  Matrix traffic;                   ///< raw packets/cycle, core x core
  std::size_t clusters = 4;         ///< m; must divide the core count
  double weight_comm = 1.0;         ///< w_c
  double weight_util = 1.0;         ///< w_u

  std::size_t cores() const { return utilization.size(); }
  std::size_t cluster_size() const { return cores() / clusters; }
};

/// Precomputed normalized view of a problem (shared by cost + solvers).
class ClusteringCost {
 public:
  explicit ClusteringCost(const ClusteringProblem& problem);

  /// Full objective of Eq. (1) for a complete assignment.
  double cost(const std::vector<std::size_t>& assignment) const;

  /// Communication and utilization terms separately (for analysis).
  double comm_cost(const std::vector<std::size_t>& assignment) const;
  double util_cost(const std::vector<std::size_t>& assignment) const;

  const std::vector<double>& quantile_means() const { return ubar_; }
  const ClusteringProblem& problem() const { return *problem_; }
  double phi_intra() const { return phi_intra_; }

  /// Normalized symmetric traffic: fn(i,p) + fn(p,i).
  double pair_weight(std::size_t i, std::size_t p) const {
    return sym_traffic_(i, p);
  }
  double util_term(std::size_t core, std::size_t cluster) const;

 private:
  const ClusteringProblem* problem_;
  Matrix sym_traffic_;        // normalized f_ip + f_pi
  std::vector<double> norm_u_;
  std::vector<double> ubar_;  // per cluster, from sorted quantile groups
  double phi_intra_;
};

struct ClusteringResult {
  std::vector<std::size_t> assignment;  ///< core -> cluster
  double cost = 0.0;
  bool optimal = false;  ///< true only for the exact solver
};

/// Exact branch-and-bound with symmetry breaking.  Exponential — intended
/// for cores <= ~16 (used to validate the heuristic solver).
ClusteringResult solve_exact(const ClusteringProblem& problem);

struct AnnealParams {
  std::size_t iterations = 200'000;
  double t_initial = 0.5;
  double t_final = 1e-4;
  std::uint64_t seed = 7;
  std::size_t restarts = 4;
};

/// Simulated annealing over pairwise swaps followed by steepest-descent
/// swap refinement.  Deterministic for a fixed seed.
ClusteringResult solve_anneal(const ClusteringProblem& problem,
                              const AnnealParams& params = {});

/// Exhaustive enumeration (tiny n only; for tests).
ClusteringResult solve_brute_force(const ClusteringProblem& problem);

}  // namespace vfimr::vfi
