#pragma once
// ServiceMatrix: steady-state per-(app, platform-type) serving figures for
// the cluster tier, batch-evaluated through the full-system simulator.
//
// A platform serves one MapReduce job at a time (the paper's setting), so a
// job's service time and energy on a given platform type are exactly one
// FullSystemSim run of that app's profile — deterministic, and therefore
// evaluated once per (app, type) pair up front instead of once per arrival.
// Evaluation goes through sysmodel::run_batch over parallel_for (one slot
// per pair, bit-identical for any worker count); attaching a shared
// NetworkEvaluator / PlatformCache to the type params makes the warmup the
// Auto-fidelity "analytical band for steady-state" path of DESIGN.md §12,
// and repeated NVFI baseline evaluations across types dedupe in the cache.

#include <cstddef>
#include <string>
#include <vector>

#include "sysmodel/sweep.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr::cluster {

/// One platform configuration in the fleet; `count` replicas serve jobs
/// independently.  Heterogeneous fleets mix types (e.g. VFI WiNoC islands
/// next to NVFI mesh baselines).
struct PlatformTypeSpec {
  std::string label;
  sysmodel::PlatformParams params;
  std::size_t count = 1;
};

/// Steady-state figures for one (app, platform type) pair.
struct ServicePoint {
  double exec_s = 0.0;    ///< service time of one job (non-preemptive)
  double energy_j = 0.0;  ///< platform energy over the job
  double power_w = 0.0;   ///< average draw while serving (energy / exec)
  double edp_js = 0.0;    ///< energy-delay product of the job
};

class ServiceMatrix {
 public:
  /// Evaluate every (profile, type) pair with `sim`.  Two batched stages:
  /// stage 1 runs the NVFI-mesh reference of each pair (the baseline the
  /// VFI coupling model compares against), stage 2 runs the pair itself
  /// against those phase baselines — both under parallel_for with one slot
  /// per pair, so the matrix is bit-identical for any `threads`
  /// (0 = default_parallelism()).  Profiles must have distinct apps.
  static ServiceMatrix evaluate(
      const std::vector<workload::AppProfile>& profiles,
      const std::vector<PlatformTypeSpec>& types,
      const sysmodel::FullSystemSim& sim, std::size_t threads = 0);

  std::size_t apps() const { return apps_.size(); }
  std::size_t types() const { return types_n_; }

  const ServicePoint& at(std::size_t app_index, std::size_t type_index) const;
  /// Row lookup by app (RequirementError when the app was not evaluated).
  std::size_t app_row(workload::App app) const;

  /// Mean service time of `app_index` across platform types (deadline
  /// hints, load normalization).
  double mean_service_s(std::size_t app_index) const;
  /// Fastest service time of `app_index` across platform types.
  double min_service_s(std::size_t app_index) const;

  const std::vector<workload::App>& app_order() const { return apps_; }

 private:
  std::vector<workload::App> apps_;
  std::size_t types_n_ = 0;
  std::vector<ServicePoint> points_;  ///< app-major [app * types + type]
};

/// Fleet capacity in jobs/second under a uniform app mix: each instance
/// serves 1/mean_service jobs per second, summed over type counts.  The
/// load knob of the serving benches (offered rate = rho x capacity).
double fleet_capacity_jobs_per_s(const ServiceMatrix& matrix,
                                 const std::vector<PlatformTypeSpec>& types);

}  // namespace vfimr::cluster
