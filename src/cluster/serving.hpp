#pragma once
// ClusterSim: the open-arrival serving tier over a fleet of simulated VFI
// platforms (DESIGN.md §13).
//
// A deterministic discrete-event simulation in virtual time: jobs arrive
// (cluster/arrivals.hpp), an admission/placement scheduler assigns each to
// one platform instance, instances serve one job at a time from a FIFO or
// earliest-deadline queue, and an optional fleet power cap sheds or delays
// work.  Service times and energy come from the pre-evaluated ServiceMatrix
// (cluster/service.hpp) — the serving loop itself touches no simulator and
// costs O(log fleet) per job, which is what makes "millions of arrivals"
// a throughput target rather than a wall-clock problem.
//
// Determinism: the event loop is strictly ordered (time, then completions
// before arrivals, then sequence number) and consumes no RNG, so a report
// is a pure function of (arrivals, fleet, matrix).  Worker threads only
// ever parallelize the batched ServiceMatrix evaluation, never this loop;
// the 1-vs-N-worker bit-identity is regression-tested in
// tests/test_cluster.cpp and gated in CI via tools/check_cluster.py.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/arrivals.hpp"
#include "cluster/service.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "telemetry/telemetry.hpp"

namespace vfimr::cluster {

enum class SchedulerPolicy : std::uint8_t {
  /// Earliest predicted completion across all instances (classic join-the-
  /// shortest-queue on heterogeneous service times).
  kLeastLoaded,
  /// Lowest-EDP service point among instances whose predicted completion
  /// meets the job's deadline; falls back to earliest completion when no
  /// instance is feasible (or the job has no deadline and several types tie).
  kEdpGreedy,
};

std::string policy_name(SchedulerPolicy policy);
/// Parses "least-loaded" | "edp" into `out`; false on other spellings.
bool parse_policy(const std::string& name, SchedulerPolicy& out);

enum class QueueDiscipline : std::uint8_t {
  kFifo,              ///< serve in arrival order
  kEarliestDeadline,  ///< serve by absolute deadline (ties: arrival order)
};

std::string discipline_name(QueueDiscipline queue);

enum class PowerCapMode : std::uint8_t {
  kNone,
  kShed,   ///< reject at admission when the fleet draw leaves no headroom
  kDelay,  ///< hold the job at its instance until headroom frees up
};

std::string power_cap_name(PowerCapMode mode);

struct FleetConfig {
  /// Platform types (each expanded into `count` independent instances).
  /// Must match the ServiceMatrix the simulation runs against.
  std::vector<PlatformTypeSpec> types;
  SchedulerPolicy policy = SchedulerPolicy::kLeastLoaded;
  QueueDiscipline queue = QueueDiscipline::kFifo;
  /// Reject a job at arrival when even the best predicted completion
  /// misses its deadline (jobs without deadlines always pass).
  bool admit_by_deadline = false;
  PowerCapMode power_cap = PowerCapMode::kNone;
  double power_cap_w = 0.0;  ///< fleet budget; must be > 0 unless kNone
  /// Upper edge of the latency histogram (seconds); 0 derives 50x the
  /// slowest service point in the matrix.
  double latency_hist_max_s = 0.0;
  std::size_t latency_hist_bins = 64;
  /// Optional sink: job counters, SLA quantiles and fleet gauges are
  /// mirrored under "cluster.*" after the run.  Null changes nothing.
  telemetry::TelemetrySink* telemetry = nullptr;
};

/// Latency/energy SLA aggregate (one per app plus one fleet-wide).
struct SlaStats {
  std::uint64_t arrived = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_deadline = 0;  ///< shed at admission
  std::uint64_t rejected_power = 0;     ///< shed by the power cap
  std::uint64_t deadline_misses = 0;    ///< completed after their deadline
  Accumulator latency_s;  ///< sojourn time (completion - arrival)
  Accumulator queue_s;    ///< queueing delay (start - arrival)
  Accumulator energy_j;   ///< platform energy per completed job
  P2Quantile p50{0.50};
  P2Quantile p99{0.99};
  P2Quantile p999{0.999};
};

/// Report formatting for a streaming quantile: "n/a" when the sampler is
/// empty (the NaN contract of P2Quantile::value), fixed-point otherwise.
std::string format_quantile(const P2Quantile& q, int digits = 4);

struct ClusterReport {
  SlaStats fleet;
  std::vector<SlaStats> per_app;         ///< ServiceMatrix app order
  std::vector<workload::App> app_order;  ///< mirrors ServiceMatrix
  Histogram latency_hist{0.0, 1.0, 1};   ///< rebuilt by run()
  std::size_t instances = 0;
  double horizon_s = 0.0;     ///< last completion (or arrival) time
  double busy_seconds = 0.0;  ///< serving time summed over instances
  /// Start delays charged to the power cap (kDelay mode), summed over jobs.
  double power_wait_seconds = 0.0;
  double peak_power_w = 0.0;  ///< max concurrent fleet draw observed
  /// Order-sensitive digest over (job id, completion time) in completion
  /// order — two runs with equal digests completed the same jobs in the
  /// same order at the same times.
  std::uint64_t completion_digest = 0;

  /// Fleet utilization: busy time over instances * horizon.
  double utilization() const;
  /// Per-app + fleet SLA rows (latency percentiles print "n/a" when no job
  /// of that app completed).
  TextTable sla_table() const;
};

class ClusterSim {
 public:
  /// Serve `arrivals` on `fleet`, with service times/energy from `matrix`.
  /// Throws RequirementError on inconsistent configs (no instances, apps
  /// missing from the matrix, power-cap mode without a budget, a cap no
  /// single job fits under in kDelay mode).
  static ClusterReport run(const std::vector<JobArrival>& arrivals,
                           const FleetConfig& fleet,
                           const ServiceMatrix& matrix);
};

}  // namespace vfimr::cluster
