#pragma once
// ClusterSim: the open-arrival serving tier over a fleet of simulated VFI
// platforms (DESIGN.md §13), with fleet-level fault tolerance (§14).
//
// A deterministic discrete-event simulation in virtual time: jobs arrive
// (cluster/arrivals.hpp), an admission/placement scheduler assigns each to
// one platform instance, instances serve one job at a time from a FIFO or
// earliest-deadline queue, and an optional fleet power cap sheds or delays
// work.  Service times and energy come from the pre-evaluated ServiceMatrix
// (cluster/service.hpp) — the serving loop itself touches no simulator and
// costs O(log fleet) per job, which is what makes "millions of arrivals"
// a throughput target rather than a wall-clock problem.
//
// Fault tolerance: an optional FleetFaultPlan (cluster/fleet_faults.hpp)
// crashes or degrades instances over time.  Work lost to a crash is
// re-placed through a bounded, deadline-aware retry policy with
// deterministic exponential backoff; jobs exceeding their per-app latency
// budget launch one speculative duplicate (hedged request) with first-wins
// cancellation, and all partial work killed by crashes or cancellations is
// charged to `wasted_energy_j` so degraded-fleet EDP stays honest.
//
// Determinism: the event loop is strictly ordered — at equal times,
// completions before fault transitions before retry/hedge timers before
// arrivals, each source tie-broken by sequence number — and consumes no
// RNG, so a report is a pure function of (arrivals, fleet, matrix, plan).
// Worker threads only ever parallelize the batched ServiceMatrix
// evaluation, never this loop; the 1-vs-N-worker bit-identity (including
// under a nonzero fault plan) is regression-tested in
// tests/test_cluster.cpp and gated in CI via tools/check_cluster.py, as is
// the zero-fault identity: an empty plan with hedging disabled reproduces
// the fault-free loop bit-for-bit.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/arrivals.hpp"
#include "cluster/fleet_faults.hpp"
#include "cluster/observer.hpp"
#include "cluster/service.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "telemetry/telemetry.hpp"

namespace vfimr::cluster {

enum class SchedulerPolicy : std::uint8_t {
  /// Earliest predicted completion across all instances (classic join-the-
  /// shortest-queue on heterogeneous service times).
  kLeastLoaded,
  /// Lowest-EDP service point among instances whose predicted completion
  /// meets the job's deadline; falls back to earliest completion when no
  /// instance is feasible (or the job has no deadline and several types tie).
  kEdpGreedy,
};

std::string policy_name(SchedulerPolicy policy);
/// Parses "least-loaded" | "edp" into `out`; false on other spellings.
bool parse_policy(const std::string& name, SchedulerPolicy& out);

enum class QueueDiscipline : std::uint8_t {
  kFifo,              ///< serve in arrival order
  kEarliestDeadline,  ///< serve by absolute deadline (ties: arrival order)
};

std::string discipline_name(QueueDiscipline queue);

enum class PowerCapMode : std::uint8_t {
  kNone,
  kShed,   ///< reject at admission when the fleet draw leaves no headroom
  kDelay,  ///< hold the job at its instance until headroom frees up
};

std::string power_cap_name(PowerCapMode mode);

/// Retry policy for jobs displaced by an instance crash (and for arrivals
/// that find every instance down).  Deterministic: the k-th re-placement of
/// a job is delayed by backoff_base_s * backoff_mult^(k-1), capped at
/// backoff_cap_s — no jitter, so a faulty run replays bit-identically.
/// A retry whose scheduled time is at or past the job's deadline is shed
/// immediately (counted in SlaStats::shed_retry), never looped.
struct RetryPolicy {
  /// Total placements per job including the first; 1 = no retries (any
  /// displaced job is lost).  Must be >= 1.
  std::size_t max_attempts = 1;
  double backoff_base_s = 0.0;  ///< delay before the first re-placement
  double backoff_mult = 2.0;    ///< growth factor per further re-placement
  double backoff_cap_s = 0.0;   ///< upper bound on one delay; 0 = uncapped

  bool enabled() const { return max_attempts > 1; }
};

/// Hedged-request policy: once an admitted job's sojourn time exceeds
/// `latency_multiplier` x its app's mean ServiceMatrix service time, launch
/// one speculative duplicate on the best other up instance.  First result
/// wins; the loser is cancelled immediately (killed mid-run if started) and
/// its spent energy is charged to ClusterReport::wasted_energy_j.  Ties are
/// broken deterministically toward the earlier-started attempt.
struct HedgePolicy {
  double latency_multiplier = 0.0;  ///< 0 disables hedging

  bool enabled() const { return latency_multiplier > 0.0; }
};

struct FleetConfig {
  /// Platform types (each expanded into `count` independent instances).
  /// Must match the ServiceMatrix the simulation runs against.
  std::vector<PlatformTypeSpec> types;
  SchedulerPolicy policy = SchedulerPolicy::kLeastLoaded;
  QueueDiscipline queue = QueueDiscipline::kFifo;
  /// Reject a job at arrival when even the best predicted completion
  /// misses its deadline (jobs without deadlines always pass).
  bool admit_by_deadline = false;
  PowerCapMode power_cap = PowerCapMode::kNone;
  double power_cap_w = 0.0;  ///< fleet budget; must be > 0 unless kNone
  /// Per-instance failure/repair timeline; empty = immortal fleet (the
  /// pre-fault serving loop, bit-identical).  Instance count must match
  /// the expanded fleet.
  FleetFaultPlan faults;
  RetryPolicy retry;
  HedgePolicy hedge;
  /// Upper edge of the latency histogram (seconds); 0 derives 50x the
  /// slowest service point in the matrix.
  double latency_hist_max_s = 0.0;
  std::size_t latency_hist_bins = 64;
  /// Optional sink: job counters, SLA quantiles and fleet gauges are
  /// mirrored under "cluster.*" after the run.  Null changes nothing.
  telemetry::TelemetrySink* telemetry = nullptr;
  /// Serving-tier observability (DESIGN.md §15): per-job lifecycle spans,
  /// windowed time-series rollups and SLA/power monitors.  Requires a sink
  /// *and* obs.enabled — span storage scales with admitted jobs, so the
  /// million-job throughput cells leave it off.  Never feeds back into the
  /// loop: sink-off runs stay bit-identical.
  ObsConfig obs;

  /// Total instances across all types.
  std::size_t instance_count() const;
  /// Throws RequirementError on structurally invalid configs: no platform
  /// types, a type with zero instances, a power-cap mode without a positive
  /// budget, a retry limit of zero, negative backoff/hedge knobs, or a
  /// fault plan sized for a different fleet.  Called by ClusterSim::run;
  /// callers building configs programmatically can validate early.
  void validate() const;
};

/// Latency/energy SLA aggregate (one per app plus one fleet-wide).
struct SlaStats {
  std::uint64_t arrived = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_deadline = 0;  ///< shed at admission
  std::uint64_t rejected_power = 0;     ///< shed by the power cap
  std::uint64_t deadline_misses = 0;    ///< completed after their deadline
  std::uint64_t retries = 0;     ///< re-placements after a displacement
  std::uint64_t failovers = 0;   ///< attempts displaced by a crash
  std::uint64_t hedges = 0;      ///< speculative duplicates launched
  std::uint64_t hedge_wins = 0;  ///< completions won by the duplicate
  /// Admitted jobs that never completed: retry budget exhausted (every
  /// instance down, or displaced max_attempts times).
  std::uint64_t lost = 0;
  /// Admitted jobs dropped because their deadline passed (or would pass)
  /// before a retry could be scheduled.
  std::uint64_t shed_retry = 0;
  Accumulator latency_s;  ///< sojourn time (completion - arrival)
  Accumulator queue_s;    ///< queueing delay (start - arrival)
  Accumulator energy_j;   ///< platform energy per completed job
  P2Quantile p50{0.50};
  P2Quantile p99{0.99};
  P2Quantile p999{0.999};
};

/// Report formatting for a streaming quantile: "n/a" when the sampler is
/// empty (the NaN contract of P2Quantile::value), fixed-point otherwise.
std::string format_quantile(const P2Quantile& q, int digits = 4);

struct ClusterReport {
  SlaStats fleet;
  std::vector<SlaStats> per_app;         ///< ServiceMatrix app order
  std::vector<workload::App> app_order;  ///< mirrors ServiceMatrix
  Histogram latency_hist{0.0, 1.0, 1};   ///< rebuilt by run()
  std::size_t instances = 0;
  double horizon_s = 0.0;     ///< last completion (or arrival) time
  double busy_seconds = 0.0;  ///< serving time summed over instances
  /// Start delays charged to the power cap (kDelay mode), summed over jobs.
  double power_wait_seconds = 0.0;
  double peak_power_w = 0.0;  ///< max concurrent fleet draw observed
  /// Energy burned on work that produced no completion: partial runs killed
  /// by crashes plus cancelled hedge duplicates.
  double wasted_energy_j = 0.0;
  /// Instance-seconds down within [0, horizon] (from the fault plan).
  double down_seconds = 0.0;
  /// Order-sensitive digest over (job id, completion time) in completion
  /// order — two runs with equal digests completed the same jobs in the
  /// same order at the same times.
  std::uint64_t completion_digest = 0;
  /// Spans, rollups, monitors and the tail-latency attribution — present
  /// only when FleetConfig::obs was enabled with a sink attached.
  std::shared_ptr<const ClusterObsReport> obs;

  /// Fleet utilization: busy time over instances * horizon.
  double utilization() const;
  /// Fraction of instance-time the fleet was serviceable: 1 -
  /// down_seconds / (instances * horizon).  1 when the horizon is empty.
  double availability() const;
  /// Completed jobs per simulated second over the horizon.
  double goodput_jobs_per_s() const;
  /// Useful plus wasted platform energy — the number a degraded fleet is
  /// billed for.
  double total_energy_j() const;
  /// Fleet energy-delay product: total (useful + wasted) energy x mean
  /// completed-job latency.  Wasted work makes a faulty fleet pay twice:
  /// once in energy, once in the retry-lengthened latency.
  double fleet_edp_js() const;
  /// Per-app + fleet SLA rows (latency percentiles print "n/a" when no job
  /// of that app completed).
  TextTable sla_table() const;
};

class ClusterSim {
 public:
  /// Serve `arrivals` on `fleet`, with service times/energy from `matrix`.
  /// Throws RequirementError on inconsistent configs (FleetConfig::validate
  /// plus: apps missing from the matrix, a matrix evaluated for a different
  /// type count, a cap no single job fits under in kDelay mode).
  static ClusterReport run(const std::vector<JobArrival>& arrivals,
                           const FleetConfig& fleet,
                           const ServiceMatrix& matrix);
};

}  // namespace vfimr::cluster
