#include "cluster/arrivals.hpp"

#include "common/require.hpp"
#include "common/rng.hpp"

namespace vfimr::cluster {

namespace {

std::size_t app_index(workload::App app) {
  for (std::size_t i = 0; i < workload::kAllApps.size(); ++i) {
    if (workload::kAllApps[i] == app) return i;
  }
  requirement_failed("app in kAllApps", __FILE__, __LINE__,
                     "unknown workload::App value");
}

std::vector<JobArrival> poisson_arrivals(const ArrivalConfig& cfg) {
  VFIMR_REQUIRE_MSG(cfg.rate_jobs_per_s > 0.0,
                    "Poisson arrivals need rate > 0, got "
                        << cfg.rate_jobs_per_s);
  std::vector<double> mix = cfg.app_mix;
  if (mix.empty()) mix.assign(workload::kAllApps.size(), 1.0);
  VFIMR_REQUIRE_MSG(mix.size() == workload::kAllApps.size(),
                    "app_mix needs one weight per app ("
                        << workload::kAllApps.size() << "), got "
                        << mix.size());
  double total = 0.0;
  for (double w : mix) {
    VFIMR_REQUIRE_MSG(w >= 0.0, "app_mix weights must be >= 0, got " << w);
    total += w;
  }
  VFIMR_REQUIRE_MSG(total > 0.0, "app_mix weights must not all be zero");
  if (cfg.deadline_factor > 0.0) {
    for (std::size_t i = 0; i < mix.size(); ++i) {
      VFIMR_REQUIRE_MSG(
          mix[i] == 0.0 || cfg.service_hint_s[i] > 0.0,
          "deadline_factor > 0 needs a positive service_hint_s for "
              << workload::app_name(workload::kAllApps[i]));
    }
  }

  Rng rng{cfg.seed};
  std::vector<JobArrival> out;
  out.reserve(cfg.job_count);
  double t = 0.0;
  for (std::size_t j = 0; j < cfg.job_count; ++j) {
    t += rng.exponential(cfg.rate_jobs_per_s);
    JobArrival a;
    a.time_s = t;
    const std::size_t pick = rng.weighted_index(mix);
    a.app = workload::kAllApps[pick];
    if (cfg.deadline_factor > 0.0) {
      a.deadline_s = cfg.deadline_factor * cfg.service_hint_s[pick];
    }
    out.push_back(a);
  }
  return out;
}

std::vector<JobArrival> trace_arrivals(const ArrivalConfig& cfg) {
  double prev = 0.0;
  for (const JobArrival& a : cfg.trace) {
    VFIMR_REQUIRE_MSG(a.time_s >= prev,
                      "trace arrival times must be non-decreasing ("
                          << a.time_s << " after " << prev << ")");
    VFIMR_REQUIRE_MSG(a.deadline_s >= 0.0,
                      "trace deadlines must be >= 0, got " << a.deadline_s);
    app_index(a.app);  // rejects out-of-range App values
    prev = a.time_s;
  }
  return cfg.trace;
}

}  // namespace

std::vector<JobArrival> make_arrivals(const ArrivalConfig& cfg) {
  switch (cfg.model) {
    case ArrivalModel::kPoisson: return poisson_arrivals(cfg);
    case ArrivalModel::kTrace: return trace_arrivals(cfg);
  }
  requirement_failed("known ArrivalModel", __FILE__, __LINE__, "");
}

}  // namespace vfimr::cluster
