#include "cluster/observer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

namespace vfimr::cluster {

namespace {

constexpr double kUsPerS = 1e6;  // trace convention: 1 simulated s = 1e6 us

// %.17g round-trips doubles exactly; the attribution checker re-parses
// these cells in Python (IEEE doubles on both sides) and re-evaluates the
// documented component sum, so lossy formatting would break the invariant.
std::string fmt17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

const char* attempt_end_name(AttemptEndCause cause) {
  switch (cause) {
    case AttemptEndCause::kLive:
      return "live";
    case AttemptEndCause::kCompleted:
      return "completed";
    case AttemptEndCause::kCrashedRunning:
      return "crashed-running";
    case AttemptEndCause::kCrashedQueued:
      return "crashed-queued";
    case AttemptEndCause::kHedgeLoserRunning:
      return "hedge-loser-running";
    case AttemptEndCause::kHedgeLoserQueued:
      return "hedge-loser-queued";
  }
  return "?";
}

AttributionComponents attribute_job(const JobSpan& job,
                                    const AttemptSpan& winner) {
  AttributionComponents c;
  const double latency = job.latency_s();
  const double run_s = winner.end_s - winner.start_s;
  if (winner.actual_exec_s == winner.base_exec_s) {
    c.service_s = run_s;
  } else {
    // Degraded instance: the undegraded service time is the "honest" share;
    // everything the slowdown added goes to degraded_s.
    c.service_s = winner.base_exec_s;
    c.degraded_s = run_s - winner.base_exec_s;
  }
  c.backoff_s = job.backoff_s;
  if (winner.slot == 1) {
    // The winning hedge launched at enqueue_s; the wait before that (minus
    // any backoff already accounted) is hedge-wait.
    double hw = (winner.enqueue_s - job.arrival_s) - c.backoff_s;
    if (hw < 0.0) hw = 0.0;
    c.hedge_wait_s = hw;
  }
  // queue_s is the residual.  FP addition is not exactly invertible, so
  // nudge by ULPs until the documented left-to-right sum reproduces the
  // end-to-end latency bit-exactly.
  const double partial =
      ((c.service_s + c.degraded_s) + c.backoff_s) + c.hedge_wait_s;
  double queue = latency - partial;
  while (partial + queue < latency) {
    queue = std::nextafter(queue, std::numeric_limits<double>::infinity());
  }
  while (partial + queue > latency) {
    queue = std::nextafter(queue, -std::numeric_limits<double>::infinity());
  }
  c.queue_s = queue;
  return c;
}

void ClusterObserver::StepMax::extend_to(std::int64_t epoch) {
  while (static_cast<std::int64_t>(maxima.size()) <= epoch) {
    maxima.push_back(held);
  }
}

void ClusterObserver::StepMax::sample(std::int64_t epoch, double value) {
  if (epoch < 0) epoch = 0;
  extend_to(epoch);
  auto& slot = maxima[static_cast<std::size_t>(epoch)];
  if (value > slot) slot = value;
  held = value;
}

ClusterObserver::ClusterObserver(telemetry::TelemetrySink& sink,
                                 const ObsConfig& cfg, double epoch_s,
                                 std::vector<std::string> instance_labels,
                                 std::vector<std::string> app_names,
                                 double power_cap_w)
    : sink_{sink},
      cfg_{cfg},
      epoch_s_{epoch_s},
      instance_labels_{std::move(instance_labels)},
      app_names_{std::move(app_names)},
      power_cap_w_{power_cap_w},
      queue_depth_(instance_labels_.size(), 0) {
  auto& tracer = sink_.tracer();
  instance_tracks_.reserve(instance_labels_.size());
  for (std::size_t i = 0; i < instance_labels_.size(); ++i) {
    instance_tracks_.push_back(tracer.track(
        cfg_.label,
        "instance " + std::to_string(i) + " (" + instance_labels_[i] + ")"));
  }
  job_track_ = tracer.track(cfg_.label, "jobs");
  monitor_track_ = tracer.track(cfg_.label, "monitors");
  series_track_ = tracer.track(cfg_.label, "fleet signals");

  ts_util_ = &make_series("utilization");
  ts_queue_ = &make_series("queue_depth");
  ts_inflight_ = &make_series("inflight");
  ts_power_ = &make_series("power_w");
  ts_goodput_ = &make_series("goodput");
}

telemetry::TimeSeries& ClusterObserver::make_series(const char* suffix) {
  return sink_.metrics().timeseries(cfg_.label + "." + suffix, epoch_s_);
}

JobSpan& ClusterObserver::job(std::uint32_t id) {
  while (store_.jobs.size() <= id) {
    store_.jobs.emplace_back();
    store_.jobs.back().id = static_cast<std::uint32_t>(store_.jobs.size() - 1);
  }
  return store_.jobs[id];
}

AttemptSpan& ClusterObserver::attempt(std::uint32_t id) {
  while (store_.attempts.size() <= id) store_.attempts.emplace_back();
  return store_.attempts[id];
}

void ClusterObserver::sample_utilization(double now) {
  const double n = static_cast<double>(instance_labels_.size());
  ts_util_->record(now, n > 0.0 ? static_cast<double>(busy_instances_) / n
                                : 0.0);
}

void ClusterObserver::sample_power(double now, double value) {
  ts_power_->record(now, value);
  power_max_.sample(ts_power_->epoch_of(now), value);
}

void ClusterObserver::note_completion_epoch(double now, bool violated) {
  std::int64_t epoch = ts_goodput_->epoch_of(now);
  if (epoch < 0) epoch = 0;
  const auto idx = static_cast<std::size_t>(epoch);
  if (epoch_completions_.size() <= idx) {
    epoch_completions_.resize(idx + 1, 0);
    epoch_violations_.resize(idx + 1, 0);
  }
  ++epoch_completions_[idx];
  if (violated) ++epoch_violations_[idx];
}

void ClusterObserver::on_rejected(std::size_t app_row, double now,
                                  const char* why) {
  sink_.tracer().instant(
      job_track_, std::string("rejected (") + why + ")", now * kUsPerS,
      {{"app_row", static_cast<double>(app_row)}});
}

void ClusterObserver::on_admit(std::uint32_t id, std::size_t app_row,
                               double arrival_s, double deadline_abs_s) {
  JobSpan& j = job(id);
  j.app_row = app_row;
  j.arrival_s = arrival_s;
  j.deadline_abs_s = deadline_abs_s;
  if (deadline_abs_s > 0.0 || cfg_.sla_target_latency_s > 0.0) {
    saw_sla_target_ = true;
  }
  ++inflight_jobs_;
  ts_inflight_->record(arrival_s, static_cast<double>(inflight_jobs_));
  sink_.tracer().async_begin(job_track_, app_names_[app_row], "job", id,
                             arrival_s * kUsPerS,
                             {{"deadline_s", deadline_abs_s}});
}

void ClusterObserver::on_enqueue(std::uint32_t aid, std::uint32_t jid,
                                 std::uint32_t instance, std::uint8_t slot,
                                 double now, double base_exec_s) {
  auto& tracer = sink_.tracer();
  JobSpan& j = job(jid);

  // Flow arrows: link a crash-displaced attempt to its re-placement, and a
  // hedge launch back to the primary attempt's lane.
  if (slot == 0 && !j.attempts.empty()) {
    const AttemptSpan& prev = store_.attempts[j.attempts.back()];
    if (prev.end == AttemptEndCause::kCrashedRunning ||
        prev.end == AttemptEndCause::kCrashedQueued) {
      const std::uint64_t fid =
          (static_cast<std::uint64_t>(jid) << 16) | j.attempts.size();
      tracer.flow_start(instance_tracks_[prev.instance], "retry", "retry",
                        fid, prev.end_s * kUsPerS);
      tracer.flow_finish(instance_tracks_[instance], "retry", "retry", fid,
                         now * kUsPerS);
    }
  }
  if (slot == 1 && !j.attempts.empty()) {
    const AttemptSpan& primary = store_.attempts[j.attempts.front()];
    const std::uint64_t fid = (static_cast<std::uint64_t>(jid) << 16) |
                              0x8000u | j.attempts.size();
    tracer.flow_start(instance_tracks_[primary.instance], "hedge", "hedge",
                      fid, now * kUsPerS);
    tracer.flow_finish(instance_tracks_[instance], "hedge", "hedge", fid,
                       now * kUsPerS);
  }

  AttemptSpan& a = attempt(aid);
  a.job = jid;
  a.instance = instance;
  a.slot = slot;
  a.enqueue_s = now;
  a.base_exec_s = base_exec_s;
  j.attempts.push_back(aid);
  if (slot == 1) j.hedged = true;

  ++queue_depth_[instance];
  ++total_queued_;
  ts_queue_->record(now, static_cast<double>(total_queued_));
  tracer.counter(instance_tracks_[instance], "queue_depth", now * kUsPerS,
                 static_cast<double>(queue_depth_[instance]));
}

void ClusterObserver::on_start(std::uint32_t aid, double now,
                               double actual_exec_s, double running_power_w) {
  AttemptSpan& a = attempt(aid);
  a.start_s = now;
  a.actual_exec_s = actual_exec_s;
  --queue_depth_[a.instance];
  --total_queued_;
  ++busy_instances_;
  ts_queue_->record(now, static_cast<double>(total_queued_));
  sample_utilization(now);
  sample_power(now, running_power_w);
  auto& tracer = sink_.tracer();
  tracer.counter(instance_tracks_[a.instance], "queue_depth", now * kUsPerS,
                 static_cast<double>(queue_depth_[a.instance]));
  tracer.counter(instance_tracks_[a.instance], "busy", now * kUsPerS, 1.0);
}

void ClusterObserver::end_attempt(std::uint32_t aid, double now,
                                  AttemptEndCause cause) {
  AttemptSpan& a = attempt(aid);
  a.end_s = now;
  a.end = cause;
  if (a.start_s >= 0.0) {
    // The attempt occupied its instance: close the lane span.
    --busy_instances_;
    sample_utilization(now);
    auto& tracer = sink_.tracer();
    tracer.counter(instance_tracks_[a.instance], "busy", now * kUsPerS, 0.0);
    const std::string name = cause == AttemptEndCause::kCompleted
                                 ? app_names_[job(a.job).app_row]
                                 : std::string(attempt_end_name(cause));
    tracer.complete(instance_tracks_[a.instance], name, a.start_s * kUsPerS,
                    (now - a.start_s) * kUsPerS,
                    {{"job", static_cast<double>(a.job)},
                     {"slot", static_cast<double>(a.slot)}});
  }
}

void ClusterObserver::on_complete(std::uint32_t aid, double now,
                                  double latency_s, double running_power_w,
                                  bool deadline_missed) {
  end_attempt(aid, now, AttemptEndCause::kCompleted);
  AttemptSpan& a = attempt(aid);
  JobSpan& j = job(a.job);
  j.end_s = now;
  j.winner = static_cast<std::int32_t>(aid);
  j.outcome = JobOutcome::kCompleted;

  --inflight_jobs_;
  ts_inflight_->record(now, static_cast<double>(inflight_jobs_));
  sample_power(now, running_power_w);
  ts_goodput_->record(now, 1.0);
  const bool violated =
      j.deadline_abs_s > 0.0
          ? deadline_missed
          : (cfg_.sla_target_latency_s > 0.0 &&
             latency_s > cfg_.sla_target_latency_s);
  note_completion_epoch(now, violated);
  sink_.tracer().async_end(job_track_, app_names_[j.app_row], "job", a.job,
                           now * kUsPerS, {{"latency_s", latency_s}});
}

void ClusterObserver::on_kill_running(std::uint32_t aid, double now,
                                      bool crash, double running_power_w) {
  end_attempt(aid, now,
              crash ? AttemptEndCause::kCrashedRunning
                    : AttemptEndCause::kHedgeLoserRunning);
  sample_power(now, running_power_w);
}

void ClusterObserver::on_cancel_queued(std::uint32_t aid, double now,
                                       bool crash) {
  AttemptSpan& a = attempt(aid);
  a.end_s = now;
  a.end = crash ? AttemptEndCause::kCrashedQueued
                : AttemptEndCause::kHedgeLoserQueued;
  --queue_depth_[a.instance];
  --total_queued_;
  ts_queue_->record(now, static_cast<double>(total_queued_));
  sink_.tracer().counter(instance_tracks_[a.instance], "queue_depth",
                         now * kUsPerS,
                         static_cast<double>(queue_depth_[a.instance]));
}

void ClusterObserver::on_retry_scheduled(std::uint32_t jid, double now,
                                         double fire_s) {
  sink_.tracer().async_begin(job_track_, "backoff", "job", jid, now * kUsPerS,
                             {{"fire_s", fire_s}});
}

void ClusterObserver::on_retry_fired(std::uint32_t jid, double now,
                                     double scheduled_s) {
  JobSpan& j = job(jid);
  j.backoff_s += now - scheduled_s;
  j.backoff_windows.emplace_back(scheduled_s, now);
  sink_.tracer().async_end(job_track_, "backoff", "job", jid, now * kUsPerS);
}

void ClusterObserver::on_hedge(std::uint32_t jid, double now) {
  sink_.tracer().instant(job_track_, "hedge", now * kUsPerS,
                         {{"job", static_cast<double>(jid)}});
}

void ClusterObserver::on_lost(std::uint32_t jid, double now) {
  JobSpan& j = job(jid);
  j.end_s = now;
  j.outcome = JobOutcome::kLost;
  --inflight_jobs_;
  ts_inflight_->record(now, static_cast<double>(inflight_jobs_));
  sink_.tracer().async_end(job_track_, app_names_[j.app_row], "job", jid,
                           now * kUsPerS, {{"lost", 1.0}});
}

void ClusterObserver::on_shed_retry(std::uint32_t jid, double now) {
  JobSpan& j = job(jid);
  j.end_s = now;
  j.outcome = JobOutcome::kShedRetry;
  --inflight_jobs_;
  ts_inflight_->record(now, static_cast<double>(inflight_jobs_));
  sink_.tracer().async_end(job_track_, app_names_[j.app_row], "job", jid,
                           now * kUsPerS, {{"shed", 1.0}});
}

void ClusterObserver::on_fault(std::uint32_t instance, InstanceState state,
                               double slowdown, double now) {
  const char* name = state == InstanceState::kDown      ? "crash"
                     : state == InstanceState::kDegraded ? "degrade"
                                                         : "repair";
  sink_.tracer().instant(instance_tracks_[instance], name, now * kUsPerS,
                         {{"slowdown", slowdown}});
}

std::shared_ptr<const ClusterObsReport> ClusterObserver::finalize(
    double horizon_s, const FleetFaultPlan& faults) {
  auto& tracer = sink_.tracer();

  // Instance state spans from the normalized fault timeline: a lane-level
  // "down"/"degraded" span per non-up interval, closed at the horizon.
  if (!faults.empty()) {
    struct Open {
      InstanceState state = InstanceState::kUp;
      double since = 0.0;
    };
    std::vector<Open> open(instance_labels_.size());
    for (const InstanceStateChange& ch : faults.changes()) {
      Open& o = open[ch.instance];
      if (o.state != InstanceState::kUp && ch.time_s > o.since) {
        tracer.complete(instance_tracks_[ch.instance],
                        o.state == InstanceState::kDown ? "down" : "degraded",
                        o.since * kUsPerS, (ch.time_s - o.since) * kUsPerS);
      }
      o.state = ch.state;
      o.since = ch.time_s;
    }
    for (std::size_t i = 0; i < open.size(); ++i) {
      const Open& o = open[i];
      if (o.state != InstanceState::kUp && horizon_s > o.since) {
        tracer.complete(instance_tracks_[i],
                        o.state == InstanceState::kDown ? "down" : "degraded",
                        o.since * kUsPerS, (horizon_s - o.since) * kUsPerS);
      }
    }
  }

  auto report = std::make_shared<ClusterObsReport>();
  report->epoch_s = epoch_s_;
  report->label = cfg_.label;
  report->jobs_tracked = store_.jobs.size();

  // --- Monitors over the full epoch range [0, horizon]. ---
  std::int64_t last_epoch = horizon_s > 0.0 ? ts_goodput_->epoch_of(horizon_s)
                                            : -1;
  last_epoch = std::max<std::int64_t>(
      last_epoch, static_cast<std::int64_t>(epoch_completions_.size()) - 1);
  const auto epochs_total =
      static_cast<std::size_t>(std::max<std::int64_t>(0, last_epoch + 1));

  {
    MonitorReport& m = report->sla_burn;
    m.enabled = saw_sla_target_;
    m.epochs = epochs_total;
    if (m.enabled) {
      epoch_completions_.resize(epochs_total, 0);
      epoch_violations_.resize(epochs_total, 0);
      const std::size_t window = std::max<std::size_t>(1, cfg_.sla_window_epochs);
      std::uint64_t wc = 0, wv = 0;
      bool in_breach = false;
      for (std::size_t e = 0; e < epochs_total; ++e) {
        wc += epoch_completions_[e];
        wv += epoch_violations_[e];
        if (e >= window) {
          wc -= epoch_completions_[e - window];
          wv -= epoch_violations_[e - window];
        }
        const bool breach =
            wc > 0 && static_cast<double>(wv) >
                          cfg_.sla_burn_budget * static_cast<double>(wc);
        if (breach) {
          ++m.breach_epochs;
          const double at = ts_goodput_->epoch_start_s(
              static_cast<std::int64_t>(e));
          if (m.first_breach_s < 0.0) m.first_breach_s = at;
          if (!in_breach) {
            tracer.instant(monitor_track_, "sla_burn_breach", at * kUsPerS,
                           {{"violations", static_cast<double>(wv)},
                            {"completions", static_cast<double>(wc)}});
          }
        }
        in_breach = breach;
      }
    }
  }

  {
    MonitorReport& m = report->power_proximity;
    m.enabled = power_cap_w_ > 0.0;
    m.epochs = epochs_total;
    if (m.enabled && epochs_total > 0) {
      power_max_.extend_to(static_cast<std::int64_t>(epochs_total) - 1);
      const double threshold = cfg_.power_proximity * power_cap_w_;
      bool in_breach = false;
      for (std::size_t e = 0; e < epochs_total; ++e) {
        const bool breach = power_max_.maxima[e] >= threshold;
        if (breach) {
          ++m.breach_epochs;
          const double at = ts_power_->epoch_start_s(
              static_cast<std::int64_t>(e));
          if (m.first_breach_s < 0.0) m.first_breach_s = at;
          if (!in_breach) {
            tracer.instant(monitor_track_, "power_cap_proximity", at * kUsPerS,
                           {{"max_power_w", power_max_.maxima[e]},
                            {"cap_w", power_cap_w_}});
          }
        }
        in_breach = breach;
      }
    }
  }

  // --- Counter tracks + snapshots for every fleet signal. ---
  const telemetry::TimeSeries* all[] = {ts_util_, ts_queue_, ts_inflight_,
                                        ts_power_, ts_goodput_};
  const char* suffix[] = {"utilization", "queue_depth", "inflight", "power_w",
                          "goodput"};
  for (std::size_t s = 0; s < 5; ++s) {
    SeriesSnapshot snap;
    snap.name = cfg_.label + "." + suffix[s];
    snap.epoch_s = all[s]->epoch_s();
    snap.epochs = all[s]->snapshot();
    for (const auto& [epoch, stats] : snap.epochs) {
      // Goodput renders as jobs/s per epoch; the others as epoch means.
      const double value =
          all[s] == ts_goodput_
              ? static_cast<double>(stats.count) / epoch_s_
              : stats.mean();
      tracer.counter(series_track_, snap.name.c_str(),
                     all[s]->epoch_start_s(epoch) * kUsPerS, value);
    }
    report->series.push_back(std::move(snap));
  }

  // --- Tail-latency attribution. ---
  std::vector<double> latencies;
  latencies.reserve(store_.jobs.size());
  for (const JobSpan& j : store_.jobs) {
    if (j.outcome == JobOutcome::kCompleted && j.winner >= 0) {
      latencies.push_back(j.latency_s());
    }
  }
  report->completed = latencies.size();
  std::vector<double> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  auto threshold = [&](double p) {
    if (sorted.empty()) return 0.0;
    auto k = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(sorted.size())));
    if (k > 0) --k;
    return sorted[k];
  };
  report->p99_threshold_s = threshold(0.99);
  report->p999_threshold_s = threshold(0.999);

  AttributionComponents sum_all, sum_p99, sum_p999;
  double lat_all = 0.0, lat_p99 = 0.0, lat_p999 = 0.0;
  auto fold = [](AttributionComponents& acc, const AttributionComponents& c) {
    acc.service_s += c.service_s;
    acc.degraded_s += c.degraded_s;
    acc.backoff_s += c.backoff_s;
    acc.hedge_wait_s += c.hedge_wait_s;
    acc.queue_s += c.queue_s;
  };
  auto scale = [](AttributionComponents& acc, std::uint64_t n) {
    if (n == 0) return;
    const double inv = 1.0 / static_cast<double>(n);
    acc.service_s *= inv;
    acc.degraded_s *= inv;
    acc.backoff_s *= inv;
    acc.hedge_wait_s *= inv;
    acc.queue_s *= inv;
  };
  for (const JobSpan& j : store_.jobs) {
    if (j.outcome != JobOutcome::kCompleted || j.winner < 0) continue;
    const AttemptSpan& winner =
        store_.attempts[static_cast<std::size_t>(j.winner)];
    const AttributionComponents comp = attribute_job(j, winner);
    const double lat = j.latency_s();
    fold(sum_all, comp);
    lat_all += lat;
    if (!sorted.empty() && lat >= report->p99_threshold_s) {
      ++report->cohort_p99;
      fold(sum_p99, comp);
      lat_p99 += lat;
      JobAttribution row;
      row.job = j.id;
      row.app = app_names_[j.app_row];
      row.arrival_s = j.arrival_s;
      row.latency_s = lat;
      row.comp = comp;
      row.attempts = static_cast<std::uint32_t>(j.attempts.size());
      row.hedged = j.hedged;
      row.hedge_won = winner.slot == 1;
      row.in_p999 = lat >= report->p999_threshold_s;
      if (row.in_p999) {
        ++report->cohort_p999;
        fold(sum_p999, comp);
        lat_p999 += lat;
      }
      report->tail.push_back(std::move(row));
    }
  }
  scale(sum_all, report->completed);
  scale(sum_p99, report->cohort_p99);
  scale(sum_p999, report->cohort_p999);
  report->mean_all = sum_all;
  report->mean_p99 = sum_p99;
  report->mean_p999 = sum_p999;
  report->mean_latency_all =
      report->completed > 0
          ? lat_all / static_cast<double>(report->completed)
          : 0.0;
  report->mean_latency_p99 =
      report->cohort_p99 > 0
          ? lat_p99 / static_cast<double>(report->cohort_p99)
          : 0.0;
  report->mean_latency_p999 =
      report->cohort_p999 > 0
          ? lat_p999 / static_cast<double>(report->cohort_p999)
          : 0.0;
  std::sort(report->tail.begin(), report->tail.end(),
            [](const JobAttribution& a, const JobAttribution& b) {
              if (a.latency_s != b.latency_s) return a.latency_s > b.latency_s;
              return a.job < b.job;
            });

  report->spans = std::move(store_);
  return report;
}

TextTable ClusterObsReport::attribution_table() const {
  TextTable table{{"cohort", "jobs", "latency_s", "queue_s", "backoff_s",
                   "degraded_s", "hedge_wait_s", "service_s", "queue_share",
                   "backoff_share"}};
  auto row = [&](const char* name, std::uint64_t jobs, double lat,
                 const AttributionComponents& c) {
    const double inv = lat > 0.0 ? 1.0 / lat : 0.0;
    table.add_row({name, std::to_string(jobs), fmt(lat, 4), fmt(c.queue_s, 4),
                   fmt(c.backoff_s, 4), fmt(c.degraded_s, 4),
                   fmt(c.hedge_wait_s, 4), fmt(c.service_s, 4),
                   fmt_pct(c.queue_s * inv), fmt_pct(c.backoff_s * inv)});
  };
  row("all", completed, mean_latency_all, mean_all);
  row("p99", cohort_p99, mean_latency_p99, mean_p99);
  row("p999", cohort_p999, mean_latency_p999, mean_p999);
  return table;
}

TextTable ClusterObsReport::attribution_csv() const {
  TextTable table{{"job", "app", "arrival_s", "latency_s", "service_s",
                   "degraded_s", "backoff_s", "hedge_wait_s", "queue_s",
                   "attempts", "hedged", "hedge_won", "cohort"}};
  for (const JobAttribution& r : tail) {
    table.add_row({std::to_string(r.job), r.app, fmt17(r.arrival_s),
                   fmt17(r.latency_s), fmt17(r.comp.service_s),
                   fmt17(r.comp.degraded_s), fmt17(r.comp.backoff_s),
                   fmt17(r.comp.hedge_wait_s), fmt17(r.comp.queue_s),
                   std::to_string(r.attempts), r.hedged ? "1" : "0",
                   r.hedge_won ? "1" : "0", r.in_p999 ? "p999" : "p99"});
  }
  return table;
}

TextTable ClusterObsReport::timeseries_csv() const {
  TextTable table{{"series", "epoch_s", "epoch", "epoch_start_s", "count",
                   "sum", "mean", "min", "max"}};
  for (const SeriesSnapshot& s : series) {
    for (const auto& [epoch, stats] : s.epochs) {
      table.add_row({s.name, fmt17(s.epoch_s), std::to_string(epoch),
                     fmt17(static_cast<double>(epoch) * s.epoch_s),
                     std::to_string(stats.count), fmt17(stats.sum),
                     fmt17(stats.mean()), fmt17(stats.min),
                     fmt17(stats.max)});
    }
  }
  return table;
}

TextTable ClusterObsReport::monitors_table() const {
  TextTable table{{"monitor", "enabled", "epochs", "breach_epochs",
                   "breach_fraction", "first_breach_s"}};
  auto row = [&](const char* name, const MonitorReport& m) {
    table.add_row({name, m.enabled ? "yes" : "no", std::to_string(m.epochs),
                   std::to_string(m.breach_epochs),
                   fmt_pct(m.breach_fraction()),
                   m.first_breach_s < 0.0 ? "n/a" : fmt(m.first_breach_s, 4)});
  };
  row("sla_burn", sla_burn);
  row("power_cap_proximity", power_proximity);
  return table;
}

}  // namespace vfimr::cluster
