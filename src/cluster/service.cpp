#include "cluster/service.hpp"

#include <algorithm>
#include <limits>

#include "common/require.hpp"

namespace vfimr::cluster {

ServiceMatrix ServiceMatrix::evaluate(
    const std::vector<workload::AppProfile>& profiles,
    const std::vector<PlatformTypeSpec>& types,
    const sysmodel::FullSystemSim& sim, std::size_t threads) {
  VFIMR_REQUIRE_MSG(!profiles.empty(), "ServiceMatrix needs >= 1 profile");
  VFIMR_REQUIRE_MSG(!types.empty(), "ServiceMatrix needs >= 1 platform type");

  ServiceMatrix out;
  out.types_n_ = types.size();
  out.apps_.reserve(profiles.size());
  for (const auto& p : profiles) {
    VFIMR_REQUIRE_MSG(
        std::find(out.apps_.begin(), out.apps_.end(), p.app) ==
            out.apps_.end(),
        "duplicate app " << p.name() << " in ServiceMatrix profiles");
    out.apps_.push_back(p.app);
  }

  const std::size_t pairs = profiles.size() * types.size();

  // Stage 1: the NVFI-mesh reference of every pair.  The reference depends
  // on the type's window/fidelity knobs, not its system kind, so pairs that
  // share type params dedupe inside an attached NetworkEvaluator.
  std::vector<sysmodel::BatchRequest> baseline_reqs(pairs);
  for (std::size_t a = 0; a < profiles.size(); ++a) {
    for (std::size_t t = 0; t < types.size(); ++t) {
      sysmodel::BatchRequest& r = baseline_reqs[a * types.size() + t];
      r.profile = &profiles[a];
      r.params = types[t].params;
      r.params.kind = sysmodel::SystemKind::kNvfiMesh;
    }
  }
  const std::vector<sysmodel::SystemReport> baselines =
      sysmodel::run_batch(sim, baseline_reqs, threads);

  // Stage 2: the VFI pairs, judged against their stage-1 phase baselines.
  // NVFI pairs ARE their stage-1 run — no second evaluation needed.
  std::vector<sysmodel::BatchRequest> reqs;
  std::vector<std::size_t> req_pair;  // request slot -> pair index
  for (std::size_t a = 0; a < profiles.size(); ++a) {
    for (std::size_t t = 0; t < types.size(); ++t) {
      if (types[t].params.kind == sysmodel::SystemKind::kNvfiMesh) continue;
      const std::size_t i = a * types.size() + t;
      sysmodel::BatchRequest r;
      r.profile = &profiles[a];
      r.params = types[t].params;
      r.baselines = sysmodel::phase_baselines(baselines[i]);
      reqs.push_back(std::move(r));
      req_pair.push_back(i);
    }
  }
  const std::vector<sysmodel::SystemReport> vfi_reports =
      sysmodel::run_batch(sim, reqs, threads);
  std::vector<const sysmodel::SystemReport*> report_of(pairs);
  for (std::size_t i = 0; i < pairs; ++i) report_of[i] = &baselines[i];
  for (std::size_t k = 0; k < req_pair.size(); ++k) {
    report_of[req_pair[k]] = &vfi_reports[k];
  }

  out.points_.resize(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    const sysmodel::SystemReport& rep = *report_of[i];
    ServicePoint& pt = out.points_[i];
    pt.exec_s = rep.exec_s;
    pt.energy_j = rep.total_energy_j();
    pt.power_w = rep.exec_s > 0.0 ? pt.energy_j / rep.exec_s : 0.0;
    pt.edp_js = rep.edp_js();
    VFIMR_REQUIRE_MSG(pt.exec_s > 0.0,
                      "non-positive service time for app "
                          << profiles[i / types.size()].name() << " on type "
                          << types[i % types.size()].label);
  }
  return out;
}

const ServicePoint& ServiceMatrix::at(std::size_t app_index,
                                      std::size_t type_index) const {
  VFIMR_REQUIRE_MSG(app_index < apps_.size(),
                    "app index " << app_index << " out of range");
  VFIMR_REQUIRE_MSG(type_index < types_n_,
                    "type index " << type_index << " out of range");
  return points_[app_index * types_n_ + type_index];
}

std::size_t ServiceMatrix::app_row(workload::App app) const {
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    if (apps_[i] == app) return i;
  }
  requirement_failed("app evaluated in ServiceMatrix", __FILE__, __LINE__,
                     "app " + workload::app_name(app) +
                         " has no service row");
}

double ServiceMatrix::mean_service_s(std::size_t app_index) const {
  double s = 0.0;
  for (std::size_t t = 0; t < types_n_; ++t) s += at(app_index, t).exec_s;
  return s / static_cast<double>(types_n_);
}

double ServiceMatrix::min_service_s(std::size_t app_index) const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < types_n_; ++t) {
    best = std::min(best, at(app_index, t).exec_s);
  }
  return best;
}

double fleet_capacity_jobs_per_s(
    const ServiceMatrix& matrix,
    const std::vector<PlatformTypeSpec>& types) {
  double capacity = 0.0;
  for (std::size_t t = 0; t < types.size(); ++t) {
    double mean = 0.0;
    for (std::size_t a = 0; a < matrix.apps(); ++a) {
      mean += matrix.at(a, t).exec_s;
    }
    mean /= static_cast<double>(matrix.apps());
    capacity += static_cast<double>(types[t].count) / mean;
  }
  return capacity;
}

}  // namespace vfimr::cluster
