#include "cluster/serving.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>
#include <utility>

#include "common/require.hpp"

namespace vfimr::cluster {

std::string policy_name(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kLeastLoaded: return "least-loaded";
    case SchedulerPolicy::kEdpGreedy: return "edp";
  }
  return "?";
}

bool parse_policy(const std::string& name, SchedulerPolicy& out) {
  if (name == "least-loaded") {
    out = SchedulerPolicy::kLeastLoaded;
    return true;
  }
  if (name == "edp") {
    out = SchedulerPolicy::kEdpGreedy;
    return true;
  }
  return false;
}

std::string discipline_name(QueueDiscipline queue) {
  switch (queue) {
    case QueueDiscipline::kFifo: return "fifo";
    case QueueDiscipline::kEarliestDeadline: return "edf";
  }
  return "?";
}

std::string power_cap_name(PowerCapMode mode) {
  switch (mode) {
    case PowerCapMode::kNone: return "none";
    case PowerCapMode::kShed: return "shed";
    case PowerCapMode::kDelay: return "delay";
  }
  return "?";
}

std::string format_quantile(const P2Quantile& q, int digits) {
  if (q.count() == 0 || std::isnan(q.value())) return "n/a";
  return fmt(q.value(), digits);
}

std::size_t FleetConfig::instance_count() const {
  std::size_t n = 0;
  for (const PlatformTypeSpec& t : types) n += t.count;
  return n;
}

void FleetConfig::validate() const {
  VFIMR_REQUIRE_MSG(!types.empty(), "fleet needs >= 1 platform type");
  for (const PlatformTypeSpec& t : types) {
    VFIMR_REQUIRE_MSG(t.count >= 1,
                      "platform type '" << t.label << "' has count 0");
  }
  if (power_cap != PowerCapMode::kNone) {
    VFIMR_REQUIRE_MSG(power_cap_w > 0.0,
                      "power cap mode " << power_cap_name(power_cap)
                                        << " needs power_cap_w > 0, got "
                                        << power_cap_w);
  }
  VFIMR_REQUIRE_MSG(retry.max_attempts >= 1,
                    "retry.max_attempts must be >= 1 (1 = no retries); a "
                    "retry limit of zero would lose every displaced job "
                    "silently");
  VFIMR_REQUIRE_MSG(retry.backoff_base_s >= 0.0,
                    "retry.backoff_base_s must be >= 0, got "
                        << retry.backoff_base_s);
  VFIMR_REQUIRE_MSG(retry.backoff_mult > 0.0,
                    "retry.backoff_mult must be > 0, got "
                        << retry.backoff_mult);
  VFIMR_REQUIRE_MSG(retry.backoff_cap_s >= 0.0,
                    "retry.backoff_cap_s must be >= 0, got "
                        << retry.backoff_cap_s);
  VFIMR_REQUIRE_MSG(hedge.latency_multiplier >= 0.0,
                    "hedge.latency_multiplier must be >= 0, got "
                        << hedge.latency_multiplier);
  if (!faults.empty()) {
    VFIMR_REQUIRE_MSG(faults.instances() == instance_count(),
                      "fault plan covers " << faults.instances()
                                           << " instances but the fleet has "
                                           << instance_count());
  }
  if (obs.enabled) {
    VFIMR_REQUIRE_MSG(obs.epoch_s >= 0.0,
                      "obs.epoch_s must be >= 0 (0 = derive), got "
                          << obs.epoch_s);
    VFIMR_REQUIRE_MSG(obs.sla_window_epochs >= 1,
                      "obs.sla_window_epochs must be >= 1");
    VFIMR_REQUIRE_MSG(obs.sla_burn_budget > 0.0 && obs.sla_burn_budget <= 1.0,
                      "obs.sla_burn_budget must be in (0, 1], got "
                          << obs.sla_burn_budget);
    VFIMR_REQUIRE_MSG(obs.power_proximity > 0.0 && obs.power_proximity <= 1.0,
                      "obs.power_proximity must be in (0, 1], got "
                          << obs.power_proximity);
    VFIMR_REQUIRE_MSG(!obs.label.empty(), "obs.label must be non-empty");
  }
}

double ClusterReport::utilization() const {
  const double denom = static_cast<double>(instances) * horizon_s;
  return denom > 0.0 ? busy_seconds / denom : 0.0;
}

double ClusterReport::availability() const {
  const double denom = static_cast<double>(instances) * horizon_s;
  return denom > 0.0 ? 1.0 - down_seconds / denom : 1.0;
}

double ClusterReport::goodput_jobs_per_s() const {
  return horizon_s > 0.0 ? static_cast<double>(fleet.completed) / horizon_s
                         : 0.0;
}

double ClusterReport::total_energy_j() const {
  return fleet.energy_j.sum() + wasted_energy_j;
}

double ClusterReport::fleet_edp_js() const {
  return total_energy_j() * fleet.latency_s.mean();
}

TextTable ClusterReport::sla_table() const {
  TextTable t{{"scope", "arrived", "admitted", "completed", "rej_deadline",
               "rej_power", "miss", "retry", "hedge", "lost", "mean_s",
               "p50_s", "p99_s", "p999_s", "energy_j"}};
  auto row = [&t](const std::string& scope, const SlaStats& s) {
    t.add_row({scope, std::to_string(s.arrived), std::to_string(s.admitted),
               std::to_string(s.completed),
               std::to_string(s.rejected_deadline),
               std::to_string(s.rejected_power),
               std::to_string(s.deadline_misses), std::to_string(s.retries),
               std::to_string(s.hedges),
               std::to_string(s.lost + s.shed_retry),
               fmt(s.latency_s.mean(), 4), format_quantile(s.p50),
               format_quantile(s.p99), format_quantile(s.p999),
               fmt(s.energy_j.mean(), 3)});
  };
  for (std::size_t a = 0; a < per_app.size(); ++a) {
    row(workload::app_name(app_order[a]), per_app[a]);
  }
  row("fleet", fleet);
  return t;
}

namespace {

constexpr std::int32_t kNone32 = -1;

struct Job {
  std::size_t app_row = 0;
  double arrival_s = 0.0;
  double deadline_abs_s = 0.0;  ///< absolute deadline; 0 = none
  std::uint32_t tries = 0;      ///< placements consumed (retry budget)
  bool completed = false;
  bool hedged = false;  ///< speculative duplicate already launched
  /// Live attempt ids: slot 0 = primary (original or retry), slot 1 =
  /// hedge duplicate.  kNone32 = no live attempt in that slot.
  std::int32_t live[2] = {kNone32, kNone32};
};

/// One placement of a job onto an instance: queued, then running, then
/// completed — or cancelled at any point by a crash or a first-wins hedge.
struct Attempt {
  std::uint32_t job = 0;
  std::uint32_t instance = 0;
  std::uint8_t slot = 0;  ///< 0 = primary, 1 = hedge
  double base_exec_s = 0.0;    ///< type service time (undegraded)
  double base_energy_j = 0.0;  ///< type energy (undegraded)
  double power_w = 0.0;        ///< draw while running (degrade-invariant)
  double queued_exec_s = 0.0;  ///< backlog estimate charged at enqueue
  double actual_exec_s = 0.0;  ///< set at start (x instance slowdown)
  double actual_energy_j = 0.0;
  double start_s = -1.0;
  bool running = false;
  bool cancelled = false;
};

/// Queue entry: min-heap on (key, seq).  FIFO uses key 0 (ordering falls
/// to the admission sequence); EDF uses the absolute deadline (deadline-
/// free jobs sort last via +inf).
struct QueueEntry {
  double key = 0.0;
  std::uint64_t seq = 0;
  std::uint32_t attempt = 0;
};
struct QueueLater {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.key != b.key) return a.key > b.key;
    return a.seq > b.seq;
  }
};

struct Instance {
  std::size_t type = 0;
  InstanceState state = InstanceState::kUp;
  double slowdown = 1.0;  ///< service-time multiplier while kDegraded
  bool busy = false;
  std::int32_t running_attempt = kNone32;
  double running_until = 0.0;     ///< completion time of the running job
  double queued_service_s = 0.0;  ///< service backlog waiting in the queue
  double blocked_since = -1.0;    ///< power-cap block start; < 0 = not blocked
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, QueueLater> queue;
};

struct Completion {
  double time_s = 0.0;
  std::uint64_t seq = 0;
  std::uint32_t instance = 0;
  std::uint32_t attempt = 0;
};
struct CompletionLater {
  bool operator()(const Completion& a, const Completion& b) const {
    if (a.time_s != b.time_s) return a.time_s > b.time_s;
    return a.seq > b.seq;
  }
};

/// Deferred retry re-placement or hedge launch for one job.
struct Timer {
  double time_s = 0.0;
  std::uint64_t seq = 0;
  std::uint32_t job = 0;
  bool hedge = false;       ///< false = retry re-placement
  double scheduled_s = 0.0; ///< when the timer was armed (observer only)
};
struct TimerLater {
  bool operator()(const Timer& a, const Timer& b) const {
    if (a.time_s != b.time_s) return a.time_s > b.time_s;
    return a.seq > b.seq;
  }
};

std::uint64_t digest_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

void record_completion(SlaStats& s, double latency_s, double energy_j) {
  ++s.completed;
  s.latency_s.add(latency_s);
  s.energy_j.add(energy_j);
  s.p50.add(latency_s);
  s.p99.add(latency_s);
  s.p999.add(latency_s);
}

}  // namespace

ClusterReport ClusterSim::run(const std::vector<JobArrival>& arrivals,
                              const FleetConfig& fleet,
                              const ServiceMatrix& matrix) {
  fleet.validate();
  VFIMR_REQUIRE_MSG(fleet.types.size() == matrix.types(),
                    "fleet has " << fleet.types.size()
                                 << " platform types but the ServiceMatrix "
                                    "was evaluated for "
                                 << matrix.types());

  // Expand types into instances.
  std::vector<Instance> insts;
  for (std::size_t t = 0; t < fleet.types.size(); ++t) {
    for (std::size_t c = 0; c < fleet.types[t].count; ++c) {
      Instance inst;
      inst.type = t;
      insts.push_back(std::move(inst));
    }
  }

  double max_exec = 0.0;
  for (std::size_t a = 0; a < matrix.apps(); ++a) {
    for (std::size_t t = 0; t < matrix.types(); ++t) {
      const ServicePoint& pt = matrix.at(a, t);
      max_exec = std::max(max_exec, pt.exec_s);
      if (fleet.power_cap == PowerCapMode::kDelay) {
        // A job drawing more than the whole budget would block its
        // instance forever: a config error, not a simulation outcome.
        VFIMR_REQUIRE_MSG(pt.power_w <= fleet.power_cap_w,
                          "power cap " << fleet.power_cap_w
                                       << " W is below the draw of a single "
                                          "job ("
                                       << pt.power_w << " W)");
      }
    }
  }

  ClusterReport report;
  report.app_order = matrix.app_order();
  report.per_app.assign(matrix.apps(), SlaStats{});
  report.instances = insts.size();
  const double hist_max = fleet.latency_hist_max_s > 0.0
                              ? fleet.latency_hist_max_s
                              : std::max(50.0 * max_exec, 1e-9);
  report.latency_hist =
      Histogram{0.0, hist_max, std::max<std::size_t>(fleet.latency_hist_bins, 1)};

  // Per-app hedge budget: sojourn past multiplier x mean service launches
  // the speculative duplicate.
  std::vector<double> hedge_budget_s;
  if (fleet.hedge.enabled()) {
    hedge_budget_s.resize(matrix.apps());
    for (std::size_t a = 0; a < matrix.apps(); ++a) {
      hedge_budget_s[a] =
          fleet.hedge.latency_multiplier * matrix.mean_service_s(a);
    }
  }

  std::vector<Job> jobs;
  jobs.reserve(arrivals.size());
  std::vector<Attempt> attempts;
  attempts.reserve(arrivals.size());

  std::priority_queue<Completion, std::vector<Completion>, CompletionLater>
      completions;
  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers;
  const std::vector<InstanceStateChange>& fault_changes =
      fleet.faults.changes();
  std::size_t fi = 0;
  std::vector<std::uint32_t> power_blocked;  // instance ids, block order
  double running_power = 0.0;
  std::uint64_t queue_seq = 0;
  std::uint64_t completion_seq = 0;
  std::uint64_t timer_seq = 0;

  // Streaming telemetry instruments (cached once; null sink = no-ops).
  telemetry::MetricsRegistry* metrics =
      fleet.telemetry != nullptr ? &fleet.telemetry->metrics() : nullptr;
  telemetry::QuantileMetric* tele_p50 =
      metrics ? &metrics->quantile("cluster.latency_s.p50", 0.50) : nullptr;
  telemetry::QuantileMetric* tele_p99 =
      metrics ? &metrics->quantile("cluster.latency_s.p99", 0.99) : nullptr;
  telemetry::QuantileMetric* tele_p999 =
      metrics ? &metrics->quantile("cluster.latency_s.p999", 0.999) : nullptr;

  // Optional serving-tier observer (DESIGN.md §15).  Opt-in on top of the
  // sink because span storage scales with admitted jobs.  Every hook below
  // is a single `if (obs)` test and the observer writes nothing back into
  // the loop, so the sink-off path is bit-identical by construction
  // (regression-tested and CI-gated).
  std::unique_ptr<ClusterObserver> obs_owner;
  ClusterObserver* obs = nullptr;
  if (fleet.obs.enabled && fleet.telemetry != nullptr) {
    double epoch = fleet.obs.epoch_s;
    if (epoch <= 0.0) {
      // Derive: mean service time across the whole matrix — coarse enough
      // to roll up, fine enough to see queue transients.
      double total = 0.0;
      for (std::size_t a = 0; a < matrix.apps(); ++a) {
        for (std::size_t t = 0; t < matrix.types(); ++t) {
          total += matrix.at(a, t).exec_s;
        }
      }
      epoch = total / static_cast<double>(matrix.apps() * matrix.types());
      if (!(epoch > 0.0)) epoch = 1e-9;
    }
    std::vector<std::string> instance_labels;
    instance_labels.reserve(insts.size());
    for (const Instance& inst : insts) {
      instance_labels.push_back(fleet.types[inst.type].label);
    }
    std::vector<std::string> app_names;
    app_names.reserve(matrix.apps());
    for (const workload::App app : matrix.app_order()) {
      app_names.push_back(workload::app_name(app));
    }
    obs_owner = std::make_unique<ClusterObserver>(
        *fleet.telemetry, fleet.obs, epoch, std::move(instance_labels),
        std::move(app_names),
        fleet.power_cap != PowerCapMode::kNone ? fleet.power_cap_w : 0.0);
    obs = obs_owner.get();
  }

  // Deterministic exponential backoff before the job's (tries+1)-th
  // placement; no jitter, so faulty runs replay bit-identically.
  auto backoff_delay = [&](std::uint32_t tries) {
    double d = fleet.retry.backoff_base_s;
    for (std::uint32_t k = 1; k < tries; ++k) d *= fleet.retry.backoff_mult;
    if (fleet.retry.backoff_cap_s > 0.0) {
      d = std::min(d, fleet.retry.backoff_cap_s);
    }
    return d;
  };

  // Route a job with no live attempts onward: schedule the next re-
  // placement, or account it lost (budget exhausted) / shed (its deadline
  // lands before the retry could).
  auto schedule_retry = [&](std::uint32_t job_id, double now) {
    Job& job = jobs[job_id];
    if (job.tries >= fleet.retry.max_attempts) {
      ++report.fleet.lost;
      ++report.per_app[job.app_row].lost;
      if (obs != nullptr) obs->on_lost(job_id, now);
      return;
    }
    const double fire = now + backoff_delay(job.tries);
    if (job.deadline_abs_s > 0.0 && fire >= job.deadline_abs_s) {
      ++report.fleet.shed_retry;
      ++report.per_app[job.app_row].shed_retry;
      if (obs != nullptr) obs->on_shed_retry(job_id, now);
      return;
    }
    timers.push(Timer{fire, timer_seq++, job_id, false, now});
    if (obs != nullptr) obs->on_retry_scheduled(job_id, now, fire);
  };

  // Placement: score every up instance (optionally excluding one — the
  // hedge's primary), keep the policy's argmin.  Degraded instances stay
  // placeable but are scored at their slowed service time (and, for EDP
  // greedy, slowdown^2 x EDP: slower *and* longer at the same draw).
  struct Placement {
    std::size_t best;
    double finish;
  };
  auto place = [&](std::size_t row, double now, double deadline_abs,
                   std::int32_t exclude) {
    std::size_t best = insts.size();
    double best_finish = 0.0;
    double best_edp = 0.0;
    bool best_feasible = false;
    for (std::size_t i = 0; i < insts.size(); ++i) {
      const Instance& inst = insts[i];
      if (inst.state == InstanceState::kDown ||
          static_cast<std::int32_t>(i) == exclude) {
        continue;
      }
      const ServicePoint& pt = matrix.at(row, inst.type);
      const double start =
          std::max(now, inst.busy ? inst.running_until : now) +
          inst.queued_service_s;
      const double finish = start + pt.exec_s * inst.slowdown;
      const double edp = pt.edp_js * inst.slowdown * inst.slowdown;
      const bool feasible = deadline_abs == 0.0 || finish <= deadline_abs;
      bool better = false;
      if (best == insts.size()) {
        better = true;
      } else if (fleet.policy == SchedulerPolicy::kLeastLoaded) {
        better = finish < best_finish;
      } else {  // kEdpGreedy
        if (feasible != best_feasible) {
          better = feasible;
        } else if (feasible) {
          better = edp < best_edp || (edp == best_edp && finish < best_finish);
        } else {
          better = finish < best_finish;
        }
      }
      if (better) {
        best = i;
        best_finish = finish;
        best_edp = edp;
        best_feasible = feasible;
      }
    }
    return Placement{best, best_finish};
  };

  // Queue a fresh attempt of `job_id` on instance `i`.
  auto enqueue_attempt = [&](std::uint32_t job_id, std::size_t i,
                             std::uint8_t slot, double now) {
    Job& job = jobs[job_id];
    Instance& inst = insts[i];
    const ServicePoint& pt = matrix.at(job.app_row, inst.type);
    Attempt a;
    a.job = job_id;
    a.instance = static_cast<std::uint32_t>(i);
    a.slot = slot;
    a.base_exec_s = pt.exec_s;
    a.base_energy_j = pt.energy_j;
    a.power_w = pt.power_w;
    a.queued_exec_s = pt.exec_s * inst.slowdown;
    attempts.push_back(a);
    const auto aid = static_cast<std::uint32_t>(attempts.size() - 1);
    job.live[slot] = static_cast<std::int32_t>(aid);
    QueueEntry entry;
    entry.key = fleet.queue == QueueDiscipline::kEarliestDeadline
                    ? (job.deadline_abs_s > 0.0
                           ? job.deadline_abs_s
                           : std::numeric_limits<double>::infinity())
                    : 0.0;
    entry.seq = queue_seq++;
    entry.attempt = aid;
    inst.queue.push(entry);
    inst.queued_service_s += a.queued_exec_s;
    if (obs != nullptr) {
      obs->on_enqueue(aid, job_id, static_cast<std::uint32_t>(i), slot, now,
                      a.base_exec_s);
    }
  };

  // Try to start the head-of-queue attempt on an idle instance; returns
  // without starting when the instance is down, the queue is empty (after
  // dropping cancelled heads) or the power cap has no headroom (the
  // instance then waits on `power_blocked` until a completion or crash
  // frees draw).
  auto try_start = [&](std::uint32_t i, double now) {
    Instance& inst = insts[i];
    if (inst.state == InstanceState::kDown || inst.busy) return;
    while (!inst.queue.empty() &&
           attempts[inst.queue.top().attempt].cancelled) {
      inst.queue.pop();
    }
    if (inst.queue.empty()) {
      // A first-wins cancellation can empty a power-blocked queue: close
      // the blocked window so the wait accounting stays finite.
      if (inst.blocked_since >= 0.0) {
        report.power_wait_seconds += now - inst.blocked_since;
        inst.blocked_since = -1.0;
      }
      return;
    }
    const QueueEntry head = inst.queue.top();
    Attempt& a = attempts[head.attempt];
    if (fleet.power_cap == PowerCapMode::kDelay &&
        running_power + a.power_w > fleet.power_cap_w) {
      if (inst.blocked_since < 0.0) {
        inst.blocked_since = now;
        power_blocked.push_back(i);
      }
      return;
    }
    inst.queue.pop();
    inst.queued_service_s -= a.queued_exec_s;
    if (inst.blocked_since >= 0.0) {
      report.power_wait_seconds += now - inst.blocked_since;
      inst.blocked_since = -1.0;
    }
    inst.busy = true;
    inst.running_attempt = static_cast<std::int32_t>(head.attempt);
    a.running = true;
    a.start_s = now;
    a.actual_exec_s = a.base_exec_s * inst.slowdown;
    a.actual_energy_j = a.base_energy_j * inst.slowdown;
    inst.running_until = now + a.actual_exec_s;
    running_power += a.power_w;
    report.peak_power_w = std::max(report.peak_power_w, running_power);
    report.busy_seconds += a.actual_exec_s;
    const double queue_delay = now - jobs[a.job].arrival_s;
    report.fleet.queue_s.add(queue_delay);
    report.per_app[jobs[a.job].app_row].queue_s.add(queue_delay);
    completions.push(
        Completion{inst.running_until, completion_seq++, i, head.attempt});
    if (obs != nullptr) {
      obs->on_start(head.attempt, now, a.actual_exec_s, running_power);
    }
  };

  // Kill the attempt running on instance `i` (crash or first-wins): frees
  // the instance and its draw immediately, charges the partial work to
  // wasted energy, and leaves a stale completion entry that the pop path
  // skips via the cancelled flag.
  auto kill_running = [&](std::uint32_t i, double now) {
    Instance& inst = insts[i];
    const auto aid = static_cast<std::uint32_t>(inst.running_attempt);
    Attempt& a = attempts[aid];
    a.cancelled = true;
    a.running = false;
    inst.busy = false;
    inst.running_attempt = kNone32;
    running_power -= a.power_w;
    report.wasted_energy_j += a.power_w * (now - a.start_s);
    report.busy_seconds -= inst.running_until - now;  // unserved remainder
    jobs[a.job].live[a.slot] = kNone32;
    return aid;
  };

  // Freed power headroom goes to power-blocked instances in block order.
  // try_start never appends an already-blocked instance twice
  // (blocked_since guard), so rebuilding the list keeps it duplicate-free;
  // crashed instances drop out because the crash cleared blocked_since.
  auto drain_power_blocked = [&](double now) {
    if (power_blocked.empty()) return;
    std::vector<std::uint32_t> waiting;
    waiting.swap(power_blocked);
    for (const std::uint32_t b : waiting) {
      try_start(b, now);
      if (insts[b].blocked_since >= 0.0) power_blocked.push_back(b);
    }
  };

  std::size_t ai = 0;
  while (true) {
    // Pick the next event.  At equal times: completions first (freed
    // instances and power headroom must be visible to everything at the
    // same instant), then fault transitions (a retry or arrival at the
    // crash instant must see the instance down), then retry/hedge timers,
    // then arrivals.
    enum class Src : std::uint8_t {
      kCompletion,
      kFault,
      kTimer,
      kArrival,
      kNone
    };
    Src src = Src::kNone;
    double when = 0.0;
    auto consider = [&](bool present, double t, Src s) {
      if (!present) return;
      if (src == Src::kNone || t < when) {
        src = s;
        when = t;
      }
    };
    consider(!completions.empty(),
             completions.empty() ? 0.0 : completions.top().time_s,
             Src::kCompletion);
    consider(fi < fault_changes.size(),
             fi < fault_changes.size() ? fault_changes[fi].time_s : 0.0,
             Src::kFault);
    consider(!timers.empty(), timers.empty() ? 0.0 : timers.top().time_s,
             Src::kTimer);
    consider(ai < arrivals.size(),
             ai < arrivals.size() ? arrivals[ai].time_s : 0.0, Src::kArrival);
    if (src == Src::kNone) break;

    if (src == Src::kCompletion) {
      const Completion done = completions.top();
      completions.pop();
      Attempt& a = attempts[done.attempt];
      if (a.cancelled) continue;  // stale: freed at cancellation time
      const double now = done.time_s;
      Instance& inst = insts[done.instance];
      inst.busy = false;
      inst.running_attempt = kNone32;
      a.running = false;
      running_power -= a.power_w;

      Job& job = jobs[a.job];
      job.completed = true;
      job.live[a.slot] = kNone32;
      const double latency = now - job.arrival_s;
      record_completion(report.fleet, latency, a.actual_energy_j);
      record_completion(report.per_app[job.app_row], latency,
                        a.actual_energy_j);
      report.latency_hist.add(latency);
      if (job.deadline_abs_s > 0.0 && now > job.deadline_abs_s) {
        ++report.fleet.deadline_misses;
        ++report.per_app[job.app_row].deadline_misses;
      }
      if (a.slot == 1) {
        ++report.fleet.hedge_wins;
        ++report.per_app[job.app_row].hedge_wins;
      }
      report.completion_digest = digest_mix(report.completion_digest, a.job);
      report.completion_digest =
          digest_mix(report.completion_digest, std::bit_cast<std::uint64_t>(now));
      report.horizon_s = std::max(report.horizon_s, now);
      if (tele_p50 != nullptr) {
        tele_p50->add(latency);
        tele_p99->add(latency);
        tele_p999->add(latency);
      }
      if (obs != nullptr) {
        obs->on_complete(done.attempt, now, latency, running_power,
                         job.deadline_abs_s > 0.0 && now > job.deadline_abs_s);
      }

      // First wins: cancel the sibling attempt (the hedge's loser), killing
      // it mid-run if it already started.
      const std::int32_t sib = job.live[a.slot ^ 1];
      std::int32_t freed_sibling_inst = kNone32;
      if (sib != kNone32) {
        Attempt& s = attempts[static_cast<std::uint32_t>(sib)];
        if (s.running) {
          kill_running(s.instance, now);
          if (obs != nullptr) {
            obs->on_kill_running(static_cast<std::uint32_t>(sib), now, false,
                                 running_power);
          }
          freed_sibling_inst = static_cast<std::int32_t>(s.instance);
        } else {
          s.cancelled = true;
          insts[s.instance].queued_service_s -= s.queued_exec_s;
          job.live[a.slot ^ 1] = kNone32;
          if (obs != nullptr) {
            obs->on_cancel_queued(static_cast<std::uint32_t>(sib), now, false);
          }
        }
      }

      try_start(done.instance, now);
      if (freed_sibling_inst != kNone32) {
        try_start(static_cast<std::uint32_t>(freed_sibling_inst), now);
      }
      drain_power_blocked(now);
      continue;
    }

    if (src == Src::kFault) {
      const InstanceStateChange& ch = fault_changes[fi];
      ++fi;
      const double now = ch.time_s;
      Instance& inst = insts[ch.instance];
      const InstanceState prev = inst.state;
      inst.state = ch.state;
      inst.slowdown = ch.state == InstanceState::kDegraded ? ch.slowdown : 1.0;
      if (obs != nullptr) {
        obs->on_fault(ch.instance, ch.state, inst.slowdown, now);
      }
      if (ch.state != InstanceState::kDown || prev == InstanceState::kDown) {
        // Repair or degrade-level change: only future placements and starts
        // see the new state; a running job keeps its started service rate.
        continue;
      }
      // Crash: the running attempt is killed (its partial work wasted), the
      // queue is lost, and every displaced job re-enters through the retry
      // policy — unless its hedge sibling is still live elsewhere.
      std::vector<std::uint32_t> displaced;
      if (inst.busy) {
        const std::uint32_t aid = kill_running(ch.instance, now);
        if (obs != nullptr) obs->on_kill_running(aid, now, true, running_power);
        displaced.push_back(aid);
      }
      while (!inst.queue.empty()) {
        const QueueEntry e = inst.queue.top();
        inst.queue.pop();
        Attempt& a = attempts[e.attempt];
        if (a.cancelled) continue;
        a.cancelled = true;
        jobs[a.job].live[a.slot] = kNone32;
        displaced.push_back(e.attempt);
        if (obs != nullptr) obs->on_cancel_queued(e.attempt, now, true);
      }
      inst.queued_service_s = 0.0;
      if (inst.blocked_since >= 0.0) {
        report.power_wait_seconds += now - inst.blocked_since;
        inst.blocked_since = -1.0;  // drained lazily from power_blocked
      }
      for (const std::uint32_t aid : displaced) {
        const Attempt& a = attempts[aid];
        Job& job = jobs[a.job];
        ++report.fleet.failovers;
        ++report.per_app[job.app_row].failovers;
        if (job.live[0] != kNone32 || job.live[1] != kNone32) {
          continue;  // the hedge sibling carries the job forward
        }
        schedule_retry(a.job, now);
      }
      // A killed running job freed draw: headroom for blocked instances.
      drain_power_blocked(now);
      continue;
    }

    if (src == Src::kTimer) {
      const Timer t = timers.top();
      timers.pop();
      const double now = t.time_s;
      Job& job = jobs[t.job];
      if (t.hedge) {
        // Launch the speculative duplicate unless the job already finished,
        // already hedged, or is sitting in retry backoff (the retry path
        // owns it then).
        if (job.completed || job.hedged || job.live[0] == kNone32) continue;
        const Attempt& primary =
            attempts[static_cast<std::uint32_t>(job.live[0])];
        const Placement p =
            place(job.app_row, now, job.deadline_abs_s,
                  static_cast<std::int32_t>(primary.instance));
        if (p.best == insts.size()) continue;  // nowhere else to run
        if (fleet.power_cap == PowerCapMode::kShed &&
            running_power + matrix.at(job.app_row, insts[p.best].type).power_w >
                fleet.power_cap_w) {
          continue;  // speculation never violates a shed cap
        }
        job.hedged = true;
        ++report.fleet.hedges;
        ++report.per_app[job.app_row].hedges;
        if (obs != nullptr) obs->on_hedge(t.job, now);
        enqueue_attempt(t.job, p.best, 1, now);
        try_start(static_cast<std::uint32_t>(p.best), now);
        continue;
      }
      // Retry re-placement.  The job has no live attempts (that is the only
      // path that schedules one), so it cannot have completed meanwhile.
      if (obs != nullptr) obs->on_retry_fired(t.job, now, t.scheduled_s);
      ++job.tries;
      const Placement p = place(job.app_row, now, job.deadline_abs_s, kNone32);
      if (p.best == insts.size()) {
        // Still nowhere to run: consume the attempt and go around (bounded
        // by max_attempts, so an all-down fleet sheds instead of looping).
        schedule_retry(t.job, now);
        continue;
      }
      if (fleet.admit_by_deadline && job.deadline_abs_s > 0.0 &&
          p.finish > job.deadline_abs_s) {
        ++report.fleet.shed_retry;
        ++report.per_app[job.app_row].shed_retry;
        if (obs != nullptr) obs->on_shed_retry(t.job, now);
        continue;
      }
      ++report.fleet.retries;
      ++report.per_app[job.app_row].retries;
      enqueue_attempt(t.job, p.best, 0, now);
      try_start(static_cast<std::uint32_t>(p.best), now);
      continue;
    }

    // Arrival.
    const JobArrival& a = arrivals[ai];
    ++ai;
    const double now = a.time_s;
    report.horizon_s = std::max(report.horizon_s, now);
    const std::size_t row = matrix.app_row(a.app);
    ++report.fleet.arrived;
    ++report.per_app[row].arrived;

    const double deadline_abs = a.deadline_s > 0.0 ? now + a.deadline_s : 0.0;
    const Placement p = place(row, now, deadline_abs, kNone32);

    if (p.best == insts.size()) {
      // Every instance is down.  The job is admitted into the retry path:
      // its first placement attempt is consumed, and the retry policy
      // either lands it after a repair or accounts it lost/shed.
      ++report.fleet.admitted;
      ++report.per_app[row].admitted;
      Job job;
      job.app_row = row;
      job.arrival_s = now;
      job.deadline_abs_s = deadline_abs;
      job.tries = 1;
      jobs.push_back(job);
      const auto job_id = static_cast<std::uint32_t>(jobs.size() - 1);
      if (obs != nullptr) obs->on_admit(job_id, row, now, deadline_abs);
      schedule_retry(job_id, now);
      continue;
    }
    const ServicePoint& svc = matrix.at(row, insts[p.best].type);

    // Admission.
    if (fleet.admit_by_deadline && deadline_abs > 0.0 &&
        p.finish > deadline_abs) {
      ++report.fleet.rejected_deadline;
      ++report.per_app[row].rejected_deadline;
      if (obs != nullptr) obs->on_rejected(row, now, "deadline");
      continue;
    }
    if (fleet.power_cap == PowerCapMode::kShed &&
        running_power + svc.power_w > fleet.power_cap_w) {
      ++report.fleet.rejected_power;
      ++report.per_app[row].rejected_power;
      if (obs != nullptr) obs->on_rejected(row, now, "power");
      continue;
    }

    ++report.fleet.admitted;
    ++report.per_app[row].admitted;
    Job job;
    job.app_row = row;
    job.arrival_s = now;
    job.deadline_abs_s = deadline_abs;
    job.tries = 1;
    jobs.push_back(job);
    const auto job_id = static_cast<std::uint32_t>(jobs.size() - 1);

    if (obs != nullptr) obs->on_admit(job_id, row, now, deadline_abs);
    enqueue_attempt(job_id, p.best, 0, now);
    if (fleet.hedge.enabled()) {
      timers.push(
          Timer{now + hedge_budget_s[row], timer_seq++, job_id, true, now});
    }
    try_start(static_cast<std::uint32_t>(p.best), now);
  }

  report.down_seconds = fleet.faults.down_seconds(report.horizon_s);
  if (obs != nullptr) {
    report.obs = obs->finalize(report.horizon_s, fleet.faults);
  }

  // Mirror the final aggregates into the sink.
  if (metrics != nullptr) {
    metrics->counter("cluster.jobs_arrived").add(report.fleet.arrived);
    metrics->counter("cluster.jobs_admitted").add(report.fleet.admitted);
    metrics->counter("cluster.jobs_completed").add(report.fleet.completed);
    metrics->counter("cluster.jobs_rejected_deadline")
        .add(report.fleet.rejected_deadline);
    metrics->counter("cluster.jobs_rejected_power")
        .add(report.fleet.rejected_power);
    metrics->counter("cluster.deadline_misses")
        .add(report.fleet.deadline_misses);
    metrics->counter("cluster.retries").add(report.fleet.retries);
    metrics->counter("cluster.failovers").add(report.fleet.failovers);
    metrics->counter("cluster.hedges").add(report.fleet.hedges);
    metrics->counter("cluster.hedge_wins").add(report.fleet.hedge_wins);
    metrics->counter("cluster.lost_jobs").add(report.fleet.lost);
    metrics->counter("cluster.shed_retry").add(report.fleet.shed_retry);
    metrics->gauge("cluster.peak_power_w").set(report.peak_power_w);
    metrics->gauge("cluster.utilization").set(report.utilization());
    metrics->gauge("cluster.horizon_s").set(report.horizon_s);
    metrics->gauge("cluster.availability").set(report.availability());
    metrics->gauge("cluster.down_seconds").set(report.down_seconds);
    metrics->gauge("cluster.wasted_energy_j").set(report.wasted_energy_j);
    metrics->gauge("cluster.goodput_jobs_per_s")
        .set(report.goodput_jobs_per_s());
  }
  return report;
}

}  // namespace vfimr::cluster
