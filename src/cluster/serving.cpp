#include "cluster/serving.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <queue>

#include "common/require.hpp"

namespace vfimr::cluster {

std::string policy_name(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kLeastLoaded: return "least-loaded";
    case SchedulerPolicy::kEdpGreedy: return "edp";
  }
  return "?";
}

bool parse_policy(const std::string& name, SchedulerPolicy& out) {
  if (name == "least-loaded") {
    out = SchedulerPolicy::kLeastLoaded;
    return true;
  }
  if (name == "edp") {
    out = SchedulerPolicy::kEdpGreedy;
    return true;
  }
  return false;
}

std::string discipline_name(QueueDiscipline queue) {
  switch (queue) {
    case QueueDiscipline::kFifo: return "fifo";
    case QueueDiscipline::kEarliestDeadline: return "edf";
  }
  return "?";
}

std::string power_cap_name(PowerCapMode mode) {
  switch (mode) {
    case PowerCapMode::kNone: return "none";
    case PowerCapMode::kShed: return "shed";
    case PowerCapMode::kDelay: return "delay";
  }
  return "?";
}

std::string format_quantile(const P2Quantile& q, int digits) {
  if (q.count() == 0 || std::isnan(q.value())) return "n/a";
  return fmt(q.value(), digits);
}

double ClusterReport::utilization() const {
  const double denom = static_cast<double>(instances) * horizon_s;
  return denom > 0.0 ? busy_seconds / denom : 0.0;
}

TextTable ClusterReport::sla_table() const {
  TextTable t{{"scope", "arrived", "admitted", "completed", "rej_deadline",
               "rej_power", "miss", "mean_s", "p50_s", "p99_s", "p999_s",
               "energy_j"}};
  auto row = [&t](const std::string& scope, const SlaStats& s) {
    t.add_row({scope, std::to_string(s.arrived), std::to_string(s.admitted),
               std::to_string(s.completed),
               std::to_string(s.rejected_deadline),
               std::to_string(s.rejected_power),
               std::to_string(s.deadline_misses), fmt(s.latency_s.mean(), 4),
               format_quantile(s.p50), format_quantile(s.p99),
               format_quantile(s.p999), fmt(s.energy_j.mean(), 3)});
  };
  for (std::size_t a = 0; a < per_app.size(); ++a) {
    row(workload::app_name(app_order[a]), per_app[a]);
  }
  row("fleet", fleet);
  return t;
}

namespace {

struct Job {
  std::size_t app_row = 0;
  double arrival_s = 0.0;
  double exec_s = 0.0;    ///< service time on the chosen instance's type
  double energy_j = 0.0;  ///< energy on the chosen instance's type
  double power_w = 0.0;   ///< draw on the chosen instance's type
  double deadline_abs_s = 0.0;  ///< absolute deadline; 0 = none
};

/// Queue entry: min-heap on (key, seq).  FIFO uses key 0 (ordering falls
/// to the admission sequence); EDF uses the absolute deadline (deadline-
/// free jobs sort last via +inf).
struct QueueEntry {
  double key = 0.0;
  std::uint64_t seq = 0;
  std::uint32_t job = 0;
};
struct QueueLater {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.key != b.key) return a.key > b.key;
    return a.seq > b.seq;
  }
};

struct Instance {
  std::size_t type = 0;
  bool busy = false;
  double running_until = 0.0;     ///< completion time of the running job
  double queued_service_s = 0.0;  ///< service backlog waiting in the queue
  double blocked_since = -1.0;    ///< power-cap block start; < 0 = not blocked
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, QueueLater> queue;
};

struct Completion {
  double time_s = 0.0;
  std::uint64_t seq = 0;
  std::uint32_t instance = 0;
  std::uint32_t job = 0;
};
struct CompletionLater {
  bool operator()(const Completion& a, const Completion& b) const {
    if (a.time_s != b.time_s) return a.time_s > b.time_s;
    return a.seq > b.seq;
  }
};

std::uint64_t digest_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

void record_completion(SlaStats& s, double latency_s, double energy_j) {
  ++s.completed;
  s.latency_s.add(latency_s);
  s.energy_j.add(energy_j);
  s.p50.add(latency_s);
  s.p99.add(latency_s);
  s.p999.add(latency_s);
}

}  // namespace

ClusterReport ClusterSim::run(const std::vector<JobArrival>& arrivals,
                              const FleetConfig& fleet,
                              const ServiceMatrix& matrix) {
  VFIMR_REQUIRE_MSG(!fleet.types.empty(), "fleet needs >= 1 platform type");
  VFIMR_REQUIRE_MSG(fleet.types.size() == matrix.types(),
                    "fleet has " << fleet.types.size()
                                 << " platform types but the ServiceMatrix "
                                    "was evaluated for "
                                 << matrix.types());
  if (fleet.power_cap != PowerCapMode::kNone) {
    VFIMR_REQUIRE_MSG(fleet.power_cap_w > 0.0,
                      "power cap mode " << power_cap_name(fleet.power_cap)
                                        << " needs power_cap_w > 0");
  }

  // Expand types into instances.
  std::vector<Instance> insts;
  for (std::size_t t = 0; t < fleet.types.size(); ++t) {
    VFIMR_REQUIRE_MSG(fleet.types[t].count >= 1,
                      "platform type '" << fleet.types[t].label
                                        << "' has count 0");
    for (std::size_t c = 0; c < fleet.types[t].count; ++c) {
      Instance inst;
      inst.type = t;
      insts.push_back(std::move(inst));
    }
  }

  double max_exec = 0.0;
  for (std::size_t a = 0; a < matrix.apps(); ++a) {
    for (std::size_t t = 0; t < matrix.types(); ++t) {
      const ServicePoint& pt = matrix.at(a, t);
      max_exec = std::max(max_exec, pt.exec_s);
      if (fleet.power_cap == PowerCapMode::kDelay) {
        // A job drawing more than the whole budget would block its
        // instance forever: a config error, not a simulation outcome.
        VFIMR_REQUIRE_MSG(pt.power_w <= fleet.power_cap_w,
                          "power cap " << fleet.power_cap_w
                                       << " W is below the draw of a single "
                                          "job ("
                                       << pt.power_w << " W)");
      }
    }
  }

  ClusterReport report;
  report.app_order = matrix.app_order();
  report.per_app.assign(matrix.apps(), SlaStats{});
  report.instances = insts.size();
  const double hist_max = fleet.latency_hist_max_s > 0.0
                              ? fleet.latency_hist_max_s
                              : std::max(50.0 * max_exec, 1e-9);
  report.latency_hist =
      Histogram{0.0, hist_max, std::max<std::size_t>(fleet.latency_hist_bins, 1)};

  std::vector<Job> jobs;
  jobs.reserve(arrivals.size());

  std::priority_queue<Completion, std::vector<Completion>, CompletionLater>
      completions;
  std::vector<std::uint32_t> power_blocked;  // instance ids, block order
  double running_power = 0.0;
  std::uint64_t queue_seq = 0;
  std::uint64_t completion_seq = 0;

  // Streaming telemetry instruments (cached once; null sink = no-ops).
  telemetry::MetricsRegistry* metrics =
      fleet.telemetry != nullptr ? &fleet.telemetry->metrics() : nullptr;
  telemetry::QuantileMetric* tele_p50 =
      metrics ? &metrics->quantile("cluster.latency_s.p50", 0.50) : nullptr;
  telemetry::QuantileMetric* tele_p99 =
      metrics ? &metrics->quantile("cluster.latency_s.p99", 0.99) : nullptr;
  telemetry::QuantileMetric* tele_p999 =
      metrics ? &metrics->quantile("cluster.latency_s.p999", 0.999) : nullptr;

  // Try to start the head-of-queue job on an idle instance; returns without
  // starting when the queue is empty or the power cap has no headroom (the
  // instance then waits on `power_blocked` until a completion frees draw).
  auto try_start = [&](std::uint32_t i, double now) {
    Instance& inst = insts[i];
    if (inst.busy || inst.queue.empty()) return;
    const QueueEntry head = inst.queue.top();
    Job& job = jobs[head.job];
    if (fleet.power_cap == PowerCapMode::kDelay &&
        running_power + job.power_w > fleet.power_cap_w) {
      if (inst.blocked_since < 0.0) {
        inst.blocked_since = now;
        power_blocked.push_back(i);
      }
      return;
    }
    inst.queue.pop();
    inst.queued_service_s -= job.exec_s;
    if (inst.blocked_since >= 0.0) {
      report.power_wait_seconds += now - inst.blocked_since;
      inst.blocked_since = -1.0;
    }
    inst.busy = true;
    inst.running_until = now + job.exec_s;
    running_power += job.power_w;
    report.peak_power_w = std::max(report.peak_power_w, running_power);
    report.busy_seconds += job.exec_s;
    const double queue_delay = now - job.arrival_s;
    report.fleet.queue_s.add(queue_delay);
    report.per_app[job.app_row].queue_s.add(queue_delay);
    completions.push(
        Completion{inst.running_until, completion_seq++, i, head.job});
  };

  std::size_t ai = 0;
  while (ai < arrivals.size() || !completions.empty()) {
    // Completions first at equal times: freed instances and power headroom
    // must be visible to an arrival at the same instant.
    const bool take_completion =
        !completions.empty() &&
        (ai >= arrivals.size() ||
         completions.top().time_s <= arrivals[ai].time_s);

    if (take_completion) {
      const Completion done = completions.top();
      completions.pop();
      const double now = done.time_s;
      Instance& inst = insts[done.instance];
      Job& job = jobs[done.job];
      inst.busy = false;
      running_power -= job.power_w;

      const double latency = now - job.arrival_s;
      record_completion(report.fleet, latency, job.energy_j);
      record_completion(report.per_app[job.app_row], latency, job.energy_j);
      report.latency_hist.add(latency);
      if (job.deadline_abs_s > 0.0 && now > job.deadline_abs_s) {
        ++report.fleet.deadline_misses;
        ++report.per_app[job.app_row].deadline_misses;
      }
      report.completion_digest = digest_mix(report.completion_digest, done.job);
      report.completion_digest =
          digest_mix(report.completion_digest, std::bit_cast<std::uint64_t>(now));
      report.horizon_s = std::max(report.horizon_s, now);
      if (tele_p50 != nullptr) {
        tele_p50->add(latency);
        tele_p99->add(latency);
        tele_p999->add(latency);
      }

      // The freed instance serves its own queue first, then freed power
      // headroom goes to power-blocked instances in block order.  try_start
      // never appends an already-blocked instance twice (blocked_since
      // guard), so rebuilding the list below keeps it duplicate-free.
      try_start(done.instance, now);
      if (!power_blocked.empty()) {
        std::vector<std::uint32_t> waiting;
        waiting.swap(power_blocked);
        for (const std::uint32_t b : waiting) {
          try_start(b, now);
          if (insts[b].blocked_since >= 0.0) power_blocked.push_back(b);
        }
      }
      continue;
    }

    // Arrival.
    const JobArrival& a = arrivals[ai];
    ++ai;
    const double now = a.time_s;
    report.horizon_s = std::max(report.horizon_s, now);
    const std::size_t row = matrix.app_row(a.app);
    ++report.fleet.arrived;
    ++report.per_app[row].arrived;

    // Placement: score every instance, keep the policy's argmin.
    std::size_t best = insts.size();
    double best_finish = 0.0;
    double best_edp = 0.0;
    bool best_feasible = false;
    const double deadline_abs =
        a.deadline_s > 0.0 ? now + a.deadline_s : 0.0;
    for (std::size_t i = 0; i < insts.size(); ++i) {
      const Instance& inst = insts[i];
      const ServicePoint& pt = matrix.at(row, inst.type);
      const double start =
          std::max(now, inst.busy ? inst.running_until : now) +
          inst.queued_service_s;
      const double finish = start + pt.exec_s;
      const bool feasible = deadline_abs == 0.0 || finish <= deadline_abs;
      bool better = false;
      if (best == insts.size()) {
        better = true;
      } else if (fleet.policy == SchedulerPolicy::kLeastLoaded) {
        better = finish < best_finish;
      } else {  // kEdpGreedy
        if (feasible != best_feasible) {
          better = feasible;
        } else if (feasible) {
          better = pt.edp_js < best_edp ||
                   (pt.edp_js == best_edp && finish < best_finish);
        } else {
          better = finish < best_finish;
        }
      }
      if (better) {
        best = i;
        best_finish = finish;
        best_edp = pt.edp_js;
        best_feasible = feasible;
      }
    }
    const ServicePoint& svc = matrix.at(row, insts[best].type);

    // Admission.
    if (fleet.admit_by_deadline && deadline_abs > 0.0 &&
        best_finish > deadline_abs) {
      ++report.fleet.rejected_deadline;
      ++report.per_app[row].rejected_deadline;
      continue;
    }
    if (fleet.power_cap == PowerCapMode::kShed &&
        running_power + svc.power_w > fleet.power_cap_w) {
      ++report.fleet.rejected_power;
      ++report.per_app[row].rejected_power;
      continue;
    }

    ++report.fleet.admitted;
    ++report.per_app[row].admitted;
    Job job;
    job.app_row = row;
    job.arrival_s = now;
    job.exec_s = svc.exec_s;
    job.energy_j = svc.energy_j;
    job.power_w = svc.power_w;
    job.deadline_abs_s = deadline_abs;
    jobs.push_back(job);

    Instance& inst = insts[best];
    QueueEntry entry;
    entry.key = fleet.queue == QueueDiscipline::kEarliestDeadline
                    ? (deadline_abs > 0.0
                           ? deadline_abs
                           : std::numeric_limits<double>::infinity())
                    : 0.0;
    entry.seq = queue_seq++;
    entry.job = static_cast<std::uint32_t>(jobs.size() - 1);
    inst.queue.push(entry);
    inst.queued_service_s += svc.exec_s;
    try_start(static_cast<std::uint32_t>(best), now);
  }

  // Mirror the final aggregates into the sink.
  if (metrics != nullptr) {
    metrics->counter("cluster.jobs_arrived").add(report.fleet.arrived);
    metrics->counter("cluster.jobs_admitted").add(report.fleet.admitted);
    metrics->counter("cluster.jobs_completed").add(report.fleet.completed);
    metrics->counter("cluster.jobs_rejected_deadline")
        .add(report.fleet.rejected_deadline);
    metrics->counter("cluster.jobs_rejected_power")
        .add(report.fleet.rejected_power);
    metrics->counter("cluster.deadline_misses")
        .add(report.fleet.deadline_misses);
    metrics->gauge("cluster.peak_power_w").set(report.peak_power_w);
    metrics->gauge("cluster.utilization").set(report.utilization());
    metrics->gauge("cluster.horizon_s").set(report.horizon_s);
  }
  return report;
}

}  // namespace vfimr::cluster
