#pragma once
// FleetFaultPlan: the fleet-level failure/repair timeline for the cluster
// serving tier (DESIGN.md §14).
//
// Raw fault windows (faults::PlatformFault — crash and slow-degrade modes,
// possibly overlapping) are normalized at construction into a single sorted
// stream of per-instance *state changes*: at any instant an instance is up,
// degraded (serving `slowdown` x slower) or down.  The serving event loop
// consumes that stream as a third event source next to completions and
// arrivals; like cluster/arrivals.hpp, a plan is a pure value — equal
// inputs produce byte-identical timelines, so a faulty serving run stays a
// pure function of (arrivals, fleet, matrix, plan).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "faults/faults.hpp"

namespace vfimr::cluster {

enum class InstanceState : std::uint8_t { kUp, kDown, kDegraded };

const char* instance_state_name(InstanceState state);

/// One normalized transition: `instance` enters `state` at `time_s`.
/// `slowdown` is the service-time multiplier from then on (1 unless
/// kDegraded; meaningless while kDown).
struct InstanceStateChange {
  double time_s = 0.0;
  std::uint32_t instance = 0;
  InstanceState state = InstanceState::kUp;
  double slowdown = 1.0;
};

class FleetFaultPlan {
 public:
  /// Empty plan: every instance up forever (the pre-fault serving loop).
  FleetFaultPlan() = default;

  /// Normalize raw windows for a fleet of `instances`.  Overlap semantics:
  /// down wins over degraded; concurrent degrade windows apply the worst
  /// (largest) slowdown.  Throws RequirementError on malformed windows
  /// (instance out of range, until <= at, negative times, slowdown < 1).
  FleetFaultPlan(const std::vector<faults::PlatformFault>& faults,
                 std::size_t instances);

  /// Convenience: expand a rate-based spec (faults::make_fleet_faults) and
  /// normalize it in one step.
  static FleetFaultPlan from_spec(const faults::FleetFaultSpec& spec,
                                  std::size_t instances, double horizon_s);

  bool empty() const { return changes_.empty(); }
  std::size_t instances() const { return instances_; }
  const std::vector<InstanceStateChange>& changes() const { return changes_; }

  /// Instance-seconds spent down within [0, horizon_s] — the numerator of
  /// fleet unavailability.  Monotone in the underlying crash windows.
  double down_seconds(double horizon_s) const;

 private:
  std::size_t instances_ = 0;
  std::vector<InstanceStateChange> changes_;  ///< sorted (time, instance)
  /// Merged down windows per instance, for down_seconds().
  std::vector<std::vector<std::pair<double, double>>> down_windows_;
};

}  // namespace vfimr::cluster
