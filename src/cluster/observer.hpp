#pragma once
// Cluster-scope observability (DESIGN.md §15): per-job lifecycle spans, a
// windowed time-series rollup of fleet signals, and rolling SLA/power
// threshold monitors for the serving tier.
//
// The serving event loop (cluster/serving.cpp) calls into a ClusterObserver
// at every lifecycle edge — admit, enqueue, start, complete, crash, cancel,
// retry, hedge, fault transition — but only when FleetConfig::obs.enabled
// is set *and* a TelemetrySink is attached; every hook site is a single
// `if (obs)` test, so sink-off runs stay bit-identical to the uninstrumented
// loop (regression-tested, gated in CI).  The observer is a pure recorder:
// it never feeds anything back into the loop, and it consumes no RNG, so
// the spans, rollups and monitors are a deterministic function of the run.
//
// At finalize() the recorded spans become
//   - Chrome-trace tracks: one lane per fleet instance (attempt spans, state
//     spans, busy/queue-depth counters), one nestable-async lane tree per
//     job (cat "job", id = job; retry-backoff windows nest inside), flow
//     arrows linking a crashed attempt to its re-placement, and instant
//     alert markers from the monitors;
//   - a tail-latency attribution report: per completed job, latency
//     decomposes into service + degraded + backoff + hedge_wait + queue.
//     The components are constructed so that the *documented left-to-right
//     sum* (((service + degraded) + backoff) + hedge_wait) + queue
//     reproduces end-to-end latency bit-exactly: queue is the residual,
//     ULP-nudged (std::nextafter) because FP addition is not exactly
//     invertible.  tools/check_cluster_obs.py re-evaluates the same sum in
//     Python (IEEE doubles both sides) and requires equality.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/fleet_faults.hpp"
#include "common/table.hpp"
#include "telemetry/telemetry.hpp"

namespace vfimr::cluster {

/// Knobs for the serving-tier observer.  Off by default: observability is
/// opt-in per run even with a sink attached, because span storage scales
/// with admitted jobs (the million-job headline cells stay lean).
struct ObsConfig {
  bool enabled = false;
  /// Epoch width for the time-series rollups (simulated seconds); 0 derives
  /// the mean service time across the whole ServiceMatrix.
  double epoch_s = 0.0;
  /// Prefix for time-series names and the trace process row.  Give runs
  /// sharing one sink distinct labels or their series merge.
  std::string label = "cluster";
  /// SLA burn-rate monitor: rolling window length in epochs...
  std::size_t sla_window_epochs = 8;
  /// ...and the violation budget: breach when the windowed fraction of
  /// completions that violated their SLA exceeds this (0.01 ~ "observed
  /// p99 worse than the deadline").
  double sla_burn_budget = 0.01;
  /// Fallback latency target (seconds) for jobs without deadlines; 0 =
  /// deadline-only (the monitor stays disabled if no job has either).
  double sla_target_latency_s = 0.0;
  /// Power monitor: breach when an epoch's max fleet draw reaches this
  /// fraction of the power cap (ignored without a cap).
  double power_proximity = 0.9;
};

/// Why a recorded attempt ended.
enum class AttemptEndCause : std::uint8_t {
  kLive,              ///< still running/queued at finalize (shouldn't happen)
  kCompleted,         ///< finished and won its job
  kCrashedRunning,    ///< instance crashed mid-run
  kCrashedQueued,     ///< instance crashed while this waited in queue
  kHedgeLoserRunning, ///< sibling finished first; killed mid-run
  kHedgeLoserQueued,  ///< sibling finished first; dequeued unstarted
};

const char* attempt_end_name(AttemptEndCause cause);

/// One placement of a job onto an instance (primary, retry or hedge).
struct AttemptSpan {
  std::uint32_t job = 0;
  std::uint32_t instance = 0;
  std::uint8_t slot = 0;  ///< 0 = primary/retry chain, 1 = hedge duplicate
  double enqueue_s = 0.0;
  double start_s = -1.0;       ///< -1 while queued
  double end_s = -1.0;         ///< -1 while live
  double base_exec_s = 0.0;    ///< undegraded service time
  double actual_exec_s = -1.0; ///< charged at start (slowdown applied)
  AttemptEndCause end = AttemptEndCause::kLive;
};

enum class JobOutcome : std::uint8_t {
  kInFlight,   ///< never resolved (shouldn't survive finalize)
  kCompleted,
  kLost,       ///< retry budget exhausted
  kShedRetry,  ///< dropped at/after its deadline before a retry landed
};

/// Lifecycle record of one admitted job.
struct JobSpan {
  std::uint32_t id = 0;
  std::size_t app_row = 0;
  double arrival_s = 0.0;
  double deadline_abs_s = 0.0;  ///< 0 = no deadline
  double end_s = -1.0;          ///< completion / loss / shed time
  double backoff_s = 0.0;       ///< total time parked in retry backoff
  std::vector<std::pair<double, double>> backoff_windows;
  std::vector<std::uint32_t> attempts;  ///< indices into SpanStore::attempts
  std::int32_t winner = -1;             ///< completing attempt, or -1
  bool hedged = false;
  JobOutcome outcome = JobOutcome::kInFlight;

  double latency_s() const { return end_s - arrival_s; }
};

struct SpanStore {
  std::vector<JobSpan> jobs;
  std::vector<AttemptSpan> attempts;
};

/// Per-job latency decomposition.  Invariant (by construction): the
/// left-to-right sum() below reproduces the job's end-to-end latency
/// bit-exactly; queue_s is the residual and may go ULP-negative on
/// cancellation-heavy paths (the checker allows a tiny negative floor).
struct AttributionComponents {
  double service_s = 0.0;     ///< undegraded run time of the winning attempt
  double degraded_s = 0.0;    ///< extra run time charged to degradation
  double backoff_s = 0.0;     ///< retry backoff windows
  double hedge_wait_s = 0.0;  ///< wait before the winning hedge launched
  double queue_s = 0.0;       ///< residual: queueing + power-cap delay

  double sum() const {
    return (((service_s + degraded_s) + backoff_s) + hedge_wait_s) + queue_s;
  }
};

/// Decompose a completed job's latency against its winning attempt.
AttributionComponents attribute_job(const JobSpan& job,
                                    const AttemptSpan& winner);

/// Rolling threshold monitor summary.
struct MonitorReport {
  bool enabled = false;
  std::uint64_t epochs = 0;
  std::uint64_t breach_epochs = 0;
  double first_breach_s = -1.0;  ///< epoch start of the first breach; -1 = none

  double breach_fraction() const {
    return epochs > 0 ? static_cast<double>(breach_epochs) /
                            static_cast<double>(epochs)
                      : 0.0;
  }
};

/// One registered time series, snapshotted at finalize.
struct SeriesSnapshot {
  std::string name;
  double epoch_s = 0.0;
  std::vector<std::pair<std::int64_t, telemetry::EpochStats>> epochs;
};

/// One attribution row (p99 cohort; in_p999 marks the inner p999 cohort).
struct JobAttribution {
  std::uint32_t job = 0;
  std::string app;
  double arrival_s = 0.0;
  double latency_s = 0.0;
  AttributionComponents comp;
  std::uint32_t attempts = 0;
  bool hedged = false;
  bool hedge_won = false;
  bool in_p999 = false;
};

struct ClusterObsReport {
  double epoch_s = 0.0;
  std::string label;
  std::uint64_t jobs_tracked = 0;
  std::uint64_t completed = 0;

  /// Cohort thresholds over completed-job latency (exact order statistics
  /// over the stored spans, not the P² streaming estimate).
  double p99_threshold_s = 0.0;
  double p999_threshold_s = 0.0;
  std::uint64_t cohort_p99 = 0;
  std::uint64_t cohort_p999 = 0;

  /// Mean components per cohort (all completed / p99 tail / p999 tail).
  AttributionComponents mean_all, mean_p99, mean_p999;
  double mean_latency_all = 0.0, mean_latency_p99 = 0.0,
         mean_latency_p999 = 0.0;

  /// p99-cohort rows, latency descending (job id ascending on ties).
  std::vector<JobAttribution> tail;

  MonitorReport sla_burn;
  MonitorReport power_proximity;

  std::vector<SeriesSnapshot> series;
  SpanStore spans;

  /// Cohort summary appended under the SLA table (mean seconds per
  /// component plus their share of mean latency).
  TextTable attribution_table() const;
  /// Per-job rows for results/cluster_attribution.csv.  Doubles print with
  /// %.17g so Python reproduces the exact sum.
  TextTable attribution_csv() const;
  /// Epoch rows for results/cluster_timeseries.csv (%.17g).
  TextTable timeseries_csv() const;
  TextTable monitors_table() const;
};

/// The recorder the serving loop drives.  Constructed by ClusterSim::run
/// when obs is enabled; all methods are single-threaded (the serving loop
/// is serial by design).
class ClusterObserver {
 public:
  ClusterObserver(telemetry::TelemetrySink& sink, const ObsConfig& cfg,
                  double epoch_s, std::vector<std::string> instance_labels,
                  std::vector<std::string> app_names, double power_cap_w);

  void on_rejected(std::size_t app_row, double now, const char* why);
  void on_admit(std::uint32_t job, std::size_t app_row, double arrival_s,
                double deadline_abs_s);
  void on_enqueue(std::uint32_t attempt, std::uint32_t job,
                  std::uint32_t instance, std::uint8_t slot, double now,
                  double base_exec_s);
  void on_start(std::uint32_t attempt, double now, double actual_exec_s,
                double running_power_w);
  void on_complete(std::uint32_t attempt, double now, double latency_s,
                   double running_power_w, bool deadline_missed);
  void on_kill_running(std::uint32_t attempt, double now, bool crash,
                       double running_power_w);
  void on_cancel_queued(std::uint32_t attempt, double now, bool crash);
  void on_retry_scheduled(std::uint32_t job, double now, double fire_s);
  void on_retry_fired(std::uint32_t job, double now, double scheduled_s);
  void on_hedge(std::uint32_t job, double now);
  void on_lost(std::uint32_t job, double now);
  void on_shed_retry(std::uint32_t job, double now);
  void on_fault(std::uint32_t instance, InstanceState state, double slowdown,
                double now);

  /// Close the books: draw instance state spans from the fault plan, run
  /// the monitors over [0, horizon], emit counter tracks for every series,
  /// and build the attribution report.  Call once, after the loop drains.
  std::shared_ptr<const ClusterObsReport> finalize(
      double horizon_s, const FleetFaultPlan& faults);

 private:
  /// Epoch-resolved running max of a step signal (fleet power draw): the
  /// value holds between samples, so sample-free epochs inherit it.
  struct StepMax {
    double held = 0.0;
    std::vector<double> maxima;  ///< index = epoch (times are >= 0)

    void extend_to(std::int64_t epoch);
    void sample(std::int64_t epoch, double value);
  };

  telemetry::TimeSeries& make_series(const char* suffix);
  void sample_power(double now, double value);
  void sample_utilization(double now);
  JobSpan& job(std::uint32_t id);
  AttemptSpan& attempt(std::uint32_t id);
  void end_attempt(std::uint32_t id, double now, AttemptEndCause cause);
  void note_completion_epoch(double now, bool violated);

  telemetry::TelemetrySink& sink_;
  ObsConfig cfg_;
  double epoch_s_;
  std::vector<std::string> instance_labels_;
  std::vector<std::string> app_names_;
  double power_cap_w_;

  // Trace lanes.
  std::vector<telemetry::TrackId> instance_tracks_;
  telemetry::TrackId job_track_ = 0;
  telemetry::TrackId monitor_track_ = 0;
  telemetry::TrackId series_track_ = 0;

  SpanStore store_;

  // Live fleet state mirrored from the hooks.
  std::vector<std::int64_t> queue_depth_;  ///< per instance
  std::int64_t total_queued_ = 0;
  std::int64_t busy_instances_ = 0;
  std::int64_t inflight_jobs_ = 0;

  // Registered rollups (references stay valid for the registry's lifetime).
  telemetry::TimeSeries* ts_util_ = nullptr;
  telemetry::TimeSeries* ts_queue_ = nullptr;
  telemetry::TimeSeries* ts_inflight_ = nullptr;
  telemetry::TimeSeries* ts_power_ = nullptr;
  telemetry::TimeSeries* ts_goodput_ = nullptr;

  StepMax power_max_;
  bool saw_sla_target_ = false;
  std::vector<std::uint64_t> epoch_completions_;
  std::vector<std::uint64_t> epoch_violations_;
};

}  // namespace vfimr::cluster
