#include "cluster/fleet_faults.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace vfimr::cluster {

const char* instance_state_name(InstanceState state) {
  switch (state) {
    case InstanceState::kUp:
      return "up";
    case InstanceState::kDown:
      return "down";
    case InstanceState::kDegraded:
      return "degraded";
  }
  return "?";
}

namespace {

using Window = std::pair<double, double>;

/// Union of half-open windows, sorted by start.
std::vector<Window> merge_windows(std::vector<Window> w) {
  std::sort(w.begin(), w.end());
  std::vector<Window> out;
  for (const Window& x : w) {
    if (!out.empty() && x.first <= out.back().second) {
      out.back().second = std::max(out.back().second, x.second);
    } else {
      out.push_back(x);
    }
  }
  return out;
}

}  // namespace

FleetFaultPlan::FleetFaultPlan(
    const std::vector<faults::PlatformFault>& faults, std::size_t instances)
    : instances_{instances} {
  VFIMR_REQUIRE_MSG(instances >= 1,
                    "FleetFaultPlan needs >= 1 instance, got " << instances);
  std::vector<std::vector<Window>> crash(instances);
  // Degrade windows keep their slowdown: (start, end, slowdown).
  struct Degrade {
    double at, until, slowdown;
  };
  std::vector<std::vector<Degrade>> degrade(instances);
  for (const faults::PlatformFault& f : faults) {
    VFIMR_REQUIRE_MSG(f.instance < instances,
                      "fault instance " << f.instance
                                        << " out of range for a fleet of "
                                        << instances);
    VFIMR_REQUIRE_MSG(f.at_s >= 0.0 && f.until_s > f.at_s,
                      "fault window [" << f.at_s << ", " << f.until_s
                                       << ") must satisfy 0 <= at < until");
    if (f.kind == faults::PlatformFaultKind::kCrash) {
      crash[f.instance].push_back({f.at_s, f.until_s});
    } else {
      VFIMR_REQUIRE_MSG(f.slowdown >= 1.0,
                        "degrade slowdown must be >= 1, got " << f.slowdown);
      degrade[f.instance].push_back({f.at_s, f.until_s, f.slowdown});
    }
  }

  down_windows_.resize(instances);
  for (std::size_t i = 0; i < instances; ++i) {
    down_windows_[i] = merge_windows(std::move(crash[i]));

    // Composite state at every boundary: down wins, then the worst active
    // slowdown, else up.  The boundary set is small (a handful of windows
    // per instance), so the quadratic probe is fine.
    std::vector<double> bounds;
    for (const Window& w : down_windows_[i]) {
      bounds.push_back(w.first);
      bounds.push_back(w.second);
    }
    for (const Degrade& d : degrade[i]) {
      bounds.push_back(d.at);
      bounds.push_back(d.until);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    InstanceState prev_state = InstanceState::kUp;
    double prev_slowdown = 1.0;
    for (const double t : bounds) {
      bool down = false;
      for (const Window& w : down_windows_[i]) {
        down = down || (t >= w.first && t < w.second);
      }
      double slowdown = 1.0;
      if (!down) {
        for (const Degrade& d : degrade[i]) {
          if (t >= d.at && t < d.until) {
            slowdown = std::max(slowdown, d.slowdown);
          }
        }
      }
      const InstanceState state = down ? InstanceState::kDown
                                  : slowdown > 1.0 ? InstanceState::kDegraded
                                                   : InstanceState::kUp;
      if (state == prev_state && slowdown == prev_slowdown) continue;
      InstanceStateChange c;
      c.time_s = t;
      c.instance = static_cast<std::uint32_t>(i);
      c.state = state;
      c.slowdown = slowdown;
      changes_.push_back(c);
      prev_state = state;
      prev_slowdown = slowdown;
    }
  }

  std::sort(changes_.begin(), changes_.end(),
            [](const InstanceStateChange& a, const InstanceStateChange& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              return a.instance < b.instance;
            });
}

FleetFaultPlan FleetFaultPlan::from_spec(const faults::FleetFaultSpec& spec,
                                         std::size_t instances,
                                         double horizon_s) {
  return FleetFaultPlan{faults::make_fleet_faults(spec, instances, horizon_s),
                        instances};
}

double FleetFaultPlan::down_seconds(double horizon_s) const {
  double total = 0.0;
  for (const auto& windows : down_windows_) {
    for (const Window& w : windows) {
      total += std::max(0.0, std::min(w.second, horizon_s) - w.first);
    }
  }
  return total;
}

}  // namespace vfimr::cluster
