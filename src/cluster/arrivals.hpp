#pragma once
// Open-arrival job streams for the cluster serving tier (DESIGN.md §13).
//
// The paper evaluates one MapReduce job at a time; the serving tier feeds a
// fleet of simulated VFI platforms from a continuous stream of jobs drawn
// from the six-app catalog.  Streams are either synthetic (Poisson process
// with a seeded deterministic RNG and a per-app mixture) or trace-driven
// (caller-supplied arrival records, validated and replayed verbatim).
// Either way the generated vector is a pure function of the config, so a
// serving simulation is reproducible bit-for-bit from (config, fleet).

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "workload/app.hpp"

namespace vfimr::cluster {

enum class ArrivalModel : std::uint8_t { kPoisson, kTrace };

/// One job entering the serving tier.
struct JobArrival {
  double time_s = 0.0;  ///< absolute arrival time (non-decreasing)
  workload::App app = workload::App::kWC;
  /// Relative completion deadline (seconds after arrival); 0 = none.
  double deadline_s = 0.0;
};

struct ArrivalConfig {
  ArrivalModel model = ArrivalModel::kPoisson;
  /// Poisson arrival rate (jobs per simulated second).
  double rate_jobs_per_s = 100.0;
  std::size_t job_count = 10'000;
  std::uint64_t seed = 2015;
  /// Mixture weights over workload::kAllApps (same order); empty = uniform.
  /// Entries must be >= 0 with a positive total.
  std::vector<double> app_mix;
  /// Relative deadline as a multiple of the app's nominal service time
  /// (`service_hint_s`); 0 disables deadlines.
  double deadline_factor = 0.0;
  /// Per-app nominal service time (seconds, workload::kAllApps order) used
  /// to stamp deadlines; typically ServiceMatrix::mean_service_s.  Required
  /// (> 0 for every app with nonzero mix weight) when deadline_factor > 0.
  std::array<double, workload::kAllApps.size()> service_hint_s{};
  /// Trace-driven arrivals (model == kTrace): replayed verbatim after
  /// validation (non-decreasing times, non-negative deadlines).
  std::vector<JobArrival> trace;
};

/// Materialize the stream described by `cfg`.  Deterministic: equal configs
/// produce byte-identical streams.  Throws RequirementError on invalid
/// configs (non-positive rate, bad mixture, unsorted trace, missing
/// service hints under deadline_factor > 0).
std::vector<JobArrival> make_arrivals(const ArrivalConfig& cfg);

}  // namespace vfimr::cluster
