#pragma once
// Minimal JSON support for the golden-figure regression guard: a flat
// object mapping string keys to numbers, e.g.
//
//   {
//     "fig8.KMEANS.vfi_winoc_edp": 0.319,
//     "fig8.summary.avg_saving": 0.247
//   }
//
// Only this subset is implemented (no nesting, arrays, strings-as-values,
// booleans) — goldens are flat metric maps by design, and the repository
// deliberately takes no third-party dependencies.  Numbers round-trip
// exactly (emitted with max_digits10 precision).

#include <map>
#include <string>

namespace vfimr::json {

using MetricMap = std::map<std::string, double>;

/// Serialize to a pretty-printed flat JSON object (sorted keys, trailing
/// newline).
std::string dump(const MetricMap& metrics);

/// Parse a flat JSON object of string->number; throws std::runtime_error on
/// anything malformed or outside the supported subset.
MetricMap parse(const std::string& text);

/// Read + parse a file; throws std::runtime_error (with the path in the
/// message) on I/O or parse failure.
MetricMap load_file(const std::string& path);

/// Write `metrics` to `path`; throws std::runtime_error on I/O failure.
void save_file(const std::string& path, const MetricMap& metrics);

}  // namespace vfimr::json
