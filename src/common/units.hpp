#pragma once
// Unit conventions used across the power and timing models.
//
// Internally everything is SI: seconds, hertz, volts, watts, joules, meters.
// These constants make literals in model code self-documenting, e.g.
// `2.5 * GHz` or `0.98 * pJ`.

namespace vfimr::units {

inline constexpr double kHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

inline constexpr double ns = 1e-9;
inline constexpr double us = 1e-6;
inline constexpr double ms = 1e-3;

inline constexpr double pJ = 1e-12;
inline constexpr double nJ = 1e-9;
inline constexpr double uJ = 1e-6;
inline constexpr double mJ = 1e-3;

inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;

inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;

inline constexpr double KiB = 1024.0;
inline constexpr double MiB = 1024.0 * 1024.0;

}  // namespace vfimr::units
