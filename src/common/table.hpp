#pragma once
// ASCII table and CSV emission for benchmark harnesses.  Every bench binary
// prints the paper's rows with TextTable and mirrors them to a CSV file so
// results can be post-processed/plotted.

#include <iosfwd>
#include <string>
#include <vector>

namespace vfimr {

/// Column-aligned ASCII table.  Cells are strings; numeric helpers format
/// with a fixed precision.  Example:
///
///   TextTable t({"App", "VFI Mesh", "VFI WiNoC"});
///   t.add_row({"WC", fmt(0.81), fmt(0.55)});
///   std::cout << t.to_string();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::size_t rows() const { return rows_.size(); }

  std::string to_string() const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string to_csv() const;

  /// Write CSV to a file path; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parse RFC-4180 CSV text into rows of cells.  Quoted fields may contain
/// commas, doubled quotes, and embedded line breaks; both \n and \r\n row
/// terminators are accepted and a trailing terminator does not yield an
/// empty row.  Inverse of TextTable::to_csv for any cell content.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

/// Format a double with fixed precision (default 3 decimals).
std::string fmt(double v, int precision = 3);

/// Format as a percentage, e.g. fmt_pct(0.337) -> "33.7%".
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace vfimr
