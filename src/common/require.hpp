#pragma once
// Lightweight precondition checking.  VFIMR_REQUIRE throws on violation so
// misuse of the public API fails loudly in both debug and release builds
// (simulation correctness matters more than the branch cost).

#include <sstream>
#include <stdexcept>
#include <string>

namespace vfimr {

class RequirementError : public std::logic_error {
 public:
  explicit RequirementError(const std::string& what) : std::logic_error{what} {}
};

[[noreturn]] inline void requirement_failed(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw RequirementError{os.str()};
}

}  // namespace vfimr

#define VFIMR_REQUIRE(expr)                                              \
  do {                                                                   \
    if (!(expr)) ::vfimr::requirement_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define VFIMR_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream vfimr_req_os_;                                  \
      vfimr_req_os_ << msg;                                              \
      ::vfimr::requirement_failed(#expr, __FILE__, __LINE__,             \
                                  vfimr_req_os_.str());                  \
    }                                                                    \
  } while (false)
