#include "common/table.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace vfimr {

TextTable::TextTable(std::vector<std::string> header)
    : header_{std::move(header)} {
  if (header_.empty()) throw std::invalid_argument("TextTable needs columns");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c] << " ";
    }
    os << "|\n";
  };
  auto rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << "+" << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << csv_escape(cells[c]);
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::write_csv(const std::string& path) const {
  std::ofstream f{path};
  if (!f) throw std::runtime_error("cannot open CSV output: " + path);
  f << to_csv();
  if (!f) throw std::runtime_error("failed writing CSV output: " + path);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

}  // namespace vfimr
