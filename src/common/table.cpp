#include "common/table.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace vfimr {

TextTable::TextTable(std::vector<std::string> header)
    : header_{std::move(header)} {
  if (header_.empty()) throw std::invalid_argument("TextTable needs columns");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c] << " ";
    }
    os << "|\n";
  };
  auto rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << "+" << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << csv_escape(cells[c]);
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::write_csv(const std::string& path) const {
  std::ofstream f{path};
  if (!f) throw std::runtime_error("cannot open CSV output: " + path);
  f << to_csv();
  if (!f) throw std::runtime_error("failed writing CSV output: " + path);
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool quoted = false;
  bool cell_started = false;  // distinguishes "" (one empty row) from "\n"
  std::size_t i = 0;
  const std::size_t n = text.size();
  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
  };
  auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
  };
  while (i < n) {
    const char ch = text[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          cell += '"';
          i += 2;
        } else {
          quoted = false;
          ++i;
        }
      } else {
        cell += ch;
        ++i;
      }
      continue;
    }
    switch (ch) {
      case '"':
        quoted = true;
        cell_started = true;
        ++i;
        break;
      case ',':
        end_cell();
        cell_started = true;  // a comma opens the next (possibly empty) cell
        ++i;
        break;
      case '\r':
        if (i + 1 < n && text[i + 1] == '\n') ++i;
        [[fallthrough]];
      case '\n':
        end_row();
        ++i;
        break;
      default:
        cell += ch;
        cell_started = true;
        ++i;
        break;
    }
  }
  if (quoted) throw std::runtime_error("parse_csv: unterminated quoted field");
  if (cell_started || !row.empty()) end_row();
  return rows;
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

}  // namespace vfimr
